// Mutation-ingest vs serving throughput sweep (gs::dyn).
//
// A versioned GraphStore endpoint is driven by the open-loop Poisson client
// at a fixed offered load while an ingest thread applies seeded
// MutationBatches at a swept rate. Each cell reports serving goodput, p95
// latency, and the plan-layer cost of the mutation epochs: how many requests
// reused a still-valid frozen plan, how many were served by a stale (drifted)
// plan while the replanner recompiled in the background, and how many paid a
// full inline compile on the serving path. Every mutation rate runs twice —
// background recompilation on and off — so the cost of losing the replanner
// (drifted epochs compile inline, on the serving path) is a column, not an
// anecdote.
//
// The headline claims this reproduces: mutation epochs do not fail requests
// (admission pins a snapshot; readers never see a half-applied batch), and
// with background recompilation on, p95 stays near the mutation-free
// baseline because invalidated plans keep serving while fresh ones compile
// off the serving path.
//
// Output: one JSON object per line ("jsonl"): first a header line, then one
// line per cell — trivially machine-parseable without a JSON library.
//
// Usage: mutation_throughput [--scale=0.05] [--requests=300] [--workers=4]
//                            [--rps=1500] [--rates=0,4,16]

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dyn/mutation_gen.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/store.h"
#include "serving/loadgen.h"
#include "serving/server.h"

namespace {

struct Sweep {
  double scale = 0.05;
  int64_t requests = 300;
  int workers = 4;
  double rps = 1500.0;
  std::vector<int64_t> rates = {0, 4, 16};  // mutation batches per run
};

struct Cell {
  int64_t mutations = 0;
  bool background = true;
  gs::serving::LoadGenReport report;
  gs::serving::ServerStats stats;
};

Cell RunCell(const gs::graph::Graph& graph, int64_t mutations, bool background,
             const Sweep& sweep) {
  gs::serving::ServerOptions options;
  options.num_workers = sweep.workers;
  options.queue_capacity = 64;
  options.coalesce_max = 8;
  options.background_recompile = background;
  gs::serving::Server server(options);
  gs::graph::GraphStore store(graph);
  server.RegisterEndpoint(gs::serving::MakeDynamicEndpoint("GraphSAGE", "PD", store));
  server.Start();

  std::thread ingest;
  if (mutations > 0) {
    ingest = std::thread([&] {
      gs::dyn::MutationGenOptions gen_opts;
      gen_opts.seed = 0x5EED ^ static_cast<uint64_t>(mutations);
      gen_opts.num_nodes = graph.num_nodes();
      gen_opts.adds_per_batch = 128;
      gen_opts.removes_per_batch = 32;
      gen_opts.weighted = store.weighted();
      gen_opts.skew = 0.8;
      gs::dyn::MutationGen gen(gen_opts);
      // Pace the stream across the expected run so epochs interleave with
      // serving instead of front-loading before admission.
      const auto gap = std::chrono::microseconds(static_cast<int64_t>(
          1e6 * static_cast<double>(sweep.requests) / sweep.rps /
          static_cast<double>(mutations + 1)));
      for (int64_t b = 0; b < mutations; ++b) {
        std::this_thread::sleep_for(gap);
        store.Apply(gen.Next());
      }
    });
  }

  gs::serving::LoadGenOptions load;
  load.algorithm = "GraphSAGE";
  load.dataset = "PD";
  load.num_requests = sweep.requests;
  load.offered_rps = sweep.rps;
  load.batch_size = 64;
  load.num_tenants = 4;
  load.fanouts = {10, 5};
  Cell cell;
  cell.mutations = mutations;
  cell.background = background;
  cell.report = RunOpenLoop(server, graph, load);
  if (ingest.joinable()) {
    ingest.join();
  }
  server.DrainRecompiles();
  server.Stop();
  cell.stats = server.stats();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      sweep.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      sweep.requests = std::atoll(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      sweep.workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rps=", 6) == 0) {
      sweep.rps = std::atof(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--rates=", 8) == 0) {
      sweep.rates.clear();
      const char* p = argv[i] + 8;
      while (*p != '\0') {
        sweep.rates.push_back(std::atoll(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) {
          break;
        }
        p = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  gs::graph::Graph graph = gs::graph::MakeDataset("PD", {.scale = sweep.scale});
  std::printf("{\"bench\":\"mutation_throughput\",\"scale\":%.3f,\"nodes\":%lld,"
              "\"requests\":%lld,\"workers\":%d,\"offered_rps\":%.0f}\n",
              sweep.scale, static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(sweep.requests), sweep.workers, sweep.rps);

  int failed_total = 0;
  for (int64_t mutations : sweep.rates) {
    for (bool background : {true, false}) {
      if (mutations == 0 && !background) {
        continue;  // no epochs => the replanner is irrelevant; skip the dup
      }
      const Cell cell = RunCell(graph, mutations, background, sweep);
      failed_total += static_cast<int>(cell.report.failed);
      std::printf(
          "{\"mutations\":%lld,\"background_recompile\":%s,"
          "\"goodput_rps\":%.1f,\"ok\":%lld,\"rejected\":%lld,\"failed\":%lld,"
          "\"p50_us\":%lld,\"p95_us\":%lld,\"p99_us\":%lld,"
          "\"graph_epochs\":%lld,\"plan_reuses\":%lld,\"stale_plans_served\":%lld,"
          "\"recompiles_inline\":%lld,\"recompiles_background\":%lld,"
          "\"partition_rebuilt\":%lld,\"partition_reused\":%lld}\n",
          static_cast<long long>(mutations), background ? "true" : "false",
          cell.report.achieved_rps, static_cast<long long>(cell.report.ok),
          static_cast<long long>(cell.report.rejected),
          static_cast<long long>(cell.report.failed),
          static_cast<long long>(cell.report.p50_ns / 1000),
          static_cast<long long>(cell.report.p95_ns / 1000),
          static_cast<long long>(cell.report.p99_ns / 1000),
          static_cast<long long>(cell.stats.graph_epochs),
          static_cast<long long>(cell.stats.plan_reuses),
          static_cast<long long>(cell.stats.stale_plans_served),
          static_cast<long long>(cell.stats.recompiles_inline),
          static_cast<long long>(cell.stats.recompiles_background),
          static_cast<long long>(cell.stats.partition_segments_rebuilt),
          static_cast<long long>(cell.stats.partition_segments_reused));
    }
  }
  // Mutation epochs must never fail a request — admission pins a snapshot
  // and stale-but-valid plans keep serving during recompilation.
  return failed_total == 0 ? 0 : 1;
}
