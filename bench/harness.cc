#include "bench/harness.h"

#include <algorithm>
#include <cstdio>

#include "algorithms/algorithms.h"
#include "common/error.h"

namespace gs::bench {
namespace {

using tensor::IdArray;

std::vector<IdArray> MakeBatches(const IdArray& frontiers, int64_t batch_size) {
  std::vector<IdArray> batches;
  for (int64_t b = 0; b < frontiers.size(); b += batch_size) {
    const int64_t end = std::min(frontiers.size(), b + batch_size);
    IdArray batch = IdArray::Empty(end - b);
    std::copy_n(frontiers.data() + b, end - b, batch.data());
    batches.push_back(std::move(batch));
  }
  return batches;
}

double VirtualMs() {
  return static_cast<double>(device::Current().stream().counters().virtual_ns) / 1e6;
}

}  // namespace

std::string FormatCell(const CellResult& cell, int width) {
  char buffer[64];
  switch (cell.status) {
    case CellResult::Status::kOk:
      std::snprintf(buffer, sizeof(buffer), "%*.1f", width, cell.epoch_ms);
      break;
    case CellResult::Status::kNotAvailable:
      std::snprintf(buffer, sizeof(buffer), "%*s", width, "N/A");
      break;
    case CellResult::Status::kTimeout:
      std::snprintf(buffer, sizeof(buffer), "%*s", width, "TO");
      break;
  }
  return buffer;
}

device::Device& BenchContext::DeviceFor(const device::DeviceProfile& profile) {
  auto it = devices_.find(profile.name);
  if (it == devices_.end()) {
    it = devices_.emplace(profile.name, std::make_unique<device::Device>(profile)).first;
  }
  return *it->second;
}

const graph::Graph& BenchContext::GraphFor(const std::string& dataset,
                                           const device::DeviceProfile& profile) {
  const std::string key = dataset + "@" + profile.name;
  auto it = graphs_.find(key);
  if (it == graphs_.end()) {
    device::DeviceGuard guard(DeviceFor(profile));
    graph::Graph g =
        graph::MakeDataset(dataset, {.scale = config_.dataset_scale, .weighted = true});
    it = graphs_.emplace(key, std::make_unique<graph::Graph>(std::move(g))).first;
  }
  return *it->second;
}

CellResult BenchContext::RunGsampler(const std::string& dataset, const std::string& algorithm,
                                     const device::DeviceProfile& gpu_profile) {
  return RunGsampler(dataset, algorithm, gpu_profile, config_.gs_options);
}

CellResult BenchContext::RunGsampler(const std::string& dataset, const std::string& algorithm,
                                     const device::DeviceProfile& gpu_profile,
                                     const core::SamplerOptions& options) {
  device::Device& dev = DeviceFor(gpu_profile);
  const graph::Graph& g = GraphFor(dataset, gpu_profile);
  device::DeviceGuard guard(dev);

  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algorithm, g);
  core::SamplerOptions opts = options;
  if (ap.updates_model) {
    opts.super_batch = 1;  // per-batch model updates preclude super-batching
  }
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  if (algorithm == "HetGNN") {
    sampler.BindGraph("rel0", &g.adj());
    sampler.BindGraph("rel1", &g.adj());
  }

  std::vector<IdArray> batches = MakeBatches(g.train_ids(), config_.batch_size);
  const int64_t total = static_cast<int64_t>(batches.size());
  const int64_t measured =
      std::min<int64_t>(total, std::max<int64_t>(config_.max_batches, 1));

  // Warmup: triggers layout calibration and super-batch auto-tuning outside
  // the measured region.
  for (int w = 0; w < config_.warmup_batches && w < total; ++w) {
    sampler.Sample(batches[static_cast<size_t>(w)]);
  }
  if (opts.super_batch != 1) {
    // Pre-drive the super-batch tuner on a short prefix.
    IdArray prefix = IdArray::Empty(std::min<int64_t>(g.train_ids().size(),
                                                      config_.batch_size * 8));
    std::copy_n(g.train_ids().data(), prefix.size(), prefix.data());
    sampler.SampleEpoch(prefix, config_.batch_size, nullptr);
  }

  // Measured region: `measured` consecutive mini-batches as one epoch
  // slice, twice; keep the faster run (virtual readings carry real-CPU
  // noise).
  IdArray slice = IdArray::Empty(std::min(g.train_ids().size(),
                                          measured * config_.batch_size));
  std::copy_n(g.train_ids().data(), slice.size(), slice.data());
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const double t0 = VirtualMs();
    sampler.SampleEpoch(slice, config_.batch_size, nullptr);
    const double elapsed = VirtualMs() - t0;
    best = rep == 0 ? elapsed : std::min(best, elapsed);
  }
  return CellResult::Ok(best * static_cast<double>(total) /
                        static_cast<double>(measured));
}

CellResult BenchContext::RunBaseline(const std::string& system, const std::string& dataset,
                                     const std::string& algorithm,
                                     const device::DeviceProfile& gpu_profile) {
  const device::DeviceProfile profile = baselines::ProfileFor(system, gpu_profile);
  device::Device& dev = DeviceFor(profile);
  const graph::Graph& g = GraphFor(dataset, profile);
  device::DeviceGuard guard(dev);

  std::unique_ptr<baselines::Baseline> baseline = baselines::MakeBaseline(system, g);
  switch (baseline->Check(algorithm)) {
    case baselines::Availability::kNotImplemented:
      return CellResult::NotAvailable();
    case baselines::Availability::kTimeout:
      return CellResult::Timeout();
    case baselines::Availability::kSupported:
      break;
  }

  std::vector<IdArray> batches = MakeBatches(g.train_ids(), config_.batch_size);
  const int64_t total = static_cast<int64_t>(batches.size());
  const int64_t measured =
      std::min<int64_t>(total, std::max<int64_t>(config_.max_batches, 1));
  Rng rng(0xBEEF);
  for (int w = 0; w < config_.warmup_batches && w < total; ++w) {
    baseline->SampleBatch(algorithm, batches[static_cast<size_t>(w)], rng);
  }
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    const double t0 = VirtualMs();
    for (int64_t b = 0; b < measured; ++b) {
      baseline->SampleBatch(algorithm, batches[static_cast<size_t>(b)], rng);
    }
    const double elapsed = VirtualMs() - t0;
    best = rep == 0 ? elapsed : std::min(best, elapsed);
  }
  return CellResult::Ok(best * static_cast<double>(total) /
                        static_cast<double>(measured));
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const std::string& label, const std::vector<std::string>& cells,
              int label_width, int cell_width) {
  std::printf("%-*s", label_width, label.c_str());
  for (const std::string& cell : cells) {
    std::printf(" %*s", cell_width, cell.c_str());
  }
  std::printf("\n");
}

}  // namespace gs::bench
