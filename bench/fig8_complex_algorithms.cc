// Figure 8: sampling time for the 4 complex algorithms (LADIES, AS-GCN,
// PASS, ShaDow) across systems and datasets, normalized to gSampler. The
// vertex-centric systems (SkyWalker/GunRock/cuGraph) cannot express these
// algorithms at all — the paper's generality argument.

#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  config.max_batches = 16;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();

  const std::vector<std::string> algorithms = {"LADIES", "AS-GCN", "PASS", "ShaDow"};
  const std::vector<std::string> systems = {"DGL-GPU", "DGL-CPU", "PyG-CPU", "SkyWalker"};
  const std::vector<std::string> datasets = graph::BenchmarkDatasetNames();

  for (const std::string& algo : algorithms) {
    PrintTitle("Figure 8 — " + algo + " (epoch sampling time, normalized to gSampler)");
    PrintRow("system", datasets);

    std::map<std::string, double> gsampler_ms;
    std::vector<std::string> row;
    for (const std::string& ds : datasets) {
      CellResult r = ctx.RunGsampler(ds, algo, gpu);
      gsampler_ms[ds] = r.epoch_ms;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2fms", r.epoch_ms);
      row.push_back(buf);
    }
    PrintRow("gSampler", row);

    for (const std::string& system : systems) {
      row.clear();
      for (const std::string& ds : datasets) {
        CellResult r = ctx.RunBaseline(system, ds, algo, gpu);
        if (r.status != CellResult::Status::kOk) {
          row.push_back(FormatCell(r, 0));
        } else {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.2fx", r.epoch_ms / gsampler_ms[ds]);
          row.push_back(buf);
        }
      }
      PrintRow(system, row);
    }
  }
  std::printf("\n(Paper shape: gSampler and DGL-GPU are the only GPU systems able to run\n"
              " these; gSampler wins, with the largest LADIES margins; DGL-CPU times\n"
              " out on the large graphs for LADIES/AS-GCN/PASS; PyG only offers a CPU\n"
              " ShaDow.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
