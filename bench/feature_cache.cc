// Feature-serving cache sweep (gs::feature): cache budget x admission
// policy -> hit rate -> end-to-end epoch time, for GraphSAGE on a sharply
// skewed UVA-resident R-MAT graph (power-law degrees, host-resident
// features).
//
// Each cell samples a fixed epoch of mini-batches and gathers the feature
// rows of every batch's result frontier through one HotSetCache; the first
// epoch warms the cache, the second (identical) epoch is measured. Misses
// cross host DRAM + PCIe on the model clock, hits stay at device rates, so
// the skewed access pattern the paper's future-direction (1) points at shows
// up directly: frequency-EMA admission reaches a >=90% hit rate with a cache
// budget of 10% of the nodes, and epoch time falls monotonically as the
// budget grows. A final row reports the sampling/gather overlap
// (pipeline depth 2) at the headline configuration.
//
// Usage: feature_cache [--scale=0.5] [--batches=16]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "bench/harness.h"
#include "feature/hot_set_cache.h"
#include "feature/pipeline.h"
#include "feature/store.h"
#include "graph/generator.h"

namespace gs::bench {
namespace {

struct Sweep {
  double scale = 0.5;
  int64_t batches = 16;
  int64_t batch_size = 256;
};

struct Cell {
  double hit_rate = 0.0;
  double epoch_ms = 0.0;    // measured (second) epoch, serial timeline
  double miss_mb = 0.0;
  double overlap_speedup = 1.0;  // serial/pipelined virtual time at depth 2
};

// The nodes whose features a batch needs: the last id-typed output (the
// result frontier) when the program produces one, else the seeds — the same
// policy the serving tier uses.
tensor::IdArray FeatureFrontier(const std::vector<core::Value>& outputs,
                                const tensor::IdArray& seeds) {
  for (auto it = outputs.rbegin(); it != outputs.rend(); ++it) {
    if (it->kind == core::ValueKind::kIds && it->ids.defined() && !it->ids.empty()) {
      return it->ids;
    }
  }
  return seeds;
}

Cell RunCell(const Sweep& sweep, double budget_fraction, feature::Admission admission) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  // Sharply skewed R-MAT (the regime the paper's future-direction (1) points
  // at): hub nodes dominate the sampled frontiers, so a small hot set covers
  // most feature gathers. UVA-resident, so features live in host memory.
  graph::RMatParams params;
  params.name = "powerlaw";
  params.num_nodes = static_cast<int64_t>(80'000 * sweep.scale);
  params.num_edges = params.num_nodes * 10;
  params.a = 0.77;
  params.b = 0.11;
  params.c = 0.11;
  params.uva = true;
  params.seed = 0xFEA7;
  graph::Graph g = graph::MakeRMatGraph(params);

  feature::FeatureStore store(g.features());
  const int64_t capacity = std::max<int64_t>(
      4, static_cast<int64_t>(static_cast<double>(g.num_nodes()) * budget_fraction));
  feature::HotSetCache cache(feature::HotSetCacheOptions{
      .capacity = capacity, .admission = admission, .entry_bytes = store.row_bytes()});

  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {25, 10}});
  core::SamplerOptions options;
  options.super_batch = 1;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors),
                                std::move(options));

  const int64_t pool = g.train_ids().size();
  {
    std::vector<int32_t> warm(static_cast<size_t>(std::min<int64_t>(32, pool)));
    for (size_t i = 0; i < warm.size(); ++i) {
      warm[i] = g.train_ids()[static_cast<int64_t>(i)];
    }
    sampler.Warmup(tensor::IdArray::FromVector(warm));
  }
  const int64_t batches = std::min(sweep.batches, pool / sweep.batch_size);
  auto sample_fn = [&](int64_t b) {
    std::vector<int32_t> seeds(static_cast<size_t>(sweep.batch_size));
    for (int64_t i = 0; i < sweep.batch_size; ++i) {
      seeds[static_cast<size_t>(i)] = g.train_ids()[(b * sweep.batch_size + i) % pool];
    }
    const tensor::IdArray frontier = tensor::IdArray::FromVector(seeds);
    return FeatureFrontier(sampler.SampleSeeded(frontier, static_cast<uint64_t>(b)), frontier);
  };
  auto consume_fn = [](int64_t, const tensor::Tensor&) {};

  // Epoch 1 warms the cache (admission learns the access skew), epoch 2 is
  // the steady state every column reports. Depth 0 = one serial timeline, so
  // the epoch time includes every gather miss at host+PCIe rates; it is read
  // off the deterministic model clock (identical sampling work in every
  // cell, so only the miss bytes move it).
  RunSampleGatherPipeline(batches, sample_fn, store, &cache, consume_fn, {.depth = 0});
  const int64_t model_before = dev.stream().counters().model_ns;
  const feature::OverlapReport serial =
      RunSampleGatherPipeline(batches, sample_fn, store, &cache, consume_fn, {.depth = 0});
  const int64_t model_after = dev.stream().counters().model_ns;
  const feature::OverlapReport overlapped =
      RunSampleGatherPipeline(batches, sample_fn, store, &cache, consume_fn, {.depth = 2});

  Cell cell;
  cell.hit_rate = serial.gather.HitRate();
  cell.epoch_ms = static_cast<double>(model_after - model_before) / 1e6;
  cell.miss_mb = static_cast<double>(serial.gather.miss_bytes) / 1e6;
  cell.overlap_speedup = overlapped.metrics.OverlapSpeedup();
  return cell;
}

int Run(const Sweep& sweep) {
  PrintTitle("feature cache sweep — GraphSAGE on power-law R-MAT, steady-state epoch");
  std::printf("(budget = cache capacity as a fraction of |V|; epoch = serial sample+gather;\n"
              " overlap = serial/pipelined virtual time with gather overlapped at depth 2)\n\n");
  PrintRow("budget", {"static hit", "lru hit", "ema hit", "ema epoch ms", "ema overlap", "ema miss MB"});

  const std::vector<double> budgets = {0.01, 0.03, 0.1, 0.3};
  std::vector<double> ema_epoch_ms;
  double ema_hit_at_10pct = 0.0;
  for (double budget : budgets) {
    const Cell stat = RunCell(sweep, budget, feature::Admission::kStaticDegree);
    const Cell lru = RunCell(sweep, budget, feature::Admission::kLru);
    const Cell ema = RunCell(sweep, budget, feature::Admission::kFrequencyEma);
    ema_epoch_ms.push_back(ema.epoch_ms);
    if (budget == 0.1) {
      ema_hit_at_10pct = ema.hit_rate;
    }
    char label[64], c1[64], c2[64], c3[64], c4[64], c5[64], c6[64];
    std::snprintf(label, sizeof(label), "%.2f", budget);
    std::snprintf(c1, sizeof(c1), "%.1f%%", 100.0 * stat.hit_rate);
    std::snprintf(c2, sizeof(c2), "%.1f%%", 100.0 * lru.hit_rate);
    std::snprintf(c3, sizeof(c3), "%.1f%%", 100.0 * ema.hit_rate);
    std::snprintf(c4, sizeof(c4), "%.2f", ema.epoch_ms);
    std::snprintf(c5, sizeof(c5), "%.2fx", ema.overlap_speedup);
    std::snprintf(c6, sizeof(c6), "%.2f", ema.miss_mb);
    PrintRow(label, {c1, c2, c3, c4, c5, c6});
  }

  bool monotone = true;
  for (size_t i = 1; i < ema_epoch_ms.size(); ++i) {
    monotone = monotone && ema_epoch_ms[i] <= ema_epoch_ms[i - 1] + 1e-9;
  }
  std::printf("\nfrequency-EMA hit rate at 10%% budget: %.1f%% (target >= 90%%) — %s\n",
              100.0 * ema_hit_at_10pct, ema_hit_at_10pct >= 0.9 ? "ok" : "MISS");
  std::printf("epoch time monotone non-increasing with budget: %s\n",
              monotone ? "ok" : "VIOLATED");
  std::printf("\n(Skewed access: a small hot set absorbs most gathers, so the hit rate\n"
              " climbs steeply with budget and the epoch time tracks the miss bytes\n"
              " crossing host DRAM + PCIe; overlap hides the remaining gather time\n"
              " behind sampling.)\n");
  return (ema_hit_at_10pct >= 0.9 && monotone) ? 0 : 1;
}

}  // namespace
}  // namespace gs::bench

int main(int argc, char** argv) {
  gs::bench::Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      sweep.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--batches=", 10) == 0) {
      sweep.batches = std::atoll(argv[i] + 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  return gs::bench::Run(sweep);
}
