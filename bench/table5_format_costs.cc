// Table 5: per-operator cost of the LADIES operators on each sparse format,
// plus format-conversion costs, on the PD graph. This is the measurement
// that motivates cost-aware data layout selection (Section 4.3): no single
// format is best for every operator, and conversions are not free.

#include <cstdio>

#include "bench/harness.h"
#include "sparse/kernels.h"

namespace gs::bench {
namespace {

using sparse::Format;
using sparse::Matrix;

double VirtualMs() {
  return static_cast<double>(device::Current().stream().counters().virtual_ns) / 1e6;
}

// Rebuilds the base matrix with exactly one format materialized.
Matrix OnlyFormat(const Matrix& m, Format f) {
  switch (f) {
    case Format::kCsc:
      return Matrix::FromCsc(m.num_rows(), m.num_cols(), m.Csc());
    case Format::kCsr:
      return Matrix::FromCsr(m.num_rows(), m.num_cols(), m.Csr());
    case Format::kCoo:
      return Matrix::FromCoo(m.num_rows(), m.num_cols(), m.GetCoo());
  }
  return m;
}

template <typename Fn>
double MeasureMs(Fn&& fn, int repeats = 5) {
  const double t0 = VirtualMs();
  for (int i = 0; i < repeats; ++i) {
    fn();
  }
  return (VirtualMs() - t0) / repeats;
}

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();
  device::Device& dev = ctx.DeviceFor(gpu);
  const graph::Graph& g = ctx.GraphFor("PD", gpu);
  device::DeviceGuard guard(dev);

  // Frontier of 256 nodes, like one LADIES mini-batch.
  std::vector<int32_t> fr;
  for (int i = 0; i < 256; ++i) {
    fr.push_back(i * 7 % static_cast<int32_t>(g.num_nodes()));
  }
  const tensor::IdArray frontiers = tensor::IdArray::FromVector(fr);
  Rng rng(5);

  PrintTitle("Table 5 — LADIES operator cost (ms) per format, PD graph");
  PrintRow("operator", {"CSC", "COO", "CSR"});

  const std::vector<Format> formats = {Format::kCsc, Format::kCoo, Format::kCsr};

  // Row 1: A[:, frontiers] on each base-graph format.
  {
    std::vector<std::string> row;
    for (Format f : formats) {
      Matrix base = OnlyFormat(g.adj(), f);
      const double ms = MeasureMs([&] { sparse::SliceColumns(base, frontiers); });
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      row.push_back(buf);
    }
    PrintRow("A[:,frontiers]", row);
  }

  // Rows 2-3 operate on the extracted sub-matrix held in each format.
  Matrix sub_csc = sparse::SliceColumns(g.adj(), frontiers);
  sparse::ValueArray probs = sparse::SumAxis(sub_csc, 0);
  {
    std::vector<std::string> row;
    for (Format f : formats) {
      Matrix sub = OnlyFormat(sub_csc, f);
      const double ms = MeasureMs([&] { sparse::SumAxis(sub, 0); });
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      row.push_back(buf);
    }
    PrintRow("sub_A.sum()", row);
  }
  {
    std::vector<std::string> row;
    for (Format f : formats) {
      Matrix sub = OnlyFormat(sub_csc, f);
      const double ms =
          MeasureMs([&] { sparse::CollectiveSample(sub, 256, probs, rng); });
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      row.push_back(buf);
    }
    PrintRow("collective_samp", row);
  }

  // Conversion costs on the extracted sub-matrix.
  {
    const double csc2coo = MeasureMs([&] {
      Matrix m = OnlyFormat(sub_csc, Format::kCsc);
      m.GetCoo();
    });
    const double coo2csr = MeasureMs([&] {
      Matrix m = OnlyFormat(sub_csc, Format::kCoo);
      m.Csr();
    });
    char a[64];
    char b[64];
    std::snprintf(a, sizeof(a), "%.3f", csc2coo);
    std::snprintf(b, sizeof(b), "%.3f", coo2csr);
    PrintRow("CSC2COO", {a});
    PrintRow("COO2CSR", {b});
  }

  std::printf("\n(Paper shape: extraction is far cheapest from CSC; reduction and\n"
              " collective sampling prefer CSR; conversions cost real time — hence\n"
              " the cost-aware layout search.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
