// Table 8: end-to-end training time and final accuracy for GraphSAGE and
// LADIES on the (Ogbn-Products-like) labelled graph, comparing the gSampler
// pipeline against DGL (GPU) and PyG (CPU). Because every pipeline runs the
// same sampling logic, accuracies must agree to within noise; gSampler's
// faster sampling shortens total training time.

#include <cstdio>

#include "bench/harness.h"
#include "bench/train_util.h"

namespace gs::bench {
namespace {

struct Outcome {
  double total_s;
  float accuracy;
};

Outcome RunPipeline(const std::string& system, const std::string& kind) {
  const device::DeviceProfile profile =
      system == "PyG" ? device::CpuSim("PyG-CPU", 150.0) : device::V100Sim();
  device::Device dev(profile);
  device::DeviceGuard guard(dev);
  graph::Graph g = MakeTrainingGraph(0.5);

  gnn::TrainerConfig config;
  config.model = kind == "sage" ? gnn::ModelKind::kSage : gnn::ModelKind::kGcn;
  config.epochs = 8;
  config.batch_size = 256;
  config.hidden = 64;
  config.learning_rate = 0.4f;

  gnn::SampleFn sampler;
  if (system == "gSampler") {
    core::SamplerOptions opts;
    opts.super_batch = 1;  // training consumes batches one by one here
    sampler = MakeGsamplerFn(g, kind, opts);
    // One warmup batch triggers the layout calibration outside the training
    // loop (its cost is amortized over the whole run in practice).
    tensor::IdArray warmup = tensor::IdArray::Empty(config.batch_size);
    std::copy_n(g.train_ids().data(), warmup.size(), warmup.data());
    Rng rng(1);
    sampler(warmup, rng);
  } else {
    sampler = MakeEagerFn(g, kind);  // DGL / PyG eager pipelines
  }
  gnn::TrainOutcome outcome = gnn::Train(g, sampler, config);
  return {outcome.total_ms / 1e3, outcome.final_accuracy};
}

void Run() {
  PrintTitle("Table 8 — end-to-end training (simulated seconds, final accuracy)");
  PrintRow("algorithm", {"system", "time (s)", "accuracy"});
  const std::vector<std::pair<std::string, std::vector<std::string>>> grid = {
      {"sage", {"gSampler", "DGL", "PyG"}},
      {"ladies", {"gSampler", "DGL"}},
  };
  for (const auto& [kind, systems] : grid) {
    const std::string label = kind == "sage" ? "GraphSAGE" : "LADIES";
    bool first = true;
    for (const std::string& system : systems) {
      const Outcome o = RunPipeline(system, kind);
      char t[64];
      char a[64];
      std::snprintf(t, sizeof(t), "%.2f", o.total_s);
      std::snprintf(a, sizeof(a), "%.2f%%", 100.0 * o.accuracy);
      PrintRow(first ? label : "", {system, t, a});
      first = false;
    }
  }
  std::printf("\n(Paper: GraphSAGE 226/323/13082 s at ~90.4%% accuracy; LADIES 451/809 s\n"
              " at ~89.4%%. Shape to check: all systems converge to the same accuracy\n"
              " for a given algorithm; gSampler's pipeline is the fastest; PyG-CPU is\n"
              " orders of magnitude slower.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
