// Plan-reload benchmark: what ahead-of-time plan artifacts actually buy.
//
// Part 1 — per algorithm: wall time to stand up a ready-to-sample session
// cold (trace + pass pipeline + layout calibration + warmup) vs from a
// serialized plan (deserialize + re-bind + warmup; passes and calibration
// skipped). The reload path's savings grow with pass-pipeline and
// calibration cost, so it is the ahead-of-time compilation story in one
// number per algorithm.
//
// Part 2 — serving cold start: first-request latency and overall p95 of a
// freshly started server, with and without a persisted plan directory
// (ServerOptions::plan_dir). The warm-started server must answer its first
// request from the plan cache (compile_ns == 0).
//
// Output: one single-line JSON record per cell on stdout (standard bench
// harness convention), human-readable summary on stderr.
//
// Usage: plan_reload [--scale=0.1] [--requests=50]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/plan.h"
#include "device/device.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "serving/request.h"
#include "serving/server.h"

namespace {

struct Sweep {
  double scale = 0.1;
  int64_t requests = 50;
};

std::shared_ptr<gs::core::SamplerSession> OpenSession(const std::string& algorithm,
                                                      const gs::graph::Graph& g,
                                                      std::shared_ptr<gs::core::CompiledPlan> plan) {
  gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(algorithm, g);
  auto session =
      std::make_shared<gs::core::SamplerSession>(std::move(plan), g, std::move(ap.tensors));
  if (algorithm == "HetGNN") {
    session->BindGraph("rel0", &g.adj());
    session->BindGraph("rel1", &g.adj());
  }
  session->Warmup(gs::tensor::IdArray::FromVector({0, 1, 2, 3, 4, 5, 6, 7}));
  return session;
}

// One algorithm: cold session stand-up vs reload from a serialized artifact.
void RunReloadCell(const std::string& algorithm, const gs::graph::Graph& g) {
  gs::Timer cold_timer;
  gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(algorithm, g);
  gs::core::SamplerOptions options;
  if (ap.updates_model) {
    options.super_batch = 1;
  }
  auto plan = std::make_shared<gs::core::CompiledPlan>(std::move(ap.program), options, algorithm);
  auto cold = OpenSession(algorithm, g, plan);
  const int64_t cold_ns = cold_timer.ElapsedNanos();

  const std::string text = plan->Serialize();
  gs::Timer reload_timer;
  std::shared_ptr<gs::core::CompiledPlan> loaded = gs::core::CompiledPlan::Deserialize(text);
  auto warm = OpenSession(algorithm, g, loaded);
  const int64_t reload_ns = reload_timer.ElapsedNanos();

  const double speedup =
      reload_ns > 0 ? static_cast<double>(cold_ns) / static_cast<double>(reload_ns) : 0.0;
  std::printf(
      "{\"bench\":\"plan_reload\",\"algorithm\":\"%s\",\"artifact_bytes\":%lld,"
      "\"cold_us\":%lld,\"reload_us\":%lld,\"speedup\":%.2f}\n",
      algorithm.c_str(), static_cast<long long>(text.size()),
      static_cast<long long>(cold_ns / 1000), static_cast<long long>(reload_ns / 1000), speedup);
  std::fprintf(stderr, "%12s | %9lld %9lld | %6.2fx | %7lld B\n", algorithm.c_str(),
               static_cast<long long>(cold_ns / 1000), static_cast<long long>(reload_ns / 1000),
               speedup, static_cast<long long>(text.size()));
}

// One serving cell: start a server (optionally against a persisted plan
// dir), submit `requests` sequential requests, report first-request latency
// + compile time and the overall p95.
void RunServingCell(const gs::graph::Graph& g, const Sweep& sweep, const std::string& plan_dir,
                    bool warm_start) {
  gs::serving::ServerOptions options;
  options.num_workers = 2;
  if (warm_start) {
    options.plan_dir = plan_dir;
  }
  gs::serving::Server server(options);
  server.RegisterEndpoint(gs::serving::MakeEndpoint("GraphSAGE", "PD", g));
  server.Start();

  std::vector<int64_t> latencies;
  int64_t first_us = 0;
  int64_t first_compile_us = 0;
  bool first_hit = false;
  for (int64_t i = 0; i < sweep.requests; ++i) {
    gs::serving::SampleRequest req;
    req.algorithm = "GraphSAGE";
    req.dataset = "PD";
    req.seeds = gs::tensor::IdArray::FromVector(
        {static_cast<int32_t>(i % g.num_nodes()), static_cast<int32_t>((i * 7 + 1) % g.num_nodes())});
    req.seed = static_cast<uint64_t>(i);
    gs::Timer timer;
    gs::serving::SampleResponse r = server.Submit(req).get();
    const int64_t us = timer.ElapsedNanos() / 1000;
    if (r.status != gs::serving::Status::kOk) {
      std::fprintf(stderr, "plan_reload: request %lld failed: %s\n", static_cast<long long>(i),
                   r.error.c_str());
      continue;
    }
    latencies.push_back(us);
    if (i == 0) {
      first_us = us;
      first_compile_us = r.stages.compile_ns / 1000;
      first_hit = r.stages.plan_cache_hit;
    }
  }
  // Persist the plans for the warm-start cell that follows the cold one.
  server.SavePlans(plan_dir);
  server.Stop();
  const gs::serving::ServerStats stats = server.stats();

  std::sort(latencies.begin(), latencies.end());
  const int64_t p95 =
      latencies.empty() ? 0 : latencies[latencies.size() - 1 - latencies.size() / 20];
  std::printf(
      "{\"bench\":\"plan_reload_serving\",\"warm_start\":%d,\"requests\":%lld,"
      "\"first_request_us\":%lld,\"first_compile_us\":%lld,\"first_hit\":%d,"
      "\"p95_us\":%lld,\"plan_misses\":%lld,\"plans_loaded\":%lld}\n",
      warm_start ? 1 : 0, static_cast<long long>(sweep.requests),
      static_cast<long long>(first_us), static_cast<long long>(first_compile_us),
      first_hit ? 1 : 0, static_cast<long long>(p95),
      static_cast<long long>(stats.plan_cache_misses),
      static_cast<long long>(stats.plans_loaded));
  std::fprintf(stderr, "%12s | first %7lld us (compile %7lld us, hit=%d) | p95 %7lld us\n",
               warm_start ? "warm-start" : "cold-start", static_cast<long long>(first_us),
               static_cast<long long>(first_compile_us), first_hit ? 1 : 0,
               static_cast<long long>(p95));
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      sweep.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      sweep.requests = std::atoll(argv[i] + 11);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  gs::device::Device dev(gs::device::V100Sim());
  gs::device::DeviceGuard guard(dev);
  gs::graph::Graph g = gs::graph::MakeDataset("PD", {.scale = sweep.scale, .weighted = true});
  std::fprintf(stderr, "plan_reload: PD-sim scale=%.3f nodes=%lld edges=%lld\n", sweep.scale,
               static_cast<long long>(g.num_nodes()), static_cast<long long>(g.num_edges()));

  std::fprintf(stderr, "%12s | %9s %9s | %7s | %9s\n", "algorithm", "cold(us)", "reload(us)",
               "speedup", "artifact");
  for (const std::string& algorithm : gs::algorithms::AllAlgorithmNames()) {
    RunReloadCell(algorithm, g);
  }

  const std::string plan_dir =
      (std::filesystem::temp_directory_path() / "gs_plan_reload_bench").string();
  std::filesystem::remove_all(plan_dir);
  std::fprintf(stderr, "\nserving cold start (GraphSAGE x PD, %lld sequential requests):\n",
               static_cast<long long>(sweep.requests));
  RunServingCell(g, sweep, plan_dir, /*warm_start=*/false);  // persists plans
  RunServingCell(g, sweep, plan_dir, /*warm_start=*/true);
  std::filesystem::remove_all(plan_dir);

  std::fprintf(stderr,
               "\nExpectation: reload skips passes + calibration, so it beats cold compile\n"
               "on every algorithm, and the warm-started server's first request hits the\n"
               "plan cache with zero compile time.\n");
  return 0;
}
