// Pipeline overlap study: epoch time vs prefetch depth for GraphSAGE and
// LADIES training on the PD-like labelled graph. Depth 0 is the synchronous
// reference (sample, extract, train back-to-back on one timeline); deeper
// prefetch queues overlap the stages on independent virtual timelines, so
// the simulated epoch time drops toward the slowest stage's busy time. The
// table reports the overlap efficiency and where the remaining stall time
// sits (producer-starved vs consumer-backpressured), which is how one reads
// off whether sampling or training is the bottleneck.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/train_util.h"

namespace gs::bench {
namespace {

struct DepthResult {
  int depth;
  double epoch_ms;        // simulated time per epoch (averaged)
  double speedup;         // sync epoch time / this epoch time
  double efficiency;      // overlap speedup / stage count
  double starved_ms;      // stall waiting for upstream data
  double backpressure_ms; // stall waiting for a free prefetch slot
  float accuracy;
};

DepthResult RunAtDepth(const std::string& kind, int depth) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = MakeTrainingGraph(0.5);

  // Timing-dependent knobs off: every depth must sample identical batches
  // so the comparison isolates the schedule.
  core::SamplerOptions opts;
  opts.enable_layout_selection = false;
  opts.super_batch = 1;

  gnn::TrainerConfig config;
  config.model = kind == "sage" ? gnn::ModelKind::kSage : gnn::ModelKind::kGcn;
  config.epochs = 4;
  config.batch_size = 256;
  config.hidden = 64;
  config.learning_rate = 0.4f;
  config.pipeline_depth = depth;

  const gnn::TrainOutcome outcome = gnn::Train(g, MakeGsamplerFn(g, kind, opts), config);
  const pipeline::Metrics& m = outcome.pipeline;
  DepthResult r;
  r.depth = depth;
  r.epoch_ms = m.runs > 0 ? m.EpochMs() / static_cast<double>(m.runs) : 0.0;
  r.speedup = 1.0;  // filled against the depth-0 row by the caller
  r.efficiency = m.OverlapEfficiency();
  r.starved_ms = 0.0;
  r.backpressure_ms = 0.0;
  for (const pipeline::StageMetrics& s : m.stages) {
    r.starved_ms += s.StarvedMs();
    r.backpressure_ms += s.BackpressureMs();
  }
  r.accuracy = outcome.final_accuracy;
  return r;
}

void Run() {
  PrintTitle("Pipeline overlap — epoch time vs prefetch depth (simulated ms)");
  PrintRow("algorithm", {"depth", "epoch ms", "vs sync", "overlap eff",
                         "starved ms", "backpr. ms", "accuracy"});
  for (const std::string& kind : {std::string("sage"), std::string("ladies")}) {
    const std::string label = kind == "sage" ? "GraphSAGE" : "LADIES";
    double sync_ms = 0.0;
    bool first = true;
    for (int depth : {0, 1, 2, 4}) {
      DepthResult r = RunAtDepth(kind, depth);
      if (depth == 0) {
        sync_ms = r.epoch_ms;
      }
      r.speedup = r.epoch_ms > 0 ? sync_ms / r.epoch_ms : 0.0;
      char c0[32], c1[32], c2[32], c3[32], c4[32], c5[32], c6[32];
      std::snprintf(c0, sizeof(c0), "%d", r.depth);
      std::snprintf(c1, sizeof(c1), "%.2f", r.epoch_ms);
      std::snprintf(c2, sizeof(c2), "%.2fx", r.speedup);
      std::snprintf(c3, sizeof(c3), "%.0f%%", 100.0 * r.efficiency);
      std::snprintf(c4, sizeof(c4), "%.2f", r.starved_ms);
      std::snprintf(c5, sizeof(c5), "%.2f", r.backpressure_ms);
      std::snprintf(c6, sizeof(c6), "%.2f%%", 100.0 * r.accuracy);
      PrintRow(first ? label : "", {c0, c1, c2, c3, c4, c5, c6});
      first = false;
    }
  }
  std::printf("\n(Shape to check: identical accuracy at every depth — the pipeline is\n"
              " bit-deterministic — and epoch time dropping from depth 0 to 2, then\n"
              " flat: once the slowest stage is saturated, extra prefetch depth only\n"
              " adds queued batches, not speed. Stall time shifts from starved to\n"
              " backpressured as depth grows.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
