// Figure 9: sampling time on the weaker T4-class device for GraphSAGE and
// LADIES, gSampler vs DGL. The expected shape: gSampler still wins on every
// dataset, but by smaller factors than on V100 (T4 has 30% of the memory
// bandwidth and 51.6% of the FLOPS).

#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  config.max_batches = 16;
  BenchContext ctx(config);
  const std::vector<std::string> datasets = graph::BenchmarkDatasetNames();

  for (const device::DeviceProfile& gpu : {device::T4Sim(), device::V100Sim()}) {
    for (const std::string& algo : {std::string("GraphSAGE"), std::string("LADIES")}) {
      PrintTitle("Figure 9 — " + algo + " on " + gpu.name + " (epoch ms)");
      PrintRow("system", datasets);
      std::map<std::string, double> gsampler_ms;
      std::vector<std::string> row;
      for (const std::string& ds : datasets) {
        CellResult r = ctx.RunGsampler(ds, algo, gpu);
        gsampler_ms[ds] = r.epoch_ms;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f", r.epoch_ms);
        row.push_back(buf);
      }
      PrintRow("gSampler", row);
      row.clear();
      for (const std::string& ds : datasets) {
        CellResult r = ctx.RunBaseline("DGL-GPU", ds, algo, gpu);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f (%.2fx)", r.epoch_ms,
                      r.epoch_ms / gsampler_ms[ds]);
        row.push_back(buf);
      }
      PrintRow("DGL", row, 14, 16);
    }
  }
  std::printf("\n(Paper shape: gSampler beats DGL on T4 for every dataset, but the\n"
              " speedup factors are smaller than on V100.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
