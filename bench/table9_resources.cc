// Table 9: GPU resource consumption (extra device memory, SM utilization
// proxy) of gSampler vs DGL for the four complex algorithms on PD.

#include <cstdio>

#include "algorithms/algorithms.h"
#include "bench/harness.h"

namespace gs::bench {
namespace {

struct Resources {
  double memory_mb;
  double sm_percent;
};

Resources MeasureGsampler(BenchContext& ctx, const std::string& algo) {
  const device::DeviceProfile gpu = device::V100Sim();
  device::Device& dev = ctx.DeviceFor(gpu);
  const graph::Graph& g = ctx.GraphFor("PD", gpu);
  device::DeviceGuard guard(dev);

  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algo, g);
  core::SamplerOptions opts = ctx.config().gs_options;
  if (ap.updates_model) {
    opts.super_batch = 1;
  }
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  tensor::IdArray slice = tensor::IdArray::Empty(
      std::min<int64_t>(g.train_ids().size(), 16 * ctx.config().batch_size));
  std::copy_n(g.train_ids().data(), slice.size(), slice.data());
  sampler.SampleEpoch(slice, ctx.config().batch_size, nullptr);  // warmup + tuning

  const auto& before = dev.stream().counters();
  const double v0 = static_cast<double>(before.virtual_ns);
  const double o0 = before.occupancy_ns;
  const int64_t base_mem = dev.allocator().stats().bytes_in_use;
  dev.allocator().ResetPeak();
  sampler.SampleEpoch(slice, ctx.config().batch_size, nullptr);
  const auto& after = dev.stream().counters();
  Resources r;
  r.memory_mb =
      static_cast<double>(dev.allocator().stats().peak_bytes_in_use - base_mem) / 1e6;
  const double dv = static_cast<double>(after.virtual_ns) - v0;
  r.sm_percent = dv > 0 ? 100.0 * (after.occupancy_ns - o0) / dv : 0.0;
  return r;
}

Resources MeasureDgl(BenchContext& ctx, const std::string& algo) {
  const device::DeviceProfile gpu = device::V100Sim();
  device::Device& dev = ctx.DeviceFor(gpu);
  const graph::Graph& g = ctx.GraphFor("PD", gpu);
  device::DeviceGuard guard(dev);

  auto baseline = baselines::MakeBaseline("DGL-GPU", g);
  Rng rng(0xDEAD);
  std::vector<int32_t> fr(static_cast<size_t>(ctx.config().batch_size));
  for (size_t i = 0; i < fr.size(); ++i) {
    fr[i] = static_cast<int32_t>(g.train_ids()[static_cast<int64_t>(i)]);
  }
  const tensor::IdArray batch = tensor::IdArray::FromVector(fr);
  baseline->SampleBatch(algo, batch, rng);  // warmup

  const auto& before = dev.stream().counters();
  const double v0 = static_cast<double>(before.virtual_ns);
  const double o0 = before.occupancy_ns;
  const int64_t base_mem = dev.allocator().stats().bytes_in_use;
  dev.allocator().ResetPeak();
  for (int b = 0; b < 16; ++b) {
    baseline->SampleBatch(algo, batch, rng);
  }
  const auto& after = dev.stream().counters();
  Resources r;
  r.memory_mb =
      static_cast<double>(dev.allocator().stats().peak_bytes_in_use - base_mem) / 1e6;
  const double dv = static_cast<double>(after.virtual_ns) - v0;
  r.sm_percent = dv > 0 ? 100.0 * (after.occupancy_ns - o0) / dv : 0.0;
  return r;
}

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  BenchContext ctx(config);

  PrintTitle("Table 9 — GPU resource consumption, PD graph");
  PrintRow("algorithm", {"system", "mem (MB)", "SM (%)"});
  for (const std::string& algo :
       {std::string("LADIES"), std::string("AS-GCN"), std::string("PASS"),
        std::string("ShaDow")}) {
    const Resources mine = MeasureGsampler(ctx, algo);
    const Resources dgl = MeasureDgl(ctx, algo);
    char mem[64];
    char sm[64];
    std::snprintf(mem, sizeof(mem), "%.2f", mine.memory_mb);
    std::snprintf(sm, sizeof(sm), "%.1f", mine.sm_percent);
    PrintRow(algo, {"gSampler", mem, sm});
    std::snprintf(mem, sizeof(mem), "%.2f", dgl.memory_mb);
    std::snprintf(sm, sizeof(sm), "%.1f", dgl.sm_percent);
    PrintRow("", {"DGL", mem, sm});
  }
  std::printf("\n(Paper shape: gSampler's SM utilization is well above DGL's — 1.6-2.5x\n"
              " — thanks to fusion and super-batching; its memory use is lower for\n"
              " the compute-heavy algorithms, while super-batched LADIES trades some\n"
              " extra memory for utilization.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
