// Figure 7: sampling time for the 3 simple algorithms (DeepWalk, Node2Vec,
// GraphSAGE) across systems and the 4 datasets, normalized to gSampler
// (= 1.0). "N/A" marks algorithm/UVA gaps, "TO" the paper's >10h timeouts.

#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  config.max_batches = 20;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();

  const std::vector<std::string> algorithms = {"DeepWalk", "Node2Vec", "GraphSAGE"};
  const std::vector<std::string> systems = {"DGL-GPU",   "DGL-CPU", "PyG-GPU", "PyG-CPU",
                                            "SkyWalker", "GunRock", "cuGraph"};
  const std::vector<std::string> datasets = graph::BenchmarkDatasetNames();

  for (const std::string& algo : algorithms) {
    PrintTitle("Figure 7 — " + algo + " (epoch sampling time, normalized to gSampler)");
    PrintRow("system", datasets);

    std::map<std::string, double> gsampler_ms;
    std::vector<std::string> row;
    for (const std::string& ds : datasets) {
      CellResult r = ctx.RunGsampler(ds, algo, gpu);
      gsampler_ms[ds] = r.epoch_ms;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2fms", r.epoch_ms);
      row.push_back(buf);
    }
    PrintRow("gSampler", row);

    for (const std::string& system : systems) {
      row.clear();
      for (const std::string& ds : datasets) {
        CellResult r = ctx.RunBaseline(system, ds, algo, gpu);
        if (r.status != CellResult::Status::kOk) {
          row.push_back(FormatCell(r, 0));
        } else {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.2fx", r.epoch_ms / gsampler_ms[ds]);
          row.push_back(buf);
        }
      }
      PrintRow(system, row);
    }
  }
  std::printf("\n(Cells are slowdown factors vs gSampler; gSampler row shows absolute\n"
              " simulated epoch time. Paper shape: gSampler fastest everywhere;\n"
              " SkyWalker the best baseline on simple algorithms; CPU systems 1-2\n"
              " orders slower; cuGraph slow for mini-batches.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
