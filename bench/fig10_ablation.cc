// Figure 10: optimization breakdown for GraphSAGE and LADIES on PD and PP,
// reported as speedup over DGL. Configurations:
//   P   — plain gSampler: no fusion, no pre-processing, greedy formats
//   C   — + computation optimizations (fusion + pre-processing), greedy layouts
//   CD  — + cost-aware data layout selection
//   CDB — + super-batch sampling (full gSampler)

#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

core::SamplerOptions MakeOptions(bool compute, bool layout, bool super_batch) {
  core::SamplerOptions opts;
  opts.enable_fusion = compute;
  opts.enable_preprocessing = compute;
  opts.enable_layout_selection = layout;
  // Without 'D', formats are chosen greedily per operator ignoring
  // conversion cost — the paper's description of the non-D configurations.
  opts.greedy_when_layout_disabled = true;
  opts.super_batch = super_batch ? 0 : 1;
  return opts;
}

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  // Smaller batches leave the device under-utilized (Figure 6), which is
  // precisely the regime super-batch sampling targets.
  config.batch_size = 128;
  config.max_batches = 24;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();

  const std::vector<std::pair<std::string, core::SamplerOptions>> configs = {
      {"P", MakeOptions(false, false, false)},
      {"C", MakeOptions(true, false, false)},
      {"CD", MakeOptions(true, true, false)},
      {"CDB", MakeOptions(true, true, true)},
  };

  for (const std::string& ds : {std::string("PD"), std::string("PP")}) {
    for (const std::string& algo : {std::string("GraphSAGE"), std::string("LADIES")}) {
      const CellResult dgl = ctx.RunBaseline("DGL-GPU", ds, algo, gpu);
      PrintTitle("Figure 10 — " + algo + " on " + ds + " (speedup over DGL = " +
                 std::to_string(dgl.epoch_ms) + " ms)");
      PrintRow("config", {"epoch ms", "vs DGL"});
      for (const auto& [label, opts] : configs) {
        const CellResult r = ctx.RunGsampler(ds, algo, gpu, opts);
        char ms[64];
        char speedup[64];
        std::snprintf(ms, sizeof(ms), "%.1f", r.epoch_ms);
        std::snprintf(speedup, sizeof(speedup), "%.2fx", dgl.epoch_ms / r.epoch_ms);
        PrintRow(label, {ms, speedup});
      }
    }
  }
  std::printf("\n(Paper shape: each optimization adds speedup. Computation fusion is\n"
              " the big win for GraphSAGE; layout selection matters most for LADIES\n"
              " (more diverse operators), especially on PP; super-batch helps\n"
              " layer-wise sampling more than node-wise, and less on the PCIe-bound\n"
              " PP graph.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
