// Serving throughput/latency sweep: offered load x coalescing on PD-sim.
//
// Unlike the paper-reproduction benches (which measure the simulated device
// clock), serving is judged on wall-clock behaviour under concurrency: an
// open-loop Poisson client sweeps offered load with coalescing on and off,
// reporting goodput, rejection rate, coalescing ratio, and p50/p95 latency.
// The headline claims this reproduces: request coalescing lifts sustainable
// throughput and cuts p95 latency at high offered load, and the plan cache
// amortizes compilation (misses stay O(distinct plan keys)).
//
// Sharded capacity mode (--shards=N, gs::shard): this machine cannot show
// multi-device scaling on wall clock, so the shard sweep is judged on the
// simulated device clock instead — each shard owns its own virtual timeline,
// requests route to their seed frontier's home shard, and capacity is
// requests / max-shard timeline advance. Cross-shard adjacency is charged at
// the profile's interconnect rate, so the per-hop exchange-bytes table and
// the (slightly) higher per-request latency are part of the report.
//
// Feature serving (--features, gs::feature): every response additionally
// carries the gathered feature rows for its result frontier, pulled through
// per-tenant hot-set cache partitions; the report (and --json) then includes
// the aggregate cache hit rate and gather/miss byte counts.
//
// Usage: serving_throughput [--scale=0.05] [--requests=400] [--workers=4]
//                           [--shards=4] [--vertex-cut] [--features] [--json]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "serving/loadgen.h"
#include "serving/server.h"
#include "shard/shard.h"

namespace {

struct Sweep {
  double scale = 0.05;
  int64_t requests = 400;
  int workers = 4;
  int shards = 0;  // 0 = wall-clock sweep (default); N = shard capacity mode
  bool vertex_cut = false;
  bool features = false;  // gather feature rows per response (gs::feature)
  bool json = false;      // machine-readable cell dump instead of the table
};

gs::serving::LoadGenReport RunCell(const gs::graph::Graph& graph, double rps, bool coalesce,
                                   const Sweep& sweep, gs::serving::ServerStats* stats_out) {
  gs::serving::ServerOptions options;
  options.num_workers = sweep.workers;
  options.queue_capacity = 64;
  options.coalesce_max = 8;
  options.enable_coalescing = coalesce;
  options.serve_features = sweep.features;
  gs::serving::Server server(options);
  server.RegisterEndpoint(gs::serving::MakeEndpoint("GraphSAGE", "PD", graph));
  server.Start();

  gs::serving::LoadGenOptions load;
  load.algorithm = "GraphSAGE";
  load.dataset = "PD";
  load.num_requests = sweep.requests;
  load.offered_rps = rps;
  load.batch_size = 64;
  load.num_tenants = 4;
  load.fanouts = {10, 5};
  const gs::serving::LoadGenReport report = RunOpenLoop(server, graph, load);
  server.Stop();
  *stats_out = server.stats();
  return report;
}

struct ShardCell {
  int shards = 1;
  double capacity_rps = 0;  // requests per simulated second
  int64_t p50_ns = 0;       // per-request simulated service latency
  int64_t p95_ns = 0;
  gs::shard::ExchangeStats exchange;
};

// Closed-loop capacity on the simulated clock: route every request to its
// home shard, measure its service time as that shard's virtual-timeline
// advance, and divide the request count by the busiest shard's timeline.
ShardCell RunShardCell(const gs::graph::Graph& graph, int shards, const Sweep& sweep) {
  gs::shard::ShardGroupOptions options;
  options.num_shards = shards;
  options.partition = sweep.vertex_cut ? gs::graph::PartitionKind::kVertexCut
                                       : gs::graph::PartitionKind::kEdgeCut;
  gs::algorithms::AlgorithmProgram algorithm =
      gs::algorithms::GraphSage(graph, {.fanouts = {10, 5}});
  gs::shard::ShardGroup group(graph, std::move(algorithm.program), std::move(algorithm.tensors),
                              options);

  const int64_t batch = 64;
  std::vector<int64_t> start_ns(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    start_ns[static_cast<size_t>(s)] = group.counters(s).virtual_ns;
  }
  std::vector<int64_t> latencies;
  latencies.reserve(static_cast<size_t>(sweep.requests));
  // Tenant batches have locality: tenants are spread evenly over the shards
  // and each request draws its seeds from a contiguous window of its
  // tenant's shard-local nodes, so the plurality vote routes it home
  // (uniform batches would all vote for whichever shard owns the most
  // nodes, starving the rest).
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (int64_t r = 0; r < sweep.requests; ++r) {
    const std::vector<int32_t>& local =
        group.partition().LocalNodes(static_cast<int>(r % shards));
    const int64_t pool = static_cast<int64_t>(local.size());
    const int64_t window = std::min<int64_t>(pool, 128);
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const int64_t start = static_cast<int64_t>((rng >> 33) % static_cast<uint64_t>(pool));
    std::vector<int32_t> seeds(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const int64_t offset =
          (start + static_cast<int64_t>((rng >> 33) % static_cast<uint64_t>(window))) % pool;
      seeds[static_cast<size_t>(i)] = local[static_cast<size_t>(offset)];
    }
    const gs::tensor::IdArray frontier = gs::tensor::IdArray::FromVector(seeds);
    const int shard = group.Route(frontier);
    const int64_t before = group.counters(shard).virtual_ns;
    group.Sample(shard, frontier, static_cast<uint64_t>(r));
    latencies.push_back(group.counters(shard).virtual_ns - before);
  }

  int64_t busiest_ns = 0;
  for (int s = 0; s < shards; ++s) {
    busiest_ns = std::max(busiest_ns, group.counters(s).virtual_ns - start_ns[static_cast<size_t>(s)]);
  }
  std::sort(latencies.begin(), latencies.end());
  ShardCell cell;
  cell.shards = shards;
  cell.capacity_rps = busiest_ns > 0
                          ? static_cast<double>(sweep.requests) * 1e9 / static_cast<double>(busiest_ns)
                          : 0;
  cell.p50_ns = latencies[latencies.size() / 2];
  cell.p95_ns = latencies[latencies.size() * 95 / 100];
  cell.exchange = group.TotalExchange();
  return cell;
}

int RunShardSweep(const gs::graph::Graph& graph, const Sweep& sweep) {
  std::printf("shard capacity (simulated clock): PD-sim nodes=%lld, %lld requests, %s partition\n\n",
              static_cast<long long>(graph.num_nodes()), static_cast<long long>(sweep.requests),
              sweep.vertex_cut ? "vertex-cut" : "edge-cut");
  std::printf("%7s | %14s %8s | %9s %9s | %12s %10s\n", "shards", "capacity(r/s)", "speedup",
              "p50(us)", "p95(us)", "exch(bytes)", "exch(us)");

  std::vector<int> counts;
  for (int s = 1; s <= sweep.shards; s *= 2) {
    counts.push_back(s);
  }
  if (counts.back() != sweep.shards) {
    counts.push_back(sweep.shards);
  }
  double base_capacity = 0;
  ShardCell last;
  for (int s : counts) {
    const ShardCell cell = RunShardCell(graph, s, sweep);
    if (s == 1) {
      base_capacity = cell.capacity_rps;
    }
    std::printf("%7d | %14.0f %7.2fx | %9lld %9lld | %12lld %10lld\n", s, cell.capacity_rps,
                base_capacity > 0 ? cell.capacity_rps / base_capacity : 0.0,
                static_cast<long long>(cell.p50_ns / 1000),
                static_cast<long long>(cell.p95_ns / 1000),
                static_cast<long long>(cell.exchange.bytes),
                static_cast<long long>(cell.exchange.exchange_ns / 1000));
    last = cell;
  }

  std::printf("\nper-hop exchange at %d shards (all requests):\n", last.shards);
  std::printf("%5s | %15s %13s %13s %11s\n", "hop", "frontier_nodes", "remote_nodes", "bytes",
              "exch(us)");
  for (const gs::shard::HopRecord& hop : last.exchange.per_hop) {
    std::printf("%5d | %15lld %13lld %13lld %11lld\n", hop.hop,
                static_cast<long long>(hop.frontier_nodes),
                static_cast<long long>(hop.remote_nodes), static_cast<long long>(hop.bytes),
                static_cast<long long>(hop.exchange_ns / 1000));
  }
  std::printf(
      "\nExpectation: capacity scales ~linearly with the shard count (every shard\n"
      "samples on its own timeline) while p95 stays near the single-shard value —\n"
      "the exchange charge is the only per-request overhead sharding adds.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      sweep.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      sweep.requests = std::atoll(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      sweep.workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      sweep.shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--vertex-cut") == 0) {
      sweep.vertex_cut = true;
    } else if (std::strcmp(argv[i], "--features") == 0) {
      sweep.features = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      sweep.json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  gs::graph::Graph graph = gs::graph::MakeDataset("PD", {.scale = sweep.scale});
  if (sweep.shards > 0) {
    return RunShardSweep(graph, sweep);
  }
  if (sweep.json) {
    std::printf("{\"bench\": \"serving_throughput\", \"scale\": %.3f, \"requests\": %lld,\n"
                " \"workers\": %d, \"features\": %s, \"cells\": [\n",
                sweep.scale, static_cast<long long>(sweep.requests), sweep.workers,
                sweep.features ? "true" : "false");
  } else {
    std::printf("serving_throughput: PD-sim scale=%.3f nodes=%lld, %lld requests, %d workers\n\n",
                sweep.scale, static_cast<long long>(graph.num_nodes()),
                static_cast<long long>(sweep.requests), sweep.workers);
    std::printf("%10s %10s | %9s %8s %8s %8s | %9s %9s", "offered", "coalesce", "goodput",
                "ok", "rejected", "ratio", "p50(us)", "p95(us)");
    if (sweep.features) {
      std::printf(" | %9s %10s %8s", "feat_hit", "gather_mb", "feat_us");
    }
    std::printf("\n");
  }

  const std::vector<double> loads = {200, 1000, 4000};
  bool first_cell = true;
  for (double rps : loads) {
    for (bool coalesce : {false, true}) {
      gs::serving::ServerStats stats;
      const gs::serving::LoadGenReport report = RunCell(graph, rps, coalesce, sweep, &stats);
      if (sweep.json) {
        std::printf("%s  {\"offered_rps\": %.0f, \"coalesce\": %s, \"goodput_rps\": %.1f,\n"
                    "   \"ok\": %lld, \"rejected\": %lld, \"coalescing_ratio\": %.3f,\n"
                    "   \"p50_us\": %lld, \"p95_us\": %lld,\n"
                    "   \"feature_hit_rate\": %.4f, \"feature_rows\": %lld,\n"
                    "   \"feature_gather_bytes\": %lld, \"feature_miss_bytes\": %lld,\n"
                    "   \"feature_gather_us\": %lld}",
                    first_cell ? "" : ",\n", rps, coalesce ? "true" : "false",
                    report.achieved_rps, static_cast<long long>(report.ok),
                    static_cast<long long>(report.rejected), stats.CoalescingRatio(),
                    static_cast<long long>(report.p50_ns / 1000),
                    static_cast<long long>(report.p95_ns / 1000), stats.FeatureHitRate(),
                    static_cast<long long>(stats.feature_rows),
                    static_cast<long long>(stats.feature_gather_bytes),
                    static_cast<long long>(stats.feature_miss_bytes),
                    static_cast<long long>(stats.feature_gather_ns / 1000));
        first_cell = false;
      } else {
        std::printf("%10.0f %10s | %9.0f %8lld %8lld %8.2f | %9lld %9lld", rps,
                    coalesce ? "on" : "off", report.achieved_rps,
                    static_cast<long long>(report.ok), static_cast<long long>(report.rejected),
                    stats.CoalescingRatio(), static_cast<long long>(report.p50_ns / 1000),
                    static_cast<long long>(report.p95_ns / 1000));
        if (sweep.features) {
          std::printf(" | %8.1f%% %10.2f %8lld", 100.0 * stats.FeatureHitRate(),
                      static_cast<double>(stats.feature_gather_bytes) / 1e6,
                      static_cast<long long>(stats.feature_gather_ns / 1000));
        }
        std::printf("\n");
      }
    }
  }
  if (sweep.json) {
    std::printf("\n]}\n");
  } else {
    std::printf(
        "\nExpectation: at high offered load, coalesce=on sustains more goodput with a\n"
        "lower p95 than coalesce=off; the coalescing ratio rises with offered load.\n");
  }
  return 0;
}
