// Serving throughput/latency sweep: offered load x coalescing on PD-sim.
//
// Unlike the paper-reproduction benches (which measure the simulated device
// clock), serving is judged on wall-clock behaviour under concurrency: an
// open-loop Poisson client sweeps offered load with coalescing on and off,
// reporting goodput, rejection rate, coalescing ratio, and p50/p95 latency.
// The headline claims this reproduces: request coalescing lifts sustainable
// throughput and cuts p95 latency at high offered load, and the plan cache
// amortizes compilation (misses stay O(distinct plan keys)).
//
// Usage: serving_throughput [--scale=0.05] [--requests=400] [--workers=4]

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/graph.h"
#include "serving/loadgen.h"
#include "serving/server.h"

namespace {

struct Sweep {
  double scale = 0.05;
  int64_t requests = 400;
  int workers = 4;
};

gs::serving::LoadGenReport RunCell(const gs::graph::Graph& graph, double rps, bool coalesce,
                                   const Sweep& sweep, gs::serving::ServerStats* stats_out) {
  gs::serving::ServerOptions options;
  options.num_workers = sweep.workers;
  options.queue_capacity = 64;
  options.coalesce_max = 8;
  options.enable_coalescing = coalesce;
  gs::serving::Server server(options);
  server.RegisterEndpoint(gs::serving::MakeEndpoint("GraphSAGE", "PD", graph));
  server.Start();

  gs::serving::LoadGenOptions load;
  load.algorithm = "GraphSAGE";
  load.dataset = "PD";
  load.num_requests = sweep.requests;
  load.offered_rps = rps;
  load.batch_size = 64;
  load.num_tenants = 4;
  load.fanouts = {10, 5};
  const gs::serving::LoadGenReport report = RunOpenLoop(server, graph, load);
  server.Stop();
  *stats_out = server.stats();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      sweep.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      sweep.requests = std::atoll(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      sweep.workers = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  gs::graph::Graph graph = gs::graph::MakeDataset("PD", {.scale = sweep.scale});
  std::printf("serving_throughput: PD-sim scale=%.3f nodes=%lld, %lld requests, %d workers\n\n",
              sweep.scale, static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(sweep.requests), sweep.workers);
  std::printf("%10s %10s | %9s %8s %8s %8s | %9s %9s\n", "offered", "coalesce", "goodput",
              "ok", "rejected", "ratio", "p50(us)", "p95(us)");

  const std::vector<double> loads = {200, 1000, 4000};
  for (double rps : loads) {
    for (bool coalesce : {false, true}) {
      gs::serving::ServerStats stats;
      const gs::serving::LoadGenReport report = RunCell(graph, rps, coalesce, sweep, &stats);
      std::printf("%10.0f %10s | %9.0f %8lld %8lld %8.2f | %9lld %9lld\n", rps,
                  coalesce ? "on" : "off", report.achieved_rps,
                  static_cast<long long>(report.ok), static_cast<long long>(report.rejected),
                  stats.CoalescingRatio(), static_cast<long long>(report.p50_ns / 1000),
                  static_cast<long long>(report.p95_ns / 1000));
    }
  }
  std::printf(
      "\nExpectation: at high offered load, coalesce=on sustains more goodput with a\n"
      "lower p95 than coalesce=off; the coalescing ratio rises with offered load.\n");
  return 0;
}
