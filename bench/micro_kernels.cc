// Micro-benchmarks (google-benchmark, real wall time) for the hot sparse
// kernels: extraction, sampling, reductions, SpMM, fused edge maps. These
// complement the virtual-clock table/figure benches with raw kernel
// throughput numbers.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/executor.h"
#include "core/ir.h"
#include "core/plan.h"
#include "graph/datasets.h"
#include "jit/jit.h"
#include "sparse/fused.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"

namespace gs {
namespace {

const graph::Graph& BenchGraph() {
  static graph::Graph g = graph::MakePD({.scale = 0.25, .weighted = true});
  return g;
}

tensor::IdArray Frontier(int64_t n) {
  const graph::Graph& g = BenchGraph();
  std::vector<int32_t> ids;
  for (int64_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<int32_t>((i * 13) % g.num_nodes()));
  }
  return tensor::IdArray::FromVector(ids);
}

void BM_SliceColumns(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SliceColumns(g.adj(), frontier));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SliceColumns)->Arg(64)->Arg(256)->Arg(1024);

void BM_FusedSliceSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::FusedSliceSample(g.adj(), frontier, 10, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FusedSliceSample)->Arg(64)->Arg(256)->Arg(1024);

void BM_UnfusedSliceSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
    benchmark::DoNotOptimize(sparse::IndividualSample(sub, 10, sparse::ValueArray{}, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnfusedSliceSample)->Arg(64)->Arg(256)->Arg(1024);

void BM_CollectiveSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(256);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  sparse::ValueArray probs = sparse::SumAxis(sub, 0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::CollectiveSample(sub, state.range(0), probs, rng));
  }
}
BENCHMARK(BM_CollectiveSample)->Arg(64)->Arg(256)->Arg(512);

void BM_SumAxisRows(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SumAxis(sub, 0));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_SumAxisRows);

void BM_SpMM(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  Rng rng(3);
  tensor::Tensor dense = tensor::Tensor::Randn({sub.num_cols(), state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SpMM(sub, dense));
  }
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_FusedEdgeMapReduce(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  std::vector<sparse::EdgeMapStage> stages(1);
  stages[0].op = BinaryOp::kPow;
  stages[0].kind = sparse::EdgeMapStage::OperandKind::kScalar;
  stages[0].scalar = 2.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::FusedEdgeMapReduce(sub, stages, {}, 0));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_FusedEdgeMapReduce);

void BM_UnfusedMapThenReduce(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  for (auto _ : state) {
    sparse::Matrix sq = sparse::EltwiseScalar(sub, BinaryOp::kPow, 2.0f);
    benchmark::DoNotOptimize(sparse::SumAxis(sq, 0));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_UnfusedMapThenReduce);

// ------------------------------------------------------------- JIT column
//
// The same fused chains executed through gs::jit's compiled kernels: each
// helper compiles a one-node program once, takes the plan's jump table, and
// benches the native entry against the interpreter loops above. Artifacts
// land in the engine's temp directory, so repeated bench runs reload the
// persisted .so instead of re-invoking the compiler.

jit::JitEngine& BenchJitEngine() {
  static jit::JitEngine engine;
  return engine;
}

sparse::EdgeMapStage ScalarStage(BinaryOp op, float scalar) {
  sparse::EdgeMapStage stage;
  stage.op = op;
  stage.kind = sparse::EdgeMapStage::OperandKind::kScalar;
  stage.scalar = scalar;
  return stage;
}

// The two-stage chain (0.5 * w^2) the fused-chain benches run end to end.
std::vector<sparse::EdgeMapStage> ChainStages() {
  return {ScalarStage(BinaryOp::kPow, 2.0f), ScalarStage(BinaryOp::kMul, 0.5f)};
}

struct JitKernel {
  std::shared_ptr<const core::FusedKernelTable> table;
  int node_id = -1;
};

// Compiles a single-fused-node program and returns its jump table plus the
// surviving node id (passes may renumber but never remove the sole output).
JitKernel CompileKernel(core::Program program, core::OpKind kind, const char* label) {
  auto plan = std::make_shared<core::CompiledPlan>(std::move(program), core::SamplerOptions{},
                                                   label);
  JitKernel kernel;
  for (int i = 0; i < plan->program().size(); ++i) {
    if (plan->program().node(i).kind == kind) {
      kernel.node_id = i;
    }
  }
  kernel.table = BenchJitEngine().TableFor(*plan);
  return kernel;
}

JitKernel CompileSliceSample(int64_t k) {
  core::Program program;
  const int gin = program.Add(core::OpKind::kGraphInput, {});
  const int fin = program.Add(core::OpKind::kFrontierInput, {});
  core::Attrs attrs;
  attrs.k = k;
  const int out = program.Add(core::OpKind::kFusedSliceSample, {gin, fin}, attrs);
  program.SetOutputs({out});
  return CompileKernel(std::move(program), core::OpKind::kFusedSliceSample, "bench-slice");
}

JitKernel CompileEdgeMap(std::vector<sparse::EdgeMapStage> stages) {
  core::Program program;
  const int gin = program.Add(core::OpKind::kGraphInput, {});
  core::Attrs attrs;
  attrs.stages = std::move(stages);
  const int out = program.Add(core::OpKind::kFusedEdgeMap, {gin}, attrs);
  program.SetOutputs({out});
  return CompileKernel(std::move(program), core::OpKind::kFusedEdgeMap, "bench-map");
}

JitKernel CompileEdgeMapReduce(std::vector<sparse::EdgeMapStage> stages, int axis) {
  core::Program program;
  const int gin = program.Add(core::OpKind::kGraphInput, {});
  core::Attrs attrs;
  attrs.stages = std::move(stages);
  attrs.axis = axis;
  const int out = program.Add(core::OpKind::kFusedEdgeMapReduce, {gin}, attrs);
  program.SetOutputs({out});
  return CompileKernel(std::move(program), core::OpKind::kFusedEdgeMapReduce, "bench-reduce");
}

void BM_JitSliceSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  static const JitKernel kernel = CompileSliceSample(10);
  if (kernel.table == nullptr || kernel.node_id < 0) {
    state.SkipWithError("jit unavailable");
    return;
  }
  Rng rng(1);
  for (auto _ : state) {
    sparse::Matrix out;
    if (!kernel.table->SliceSample(kernel.node_id, g.adj(), frontier, rng, &out)) {
      state.SkipWithError("jit declined slice-sample");
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JitSliceSample)->Arg(64)->Arg(256)->Arg(1024);

void BM_FusedEdgeMapChain(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  const std::vector<sparse::EdgeMapStage> stages = ChainStages();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::FusedEdgeMap(sub, stages, {}));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_FusedEdgeMapChain);

void BM_JitEdgeMapChain(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  static const JitKernel kernel = CompileEdgeMap(ChainStages());
  if (kernel.table == nullptr || kernel.node_id < 0) {
    state.SkipWithError("jit unavailable");
    return;
  }
  for (auto _ : state) {
    sparse::Matrix out;
    if (!kernel.table->EdgeMap(kernel.node_id, sub, {}, &out)) {
      state.SkipWithError("jit declined edge-map");
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_JitEdgeMapChain);

void BM_JitEdgeMapReduce(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  static const JitKernel kernel =
      CompileEdgeMapReduce({ScalarStage(BinaryOp::kPow, 2.0f)}, 0);
  if (kernel.table == nullptr || kernel.node_id < 0) {
    state.SkipWithError("jit unavailable");
    return;
  }
  for (auto _ : state) {
    sparse::ValueArray out;
    if (!kernel.table->EdgeMapReduce(kernel.node_id, sub, {}, &out)) {
      state.SkipWithError("jit declined edge-map-reduce");
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_JitEdgeMapReduce);

void BM_WalkStep(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray cur = Frontier(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::UniformWalkStep(g.adj(), cur, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WalkStep)->Arg(1024);

}  // namespace
}  // namespace gs

BENCHMARK_MAIN();
