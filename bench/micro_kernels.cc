// Micro-benchmarks (google-benchmark, real wall time) for the hot sparse
// kernels: extraction, sampling, reductions, SpMM, fused edge maps. These
// complement the virtual-clock table/figure benches with raw kernel
// throughput numbers.

#include <benchmark/benchmark.h>

#include "graph/datasets.h"
#include "sparse/fused.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"

namespace gs {
namespace {

const graph::Graph& BenchGraph() {
  static graph::Graph g = graph::MakePD({.scale = 0.25, .weighted = true});
  return g;
}

tensor::IdArray Frontier(int64_t n) {
  const graph::Graph& g = BenchGraph();
  std::vector<int32_t> ids;
  for (int64_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<int32_t>((i * 13) % g.num_nodes()));
  }
  return tensor::IdArray::FromVector(ids);
}

void BM_SliceColumns(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SliceColumns(g.adj(), frontier));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SliceColumns)->Arg(64)->Arg(256)->Arg(1024);

void BM_FusedSliceSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::FusedSliceSample(g.adj(), frontier, 10, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FusedSliceSample)->Arg(64)->Arg(256)->Arg(1024);

void BM_UnfusedSliceSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
    benchmark::DoNotOptimize(sparse::IndividualSample(sub, 10, sparse::ValueArray{}, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnfusedSliceSample)->Arg(64)->Arg(256)->Arg(1024);

void BM_CollectiveSample(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(256);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  sparse::ValueArray probs = sparse::SumAxis(sub, 0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::CollectiveSample(sub, state.range(0), probs, rng));
  }
}
BENCHMARK(BM_CollectiveSample)->Arg(64)->Arg(256)->Arg(512);

void BM_SumAxisRows(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SumAxis(sub, 0));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_SumAxisRows);

void BM_SpMM(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  Rng rng(3);
  tensor::Tensor dense = tensor::Tensor::Randn({sub.num_cols(), state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SpMM(sub, dense));
  }
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_FusedEdgeMapReduce(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  std::vector<sparse::EdgeMapStage> stages(1);
  stages[0].op = BinaryOp::kPow;
  stages[0].kind = sparse::EdgeMapStage::OperandKind::kScalar;
  stages[0].scalar = 2.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::FusedEdgeMapReduce(sub, stages, {}, 0));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_FusedEdgeMapReduce);

void BM_UnfusedMapThenReduce(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray frontier = Frontier(512);
  sparse::Matrix sub = sparse::SliceColumns(g.adj(), frontier);
  for (auto _ : state) {
    sparse::Matrix sq = sparse::EltwiseScalar(sub, BinaryOp::kPow, 2.0f);
    benchmark::DoNotOptimize(sparse::SumAxis(sq, 0));
  }
  state.SetItemsProcessed(state.iterations() * sub.nnz());
}
BENCHMARK(BM_UnfusedMapThenReduce);

void BM_WalkStep(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  tensor::IdArray cur = Frontier(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::UniformWalkStep(g.adj(), cur, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WalkStep)->Arg(1024);

}  // namespace
}  // namespace gs

BENCHMARK_MAIN();
