// Table 1: fraction of end-to-end training time spent in graph sampling,
// for PyG-CPU / DGL-CPU / DGL-GPU across GraphSAGE, FastGCN, and LADIES on
// the (Ogbn-Products-like) training graph. This is the motivation table:
// sampling dominates, especially on CPU.

#include <cstdio>

#include "bench/harness.h"
#include "bench/train_util.h"

namespace gs::bench {
namespace {

struct RowSpec {
  const char* framework;
  const char* hardware;
  device::DeviceProfile profile;
};

double RatioFor(const graph::Graph& g, const std::string& kind,
                const device::DeviceProfile& profile) {
  device::Device dev(profile);
  device::DeviceGuard guard(dev);
  // Graph arrays were allocated under the caller's device; re-generate under
  // this one so allocations are owned correctly.
  graph::Graph local = MakeTrainingGraph(0.5);
  (void)g;
  gnn::TrainerConfig config;
  config.model = kind == "sage" ? gnn::ModelKind::kSage : gnn::ModelKind::kGcn;
  config.epochs = 2;
  config.batch_size = 256;
  config.hidden = 64;
  gnn::TrainOutcome outcome = gnn::Train(local, MakeEagerFn(local, kind), config);
  return outcome.SamplingRatio();
}

void Run() {
  PrintTitle("Table 1 — graph sampling share of end-to-end training time");
  PrintRow("framework/hw", {"GraphSAGE", "FastGCN", "LADIES"});

  const std::vector<RowSpec> rows = {
      {"PyG", "CPU", device::CpuSim("PyG-CPU", 150.0)},
      {"DGL", "CPU", device::CpuSim("DGL-CPU", 40.0)},
      {"DGL", "GPU", device::V100Sim()},
  };
  graph::Graph unused = MakeTrainingGraph(0.5);

  for (const RowSpec& row : rows) {
    std::vector<std::string> cells;
    for (const std::string& kind : {std::string("sage"), std::string("fastgcn"),
                                    std::string("ladies")}) {
      if (std::string(row.framework) == "PyG" && kind != "sage") {
        cells.push_back("-");  // the paper leaves these cells empty
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * RatioFor(unused, kind, row.profile));
      cells.push_back(buf);
    }
    PrintRow(std::string(row.framework) + " " + row.hardware, cells);
  }
  std::printf("\n(Paper: PyG-CPU 96.2%% SAGE; DGL-CPU 70.1/95.4/95.4%%; DGL-GPU\n"
              " 45.8/57.6/70.1%%. Shape to check: sampling dominates, CPU ratios >\n"
              " GPU ratios, layer-wise algorithms > GraphSAGE on GPU.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
