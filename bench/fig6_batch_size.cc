// Figure 6: epoch sampling time vs mini-batch size for GraphSAGE and LADIES
// on the PD graph. Small batches leave the device under-utilized (fixed
// kernel-launch cost dominates), so epoch time falls and then flattens as
// the batch grows — the motivation for super-batch sampling (Section 4.4).

#include <cstdio>

#include "algorithms/algorithms.h"
#include "bench/harness.h"

namespace gs::bench {
namespace {

double EpochMs(BenchContext& ctx, const std::string& algo, int64_t batch_size) {
  RunConfig cfg = ctx.config();
  const device::DeviceProfile gpu = device::V100Sim();
  device::Device& dev = ctx.DeviceFor(gpu);
  const graph::Graph& g = ctx.GraphFor("PD", gpu);
  device::DeviceGuard guard(dev);

  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algo, g);
  core::SamplerOptions opts = cfg.gs_options;
  opts.super_batch = 1;  // isolate the plain batch-size effect
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  const tensor::IdArray& frontiers = g.train_ids();
  const int64_t total_batches = (frontiers.size() + batch_size - 1) / batch_size;
  const int64_t measured = std::min<int64_t>(total_batches, 24);

  // Warmup (layout calibration).
  tensor::IdArray first = tensor::IdArray::Empty(std::min(frontiers.size(), batch_size));
  std::copy_n(frontiers.data(), first.size(), first.data());
  sampler.Sample(first);

  tensor::IdArray slice =
      tensor::IdArray::Empty(std::min(frontiers.size(), measured * batch_size));
  std::copy_n(frontiers.data(), slice.size(), slice.data());
  const double before =
      static_cast<double>(device::Current().stream().counters().virtual_ns) / 1e6;
  sampler.SampleEpoch(slice, batch_size, nullptr);
  const double elapsed =
      static_cast<double>(device::Current().stream().counters().virtual_ns) / 1e6 - before;
  return elapsed * static_cast<double>(total_batches) / static_cast<double>(measured);
}

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  BenchContext ctx(config);

  PrintTitle("Figure 6 — epoch sampling time (ms) vs batch size, PD graph");
  std::vector<std::string> header;
  const std::vector<int64_t> batch_sizes = {64, 128, 256, 512, 1024, 2048, 4096};
  for (int64_t b : batch_sizes) {
    header.push_back(std::to_string(b));
  }
  PrintRow("batch size", header);

  for (const std::string& algo : {std::string("GraphSAGE"), std::string("LADIES")}) {
    std::vector<std::string> row;
    for (int64_t b : batch_sizes) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", EpochMs(ctx, algo, b));
      row.push_back(buf);
    }
    PrintRow(algo, row);
  }
  std::printf("\n(Paper shape: epoch time decreases with batch size, then stabilizes —\n"
              " the GPU is only saturated at large batches.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
