// Fault-recovery overhead sweep: serving throughput and tail latency under
// injected transient kernel faults at rates 0, 0.1%, and 1%.
//
// What this measures: the cost of the gs::fault recovery ladder when it is
// actually exercised. Transient faults abort an in-flight execution and the
// worker retries with exponential backoff, so the expected signature is a
// goodput/p95 penalty that grows with the injection rate while the failure
// count stays at (or near) zero — the ladder converts faults into latency,
// not errors.
//
// HA mode (--shards=N, N > 1): instead of the transient-rate sweep, runs a
// no-fault baseline and a shard-kill cell (a seeded FaultPlan permanently
// kills shard 1 partway through the run). With --replicas=2 the gs::ha
// failover path serves the dead shard's requests from its replica, so
// goodput should hold near-flat with zero failed requests; with
// --replicas=1 the dead shard's requests degrade to typed partial
// responses (Status::kDegraded with a coverage fraction), still with zero
// failures.
//
// Output: one single-line JSON record per cell on stdout (standard bench
// harness convention), human-readable summary on stderr.
//
// Usage: fault_recovery [--scale=0.05] [--requests=300] [--workers=4]
//                       [--rps=1500] [--shards=4] [--replicas=2]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "serving/loadgen.h"
#include "serving/server.h"

namespace {

struct Sweep {
  double scale = 0.05;
  int64_t requests = 300;
  int workers = 4;
  double rps = 1500.0;
  int shards = 1;
  int replicas = 1;
};

struct Cell {
  double fault_rate = 0.0;
  gs::serving::LoadGenReport report;
  gs::serving::ServerStats stats;
  int64_t injected = 0;
  int64_t probes = 0;
};

Cell RunCell(const gs::graph::Graph& graph, double fault_rate, const Sweep& sweep) {
  Cell cell;
  cell.fault_rate = fault_rate;

  std::unique_ptr<gs::fault::FaultScope> scope;
  if (fault_rate > 0.0) {
    gs::fault::FaultPlan plan;
    plan.seed = 0xFA017;
    plan.site(gs::fault::Site::kKernelTransient).probability = fault_rate;
    scope = std::make_unique<gs::fault::FaultScope>(std::move(plan));
  }

  gs::serving::ServerOptions options;
  options.num_workers = sweep.workers;
  options.queue_capacity = 128;
  options.deadline_admission = false;
  options.shed_occupancy = 2.0;  // isolate the fault ladder from overload shedding
  options.max_transient_retries = 6;
  gs::serving::Server server(options);
  server.RegisterEndpoint(gs::serving::MakeEndpoint("GraphSAGE", "PD", graph));
  server.Start();

  gs::serving::LoadGenOptions load;
  load.algorithm = "GraphSAGE";
  load.dataset = "PD";
  load.num_requests = sweep.requests;
  load.offered_rps = sweep.rps;
  load.batch_size = 64;
  load.num_tenants = 4;
  load.fanouts = {10, 5};
  cell.report = RunOpenLoop(server, graph, load);
  server.Stop();
  cell.stats = server.stats();
  if (scope != nullptr) {
    const gs::fault::SiteCounters c =
        scope->injector().counters(gs::fault::Site::kKernelTransient);
    cell.injected = c.injected;
    cell.probes = c.probes;
  }
  return cell;
}

// One HA cell: sharded serving, optionally with `victim` killed permanently
// after `requests / 32` placement probes (a mid-run device loss). The
// victim is the busiest shard of the baseline cell — locality routing
// concentrates traffic, so killing an idle shard would measure nothing.
Cell RunHaCell(const gs::graph::Graph& graph, int victim, const Sweep& sweep) {
  Cell cell;
  std::unique_ptr<gs::fault::FaultScope> scope;
  if (victim >= 0) {
    const int64_t after = std::max<int64_t>(1, sweep.requests / 32);
    scope = std::make_unique<gs::fault::FaultScope>(gs::fault::FaultPlan::Parse(
        "shard" + std::to_string(victim) + ":shard.lost:after=" + std::to_string(after),
        0xFA017));
  }

  gs::serving::ServerOptions options;
  options.num_workers = sweep.workers;
  options.queue_capacity = 128;
  options.deadline_admission = false;
  options.shed_occupancy = 2.0;
  options.max_transient_retries = 6;
  options.num_shards = sweep.shards;
  options.num_replicas = sweep.replicas;
  gs::serving::Server server(options);
  server.RegisterEndpoint(gs::serving::MakeEndpoint("GraphSAGE", "PD", graph));
  server.Start();

  gs::serving::LoadGenOptions load;
  load.algorithm = "GraphSAGE";
  load.dataset = "PD";
  load.num_requests = sweep.requests;
  load.offered_rps = sweep.rps;
  load.batch_size = 64;
  load.num_tenants = 4;
  load.fanouts = {10, 5};
  cell.report = RunOpenLoop(server, graph, load);
  server.Stop();
  cell.stats = server.stats();
  if (scope != nullptr) {
    const gs::fault::SiteCounters c =
        scope->injector().counters(gs::fault::Site::kShardLost);
    cell.injected = c.injected;
    cell.probes = c.probes;
  }
  return cell;
}

void PrintHaCell(const char* mode, const Cell& cell, const Sweep& sweep) {
  std::printf(
      "{\"bench\":\"fault_recovery\",\"mode\":\"%s\",\"shards\":%d,\"replicas\":%d,"
      "\"requests\":%lld,\"ok\":%lld,\"partial\":%lld,\"failed\":%lld,"
      "\"failovers\":%lld,\"hedged_exchanges\":%lld,"
      "\"injected\":%lld,\"probes\":%lld,"
      "\"goodput_rps\":%.1f,\"p50_us\":%lld,\"p95_us\":%lld,\"p99_us\":%lld}\n",
      mode, sweep.shards, sweep.replicas, static_cast<long long>(cell.report.submitted),
      static_cast<long long>(cell.report.ok), static_cast<long long>(cell.report.partial),
      static_cast<long long>(cell.report.failed), static_cast<long long>(cell.stats.failovers),
      static_cast<long long>(cell.stats.hedged_exchanges),
      static_cast<long long>(cell.injected), static_cast<long long>(cell.probes),
      cell.report.achieved_rps, static_cast<long long>(cell.report.p50_ns / 1000),
      static_cast<long long>(cell.report.p95_ns / 1000),
      static_cast<long long>(cell.report.p99_ns / 1000));
  std::fprintf(stderr, "%12s | %9.0f %8lld %8lld %8lld | %9lld %9lld\n", mode,
               cell.report.achieved_rps, static_cast<long long>(cell.report.ok),
               static_cast<long long>(cell.report.partial),
               static_cast<long long>(cell.report.failed),
               static_cast<long long>(cell.stats.failovers),
               static_cast<long long>(cell.report.p95_ns / 1000));
}

int RunHaSweep(const gs::graph::Graph& graph, const Sweep& sweep) {
  std::fprintf(stderr, "%12s | %9s %8s %8s %8s | %9s %9s\n", "cell", "goodput", "ok",
               "partial", "failed", "failovers", "p95(us)");
  const Cell baseline = RunHaCell(graph, /*victim=*/-1, sweep);
  PrintHaCell("baseline", baseline, sweep);
  int victim = 0;
  int64_t victim_load = -1;
  for (const auto& [s, completed] : baseline.stats.per_shard_completed) {
    if (completed > victim_load) {
      victim = s;
      victim_load = completed;
    }
  }
  std::fprintf(stderr, "killing shard %d (busiest in baseline: %lld completions)\n", victim,
               static_cast<long long>(victim_load));
  const Cell killed = RunHaCell(graph, victim, sweep);
  PrintHaCell("shard_kill", killed, sweep);
  const double ratio = baseline.report.achieved_rps > 0
                           ? killed.report.achieved_rps / baseline.report.achieved_rps
                           : 0.0;
  std::fprintf(stderr,
               "\ngoodput ratio (shard_kill / baseline) = %.3f\n"
               "Expectation: with replicas >= 2 the ratio holds near 1.0 with zero failed\n"
               "requests (failover absorbs the kill); with replicas = 1 the dead shard's\n"
               "requests come back as typed partial responses, still with zero failures.\n",
               ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      sweep.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      sweep.requests = std::atoll(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      sweep.workers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rps=", 6) == 0) {
      sweep.rps = std::atof(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      sweep.shards = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--replicas=", 11) == 0) {
      sweep.replicas = std::atoi(argv[i] + 11);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  gs::graph::Graph graph = gs::graph::MakeDataset("PD", {.scale = sweep.scale});
  std::fprintf(stderr,
               "fault_recovery: PD-sim scale=%.3f nodes=%lld, %lld requests @ %.0f rps, "
               "%d workers\n",
               sweep.scale, static_cast<long long>(graph.num_nodes()),
               static_cast<long long>(sweep.requests), sweep.rps, sweep.workers);
  if (sweep.shards > 1) {
    return RunHaSweep(graph, sweep);
  }
  std::fprintf(stderr, "%12s | %9s %8s %8s %8s | %9s %9s\n", "fault_rate", "goodput", "ok",
               "failed", "retries", "p50(us)", "p95(us)");

  const std::vector<double> rates = {0.0, 0.001, 0.01};
  for (double rate : rates) {
    const Cell cell = RunCell(graph, rate, sweep);
    std::printf(
        "{\"bench\":\"fault_recovery\",\"fault_rate\":%.4f,\"requests\":%lld,"
        "\"ok\":%lld,\"failed\":%lld,\"degraded\":%lld,"
        "\"transient_retries\":%lld,\"shed_retries\":%lld,"
        "\"injected\":%lld,\"probes\":%lld,"
        "\"goodput_rps\":%.1f,\"p50_us\":%lld,\"p95_us\":%lld,\"p99_us\":%lld}\n",
        cell.fault_rate, static_cast<long long>(cell.report.submitted),
        static_cast<long long>(cell.report.ok), static_cast<long long>(cell.report.failed),
        static_cast<long long>(cell.report.degraded),
        static_cast<long long>(cell.stats.transient_retries),
        static_cast<long long>(cell.stats.shed_retries),
        static_cast<long long>(cell.injected), static_cast<long long>(cell.probes),
        cell.report.achieved_rps, static_cast<long long>(cell.report.p50_ns / 1000),
        static_cast<long long>(cell.report.p95_ns / 1000),
        static_cast<long long>(cell.report.p99_ns / 1000));
    std::fprintf(stderr, "%12.4f | %9.0f %8lld %8lld %8lld | %9lld %9lld\n", cell.fault_rate,
                 cell.report.achieved_rps, static_cast<long long>(cell.report.ok),
                 static_cast<long long>(cell.report.failed),
                 static_cast<long long>(cell.stats.transient_retries),
                 static_cast<long long>(cell.report.p50_ns / 1000),
                 static_cast<long long>(cell.report.p95_ns / 1000));
  }
  std::fprintf(stderr,
               "\nExpectation: goodput and p95 degrade gracefully as the injection rate\n"
               "rises; failures stay near zero because transient faults are retried.\n");
  return 0;
}
