// Shared benchmark harness for the paper-reproduction binaries.
//
// Measures *simulated device time* (the virtual clock, see
// device/stream.h): every (system, hardware) cell runs on its own Device
// whose profile models that configuration; graphs are generated once per
// (dataset, device) and cached. Epochs are capped at `max_batches`
// mini-batches and extrapolated to the full epoch, which preserves the
// steady-state per-batch cost the paper measures while keeping single-core
// runtimes sane (documented in EXPERIMENTS.md).

#ifndef GSAMPLER_BENCH_HARNESS_H_
#define GSAMPLER_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/engine.h"
#include "device/device.h"
#include "graph/datasets.h"

namespace gs::bench {

struct RunConfig {
  int64_t batch_size = 256;
  int64_t max_batches = 32;  // per measured epoch; extrapolated to the full epoch
  int warmup_batches = 4;
  double dataset_scale = 1.0;
  core::SamplerOptions gs_options;  // defaults: all optimizations on

  RunConfig() {
    gs_options.super_batch = 0;  // auto grid search
    gs_options.memory_budget_bytes = int64_t{2} * 1024 * 1024 * 1024;
  }
};

struct CellResult {
  enum class Status { kOk, kNotAvailable, kTimeout };
  Status status = Status::kNotAvailable;
  double epoch_ms = 0.0;  // extrapolated full-epoch simulated time

  static CellResult Ok(double ms) { return {Status::kOk, ms}; }
  static CellResult NotAvailable() { return {Status::kNotAvailable, 0.0}; }
  static CellResult Timeout() { return {Status::kTimeout, 0.0}; }
};

// Formats a cell as a fixed-width string ("123.4", "N/A", "TO").
std::string FormatCell(const CellResult& cell, int width = 10);

// Owns one Device per profile and one Graph per (dataset, profile), so
// arrays never outlive their allocator.
class BenchContext {
 public:
  explicit BenchContext(RunConfig config) : config_(std::move(config)) {}

  const RunConfig& config() const { return config_; }

  device::Device& DeviceFor(const device::DeviceProfile& profile);
  const graph::Graph& GraphFor(const std::string& dataset,
                               const device::DeviceProfile& profile);

  // One sampling epoch with gSampler on the given profile.
  CellResult RunGsampler(const std::string& dataset, const std::string& algorithm,
                         const device::DeviceProfile& gpu_profile);
  // Same, with explicit sampler options (ablation studies).
  CellResult RunGsampler(const std::string& dataset, const std::string& algorithm,
                         const device::DeviceProfile& gpu_profile,
                         const core::SamplerOptions& options);
  // One sampling epoch with a baseline system ("DGL-GPU", "SkyWalker", ...).
  // CPU systems automatically run on their calibrated CPU profile.
  CellResult RunBaseline(const std::string& system, const std::string& dataset,
                         const std::string& algorithm,
                         const device::DeviceProfile& gpu_profile);

 private:
  RunConfig config_;
  std::map<std::string, std::unique_ptr<device::Device>> devices_;
  std::map<std::string, std::unique_ptr<graph::Graph>> graphs_;
};

// Table printing helpers.
void PrintTitle(const std::string& title);
void PrintRow(const std::string& label, const std::vector<std::string>& cells,
              int label_width = 14, int cell_width = 11);

}  // namespace gs::bench

#endif  // GSAMPLER_BENCH_HARNESS_H_
