// Shared helpers for the training-based benchmarks (Tables 1 and 8):
// sampler adapters that feed the gs::gnn trainer from either the gSampler
// engine or the eager baseline implementations.

#ifndef GSAMPLER_BENCH_TRAIN_UTIL_H_
#define GSAMPLER_BENCH_TRAIN_UTIL_H_

#include <memory>
#include <string>

#include "algorithms/algorithms.h"
#include "baselines/eager.h"
#include "core/engine.h"
#include "gnn/minibatch.h"
#include "gnn/trainer.h"
#include "graph/generator.h"

namespace gs::bench {

// The labelled training graph standing in for Ogbn-Products (Table 8's
// dataset): planted communities with learnable features.
inline graph::Graph MakeTrainingGraph(double scale = 1.0) {
  graph::PlantedPartitionParams p;
  p.name = "PD-train";
  p.num_nodes = static_cast<int64_t>(6000 * scale);
  p.num_communities = 8;
  p.intra_degree = 16.0;
  p.inter_degree = 3.0;
  p.feature_dim = 32;
  p.feature_noise = 3.5f;  // hard enough that accuracy lands near the
                           // paper's ~90% rather than saturating
  p.weighted = true;
  p.seed = 0x7D;
  return graph::MakePlantedPartitionGraph(p);
}

// gSampler-engine sampler: "sage" (seed-inclusive neighbor sampling) or
// "ladies"/"fastgcn" layer-wise programs. The returned callable owns the
// compiled sampler.
inline gnn::SampleFn MakeGsamplerFn(const graph::Graph& g, const std::string& kind,
                                    const core::SamplerOptions& options) {
  algorithms::AlgorithmProgram ap;
  if (kind == "sage") {
    ap = algorithms::GraphSage(g, {.fanouts = {10, 10}, .include_seeds = true});
  } else if (kind == "ladies") {
    ap = algorithms::Ladies(g, {.num_layers = 2, .layer_width = 512});
  } else {
    ap = algorithms::FastGcn(g, {.num_layers = 2, .layer_width = 512});
  }
  auto sampler = std::make_shared<core::CompiledSampler>(std::move(ap.program), g,
                                                         std::move(ap.tensors), options);
  return [sampler](const tensor::IdArray& seeds, Rng&) {
    return gnn::FromSamplerOutputs(sampler->Sample(seeds), seeds);
  };
}

// Eager (DGL/PyG-style) sampler on whatever device is current.
inline gnn::SampleFn MakeEagerFn(const graph::Graph& g, const std::string& kind) {
  return [&g, kind](const tensor::IdArray& seeds, Rng& rng) {
    const baselines::eager::Style style;
    baselines::BaselineResult result;
    if (kind == "sage") {
      result = baselines::eager::GraphSage(g, seeds, {10, 10}, rng, style,
                                           /*include_seeds=*/true);
    } else if (kind == "ladies") {
      result = baselines::eager::Ladies(g, seeds, 2, 512, rng, style);
    } else {
      result = baselines::eager::FastGcn(g, seeds, 2, 512, rng, style);
    }
    gnn::MiniBatch batch;
    batch.seeds = seeds;
    batch.layers = std::move(result.layers);
    return batch;
  };
}

}  // namespace gs::bench

#endif  // GSAMPLER_BENCH_TRAIN_UTIL_H_
