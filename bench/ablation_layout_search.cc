// Ablation: data-layout policies (Section 4.3) — as-produced formats
// (plain), greedy per-operator conversion (the DGL policy), and gSampler's
// measured cost-aware search — for LADIES and GraphSAGE on PD and the
// UVA-resident PP graph.

#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

core::SamplerOptions WithLayout(const char* policy) {
  core::SamplerOptions opts;
  opts.super_batch = 1;  // isolate layout effects
  if (std::string(policy) == "plain") {
    opts.enable_layout_selection = false;
    opts.greedy_when_layout_disabled = false;
  } else if (std::string(policy) == "greedy") {
    opts.enable_layout_selection = false;
    opts.greedy_when_layout_disabled = true;
  }  // "cost-aware": defaults (enable_layout_selection = true)
  return opts;
}

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  config.max_batches = 16;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();

  PrintTitle("Layout-policy ablation (epoch ms)");
  PrintRow("algo/dataset", {"plain", "greedy", "cost-aware"});
  for (const std::string& ds : {std::string("PD"), std::string("PP")}) {
    for (const std::string& algo : {std::string("GraphSAGE"), std::string("LADIES")}) {
      std::vector<std::string> row;
      for (const char* policy : {"plain", "greedy", "cost-aware"}) {
        const CellResult r = ctx.RunGsampler(ds, algo, gpu, WithLayout(policy));
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f", r.epoch_ms);
        row.push_back(buf);
      }
      PrintRow(algo + "/" + ds, row);
    }
  }
  std::printf("\n(Cost-aware selection should never lose to greedy, with the largest\n"
              " margins for LADIES — diverse operators with conflicting format\n"
              " preferences — and on PP, where conversions are the most expensive.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
