// Table 7: gSampler's speedup over the best-performing baseline for every
// (algorithm, dataset) cell, plus the paper's headline aggregates (max
// speedup, fraction of cells above 2x, geometric-mean speedup).

#include <cmath>
#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  config.max_batches = 16;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();

  const std::vector<std::string> algorithms = {"GraphSAGE", "DeepWalk", "Node2Vec",
                                               "LADIES",    "AS-GCN",   "PASS",
                                               "ShaDow"};
  const std::vector<std::string> systems = {"DGL-GPU",   "DGL-CPU", "PyG-GPU", "PyG-CPU",
                                            "SkyWalker", "GunRock", "cuGraph"};
  const std::vector<std::string> datasets = graph::BenchmarkDatasetNames();

  PrintTitle("Table 7 — speedup of gSampler over the best baseline");
  PrintRow("algorithm", datasets);

  double log_sum = 0.0;
  int cells = 0;
  int above_2x = 0;
  double max_speedup = 0.0;

  for (const std::string& algo : algorithms) {
    std::vector<std::string> row;
    for (const std::string& ds : datasets) {
      const CellResult mine = ctx.RunGsampler(ds, algo, gpu);
      double best_baseline = 0.0;
      for (const std::string& system : systems) {
        const CellResult r = ctx.RunBaseline(system, ds, algo, gpu);
        if (r.status == CellResult::Status::kOk &&
            (best_baseline == 0.0 || r.epoch_ms < best_baseline)) {
          best_baseline = r.epoch_ms;
        }
      }
      if (best_baseline == 0.0) {
        row.push_back("no-baseline");
        continue;
      }
      const double speedup = best_baseline / mine.epoch_ms;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f", speedup);
      row.push_back(buf);
      log_sum += std::log(speedup);
      ++cells;
      above_2x += speedup >= 2.0 ? 1 : 0;
      max_speedup = std::max(max_speedup, speedup);
    }
    PrintRow(algo, row);
  }

  std::printf("\nsummary: %d cells, max speedup %.2fx, %d/%d cells >= 2x, "
              "geometric mean %.2fx\n",
              cells, max_speedup, above_2x, cells, std::exp(log_sum / cells));
  std::printf("(Paper: max 32.67x, 19/28 cells >= 2x, average 6.54x. The shape to\n"
              " check: speedups > 1 everywhere, larger on the device-resident LJ/PD\n"
              " than the UVA-bound PP/FS, largest for Node2Vec/GraphSAGE on small\n"
              " graphs and LADIES among complex algorithms.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
