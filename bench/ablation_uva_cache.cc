// Ablation for the paper's future direction (1): "exploit the skewed access
// of graph data to design smart caching strategies". Sweeps the simulated
// GPU-side hot-node cache over the UVA-resident PP graph and reports PCIe
// traffic and epoch time for GraphSAGE — skewed access means even a small
// cache absorbs most adjacency fetches.

#include <cstdio>

#include "algorithms/algorithms.h"
#include "bench/harness.h"

namespace gs::bench {
namespace {

struct Sweep {
  double cache_fraction;  // slots as a fraction of |V|
  double epoch_ms;
  double pcie_mb;
  double hit_rate;
};

Sweep RunWithCache(double cache_fraction) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = graph::MakeDataset("PP", {.scale = 0.5, .weighted = true});
  const int64_t slots = std::max<int64_t>(
      4, static_cast<int64_t>(static_cast<double>(g.num_nodes()) * cache_fraction));
  // Replace the default cache with the swept size.
  feature::HotSetCache cache(slots);
  g.mutable_adj().SetUvaCache(&cache);

  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {});
  core::SamplerOptions options;
  options.super_batch = 1;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), options);

  tensor::IdArray slice = tensor::IdArray::Empty(std::min<int64_t>(g.train_ids().size(),
                                                                   16 * 256));
  std::copy_n(g.train_ids().data(), slice.size(), slice.data());
  sampler.SampleEpoch(slice, 256, nullptr);  // warmup fills the cache

  const device::StreamCounters before = dev.stream().counters();
  cache.Reset();
  sampler.SampleEpoch(slice, 256, nullptr);
  const device::StreamCounters after = dev.stream().counters();
  Sweep s;
  s.cache_fraction = cache_fraction;
  s.epoch_ms = static_cast<double>(after.virtual_ns - before.virtual_ns) / 1e6;
  s.pcie_mb = static_cast<double>(after.pcie_bytes - before.pcie_bytes) / 1e6;
  s.hit_rate = cache.hits() + cache.misses() > 0
                   ? static_cast<double>(cache.hits()) /
                         static_cast<double>(cache.hits() + cache.misses())
                   : 0.0;
  return s;
}

void Run() {
  PrintTitle("UVA hot-node cache sweep — GraphSAGE on PP (future direction 1)");
  PrintRow("cache (|V| frac)", {"epoch ms", "PCIe MB", "hit rate"});
  for (double fraction : {0.0001, 0.001, 0.01, 0.03, 0.1, 0.3}) {
    const Sweep s = RunWithCache(fraction);
    char label[64];
    char ms[64];
    char mb[64];
    char hit[64];
    std::snprintf(label, sizeof(label), "%.4f", s.cache_fraction);
    std::snprintf(ms, sizeof(ms), "%.1f", s.epoch_ms);
    std::snprintf(mb, sizeof(mb), "%.2f", s.pcie_mb);
    std::snprintf(hit, sizeof(hit), "%.1f%%", 100.0 * s.hit_rate);
    PrintRow(label, {ms, mb, hit});
  }
  std::printf("\n(Skewed access means hit rates rise quickly with cache size; PCIe\n"
              " traffic and epoch time fall accordingly — the effect the paper\n"
              " proposes to exploit with smart caching.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
