// Ablation: contribution of each individual fusion rule (Section 4.2) —
// Extract-Select fusion, Edge-Map(-Reduce) fusion, SDDMM rewriting — for
// the algorithm each rule targets.

#include <cstdio>

#include "bench/harness.h"

namespace gs::bench {
namespace {

core::SamplerOptions Base() {
  core::SamplerOptions opts;
  opts.enable_fusion = true;
  opts.fuse_extract_select = false;
  opts.fuse_edge_maps = false;
  opts.rewrite_sddmm = false;
  opts.enable_preprocessing = true;
  opts.enable_layout_selection = true;
  opts.super_batch = 1;  // isolate fusion effects
  return opts;
}

void Run() {
  RunConfig config;
  config.dataset_scale = 0.5;
  config.max_batches = 16;
  BenchContext ctx(config);
  const device::DeviceProfile gpu = device::V100Sim();

  struct Case {
    const char* algo;
    const char* rule;
    void (*enable)(core::SamplerOptions&);
  };
  const std::vector<Case> cases = {
      {"GraphSAGE", "extract-select",
       [](core::SamplerOptions& o) { o.fuse_extract_select = true; }},
      {"LADIES", "edge-map(-reduce)",
       [](core::SamplerOptions& o) { o.fuse_edge_maps = true; }},
      {"PASS", "sddmm-rewrite", [](core::SamplerOptions& o) { o.rewrite_sddmm = true; }},
      {"PASS", "all-fusion",
       [](core::SamplerOptions& o) {
         o.fuse_extract_select = true;
         o.fuse_edge_maps = true;
         o.rewrite_sddmm = true;
       }},
  };

  PrintTitle("Fusion-rule ablation (PD graph, epoch ms)");
  PrintRow("algorithm", {"rule", "off", "on", "speedup"});
  for (const Case& c : cases) {
    core::SamplerOptions off = Base();
    const CellResult r_off = ctx.RunGsampler("PD", c.algo, gpu, off);
    core::SamplerOptions on = Base();
    c.enable(on);
    const CellResult r_on = ctx.RunGsampler("PD", c.algo, gpu, on);
    char a[64];
    char b[64];
    char s[64];
    std::snprintf(a, sizeof(a), "%.1f", r_off.epoch_ms);
    std::snprintf(b, sizeof(b), "%.1f", r_on.epoch_ms);
    std::snprintf(s, sizeof(s), "%.2fx", r_off.epoch_ms / r_on.epoch_ms);
    PrintRow(c.algo, {c.rule, a, b, s});
  }
  std::printf("\n(Each rule should speed up the algorithm it targets; the SDDMM rewrite\n"
              " is the decisive one for PASS — without it the attention scores go\n"
              " through a dense |V| x |batch| product.)\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::Run();
  return 0;
}
