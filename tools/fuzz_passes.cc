// Randomized differential fuzzer for the pass pipeline.
//
// Each seeded draw picks an algorithm, an R-MAT graph, an epoch shape, and a
// random optimization configuration (pass flags, super-batch size, device
// profile), then runs the gs::oracle differential checks: the optimized plan
// must sample exactly what the all-optimizations-off reference samples under
// mirrored RNG streams (statistical equivalence where the contract is only
// distributional). Failures are *minimized* — optimization flags are dropped
// one at a time, the pass pipeline is truncated via SamplerOptions.pass_limit
// to the shortest failing prefix, and the graph/epoch are shrunk — down to a
// one-line reproducer that `--repro` replays.
//
// With --shards N (N > 1) every draw additionally runs the gs::shard
// differential: the same config is sampled through an N-way ShardGroup
// (randomly edge- or vertex-cut) and every batch must come back bit-identical
// to a single-device SamplerSession with the same plan and seed — the
// subsystem's core guarantee that sharding changes where time is charged,
// never what is sampled.
//
// With --kill-shard (requires --shards N > 1) every sharded draw also kills
// one randomly drawn shard permanently (a seeded shard.lost FaultPlan with
// after=0) and runs the group with 2 replicas: the gs::ha failover path must
// still return batches bit-identical to the single-device session — the
// high-availability tier's core guarantee that failover changes which
// device executes, never what is sampled.
//
// With --features every draw additionally runs the gs::feature differential:
// the oracle's feature-gather check (cold + warm gathers under every
// admission policy must match an eager lookup bit for bit), plus a
// determinism check — two fresh hot-set caches fed the identical access
// sequence under a randomly drawn admission policy must report identical
// hit/miss counts and identical gathered rows.
//
// With --jit every draw additionally runs the gs::jit differential: the same
// compiled plan is sampled twice — once purely interpreted, once with the
// JIT engine's native jump table attached — and every batch must come back
// bit-identical. This is the JIT tier's core guarantee that native code
// changes where cycles are spent, never what is sampled. Draws whose config
// produces no fused regions (fusion off, or an algorithm with nothing to
// fuse) skip the comparison.
//
// With --mutate every draw additionally runs the gs::dyn differential: the
// base graph is wrapped in a GraphStore, a seeded MutationGen stream applies
// a drawn number of MutationBatches (with a mid-stream Seal), and the
// resulting snapshot must satisfy gs::oracle::VerifySnapshotEquivalence —
// digest-identical and bit-identical sampling against a from-scratch
// FromEdges load of the same effective edge set. This is the versioned-graph
// tier's core guarantee that incremental maintenance changes how the CSC is
// stored, never what is sampled.
//
// Usage:
//   fuzz_passes --seeds 200                 # fuzz 200 seeded draws
//   fuzz_passes --seeds 50 --base-seed 7    # different deterministic stream
//   fuzz_passes --seeds 100 --shards 2      # + 2-shard-vs-single differential
//   fuzz_passes --seeds 100 --features      # + feature-gather differential
//   fuzz_passes --seeds 100 --mutate        # + snapshot-equivalence differential
//   fuzz_passes --seeds 100 --jit           # + JIT-vs-interpreter differential
//   fuzz_passes --out failures.txt          # append reproducer lines
//   fuzz_passes --repro 'algo=LADIES nodes=200 ...'   # replay one line
//
// Exit status: 0 when every draw passes, 1 on any failure, 2 on bad usage.

#include <cstdint>
#include <filesystem>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/executor.h"
#include "core/plan.h"
#include "device/device.h"
#include "dyn/mutation_gen.h"
#include "fault/fault.h"
#include "feature/hot_set_cache.h"
#include "feature/store.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/store.h"
#include "jit/jit.h"
#include "oracle/oracle.h"
#include "shard/shard.h"
#include "tensor/tensor.h"

namespace {

using gs::Rng;

// One fuzz draw, fully determined by its fields; serializes to the
// reproducer line.
struct FuzzConfig {
  std::string algo = "GraphSAGE";
  int64_t nodes = 200;
  int64_t edges = 2000;
  uint64_t gseed = 1;
  bool weighted = true;
  int num_batches = 4;
  int64_t batch_size = 8;
  bool fusion = true;
  bool preproc = true;
  bool layout = true;
  bool greedy = true;
  int super_batch = 1;
  uint64_t seed = 1;
  std::string profile = "v100";
  int pass_limit = -1;
  int shards = 1;             // >1 adds the sharded-vs-single differential
  std::string cut = "edge";   // partition kind when shards > 1
  bool features = false;      // adds the feature-gather differential
  std::string admission = "frequency-ema";  // cache policy when features
  int replicas = 1;           // replication factor when shards > 1
  int kill = -1;              // shard killed permanently (-1 = none)
  bool mutate = false;        // adds the snapshot-equivalence differential
  int mutations = 0;          // MutationBatches applied when mutate
  uint64_t mseed = 1;         // mutation-stream seed
  bool jit = false;           // adds the JIT-vs-interpreter differential

  std::string ToLine() const {
    std::ostringstream os;
    os << "algo=" << algo << " nodes=" << nodes << " edges=" << edges
       << " gseed=" << gseed << " weighted=" << weighted
       << " batches=" << num_batches << " batch_size=" << batch_size
       << " fusion=" << fusion << " preproc=" << preproc << " layout=" << layout
       << " greedy=" << greedy << " super_batch=" << super_batch
       << " seed=" << seed << " profile=" << profile
       << " pass_limit=" << pass_limit << " shards=" << shards
       << " cut=" << cut << " features=" << features << " admission=" << admission
       << " replicas=" << replicas << " kill=" << kill
       << " mutate=" << mutate << " mutations=" << mutations << " mseed=" << mseed
       << " jit=" << jit;
    return os.str();
  }

  static bool FromLine(const std::string& line, FuzzConfig& out) {
    std::istringstream is(line);
    std::string tok;
    std::map<std::string, std::string> kv;
    while (is >> tok) {
      const size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        return false;
      }
      kv[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
    try {
      if (kv.count("algo")) out.algo = kv["algo"];
      if (kv.count("nodes")) out.nodes = std::stoll(kv["nodes"]);
      if (kv.count("edges")) out.edges = std::stoll(kv["edges"]);
      if (kv.count("gseed")) out.gseed = std::stoull(kv["gseed"]);
      if (kv.count("weighted")) out.weighted = std::stoi(kv["weighted"]) != 0;
      if (kv.count("batches")) out.num_batches = std::stoi(kv["batches"]);
      if (kv.count("batch_size")) out.batch_size = std::stoll(kv["batch_size"]);
      if (kv.count("fusion")) out.fusion = std::stoi(kv["fusion"]) != 0;
      if (kv.count("preproc")) out.preproc = std::stoi(kv["preproc"]) != 0;
      if (kv.count("layout")) out.layout = std::stoi(kv["layout"]) != 0;
      if (kv.count("greedy")) out.greedy = std::stoi(kv["greedy"]) != 0;
      if (kv.count("super_batch")) out.super_batch = std::stoi(kv["super_batch"]);
      if (kv.count("seed")) out.seed = std::stoull(kv["seed"]);
      if (kv.count("profile")) out.profile = kv["profile"];
      if (kv.count("pass_limit")) out.pass_limit = std::stoi(kv["pass_limit"]);
      if (kv.count("shards")) out.shards = std::stoi(kv["shards"]);
      if (kv.count("cut")) out.cut = kv["cut"];
      if (kv.count("features")) out.features = std::stoi(kv["features"]) != 0;
      if (kv.count("admission")) out.admission = kv["admission"];
      if (kv.count("replicas")) out.replicas = std::stoi(kv["replicas"]);
      if (kv.count("kill")) out.kill = std::stoi(kv["kill"]);
      if (kv.count("mutate")) out.mutate = std::stoi(kv["mutate"]) != 0;
      if (kv.count("mutations")) out.mutations = std::stoi(kv["mutations"]);
      if (kv.count("mseed")) out.mseed = std::stoull(kv["mseed"]);
      if (kv.count("jit")) out.jit = std::stoi(kv["jit"]) != 0;
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
};

gs::core::SamplerOptions ToSamplerOptions(const FuzzConfig& c) {
  gs::core::SamplerOptions opts;
  opts.enable_fusion = c.fusion;
  opts.enable_preprocessing = c.preproc;
  opts.enable_layout_selection = c.layout;
  opts.greedy_when_layout_disabled = c.greedy;
  opts.super_batch = c.super_batch;
  opts.seed = c.seed;
  opts.pass_limit = c.pass_limit;
  return opts;
}

gs::graph::Graph MakeGraph(const FuzzConfig& c) {
  gs::graph::RMatParams p;
  p.name = "fuzz";
  p.num_nodes = c.nodes;
  p.num_edges = c.edges;
  p.weighted = c.weighted;
  p.seed = c.gseed;
  return gs::graph::MakeRMatGraph(p);
}

// Runs the oracle once for a config; returns the report. The eager-twin
// comparison stays off (it checks the hand-written baselines, not the pass
// pipeline) and the stochastic significance is tight so that hundreds of
// draws keep a negligible false-positive rate.
gs::oracle::OracleReport RunConfig(const FuzzConfig& c) {
  // Device before graph: lazy format materialization allocates into the
  // current device's caching allocator, so the graph must die first.
  gs::device::Device device(c.profile == "t4" ? gs::device::T4Sim()
                                              : gs::device::V100Sim());
  gs::device::DeviceGuard guard(device);
  gs::graph::Graph g = MakeGraph(c);
  gs::oracle::OracleOptions opts;
  opts.seed = c.seed ^ 0xF022F022ULL;
  opts.num_batches = c.num_batches;
  opts.batch_size = c.batch_size;
  opts.stochastic_batches = 100;
  opts.significance = 1e-5;
  opts.check_eager_twin = false;
  // The feature-gather differential runs only in --features draws (it is
  // orthogonal to the pass pipeline the default stream targets).
  opts.check_feature_gather = c.features;
  return gs::oracle::VerifyConfig(c.algo, g, ToSamplerOptions(c), opts);
}

// Sharded-vs-single differential (--shards N): every batch sampled through
// an N-way ShardGroup must be bit-identical to a single-device session over
// the same plan, frontier, and seed. Returns an empty string when the
// contract holds, a description of the first divergence otherwise.
// Model-updating algorithms are skipped (SampleSeeded is pure, but their
// contract is defined over the stateful epoch path the group does not run),
// as is HetGNN (its extra relation bindings have no ShardGroup hook).
std::string ShardMismatch(const FuzzConfig& c, bool* ran = nullptr) {
  if (ran) *ran = false;
  if (c.shards <= 1) {
    return "";
  }
  try {
    const gs::device::DeviceProfile profile =
        c.profile == "t4" ? gs::device::T4Sim() : gs::device::V100Sim();
    // Device before graph, as in RunConfig: the graph must die first.
    gs::device::Device device(profile);
    gs::device::DeviceGuard guard(device);
    gs::graph::Graph g = MakeGraph(c);
    gs::algorithms::AlgorithmProgram ref = gs::algorithms::MakeAlgorithm(c.algo, g);
    if (ref.updates_model || c.algo == "HetGNN") {
      return "";
    }
    if (ran) *ran = true;
    gs::core::SamplerOptions opts = ToSamplerOptions(c);
    opts.super_batch = 1;  // both sides sample one request at a time
    auto plan = std::make_shared<gs::core::CompiledPlan>(std::move(ref.program), opts, c.algo);
    gs::core::SamplerSession session(std::move(plan), g, std::move(ref.tensors));
    session.Warmup(gs::tensor::IdArray::FromVector({0, 1, 2, 3}));

    gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(c.algo, g);
    gs::shard::ShardGroupOptions shard_opts;
    shard_opts.num_shards = c.shards;
    shard_opts.partition = c.cut == "vertex" ? gs::graph::PartitionKind::kVertexCut
                                             : gs::graph::PartitionKind::kEdgeCut;
    shard_opts.profile = profile;
    shard_opts.sampler = opts;
    shard_opts.num_replicas = std::min(std::max(c.replicas, 1), c.shards);
    const gs::shard::ShardGroup group(g, std::move(ap.program), std::move(ap.tensors),
                                      shard_opts);

    // Kill dimension (--kill-shard): one shard is permanently lost from the
    // first placement probe. The reference session probes with no shard
    // context, so the shard-qualified plan cannot touch it; failover must
    // keep the group bit-identical anyway.
    std::unique_ptr<gs::fault::FaultScope> kill_scope;
    if (c.kill >= 0 && c.kill < c.shards) {
      kill_scope = std::make_unique<gs::fault::FaultScope>(gs::fault::FaultPlan::Parse(
          "shard" + std::to_string(c.kill) + ":shard.lost:after=0", c.seed));
    }

    Rng rng = Rng(c.seed ^ 0x5A4D5A4DULL);
    for (int b = 0; b < c.num_batches; ++b) {
      std::vector<int32_t> ids;
      ids.reserve(static_cast<size_t>(c.batch_size));
      for (int64_t j = 0; j < c.batch_size; ++j) {
        ids.push_back(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c.nodes))));
      }
      const gs::tensor::IdArray frontier = gs::tensor::IdArray::FromVector(ids);
      const uint64_t seed = c.seed + static_cast<uint64_t>(b) * 1315423911ULL;
      const std::vector<gs::core::Value> want = session.SampleSeeded(frontier, seed);
      const int shard = b % c.shards;  // rotate so every shard gets checked
      const std::vector<gs::core::Value> got = group.Sample(shard, frontier, seed);
      if (got.size() != want.size()) {
        return c.algo + ": shard " + std::to_string(shard) + " returned " +
               std::to_string(got.size()) + " outputs, single-device returned " +
               std::to_string(want.size());
      }
      for (size_t v = 0; v < want.size(); ++v) {
        if (!gs::core::BitIdentical(got[v], want[v])) {
          return c.algo + ": batch " + std::to_string(b) + " output " + std::to_string(v) +
                 " on shard " + std::to_string(shard) +
                 " diverged from single-device (" + c.cut + "-cut x" +
                 std::to_string(c.shards) + ")";
        }
      }
    }
  } catch (const std::exception& e) {
    return std::string("shard THROW ") + e.what();
  }
  return "";
}

// Feature-gather determinism differential (--features): two fresh hot-set
// caches fed the identical access sequence under the drawn admission policy
// must produce bit-identical gathered rows (both matching an eager lookup)
// and identical hit/miss counters. Returns an empty string when the contract
// holds. The bit-identity-across-policies check itself runs inside the
// oracle (check_feature_gather); this adds the cache-determinism axis the
// oracle's single-cache pass cannot see.
std::string FeatureMismatch(const FuzzConfig& c, bool* ran = nullptr) {
  if (ran) *ran = false;
  if (!c.features) {
    return "";
  }
  try {
    gs::device::Device device(c.profile == "t4" ? gs::device::T4Sim()
                                                : gs::device::V100Sim());
    gs::device::DeviceGuard guard(device);
    gs::graph::Graph g = MakeGraph(c);
    if (!g.features().defined()) {
      return "";
    }
    if (ran) *ran = true;
    const gs::feature::FeatureStore store(g.features());
    gs::feature::HotSetCacheOptions cache_opts;
    cache_opts.capacity = std::max<int64_t>(c.nodes / 8, 64);
    cache_opts.admission = gs::feature::AdmissionFromName(c.admission);
    gs::feature::HotSetCache cache_a(cache_opts);
    gs::feature::HotSetCache cache_b(cache_opts);
    const int64_t dim = g.features().cols();

    Rng rng = Rng(c.seed ^ 0xFEA7FEA7ULL);
    for (int b = 0; b < c.num_batches * 2; ++b) {  // x2: revisit for warm hits
      std::vector<int32_t> ids;
      ids.reserve(static_cast<size_t>(c.batch_size));
      Rng batch_rng = rng.Fork(static_cast<uint64_t>(b % c.num_batches));
      for (int64_t j = 0; j < c.batch_size; ++j) {
        ids.push_back(
            static_cast<int32_t>(batch_rng.UniformInt(static_cast<uint64_t>(c.nodes))));
      }
      const gs::tensor::IdArray frontier = gs::tensor::IdArray::FromVector(ids);
      const gs::tensor::Tensor got_a = store.Gather(frontier, &cache_a);
      const gs::tensor::Tensor got_b = store.Gather(frontier, &cache_b);
      for (size_t i = 0; i < ids.size(); ++i) {
        const float* a = got_a.data() + static_cast<int64_t>(i) * dim;
        const float* bb = got_b.data() + static_cast<int64_t>(i) * dim;
        const float* want = g.features().data() + static_cast<int64_t>(ids[i]) * dim;
        if (std::memcmp(a, want, static_cast<size_t>(dim) * sizeof(float)) != 0) {
          return c.admission + ": batch " + std::to_string(b) + " row " + std::to_string(i) +
                 " (node " + std::to_string(ids[i]) + ") diverged from the eager lookup";
        }
        if (std::memcmp(a, bb, static_cast<size_t>(dim) * sizeof(float)) != 0) {
          return c.admission + ": batch " + std::to_string(b) + " row " + std::to_string(i) +
                 " differs between two caches fed the same sequence";
        }
      }
    }
    if (cache_a.hits() != cache_b.hits() || cache_a.misses() != cache_b.misses()) {
      return c.admission + ": nondeterministic cache counters (hits " +
             std::to_string(cache_a.hits()) + " vs " + std::to_string(cache_b.hits()) +
             ", misses " + std::to_string(cache_a.misses()) + " vs " +
             std::to_string(cache_b.misses()) + ")";
    }
  } catch (const std::exception& e) {
    return std::string("feature THROW ") + e.what();
  }
  return "";
}

// Snapshot-equivalence differential (--mutate): apply a seeded mutation
// stream to a GraphStore over the drawn base graph (Seal mid-stream so
// compaction is exercised too), then require the oracle's
// VerifySnapshotEquivalence to hold — the incremental snapshot must be
// digest-identical and sample bit-identically to a from-scratch FromEdges
// load of the same effective edge set. Returns an empty string when the
// contract holds.
std::string MutateMismatch(const FuzzConfig& c, bool* ran = nullptr) {
  if (ran) *ran = false;
  if (!c.mutate || c.mutations <= 0) {
    return "";
  }
  try {
    gs::device::Device device(c.profile == "t4" ? gs::device::T4Sim()
                                                : gs::device::V100Sim());
    gs::device::DeviceGuard guard(device);
    gs::graph::Graph g = MakeGraph(c);
    const int64_t feature_dim = g.features().defined() ? g.features().cols() : 0;
    gs::graph::GraphStoreOptions store_opts;
    store_opts.segment_cols = 64;  // small segments so COW sharing is exercised
    gs::graph::GraphStore store(std::move(g), store_opts);
    if (ran) *ran = true;

    gs::dyn::MutationGenOptions gen_opts;
    gen_opts.seed = c.mseed;
    gen_opts.num_nodes = c.nodes;
    gen_opts.adds_per_batch = 16;
    gen_opts.removes_per_batch = 4;
    gen_opts.feature_updates_per_batch = feature_dim > 0 ? 4 : 0;
    gen_opts.feature_dim = feature_dim;
    gen_opts.weighted = c.weighted;
    gen_opts.skew = 0.8;
    gs::dyn::MutationGen gen(gen_opts);
    for (int m = 0; m < c.mutations; ++m) {
      store.Apply(gen.Next());
      if (m == c.mutations / 2) {
        store.Seal();  // mid-stream compaction must not change the epoch
      }
    }

    gs::oracle::OracleOptions opts;
    opts.seed = c.seed ^ 0xD1D1D1D1ULL;
    opts.num_batches = c.num_batches;
    opts.batch_size = c.batch_size;
    const gs::oracle::OracleReport report =
        gs::oracle::VerifySnapshotEquivalence(c.algo, store, ToSamplerOptions(c), opts);
    if (!report.ok()) {
      return report.ToString();
    }
  } catch (const std::exception& e) {
    return std::string("mutate THROW ") + e.what();
  }
  return "";
}

// JIT-vs-interpreter differential (--jit): the same compiled plan is sampled
// through two warmed sessions — one purely interpreted, one with the JIT
// engine's native jump table attached — and every batch must be
// bit-identical. The engine is process-global so artifacts accumulate in one
// scratch dir across draws (the cache verifies each reloaded .so by its
// embedded key, so stale artifacts cannot poison a draw). Returns an empty
// string when the contract holds.
std::string JitMismatch(const FuzzConfig& c, bool* ran = nullptr) {
  if (ran) *ran = false;
  if (!c.jit) {
    return "";
  }
  try {
    gs::device::Device device(c.profile == "t4" ? gs::device::T4Sim()
                                                : gs::device::V100Sim());
    gs::device::DeviceGuard guard(device);
    gs::graph::Graph g = MakeGraph(c);
    gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(c.algo, g);
    gs::core::SamplerOptions opts = ToSamplerOptions(c);
    if (ap.updates_model) {
      opts.super_batch = 1;
    }
    auto plan = std::make_shared<gs::core::CompiledPlan>(std::move(ap.program), opts, c.algo);
    static gs::jit::JitEngine* engine = [] {
      gs::jit::JitEngineOptions options;
      options.artifact_dir =
          (std::filesystem::temp_directory_path() / "gs_fuzz_jit").string();
      std::filesystem::create_directories(options.artifact_dir);
      return new gs::jit::JitEngine(options);
    }();
    gs::core::SamplerSession interp(plan, g, ap.tensors);
    gs::core::SamplerSession jitted(plan, g, ap.tensors);
    if (c.algo == "HetGNN") {
      interp.BindGraph("rel0", &g.adj());
      interp.BindGraph("rel1", &g.adj());
      jitted.BindGraph("rel0", &g.adj());
      jitted.BindGraph("rel1", &g.adj());
    }
    const gs::tensor::IdArray warm = gs::tensor::IdArray::FromVector({0, 1, 2, 3});
    interp.Warmup(warm);
    jitted.Warmup(warm);
    // Post-warmup, like serving: warmup calibrates the plan, and calibration
    // is part of the digest the artifact keys embed.
    const auto table = engine->TableFor(*plan);
    if (table == nullptr) {
      return "";  // no fused regions under this config: nothing to compare
    }
    if (ran) *ran = true;
    jitted.SetJitTable(table);

    Rng rng = Rng(c.seed ^ 0x317317ULL);
    for (int b = 0; b < c.num_batches; ++b) {
      std::vector<int32_t> ids;
      ids.reserve(static_cast<size_t>(c.batch_size));
      for (int64_t j = 0; j < c.batch_size; ++j) {
        ids.push_back(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c.nodes))));
      }
      const gs::tensor::IdArray frontier = gs::tensor::IdArray::FromVector(ids);
      const uint64_t seed = c.seed + static_cast<uint64_t>(b) * 2654435761ULL;
      const std::vector<gs::core::Value> want = interp.SampleSeeded(frontier, seed);
      const std::vector<gs::core::Value> got = jitted.SampleSeeded(frontier, seed);
      if (got.size() != want.size()) {
        return c.algo + ": jit returned " + std::to_string(got.size()) +
               " outputs, interpreter returned " + std::to_string(want.size());
      }
      for (size_t v = 0; v < want.size(); ++v) {
        if (!gs::core::BitIdentical(got[v], want[v])) {
          return c.algo + ": batch " + std::to_string(b) + " output " + std::to_string(v) +
                 " diverged between jit and interpreter";
        }
      }
    }
  } catch (const std::exception& e) {
    return std::string("jit THROW ") + e.what();
  }
  return "";
}

bool Fails(const FuzzConfig& c) {
  try {
    return !RunConfig(c).ok() || !ShardMismatch(c).empty() || !FeatureMismatch(c).empty() ||
           !MutateMismatch(c).empty() || !JitMismatch(c).empty();
  } catch (const std::exception&) {
    return true;  // a throwing config is a failing config — keep minimizing
  }
}

// Ordered differential-dimension ladder, run before the knob minimization:
// try to drop each dimension — jit first (the cheapest to rule out), then
// features, mutate, kill-shard, shards — re-verifying the failure after
// *each* drop rather than assuming the fixed order preserves the repro (a
// kill-shard failure, for instance, vanishes when the shard drop goes first).
// A dimension whose removal makes the failure disappear is load-bearing: it
// is restored and reported back so the --repro line can name it.
std::vector<std::string> MinimizeDimensions(FuzzConfig& c) {
  std::vector<std::string> surviving;
  auto attempt = [&](const char* name, auto&& drop) {
    FuzzConfig t = c;
    drop(t);
    if (Fails(t)) {
      c = t;
    } else {
      surviving.push_back(name);
    }
  };
  if (c.jit) {
    attempt("jit", [](FuzzConfig& t) { t.jit = false; });
  }
  if (c.features) {
    attempt("features", [](FuzzConfig& t) { t.features = false; });
  }
  if (c.mutate) {
    attempt("mutate", [](FuzzConfig& t) {
      t.mutate = false;
      t.mutations = 0;
    });
  }
  if (c.kill >= 0) {
    attempt("kill-shard", [](FuzzConfig& t) {
      t.kill = -1;
      t.replicas = 1;
    });
  }
  if (c.shards > 1) {
    // Re-verified like every other rung: if kill-shard survived above, this
    // trial also removes it, and Fails() decides whether that still repros.
    attempt("shards", [](FuzzConfig& t) {
      t.shards = 1;
      t.kill = -1;
      t.replicas = 1;
    });
  }
  return surviving;
}

// Greedy ddmin over the discrete knobs: repeatedly try every single-knob
// reduction towards the reference configuration and keep the ones that
// preserve the failure, until a fixpoint.
void MinimizeFlags(FuzzConfig& c) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<FuzzConfig> trials;
    if (c.super_batch != 1) {
      trials.push_back(c);
      trials.back().super_batch = 1;
    }
    if (c.shards > 1 && c.cut != "edge") {
      trials.push_back(c);
      trials.back().cut = "edge";
    }
    for (bool FuzzConfig::* knob :
         {&FuzzConfig::fusion, &FuzzConfig::preproc, &FuzzConfig::layout,
          &FuzzConfig::greedy, &FuzzConfig::weighted}) {
      if (c.*knob) {
        trials.push_back(c);
        trials.back().*knob = false;
      }
    }
    for (const FuzzConfig& t : trials) {
      if (Fails(t)) {
        c = t;
        changed = true;
        break;
      }
    }
  }
}

// Pass-pipeline bisection through SamplerOptions.pass_limit: find the
// shortest failing prefix, attributing the divergence to its last pass.
void MinimizePasses(FuzzConfig& c, std::string& culprit) {
  int total = 0;
  std::vector<std::string> names;
  try {
    gs::graph::Graph g = MakeGraph(c);
    gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(c.algo, g);
    gs::core::CompiledPlan plan(std::move(ap.program), ToSamplerOptions(c));
    for (const auto& pass : plan.report().passes) {
      names.push_back(pass.name);
    }
    total = static_cast<int>(names.size());
  } catch (const std::exception&) {
    return;  // compilation itself fails; nothing to bisect
  }
  for (int limit = 0; limit <= total; ++limit) {
    FuzzConfig t = c;
    t.pass_limit = limit;
    if (Fails(t)) {
      c = t;
      culprit = limit == 0 ? "(no passes: baseline mismatch)"
                           : names[static_cast<size_t>(limit - 1)];
      return;
    }
  }
  // Every prefix passes in isolation yet the full run failed (flaky
  // stochastic rejection, most likely); leave pass_limit untouched.
}

// Shrinks the graph and the epoch while the failure persists.
void MinimizeShape(FuzzConfig& c) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<FuzzConfig> trials;
    if (c.nodes / 2 >= 32) {
      trials.push_back(c);
      trials.back().nodes = c.nodes / 2;
      trials.back().edges = std::max<int64_t>(c.edges / 2, c.nodes / 2);
    }
    if (c.edges / 2 >= c.nodes) {
      trials.push_back(c);
      trials.back().edges = c.edges / 2;
    }
    if (c.num_batches > 1) {
      trials.push_back(c);
      trials.back().num_batches = c.num_batches / 2;
    }
    if (c.batch_size / 2 >= 1) {
      trials.push_back(c);
      trials.back().batch_size = c.batch_size / 2;
    }
    if (c.mutations > 1) {
      trials.push_back(c);
      trials.back().mutations = c.mutations / 2;
    }
    for (const FuzzConfig& t : trials) {
      if (Fails(t)) {
        c = t;
        changed = true;
        break;
      }
    }
  }
}

FuzzConfig Draw(uint64_t base_seed, uint64_t index, int shards, bool features,
                bool kill_shard, bool mutate, bool jit) {
  Rng rng = Rng(base_seed).Fork(index);
  const std::vector<std::string> algos = gs::algorithms::AllAlgorithmNames();
  FuzzConfig c;
  c.algo = algos[static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(algos.size())))];
  c.nodes = 100 + rng.UniformInt(301);           // 100..400
  c.edges = c.nodes * (4 + rng.UniformInt(9));   // mean degree 4..12
  c.gseed = rng.UniformInt(1 << 20);
  c.weighted = rng.UniformInt(2) == 1;
  c.num_batches = 2 + static_cast<int>(rng.UniformInt(5));  // 2..6
  c.batch_size = 4 + rng.UniformInt(13);         // 4..16
  c.fusion = rng.UniformInt(2) == 1;
  c.preproc = rng.UniformInt(2) == 1;
  c.layout = rng.UniformInt(2) == 1;
  c.greedy = rng.UniformInt(2) == 1;
  const int sb[] = {1, 2, 4};
  c.super_batch = sb[rng.UniformInt(3)];
  c.seed = rng.UniformInt(int64_t{1} << 32);
  c.profile = rng.UniformInt(2) == 1 ? "t4" : "v100";
  c.pass_limit = -1;
  // The shard count comes from the CLI, not the stream, so `--seeds N` draws
  // the same configs with and without `--shards`; only the cut is drawn (and
  // drawn last, keeping every pre-shard field identical to older streams).
  c.shards = shards;
  c.cut = rng.UniformInt(2) == 1 ? "vertex" : "edge";
  // Like the shard count, the feature toggle comes from the CLI; only the
  // admission policy is drawn (last, preserving older streams).
  c.features = features;
  const char* admissions[] = {"static-degree", "lru", "frequency-ema"};
  c.admission = admissions[rng.UniformInt(3)];
  // The kill dimension is drawn LAST and only under --kill-shard, so every
  // older stream (and every --shards run without it) is unchanged.
  if (kill_shard && shards > 1) {
    c.kill = static_cast<int>(rng.UniformInt(shards));
    c.replicas = 2;
  }
  // The mutate dimension is drawn after kill (and only under --mutate), so
  // every pre-existing stream stays byte-identical without the flag.
  if (mutate) {
    c.mutate = true;
    c.mutations = 1 + static_cast<int>(rng.UniformInt(4));  // 1..4 batches
    c.mseed = rng.UniformInt(1 << 20);
  }
  // The jit dimension comes from the CLI and draws nothing from the stream,
  // so every pre-existing stream stays byte-identical without the flag.
  c.jit = jit;
  return c;
}

int Usage() {
  std::cerr << "usage: fuzz_passes [--seeds N] [--base-seed S] [--out FILE]\n"
               "                   [--shards N] [--kill-shard] [--features] [--mutate]\n"
               "                   [--jit] [--repro 'key=value ...']\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_seeds = 50;
  uint64_t base_seed = 0xF022;
  int shards = 1;
  bool kill_shard = false;
  bool features = false;
  bool mutate = false;
  bool jit = false;
  std::string out_path;
  std::string repro_line;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return Usage();
      num_seeds = std::atoll(v);
    } else if (arg == "--base-seed") {
      const char* v = next();
      if (!v) return Usage();
      base_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return Usage();
      shards = std::atoi(v);
      if (shards < 1) return Usage();
    } else if (arg == "--kill-shard") {
      kill_shard = true;
    } else if (arg == "--features") {
      features = true;
    } else if (arg == "--mutate") {
      mutate = true;
    } else if (arg == "--jit") {
      jit = true;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage();
      out_path = v;
    } else if (arg == "--repro") {
      const char* v = next();
      if (!v) return Usage();
      repro_line = v;
    } else {
      return Usage();
    }
  }

  if (!repro_line.empty()) {
    FuzzConfig c;
    if (!FuzzConfig::FromLine(repro_line, c)) {
      std::cerr << "fuzz_passes: cannot parse repro line\n";
      return 2;
    }
    try {
      const gs::oracle::OracleReport report = RunConfig(c);
      std::cout << report.ToString() << "\n";
      bool ran = false;
      const std::string mismatch = ShardMismatch(c, &ran);
      if (!mismatch.empty()) {
        std::cout << "shard differential: " << mismatch << "\n";
      } else if (ran) {
        std::cout << "shard differential: " << c.shards << "-shard " << c.cut
                  << "-cut bit-identical\n";
      } else if (c.shards > 1) {
        std::cout << "shard differential: skipped (stateful or extra bindings)\n";
      }
      bool feature_ran = false;
      const std::string feature_mismatch = FeatureMismatch(c, &feature_ran);
      if (!feature_mismatch.empty()) {
        std::cout << "feature differential: " << feature_mismatch << "\n";
      } else if (feature_ran) {
        std::cout << "feature differential: " << c.admission
                  << " bit-identical and deterministic\n";
      }
      bool mutate_ran = false;
      const std::string mutate_mismatch = MutateMismatch(c, &mutate_ran);
      if (!mutate_mismatch.empty()) {
        std::cout << "mutate differential: " << mutate_mismatch << "\n";
      } else if (mutate_ran) {
        std::cout << "mutate differential: " << c.mutations
                  << " batches snapshot-equivalent\n";
      }
      bool jit_ran = false;
      const std::string jit_mismatch = JitMismatch(c, &jit_ran);
      if (!jit_mismatch.empty()) {
        std::cout << "jit differential: " << jit_mismatch << "\n";
      } else if (jit_ran) {
        std::cout << "jit differential: native kernels bit-identical\n";
      } else if (c.jit) {
        std::cout << "jit differential: skipped (no fused regions)\n";
      }
      return report.ok() && mismatch.empty() && feature_mismatch.empty() &&
                     mutate_mismatch.empty() && jit_mismatch.empty()
                 ? 0
                 : 1;
    } catch (const std::exception& e) {
      std::cout << c.algo << ": THROW " << e.what() << "\n";
      return 1;
    }
  }

  int64_t failures = 0;
  for (int64_t i = 0; i < num_seeds; ++i) {
    FuzzConfig c = Draw(base_seed, static_cast<uint64_t>(i), shards, features, kill_shard,
                        mutate, jit);
    std::string detail;
    try {
      const gs::oracle::OracleReport report = RunConfig(c);
      if (report.ok()) {
        const std::string mismatch = ShardMismatch(c);
        const std::string feature_mismatch = mismatch.empty() ? FeatureMismatch(c) : "";
        const std::string mutate_mismatch =
            mismatch.empty() && feature_mismatch.empty() ? MutateMismatch(c) : "";
        const std::string jit_mismatch =
            mismatch.empty() && feature_mismatch.empty() && mutate_mismatch.empty()
                ? JitMismatch(c)
                : "";
        if (mismatch.empty() && feature_mismatch.empty() && mutate_mismatch.empty() &&
            jit_mismatch.empty()) {
          continue;
        }
        detail = !mismatch.empty()           ? "shard differential: " + mismatch
                 : !feature_mismatch.empty() ? "feature differential: " + feature_mismatch
                 : !mutate_mismatch.empty()  ? "mutate differential: " + mutate_mismatch
                                             : "jit differential: " + jit_mismatch;
      } else {
        detail = report.ToString();
      }
    } catch (const std::exception& e) {
      detail = std::string("THROW ") + e.what();
    }
    ++failures;
    std::cout << "FAIL draw " << i << ": " << detail << "\n";
    std::string culprit;
    const std::vector<std::string> surviving = MinimizeDimensions(c);
    MinimizeFlags(c);
    MinimizePasses(c, culprit);
    MinimizeShape(c);
    // The shipped reproducer must actually reproduce: re-verify the whole
    // minimized config once, end to end, before printing it.
    if (!Fails(c)) {
      std::cout << "  (warning: minimized config no longer reproduces — "
                   "likely a flaky stochastic rejection)\n";
    }
    std::string survived;
    for (const std::string& dim : surviving) {
      survived += (survived.empty() ? "" : ",") + dim;
    }
    const std::string line = c.ToLine();
    std::cout << "  minimized: " << line << "\n";
    if (!survived.empty()) {
      std::cout << "  surviving dimensions: " << survived << "\n";
    }
    if (!culprit.empty()) {
      std::cout << "  first failing pass prefix ends at: " << culprit << "\n";
    }
    std::cout << "  replay: fuzz_passes --repro '" << line << "'"
              << (survived.empty() ? "" : "  # surviving: " + survived) << "\n";
    if (!out_path.empty()) {
      FILE* f = std::fopen(out_path.c_str(), "a");
      if (f) {
        std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
      }
    }
  }
  std::cout << "fuzz_passes: " << (num_seeds - failures) << "/" << num_seeds
            << " draws clean (base seed 0x" << std::hex << base_seed << std::dec
            << ")\n";
  return failures == 0 ? 0 : 1;
}
