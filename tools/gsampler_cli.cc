// Command-line driver: run any of the 15 sampling algorithms on a built-in
// dataset analogue or a graph snapshot, with the optimization pipeline
// configurable from flags. Prints per-epoch simulated time and device
// counters.
//
// Usage:
//   gsampler_cli --algorithm GraphSAGE --dataset PD --batch 512 --epochs 2
//   gsampler_cli --algorithm LADIES --dataset PP --profile t4 --no-layout
//   gsampler_cli --list
//
// Flags:
//   --algorithm NAME   Table-2 algorithm name (default GraphSAGE)
//   --dataset D        LJ | PD | PP | FS, or a path to a .gsg snapshot
//   --scale S          dataset scale factor (default 0.5)
//   --batch N          mini-batch size (default 512)
//   --epochs N         sampling epochs to run (default 1)
//   --profile P        v100 | t4 (default v100)
//   --super-batch N    fixed super-batch size; 0 = auto (default 0)
//   --pipeline-depth N prefetch-queue depth for the pipelined epoch loop;
//                      0 = synchronous legacy path (default 0)
//   --no-fusion --no-preprocess --no-layout   disable individual passes
//   --print-ir         dump the compiled program
//   --save-plan PATH   persist the compiled (calibrated) plan artifact after
//                      the run, for later --load-plan / --verify-plan
//   --load-plan PATH   skip the pass pipeline and calibration: restore the
//                      plan from a saved artifact (its baked-in options
//                      override the pass flags above) and only re-bind
//                      tensors + re-run pre-computation
//   --verify-plan      round-trip self-check: compile, serialize, reload,
//                      and require bit-identical samples from the restored
//                      plan (non-zero exit on any divergence); combine with
//                      --save-plan to persist the verified artifact
//   --verify-passes    run Program::Verify() after every optimization pass
//                      (always on in debug builds; also via GS_VERIFY_PASSES)
//   --dump-ir          log the IR after each pass
//   --list             list algorithms and datasets, then exit
//   --json             emit a single-line JSON run summary on stdout instead
//                      of the human-readable report
//   --serve            embedded-server mode: register the algorithm as a
//                      serving endpoint and drive it with an open-loop
//                      Poisson client (see --requests / --rps / --workers)
//   --requests N       serve mode: requests to submit (default 200)
//   --rps R            serve mode: offered load in requests/sec (default 500)
//   --workers N        serve mode: server worker threads (default 2)
//   --features         serve mode: attach gathered feature rows to every
//                      response (per-tenant hot-set cache, gs::feature);
//                      cache hit rate + gather bytes land in the report
//                      and in the --json keys feature_hit_rate /
//                      feature_gather_bytes
//   --fault-plan SPEC  gs::fault injection schedule for the whole run, e.g.
//                      "kernel.transient:p=0.001;alloc.oom:occ=5". Injector
//                      probe/injection counts are printed to stderr on exit.
//   --fault-seed S     seed for the fault plan's deterministic draws
//                      (default 0; same plan + seed => same fault sequence)
//   --mutate-stream N  serve mode: register the dataset as a versioned
//                      GraphStore endpoint (gs::dyn) and apply N seeded
//                      MutationBatches from an ingest thread while the load
//                      generator runs — plan reuse / stale-serving /
//                      recompile counters land in the report and JSON
//   --mutate-seed S    seed for the mutation stream (default 0x5EED)
//   --jit              JIT-compile fused IR regions to native code (gs::jit).
//                      Epoch/verify modes attach the compiled jump table to
//                      the session after warmup; serve mode sets
//                      ServerOptions::jit so every cached plan gets one.
//                      Region/compile/demotion counters land in the report
//                      and in the --json keys jit_regions / jit_compiled /
//                      jit_artifact_hits / jit_hits / jit_demotions

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "core/engine.h"
#include "core/plan.h"
#include "dyn/mutation_gen.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/store.h"
#include "fault/fault.h"
#include "jit/jit.h"
#include "pipeline/executor.h"
#include "serving/loadgen.h"
#include "serving/server.h"

namespace {

struct Args {
  std::string algorithm = "GraphSAGE";
  std::string dataset = "PD";
  double scale = 0.5;
  int64_t batch = 512;
  int epochs = 1;
  std::string profile = "v100";
  int super_batch = 0;
  int pipeline_depth = 0;
  bool fusion = true;
  bool preprocess = true;
  bool layout = true;
  bool print_ir = false;
  std::string save_plan;
  std::string load_plan;
  bool verify_plan = false;
  bool verify_passes = false;
  bool dump_ir = false;
  bool list = false;
  bool json = false;
  bool serve = false;
  bool serve_features = false;
  int64_t requests = 200;
  double rps = 500.0;
  int workers = 2;
  std::string fault_plan;
  uint64_t fault_seed = 0;
  int64_t mutate_stream = 0;
  uint64_t mutate_seed = 0x5EED;
  bool jit = false;
};

Args Parse(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> const char* {
    GS_CHECK(i + 1 < argc) << argv[i] << " needs a value";
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--algorithm") {
      args.algorithm = value(i);
    } else if (flag == "--dataset") {
      args.dataset = value(i);
    } else if (flag == "--scale") {
      args.scale = std::atof(value(i));
    } else if (flag == "--batch") {
      args.batch = std::atoll(value(i));
    } else if (flag == "--epochs") {
      args.epochs = std::atoi(value(i));
    } else if (flag == "--profile") {
      args.profile = value(i);
    } else if (flag == "--super-batch") {
      args.super_batch = std::atoi(value(i));
    } else if (flag == "--pipeline-depth") {
      args.pipeline_depth = std::atoi(value(i));
      GS_CHECK(args.pipeline_depth >= 0) << "--pipeline-depth must be >= 0";
    } else if (flag == "--no-fusion") {
      args.fusion = false;
    } else if (flag == "--no-preprocess") {
      args.preprocess = false;
    } else if (flag == "--no-layout") {
      args.layout = false;
    } else if (flag == "--print-ir") {
      args.print_ir = true;
    } else if (flag == "--save-plan") {
      args.save_plan = value(i);
    } else if (flag == "--load-plan") {
      args.load_plan = value(i);
    } else if (flag == "--verify-plan") {
      args.verify_plan = true;
    } else if (flag == "--verify-passes") {
      args.verify_passes = true;
    } else if (flag == "--dump-ir") {
      args.dump_ir = true;
    } else if (flag == "--list") {
      args.list = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--serve") {
      args.serve = true;
    } else if (flag == "--features") {
      args.serve_features = true;
    } else if (flag == "--requests") {
      args.requests = std::atoll(value(i));
      GS_CHECK(args.requests > 0) << "--requests must be > 0";
    } else if (flag == "--rps") {
      args.rps = std::atof(value(i));
      GS_CHECK(args.rps > 0) << "--rps must be > 0";
    } else if (flag == "--workers") {
      args.workers = std::atoi(value(i));
      GS_CHECK(args.workers > 0) << "--workers must be > 0";
    } else if (flag == "--fault-plan") {
      args.fault_plan = value(i);
    } else if (flag == "--fault-seed") {
      args.fault_seed = static_cast<uint64_t>(std::atoll(value(i)));
    } else if (flag == "--mutate-stream") {
      args.mutate_stream = std::atoll(value(i));
      GS_CHECK(args.mutate_stream > 0) << "--mutate-stream must be > 0";
    } else if (flag == "--mutate-seed") {
      args.mutate_seed = static_cast<uint64_t>(std::atoll(value(i)));
    } else if (flag == "--jit") {
      args.jit = true;
    } else {
      GS_CHECK(false) << "unknown flag: " << flag << " (see the header of tools/gsampler_cli.cc)";
    }
  }
  return args;
}

// Serve mode: the CLI's algorithm/dataset pair becomes a serving endpoint
// driven by the open-loop Poisson client. Returns the process exit code.
int RunServe(const Args& args, gs::graph::Graph& g) {
  namespace serving = gs::serving;
  serving::ServerOptions options;
  options.num_workers = args.workers;
  options.serve_features = args.serve_features;
  options.jit = args.jit;
  serving::Server server(options);
  // --mutate-stream: the dataset becomes a versioned GraphStore endpoint;
  // requests pin their admission-time snapshot while an ingest thread
  // applies mutation epochs under the serving load.
  std::unique_ptr<gs::graph::GraphStore> store;
  if (args.mutate_stream > 0) {
    store = std::make_unique<gs::graph::GraphStore>(g);
    server.RegisterEndpoint(serving::MakeDynamicEndpoint(args.algorithm, args.dataset, *store));
  } else {
    server.RegisterEndpoint(serving::MakeEndpoint(args.algorithm, args.dataset, g));
  }
  server.Start();

  std::thread ingest;
  if (store != nullptr) {
    ingest = std::thread([&] {
      gs::dyn::MutationGenOptions gen_opts;
      gen_opts.seed = args.mutate_seed;
      gen_opts.num_nodes = g.num_nodes();
      gen_opts.adds_per_batch = 64;
      gen_opts.removes_per_batch = 16;
      if (g.features().defined()) {
        gen_opts.feature_updates_per_batch = 8;
        gen_opts.feature_dim = g.features().cols();
      }
      gen_opts.weighted = store->weighted();
      gen_opts.skew = 0.8;
      gs::dyn::MutationGen gen(gen_opts);
      // Pace the batches across the expected run so mutation epochs
      // interleave with serving instead of front-loading before admission.
      const auto gap = std::chrono::microseconds(static_cast<int64_t>(
          1e6 * static_cast<double>(args.requests) / args.rps /
          static_cast<double>(args.mutate_stream + 1)));
      for (int64_t b = 0; b < args.mutate_stream; ++b) {
        std::this_thread::sleep_for(gap);
        store->Apply(gen.Next());
      }
    });
  }

  serving::LoadGenOptions load;
  load.algorithm = args.algorithm;
  load.dataset = args.dataset;
  load.num_requests = args.requests;
  load.offered_rps = args.rps;
  load.batch_size = args.batch;
  const serving::LoadGenReport report = RunOpenLoop(server, g, load);
  if (ingest.joinable()) {
    ingest.join();
  }
  server.DrainRecompiles();
  server.Stop();
  const serving::ServerStats stats = server.stats();

  char dyn_tail[320] = "";
  if (args.mutate_stream > 0) {
    std::snprintf(dyn_tail, sizeof(dyn_tail),
                  ",\"graph_epochs\":%lld,\"plan_reuses\":%lld,"
                  "\"stale_plans_served\":%lld,\"recompiles_inline\":%lld,"
                  "\"recompiles_background\":%lld,\"feature_invalidations\":%lld",
                  static_cast<long long>(stats.graph_epochs),
                  static_cast<long long>(stats.plan_reuses),
                  static_cast<long long>(stats.stale_plans_served),
                  static_cast<long long>(stats.recompiles_inline),
                  static_cast<long long>(stats.recompiles_background),
                  static_cast<long long>(stats.feature_invalidations));
  }
  char jit_tail[192] = "";
  if (args.jit) {
    std::snprintf(jit_tail, sizeof(jit_tail),
                  ",\"jit_regions\":%lld,\"jit_compiled\":%lld,"
                  "\"jit_artifact_hits\":%lld,\"jit_hits\":%lld,\"jit_demotions\":%lld",
                  static_cast<long long>(stats.jit_regions),
                  static_cast<long long>(stats.jit_compiled),
                  static_cast<long long>(stats.jit_artifact_hits),
                  static_cast<long long>(stats.jit_hits),
                  static_cast<long long>(stats.jit_demotions));
  }
  if (args.json) {
    std::printf(
        "{\"mode\":\"serve\",\"algorithm\":\"%s\",\"dataset\":\"%s\","
        "\"requests\":%lld,\"ok\":%lld,\"rejected\":%lld,\"deadline_exceeded\":%lld,"
        "\"failed\":%lld,\"degraded\":%lld,\"coalesced\":%lld,"
        "\"achieved_rps\":%.1f,\"coalescing_ratio\":%.2f,"
        "\"p50_us\":%lld,\"p95_us\":%lld,\"p99_us\":%lld,"
        "\"plan_cache_hits\":%lld,\"plan_cache_misses\":%lld,"
        "\"feature_requests\":%lld,\"feature_rows\":%lld,"
        "\"feature_hit_rate\":%.4f,\"feature_gather_bytes\":%lld,"
        "\"feature_miss_bytes\":%lld,\"feature_gather_us\":%lld%s%s}\n",
        args.algorithm.c_str(), args.dataset.c_str(),
        static_cast<long long>(report.submitted), static_cast<long long>(report.ok),
        static_cast<long long>(report.rejected),
        static_cast<long long>(report.deadline_exceeded),
        static_cast<long long>(report.failed), static_cast<long long>(report.degraded),
        static_cast<long long>(report.coalesced), report.achieved_rps,
        stats.CoalescingRatio(), static_cast<long long>(report.p50_ns / 1000),
        static_cast<long long>(report.p95_ns / 1000),
        static_cast<long long>(report.p99_ns / 1000),
        static_cast<long long>(stats.plan_cache_hits),
        static_cast<long long>(stats.plan_cache_misses),
        static_cast<long long>(stats.feature_requests),
        static_cast<long long>(stats.feature_rows), stats.FeatureHitRate(),
        static_cast<long long>(stats.feature_gather_bytes),
        static_cast<long long>(stats.feature_miss_bytes),
        static_cast<long long>(stats.feature_gather_ns / 1000), dyn_tail, jit_tail);
  } else {
    std::printf("%s\n%s\n", report.ToString().c_str(), stats.ToString().c_str());
  }
  return report.failed == 0 ? 0 : 1;
}

// --jit: one engine for the whole run. Default options put artifacts in a
// temp directory keyed by plan digest, so every session in this process (and
// a later --load-plan run over the same artifacts) shares compiled kernels.
gs::jit::JitEngine& CliJitEngine() {
  static gs::jit::JitEngine engine;
  return engine;
}

// Shared session construction over a plan: re-traces the algorithm for its
// tensor bindings, attaches HetGNN's relation graphs, and warms up.
std::shared_ptr<gs::core::SamplerSession> OpenSession(
    const Args& args, const gs::graph::Graph& g, std::shared_ptr<gs::core::CompiledPlan> plan,
    const gs::tensor::IdArray& warmup) {
  namespace core = gs::core;
  gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(args.algorithm, g);
  auto session = std::make_shared<core::SamplerSession>(std::move(plan), g, std::move(ap.tensors));
  if (args.algorithm == "HetGNN") {
    session->BindGraph("rel0", &g.adj());
    session->BindGraph("rel1", &g.adj());
  }
  session->Warmup(warmup);
  if (args.jit) {
    // After Warmup: calibration is part of the plan digest the kernel
    // artifacts are keyed by, so attaching earlier would defeat artifact
    // reuse across restarts.
    session->SetJitTable(CliJitEngine().TableFor(session->plan()));
  }
  return session;
}

// Verify-plan mode: compile -> warm up -> serialize -> reload -> require a
// stable digest and bit-identical samples from the restored plan. Returns
// the process exit code (non-zero on any divergence).
int RunVerifyPlan(const Args& args, gs::graph::Graph& g, gs::core::SamplerOptions options) {
  namespace core = gs::core;
  gs::algorithms::AlgorithmProgram ap = gs::algorithms::MakeAlgorithm(args.algorithm, g);
  if (ap.updates_model) {
    options.super_batch = 1;
  }
  auto plan =
      std::make_shared<core::CompiledPlan>(std::move(ap.program), options, args.algorithm);

  std::vector<int32_t> ids;
  for (int32_t v = 0; v < std::min<int64_t>(g.num_nodes(), 8); ++v) {
    ids.push_back(v);
  }
  const gs::tensor::IdArray warmup = gs::tensor::IdArray::FromVector(ids);
  auto original = OpenSession(args, g, plan, warmup);

  const std::string text = plan->Serialize();
  std::shared_ptr<core::CompiledPlan> loaded = core::CompiledPlan::Deserialize(text);
  if (loaded->Digest() != plan->Digest() || !loaded->restored() || !loaded->calibrated()) {
    std::fprintf(stderr, "verify-plan %s: reload state mismatch\n", args.algorithm.c_str());
    return 1;
  }
  if (loaded->Serialize() != text) {
    std::fprintf(stderr, "verify-plan %s: reserialization is not stable\n",
                 args.algorithm.c_str());
    return 1;
  }
  auto restored = OpenSession(args, g, loaded, warmup);

  const std::vector<std::pair<std::vector<int32_t>, uint64_t>> probes = {
      {{0, 1, 2, 3}, 7}, {{5, 3, 1}, 31337}, {{2}, 0}};
  for (const auto& [frontier, seed] : probes) {
    const gs::tensor::IdArray f = gs::tensor::IdArray::FromVector(frontier);
    const std::vector<core::Value> a = original->SampleSeeded(f, seed);
    const std::vector<core::Value> b = restored->SampleSeeded(f, seed);
    if (a.size() != b.size()) {
      std::fprintf(stderr, "verify-plan %s: output arity diverged\n", args.algorithm.c_str());
      return 1;
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (!core::BitIdentical(a[i], b[i])) {
        std::fprintf(stderr, "verify-plan %s: output %zu diverged (seed %llu)\n",
                     args.algorithm.c_str(), i, static_cast<unsigned long long>(seed));
        return 1;
      }
    }
  }
  if (!args.save_plan.empty()) {
    core::SavePlanFile(*plan, args.save_plan);
  }
  std::printf("verify-plan %s: ok (digest %016llx, %zu passes, %zu probes bit-identical)\n",
              args.algorithm.c_str(), static_cast<unsigned long long>(plan->Digest()),
              plan->report().passes.size(), probes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  try {
    const Args args = Parse(argc, argv);
    if (args.list) {
      std::printf("algorithms:");
      for (const std::string& name : algorithms::AllAlgorithmNames()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\ndatasets: LJ PD PP FS (or a path to a .gsg snapshot)\n");
      return 0;
    }

    // Install the fault plan (if any) for the entire run: sampling, serving,
    // and pipelined paths all probe the same process-global injector.
    std::unique_ptr<fault::FaultScope> fault_scope;
    if (!args.fault_plan.empty()) {
      fault::FaultPlan plan = fault::FaultPlan::Parse(args.fault_plan, args.fault_seed);
      fault_scope = std::make_unique<fault::FaultScope>(std::move(plan));
      std::fprintf(stderr, "fault plan: %s\n",
                   fault_scope->injector().plan().ToString().c_str());
    }

    device::Device dev(args.profile == "t4" ? device::T4Sim() : device::V100Sim());
    device::DeviceGuard guard(dev);

    graph::Graph g;
    const bool builtin = args.dataset.size() == 2;
    if (builtin) {
      g = graph::MakeDataset(args.dataset, {.scale = args.scale, .weighted = true});
    } else {
      g = graph::LoadBinary(args.dataset);
    }
    if (!args.json) {
      std::printf("graph %s: %lld nodes, %lld edges%s\n", g.name().c_str(),
                  static_cast<long long>(g.num_nodes()),
                  static_cast<long long>(g.num_edges()), g.uva() ? " (UVA)" : "");
    }

    // Per-site probe/injection counts, printed on every exit path so fault
    // runs are auditable (same plan + seed must reproduce these numbers).
    auto report_faults = [&]() {
      if (fault_scope == nullptr) {
        return;
      }
      std::fprintf(stderr, "fault injector:");
      for (int s = 0; s < fault::kNumSites; ++s) {
        const fault::Site site = static_cast<fault::Site>(s);
        const fault::SiteCounters c = fault_scope->injector().counters(site);
        std::fprintf(stderr, " %s=%lld/%lld", fault::SiteName(site),
                     static_cast<long long>(c.injected), static_cast<long long>(c.probes));
      }
      std::fprintf(stderr, " (injected/probes)\n");
    };

    GS_CHECK(args.mutate_stream == 0 || args.serve)
        << "--mutate-stream requires --serve (mutations target a serving endpoint)";
    if (args.serve) {
      const int code = RunServe(args, g);
      report_faults();
      return code;
    }

    core::SamplerOptions options;
    options.enable_fusion = args.fusion;
    options.enable_preprocessing = args.preprocess;
    options.enable_layout_selection = args.layout;
    options.verify_passes = args.verify_passes;
    options.dump_ir_after_passes = args.dump_ir;

    if (args.verify_plan) {
      const int code = RunVerifyPlan(args, g, options);
      report_faults();
      return code;
    }

    algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(args.algorithm, g);
    options.super_batch = ap.updates_model ? 1 : args.super_batch;
    std::shared_ptr<core::CompiledPlan> plan;
    if (!args.load_plan.empty()) {
      // Ahead-of-time path: the artifact carries the optimized program and
      // its calibration, so this run skips passes AND calibration; only
      // tensor re-binding and pre-computation remain.
      plan = core::LoadPlanFile(args.load_plan);
      if (!args.json) {
        std::printf("loaded plan %s (label %s, digest %016llx): passes + calibration skipped\n",
                    args.load_plan.c_str(), plan->label().c_str(),
                    static_cast<unsigned long long>(plan->Digest()));
      }
    } else {
      plan = std::make_shared<core::CompiledPlan>(std::move(ap.program), options,
                                                  args.algorithm);
    }
    core::CompiledSampler sampler(plan, g, std::move(ap.tensors));
    if (args.algorithm == "HetGNN") {
      sampler.BindGraph("rel0", &g.adj());
      sampler.BindGraph("rel1", &g.adj());
    }
    if (args.jit) {
      // Warmup first: calibration is folded into the plan digest the JIT
      // keys its artifacts by, so attaching before it would compile kernels
      // under a digest the calibrated plan no longer carries.
      std::vector<int32_t> warm;
      for (int32_t v = 0; v < std::min<int64_t>(g.num_nodes(), 8); ++v) {
        warm.push_back(v);
      }
      sampler.Warmup(tensor::IdArray::FromVector(warm));
      sampler.session().SetJitTable(CliJitEngine().TableFor(sampler.plan()));
    }

    // Pipelined mode: a 2-stage prefetch pipeline per epoch — the sample
    // stage pulls batches from a BatchProducer, the consume stage walks the
    // outputs (the stand-in for feature extraction + training here). Depth 0
    // keeps the legacy synchronous SampleEpoch path.
    std::unique_ptr<pipeline::Executor> pipe;
    core::BatchProducer* producer = nullptr;
    std::vector<core::EpochBatch> slots;
    if (args.pipeline_depth > 0) {
      slots.resize(static_cast<size_t>(args.pipeline_depth) + 2);
      std::vector<pipeline::Stage> stages;
      stages.push_back({"sample", [&](int64_t i) {
                          GS_CHECK(producer->Next(&slots[static_cast<size_t>(i) % slots.size()]))
                              << "producer exhausted early";
                        }});
      stages.push_back({"consume", [&](int64_t i) {
                          core::EpochBatch& b = slots[static_cast<size_t>(i) % slots.size()];
                          for (core::Value& v : b.outputs) {
                            (void)v;  // a real consumer would train here
                          }
                          b = core::EpochBatch{};
                        }});
      pipe = std::make_unique<pipeline::Executor>(std::move(stages),
                                                  pipeline::Options{args.pipeline_depth});
    }

    int64_t total_batches = 0;
    for (int epoch = 0; epoch < args.epochs; ++epoch) {
      const device::StreamCounters before = dev.stream().counters();
      int64_t batches = 0;
      if (pipe != nullptr) {
        core::BatchProducer epoch_producer(sampler, g.train_ids(), args.batch);
        producer = &epoch_producer;
        pipe->Run(epoch_producer.num_batches());
        producer = nullptr;
        batches = epoch_producer.num_batches();
      } else {
        sampler.SampleEpoch(g.train_ids(), args.batch,
                            [&](int64_t, std::vector<core::Value>&) { ++batches; });
      }
      total_batches += batches;
      const device::StreamCounters counters = dev.stream().counters();
      if (!args.json) {
        std::printf("epoch %d: %.2f ms simulated, %lld mini-batches, %lld kernels, "
                    "SM %.1f%%, PCIe %.1f MB\n",
                    epoch + 1,
                    static_cast<double>(counters.virtual_ns - before.virtual_ns) / 1e6,
                    static_cast<long long>(batches),
                    static_cast<long long>(counters.kernels_launched - before.kernels_launched),
                    counters.SmUtilizationPercent(),
                    static_cast<double>(counters.pcie_bytes) / 1e6);
      }
    }
    const device::StreamCounters totals = dev.stream().counters();
    char jit_tail[192] = "";
    if (args.jit) {
      const jit::JitStats js = jit::GlobalJitStats();
      std::snprintf(jit_tail, sizeof(jit_tail),
                    ",\"jit_regions\":%lld,\"jit_compiled\":%lld,"
                    "\"jit_artifact_hits\":%lld,\"jit_hits\":%lld,\"jit_demotions\":%lld",
                    static_cast<long long>(js.regions), static_cast<long long>(js.compiled),
                    static_cast<long long>(js.artifact_hits), static_cast<long long>(js.hits),
                    static_cast<long long>(js.demotions));
    }
    if (args.json) {
      std::printf(
          "{\"mode\":\"epoch\",\"algorithm\":\"%s\",\"dataset\":\"%s\","
          "\"nodes\":%lld,\"edges\":%lld,\"epochs\":%d,\"batches\":%lld,"
          "\"simulated_ms\":%.2f,\"kernels\":%lld,\"sm_pct\":%.1f,"
          "\"pcie_mb\":%.1f,\"super_batch\":%d%s}\n",
          args.algorithm.c_str(), args.dataset.c_str(),
          static_cast<long long>(g.num_nodes()), static_cast<long long>(g.num_edges()),
          args.epochs, static_cast<long long>(total_batches),
          static_cast<double>(totals.virtual_ns) / 1e6,
          static_cast<long long>(totals.kernels_launched), totals.SmUtilizationPercent(),
          static_cast<double>(totals.pcie_bytes) / 1e6, sampler.effective_super_batch(),
          jit_tail);
    } else {
      if (pipe != nullptr) {
        std::printf("%s", pipe->metrics().ToString().c_str());
      }
      if (sampler.effective_super_batch() > 0) {
        std::printf("auto-tuned super-batch size: %d\n", sampler.effective_super_batch());
      }
      if (args.jit) {
        const jit::JitStats js = jit::GlobalJitStats();
        std::printf("jit: %lld regions, %lld compiled (%lld from artifacts), "
                    "%lld native hits, %lld demotions\n",
                    static_cast<long long>(js.regions), static_cast<long long>(js.compiled),
                    static_cast<long long>(js.artifact_hits), static_cast<long long>(js.hits),
                    static_cast<long long>(js.demotions));
      }
      if (args.print_ir) {
        std::printf("\n%s", sampler.DebugString().c_str());
      }
    }
    if (!args.save_plan.empty()) {
      core::SavePlanFile(*plan, args.save_plan);
      if (!args.json) {
        std::printf("saved plan to %s (digest %016llx)\n", args.save_plan.c_str(),
                    static_cast<unsigned long long>(plan->Digest()));
      }
    }
    report_faults();
  } catch (const gs::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
