#!/usr/bin/env bash
# Tier-1 verification plus the concurrency-sensitive suites under TSan.
#
# Usage: tools/check.sh [--fast | chaos | plans | oracle | shard | feature | ha | dynamic | jit]
#
#   (default)  configure + build + full ctest in ./build, then the plans
#              tier, then the oracle tier, then the shard tier, then the
#              feature tier, then the ha tier, then the dynamic tier, then
#              the jit tier, then a -DGS_SANITIZE=thread
#              build in ./build-tsan running the threaded suites (pipeline,
#              serving, device accounting, fault ladder) with pass-boundary
#              verification (GS_VERIFY_PASSES=1), then the chaos tier.
#   --fast     tier-1 only, restricted to `ctest -L fast` (skips the
#              soak/chaos tests, the plans tier, and the TSan pass).
#   plans      plan round-trip tier only: builds gsampler_cli and, for every
#              Table-2 algorithm, compiles + serializes + reloads the plan
#              and requires bit-identical samples from the restored artifact
#              (gsampler_cli --verify-plan), saving each one under
#              build/plans/.
#   oracle     differential-correctness tier only: builds test_oracle +
#              fuzz_passes, runs `ctest -L oracle` (optimized-vs-reference
#              checks for every algorithm plus the primitive distribution
#              tests), then a fixed-seed 200-draw pass fuzz that must come
#              back clean. Everything is seeded, so a failure here is a
#              deterministic reproducer, printed as a --repro line.
#   shard      multi-device sharding tier only (gs::shard): runs
#              `ctest -L shard` (partitioner goldens + the sharded-vs-single
#              bit-identity oracle + sharded serving), then the ShardGroup
#              concurrency suite under TSan, then a sharded pass fuzz
#              (fuzz_passes --shards 2) differencing 2-shard sampling
#              against single-device for every drawn config.
#   feature    feature-serving tier only (gs::feature): runs
#              `ctest -L feature` (hot-set cache semantics + the gather
#              bit-identity oracle across all algorithms, 2/4-way shards,
#              and coalesced serving), then the gather suite under TSan
#              (concurrent tenants sharing one cache), then a fixed-seed
#              feature-gather fuzz (fuzz_passes --features) differencing
#              cached gathers against the eager per-node lookup for every
#              drawn config and admission policy.
#   ha         high-availability tier only (gs::ha): runs `ctest -L ha`
#              (failover bit-identity oracle, degraded-mode coverage,
#              health state-machine goldens, recovery re-admission), then
#              the same suite under TSan (concurrent failover), then a
#              fixed-seed shard-kill fuzz (fuzz_passes --shards 2
#              --kill-shard) requiring bit-identical samples with one shard
#              permanently dead and 2 replicas.
#   dynamic    dynamic-graph tier only (gs::dyn + graph::GraphStore): runs
#              `ctest -L dynamic` (versioned-snapshot semantics, COW/seal
#              accounting, plan judgment + background replanning, the
#              all-algorithm snapshot-equivalence oracle over single-device,
#              4-shard, and 2-replica configs, and the live-server mutation
#              soak with zero failed requests), then the mutation soak under
#              TSan (ingest thread racing serving workers and the
#              replanner), then a fixed-seed mutation fuzz
#              (fuzz_passes --mutate) requiring every maintained epoch to
#              sample bit-identically to a from-scratch reload.
#   jit        JIT-compilation tier only (gs::jit): runs `ctest -L jit`
#              (region extraction, kernel-cache artifact reuse + corruption
#              recovery, compile-fault demotion, the JIT-vs-interpreter
#              bit-identity oracle over all algorithms including sharded and
#              mutated-epoch serving), then the same suite under TSan
#              (serving workers racing the per-plan compile), then a
#              fixed-seed JIT fuzz (fuzz_passes --jit) differencing native
#              kernels against the interpreter for every drawn config.
#   chaos      fault-injection tier only: builds with GS_SANITIZE=thread and
#              runs the gs::fault suites (test_fault + the chaos soak) under
#              TSan — the deterministic-injection racing workout.
#
# Exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
CHAOS=0
PLANS=0
ORACLE=0
SHARD=0
FEATURE=0
HA=0
DYNAMIC=0
JIT=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    chaos|--chaos) CHAOS=1 ;;
    plans|--plans) PLANS=1 ;;
    oracle|--oracle) ORACLE=1 ;;
    shard|--shard) SHARD=1 ;;
    feature|--feature) FEATURE=1 ;;
    ha|--ha) HA=1 ;;
    dynamic|--dynamic) DYNAMIC=1 ;;
    jit|--jit) JIT=1 ;;
    *) echo "unknown flag: $arg (usage: tools/check.sh [--fast | chaos | plans | oracle | shard | feature | ha | dynamic | jit])" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

run_chaos_tier() {
  echo "== chaos: configure + build (GS_SANITIZE=thread) =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_fault test_fault_soak

  echo "== chaos: fault suites under TSan =="
  ./build-tsan/tests/test_fault
  ./build-tsan/tests/test_fault_soak
}

# Plan round-trip tier: every algorithm must compile, serialize, reload, and
# re-sample bit-identically; the verified artifacts are left in build/plans/
# so a --load-plan run can pick them up.
run_plans_tier() {
  echo "== plans: build gsampler_cli =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target gsampler_cli

  echo "== plans: round-trip every algorithm =="
  mkdir -p build/plans
  local algorithms
  algorithms="$(./build/tools/gsampler_cli --list | sed -n 's/^algorithms: //p')"
  for alg in $algorithms; do
    ./build/tools/gsampler_cli --algorithm "$alg" --dataset PD --scale 0.1 \
      --verify-plan --save-plan "build/plans/$alg.plan"
  done
}

# Differential-correctness tier: the oracle ctest label (optimized plan vs
# eager reference for every algorithm, plus primitive distribution tests),
# then a fixed-seed pass fuzz. Both are fully seeded — layout calibration
# ranks candidates on the deterministic model clock — so any failure here
# reproduces exactly; the fuzzer prints a minimized `--repro` line.
run_oracle_tier() {
  echo "== oracle: build test_oracle + fuzz_passes =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target test_oracle fuzz_passes

  echo "== oracle: ctest -L oracle =="
  (cd build && ctest -L oracle --output-on-failure -j "$JOBS")

  echo "== oracle: fixed-seed pass fuzz (200 draws) =="
  ./build/tools/fuzz_passes --seeds 200
}

# Multi-device sharding tier: the shard ctest label, the ShardGroup
# concurrency suite under TSan (four threads on four shard devices), and a
# sharded pass fuzz differencing 2-shard against single-device sampling.
run_shard_tier() {
  echo "== shard: build test_partition + test_shard + fuzz_passes =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target test_partition test_shard fuzz_passes

  echo "== shard: ctest -L shard =="
  (cd build && ctest -L shard --output-on-failure -j "$JOBS")

  echo "== shard: ShardGroup suite under TSan =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_shard
  ./build-tsan/tests/test_shard

  echo "== shard: sharded pass fuzz (100 draws, 2 shards) =="
  ./build/tools/fuzz_passes --seeds 100 --shards 2
}

# Feature-serving tier: the feature ctest label (cache semantics plus the
# gather bit-identity oracle across algorithms, shards, and coalesced
# serving), the gather suite under TSan, and a feature-gather fuzz that
# checks cached-vs-eager bit-identity and cache-counter determinism for
# every drawn config.
run_feature_tier() {
  echo "== feature: build test_feature + fuzz_passes =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target test_feature fuzz_passes

  echo "== feature: ctest -L feature =="
  (cd build && ctest -L feature --output-on-failure -j "$JOBS")

  echo "== feature: gather suite under TSan =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_feature
  ./build-tsan/tests/test_feature

  echo "== feature: feature-gather fuzz (100 draws) =="
  ./build/tools/fuzz_passes --seeds 100 --features
}

# High-availability tier: the ha ctest label (failover bit-identity against
# single-device, degraded coverage fractions, health state-machine goldens,
# recovery re-admission), the same suite under TSan (failover and health
# signals from concurrent workers), and a shard-kill fuzz: every drawn
# config runs with one randomly drawn shard permanently dead and 2 replicas,
# and must still sample bit-identically to a single device.
run_ha_tier() {
  echo "== ha: build test_ha + fuzz_passes =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target test_ha fuzz_passes

  echo "== ha: ctest -L ha =="
  (cd build && ctest -L ha --output-on-failure -j "$JOBS")

  echo "== ha: failover suite under TSan =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_ha
  ./build-tsan/tests/test_ha

  echo "== ha: shard-kill fuzz (60 draws, 2 shards, 2 replicas) =="
  ./build/tools/fuzz_passes --seeds 60 --shards 2 --kill-shard
}

# Dynamic-graph tier: the dynamic ctest label (GraphStore semantics, plan
# judgment/replanning, the snapshot-equivalence oracle, the serving soak),
# the mutation soak under TSan (the ingest thread applying epochs while
# serving workers sample and the replanner publishes), and a fixed-seed
# mutation fuzz differencing every maintained epoch against a from-scratch
# FromEdges reload of the same effective edge set.
run_dynamic_tier() {
  echo "== dynamic: build test_dyn + fuzz_passes =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target test_dyn fuzz_passes

  echo "== dynamic: ctest -L dynamic =="
  (cd build && ctest -L dynamic --output-on-failure -j "$JOBS")

  echo "== dynamic: mutation soak under TSan =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_dyn
  ./build-tsan/tests/test_dyn

  echo "== dynamic: mutation fuzz (100 draws) =="
  ./build/tools/fuzz_passes --seeds 100 --mutate
}

# JIT tier: the jit ctest label (region extraction, kernel-cache artifact
# reuse and corruption recovery, compile-fault demotion, and the
# JIT-vs-interpreter bit-identity oracle over every algorithm including
# 4-shard serving and a mutated-epoch snapshot), the same suite under TSan
# (serving workers race TableFor's per-plan compile + memoization), and a
# fixed-seed JIT fuzz: every drawn config samples once through the
# interpreter and once through the compiled kernels, and the outputs must be
# bit-identical. In the fuzzer's minimizer the jit dimension is dropped
# first, so a repro that survives without --jit is a plain interpreter bug.
run_jit_tier() {
  echo "== jit: build test_jit + test_fused + fuzz_passes =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target test_jit test_fused fuzz_passes

  echo "== jit: ctest -L jit =="
  (cd build && ctest -L jit --output-on-failure -j "$JOBS")

  echo "== jit: suite under TSan =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_jit
  ./build-tsan/tests/test_jit

  echo "== jit: differential fuzz (60 draws, native vs interpreter) =="
  ./build/tools/fuzz_passes --seeds 60 --jit
}

if [[ "$JIT" == 1 ]]; then
  run_jit_tier
  echo "check.sh: jit tier green"
  exit 0
fi

if [[ "$DYNAMIC" == 1 ]]; then
  run_dynamic_tier
  echo "check.sh: dynamic tier green"
  exit 0
fi

if [[ "$HA" == 1 ]]; then
  run_ha_tier
  echo "check.sh: ha tier green"
  exit 0
fi

if [[ "$FEATURE" == 1 ]]; then
  run_feature_tier
  echo "check.sh: feature tier green"
  exit 0
fi

if [[ "$SHARD" == 1 ]]; then
  run_shard_tier
  echo "check.sh: shard tier green"
  exit 0
fi

if [[ "$ORACLE" == 1 ]]; then
  run_oracle_tier
  echo "check.sh: oracle tier green"
  exit 0
fi

if [[ "$CHAOS" == 1 ]]; then
  run_chaos_tier
  echo "check.sh: chaos tier green"
  exit 0
fi

if [[ "$PLANS" == 1 ]]; then
  run_plans_tier
  echo "check.sh: plans tier green"
  exit 0
fi

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

if [[ "$FAST" == 1 ]]; then
  echo "== tier-1: ctest -L fast =="
  (cd build && ctest -L fast --output-on-failure -j "$JOBS")
  exit 0
fi

echo "== tier-1: full ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

run_plans_tier

run_oracle_tier

run_shard_tier

run_feature_tier

run_ha_tier

run_dynamic_tier

run_jit_tier

echo "== TSan: configure + build (GS_SANITIZE=thread) =="
cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_pipeline test_serving test_serving_soak test_device

echo "== TSan: threaded suites (pass-boundary verification on) =="
export GS_VERIFY_PASSES=1
./build-tsan/tests/test_pipeline
./build-tsan/tests/test_serving
./build-tsan/tests/test_serving_soak
./build-tsan/tests/test_device --gtest_filter='Allocator.*'
unset GS_VERIFY_PASSES

run_chaos_tier

echo "check.sh: all green"
