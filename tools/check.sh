#!/usr/bin/env bash
# Tier-1 verification plus the concurrency-sensitive suites under TSan.
#
# Usage: tools/check.sh [--fast | chaos]
#
#   (default)  configure + build + full ctest in ./build, then a
#              -DGS_SANITIZE=thread build in ./build-tsan running the
#              threaded suites (pipeline, serving, device accounting, fault
#              ladder), then the chaos tier.
#   --fast     tier-1 only, restricted to `ctest -L fast` (skips the
#              soak/chaos tests and the TSan pass).
#   chaos      fault-injection tier only: builds with GS_SANITIZE=thread and
#              runs the gs::fault suites (test_fault + the chaos soak) under
#              TSan — the deterministic-injection racing workout.
#
# Exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    chaos|--chaos) CHAOS=1 ;;
    *) echo "unknown flag: $arg (usage: tools/check.sh [--fast | chaos])" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

run_chaos_tier() {
  echo "== chaos: configure + build (GS_SANITIZE=thread) =="
  cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target test_fault test_fault_soak

  echo "== chaos: fault suites under TSan =="
  ./build-tsan/tests/test_fault
  ./build-tsan/tests/test_fault_soak
}

if [[ "$CHAOS" == 1 ]]; then
  run_chaos_tier
  echo "check.sh: chaos tier green"
  exit 0
fi

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

if [[ "$FAST" == 1 ]]; then
  echo "== tier-1: ctest -L fast =="
  (cd build && ctest -L fast --output-on-failure -j "$JOBS")
  exit 0
fi

echo "== tier-1: full ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== TSan: configure + build (GS_SANITIZE=thread) =="
cmake -B build-tsan -S . -DGS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_pipeline test_serving test_serving_soak test_device

echo "== TSan: threaded suites =="
./build-tsan/tests/test_pipeline
./build-tsan/tests/test_serving
./build-tsan/tests/test_serving_soak
./build-tsan/tests/test_device --gtest_filter='Allocator.*'

run_chaos_tier

echo "check.sh: all green"
