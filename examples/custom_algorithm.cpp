// Writing a new sampling algorithm with the matrix-centric API.
//
// This example makes the paper's Figure 2 point concrete: computing the
// LADIES sampling bias is two lines against the matrix abstraction, versus
// the message-passing dance existing systems require. It then goes further
// and implements a *novel* algorithm — "degree-tempered layer-wise
// sampling" — to show that new designs compose from the same Table-4
// operators and inherit every engine optimization for free.
//
//   build/examples/custom_algorithm

#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "core/trace.h"
#include "graph/datasets.h"

int main() {
  using namespace gs;
  graph::Graph g = graph::MakePD({.scale = 0.25, .weighted = true});

  // --- Figure 2, right-hand side: LADIES bias in two lines -------------
  {
    core::Builder b;
    core::MVal a = b.Graph();
    core::IVal f = b.Frontier();
    core::MVal sub = a.Cols(f);
    core::TVal h = sub.Pow(2.0f).Sum(0);  // h = (A ** 2).sum(axis=...)
    core::TVal bias = h / h.Sum(0);       // return h / h.sum()
    b.Output(bias);
    core::CompiledSampler sampler(std::move(b).Build(), g, {}, {});
    std::vector<int32_t> seeds = {0, 1, 2, 3};
    std::vector<core::Value> out = sampler.Sample(tensor::IdArray::FromVector(seeds));
    double total = 0;
    for (int64_t i = 0; i < out[0].tensor.numel(); ++i) {
      total += out[0].tensor.at(i);
    }
    std::printf("LADIES bias in 2 LoC: %lld candidate probabilities, sum = %.3f\n",
                static_cast<long long>(out[0].tensor.numel()), total);
  }

  // --- A novel algorithm: degree-tempered layer-wise sampling ----------
  // Candidate bias = (sum of incident frontier edge weights) / sqrt(degree):
  // high-degree hubs are down-weighted so the layer covers the periphery.
  // Both factors are plain Table-4 operators; the degree term is
  // batch-invariant, so the pre-processing pass computes it once.
  {
    core::Builder b;
    core::MVal a = b.Graph();
    core::IVal f = b.Frontier();
    core::TVal inv_sqrt_deg = (a.Sum(0) + 1.0f).Pow(-0.5f);  // pre-computed

    core::IVal cur = f;
    for (int layer = 0; layer < 2; ++layer) {
      core::MVal sub = a.Cols(cur);
      core::TVal bias = sub.Sum(0) * inv_sqrt_deg;  // tempered importance
      core::MVal sample = sub.CollectiveSample(256, bias);
      core::MVal normalized = sample.Div(sample.Sum(1), 1);
      b.Output(normalized);
      cur = sample.Row();
    }
    b.Output(cur);

    core::SamplerOptions options;
    options.super_batch = 0;
    core::CompiledSampler sampler(std::move(b).Build(), g, {}, options);
    std::printf("\ncompiled degree-tempered sampler:\n%s\n",
                sampler.DebugString().c_str());

    std::vector<int32_t> seeds;
    for (int i = 0; i < 256; ++i) {
      seeds.push_back(i);
    }
    std::vector<core::Value> out = sampler.Sample(tensor::IdArray::FromVector(seeds));
    std::printf("layer 1 sample: %s\n", out[0].matrix.DebugString().c_str());
    std::printf("layer 2 sample: %s\n", out[1].matrix.DebugString().c_str());

    // The novel sampler gets every optimization automatically — including
    // super-batched epochs.
    device::Stream& stream = device::Current().stream();
    const double t0 = static_cast<double>(stream.counters().virtual_ns) / 1e6;
    sampler.SampleEpoch(g.train_ids(), 256, nullptr);
    std::printf("epoch: %.2f ms simulated (super-batch %d)\n",
                static_cast<double>(stream.counters().virtual_ns) / 1e6 - t0,
                sampler.effective_super_batch());
  }
  return 0;
}
