// Heterogeneous sampling (Section 4.5 of the paper): each edge type is its
// own sparse matrix running the same workflow. This example builds a
// bipartite user-item interaction graph, binds the two relations
// ("clicked" and its reverse) as named graph inputs, and runs a
// HetGNN-style metapath walk (user -> item -> user -> ...) with top-k
// frequent-neighbor selection, plus PinSAGE on the item projection.
//
//   build/examples/heterogeneous

#include <cstdio>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "graph/generator.h"

namespace {

// Bipartite interactions: users [0, U) click items [0, I). Relation
// matrices live over separate id spaces, so we build two graphs: `clicks`
// (column = user, rows = items the user clicked — "what can a walker at a
// user reach") and `clicked_by` (column = item, rows = users).
struct Bipartite {
  gs::graph::Graph user_to_item;  // columns: users, rows: items
  gs::graph::Graph item_to_user;  // columns: items, rows: users
};

Bipartite MakeInteractions(int64_t users, int64_t items, int64_t clicks, uint64_t seed) {
  gs::Rng rng(seed);
  std::vector<std::pair<int32_t, int32_t>> forward;  // (item, user)
  std::vector<std::pair<int32_t, int32_t>> backward;
  const int64_t n = std::max(users, items);
  for (int64_t c = 0; c < clicks; ++c) {
    // Skewed popularity: item ids cluster toward 0.
    const int32_t user = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(users)));
    const int32_t item = static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(items)) *
        rng.UniformInt(static_cast<uint64_t>(items)) / static_cast<uint64_t>(items));
    forward.emplace_back(item, user);
    backward.emplace_back(user, item);
  }
  Bipartite b;
  // Both matrices are sized over the joint id space so walkers can move
  // between the relations without id translation.
  b.user_to_item = gs::graph::Graph::FromEdges("clicks", n, forward);
  b.item_to_user = gs::graph::Graph::FromEdges("clicked-by", n, backward);
  return b;
}

}  // namespace

int main() {
  using namespace gs;
  Bipartite bipartite = MakeInteractions(/*users=*/3000, /*items=*/1000,
                                         /*clicks=*/40000, /*seed=*/21);
  std::printf("user->item: %lld interactions; item->user: %lld\n",
              static_cast<long long>(bipartite.user_to_item.num_edges()),
              static_cast<long long>(bipartite.item_to_user.num_edges()));

  // HetGNN over the metapath user -> item -> user -> ... : the program is
  // written once against two named relations; bindings supply the matrices.
  algorithms::AlgorithmProgram ap = algorithms::HetGnn(
      bipartite.user_to_item,
      {.num_walks = 8, .walk_length = 4, .restart_prob = 0.4f, .k = 8});
  core::SamplerOptions options;
  core::CompiledSampler sampler(std::move(ap.program), bipartite.user_to_item,
                                std::move(ap.tensors), options);
  sampler.BindGraph("rel0", &bipartite.user_to_item.adj());
  sampler.BindGraph("rel1", &bipartite.item_to_user.adj());

  std::vector<int32_t> seed_users;
  for (int i = 0; i < 64; ++i) {
    seed_users.push_back(i);
  }
  std::vector<core::Value> out = sampler.Sample(tensor::IdArray::FromVector(seed_users));
  const sparse::Matrix& neighbors = out[0].matrix;
  std::printf("HetGNN neighbors: %s\n", neighbors.DebugString().c_str());

  // Inspect one user's most-visited heterogeneous neighborhood.
  const sparse::Compressed& csc = neighbors.Csc();
  std::printf("user 0 top neighbors (node: visits):");
  for (int64_t e = csc.indptr[0]; e < csc.indptr[1]; ++e) {
    std::printf(" %d:%.0f", csc.indices[e], csc.values[e]);
  }
  std::printf("\n");

  // The same machinery drives PinSAGE over a single relation.
  algorithms::AlgorithmProgram pinsage = algorithms::PinSage(
      bipartite.item_to_user, {.num_walks = 10, .walk_length = 2, .k = 10});
  core::CompiledSampler item_sampler(std::move(pinsage.program), bipartite.item_to_user,
                                     std::move(pinsage.tensors), options);
  std::vector<int32_t> seed_items = {0, 1, 2, 3};
  std::vector<core::Value> items = item_sampler.Sample(tensor::IdArray::FromVector(seed_items));
  std::printf("PinSAGE item neighborhoods: %s\n", items[0].matrix.DebugString().c_str());
  return 0;
}
