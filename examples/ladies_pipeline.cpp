// Layer-wise sampling walkthrough: LADIES (Figure 3b of the paper) with a
// look inside the optimization pipeline — the program before and after the
// passes, which nodes were pre-computed, and the per-configuration epoch
// times.
//
//   build/examples/ladies_pipeline

#include <algorithm>
#include <cstdio>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "graph/datasets.h"

namespace {

double EpochMs(const gs::graph::Graph& g, const gs::core::SamplerOptions& options) {
  using namespace gs;
  algorithms::AlgorithmProgram ap =
      algorithms::Ladies(g, {.num_layers = 2, .layer_width = 512});
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), options);
  // Warmup triggers layout calibration and super-batch auto-tuning outside
  // the measured region.
  tensor::IdArray prefix = tensor::IdArray::Empty(std::min<int64_t>(g.train_ids().size(),
                                                                    256 * 8));
  std::copy_n(g.train_ids().data(), prefix.size(), prefix.data());
  sampler.SampleEpoch(prefix, 256, nullptr);
  device::Stream& stream = device::Current().stream();
  const double t0 = static_cast<double>(stream.counters().virtual_ns) / 1e6;
  sampler.SampleEpoch(g.train_ids(), 256, nullptr);
  return static_cast<double>(stream.counters().virtual_ns) / 1e6 - t0;
}

}  // namespace

int main() {
  using namespace gs;
  graph::Graph g = graph::MakePD({.scale = 0.25, .weighted = true});

  // The traced program, before optimization.
  algorithms::AlgorithmProgram traced =
      algorithms::Ladies(g, {.num_layers = 2, .layer_width = 512});
  std::printf("=== traced LADIES program ===\n%s\n", traced.program.ToString().c_str());

  // After the pass pipeline: note the hoisted, pre-computed A**2
  // ([invariant] eltwise_scalar on the graph input) and the fused
  // edge-map(-reduce) nodes replacing the normalization chain.
  core::SamplerOptions options;
  algorithms::AlgorithmProgram compiled_copy =
      algorithms::Ladies(g, {.num_layers = 2, .layer_width = 512});
  core::CompiledSampler sampler(std::move(compiled_copy.program), g,
                                std::move(compiled_copy.tensors), options);
  std::printf("=== optimized LADIES program ===\n%s\n", sampler.DebugString().c_str());
  std::printf("pass report: %s\n\n", sampler.report().ToString().c_str());

  // Configuration sweep (the Figure 10 story in miniature).
  struct Config {
    const char* label;
    core::SamplerOptions options;
  };
  core::SamplerOptions plain;  // greedy formats, no other optimizations
  plain.enable_fusion = false;
  plain.enable_preprocessing = false;
  plain.enable_layout_selection = false;
  core::SamplerOptions compute = plain;
  compute.enable_fusion = true;
  compute.enable_preprocessing = true;
  core::SamplerOptions layout = compute;
  layout.enable_layout_selection = true;
  core::SamplerOptions full = layout;
  full.super_batch = 0;

  const Config configs[] = {
      {"plain (no optimizations)", plain},
      {"+ fusion & pre-processing", compute},
      {"+ data layout selection", layout},
      {"+ super-batch (full gSampler)", full},
  };
  std::printf("=== LADIES epoch time by configuration ===\n");
  for (const Config& c : configs) {
    std::printf("%-32s %8.2f ms\n", c.label, EpochMs(g, c.options));
  }
  return 0;
}
