// Quickstart: express GraphSAGE with the matrix-centric API (Figure 3a of
// the paper), compile it with all optimizations, and sample an epoch.
//
//   build/examples/quickstart

#include <cstdio>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "core/trace.h"
#include "graph/datasets.h"

int main() {
  using namespace gs;

  // 1. Load a graph (a scaled Ogbn-Products analogue; see graph/datasets.h).
  graph::Graph g = graph::MakePD({.scale = 0.25, .weighted = true});
  std::printf("graph %s: %lld nodes, %lld edges\n", g.name().c_str(),
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_edges()));

  // 2. Write the sampling program once against symbolic values — this is
  //    Figure 3(a) of the paper, one line per ECSF step.
  core::Builder b;
  core::MVal a = b.Graph();
  core::IVal frontier = b.Frontier();
  core::IVal cur = frontier;
  for (int64_t fanout : {int64_t{25}, int64_t{10}}) {
    core::MVal sub_a = a.Cols(cur);                      // Extract
    core::MVal sample = sub_a.IndividualSample(fanout);  // Select (uniform)
    b.Output(sample);                                    // Finalize
    cur = sample.Row();
  }
  b.Output(cur);

  // 3. Compile: the engine fuses extract+select, pre-computes invariants,
  //    calibrates data layouts, and auto-tunes the super-batch size.
  core::SamplerOptions options;
  options.super_batch = 0;  // auto
  core::CompiledSampler sampler(std::move(b).Build(), g, {}, options);

  // 4. Sample one mini-batch and inspect the result.
  std::vector<int32_t> seeds;
  for (int i = 0; i < 512; ++i) {
    seeds.push_back(i);
  }
  std::vector<core::Value> out = sampler.Sample(tensor::IdArray::FromVector(seeds));
  std::printf("layer 1: %s\n", out[0].matrix.DebugString().c_str());
  std::printf("layer 2: %s\n", out[1].matrix.DebugString().c_str());
  std::printf("final frontier: %lld nodes\n", static_cast<long long>(out[2].ids.size()));

  // 5. Sample a full epoch and report the simulated device time.
  device::Stream& stream = device::Current().stream();
  const double t0 = static_cast<double>(stream.counters().virtual_ns) / 1e6;
  int64_t batches = 0;
  sampler.SampleEpoch(g.train_ids(), 512,
                      [&](int64_t, std::vector<core::Value>&) { ++batches; });
  const double t1 = static_cast<double>(stream.counters().virtual_ns) / 1e6;
  std::printf("epoch: %lld mini-batches in %.2f ms simulated device time "
              "(super-batch size %d)\n",
              static_cast<long long>(batches), t1 - t0, sampler.effective_super_batch());

  std::printf("\ncompiled program:\n%s", sampler.DebugString().c_str());
  return 0;
}
