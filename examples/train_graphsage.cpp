// End-to-end training example: GraphSAGE on a labelled community graph,
// sampling with the gSampler engine and training a 2-layer mean-aggregator
// model with the built-in trainer. Runs the loop twice — synchronously and
// through the 3-stage prefetch pipeline (sample -> feature -> train) — and
// prints the per-epoch accuracy, the sampling share of the training time,
// and the pipeline's per-stage metrics (the Table 1 / Table 8 pipeline in
// miniature, plus the overlap the paper's Section 2 motivates).
//
//   build/examples/train_graphsage

#include <cstdio>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "gnn/minibatch.h"
#include "gnn/trainer.h"
#include "graph/generator.h"

int main() {
  using namespace gs;

  graph::PlantedPartitionParams params;
  params.name = "communities";
  params.num_nodes = 4000;
  params.num_communities = 8;
  params.intra_degree = 16.0;
  params.inter_degree = 3.0;
  params.feature_dim = 32;
  params.weighted = true;
  params.seed = 7;
  graph::Graph g = graph::MakePlantedPartitionGraph(params);
  std::printf("training graph: %lld nodes, %lld edges, %d classes\n",
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_edges()), g.num_classes());

  // Trains once at the given prefetch depth with a fresh sampler, so both
  // runs see identical sampler state (and therefore identical batches).
  auto run = [&](int pipeline_depth) {
    // Seed-inclusive GraphSAGE sampling (the trainer needs layer-l
    // representations for the layer-(l-1) targets too).
    algorithms::AlgorithmProgram ap =
        algorithms::GraphSage(g, {.fanouts = {10, 10}, .include_seeds = true});
    core::SamplerOptions options;
    core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), options);

    gnn::TrainerConfig config;
    config.model = gnn::ModelKind::kSage;
    config.epochs = 8;
    config.batch_size = 256;
    config.hidden = 64;
    config.learning_rate = 0.4f;
    config.pipeline_depth = pipeline_depth;

    return gnn::Train(
        g,
        [&sampler](const tensor::IdArray& seeds, Rng&) {
          return gnn::FromSamplerOutputs(sampler.Sample(seeds), seeds);
        },
        config);
  };

  gnn::TrainOutcome sync = run(/*pipeline_depth=*/0);
  for (size_t epoch = 0; epoch < sync.epoch_accuracy.size(); ++epoch) {
    std::printf("epoch %2zu: validation accuracy %.2f%%\n", epoch + 1,
                100.0 * sync.epoch_accuracy[epoch]);
  }
  std::printf("\nsynchronous: total simulated time %.2f s (sampling %.1f%%, model %.1f%%)\n",
              sync.total_ms / 1e3, 100.0 * sync.SamplingRatio(),
              100.0 * (1.0 - sync.SamplingRatio()));
  std::printf("final accuracy: %.2f%%\n", 100.0 * sync.final_accuracy);

  gnn::TrainOutcome piped = run(/*pipeline_depth=*/2);
  std::printf("\npipelined (depth 2): total simulated time %.2f s — same losses, "
              "same accuracy (%.2f%%), %.2fx faster epochs\n",
              piped.total_ms / 1e3, 100.0 * piped.final_accuracy,
              piped.total_ms > 0 ? sync.total_ms / piped.total_ms : 0.0);
  std::printf("%s", piped.pipeline.ToString().c_str());
  return 0;
}
