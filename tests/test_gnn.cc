// Tests for the GNN training substrate: models learn a planted community
// structure, losses decrease, and the trainer's virtual-time split behaves.

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "gnn/minibatch.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "graph/generator.h"
#include "tests/testing.h"

namespace gs::gnn {
namespace {

graph::Graph TrainingGraph() {
  graph::PlantedPartitionParams p;
  p.num_nodes = 800;
  p.num_communities = 4;
  p.intra_degree = 14.0;
  p.inter_degree = 2.0;
  p.feature_dim = 16;
  p.feature_noise = 1.0f;
  p.weighted = true;
  p.seed = 71;
  return graph::MakePlantedPartitionGraph(p);
}

SampleFn SageSampler(core::CompiledSampler& sampler) {
  return [&sampler](const tensor::IdArray& seeds, Rng&) {
    return FromSamplerOutputs(sampler.Sample(seeds), seeds);
  };
}

TEST(SageTraining, LearnsPlantedCommunities) {
  graph::Graph g = TrainingGraph();
  algorithms::AlgorithmProgram ap =
      algorithms::GraphSage(g, {.fanouts = {10, 5}, .include_seeds = true});
  core::SamplerOptions opts;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  TrainerConfig config;
  config.model = ModelKind::kSage;
  config.epochs = 6;
  config.batch_size = 128;
  config.learning_rate = 0.4f;
  config.hidden = 32;
  TrainOutcome outcome = Train(g, SageSampler(sampler), config);
  EXPECT_GT(outcome.final_accuracy, 0.8f)
      << "SAGE failed to learn the planted partition";
  EXPECT_GT(outcome.sample_ms, 0.0);
  EXPECT_GT(outcome.model_ms, 0.0);
  EXPECT_GT(outcome.SamplingRatio(), 0.0);
  EXPECT_LT(outcome.SamplingRatio(), 1.0);
}

TEST(GcnTraining, LearnsFromLadiesSamples) {
  graph::Graph g = TrainingGraph();
  algorithms::AlgorithmProgram ap =
      algorithms::Ladies(g, {.num_layers = 2, .layer_width = 256});
  core::SamplerOptions opts;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  TrainerConfig config;
  config.model = ModelKind::kGcn;
  config.epochs = 8;
  config.batch_size = 128;
  config.learning_rate = 0.4f;
  config.hidden = 32;
  TrainOutcome outcome = Train(g, SageSampler(sampler), config);
  EXPECT_GT(outcome.final_accuracy, 0.6f) << "GCN failed to learn from LADIES batches";
}

TEST(SageModel, LossDecreasesOnFixedBatch) {
  graph::Graph g = TrainingGraph();
  algorithms::AlgorithmProgram ap =
      algorithms::GraphSage(g, {.fanouts = {8, 4}, .include_seeds = true});
  core::SamplerOptions opts;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  std::vector<int32_t> seed_vec;
  for (int i = 0; i < 64; ++i) {
    seed_vec.push_back(i);
  }
  const tensor::IdArray seeds = tensor::IdArray::FromVector(seed_vec);
  MiniBatch batch = FromSamplerOutputs(sampler.Sample(seeds), seeds);

  SageModel model(g.features().cols(), 32, g.num_classes(), 5);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    StepStats s = model.TrainStep(batch, g.features(), g.labels(), 0.3f);
    if (step == 0) {
      first_loss = s.loss;
    }
    last_loss = s.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.7f);
}

TEST(GcnModel, LossDecreasesOnFixedBatch) {
  graph::Graph g = TrainingGraph();
  algorithms::AlgorithmProgram ap =
      algorithms::Ladies(g, {.num_layers = 2, .layer_width = 128});
  core::SamplerOptions opts;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  std::vector<int32_t> seed_vec;
  for (int i = 0; i < 64; ++i) {
    seed_vec.push_back(i);
  }
  const tensor::IdArray seeds = tensor::IdArray::FromVector(seed_vec);
  MiniBatch batch = FromSamplerOutputs(sampler.Sample(seeds), seeds);

  GcnModel model(g.features().cols(), 32, g.num_classes(), 5);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 40; ++step) {
    StepStats s = model.TrainStep(batch, g.features(), g.labels(), 0.3f);
    if (step == 0) {
      first_loss = s.loss;
    }
    last_loss = s.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.7f);
}

TEST(Trainer, SuperBatchedSamplerTrainsToo) {
  // The trainer consumes one batch at a time, but a sampler wrapping
  // SampleEpoch-produced batches must behave identically; spot-check that a
  // seed-inclusive SAGE program under super-batch splitting feeds valid
  // mini-batches.
  graph::Graph g = TrainingGraph();
  algorithms::AlgorithmProgram ap =
      algorithms::GraphSage(g, {.fanouts = {6, 3}, .include_seeds = true});
  core::SamplerOptions opts;
  opts.super_batch = 4;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  SageModel model(g.features().cols(), 16, g.num_classes(), 3);
  int64_t trained = 0;
  sampler.SampleEpoch(g.train_ids(), 128, [&](int64_t index, std::vector<core::Value>& out) {
    tensor::IdArray seeds = tensor::IdArray::Empty(
        std::min<int64_t>(128, g.train_ids().size() - index * 128));
    std::copy_n(g.train_ids().data() + index * 128, seeds.size(), seeds.data());
    MiniBatch batch = FromSamplerOutputs(out, seeds);
    StepStats s = model.TrainStep(batch, g.features(), g.labels(), 0.2f);
    EXPECT_GT(s.count, 0);
    ++trained;
  });
  EXPECT_GT(trained, 2);
}

TEST(MiniBatch, FromSamplerOutputsCollectsMatrices) {
  graph::Graph g = TrainingGraph();
  algorithms::AlgorithmProgram ap =
      algorithms::GraphSage(g, {.fanouts = {4, 4}, .include_seeds = true});
  core::SamplerOptions opts;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  const tensor::IdArray seeds = tensor::IdArray::FromVector({0, 1, 2});
  MiniBatch batch = FromSamplerOutputs(sampler.Sample(seeds), seeds);
  EXPECT_EQ(batch.layers.size(), 2u);
  EXPECT_EQ(batch.layers[0].num_cols(), 3);
  EXPECT_EQ(batch.seeds.size(), 3);
}

TEST(Trainer, RequiresLabels) {
  graph::Graph g = gs::testing::SmallRmat();  // no labels
  TrainerConfig config;
  EXPECT_THROW(Train(
                   g, [](const tensor::IdArray&, Rng&) { return MiniBatch{}; }, config),
               Error);
}

}  // namespace
}  // namespace gs::gnn
