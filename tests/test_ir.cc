// Tests for the data-flow IR: tracing, verification, printing, DCE,
// normalization.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/ir.h"
#include "core/trace.h"

namespace gs::core {
namespace {

Program TraceSageOneLayer(int64_t k = 4) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sample = a.Cols(f).IndividualSample(k);
  b.Output(sample);
  b.Output(sample.Row());
  return std::move(b).Build();
}

TEST(Trace, RecordsExpectedOps) {
  Program p = TraceSageOneLayer();
  ASSERT_EQ(p.size(), 5);
  EXPECT_EQ(p.node(0).kind, OpKind::kGraphInput);
  EXPECT_EQ(p.node(1).kind, OpKind::kFrontierInput);
  EXPECT_EQ(p.node(2).kind, OpKind::kSliceCols);
  EXPECT_EQ(p.node(3).kind, OpKind::kIndividualSample);
  EXPECT_EQ(p.node(3).attrs.k, 4);
  EXPECT_EQ(p.node(4).kind, OpKind::kRowIds);
  ASSERT_EQ(p.outputs().size(), 2u);
}

TEST(Trace, GraphDeclaredOnce) {
  Builder b;
  b.Graph();
  EXPECT_THROW(b.Graph(), Error);
}

TEST(Trace, NamedInputsCarryNames) {
  Builder b;
  MVal rel = b.GraphNamed("rel0");
  TVal t = b.Input("weights");
  b.Output(rel.Sum(0));
  b.Output(t);
  Program p = std::move(b).Build();
  EXPECT_EQ(p.node(rel.id()).attrs.name, "rel0");
  EXPECT_EQ(p.node(t.id()).attrs.name, "weights");
  EXPECT_THROW(Builder().Input(""), Error);
}

TEST(Verify, RejectsWrongInputKind) {
  Program p;
  const int g = p.Add(OpKind::kGraphInput, {});
  const int f = p.Add(OpKind::kFrontierInput, {});
  (void)g;
  // sum_axis expects a matrix, not ids.
  const int bad = p.Add(OpKind::kSumAxis, {f});
  p.SetOutputs({bad});
  EXPECT_THROW(p.Verify(), Error);
}

TEST(Verify, RejectsWrongArity) {
  Program p;
  const int g = p.Add(OpKind::kGraphInput, {});
  const int bad = p.Add(OpKind::kSliceCols, {g});  // missing the ids input
  p.SetOutputs({bad});
  EXPECT_THROW(p.Verify(), Error);
}

TEST(Program, AddRejectsForwardReferences) {
  Program p;
  EXPECT_THROW(p.Add(OpKind::kSumAxis, {3}), Error);
}

TEST(Program, UseCountsIncludeOutputs) {
  Program p = TraceSageOneLayer();
  std::vector<int> uses = p.UseCounts();
  EXPECT_EQ(uses[2], 1);  // slice feeds the sample
  EXPECT_EQ(uses[3], 2);  // sample feeds row_ids and is an output
}

TEST(Program, RemoveDeadKeepsInputsAndOutputs) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal used = a.Cols(f);
  MVal dead = used.Pow(2.0f);
  (void)dead;
  b.Output(used);
  Program p = std::move(b).Build();
  const int removed = p.RemoveDead();
  EXPECT_EQ(removed, 1);
  p.Verify();
  for (const Node& n : p.nodes()) {
    EXPECT_NE(n.kind, OpKind::kEltwiseScalar);
  }
}

TEST(Program, NormalizeRestoresTopologicalOrder) {
  // Simulate a rewrite: append a node and rewire an earlier consumer to it.
  Program p = TraceSageOneLayer();
  const int new_slice = p.Add(OpKind::kSliceCols, {0, 1});
  p.node(3).inputs[0] = new_slice;  // sample now consumes the late node
  p.Normalize();
  p.Verify();
  for (const Node& n : p.nodes()) {
    for (int in : n.inputs) {
      EXPECT_LT(in, n.id);
    }
  }
}

TEST(Program, ToStringListsOpsAndOutputs) {
  Program p = TraceSageOneLayer(7);
  const std::string s = p.ToString();
  EXPECT_NE(s.find("slice_cols"), std::string::npos);
  EXPECT_NE(s.find("individual_sample"), std::string::npos);
  EXPECT_NE(s.find("k=7"), std::string::npos);
  EXPECT_NE(s.find("outputs:"), std::string::npos);
}

TEST(OpKindMeta, NamesAndKindsConsistent) {
  // Every op has a printable name and a stable output kind.
  for (int k = 0; k <= static_cast<int>(OpKind::kConvertFormat); ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    EXPECT_STRNE(OpKindName(kind), "?");
  }
  EXPECT_EQ(OutputKindOf(OpKind::kRowIds), ValueKind::kIds);
  EXPECT_EQ(OutputKindOf(OpKind::kSumAxis), ValueKind::kTensor);
  EXPECT_EQ(OutputKindOf(OpKind::kTopKVisited), ValueKind::kMatrix);
  EXPECT_TRUE(IsStructureOp(OpKind::kSliceCols));
  EXPECT_FALSE(IsStructureOp(OpKind::kSumAxis));
}

TEST(Trace, CrossBuilderValuesRejected) {
  Builder b1;
  Builder b2;
  MVal a1 = b1.Graph();
  IVal f2 = b2.Frontier();
  EXPECT_THROW(a1.Cols(f2), Error);
}

TEST(Trace, TensorOperatorSugar) {
  Builder b;
  MVal a = b.Graph();
  TVal x = b.Input("x");
  TVal y = ((x + 1.0f) * x - x) / 2.0f;
  TVal z = x.Pow(2.0f).Relu().Softmax();
  b.Output(y);
  b.Output(z);
  b.Output(a.Sum(0));
  Program p = std::move(b).Build();
  p.Verify();
  int tensor_ops = 0;
  for (const Node& n : p.nodes()) {
    if (n.kind == OpKind::kTensorBinary || n.kind == OpKind::kTensorBinaryScalar) {
      ++tensor_ops;
    }
  }
  EXPECT_EQ(tensor_ops, 5);
}

}  // namespace
}  // namespace gs::core
