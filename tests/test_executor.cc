// Tests for the IR executor: layout modes, memory lifetime, precomputed
// values, format-conversion nodes, and super-batch id decoding.

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/passes.h"
#include "core/trace.h"
#include "device/device.h"
#include "tests/testing.h"

namespace gs::core {
namespace {

using tensor::IdArray;

Program SageProgram(int64_t k) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sample = a.Cols(f).IndividualSample(k);
  b.Output(sample);
  b.Output(sample.Row());
  return std::move(b).Build();
}

TEST(Executor, LayoutModesProduceIdenticalSamples) {
  graph::Graph g = gs::testing::SmallRmat();
  Program p = SageProgram(3);
  Bindings bind;
  bind.graph = &g.adj();
  bind.frontier = IdArray::FromVector({1, 2, 3, 4});

  std::vector<std::map<std::pair<int32_t, int32_t>, float>> results;
  for (LayoutMode mode : {LayoutMode::kAsIs, LayoutMode::kGreedy, LayoutMode::kPlanned}) {
    Executor exec(p, ExecOptions{.layout = mode});
    Rng rng(42);
    std::vector<Value> out = exec.Run(bind, rng);
    results.push_back(gs::testing::EdgeSet(out[0].matrix));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Executor, PlannedAnnotationsChangeOutputFormat) {
  graph::Graph g = gs::testing::SmallRmat();
  Program p = SageProgram(3);
  for (Node& n : p.nodes()) {
    if (n.kind == OpKind::kIndividualSample) {
      n.has_format_choice = true;
      n.chosen_format = sparse::Format::kCoo;
    }
  }
  Executor exec(p, ExecOptions{.layout = LayoutMode::kPlanned});
  Bindings bind;
  bind.graph = &g.adj();
  bind.frontier = IdArray::FromVector({1, 2});
  Rng rng(1);
  std::vector<Value> out = exec.Run(bind, rng);
  EXPECT_TRUE(out[0].matrix.HasFormat(sparse::Format::kCoo));
  EXPECT_FALSE(out[0].matrix.HasFormat(sparse::Format::kCsc));
}

TEST(Executor, ConvertFormatNode) {
  graph::Graph g = gs::testing::SmallRmat();
  Program p;
  const int graph_in = p.Add(OpKind::kGraphInput, {});
  const int frontier = p.Add(OpKind::kFrontierInput, {});
  const int slice = p.Add(OpKind::kSliceCols, {graph_in, frontier});
  Attrs attrs;
  attrs.format = sparse::Format::kCsr;
  const int converted = p.Add(OpKind::kConvertFormat, {slice}, attrs);
  p.SetOutputs({converted});
  p.Verify();

  Executor exec(p, ExecOptions{});
  Bindings bind;
  bind.graph = &g.adj();
  bind.frontier = IdArray::FromVector({5, 6});
  Rng rng(1);
  std::vector<Value> out = exec.Run(bind, rng);
  EXPECT_TRUE(out[0].matrix.HasFormat(sparse::Format::kCsr));
  EXPECT_FALSE(out[0].matrix.HasFormat(sparse::Format::kCsc));
}

TEST(Executor, IntermediateMemoryFreedAfterLastUse) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = gs::testing::SmallRmat();
  // Two layers: layer-1 intermediates must be freed once layer-2 consumed
  // them (only program outputs survive).
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal s1 = a.Cols(f).IndividualSample(4);
  MVal s2 = a.Cols(s1.Row()).IndividualSample(4);
  b.Output(s2.Row());  // ids only: every matrix is an intermediate
  Program p = std::move(b).Build();

  Executor exec(p, ExecOptions{});
  Bindings bind;
  bind.graph = &g.adj();
  bind.frontier = IdArray::FromVector({1, 2, 3, 4});
  const int64_t before = dev.allocator().stats().bytes_in_use;
  Rng rng(3);
  std::vector<Value> out = exec.Run(bind, rng);
  const int64_t after = dev.allocator().stats().bytes_in_use;
  // Only the surviving ids output should remain beyond transient slack.
  EXPECT_LT(after - before, 16 * 1024);
  (void)out;
}

TEST(Executor, PrecomputedValuesSkipEvaluation) {
  graph::Graph g = gs::testing::SmallRmat();
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  TVal degree = a.Sum(0);
  MVal sample = a.Cols(f).CollectiveSample(8, degree);
  b.Output(sample);
  Program p = std::move(b).Build();
  MarkInvariant(p);

  Executor exec(p, ExecOptions{});
  Bindings bind;
  bind.graph = &g.adj();
  // Inject a fake pre-computed degree that masks node 0..k as zero prob.
  tensor::Tensor fake = tensor::Tensor::Full({g.num_nodes()}, 0.0f);
  fake.at(7) = 1.0f;
  fake.at(9) = 1.0f;
  exec.SetPrecomputed(degree.id(), Value::OfTensor(fake));
  bind.frontier = IdArray::FromVector({1, 2, 3});
  Rng rng(9);
  std::vector<Value> out = exec.Run(bind, rng);
  // Only nodes 7 and 9 can be selected under the injected bias.
  for (int64_t i = 0; i < out[0].matrix.row_ids().size(); ++i) {
    const int32_t id = out[0].matrix.row_ids()[i];
    EXPECT_TRUE(id == 7 || id == 9);
  }
  exec.ClearPrecomputed();
}

TEST(Executor, RunInvariantEvaluatesOnlyInvariantNodes) {
  graph::Graph g = gs::testing::SmallRmat();
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  TVal degree = a.Sum(0);             // invariant
  TVal batch_dep = a.Cols(f).Sum(0);  // needs the frontier
  b.Output(degree);
  b.Output(batch_dep);
  Program p = std::move(b).Build();
  MarkInvariant(p);

  Executor exec(p, ExecOptions{});
  Bindings bind;
  bind.graph = &g.adj();  // no frontier bound: invariant-only run must work
  std::map<int, Value> values = exec.RunInvariant(bind);
  EXPECT_TRUE(values.count(degree.id()));
  EXPECT_FALSE(values.count(batch_dep.id()));
}

TEST(Executor, SuperBatchGatherDecodesLabeledIds) {
  graph::Graph g = gs::testing::SmallRmat();
  // features gathered by next-layer frontiers inside a segmented run must
  // decode labeled ids back to node ids.
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  TVal feat = b.Input("feat");
  MVal sample = a.Cols(f).IndividualSample(2).Compact();
  TVal gathered = feat.Gather(sample.Row());  // labeled ids -> mod-N gather
  MVal scaled = sample.Mul(gathered, 0);      // locally aligned after Compact
  b.Output(scaled);
  Program p = std::move(b).Build();

  Executor exec(p, ExecOptions{.super_batch = true,
                               .num_segments = 2,
                               .graph_num_nodes = g.num_nodes()});
  Bindings bind;
  bind.graph = &g.adj();
  bind.tensors["feat"] = tensor::Tensor::Full({g.num_nodes()}, 2.0f);
  const int32_t n = static_cast<int32_t>(g.num_nodes());
  bind.frontier = IdArray::FromVector({1, 2, n + 3, n + 4});
  Rng rng(11);
  std::vector<Value> out = exec.Run(bind, rng);
  // Every edge weight got multiplied by the gathered feature value 2.
  for (const auto& [edge, w] : gs::testing::EdgeSet(out[0].matrix)) {
    (void)edge;
    EXPECT_GT(w, 0.0f);
  }
}

TEST(Executor, MissingFrontierThrows) {
  graph::Graph g = gs::testing::SmallRmat();
  Program p = SageProgram(2);
  Executor exec(p, ExecOptions{});
  Bindings bind;
  bind.graph = &g.adj();
  Rng rng(1);
  EXPECT_THROW(exec.Run(bind, rng), Error);
  Bindings no_graph;
  no_graph.frontier = IdArray::FromVector({1});
  EXPECT_THROW(exec.Run(no_graph, rng), Error);
}

}  // namespace
}  // namespace gs::core
