// Dynamic-graph tier (gs::dyn + graph::GraphStore): versioned snapshots
// under online mutations, COW segment accounting, seal compaction,
// epoch-aware plan judgment and background recompilation, incremental
// re-partitioning, and the end-to-end guarantees the ISSUE pins — oracle
// bit-identity for every algorithm after a mutation stream (single-device,
// sharded, and replicated) and a live-server mutation soak with zero failed
// requests and every recompile off the serving path.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "core/plan.h"
#include "device/device.h"
#include "dyn/mutation_gen.h"
#include "dyn/plan_table.h"
#include "dyn/replanner.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/store.h"
#include "oracle/oracle.h"
#include "serving/server.h"
#include "shard/shard.h"
#include "tests/testing.h"

namespace gs {
namespace {

using graph::EdgeAdd;
using graph::GraphStore;
using graph::GraphStoreOptions;
using graph::MutationBatch;
using graph::Snapshot;

tensor::IdArray Seeds(std::vector<int32_t> ids) {
  return tensor::IdArray::FromVector(ids);
}

dyn::MutationGenOptions GenOptions(int64_t num_nodes, uint64_t seed = 0x5EED) {
  dyn::MutationGenOptions o;
  o.seed = seed;
  o.num_nodes = num_nodes;
  o.adds_per_batch = 24;
  o.removes_per_batch = 6;
  o.weighted = true;
  o.skew = 0.8;
  return o;
}

// A batch heavy enough to drift any degree-bound validity predicate:
// `cols` destination columns each gain `per_col` fresh in-edges from low
// source ids (sources and destinations are disjoint ranges, so no
// self-loops and no accidental upserts of generator hub edges).
MutationBatch DriftBatch(int32_t first_dst, int32_t cols, int32_t per_col) {
  MutationBatch batch;
  for (int32_t c = 0; c < cols; ++c) {
    for (int32_t s = 0; s < per_col; ++s) {
      batch.add_edges.push_back({s, first_dst + c, 1.0f});
    }
  }
  return batch;
}

// ------------------------------------------------------------ GraphStore

TEST(GraphStoreTest, UpsertRemoveSelfLoopAndLastAddWinsSemantics) {
  GraphStore store(testing::ToyGraph());
  EXPECT_EQ(store.Current()->epoch(), 0u);
  const uint64_t digest0 = store.Current()->digest();

  MutationBatch batch;
  batch.add_edges.push_back({1, 0, 9.0f});   // existing pair -> weight upsert
  batch.add_edges.push_back({6, 0, 0.25f});  // new pair
  batch.add_edges.push_back({2, 2, 1.0f});   // self-loop -> dropped
  batch.add_edges.push_back({5, 2, 0.11f});  // new pair, superseded below
  batch.add_edges.push_back({5, 2, 0.22f});  // last add for the pair wins
  batch.remove_edges.push_back({2, 1});      // existing -> deleted
  batch.remove_edges.push_back({3, 3});      // missing -> no-op
  const auto snap = store.Apply(batch);

  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_NE(snap->digest(), digest0);
  EXPECT_EQ(snap.get(), store.Current().get());
  // Toy graph has 12 edges; +2 inserts ((6,0), (5,2)), -1 removal.
  EXPECT_EQ(snap->graph().num_edges(), 13);

  const auto set = testing::EdgeSet(snap->graph().adj());
  EXPECT_FLOAT_EQ(set.at({1, 0}), 9.0f);    // upserted
  EXPECT_FLOAT_EQ(set.at({6, 0}), 0.25f);   // inserted
  EXPECT_FLOAT_EQ(set.at({5, 2}), 0.22f);   // last add won
  EXPECT_EQ(set.count({2, 2}), 0u);         // self-loop dropped
  EXPECT_EQ(set.count({2, 1}), 0u);         // removed
  EXPECT_FLOAT_EQ(set.at({0, 2}), 0.4f);    // untouched edges intact

  const graph::GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.batches_applied, 1);
  EXPECT_EQ(stats.edges_removed, 1);
  // Four distinct non-self-loop ops landed: 2 inserts, the (1,0) upsert,
  // and the intra-batch (5,2) rewrite (counted however the store splits
  // add vs update — the sum is what the contract fixes).
  EXPECT_EQ(stats.edges_added, 2);
  EXPECT_GE(stats.edges_updated, 1);
}

TEST(GraphStoreTest, EffectiveEdgesMatchFromEdgesBitIdentically) {
  graph::Graph base = testing::SmallRmat();
  const int64_t nodes = base.num_nodes();
  GraphStore store(std::move(base));
  dyn::MutationGen gen(GenOptions(nodes));
  for (int i = 0; i < 4; ++i) {
    store.Apply(gen.Next());
  }

  std::vector<float> weights;
  const auto edges = store.EffectiveEdges(&weights);
  const graph::Graph reload = graph::Graph::FromEdges("reload", nodes, edges, &weights);

  EXPECT_EQ(Snapshot::DigestOf(reload), store.Current()->digest());
  EXPECT_EQ(testing::EdgeSet(reload.adj()),
            testing::EdgeSet(store.Current()->graph().adj()));
}

TEST(GraphStoreTest, CowSegmentsRebuildOnlyTouchedColumns) {
  GraphStoreOptions options;
  options.segment_cols = 2;  // toy graph: 7 nodes -> 4 segments
  GraphStore store(testing::ToyGraph(), options);

  MutationBatch batch;
  batch.add_edges.push_back({3, 0, 0.5f});  // touches column 0 only
  store.Apply(batch);
  store.Seal();  // compaction rebuilds exactly the overlaid segments

  const graph::GraphStoreStats stats = store.stats();
  EXPECT_EQ(stats.segments_rebuilt, 1);
  EXPECT_EQ(stats.segments_reused, 3);
}

TEST(GraphStoreTest, SealCompactsWithoutChangingTheSnapshot) {
  graph::Graph base = testing::SmallRmat();
  const int64_t nodes = base.num_nodes();
  GraphStore store(std::move(base));
  dyn::MutationGen gen(GenOptions(nodes, 0xC0DE));
  store.Apply(gen.Next());
  store.Apply(gen.Next());

  const uint64_t digest = store.Current()->digest();
  const uint64_t epoch = store.Current()->epoch();
  const auto before = testing::EdgeSet(store.Current()->graph().adj());
  EXPECT_GT(store.stats().delta_entries, 0);

  store.Seal();

  EXPECT_EQ(store.Current()->digest(), digest);
  EXPECT_EQ(store.Current()->epoch(), epoch);
  EXPECT_EQ(testing::EdgeSet(store.Current()->graph().adj()), before);
  EXPECT_EQ(store.stats().seals, 1);
  EXPECT_EQ(store.stats().delta_entries, 0);

  // Mutations after compaction still match a from-scratch reload.
  store.Apply(gen.Next());
  std::vector<float> weights;
  const auto edges = store.EffectiveEdges(&weights);
  const graph::Graph reload = graph::Graph::FromEdges("reload", nodes, edges, &weights);
  EXPECT_EQ(Snapshot::DigestOf(reload), store.Current()->digest());
}

TEST(GraphStoreTest, SnapshotsPinTheirEpochs) {
  GraphStore store(testing::ToyGraph());
  const std::shared_ptr<const Snapshot> snap0 = store.Current();
  const auto set0 = testing::EdgeSet(snap0->graph().adj());
  const uint64_t digest0 = snap0->digest();

  MutationBatch batch;
  batch.add_edges.push_back({3, 0, 0.5f});
  batch.remove_edges.push_back({1, 0});
  store.Apply(batch);

  // The pinned epoch is untouched by later mutations.
  EXPECT_EQ(snap0->epoch(), 0u);
  EXPECT_EQ(snap0->digest(), digest0);
  EXPECT_EQ(testing::EdgeSet(snap0->graph().adj()), set0);
  EXPECT_EQ(store.Current()->epoch(), 1u);
  EXPECT_NE(store.Current().get(), snap0.get());
}

TEST(GraphStoreTest, FeatureRowsCopyOnWrite) {
  graph::Graph base = testing::SmallRmat();
  const int64_t dim = base.features().cols();
  ASSERT_GT(dim, 0);
  GraphStore store(std::move(base));
  const std::shared_ptr<const Snapshot> snap0 = store.Current();
  const auto at = [dim](const graph::Graph& g, int64_t r, int64_t c) {
    return g.features().array()[r * dim + c];
  };
  const float old_value = at(snap0->graph(), 5, 0);

  graph::FeatureUpdate update;
  update.node = 5;
  update.row.assign(static_cast<size_t>(dim), 3.5f);
  MutationBatch batch;
  batch.update_features.push_back(update);
  const auto snap1 = store.Apply(batch);

  EXPECT_FLOAT_EQ(at(snap1->graph(), 5, 0), 3.5f);
  EXPECT_FLOAT_EQ(at(snap1->graph(), 5, dim - 1), 3.5f);
  // The pinned epoch keeps its row; untouched rows agree across epochs.
  EXPECT_FLOAT_EQ(at(snap0->graph(), 5, 0), old_value);
  EXPECT_FLOAT_EQ(at(snap1->graph(), 6, 0), at(snap0->graph(), 6, 0));
  EXPECT_EQ(store.stats().features_updated, 1);
}

// ------------------------------------------------- degree stats / validity

TEST(DegreeStatsTest, FromMatrixAndHubOverlap) {
  const graph::Graph g = testing::ToyGraph();
  const graph::DegreeStats stats = graph::DegreeStats::FromMatrix(g.adj(), /*top_k=*/2);
  EXPECT_EQ(stats.num_nodes, 7);
  EXPECT_EQ(stats.num_edges, 12);
  EXPECT_NEAR(stats.mean_in_degree, 12.0 / 7.0, 1e-9);
  EXPECT_EQ(stats.max_in_degree, 3);
  // Columns 0 and 1 have in-degree 3; hubs are sorted by id.
  EXPECT_EQ(stats.hubs, (std::vector<int32_t>{0, 1}));

  EXPECT_DOUBLE_EQ(graph::DegreeStats::HubOverlap({0, 1}, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(graph::DegreeStats::HubOverlap({}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(graph::DegreeStats::HubOverlap({3, 4}, {3, 4}), 1.0);
}

TEST(PlanValidityTest, CheckAgainstBounds) {
  graph::DegreeStats now;
  now.mean_in_degree = 10.0;
  now.p99_in_degree = 20;
  now.hubs = {0, 1, 2, 3};

  core::PlanValidity unbound;
  EXPECT_TRUE(unbound.CheckAgainst(now));  // no predicate -> always valid

  core::PlanValidity v;
  v.bound = true;
  v.mean_in_degree = 10.0;
  v.p99_in_degree = 20;
  v.hubs = {0, 1, 2, 3};
  EXPECT_TRUE(v.CheckAgainst(now));

  graph::DegreeStats drifted = now;
  drifted.mean_in_degree = 14.0;  // 40% drift > max_drift 25%
  std::string why;
  EXPECT_FALSE(v.CheckAgainst(drifted, &why));
  EXPECT_FALSE(why.empty());

  graph::DegreeStats churned = now;
  churned.hubs = {7, 8, 9, 10};  // overlap 0 < min_hub_overlap 0.5
  why.clear();
  EXPECT_FALSE(v.CheckAgainst(churned, &why));
  EXPECT_NE(why.find("hub"), std::string::npos);
}

// ------------------------------------------------------------- plan table

TEST(PlanTableTest, JudgeMissValidDriftedLifecycle) {
  GraphStore store(testing::SmallRmat());
  const std::shared_ptr<const Snapshot> snap0 = store.Current();

  // A real calibrated plan: Warmup runs layout selection, which binds the
  // validity predicate to epoch 0's degree distribution and freezes.
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", snap0->graph());
  auto plan = std::make_shared<core::CompiledPlan>(std::move(ap.program),
                                                   core::SamplerOptions{}, "GraphSAGE");
  core::SamplerSession session(plan, snap0, std::move(ap.tensors));
  session.Warmup(Seeds({0, 1, 2, 3}));
  ASSERT_TRUE(plan->validity().bound);

  dyn::PlanTable table;
  EXPECT_EQ(table.Judge("k", *snap0), dyn::PlanJudgment::kMiss);
  table.Publish("k", plan, *snap0);
  EXPECT_EQ(table.Judge("k", *snap0), dyn::PlanJudgment::kValid);  // same epoch

  // A small epoch stays within the drift bounds.
  MutationBatch small;
  small.add_edges.push_back({7, 200, 1.0f});
  small.add_edges.push_back({8, 201, 1.0f});
  const auto snap1 = store.Apply(small);
  EXPECT_EQ(table.Judge("k", *snap1), dyn::PlanJudgment::kValid);

  // A massive epoch (mean in-degree +>25%) drifts the predicate.
  const auto snap2 = store.Apply(DriftBatch(/*first_dst=*/250, /*cols=*/50, /*per_col=*/50));
  dyn::PlanTable::Entry entry;
  std::string why;
  EXPECT_EQ(table.Judge("k", *snap2, &entry, &why), dyn::PlanJudgment::kDrifted);
  EXPECT_EQ(entry.plan.get(), plan.get());  // the stale plan still serves
  EXPECT_FALSE(why.empty());

  // Republishing against the drifted epoch revalidates it.
  table.Publish("k", plan, *snap2);
  EXPECT_EQ(table.Judge("k", *snap2), dyn::PlanJudgment::kValid);

  const dyn::PlanTableStats stats = table.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.judged_miss, 1);
  EXPECT_EQ(stats.judged_valid, 3);
  EXPECT_EQ(stats.judged_drifted, 1);
  EXPECT_EQ(stats.publishes, 2);
}

// -------------------------------------------------------------- replanner

TEST(ReplannerTest, DedupAdvancesToNewestEpochAndDrainConverges) {
  GraphStore store(testing::ToyGraph());
  const auto snap0 = store.Current();
  MutationBatch batch;
  batch.add_edges.push_back({3, 0, 0.5f});
  const auto snap1 = store.Apply(batch);

  std::mutex mutex;
  std::map<std::string, uint64_t> compiled_epochs;
  dyn::Replanner replanner([&](const std::string& key,
                               std::shared_ptr<const Snapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mutex);
    compiled_epochs[key] = snapshot->epoch();
  });

  // Enqueued before Start: both land in the queue, the re-enqueue of "a"
  // advances the pending snapshot instead of queueing twice.
  replanner.Enqueue("a", snap0);
  replanner.Enqueue("a", snap1);
  replanner.Enqueue("b", snap0);
  replanner.Start();
  replanner.Drain();
  replanner.Stop();

  EXPECT_EQ(compiled_epochs.at("a"), 1u);  // newest epoch won
  EXPECT_EQ(compiled_epochs.at("b"), 0u);
  const dyn::ReplannerStats stats = replanner.stats();
  EXPECT_EQ(stats.enqueued, 3);
  EXPECT_EQ(stats.deduped, 1);
  EXPECT_EQ(stats.compiled, 2);
  EXPECT_EQ(stats.failures, 0);
}

TEST(ReplannerTest, CompileFailuresAreCountedNotFatal) {
  GraphStore store(testing::ToyGraph());
  std::mutex mutex;
  std::vector<std::string> compiled;
  dyn::Replanner replanner([&](const std::string& key, std::shared_ptr<const Snapshot>) {
    if (key == "bad") {
      throw std::runtime_error("synthetic compile failure");
    }
    std::lock_guard<std::mutex> lock(mutex);
    compiled.push_back(key);
  });
  replanner.Enqueue("bad", store.Current());
  replanner.Enqueue("good", store.Current());
  replanner.Start();
  replanner.Drain();
  replanner.Stop();

  EXPECT_EQ(compiled, (std::vector<std::string>{"good"}));
  EXPECT_EQ(replanner.stats().failures, 1);
  EXPECT_EQ(replanner.stats().compiled, 1);
}

// ------------------------------------------------------------ mutation gen

TEST(MutationGenTest, DeterministicStreamsAndEffectiveRemovals) {
  dyn::MutationGenOptions options = GenOptions(300, 0xFEED);
  options.feature_updates_per_batch = 4;
  options.feature_dim = 8;
  dyn::MutationGen a(options);
  dyn::MutationGen b(options);
  for (int i = 0; i < 4; ++i) {
    const MutationBatch ba = a.Next();
    const MutationBatch bb = b.Next();
    ASSERT_EQ(ba.add_edges.size(), bb.add_edges.size());
    for (size_t e = 0; e < ba.add_edges.size(); ++e) {
      EXPECT_EQ(ba.add_edges[e].src, bb.add_edges[e].src);
      EXPECT_EQ(ba.add_edges[e].dst, bb.add_edges[e].dst);
      EXPECT_EQ(ba.add_edges[e].weight, bb.add_edges[e].weight);
    }
    EXPECT_EQ(ba.remove_edges, bb.remove_edges);
    ASSERT_EQ(ba.update_features.size(), bb.update_features.size());
    for (size_t f = 0; f < ba.update_features.size(); ++f) {
      EXPECT_EQ(ba.update_features[f].node, bb.update_features[f].node);
      EXPECT_EQ(ba.update_features[f].row, bb.update_features[f].row);
    }
  }

  dyn::MutationGen other(GenOptions(300, 0xBEEF));
  const MutationBatch first = dyn::MutationGen(GenOptions(300, 0xFEED)).Next();
  const MutationBatch diff = other.Next();
  bool identical = first.add_edges.size() == diff.add_edges.size();
  for (size_t e = 0; identical && e < first.add_edges.size(); ++e) {
    identical = first.add_edges[e].src == diff.add_edges[e].src &&
                first.add_edges[e].dst == diff.add_edges[e].dst;
  }
  EXPECT_FALSE(identical) << "different seeds produced the same stream";

  // Removals draw from previously added edges, so they actually delete.
  GraphStore store(testing::SmallRmat());
  dyn::MutationGen gen(GenOptions(store.num_nodes()));
  for (int i = 0; i < 5; ++i) {
    store.Apply(gen.Next());
  }
  EXPECT_GT(store.stats().edges_removed, 0);
}

// --------------------------------------------------- incremental partition

TEST(PartitionTest, RebuildKeepsOwnershipAndRebuildsOnlyDirtyShards) {
  graph::Graph base = testing::SmallRmat();
  const graph::Partition before =
      graph::Partitioner::Build(base, graph::PartitionKind::kEdgeCut, 4);

  GraphStore store(std::move(base));
  dyn::MutationGen gen(GenOptions(store.num_nodes(), 0xABCD));
  const MutationBatch batch = gen.Next();
  const auto snap = store.Apply(batch);
  const std::vector<int32_t> touched = batch.TouchedColumns();
  ASSERT_FALSE(touched.empty());

  const graph::Partition after =
      graph::Partitioner::Rebuild(before, snap->graph(), touched);

  // Ownership (and therefore routing) is pinned across the rebuild.
  for (int32_t n = 0; n < static_cast<int32_t>(store.num_nodes()); ++n) {
    ASSERT_EQ(after.OwnerOf(n), before.OwnerOf(n)) << "node " << n;
  }

  // Only the shards owning a touched column were re-sliced.
  std::set<int> dirty;
  for (int32_t col : touched) {
    dirty.insert(before.OwnerOf(col));
  }
  EXPECT_EQ(after.segments_rebuilt(), static_cast<int>(dirty.size()));
  EXPECT_EQ(after.segments_rebuilt() + after.segments_reused(), 4);
}

// -------------------------------------------------- oracle: all algorithms

// The acceptance bar: after N MutationBatches (with a mid-stream Seal), the
// maintained snapshot samples bit-identically to a from-scratch FromEdges
// load of the same effective edge set — for every registered algorithm.
TEST(DynOracle, EveryAlgorithmBitIdenticalAfterMutationStream) {
  device::Device device(device::T4Sim());
  device::DeviceGuard guard(device);
  graph::Graph base = testing::SmallRmat(200, 1600, 13);
  const int64_t nodes = base.num_nodes();
  const int64_t dim = base.features().cols();
  GraphStore store(std::move(base));

  dyn::MutationGenOptions gen_options = GenOptions(nodes, 0xD1CE);
  gen_options.feature_updates_per_batch = 4;
  gen_options.feature_dim = dim;
  dyn::MutationGen gen(gen_options);
  for (int i = 0; i < 3; ++i) {
    store.Apply(gen.Next());
    if (i == 1) {
      store.Seal();
    }
  }

  oracle::OracleOptions options;
  options.seed = 0xD1D1;
  options.num_batches = 2;
  options.batch_size = 4;
  for (const std::string& algorithm : algorithms::AllAlgorithmNames()) {
    const oracle::OracleReport report =
        oracle::VerifySnapshotEquivalence(algorithm, store, core::SamplerOptions{}, options);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

// Sharding and replication change where time is charged, never what is
// sampled — including on a mutated snapshot. Every shard of a 4-way group
// (with and without 2-way replication) returns bit-identical outputs to a
// single-device session pinned to the same epoch.
TEST(DynShardOracle, MutatedSnapshotShardedAndReplicatedBitIdentity) {
  graph::Graph base = testing::SmallRmat();
  GraphStore store(std::move(base));
  dyn::MutationGen gen(GenOptions(store.num_nodes(), 0x5A5A));
  for (int i = 0; i < 3; ++i) {
    store.Apply(gen.Next());
  }
  const std::shared_ptr<const Snapshot> snap = store.Current();
  const tensor::IdArray frontier = Seeds({5, 17, 42, 101, 250});

  for (const std::string algorithm : {"GraphSAGE", "LADIES"}) {
    // Single-device reference over the same pinned epoch.
    algorithms::AlgorithmProgram ref = algorithms::MakeAlgorithm(algorithm, snap->graph());
    auto plan = std::make_shared<core::CompiledPlan>(std::move(ref.program),
                                                     core::SamplerOptions{}, algorithm);
    core::SamplerSession session(std::move(plan), snap, std::move(ref.tensors));
    session.Warmup(Seeds({0, 1, 2, 3}));
    const std::vector<core::Value> reference = session.SampleSeeded(frontier, 77);

    for (const int replicas : {1, 2}) {
      algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algorithm, snap->graph());
      shard::ShardGroupOptions options;
      options.num_shards = 4;
      options.num_replicas = replicas;
      const shard::ShardGroup group(snap, std::move(ap.program), std::move(ap.tensors),
                                    options);
      for (int s = 0; s < 4; ++s) {
        const std::vector<core::Value> got = group.Sample(s, frontier, 77);
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(core::BitIdentical(got[i], reference[i]))
              << algorithm << " replicas=" << replicas << " shard " << s << " output " << i;
        }
      }
    }
  }
}

// ----------------------------------------------------- serving soak (dyn)

// A dynamic endpoint under an interleaved request/mutation stream: every
// request succeeds (admission pins a snapshot; epochs never tear a request),
// exactly one compile ever runs on the serving path (the cold start), and
// each later epoch is served by the cheap session-rebuild path.
TEST(DynServing, MutationSoakZeroFailuresAndRecompilesOffServingPath) {
  graph::Graph g = testing::SmallRmat(400, 4000, 11);
  const int64_t nodes = g.num_nodes();
  const int64_t dim = g.features().cols();
  GraphStore store(std::move(g));

  serving::ServerOptions options;
  options.num_workers = 2;
  options.background_recompile = true;
  serving::Server server(options);
  server.RegisterEndpoint(serving::MakeDynamicEndpoint("GraphSAGE", "rmat", store));
  server.Start();

  dyn::MutationGenOptions gen_options = GenOptions(nodes, 0x50AC);
  gen_options.feature_updates_per_batch = 4;
  gen_options.feature_dim = dim;
  dyn::MutationGen gen(gen_options);

  const int kEpochs = 4;
  const int kRequestsPerWave = 3;
  int64_t submitted = 0;
  for (int epoch = 0; epoch <= kEpochs; ++epoch) {
    if (epoch > 0) {
      store.Apply(gen.Next());
    }
    for (int r = 0; r < kRequestsPerWave; ++r) {
      serving::SampleRequest req;
      req.algorithm = "GraphSAGE";
      req.dataset = "rmat";
      req.seeds = Seeds({1, 2, 3, static_cast<int32_t>(10 + r)});
      req.seed = static_cast<uint64_t>(epoch * 100 + r);
      req.fanouts = {4, 3};
      const serving::SampleResponse response = server.Submit(req).get();
      ASSERT_EQ(response.status, serving::Status::kOk) << response.error;
      EXPECT_FALSE(response.outputs.empty());
      ++submitted;
    }
  }

  server.DrainRecompiles();
  server.Stop();
  const serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, submitted);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.graph_epochs, kEpochs);
  // One cold compile; every subsequent epoch took the cheap path (session
  // rebuild over the frozen plan) or served stale while the replanner ran.
  EXPECT_EQ(stats.recompiles_inline, 1);
  EXPECT_EQ(stats.plan_reuses + stats.stale_plans_served, kEpochs);
  EXPECT_EQ(server.replanner_stats().failures, 0);
}

// Forced drift through the live server: a mutation epoch violent enough to
// break the validity predicate must be served by the stale plan (no inline
// recompile, no failure) while the replanner compiles in the background and
// republishes.
TEST(DynServing, DriftedEpochServesStaleWhileBackgroundRecompiles) {
  graph::Graph g = testing::SmallRmat(400, 4000, 11);
  GraphStore store(std::move(g));

  serving::ServerOptions options;
  options.num_workers = 2;
  options.background_recompile = true;
  serving::Server server(options);
  server.RegisterEndpoint(serving::MakeDynamicEndpoint("GraphSAGE", "rmat", store));
  server.Start();

  auto submit = [&](uint64_t seed) {
    serving::SampleRequest req;
    req.algorithm = "GraphSAGE";
    req.dataset = "rmat";
    req.seeds = Seeds({1, 2, 3, 4});
    req.seed = seed;
    req.fanouts = {4, 3};
    return server.Submit(req).get();
  };

  ASSERT_EQ(submit(1).status, serving::Status::kOk);  // cold compile, epoch 0

  // Mean in-degree 10 -> ~16: past the 25% drift bound.
  store.Apply(DriftBatch(/*first_dst=*/300, /*cols=*/50, /*per_col=*/50));
  const serving::SampleResponse drifted = submit(2);
  ASSERT_EQ(drifted.status, serving::Status::kOk) << drifted.error;

  server.DrainRecompiles();
  const serving::SampleResponse after = submit(3);
  ASSERT_EQ(after.status, serving::Status::kOk) << after.error;
  server.Stop();

  const serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.recompiles_inline, 1) << "drift must not compile on the serving path";
  EXPECT_GE(stats.stale_plans_served, 1);
  EXPECT_GE(stats.recompiles_background, 1);
  EXPECT_GE(server.replanner_stats().compiled, 1);
  EXPECT_EQ(server.replanner_stats().failures, 0);
}

}  // namespace
}  // namespace gs
