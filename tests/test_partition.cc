// Tests for graph::Partitioner (graph/partition.h): golden deterministic
// partitions for both kinds, global<->local id-map round-trips, the
// every-edge-owned-exactly-once invariant, locality routing, and the
// exchange byte accounting the shard cost model relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "tests/testing.h"

namespace gs::graph {
namespace {

// Star graph: node 0 is a hub with `spokes` in- and out-edges — the
// power-law caricature the vertex-cut exists for.
Graph StarGraph(int32_t spokes = 20) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 1; i <= spokes; ++i) {
    edges.push_back({i, 0});
  }
  for (int32_t i = 1; i <= spokes; ++i) {
    edges.push_back({0, i});
  }
  return Graph::FromEdges("star", spokes + 1, edges, nullptr);
}

// Union of the shard segments' edges in global ids, with per-edge
// multiplicity — the invariant check needs to see double ownership.
std::map<std::pair<int32_t, int32_t>, int> OwnedEdges(const Partition& partition) {
  std::map<std::pair<int32_t, int32_t>, int> owned;
  for (int s = 0; s < partition.num_shards(); ++s) {
    const sparse::Matrix& segment = partition.Segment(s);
    const sparse::Coo& coo = segment.GetCoo();
    for (int64_t e = 0; e < segment.nnz(); ++e) {
      owned[{segment.GlobalRowId(coo.row[e]), segment.GlobalColId(coo.col[e])}] += 1;
    }
  }
  return owned;
}

std::map<std::pair<int32_t, int32_t>, int> GraphEdges(const Graph& graph) {
  std::map<std::pair<int32_t, int32_t>, int> edges;
  const sparse::Coo& coo = graph.adj().GetCoo();
  for (int64_t e = 0; e < graph.adj().nnz(); ++e) {
    edges[{coo.row[e], coo.col[e]}] += 1;
  }
  return edges;
}

// ------------------------------------------------------------ goldens

// The partition is a pure function of (graph, shards): these exact splits
// are part of the contract — a change here silently re-homes every plan
// keyed by shard and must be deliberate.
TEST(Partition, GoldenEdgeCutToyGraph) {
  const Graph toy = testing::ToyGraph();
  const Partition two = Partitioner::EdgeCut(toy, 2);
  EXPECT_EQ(two.kind(), PartitionKind::kEdgeCut);
  const std::vector<int32_t> expected_two = {0, 0, 0, 1, 1, 1, 1};
  for (int32_t v = 0; v < toy.num_nodes(); ++v) {
    EXPECT_EQ(two.OwnerOf(v), expected_two[static_cast<size_t>(v)]) << "node " << v;
  }
  EXPECT_EQ(two.LocalNodes(0), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(two.LocalNodes(1), (std::vector<int32_t>{3, 4, 5, 6}));
  EXPECT_EQ(two.Segment(0).nnz(), 7);
  EXPECT_EQ(two.Segment(1).nnz(), 5);

  const Partition three = Partitioner::EdgeCut(toy, 3);
  const std::vector<int32_t> expected_three = {0, 0, 1, 1, 2, 2, 2};
  for (int32_t v = 0; v < toy.num_nodes(); ++v) {
    EXPECT_EQ(three.OwnerOf(v), expected_three[static_cast<size_t>(v)]) << "node " << v;
  }
}

TEST(Partition, GoldenVertexCutSplitsTheHub) {
  const Graph star = StarGraph(20);
  const Partition p = Partitioner::VertexCut(star, 4);
  EXPECT_EQ(p.kind(), PartitionKind::kVertexCut);
  // The hub's master stays shard 0, but its 20-edge column is chunked
  // across all four shards (ceil(20/4) = 5 edges each).
  EXPECT_EQ(p.OwnerOf(0), 0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_GE(p.ToLocal(s, 0), 0) << "shard " << s << " lost its hub chunk";
  }
  EXPECT_EQ(p.Segment(0).nnz(), 5);
  EXPECT_EQ(p.Segment(1).nnz(), 10);
  EXPECT_EQ(p.Segment(2).nnz(), 12);
  EXPECT_EQ(p.Segment(3).nnz(), 13);
  // An edge-cut of the same graph keeps the hub whole on its home shard.
  const Partition ec = Partitioner::EdgeCut(star, 4);
  EXPECT_EQ(ec.Segment(ec.OwnerOf(0)).nnz() >= 20, true);
  EXPECT_EQ(ec.ToLocal(1, 0), -1);
}

TEST(Partition, DeterministicAcrossRebuilds) {
  const Graph g = testing::SmallRmat(300, 3000, 9);
  for (const PartitionKind kind : {PartitionKind::kEdgeCut, PartitionKind::kVertexCut}) {
    const Partition a = Partitioner::Build(g, kind, 4);
    const Partition b = Partitioner::Build(g, kind, 4);
    for (int32_t v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(a.OwnerOf(v), b.OwnerOf(v)) << PartitionKindName(kind) << " node " << v;
    }
    for (int s = 0; s < 4; ++s) {
      ASSERT_EQ(a.LocalNodes(s), b.LocalNodes(s)) << PartitionKindName(kind) << " shard " << s;
      ASSERT_EQ(a.Segment(s).nnz(), b.Segment(s).nnz());
    }
    ASSERT_EQ(OwnedEdges(a), OwnedEdges(b)) << PartitionKindName(kind);
  }
}

// --------------------------------------------------- structural invariants

// Every edge of the graph lands in exactly one shard segment — no loss, no
// duplication — for both kinds across several shard counts.
TEST(Partition, EveryEdgeOwnedExactlyOnce) {
  const Graph g = testing::SmallRmat(300, 3000, 9);
  const auto expected = GraphEdges(g);
  for (const PartitionKind kind : {PartitionKind::kEdgeCut, PartitionKind::kVertexCut}) {
    for (const int shards : {1, 2, 3, 4, 8}) {
      const Partition p = Partitioner::Build(g, kind, shards);
      const auto owned = OwnedEdges(p);
      ASSERT_EQ(owned, expected) << PartitionKindName(kind) << " x" << shards;
    }
  }
}

TEST(Partition, IdMapsRoundTrip) {
  const Graph g = testing::SmallRmat(300, 3000, 9);
  for (const PartitionKind kind : {PartitionKind::kEdgeCut, PartitionKind::kVertexCut}) {
    const Partition p = Partitioner::Build(g, kind, 4);
    for (int s = 0; s < 4; ++s) {
      const std::vector<int32_t>& locals = p.LocalNodes(s);
      ASSERT_EQ(static_cast<int64_t>(locals.size()), p.Segment(s).num_cols());
      for (int32_t local = 0; local < static_cast<int32_t>(locals.size()); ++local) {
        const int32_t global = p.ToGlobal(s, local);
        EXPECT_EQ(global, locals[static_cast<size_t>(local)]);
        EXPECT_EQ(p.ToLocal(s, global), local) << "shard " << s << " node " << global;
      }
    }
    // Edge-cut: a node materializes columns only on its home shard, so every
    // other shard maps it to -1.
    if (kind == PartitionKind::kEdgeCut) {
      for (int32_t v = 0; v < g.num_nodes(); ++v) {
        for (int s = 0; s < 4; ++s) {
          if (s != p.OwnerOf(v)) {
            EXPECT_EQ(p.ToLocal(s, v), -1) << "shard " << s << " node " << v;
          }
        }
      }
    }
  }
}

TEST(Partition, EveryShardGetsAtLeastOneColumn) {
  // Pathological balance: two high-degree nodes, many isolated ones. The
  // contiguous split must still hand every shard a non-empty column range.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 2; i < 10; ++i) {
    edges.push_back({i, 0});
    edges.push_back({i, 1});
  }
  const Graph g = Graph::FromEdges("skew", 12, edges, nullptr);
  const Partition p = Partitioner::EdgeCut(g, 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_FALSE(p.LocalNodes(s).empty()) << "shard " << s;
  }
  EXPECT_THROW(Partitioner::EdgeCut(g, 13), Error);  // more shards than nodes
}

// ------------------------------------------------------------- routing

TEST(Partition, HomeShardPluralityAndFolding) {
  const Graph toy = testing::ToyGraph();
  const Partition p = Partitioner::EdgeCut(toy, 2);  // owners: 0 0 0 1 1 1 1
  const std::vector<int32_t> shard0_heavy = {0, 1, 2, 5};
  EXPECT_EQ(p.HomeShard(shard0_heavy.data(), 4), 0);
  const std::vector<int32_t> shard1_heavy = {0, 3, 4, 6};
  EXPECT_EQ(p.HomeShard(shard1_heavy.data(), 4), 1);
  // Labeled super-batch ids fold modulo num_nodes: 7 + 1 ≡ 1, 14 + 2 ≡ 2.
  const std::vector<int32_t> labeled = {8, 16, 3};
  EXPECT_EQ(p.HomeShard(labeled.data(), 3), 0);
  // Negative ids (walk dead-ends) are skipped; empty frontiers go to 0.
  const std::vector<int32_t> negatives = {-1, -1, 4};
  EXPECT_EQ(p.HomeShard(negatives.data(), 3), 1);
  EXPECT_EQ(p.HomeShard(nullptr, 0), 0);
  // Ties break toward the lower shard id.
  const std::vector<int32_t> tie = {0, 4};
  EXPECT_EQ(p.HomeShard(tie.data(), 2), 0);
}

// ------------------------------------------------------ byte accounting

TEST(Partition, ExchangeByteAccounting) {
  const Graph star = StarGraph(20);  // unweighted: 4 bytes per edge
  const Partition p = Partitioner::VertexCut(star, 4);
  EXPECT_EQ(p.AdjBytes(0), 20 * 4);
  EXPECT_EQ(p.AdjBytes(1), 4);
  // Everything shard 0 does not own (the 20 spokes, degree 1 each).
  EXPECT_EQ(p.RemoteBytesBound(0), 20 * 4);

  // A weighted graph ships values too (4 index + 4 value bytes per edge).
  const Graph weighted = testing::ToyGraph();
  const Partition wp = Partitioner::EdgeCut(weighted, 2);
  int64_t total = 0;
  for (int32_t v = 0; v < weighted.num_nodes(); ++v) {
    total += wp.AdjBytes(v);
  }
  EXPECT_EQ(total, weighted.adj().nnz() * 8);
  EXPECT_EQ(wp.RemoteBytesBound(0) + wp.RemoteBytesBound(1), total);
}

}  // namespace
}  // namespace gs::graph
