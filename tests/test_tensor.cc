// Unit tests for tensor/: dense tensor math against naive references.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace gs::tensor {
namespace {

TEST(Tensor, ShapesAndAccess) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
  Tensor v = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_EQ(v.dim(), 1);
  EXPECT_EQ(v.cols(), 1);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  r.at(0, 0) = 99.0f;
  EXPECT_FLOAT_EQ(t.at(0, 0), 99.0f);
  EXPECT_THROW(t.Reshape({4, 2}), Error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::FromVector({2}, {1, 2});
  Tensor c = t.Clone();
  c.at(0) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(0), 1.0f);
}

TEST(MatMul, MatchesNaive) {
  Rng rng(3);
  Tensor a = Tensor::Randn({7, 5}, rng);
  Tensor b = Tensor::Randn({5, 4}, rng);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 7);
  ASSERT_EQ(c.cols(), 4);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float ref = 0.0f;
      for (int64_t k = 0; k < 5; ++k) {
        ref += a.at(i, k) * b.at(k, j);
      }
      EXPECT_NEAR(c.at(i, j), ref, 1e-4);
    }
  }
}

TEST(MatMul, ShapeMismatchThrows) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_THROW(MatMul(a, b), Error);
}

class BinaryOpParam : public ::testing::TestWithParam<BinaryOp> {};

TEST_P(BinaryOpParam, ElementwiseMatchesScalarFormula) {
  const BinaryOp op = GetParam();
  Tensor a = Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor b = Tensor::FromVector({2, 2}, {2.0f, 2.0f, 0.5f, 3.0f});
  Tensor c = Binary(op, a, b);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(c.at(i), ApplyBinaryOp(op, a.at(i), b.at(i)), 1e-5);
  }
  Tensor s = BinaryScalar(op, a, 2.0f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(s.at(i), ApplyBinaryOp(op, a.at(i), 2.0f), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, BinaryOpParam,
                         ::testing::Values(BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                                           BinaryOp::kDiv, BinaryOp::kPow));

TEST(Softmax, RowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::Randn({6, 9}, rng, 3.0f);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 6; ++r) {
    double total = 0.0;
    for (int64_t c = 0; c < 9; ++c) {
      EXPECT_GE(s.at(r, c), 0.0f);
      total += s.at(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(Softmax, OneDimensional) {
  Tensor a = Tensor::FromVector({3}, {1.0f, 1.0f, 1.0f});
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(s.at(i), 1.0f / 3.0f, 1e-6);
  }
}

TEST(Relu, ClampsNegatives) {
  Tensor a = Tensor::FromVector({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor r = Relu(a);
  EXPECT_FLOAT_EQ(r.at(0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(1), 0.0f);
  EXPECT_FLOAT_EQ(r.at(2), 2.0f);
  EXPECT_FLOAT_EQ(r.at(3), 0.0f);
}

TEST(GatherRows, SelectsRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  IdArray idx = IdArray::FromVector({2, 0, 2});
  Tensor g = GatherRows(a, idx);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(GatherRows, OutOfRangeThrows) {
  Tensor a = Tensor::Zeros({3, 2});
  IdArray idx = IdArray::FromVector({3});
  EXPECT_THROW(GatherRows(a, idx), Error);
  IdArray neg = IdArray::FromVector({-1});
  EXPECT_THROW(GatherRows(a, neg), Error);
}

TEST(SumAxis, BothAxes) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor rows = SumAxis(a, 1);  // sum columns away -> per row
  EXPECT_FLOAT_EQ(rows.at(0), 6.0f);
  EXPECT_FLOAT_EQ(rows.at(1), 15.0f);
  Tensor cols = SumAxis(a, 0);
  EXPECT_FLOAT_EQ(cols.at(0), 5.0f);
  EXPECT_FLOAT_EQ(cols.at(2), 9.0f);
  EXPECT_FLOAT_EQ(SumAll(a), 21.0f);
}

TEST(Transpose, RoundTrip) {
  Rng rng(7);
  Tensor a = Tensor::Randn({4, 6}, rng);
  Tensor t = Transpose(a);
  ASSERT_EQ(t.rows(), 6);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_FLOAT_EQ(t.at(j, i), a.at(i, j));
    }
  }
}

TEST(StackColumns, BuildsMatrix) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  std::vector<Tensor> cols = {a, b};
  Tensor s = StackColumns(cols);
  ASSERT_EQ(s.rows(), 3);
  ASSERT_EQ(s.cols(), 2);
  EXPECT_FLOAT_EQ(s.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 5.0f);
}

TEST(StackColumns, MismatchedLengthsThrow) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({2}, {4, 5});
  std::vector<Tensor> cols = {a, b};
  EXPECT_THROW(StackColumns(cols), Error);
}

TEST(ArgmaxRows, PicksLargest) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 2, 7, 1, 3});
  IdArray m = ArgmaxRows(a);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 0);
}

TEST(Randn, Deterministic) {
  Rng a(99);
  Rng b(99);
  Tensor x = Tensor::Randn({5}, a);
  Tensor y = Tensor::Randn({5}, b);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(x.at(i), y.at(i));
  }
}

}  // namespace
}  // namespace gs::tensor
