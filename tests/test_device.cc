// Unit tests for device/: caching allocator, virtual-clock stream, device
// profiles, UVA cache.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"
#include "device/allocator.h"
#include "device/array.h"
#include "device/device.h"
#include "device/profile.h"
#include "device/stream.h"
#include "feature/hot_set_cache.h"

namespace gs::device {
namespace {

TEST(Allocator, ReusesFreedBlocks) {
  CachingAllocator alloc(1 << 20);
  void* a = alloc.Allocate(1000);
  alloc.Free(a);
  void* b = alloc.Allocate(900);  // same 1024-byte class
  EXPECT_EQ(a, b);
  EXPECT_EQ(alloc.stats().cache_hits, 1);
  alloc.Free(b);
}

TEST(Allocator, PeakTracksHighWater) {
  CachingAllocator alloc(1 << 20);
  void* a = alloc.Allocate(4096);
  void* b = alloc.Allocate(4096);
  const int64_t peak = alloc.stats().peak_bytes_in_use;
  EXPECT_GE(peak, 8192);
  alloc.Free(a);
  alloc.Free(b);
  EXPECT_EQ(alloc.stats().bytes_in_use, 0);
  EXPECT_EQ(alloc.stats().peak_bytes_in_use, peak);
  alloc.ResetPeak();
  EXPECT_EQ(alloc.stats().peak_bytes_in_use, 0);
}

TEST(Allocator, SizeClassesRoundUp) {
  CachingAllocator alloc(1 << 22);
  void* a = alloc.Allocate(1);
  alloc.Free(a);
  EXPECT_EQ(alloc.stats().bytes_cached, 512);  // minimum class
  void* b = alloc.Allocate(5000);
  alloc.Free(b);
  EXPECT_EQ(alloc.stats().bytes_cached, 512 + 8192);  // pow2 class above 4K
}

TEST(Allocator, OutOfMemoryThrowsAfterCacheRelease) {
  CachingAllocator alloc(16 * 1024);
  void* a = alloc.Allocate(8 * 1024);
  EXPECT_THROW(alloc.Allocate(12 * 1024), Error);
  alloc.Free(a);
  // Freed block is cached; a different-class allocation must still succeed
  // by releasing the cache.
  void* b = alloc.Allocate(16 * 1024);
  EXPECT_NE(b, nullptr);
  alloc.Free(b);
}

TEST(Allocator, FreeUnknownPointerThrows) {
  CachingAllocator alloc(1 << 20);
  int x = 0;
  EXPECT_THROW(alloc.Free(&x), Error);
}

TEST(Allocator, AccountingConsistentAcrossFreeListReuse) {
  // bytes_in_use / bytes_cached must partition the footprint exactly as
  // blocks move between the live set and the free list, and the peak must
  // reflect true high water only — not free-list round trips.
  CachingAllocator alloc(1 << 20);
  void* a = alloc.Allocate(4096);
  void* b = alloc.Allocate(700);  // 1024-byte class
  EXPECT_EQ(alloc.stats().bytes_in_use, 4096 + 1024);
  EXPECT_EQ(alloc.stats().bytes_cached, 0);
  const int64_t peak = alloc.stats().peak_bytes_in_use;
  EXPECT_EQ(peak, 4096 + 1024);

  alloc.Free(a);
  EXPECT_EQ(alloc.stats().bytes_in_use, 1024);
  EXPECT_EQ(alloc.stats().bytes_cached, 4096);

  // Reuse from the free list: in_use rises, cached falls, peak unchanged.
  void* c = alloc.Allocate(4000);
  EXPECT_EQ(c, a);
  EXPECT_EQ(alloc.stats().bytes_in_use, 4096 + 1024);
  EXPECT_EQ(alloc.stats().bytes_cached, 0);
  EXPECT_EQ(alloc.stats().peak_bytes_in_use, peak);
  EXPECT_EQ(alloc.stats().cache_hits, 1);

  // Repeated free/reuse cycles keep the partition exact and never move peak.
  for (int i = 0; i < 10; ++i) {
    alloc.Free(c);
    EXPECT_EQ(alloc.stats().bytes_in_use + alloc.stats().bytes_cached, 4096 + 1024);
    c = alloc.Allocate(4096);
    EXPECT_EQ(alloc.stats().peak_bytes_in_use, peak);
  }
  alloc.Free(b);
  alloc.Free(c);
  EXPECT_EQ(alloc.stats().bytes_in_use, 0);
  EXPECT_EQ(alloc.stats().bytes_cached, 4096 + 1024);
  EXPECT_EQ(alloc.stats().peak_bytes_in_use, peak);
  alloc.ReleaseCache();
  EXPECT_EQ(alloc.stats().bytes_cached, 0);
}

TEST(Allocator, AdjustReservedBalancesAndRejectsOverRelease) {
  CachingAllocator alloc(1 << 20);
  alloc.AdjustReserved(1000);
  EXPECT_EQ(alloc.stats().bytes_reserved, 1000);
  alloc.AdjustReserved(-400);
  EXPECT_EQ(alloc.stats().bytes_reserved, 600);
  // Releasing more than was pinned is an accounting bug, not a clamp.
  EXPECT_THROW(alloc.AdjustReserved(-5000), Error);
  alloc.AdjustReserved(-600);
  EXPECT_EQ(alloc.stats().bytes_reserved, 0);
}

TEST(Allocator, ConcurrentAllocFreeAccountingStaysConsistent) {
  // Exercised under GS_SANITIZE=thread by tools/check.sh: several threads
  // allocate and free concurrently; the books must balance exactly when
  // they are done, and every snapshot mid-flight must stay within capacity.
  CachingAllocator alloc(8 << 20);
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&alloc, t] {
      std::vector<void*> held;
      for (int i = 0; i < kIters; ++i) {
        held.push_back(alloc.Allocate(512 + 64 * ((t * kIters + i) % 7)));
        if (held.size() > 8) {
          alloc.Free(held.front());
          held.erase(held.begin());
        }
        const AllocatorStats snap = alloc.stats();
        EXPECT_GE(snap.bytes_in_use, 0);
        EXPECT_LE(snap.bytes_in_use, alloc.capacity_bytes());
        EXPECT_GE(snap.peak_bytes_in_use, snap.bytes_in_use);
      }
      for (void* p : held) {
        alloc.Free(p);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const AllocatorStats done = alloc.stats();
  EXPECT_EQ(done.bytes_in_use, 0);
  EXPECT_EQ(done.alloc_calls, kThreads * kIters);
  EXPECT_LE(done.cache_hits, done.alloc_calls);
  EXPECT_GE(done.peak_bytes_in_use, 512);
}

TEST(Stream, LaunchOverheadCharged) {
  DeviceProfile p = V100Sim();
  Stream stream(p);
  stream.RecordKernel(/*cpu_ns=*/1000, KernelStats{});
  EXPECT_EQ(stream.counters().kernels_launched, 1);
  EXPECT_GE(stream.counters().virtual_ns, 1000 + p.launch_overhead_ns);
}

TEST(Stream, T4SlowerThanV100) {
  Stream v100(V100Sim());
  Stream t4(T4Sim());
  KernelStats stats{.parallel_items = 1000, .hbm_bytes = 1 << 20, .pcie_bytes = 0};
  v100.RecordKernel(100000, stats);
  t4.RecordKernel(100000, stats);
  EXPECT_GT(t4.counters().virtual_ns, v100.counters().virtual_ns);
}

TEST(Stream, PcieBytesCharged) {
  DeviceProfile p = V100Sim();
  Stream with_pcie(p);
  Stream without(p);
  with_pcie.RecordKernel(1000, {.parallel_items = 1, .hbm_bytes = 0, .pcie_bytes = 1 << 20});
  without.RecordKernel(1000, {.parallel_items = 1, .hbm_bytes = 0, .pcie_bytes = 0});
  EXPECT_GT(with_pcie.counters().virtual_ns, without.counters().virtual_ns);
}

TEST(Stream, OccupancyProxy) {
  DeviceProfile p = V100Sim();
  Stream low(p);
  Stream high(p);
  low.RecordKernel(10000, {.parallel_items = 16});
  high.RecordKernel(10000, {.parallel_items = p.sm_saturation_items * 2});
  EXPECT_LT(low.counters().SmUtilizationPercent(), 5.0);
  EXPECT_GT(high.counters().SmUtilizationPercent(), 90.0);
}

TEST(Stream, InterconnectBytesCharged) {
  DeviceProfile p = V100Sim();
  EXPECT_GT(p.interconnect_ns_per_byte, 0.0);
  Stream with_exchange(p);
  Stream without(p);
  with_exchange.RecordKernel(1000, {.parallel_items = 1, .interconnect_bytes = 1 << 20});
  without.RecordKernel(1000, {.parallel_items = 1});
  EXPECT_GT(with_exchange.counters().virtual_ns, without.counters().virtual_ns);
  EXPECT_EQ(with_exchange.counters().interconnect_bytes, 1 << 20);
  EXPECT_EQ(without.counters().interconnect_bytes, 0);
}

TEST(Profile, ValidateRejectsNegativeBandwidthCharges) {
  DeviceProfile p = V100Sim();
  p.Validate();  // presets must validate
  DeviceProfile bad_pcie = p;
  bad_pcie.pcie_ns_per_byte = -0.1;
  EXPECT_THROW(bad_pcie.Validate(), Error);
  DeviceProfile bad_hbm = p;
  bad_hbm.hbm_penalty_ns_per_byte = -1.0;
  EXPECT_THROW(bad_hbm.Validate(), Error);
  DeviceProfile bad_interconnect = p;
  bad_interconnect.interconnect_ns_per_byte = -0.5;
  EXPECT_THROW(bad_interconnect.Validate(), Error);
  // A Stream refuses to be built over an invalid profile.
  EXPECT_THROW(Stream{bad_interconnect}, Error);
}

TEST(Profile, HostReadBandwidthValidatedAndCharged) {
  // Feature-gather misses read host DRAM before crossing PCIe; the presets
  // model that at ~40 GB/s, CpuSim charges nothing ("host" memory IS the
  // device memory), and a negative rate is rejected like every other
  // bandwidth term.
  EXPECT_EQ(V100Sim().host_read_ns_per_byte, kHostReadNsPerByte);
  EXPECT_EQ(T4Sim().host_read_ns_per_byte, kHostReadNsPerByte);
  EXPECT_EQ(CpuSim("cpu", 40.0).host_read_ns_per_byte, 0.0);
  DeviceProfile bad = V100Sim();
  bad.host_read_ns_per_byte = -0.01;
  EXPECT_THROW(bad.Validate(), Error);
  EXPECT_THROW(Stream{bad}, Error);

  // host_bytes advance the clock by exactly the host-read term on top of an
  // otherwise identical kernel.
  const DeviceProfile p = V100Sim();
  Stream with_host(p);
  Stream without(p);
  constexpr int64_t kBytes = 1 << 20;
  with_host.RecordKernel(1000, {.parallel_items = 1, .host_bytes = kBytes});
  without.RecordKernel(1000, {.parallel_items = 1});
  EXPECT_EQ(with_host.counters().host_bytes, kBytes);
  EXPECT_EQ(without.counters().host_bytes, 0);
  EXPECT_EQ(with_host.counters().virtual_ns - without.counters().virtual_ns,
            static_cast<int64_t>(static_cast<double>(kBytes) * p.host_read_ns_per_byte));
}

TEST(Profile, InterconnectPresetIsFasterThanPcie) {
  // NVLink-class interconnect: faster per byte than PCIe 3.0 x16. The T4
  // preset has no NVLink, so its peers talk at PCIe rate; CpuSim has no
  // interconnect at all.
  EXPECT_GT(Interconnect(), 0.0);
  EXPECT_LT(Interconnect(), kPcieNsPerByte);
  EXPECT_EQ(V100Sim().interconnect_ns_per_byte, Interconnect());
  EXPECT_EQ(T4Sim().interconnect_ns_per_byte, kPcieNsPerByte);
  EXPECT_EQ(CpuSim("cpu", 40.0).interconnect_ns_per_byte, 0.0);
}

TEST(Device, GuardSwitchesCurrent) {
  Device& before = Current();
  {
    Device t4(T4Sim());
    DeviceGuard guard(t4);
    EXPECT_EQ(&Current(), &t4);
  }
  EXPECT_EQ(&Current(), &before);
}

TEST(Device, ThreadDeviceGuardOverridesPerThread) {
  Device& before = Current();
  Device shard0(V100Sim());
  Device shard1(V100Sim());
  // The override is thread-local: two threads pin different devices
  // concurrently without touching the process-global current device.
  std::thread t0([&] {
    ThreadDeviceGuard guard(shard0);
    EXPECT_EQ(&Current(), &shard0);
  });
  std::thread t1([&] {
    ThreadDeviceGuard guard(shard1);
    EXPECT_EQ(&Current(), &shard1);
  });
  t0.join();
  t1.join();
  EXPECT_EQ(&Current(), &before);
  // Nesting restores the outer override, and the thread override wins over
  // the process-global guard.
  {
    DeviceGuard global(shard0);
    ThreadDeviceGuard outer(shard1);
    {
      ThreadDeviceGuard inner(shard0);
      EXPECT_EQ(&Current(), &shard0);
    }
    EXPECT_EQ(&Current(), &shard1);
  }
  EXPECT_EQ(&Current(), &before);
}

TEST(Array, DeviceAllocationCounted) {
  Device dev(V100Sim());
  DeviceGuard guard(dev);
  const int64_t before = dev.allocator().stats().bytes_in_use;
  {
    auto a = Array<float>::Empty(1000);
    EXPECT_GT(dev.allocator().stats().bytes_in_use, before);
    (void)a;
  }
  EXPECT_EQ(dev.allocator().stats().bytes_in_use, before);
}

TEST(Array, SharedHandleSemantics) {
  auto a = Array<int32_t>::FromVector({1, 2, 3});
  Array<int32_t> alias = a;
  alias[0] = 42;
  EXPECT_EQ(a[0], 42);
  Array<int32_t> deep = a.Clone();
  deep[0] = 7;
  EXPECT_EQ(a[0], 42);
}

TEST(Array, HostSpaceBypassesAllocator) {
  Device dev(V100Sim());
  DeviceGuard guard(dev);
  const int64_t before = dev.allocator().stats().bytes_in_use;
  auto a = Array<float>::Empty(4096, MemorySpace::kHost);
  EXPECT_EQ(dev.allocator().stats().bytes_in_use, before);
  EXPECT_EQ(a.space(), MemorySpace::kHost);
}

TEST(UvaCache, HitAfterInstall) {
  feature::HotSetCache cache(64);
  EXPECT_EQ(cache.Access(5, 100), 100);  // miss: full charge
  EXPECT_EQ(cache.Access(5, 100), 0);    // hit
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(UvaCache, ConflictEvicts) {
  feature::HotSetCache cache(1);  // single slot: every distinct key conflicts
  EXPECT_EQ(cache.Access(1, 10), 10);
  EXPECT_EQ(cache.Access(2, 10), 10);
  EXPECT_EQ(cache.Access(1, 10), 10);  // evicted by key 2
}

TEST(UvaCache, ResetClears) {
  feature::HotSetCache cache(64);
  cache.Access(3, 8);
  cache.Reset();
  EXPECT_EQ(cache.Access(3, 8), 8);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(Profile, T4RatiosMatchPaper) {
  DeviceProfile t4 = T4Sim();
  // T4 FLOPS = 51.6% of V100 -> compute_scale ~ 1.94.
  EXPECT_NEAR(t4.compute_scale, 1.0 / 0.516, 1e-6);
  EXPECT_GT(t4.hbm_penalty_ns_per_byte, 0.0);
}

TEST(Profile, CpuSimHasNoPcie) {
  DeviceProfile cpu = CpuSim("test-cpu", 40.0);
  EXPECT_EQ(cpu.pcie_ns_per_byte, 0.0);
  EXPECT_EQ(cpu.compute_scale, 40.0);
}

}  // namespace
}  // namespace gs::device
