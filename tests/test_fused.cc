// Tests for the fused edge-map / edge-map-reduce kernels: every stage kind
// matches its unfused reference, chains compose, and reductions never
// materialize intermediates yet agree with the two-kernel result.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sparse/fused.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"
#include "tests/testing.h"

namespace gs::sparse {
namespace {

using gs::testing::EdgeSet;
using tensor::Tensor;

EdgeMapStage ScalarStage(BinaryOp op, float s) {
  EdgeMapStage stage;
  stage.op = op;
  stage.kind = EdgeMapStage::OperandKind::kScalar;
  stage.scalar = s;
  return stage;
}

TEST(FusedEdgeMap, ScalarStageMatchesEltwise) {
  graph::Graph g = gs::testing::ToyGraph();
  std::vector<EdgeMapStage> stages = {ScalarStage(BinaryOp::kPow, 2.0f)};
  Matrix fused = FusedEdgeMap(g.adj(), stages, {});
  Matrix reference = EltwiseScalar(g.adj(), BinaryOp::kPow, 2.0f);
  EXPECT_EQ(EdgeSet(fused), EdgeSet(reference));
}

TEST(FusedEdgeMap, RowAndColVectorStages) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Rng rng(3);
  Tensor row_vec = Tensor::Randn({m.num_rows()}, rng);
  Tensor col_vec = Tensor::Randn({m.num_cols()}, rng);
  for (auto& v : row_vec.span()) {
    v = std::abs(v) + 0.1f;
  }
  for (auto& v : col_vec.span()) {
    v = std::abs(v) + 0.1f;
  }

  EdgeMapStage by_row;
  by_row.op = BinaryOp::kMul;
  by_row.kind = EdgeMapStage::OperandKind::kRowVector;
  by_row.operand = 0;
  EdgeMapStage by_col;
  by_col.op = BinaryOp::kDiv;
  by_col.kind = EdgeMapStage::OperandKind::kColVector;
  by_col.operand = 1;
  std::vector<EdgeMapStage> stages = {by_row, by_col};
  std::vector<Tensor> operands = {row_vec, col_vec};
  Matrix fused = FusedEdgeMap(m, stages, operands);

  Matrix reference =
      Broadcast(Broadcast(m, BinaryOp::kMul, row_vec.array(), 0), BinaryOp::kDiv,
                col_vec.array(), 1);
  const auto ref = EdgeSet(reference);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, ref.at(edge), 1e-5);
  }
}

TEST(FusedEdgeMap, DotStageMatchesSddmm) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Rng rng(5);
  Tensor u = Tensor::Randn({m.num_rows(), 4}, rng);
  Tensor v = Tensor::Randn({m.num_cols(), 4}, rng);

  EdgeMapStage dot;
  dot.op = BinaryOp::kMul;
  dot.kind = EdgeMapStage::OperandKind::kDot;
  dot.operand = 0;
  dot.operand2 = 1;
  std::vector<EdgeMapStage> stages = {dot};
  std::vector<Tensor> operands = {u, v};
  Matrix fused = FusedEdgeMap(m, stages, operands);
  Matrix reference = Sddmm(m, u, v, /*mul_existing=*/true);
  const auto ref = EdgeSet(reference);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, ref.at(edge), 1e-4);
  }
}

TEST(FusedEdgeMap, EdgeTensorStage) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Tensor edge_vals = Tensor::Full({m.nnz()}, 3.0f);
  EdgeMapStage stage;
  stage.op = BinaryOp::kAdd;
  stage.kind = EdgeMapStage::OperandKind::kEdgeTensor;
  stage.operand = 0;
  std::vector<EdgeMapStage> stages = {stage};
  std::vector<Tensor> operands = {edge_vals};
  Matrix fused = FusedEdgeMap(m, stages, operands);
  const auto base = EdgeSet(m);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, base.at(edge) + 3.0f, 1e-5);
  }
}

class ReduceAxis : public ::testing::TestWithParam<int> {};

TEST_P(ReduceAxis, FusedReduceMatchesMapThenSum) {
  const int axis = GetParam();
  graph::Graph g = gs::testing::SmallRmat();
  tensor::IdArray cols = tensor::IdArray::FromVector({1, 5, 9, 13});
  Matrix sub = SliceColumns(g.adj(), cols);

  std::vector<EdgeMapStage> stages = {ScalarStage(BinaryOp::kPow, 2.0f),
                                      ScalarStage(BinaryOp::kMul, 0.5f)};
  ValueArray fused = FusedEdgeMapReduce(sub, stages, {}, axis);

  Matrix mapped = EltwiseScalar(EltwiseScalar(sub, BinaryOp::kPow, 2.0f), BinaryOp::kMul, 0.5f);
  ValueArray reference = SumAxis(mapped, axis);
  ASSERT_EQ(fused.size(), reference.size());
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused[i], reference[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, ReduceAxis, ::testing::Values(0, 1));

TEST(FusedEdgeMap, GlobalRowOperandThroughRowIds) {
  graph::Graph g = gs::testing::SmallRmat();
  tensor::IdArray cols = tensor::IdArray::FromVector({2, 3});
  Matrix sub = CompactRows(SliceColumns(g.adj(), cols));
  Tensor global = Tensor::Empty({g.num_nodes()});
  for (int64_t i = 0; i < global.numel(); ++i) {
    global.at(i) = static_cast<float>(i);
  }
  EdgeMapStage stage;
  stage.op = BinaryOp::kMul;
  stage.kind = EdgeMapStage::OperandKind::kRowVector;
  stage.operand = 0;
  std::vector<EdgeMapStage> stages = {stage};
  std::vector<Tensor> operands = {global};
  Matrix fused = FusedEdgeMap(sub, stages, operands);
  const auto base = EdgeSet(sub);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, base.at(edge) * static_cast<float>(edge.first), 1e-4);
  }
}

TEST(FusedEdgeMap, BadOperandIndexThrows) {
  graph::Graph g = gs::testing::ToyGraph();
  EdgeMapStage stage;
  stage.op = BinaryOp::kMul;
  stage.kind = EdgeMapStage::OperandKind::kRowVector;
  stage.operand = 2;  // no such operand
  std::vector<EdgeMapStage> stages = {stage};
  EXPECT_THROW(FusedEdgeMap(g.adj(), stages, {}), Error);
}

TEST(FusedEdgeMapReduce, WrongOperandLengthThrows) {
  graph::Graph g = gs::testing::ToyGraph();
  EdgeMapStage stage;
  stage.op = BinaryOp::kMul;
  stage.kind = EdgeMapStage::OperandKind::kColVector;
  stage.operand = 0;
  std::vector<EdgeMapStage> stages = {stage};
  std::vector<Tensor> operands = {Tensor::Full({3}, 1.0f)};  // num_cols is 7
  EXPECT_THROW(FusedEdgeMapReduce(g.adj(), stages, operands, 0), Error);
}

}  // namespace
}  // namespace gs::sparse
