// Tests for the fused edge-map / edge-map-reduce kernels: every stage kind
// matches its unfused reference, chains compose, and reductions never
// materialize intermediates yet agree with the two-kernel result. The
// golden section at the bottom pins exact outputs for all three fused ops
// on the toy graph and re-asserts them against both backends (interpreter
// and JIT), so a regression in either one trips a hard-coded expectation
// rather than only the self-consistency oracle.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/error.h"
#include "core/executor.h"
#include "core/ir.h"
#include "core/plan.h"
#include "jit/jit.h"
#include "sparse/fused.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"
#include "tests/testing.h"

namespace gs::sparse {
namespace {

using gs::testing::EdgeSet;
using tensor::Tensor;

EdgeMapStage ScalarStage(BinaryOp op, float s) {
  EdgeMapStage stage;
  stage.op = op;
  stage.kind = EdgeMapStage::OperandKind::kScalar;
  stage.scalar = s;
  return stage;
}

TEST(FusedEdgeMap, ScalarStageMatchesEltwise) {
  graph::Graph g = gs::testing::ToyGraph();
  std::vector<EdgeMapStage> stages = {ScalarStage(BinaryOp::kPow, 2.0f)};
  Matrix fused = FusedEdgeMap(g.adj(), stages, {});
  Matrix reference = EltwiseScalar(g.adj(), BinaryOp::kPow, 2.0f);
  EXPECT_EQ(EdgeSet(fused), EdgeSet(reference));
}

TEST(FusedEdgeMap, RowAndColVectorStages) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Rng rng(3);
  Tensor row_vec = Tensor::Randn({m.num_rows()}, rng);
  Tensor col_vec = Tensor::Randn({m.num_cols()}, rng);
  for (auto& v : row_vec.span()) {
    v = std::abs(v) + 0.1f;
  }
  for (auto& v : col_vec.span()) {
    v = std::abs(v) + 0.1f;
  }

  EdgeMapStage by_row;
  by_row.op = BinaryOp::kMul;
  by_row.kind = EdgeMapStage::OperandKind::kRowVector;
  by_row.operand = 0;
  EdgeMapStage by_col;
  by_col.op = BinaryOp::kDiv;
  by_col.kind = EdgeMapStage::OperandKind::kColVector;
  by_col.operand = 1;
  std::vector<EdgeMapStage> stages = {by_row, by_col};
  std::vector<Tensor> operands = {row_vec, col_vec};
  Matrix fused = FusedEdgeMap(m, stages, operands);

  Matrix reference =
      Broadcast(Broadcast(m, BinaryOp::kMul, row_vec.array(), 0), BinaryOp::kDiv,
                col_vec.array(), 1);
  const auto ref = EdgeSet(reference);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, ref.at(edge), 1e-5);
  }
}

TEST(FusedEdgeMap, DotStageMatchesSddmm) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Rng rng(5);
  Tensor u = Tensor::Randn({m.num_rows(), 4}, rng);
  Tensor v = Tensor::Randn({m.num_cols(), 4}, rng);

  EdgeMapStage dot;
  dot.op = BinaryOp::kMul;
  dot.kind = EdgeMapStage::OperandKind::kDot;
  dot.operand = 0;
  dot.operand2 = 1;
  std::vector<EdgeMapStage> stages = {dot};
  std::vector<Tensor> operands = {u, v};
  Matrix fused = FusedEdgeMap(m, stages, operands);
  Matrix reference = Sddmm(m, u, v, /*mul_existing=*/true);
  const auto ref = EdgeSet(reference);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, ref.at(edge), 1e-4);
  }
}

TEST(FusedEdgeMap, EdgeTensorStage) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Tensor edge_vals = Tensor::Full({m.nnz()}, 3.0f);
  EdgeMapStage stage;
  stage.op = BinaryOp::kAdd;
  stage.kind = EdgeMapStage::OperandKind::kEdgeTensor;
  stage.operand = 0;
  std::vector<EdgeMapStage> stages = {stage};
  std::vector<Tensor> operands = {edge_vals};
  Matrix fused = FusedEdgeMap(m, stages, operands);
  const auto base = EdgeSet(m);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, base.at(edge) + 3.0f, 1e-5);
  }
}

class ReduceAxis : public ::testing::TestWithParam<int> {};

TEST_P(ReduceAxis, FusedReduceMatchesMapThenSum) {
  const int axis = GetParam();
  graph::Graph g = gs::testing::SmallRmat();
  tensor::IdArray cols = tensor::IdArray::FromVector({1, 5, 9, 13});
  Matrix sub = SliceColumns(g.adj(), cols);

  std::vector<EdgeMapStage> stages = {ScalarStage(BinaryOp::kPow, 2.0f),
                                      ScalarStage(BinaryOp::kMul, 0.5f)};
  ValueArray fused = FusedEdgeMapReduce(sub, stages, {}, axis);

  Matrix mapped = EltwiseScalar(EltwiseScalar(sub, BinaryOp::kPow, 2.0f), BinaryOp::kMul, 0.5f);
  ValueArray reference = SumAxis(mapped, axis);
  ASSERT_EQ(fused.size(), reference.size());
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused[i], reference[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Axes, ReduceAxis, ::testing::Values(0, 1));

TEST(FusedEdgeMap, GlobalRowOperandThroughRowIds) {
  graph::Graph g = gs::testing::SmallRmat();
  tensor::IdArray cols = tensor::IdArray::FromVector({2, 3});
  Matrix sub = CompactRows(SliceColumns(g.adj(), cols));
  Tensor global = Tensor::Empty({g.num_nodes()});
  for (int64_t i = 0; i < global.numel(); ++i) {
    global.at(i) = static_cast<float>(i);
  }
  EdgeMapStage stage;
  stage.op = BinaryOp::kMul;
  stage.kind = EdgeMapStage::OperandKind::kRowVector;
  stage.operand = 0;
  std::vector<EdgeMapStage> stages = {stage};
  std::vector<Tensor> operands = {global};
  Matrix fused = FusedEdgeMap(sub, stages, operands);
  const auto base = EdgeSet(sub);
  for (const auto& [edge, w] : EdgeSet(fused)) {
    EXPECT_NEAR(w, base.at(edge) * static_cast<float>(edge.first), 1e-4);
  }
}

TEST(FusedEdgeMap, BadOperandIndexThrows) {
  graph::Graph g = gs::testing::ToyGraph();
  EdgeMapStage stage;
  stage.op = BinaryOp::kMul;
  stage.kind = EdgeMapStage::OperandKind::kRowVector;
  stage.operand = 2;  // no such operand
  std::vector<EdgeMapStage> stages = {stage};
  EXPECT_THROW(FusedEdgeMap(g.adj(), stages, {}), Error);
}

TEST(FusedEdgeMapReduce, WrongOperandLengthThrows) {
  graph::Graph g = gs::testing::ToyGraph();
  EdgeMapStage stage;
  stage.op = BinaryOp::kMul;
  stage.kind = EdgeMapStage::OperandKind::kColVector;
  stage.operand = 0;
  std::vector<EdgeMapStage> stages = {stage};
  std::vector<Tensor> operands = {Tensor::Full({3}, 1.0f)};  // num_cols is 7
  EXPECT_THROW(FusedEdgeMapReduce(g.adj(), stages, operands, 0), Error);
}

// ----------------------------------------------------------------- goldens
//
// Fixed inputs, hard-coded outputs: the toy graph, the scalar pipeline
// [pow 2, mul 0.5], fanout 2, Rng(123). Each golden is asserted twice —
// once against the interpreter kernel and once against a JIT table built
// from a minimal one-node program — so the two backends are pinned to the
// same recorded behaviour, not merely to each other.

// Compiles a single-fused-node program and returns the JIT table plus the
// surviving node's id (passes may renumber but never remove the sole
// output).
std::shared_ptr<const gs::core::FusedKernelTable> GoldenTable(
    gs::core::Program program, gs::jit::JitEngine& engine, const std::string& label,
    gs::core::OpKind kind, int* node_id) {
  auto plan = std::make_shared<gs::core::CompiledPlan>(std::move(program),
                                                       gs::core::SamplerOptions{}, label);
  *node_id = -1;
  for (int i = 0; i < plan->program().size(); ++i) {
    if (plan->program().node(i).kind == kind) {
      *node_id = i;
    }
  }
  EXPECT_NE(*node_id, -1) << label << ": fused node survived compilation";
  return engine.TableFor(*plan);
}

gs::jit::JitEngine& GoldenEngine() {
  static gs::jit::JitEngine* engine = [] {
    const std::string dir = ::testing::TempDir() + "gs_fused_goldens";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    gs::jit::JitEngineOptions options;
    options.artifact_dir = dir;
    return new gs::jit::JitEngine(options);
  }();
  return *engine;
}

std::vector<EdgeMapStage> GoldenStages() {
  return {ScalarStage(BinaryOp::kPow, 2.0f), ScalarStage(BinaryOp::kMul, 0.5f)};
}

TEST(FusedGoldens, EdgeMapScalarPipeline) {
  graph::Graph g = gs::testing::ToyGraph();
  // 0.5 * w^2 per edge, CSC order (columns 0..6, in-edge weights as listed
  // in ToyGraph).
  const std::vector<float> golden = {0.125f,        0.320000023f, 0.0450000018f,
                                     0.0200000014f, 0.180000007f, 0.24499999f,
                                     0.0800000057f, 0.125f,       0.0450000018f,
                                     0.404999971f,  0.180000007f, 0.24499999f};
  Matrix interp = FusedEdgeMap(g.adj(), GoldenStages(), {});
  ASSERT_EQ(interp.nnz(), static_cast<int64_t>(golden.size()));
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(interp.Csc().values[static_cast<int64_t>(i)], golden[i]) << "edge " << i;
  }

  gs::core::Program program;
  const int gin = program.Add(gs::core::OpKind::kGraphInput, {});
  gs::core::Attrs attrs;
  attrs.stages = GoldenStages();
  const int out = program.Add(gs::core::OpKind::kFusedEdgeMap, {gin}, attrs);
  program.SetOutputs({out});
  int node_id = -1;
  auto table = GoldenTable(std::move(program), GoldenEngine(), "golden-map",
                           gs::core::OpKind::kFusedEdgeMap, &node_id);
  ASSERT_NE(table, nullptr);
  Matrix jitted;
  ASSERT_TRUE(table->EdgeMap(node_id, g.adj(), {}, &jitted));
  ASSERT_EQ(jitted.nnz(), static_cast<int64_t>(golden.size()));
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(jitted.Csc().values[static_cast<int64_t>(i)], golden[i]) << "edge " << i;
  }
}

TEST(FusedGoldens, EdgeMapReduceRowSums) {
  graph::Graph g = gs::testing::ToyGraph();
  // Row sums of 0.5 * w^2 (axis 0).
  const std::vector<float> golden = {0.324999988f, 0.25f,         0.340000033f,
                                     0.180000007f, 0.225000009f, 0.289999992f,
                                     0.404999971f};
  ValueArray interp = FusedEdgeMapReduce(g.adj(), GoldenStages(), {}, /*axis=*/0);
  ASSERT_EQ(interp.size(), static_cast<int64_t>(golden.size()));
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(interp[static_cast<int64_t>(i)], golden[i]) << "row " << i;
  }

  gs::core::Program program;
  const int gin = program.Add(gs::core::OpKind::kGraphInput, {});
  gs::core::Attrs attrs;
  attrs.stages = GoldenStages();
  attrs.axis = 0;
  const int out = program.Add(gs::core::OpKind::kFusedEdgeMapReduce, {gin}, attrs);
  program.SetOutputs({out});
  int node_id = -1;
  auto table = GoldenTable(std::move(program), GoldenEngine(), "golden-reduce",
                           gs::core::OpKind::kFusedEdgeMapReduce, &node_id);
  ASSERT_NE(table, nullptr);
  ValueArray jitted;
  ASSERT_TRUE(table->EdgeMapReduce(node_id, g.adj(), {}, &jitted));
  ASSERT_EQ(jitted.size(), static_cast<int64_t>(golden.size()));
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(jitted[static_cast<int64_t>(i)], golden[i]) << "row " << i;
  }
}

TEST(FusedGoldens, SliceSampleFixedDraws) {
  graph::Graph g = gs::testing::ToyGraph();
  const tensor::IdArray cols = tensor::IdArray::FromVector({0, 1, 4});
  const int64_t k = 2;
  // (row, col, weight) triples of the sampled subgraph with Rng(123), in
  // CSC order.
  const std::vector<std::tuple<int32_t, int32_t, float>> golden = {
      {1, 0, 0.5f},          {2, 1, 0.200000003f}, {4, 0, 0.300000012f},
      {5, 1, 0.699999988f},  {5, 4, 0.300000012f}, {6, 4, 0.899999976f}};

  Rng interp_rng(123);
  Matrix interp = FusedSliceSample(g.adj(), cols, k, interp_rng);

  gs::core::Program program;
  const int gin = program.Add(gs::core::OpKind::kGraphInput, {});
  const int fin = program.Add(gs::core::OpKind::kFrontierInput, {});
  gs::core::Attrs attrs;
  attrs.k = k;
  const int out = program.Add(gs::core::OpKind::kFusedSliceSample, {gin, fin}, attrs);
  program.SetOutputs({out});
  int node_id = -1;
  auto table = GoldenTable(std::move(program), GoldenEngine(), "golden-sample",
                           gs::core::OpKind::kFusedSliceSample, &node_id);
  ASSERT_NE(table, nullptr);
  Rng jit_rng(123);
  Matrix jitted;
  ASSERT_TRUE(table->SliceSample(node_id, g.adj(), cols, jit_rng, &jitted));

  for (const Matrix* m : {&interp, &jitted}) {
    const auto edges = gs::testing::EdgeSet(*m);
    ASSERT_EQ(edges.size(), golden.size());
    for (const auto& [row, col, w] : golden) {
      auto it = edges.find({row, col});
      ASSERT_NE(it, edges.end()) << "edge (" << row << "," << col << ") missing";
      EXPECT_EQ(it->second, w);
    }
  }
}

}  // namespace
}  // namespace gs::sparse
