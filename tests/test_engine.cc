// Tests for the CompiledSampler engine: compiling and running all 15
// algorithms, pre-computation, super-batch execution, memory budgeting, and
// tensor re-binding.

#include <gtest/gtest.h>

#include <set>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "core/trace.h"
#include "device/device.h"
#include "tests/testing.h"

namespace gs::core {
namespace {

using tensor::IdArray;

IdArray Iota(int n, int start = 0) {
  std::vector<int32_t> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(start + i);
  }
  return IdArray::FromVector(v);
}

class AllAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithms, CompilesAndSamples) {
  const std::string name = GetParam();
  graph::Graph g = gs::testing::SmallRmat(250, 2500, 33, true);
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(name, g);
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  if (name == "HetGNN") {
    sampler.BindGraph("rel0", &g.adj());
    sampler.BindGraph("rel1", &g.adj());
  }
  std::vector<Value> out = sampler.Sample(Iota(16));
  EXPECT_FALSE(out.empty());
  // Any matrix output must reference valid original-graph ids.
  for (const Value& v : out) {
    if (v.kind == ValueKind::kMatrix) {
      for (const auto& [edge, w] : gs::testing::EdgeSet(v.matrix)) {
        EXPECT_GE(edge.first, 0);
        EXPECT_LT(edge.first, g.num_nodes());
        EXPECT_GE(edge.second, 0);
        EXPECT_LT(edge.second, g.num_nodes());
        (void)w;
      }
    }
    if (v.kind == ValueKind::kIds) {
      for (int64_t i = 0; i < v.ids.size(); ++i) {
        EXPECT_LT(v.ids[i], g.num_nodes());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, AllAlgorithms,
                         ::testing::ValuesIn(algorithms::AllAlgorithmNames()));

TEST(Engine, PrecomputesInvariantNodes) {
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::Ladies(g, {.num_layers = 2, .layer_width = 16});
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  // The hoisted A**2 must be marked invariant in the compiled program.
  int invariant_compute = 0;
  for (const Node& n : sampler.program().nodes()) {
    if (n.invariant && n.kind == OpKind::kEltwiseScalar) {
      ++invariant_compute;
    }
  }
  EXPECT_GE(invariant_compute, 1);
  EXPECT_NE(sampler.DebugString().find("precomputed="), std::string::npos);
}

TEST(Engine, OptimizationReportCountsPasses) {
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::Ladies(g, {.num_layers = 2, .layer_width = 16});
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  OptimizationReport before = sampler.report();
  EXPECT_GE(before.hoisted_ops, 2);             // A**2 hoisted in both layers
  EXPECT_GE(before.edge_map_reduce_fusions, 2); // normalization chains fused
  EXPECT_GE(before.cse_merged, 1);              // the hoisted A**2 deduped
  EXPECT_GE(before.precomputed_values, 1);
  EXPECT_EQ(before.annotated_layouts, 0);       // layouts not calibrated yet
  sampler.Sample(Iota(8));
  EXPECT_FALSE(sampler.report().ToString().empty());

  algorithms::AlgorithmProgram sage = algorithms::GraphSage(g, {.fanouts = {4}});
  SamplerOptions off;
  off.enable_fusion = false;
  off.enable_preprocessing = false;
  CompiledSampler plain(std::move(sage.program), g, std::move(sage.tensors), off);
  OptimizationReport none = plain.report();
  EXPECT_EQ(none.extract_select_fusions, 0);
  EXPECT_EQ(none.hoisted_ops, 0);
}

TEST(Engine, SuperBatchSplitsMatchFrontiers) {
  graph::Graph g = gs::testing::SmallRmat(400, 4000, 55, true);
  algorithms::AlgorithmProgram ap =
      algorithms::GraphSage(g, {.fanouts = {3, 2}, .include_seeds = false});
  SamplerOptions opts;
  opts.super_batch = 4;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  int batches = 0;
  sampler.SampleEpoch(Iota(64), 8, [&](int64_t index, std::vector<Value>& out) {
    ++batches;
    ASSERT_EQ(out.size(), 3u);
    // Layer-1 columns must be exactly this mini-batch's seeds.
    const sparse::Matrix& layer1 = out[0].matrix;
    ASSERT_EQ(layer1.num_cols(), 8);
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_EQ(layer1.GlobalColId(static_cast<int32_t>(c)),
                static_cast<int32_t>(index * 8 + c));
    }
    // Fanout bound per column.
    const sparse::Compressed& csc = layer1.Csc();
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_LE(csc.indptr[c + 1] - csc.indptr[c], 3);
    }
    // All ids are back in the original space.
    for (const auto& [edge, w] : gs::testing::EdgeSet(out[1].matrix)) {
      EXPECT_LT(edge.first, g.num_nodes());
      (void)w;
    }
    for (int64_t i = 0; i < out[2].ids.size(); ++i) {
      EXPECT_LT(out[2].ids[i], g.num_nodes());
    }
  });
  EXPECT_EQ(batches, 8);
}

TEST(Engine, SuperBatchLayerWise) {
  graph::Graph g = gs::testing::SmallRmat(300, 3000, 77, true);
  algorithms::AlgorithmProgram ap = algorithms::Ladies(g, {.num_layers = 2, .layer_width = 12});
  SamplerOptions opts;
  opts.super_batch = 2;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  int batches = 0;
  sampler.SampleEpoch(Iota(32), 8, [&](int64_t, std::vector<Value>& out) {
    ++batches;
    // Layer width bound holds per batch (not 2x): batches stay independent.
    const sparse::Matrix& w2 = out[0].matrix;
    EXPECT_LE(w2.num_rows(), 12);
  });
  EXPECT_EQ(batches, 4);
}

TEST(Engine, WalkProgramsSuperBatchByConcatenation) {
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::DeepWalk(g, {.walk_length = 5});
  SamplerOptions opts;
  opts.super_batch = 8;  // pure walk programs batch by concatenation
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  int batches = 0;
  const auto edges = gs::testing::EdgeSet(g.adj());
  sampler.SampleEpoch(Iota(32), 8, [&](int64_t index, std::vector<Value>& out) {
    ++batches;
    ASSERT_EQ(out.size(), 5u);
    // Traces stay aligned per batch: step 1 must be an in-neighbor of the
    // batch's own frontier (or -1).
    for (int64_t i = 0; i < 8; ++i) {
      const int32_t start = static_cast<int32_t>(index * 8 + i);
      const int32_t step1 = out[0].ids[i];
      if (step1 >= 0) {
        EXPECT_NE(edges.find({step1, start}), edges.end());
      }
    }
  });
  EXPECT_EQ(batches, 4);
}

TEST(Engine, MixedWalkProgramsSkipSuperBatch) {
  // GraphSAINT mixes walks with matrix outputs: not batchable.
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::GraphSaint(g, {.walk_length = 3});
  SamplerOptions opts;
  opts.super_batch = 4;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  int batches = 0;
  sampler.SampleEpoch(Iota(32), 8, [&](int64_t, std::vector<Value>& out) {
    ++batches;
    EXPECT_EQ(out.size(), 2u);
  });
  EXPECT_EQ(batches, 4);
}

TEST(Engine, AutoSuperBatchRespectsMemoryBudget) {
  graph::Graph g = gs::testing::SmallRmat(300, 3000, 88, true);
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {3, 2}});
  SamplerOptions opts;
  opts.super_batch = 0;                  // auto grid search
  opts.memory_budget_bytes = 64 * 1024;  // tiny budget -> small super-batch
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  sampler.SampleEpoch(Iota(64), 8, nullptr);
  EXPECT_GE(sampler.effective_super_batch(), 1);
  EXPECT_LE(sampler.effective_super_batch(), 8);
}

TEST(Engine, BindTensorRefreshesBias) {
  // GCN-BS with bandit weights concentrated on a single edge per column
  // must sample exactly that edge when k=1.
  graph::Graph g = gs::testing::SmallRmat(100, 1200, 99, false);
  algorithms::AlgorithmProgram ap = algorithms::GcnBs(g, {.fanouts = {1}});
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  // Weight vector: ~0 everywhere except the first edge of each column.
  tensor::Tensor biased = tensor::Tensor::Full({g.num_edges()}, 1e-8f);
  const sparse::Compressed& csc = g.adj().Csc();
  for (int64_t c = 0; c < g.num_nodes(); ++c) {
    if (csc.indptr[c + 1] > csc.indptr[c]) {
      biased.at(csc.indptr[c]) = 1.0f;
    }
  }
  sampler.BindTensor("bandit_w", biased);
  std::vector<Value> out = sampler.Sample(Iota(10, 1));
  const sparse::Matrix& sample = out[0].matrix;
  const sparse::Compressed& s = sample.Csc();
  for (int64_t c = 0; c < sample.num_cols(); ++c) {
    const int32_t col_global = sample.GlobalColId(static_cast<int32_t>(c));
    if (s.indptr[c + 1] > s.indptr[c]) {
      EXPECT_EQ(s.indices[s.indptr[c]], csc.indices[csc.indptr[col_global]]);
    }
  }
}

TEST(Engine, EpochWithoutSuperBatchEqualsPerBatchSampling) {
  // SampleEpoch with super_batch = 1 must behave exactly like calling
  // Sample per mini-batch (same rng stream, same results).
  graph::Graph g = gs::testing::SmallRmat();
  SamplerOptions opts;
  opts.super_batch = 1;

  algorithms::AlgorithmProgram ap1 = algorithms::GraphSage(g, {.fanouts = {3}});
  CompiledSampler epoch_sampler(std::move(ap1.program), g, std::move(ap1.tensors), opts);
  std::vector<std::map<std::pair<int32_t, int32_t>, float>> from_epoch;
  epoch_sampler.SampleEpoch(Iota(24), 8, [&](int64_t, std::vector<Value>& out) {
    from_epoch.push_back(gs::testing::EdgeSet(out[0].matrix));
  });

  algorithms::AlgorithmProgram ap2 = algorithms::GraphSage(g, {.fanouts = {3}});
  CompiledSampler batch_sampler(std::move(ap2.program), g, std::move(ap2.tensors), opts);
  for (int b = 0; b < 3; ++b) {
    std::vector<Value> out = batch_sampler.Sample(Iota(8, b * 8));
    EXPECT_EQ(gs::testing::EdgeSet(out[0].matrix), from_epoch[static_cast<size_t>(b)])
        << "batch " << b;
  }
}

TEST(Engine, SuperBatchStatisticallyMatchesPerBatch) {
  // Super-batched GraphSAGE must sample the same expected number of edges
  // per mini-batch as sequential sampling (independence across segments).
  graph::Graph g = gs::testing::SmallRmat(300, 6000, 3, true);
  auto mean_edges = [&](int super_batch) {
    algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {5}});
    SamplerOptions opts;
    opts.super_batch = super_batch;
    opts.seed = 99 + static_cast<uint64_t>(super_batch);
    CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
    int64_t edges = 0;
    int64_t batches = 0;
    sampler.SampleEpoch(Iota(128), 16, [&](int64_t, std::vector<Value>& out) {
      edges += out[0].matrix.nnz();
      ++batches;
    });
    EXPECT_EQ(batches, 8);
    return static_cast<double>(edges) / static_cast<double>(batches);
  };
  const double sequential = mean_edges(1);
  const double batched = mean_edges(8);
  EXPECT_NEAR(batched, sequential, sequential * 0.05);
}

TEST(BatchProducer, EmptySeedSetYieldsNoBatches) {
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {3}});
  SamplerOptions opts;
  opts.super_batch = 4;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  BatchProducer producer(sampler, IdArray::Empty(0), 8);
  EXPECT_EQ(producer.num_batches(), 0);
  EpochBatch batch;
  EXPECT_FALSE(producer.Next(&batch));
  EXPECT_FALSE(producer.Next(&batch));  // stays exhausted
  int callbacks = 0;
  sampler.SampleEpoch(IdArray::Empty(0), 8,
                      [&](int64_t, std::vector<Value>&) { ++callbacks; });
  EXPECT_EQ(callbacks, 0);
}

TEST(BatchProducer, FinalPartialBatchMatchesSoloSampling) {
  // 27 seeds at batch size 8: three full batches plus a final partial batch
  // of 3. Grouped into a super-batch of 4, every batch — including the
  // partial one — must equal what solo per-batch sampling produces.
  graph::Graph g = gs::testing::SmallRmat(400, 4000, 55, true);
  SamplerOptions grouped_opts;
  grouped_opts.super_batch = 4;
  algorithms::AlgorithmProgram ap1 = algorithms::GraphSage(g, {.fanouts = {3, 2}});
  CompiledSampler grouped(std::move(ap1.program), g, std::move(ap1.tensors), grouped_opts);

  SamplerOptions solo_opts;
  solo_opts.super_batch = 1;
  algorithms::AlgorithmProgram ap2 = algorithms::GraphSage(g, {.fanouts = {3, 2}});
  CompiledSampler solo(std::move(ap2.program), g, std::move(ap2.tensors), solo_opts);

  const IdArray seeds = Iota(27);
  BatchProducer producer(grouped, seeds, 8);
  EXPECT_EQ(producer.num_batches(), 4);

  std::vector<EpochBatch> grouped_batches;
  EpochBatch batch;
  while (producer.Next(&batch)) {
    grouped_batches.push_back(std::move(batch));
    batch = EpochBatch{};
  }
  ASSERT_EQ(grouped_batches.size(), 4u);
  EXPECT_EQ(grouped_batches.back().seeds.size(), 3);

  size_t b = 0;
  solo.SampleEpoch(seeds, 8, [&](int64_t index, std::vector<Value>& out) {
    ASSERT_LT(b, grouped_batches.size());
    EXPECT_EQ(grouped_batches[b].index, index);
    ASSERT_EQ(grouped_batches[b].outputs.size(), out.size());
    for (size_t o = 0; o < out.size(); ++o) {
      const Value& got = grouped_batches[b].outputs[o];
      const Value& want = out[o];
      ASSERT_EQ(got.kind, want.kind);
      if (want.kind == ValueKind::kMatrix) {
        EXPECT_EQ(gs::testing::EdgeSet(got.matrix), gs::testing::EdgeSet(want.matrix));
      } else if (want.kind == ValueKind::kIds) {
        ASSERT_EQ(got.ids.size(), want.ids.size());
        for (int64_t i = 0; i < want.ids.size(); ++i) {
          EXPECT_EQ(got.ids[i], want.ids[i]);
        }
      }
    }
    ++b;
  });
  EXPECT_EQ(b, 4u);
}

TEST(BatchProducer, SeedSetSmallerThanBatchSize) {
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {3}});
  SamplerOptions opts;
  opts.super_batch = 4;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  BatchProducer producer(sampler, Iota(3), 64);
  EXPECT_EQ(producer.num_batches(), 1);
  EpochBatch batch;
  ASSERT_TRUE(producer.Next(&batch));
  EXPECT_EQ(batch.seeds.size(), 3);
  EXPECT_FALSE(batch.outputs.empty());
  EXPECT_FALSE(producer.Next(&batch));
}

TEST(Engine, MissingTensorBindingThrows) {
  graph::Graph g = gs::testing::SmallRmat();
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  TVal w = b.Input("missing");
  b.Output(a.Cols(f).Mul(w, 0));
  Program p = std::move(b).Build();
  SamplerOptions opts;
  opts.enable_preprocessing = false;
  opts.enable_layout_selection = false;
  CompiledSampler sampler(std::move(p), g, {}, opts);
  EXPECT_THROW(sampler.Sample(Iota(4)), Error);
}

TEST(Engine, EmptyFrontierProducesEmptySample) {
  graph::Graph g = gs::testing::SmallRmat();
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {3}});
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  std::vector<Value> out = sampler.Sample(IdArray::FromVector(std::vector<int32_t>{}));
  EXPECT_EQ(out[0].matrix.num_cols(), 0);
  EXPECT_EQ(out[0].matrix.nnz(), 0);
}

TEST(Engine, UvaGraphChargesPcie) {
  graph::RMatParams params;
  params.num_nodes = 300;
  params.num_edges = 3000;
  params.uva = true;
  params.seed = 3;
  graph::Graph g = graph::MakeRMatGraph(params);
  ASSERT_TRUE(g.uva());
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {3, 2}});
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  const int64_t before = device::Current().stream().counters().pcie_bytes;
  sampler.Sample(Iota(16));
  EXPECT_GT(device::Current().stream().counters().pcie_bytes, before);
}

}  // namespace
}  // namespace gs::core
