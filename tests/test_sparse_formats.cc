// Property tests for sparse format storage and conversions: every format
// round-trips to the same logical edge set (with values) on random graphs.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sparse/matrix.h"
#include "tests/testing.h"

namespace gs::sparse {
namespace {

struct RoundTripCase {
  int64_t nodes;
  int64_t edges;
  uint64_t seed;
  bool weighted;
};

class FormatRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(FormatRoundTrip, AllConversionsPreserveEdges) {
  const RoundTripCase c = GetParam();
  graph::Graph g = gs::testing::SmallRmat(c.nodes, c.edges, c.seed, c.weighted);
  const Matrix& m = g.adj();
  const auto reference = gs::testing::EdgeSet(m);
  ASSERT_FALSE(reference.empty());

  // Materialize every format and rebuild single-format matrices; all must
  // agree with the CSC reference.
  Matrix from_coo = Matrix::FromCoo(m.num_rows(), m.num_cols(), m.GetCoo());
  EXPECT_EQ(gs::testing::EdgeSet(from_coo), reference);

  Matrix from_csr = Matrix::FromCsr(m.num_rows(), m.num_cols(), m.Csr());
  EXPECT_EQ(gs::testing::EdgeSet(from_csr), reference);

  // CSR -> COO -> CSC round trip.
  Matrix back_to_csc = Matrix::FromCoo(m.num_rows(), m.num_cols(), from_csr.GetCoo());
  EXPECT_EQ(gs::testing::EdgeSet(Matrix::FromCsc(m.num_rows(), m.num_cols(),
                                                 back_to_csc.Csc())),
            reference);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, FormatRoundTrip,
    ::testing::Values(RoundTripCase{50, 200, 1, true}, RoundTripCase{50, 200, 1, false},
                      RoundTripCase{300, 3000, 2, true}, RoundTripCase{300, 3000, 3, false},
                      RoundTripCase{1000, 500, 4, true},  // sparser than nodes
                      RoundTripCase{64, 4000, 5, true}));

TEST(Matrix, NnzConsistentAcrossFormats) {
  graph::Graph g = gs::testing::SmallRmat();
  const Matrix& m = g.adj();
  const int64_t nnz = m.nnz();
  EXPECT_EQ(m.GetCoo().row.size(), nnz);
  EXPECT_EQ(m.Csr().indices.size(), nnz);
  EXPECT_EQ(m.Csc().indices.size(), nnz);
}

TEST(Matrix, FormatCachingIsSticky) {
  graph::Graph g = gs::testing::SmallRmat();
  const Matrix& m = g.adj();
  EXPECT_TRUE(m.HasFormat(Format::kCsc));
  EXPECT_FALSE(m.HasFormat(Format::kCsr));
  m.Csr();
  EXPECT_TRUE(m.HasFormat(Format::kCsr));
  // Copies share the cache.
  Matrix alias = m;
  EXPECT_TRUE(alias.HasFormat(Format::kCsr));
}

TEST(Matrix, UnweightedValuesMaterializeAsOnes) {
  graph::Graph g = gs::testing::SmallRmat(100, 500, 6, /*weighted=*/false);
  EXPECT_FALSE(g.adj().HasValues());
  ValueArray values = g.adj().ValuesFor(Format::kCsc);
  ASSERT_EQ(values.size(), g.adj().nnz());
  for (int64_t e = 0; e < values.size(); ++e) {
    EXPECT_FLOAT_EQ(values[e], 1.0f);
  }
}

TEST(Matrix, WithValuesSharesStructure) {
  graph::Graph g = gs::testing::SmallRmat();
  const Matrix& m = g.adj();
  ValueArray doubled = ValueArray::Empty(m.nnz());
  const ValueArray original = m.ValuesFor(Format::kCsc);
  for (int64_t e = 0; e < m.nnz(); ++e) {
    doubled[e] = 2.0f * original[e];
  }
  Matrix m2 = m.WithValues(Format::kCsc, doubled);
  EXPECT_TRUE(m.SharesPatternWith(m2));
  EXPECT_EQ(m2.nnz(), m.nnz());
  EXPECT_FLOAT_EQ(m2.Csc().values[0], 2.0f * original[0]);
}

TEST(Matrix, SharesPatternWithByContent) {
  // Two structurally identical matrices built independently.
  Compressed a;
  a.indptr = OffsetArray::FromVector({0, 2, 3});
  a.indices = IdArray::FromVector({0, 1, 1});
  Compressed b;
  b.indptr = OffsetArray::FromVector({0, 2, 3});
  b.indices = IdArray::FromVector({0, 1, 1});
  Matrix ma = Matrix::FromCsc(2, 2, std::move(a));
  Matrix mb = Matrix::FromCsc(2, 2, std::move(b));
  EXPECT_TRUE(ma.SharesPatternWith(mb));

  Compressed c;
  c.indptr = OffsetArray::FromVector({0, 1, 3});
  c.indices = IdArray::FromVector({0, 0, 1});
  Matrix mc = Matrix::FromCsc(2, 2, std::move(c));
  EXPECT_FALSE(ma.SharesPatternWith(mc));
}

TEST(Matrix, FromCscValidatesShape) {
  Compressed bad;
  bad.indptr = OffsetArray::FromVector({0, 1});
  bad.indices = IdArray::FromVector({0});
  EXPECT_THROW(Matrix::FromCsc(2, 5, std::move(bad)), Error);
}

TEST(Matrix, IdMapsTranslateGlobals) {
  graph::Graph g = gs::testing::SmallRmat();
  Matrix m = g.adj();
  EXPECT_FALSE(m.has_row_ids());
  EXPECT_EQ(m.GlobalRowId(13), 13);
  IdArray ids = IdArray::FromVector(std::vector<int32_t>(m.num_rows(), 0));
  for (int64_t i = 0; i < m.num_rows(); ++i) {
    ids[i] = static_cast<int32_t>(m.num_rows() - 1 - i);
  }
  m.SetRowIds(ids);
  EXPECT_EQ(m.GlobalRowId(0), static_cast<int32_t>(m.num_rows() - 1));
}

TEST(Matrix, DebugStringMentionsFormats) {
  graph::Graph g = gs::testing::SmallRmat();
  const std::string s = g.adj().DebugString();
  EXPECT_NE(s.find("CSC"), std::string::npos);
  EXPECT_NE(s.find("weighted"), std::string::npos);
}

}  // namespace
}  // namespace gs::sparse
