// Tests for the randomized sparse kernels: individual/collective/fused
// sampling, walks, restart walks, top-k visit counting — structural
// invariants plus statistical checks on the sampling distributions.

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "sparse/kernels.h"
#include "tests/testing.h"

namespace gs::sparse {
namespace {

using gs::testing::EdgeSet;
using tensor::IdArray;

class FanoutParam : public ::testing::TestWithParam<int64_t> {};

TEST_P(FanoutParam, IndividualSampleRespectsFanout) {
  const int64_t k = GetParam();
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({1, 2, 3, 4, 5, 6, 7, 8});
  Matrix sub = SliceColumns(g.adj(), cols);
  Rng rng(101);
  Matrix sample = IndividualSample(sub, k, ValueArray{}, rng);
  EXPECT_EQ(sample.num_cols(), sub.num_cols());
  const Compressed& sub_csc = sub.Csc();
  const Compressed& s_csc = sample.Csc();
  const auto full = EdgeSet(sub);
  for (int64_t c = 0; c < sample.num_cols(); ++c) {
    const int64_t deg = sub_csc.indptr[c + 1] - sub_csc.indptr[c];
    const int64_t got = s_csc.indptr[c + 1] - s_csc.indptr[c];
    EXPECT_EQ(got, std::min(deg, k)) << "column " << c;
    // Without replacement: distinct rows per column.
    std::set<int32_t> rows;
    for (int64_t e = s_csc.indptr[c]; e < s_csc.indptr[c + 1]; ++e) {
      rows.insert(s_csc.indices[e]);
    }
    EXPECT_EQ(static_cast<int64_t>(rows.size()), got);
  }
  // Every sampled edge exists in the parent with the same weight.
  for (const auto& [edge, w] : EdgeSet(sample)) {
    auto it = full.find(edge);
    ASSERT_NE(it, full.end());
    EXPECT_FLOAT_EQ(it->second, w);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutParam, ::testing::Values(1, 2, 5, 25, 1000));

TEST(IndividualSample, ZeroProbEdgesNeverChosen) {
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({0});  // in-neighbors {1, 2, 4}
  Matrix sub = SliceColumns(g.adj(), cols);
  ASSERT_EQ(sub.nnz(), 3);
  // Zero out the probability of the first edge.
  ValueArray probs = ValueArray::FromVector({0.0f, 1.0f, 1.0f});
  Rng rng(103);
  for (int t = 0; t < 100; ++t) {
    Matrix sample = IndividualSample(sub, 2, probs, rng);
    const Compressed& csc = sample.Csc();
    for (int64_t e = 0; e < sample.nnz(); ++e) {
      EXPECT_NE(csc.indices[e], sub.Csc().indices[0]);
    }
  }
}

TEST(IndividualSample, BiasedDistribution) {
  // Single frontier, k=1: edge picked proportional to probs.
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({0});
  Matrix sub = SliceColumns(g.adj(), cols);
  ValueArray probs = ValueArray::FromVector({1.0f, 2.0f, 7.0f});
  Rng rng(107);
  const int64_t trials = 30000;
  std::vector<int64_t> counts(3, 0);
  for (int64_t t = 0; t < trials; ++t) {
    Matrix sample = IndividualSample(sub, 1, probs, rng);
    ASSERT_EQ(sample.nnz(), 1);
    for (int64_t e = 0; e < 3; ++e) {
      if (sample.Csc().indices[0] == sub.Csc().indices[e]) {
        ++counts[e];
      }
    }
  }
  const double stat = gs::testing::ChiSquare(counts, {0.1, 0.2, 0.7}, trials);
  EXPECT_LT(stat, 13.8);  // chi2(2 dof) at p=0.001
}

TEST(IndividualSample, InvalidArgsThrow) {
  graph::Graph g = gs::testing::ToyGraph();
  Rng rng(1);
  EXPECT_THROW(IndividualSample(g.adj(), 0, ValueArray{}, rng), Error);
  ValueArray short_probs = ValueArray::Full(2, 1.0f);
  EXPECT_THROW(IndividualSample(g.adj(), 1, short_probs, rng), Error);
}

TEST(CollectiveSample, SamplesAtMostKDistinctRows) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({0, 1, 2, 3});
  Matrix sub = SliceColumns(g.adj(), cols);
  ValueArray probs = SumAxis(sub, 0);
  Rng rng(109);
  Matrix sample = CollectiveSample(sub, 5, probs, rng);
  EXPECT_LE(sample.num_rows(), 5);
  EXPECT_TRUE(sample.rows_compact());
  std::set<int32_t> ids;
  for (int64_t i = 0; i < sample.row_ids().size(); ++i) {
    ids.insert(sample.row_ids()[i]);
    // Selected rows must have positive bias (an edge to some frontier).
    EXPECT_GT(probs[sample.row_ids()[i]], 0.0f);
  }
  EXPECT_EQ(static_cast<int64_t>(ids.size()), sample.num_rows());
}

TEST(CollectiveSample, LayerWiseSharedNeighbors) {
  // The paper's Figure 1(c) point: layer-wise sampling never duplicates a
  // node even when several frontiers share it.
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({1, 4});  // share in-neighbor f=5
  Matrix sub = SliceColumns(g.adj(), cols);
  ValueArray probs = SumAxis(sub, 0);
  Rng rng(113);
  Matrix sample = CollectiveSample(sub, 4, probs, rng);
  std::set<int32_t> ids;
  for (int64_t i = 0; i < sample.row_ids().size(); ++i) {
    EXPECT_TRUE(ids.insert(sample.row_ids()[i]).second) << "duplicate sampled node";
  }
}

TEST(CollectiveSample, InclusionProportionalForK1) {
  // k = 1 collective sampling selects each candidate with probability
  // proportional to its bias.
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({0});
  Matrix sub = SliceColumns(g.adj(), cols);  // candidates {1, 2, 4}
  ValueArray probs = ValueArray::Full(g.num_nodes(), 0.0f);
  probs[1] = 1.0f;
  probs[2] = 3.0f;
  probs[4] = 6.0f;
  Rng rng(211);
  const int64_t trials = 30000;
  std::map<int32_t, int64_t> counts;
  for (int64_t t = 0; t < trials; ++t) {
    Matrix sample = CollectiveSample(sub, 1, probs, rng);
    ASSERT_EQ(sample.row_ids().size(), 1);
    ++counts[sample.row_ids()[0]];
  }
  const double stat = gs::testing::ChiSquare({counts[1], counts[2], counts[4]},
                                             {0.1, 0.3, 0.6}, trials);
  EXPECT_LT(stat, 13.8);  // chi2(2 dof) at p=0.001
}

TEST(CollectiveSample, DeterministicForSeed) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({3, 4, 5});
  Matrix sub = SliceColumns(g.adj(), cols);
  ValueArray probs = SumAxis(sub, 0);
  Rng a(77);
  Rng b(77);
  Matrix s1 = CollectiveSample(sub, 10, probs, a);
  Matrix s2 = CollectiveSample(sub, 10, probs, b);
  EXPECT_EQ(gs::testing::EdgeSet(s1), gs::testing::EdgeSet(s2));
}

TEST(FusedSliceSample, EquivalentToSliceThenSample) {
  // The fused kernel consumes randomness identically to the unfused pair,
  // so the sampled subgraphs are bit-identical for the same seed.
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({2, 4, 8, 16, 32});
  Rng rng_fused(127);
  Rng rng_unfused(127);
  Matrix fused = FusedSliceSample(g.adj(), cols, 3, rng_fused);
  Matrix sub = SliceColumns(g.adj(), cols);
  Matrix unfused = IndividualSample(sub, 3, ValueArray{}, rng_unfused);
  EXPECT_EQ(EdgeSet(fused), EdgeSet(unfused));
}

TEST(UniformWalkStep, StepsToInNeighbors) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cur = IdArray::FromVector({0, 1, 2, 3, 4, 5, 6, 7});
  Rng rng(131);
  IdArray next = UniformWalkStep(g.adj(), cur, rng);
  const auto edges = EdgeSet(g.adj());
  for (int64_t i = 0; i < cur.size(); ++i) {
    if (next[i] >= 0) {
      EXPECT_NE(edges.find({next[i], cur[i]}), edges.end())
          << next[i] << " is not an in-neighbor of " << cur[i];
    }
  }
}

TEST(UniformWalkStep, DeadEndsAndTombstones) {
  // Node with no in-neighbors -> -1; -1 propagates.
  std::vector<std::pair<int32_t, int32_t>> edges = {{0, 1}};
  graph::Graph g = graph::Graph::FromEdges("line", 3, edges);
  IdArray cur = IdArray::FromVector({0, -1});
  Rng rng(137);
  IdArray next = UniformWalkStep(g.adj(), cur, rng);
  EXPECT_EQ(next[0], -1);  // node 0 has no in-neighbors
  EXPECT_EQ(next[1], -1);
}

TEST(Node2VecStep, ExtremeParamsSteerWalk) {
  // Triangle 0-1-2 plus pendant 3 attached to 1: from node 1 with prev=0,
  // neighbor 0 has bias 1/p, neighbor 2 (a neighbor of 0) bias 1, pendant 3
  // (not a neighbor of 0) bias 1/q.
  std::vector<std::pair<int32_t, int32_t>> edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                                    {0, 2}, {2, 0}, {3, 1}, {1, 3}};
  graph::Graph g = graph::Graph::FromEdges("tri", 4, edges);
  Rng rng(139);
  IdArray cur = IdArray::FromVector({1});
  IdArray prev = IdArray::FromVector({0});
  // Huge p, huge q: must go to the common neighbor 2.
  for (int t = 0; t < 50; ++t) {
    IdArray next = Node2VecStep(g.adj(), cur, prev, 1e6f, 1e6f, rng);
    EXPECT_EQ(next[0], 2);
  }
  // Tiny p: must return to prev = 0.
  for (int t = 0; t < 50; ++t) {
    IdArray next = Node2VecStep(g.adj(), cur, prev, 1e-6f, 1.0f, rng);
    EXPECT_EQ(next[0], 0);
  }
  // prev = -1 behaves uniformly (just check validity).
  IdArray no_prev = IdArray::FromVector({-1});
  IdArray next = Node2VecStep(g.adj(), cur, no_prev, 2.0f, 0.5f, rng);
  EXPECT_GE(next[0], 0);
}

TEST(WalkRestart, AlwaysRestartsAtProbabilityOne) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cur = IdArray::FromVector({10, 20, 30});
  IdArray root = IdArray::FromVector({1, 2, 3});
  Rng rng(149);
  IdArray next = UniformWalkStepRestart(g.adj(), cur, root, 1.0f, rng);
  EXPECT_EQ(next[0], 1);
  EXPECT_EQ(next[1], 2);
  EXPECT_EQ(next[2], 3);
}

TEST(WalkRestart, NeverRestartsAtZeroFollowsEdges) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cur = IdArray::FromVector({5, 6});
  IdArray root = IdArray::FromVector({0, 0});
  Rng rng(151);
  IdArray next = UniformWalkStepRestart(g.adj(), cur, root, 0.0f, rng);
  const auto edges = EdgeSet(g.adj());
  for (int64_t i = 0; i < 2; ++i) {
    const bool is_edge = edges.find({next[i], cur[i]}) != edges.end();
    const bool is_dead_end_restart = next[i] == root[i];
    EXPECT_TRUE(is_edge || is_dead_end_restart);
  }
}

TEST(TopKVisited, CountsAndRanks) {
  IdArray roots = IdArray::FromVector({0});
  IdArray s1 = IdArray::FromVector({5});
  IdArray s2 = IdArray::FromVector({5});
  IdArray s3 = IdArray::FromVector({7});
  IdArray s4 = IdArray::FromVector({0});   // the root itself: excluded
  IdArray s5 = IdArray::FromVector({-1});  // dead: skipped
  std::vector<IdArray> steps = {s1, s2, s3, s4, s5};
  Matrix top = TopKVisited(steps, roots, 1, 10);
  ASSERT_EQ(top.nnz(), 1);
  EXPECT_EQ(top.Csc().indices[0], 5);
  EXPECT_FLOAT_EQ(top.Csc().values[0], 2.0f);  // visited twice

  Matrix top2 = TopKVisited(steps, roots, 5, 10);
  EXPECT_EQ(top2.nnz(), 2);  // only two distinct non-root nodes visited
}

TEST(TopKVisited, MisalignedTracesThrow) {
  IdArray roots = IdArray::FromVector({0, 1});
  IdArray bad = IdArray::FromVector({5});
  std::vector<IdArray> steps = {bad};
  EXPECT_THROW(TopKVisited(steps, roots, 2, 10), Error);
}

}  // namespace
}  // namespace gs::sparse
