// Tests for the serving subsystem (src/serving/): plan cache behaviour
// (hit << compile, LRU eviction under a byte budget, allocator attribution),
// bit-identical request coalescing, deadline handling, overload rejection
// and fanout shedding, fair queueing, and the observability surfaces.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "common/timer.h"
#include "core/engine.h"
#include "device/device.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "serving/coalescer.h"
#include "serving/loadgen.h"
#include "serving/plan_cache.h"
#include "serving/request.h"
#include "serving/server.h"
#include "serving/stats.h"
#include "tests/testing.h"

namespace gs::serving {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

graph::Graph ServingGraph() { return testing::SmallRmat(400, 4000, 11); }

tensor::IdArray Seeds(std::vector<int32_t> ids) {
  return tensor::IdArray::FromVector(ids);
}

void ExpectValuesEqual(const std::vector<core::Value>& a, const std::vector<core::Value>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind);
    switch (a[i].kind) {
      case core::ValueKind::kIds:
        EXPECT_EQ(a[i].ids.ToVector(), b[i].ids.ToVector());
        break;
      case core::ValueKind::kMatrix:
        EXPECT_EQ(testing::EdgeSet(a[i].matrix), testing::EdgeSet(b[i].matrix));
        break;
      case core::ValueKind::kTensor:
        ASSERT_EQ(a[i].tensor.shape(), b[i].tensor.shape());
        EXPECT_EQ(a[i].tensor.array().ToVector(), b[i].tensor.array().ToVector());
        break;
    }
  }
}

std::shared_ptr<core::SamplerSession> BuildSagePlan(const graph::Graph& g,
                                                    std::vector<int64_t> fanouts) {
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = fanouts});
  core::SamplerOptions options;
  options.super_batch = 1;
  auto plan = std::make_shared<core::CompiledPlan>(std::move(ap.program), options);
  auto session = std::make_shared<core::SamplerSession>(std::move(plan), g,
                                                        std::move(ap.tensors));
  session->Warmup(Seeds({0, 1, 2, 3}));
  return session;
}

// FastGCN pre-computes its degree-based sampling probabilities, so unlike
// GraphSAGE its plans pin device memory — what the cache budget is about.
std::shared_ptr<core::SamplerSession> BuildFastGcnPlan(const graph::Graph& g,
                                                       int64_t layer_width) {
  algorithms::AlgorithmProgram ap =
      algorithms::FastGcn(g, {.num_layers = 2, .layer_width = layer_width});
  core::SamplerOptions options;
  options.super_batch = 1;
  auto plan = std::make_shared<core::CompiledPlan>(std::move(ap.program), options);
  auto session = std::make_shared<core::SamplerSession>(std::move(plan), g,
                                                        std::move(ap.tensors));
  session->Warmup(Seeds({0, 1, 2, 3}));
  return session;
}

// ------------------------------------------------------- bit-identity

// The core coalescing guarantee: every member of a grouped execution gets
// results bit-identical to being served alone with the same (seeds, seed).
TEST(Coalescer, GroupedMatchesSoloBitIdentical) {
  graph::Graph g = ServingGraph();
  auto plan = BuildSagePlan(g, {4, 3});
  ASSERT_TRUE(plan->Coalescable());

  std::vector<tensor::IdArray> frontiers = {Seeds({5, 9, 17}), Seeds({1, 2, 3, 4}),
                                            Seeds({42})};
  std::vector<uint64_t> seeds = {7, 999, 31337};

  std::vector<std::vector<core::Value>> solo;
  for (size_t i = 0; i < frontiers.size(); ++i) {
    solo.push_back(plan->SampleSeeded(frontiers[i], seeds[i]));
  }
  GroupResult grouped = ExecuteGroup(*plan, frontiers, seeds);
  ASSERT_EQ(grouped.outputs.size(), frontiers.size());
  for (size_t i = 0; i < frontiers.size(); ++i) {
    ExpectValuesEqual(grouped.outputs[i], solo[i]);
  }
}

// Order independence: a member's results don't depend on who shares the
// super-batch or in what position.
TEST(Coalescer, MemberResultsIndependentOfGroupComposition) {
  graph::Graph g = ServingGraph();
  auto plan = BuildSagePlan(g, {5});

  tensor::IdArray target = Seeds({10, 20, 30});
  const uint64_t seed = 12345;
  std::vector<core::Value> solo = plan->SampleSeeded(target, seed);

  GroupResult first = ExecuteGroup(*plan, {target, Seeds({1, 2})}, {seed, 1});
  GroupResult last = ExecuteGroup(*plan, {Seeds({7}), Seeds({8, 9}), target}, {2, 3, seed});
  ExpectValuesEqual(first.outputs[0], solo);
  ExpectValuesEqual(last.outputs[2], solo);
}

// Walk programs serve uncoalesced (their draws interleave across the whole
// frontier) but are still deterministic per (frontier, seed).
TEST(Coalescer, WalkPlansServeUncoalesced) {
  graph::Graph g = ServingGraph();
  algorithms::AlgorithmProgram ap = algorithms::DeepWalk(g, {.walk_length = 5});
  core::SamplerOptions options;
  auto plan = std::make_shared<core::CompiledSampler>(std::move(ap.program), g,
                                                      std::move(ap.tensors), options);
  plan->Warmup(Seeds({0, 1, 2, 3}));
  EXPECT_FALSE(plan->Coalescable());

  GroupResult a = ExecuteGroup(*plan, {Seeds({3, 4, 5})}, {99});
  GroupResult b = ExecuteGroup(*plan, {Seeds({3, 4, 5})}, {99});
  ExpectValuesEqual(a.outputs[0], b.outputs[0]);
}

// --------------------------------------------------------- plan cache

// Regression for dynamic graph keying (gs::dyn): the snapshot epoch/digest
// is part of the canonical form (so mutation epochs never collide in the
// cache and coalescing never crosses epochs), the compile key strips it (so
// the plan table is epoch-independent), static keys are byte-for-byte
// unchanged, and Parse round-trips every variant — including composed
// shard + graph suffixes.
TEST(PlanKeyTest, GraphVersionCanonicalFormAndParseRoundTrip) {
  PlanKey key{"GraphSAGE", "PD", "v100", "cfg123", {10, 5}};
  const std::string static_canonical = key.Canonical();
  EXPECT_EQ(key.CompileKey(), static_canonical);
  EXPECT_EQ(static_canonical.find("|g"), std::string::npos);

  PlanKey dyn = key;
  dyn.dynamic = true;
  dyn.graph_epoch = 7;
  dyn.graph_digest = 0xDEADBEEFCAFEULL;
  EXPECT_NE(dyn.Canonical(), static_canonical);
  EXPECT_EQ(dyn.CompileKey(), static_canonical);

  PlanKey next_epoch = dyn;
  next_epoch.graph_epoch = 8;
  next_epoch.graph_digest = 0x1234;
  EXPECT_NE(next_epoch.Canonical(), dyn.Canonical());
  EXPECT_EQ(next_epoch.CompileKey(), dyn.CompileKey());

  const PlanKey parsed = PlanKey::Parse(dyn.Canonical());
  EXPECT_TRUE(parsed.dynamic);
  EXPECT_EQ(parsed.graph_epoch, 7u);
  EXPECT_EQ(parsed.graph_digest, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(parsed.Canonical(), dyn.Canonical());

  const PlanKey parsed_static = PlanKey::Parse(static_canonical);
  EXPECT_FALSE(parsed_static.dynamic);
  EXPECT_EQ(parsed_static.Canonical(), static_canonical);

  PlanKey sharded = dyn;
  sharded.shard = 3;
  const PlanKey parsed_sharded = PlanKey::Parse(sharded.Canonical());
  EXPECT_EQ(parsed_sharded.shard, 3);
  EXPECT_TRUE(parsed_sharded.dynamic);
  EXPECT_EQ(parsed_sharded.graph_digest, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(parsed_sharded.Canonical(), sharded.Canonical());
}

// Two epochs of the same endpoint are distinct cache entries; the same
// epoch is a hit.
TEST(PlanCache, GraphEpochsAreDistinctCacheKeys) {
  graph::Graph g = ServingGraph();
  PlanCache cache(int64_t{64} * 1024 * 1024, nullptr);
  PlanKey e7{"GraphSAGE", "rmat", "dev", "cfg", {4, 4}};
  e7.dynamic = true;
  e7.graph_epoch = 7;
  e7.graph_digest = 0xABC;
  PlanKey e8 = e7;
  e8.graph_epoch = 8;
  e8.graph_digest = 0xDEF;

  cache.GetOrBuild(e7, [&] { return BuildSagePlan(g, {4, 4}); });
  bool hit = true;
  cache.GetOrBuild(e8, [&] { return BuildSagePlan(g, {4, 4}); }, &hit);
  EXPECT_FALSE(hit) << "a new epoch must not hit the old epoch's session";
  cache.GetOrBuild(e7, [&]() -> std::shared_ptr<core::SamplerSession> {
    ADD_FAILURE() << "same epoch must hit";
    return nullptr;
  }, &hit);
  EXPECT_TRUE(hit);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.hits, 1);
}

// Insert (the replanner's publish hook) replaces an existing entry without
// counting a hit or a miss, and retires the replaced entry's accounting.
TEST(PlanCache, InsertPublishesAndReplacesWithoutHitOrMiss) {
  graph::Graph g = ServingGraph();
  PlanCache cache(int64_t{64} * 1024 * 1024, nullptr);
  PlanKey key{"GraphSAGE", "rmat", "dev", "cfg", {4, 4}};
  key.dynamic = true;
  key.graph_epoch = 3;
  key.graph_digest = 0x33;

  cache.Insert(key, BuildSagePlan(g, {4, 4}));
  cache.Insert(key, BuildSagePlan(g, {4, 4}));  // replace, not accumulate
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);

  bool hit = false;
  cache.GetOrBuild(key, [&]() -> std::shared_ptr<core::SamplerSession> {
    ADD_FAILURE() << "published session must be resident";
    return nullptr;
  }, &hit);
  EXPECT_TRUE(hit);
}

TEST(PlanCache, HitIsMuchCheaperThanCompile) {
  graph::Graph g = ServingGraph();
  PlanCache cache(int64_t{64} * 1024 * 1024, nullptr);
  PlanKey key{"FastGCN", "rmat", "dev", "cfg", {32, 32}};

  bool hit = true;
  int64_t compile_ns = 0;
  auto plan = cache.GetOrBuild(key, [&] { return BuildFastGcnPlan(g, 32); }, &hit, &compile_ns);
  EXPECT_FALSE(hit);
  EXPECT_GT(compile_ns, 0);

  bool hit2 = false;
  int64_t compile2 = -1;
  Timer lookup;
  auto plan2 = cache.GetOrBuild(key, [&]() -> std::shared_ptr<core::SamplerSession> {
    ADD_FAILURE() << "factory must not run on a hit";
    return nullptr;
  }, &hit2, &compile2);
  const int64_t lookup_ns = lookup.ElapsedNanos();
  EXPECT_TRUE(hit2);
  EXPECT_EQ(compile2, 0);
  EXPECT_EQ(plan.get(), plan2.get());
  // A cache hit must be orders of magnitude cheaper than compiling; allow a
  // generous 10x margin for noisy CI machines.
  EXPECT_LT(lookup_ns * 10, compile_ns);

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_GT(s.resident_bytes, 0);
}

TEST(PlanCache, EvictsLeastRecentlyUsedUnderBudget) {
  graph::Graph g = ServingGraph();
  // Budget of one byte: every new plan evicts the previous one (the cache
  // always keeps the entry it is about to return).
  PlanCache cache(1, nullptr);
  PlanKey a{"FastGCN", "rmat", "dev", "cfg", {16, 16}};
  PlanKey b{"FastGCN", "rmat", "dev", "cfg", {24, 24}};

  auto plan_a = cache.GetOrBuild(a, [&] { return BuildFastGcnPlan(g, 16); });
  auto plan_b = cache.GetOrBuild(b, [&] { return BuildFastGcnPlan(g, 24); });
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.evictions, 1);

  // plan_a was evicted: asking again rebuilds.
  bool hit = true;
  cache.GetOrBuild(a, [&] { return BuildFastGcnPlan(g, 16); }, &hit);
  EXPECT_FALSE(hit);
  // The evicted-but-held shared_ptr stays usable.
  EXPECT_NO_THROW(plan_b->SampleSeeded(Seeds({1, 2}), 5));
}

TEST(PlanCache, MirrorsResidentBytesIntoAllocatorReserved) {
  graph::Graph g = ServingGraph();
  device::CachingAllocator& allocator = device::Current().allocator();
  const int64_t reserved_before = allocator.stats().bytes_reserved;
  {
    PlanCache cache(int64_t{64} * 1024 * 1024, &allocator);
    PlanKey key{"FastGCN", "rmat", "dev", "cfg", {32, 32}};
    cache.GetOrBuild(key, [&] { return BuildFastGcnPlan(g, 32); });
    const int64_t reserved = allocator.stats().bytes_reserved - reserved_before;
    EXPECT_EQ(reserved, cache.stats().resident_bytes);
    EXPECT_GT(reserved, 0);
  }
  // Destroying the cache releases its attribution.
  EXPECT_EQ(allocator.stats().bytes_reserved, reserved_before);
}

// -------------------------------------------------------------- server

ServerOptions SmallServer(int workers = 2) {
  ServerOptions o;
  o.num_workers = workers;
  o.queue_capacity = 32;
  o.coalesce_max = 8;
  return o;
}

TEST(Server, ServesRequestsAndReportsStages) {
  graph::Graph g = ServingGraph();
  Server server(SmallServer());
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();

  SampleRequest req;
  req.algorithm = "GraphSAGE";
  req.dataset = "rmat";
  req.seeds = Seeds({1, 2, 3});
  req.seed = 7;
  req.fanouts = {4, 3};
  SampleResponse first = server.Submit(req).get();
  ASSERT_EQ(first.status, Status::kOk) << first.error;
  EXPECT_FALSE(first.stages.plan_cache_hit);
  EXPECT_GT(first.stages.compile_ns, 0);
  EXPECT_GT(first.stages.execute_ns, 0);
  EXPECT_GT(first.stages.total_ns, 0);
  EXPECT_FALSE(first.outputs.empty());

  SampleResponse second = server.Submit(req).get();
  ASSERT_EQ(second.status, Status::kOk) << second.error;
  EXPECT_TRUE(second.stages.plan_cache_hit);
  EXPECT_EQ(second.stages.compile_ns, 0);
  // Identical request -> bit-identical response, plan cache or not.
  ExpectValuesEqual(first.outputs, second.outputs);

  server.Stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.plan_cache_hits, 1);
  EXPECT_EQ(stats.plan_cache_misses, 1);
  EXPECT_GT(stats.latency_p50_ns, 0);
  EXPECT_EQ(stats.per_tenant_completed.at("default"), 2);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(Server, UnknownEndpointAndEmptySeedsFailFast) {
  graph::Graph g = ServingGraph();
  Server server(SmallServer());
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();

  SampleRequest bad;
  bad.algorithm = "NoSuchAlgorithm";
  bad.dataset = "rmat";
  bad.seeds = Seeds({1});
  SampleResponse r1 = server.Submit(bad).get();
  EXPECT_EQ(r1.status, Status::kFailed);
  EXPECT_NE(r1.error.find("unknown endpoint"), std::string::npos);

  SampleRequest empty;
  empty.algorithm = "GraphSAGE";
  empty.dataset = "rmat";
  SampleResponse r2 = server.Submit(empty).get();
  EXPECT_EQ(r2.status, Status::kFailed);
  server.Stop();
}

// Two compatible requests submitted while the worker is busy compiling the
// plan coalesce into one super-batch execution — and each still gets results
// bit-identical to a solo run.
TEST(Server, CoalescesCompatibleRequestsBitIdentically) {
  graph::Graph g = ServingGraph();
  auto reference = BuildSagePlan(g, {4, 3});

  Server server(SmallServer(/*workers=*/1));
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();

  auto make = [&](std::vector<int32_t> ids, uint64_t seed, const std::string& tenant) {
    SampleRequest req;
    req.algorithm = "GraphSAGE";
    req.dataset = "rmat";
    req.seeds = Seeds(std::move(ids));
    req.seed = seed;
    req.fanouts = {4, 3};
    req.tenant = tenant;
    return req;
  };

  // The first submission occupies the single worker with the plan compile;
  // the rest queue up behind it and coalesce.
  std::vector<std::future<SampleResponse>> futures;
  futures.push_back(server.Submit(make({0, 1}, 1, "a")));
  std::vector<std::pair<std::vector<int32_t>, uint64_t>> tail = {
      {{5, 9, 17}, 7}, {{1, 2, 3, 4}, 999}, {{42}, 31337}, {{8, 8, 8}, 4}};
  for (size_t i = 0; i < tail.size(); ++i) {
    futures.push_back(
        server.Submit(make(tail[i].first, tail[i].second, i % 2 == 0 ? "a" : "b")));
  }

  std::vector<SampleResponse> responses;
  for (auto& f : futures) {
    responses.push_back(f.get());
  }
  server.Stop();

  int coalesced = 0;
  for (auto& r : responses) {
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    coalesced += r.group_size > 1 ? 1 : 0;
  }
  // Every tail response must match the solo reference exactly.
  for (size_t i = 0; i < tail.size(); ++i) {
    std::vector<core::Value> solo =
        reference->SampleSeeded(Seeds(std::move(tail[i].first)), tail[i].second);
    ExpectValuesEqual(responses[i + 1].outputs, solo);
  }
  // The compile window makes coalescing all but certain; stats must agree
  // with the per-response group sizes.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 5);
  EXPECT_EQ(stats.requests_executed, 5);
  if (coalesced > 0) {
    EXPECT_GT(stats.coalesced_executions, 0);
    EXPECT_GT(stats.CoalescingRatio(), 1.0);
  }
}

// Requests that expire while queued complete as kDeadlineExceeded without
// executing.
TEST(Server, QueuedRequestsPastDeadlineAreExpiredNotExecuted) {
  graph::Graph g = ServingGraph();
  Server server(SmallServer(/*workers=*/1));
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.RegisterEndpoint(MakeEndpoint("ShaDow", "rmat", g));
  server.Start();

  // Blocker: compiles the GraphSAGE plan on the only worker (milliseconds).
  SampleRequest blocker;
  blocker.algorithm = "GraphSAGE";
  blocker.dataset = "rmat";
  blocker.seeds = Seeds({1, 2, 3});
  auto blocked = server.Submit(blocker);

  // Expires while the blocker compiles. Different algorithm => different
  // plan key, so it can't ride along with the blocker's execution. The
  // service-time EMA is still zero, so deadline admission lets it in.
  SampleRequest doomed;
  doomed.algorithm = "ShaDow";
  doomed.dataset = "rmat";
  doomed.seeds = Seeds({4});
  doomed.deadline = nanoseconds(1);
  SampleResponse expired = server.Submit(doomed).get();
  EXPECT_EQ(expired.status, Status::kDeadlineExceeded);
  EXPECT_TRUE(expired.outputs.empty());

  EXPECT_EQ(blocked.get().status, Status::kOk);
  server.Stop();
  EXPECT_EQ(server.stats().deadline_exceeded, 1);
}

// Once a service-time estimate exists, infeasible deadlines are rejected at
// admission with a retry-after hint.
TEST(Server, DeadlineAdmissionRejectsInfeasibleRequests) {
  graph::Graph g = ServingGraph();
  Server server(SmallServer());
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();

  SampleRequest req;
  req.algorithm = "GraphSAGE";
  req.dataset = "rmat";
  req.seeds = Seeds({1, 2, 3});
  ASSERT_EQ(server.Submit(req).get().status, Status::kOk);  // seeds the EMA

  req.deadline = nanoseconds(1);
  SampleResponse rejected = server.Submit(req).get();
  EXPECT_EQ(rejected.status, Status::kRejected);
  EXPECT_GT(rejected.retry_after.count(), 0);
  server.Stop();
  EXPECT_GE(server.stats().rejected, 1);
}

// Overload: a tiny queue forces rejections; occupancy beyond the shed
// threshold degrades admitted requests' fanouts instead of rejecting them.
TEST(Server, OverloadRejectsAndShedsFanouts) {
  graph::Graph g = ServingGraph();
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.coalesce_max = 1;  // no merging: keep the queue full
  options.shed_occupancy = 0.5;
  Server server(options);
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();

  std::vector<std::future<SampleResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    SampleRequest req;
    req.algorithm = "GraphSAGE";
    req.dataset = "rmat";
    req.seeds = Seeds({static_cast<int32_t>(i % 100)});
    req.seed = static_cast<uint64_t>(i);
    req.fanouts = {8, 8};
    futures.push_back(server.Submit(std::move(req)));
  }
  int ok = 0, rejected = 0, degraded = 0;
  for (auto& f : futures) {
    SampleResponse r = f.get();
    if (r.status == Status::kOk) {
      ++ok;
      degraded += r.degraded ? 1 : 0;
    } else if (r.status == Status::kRejected) {
      ++rejected;
      EXPECT_GT(r.retry_after.count(), 0);
    }
  }
  server.Stop();

  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0) << "64 instant submissions into a 4-deep queue must overflow";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.received, 64);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.degraded, degraded);
  // Shedding kicks in at occupancy 2 of 4; with a single worker stuck on the
  // first compile the backlog is guaranteed to cross it.
  EXPECT_GT(degraded, 0);
}

TEST(Server, StopFailsNothingAndRejectsLateSubmissions) {
  graph::Graph g = ServingGraph();
  Server server(SmallServer());
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();
  SampleRequest req;
  req.algorithm = "GraphSAGE";
  req.dataset = "rmat";
  req.seeds = Seeds({1});
  auto pending = server.Submit(req);
  server.Stop();
  // The in-flight request drained gracefully.
  EXPECT_EQ(pending.get().status, Status::kOk);
  // Post-stop submissions fail immediately.
  EXPECT_EQ(server.Submit(req).get().status, Status::kFailed);
}

// ------------------------------------------------------------- stats

TEST(LatencyHistogramTest, PercentilesAreMonotonicAndBounded) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(99), 0);
  for (int64_t v : {100, 200, 400, 800, 1600, 3200, 1000000}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.max_ns(), 1000000);
  const int64_t p50 = h.Percentile(50);
  const int64_t p95 = h.Percentile(95);
  const int64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_ns());
  EXPECT_GT(p50, 0);
}

TEST(LatencyHistogramTest, InterpolatesWithinBucket) {
  // Regression: reading out the bucket's upper bound overstated p50/p95 by
  // up to 2x. 512 samples uniformly covering [512, 1024) all land in the
  // [2^9, 2^10) bucket; the interpolated median must sit near the middle of
  // the bucket, not at its top edge.
  LatencyHistogram h;
  for (int64_t v = 512; v < 1024; ++v) {
    h.Record(v);
  }
  const int64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, 700);
  EXPECT_LE(p50, 836);  // true median 767; allow half-bucket-step slack
  EXPECT_LT(p50, 1023);  // strictly below the old upper-bound readout
  // p = 0 resolves to the lower edge of the first occupied bucket.
  EXPECT_EQ(h.Percentile(0), 512);
  // p = 100 caps at the observed maximum rather than the bucket top.
  EXPECT_EQ(h.Percentile(100), 1023);
}

TEST(LatencyHistogramTest, MergeIsExactAndOrderIndependent) {
  // Merging per-shard histograms must equal recording everything into one
  // histogram — the property the sharded server's stats() relies on.
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int64_t v : {100, 250, 900, 5000}) {
    a.Record(v);
    combined.Record(v);
  }
  for (int64_t v : {80, 1600, 1700, 2000000}) {
    b.Record(v);
    combined.Record(v);
  }
  LatencyHistogram merged_ab = a;
  merged_ab.Merge(b);
  LatencyHistogram merged_ba = b;
  merged_ba.Merge(a);
  for (const LatencyHistogram& merged : {merged_ab, merged_ba}) {
    EXPECT_EQ(merged.count(), combined.count());
    EXPECT_EQ(merged.max_ns(), combined.max_ns());
    for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
      EXPECT_EQ(merged.Percentile(p), combined.Percentile(p)) << "p" << p;
    }
  }
  // Merging an empty histogram is the identity.
  LatencyHistogram empty;
  LatencyHistogram copy = a;
  copy.Merge(empty);
  EXPECT_EQ(copy.count(), a.count());
  EXPECT_EQ(copy.Percentile(50), a.Percentile(50));
}

// Regression: merging a histogram that never recorded must be a strict
// no-op — including max_ns — and an empty histogram must absorb a non-empty
// one exactly. Sharded servers carry one histogram per shard, and a shard
// with zero completed requests (dead, or simply never routed to) merges
// into the server-level percentiles on every stats() call.
TEST(LatencyHistogramTest, MergeWithZeroCountShardsIsExact) {
  LatencyHistogram recorded;
  for (int64_t v : {300, 4000, 65000}) {
    recorded.Record(v);
  }
  LatencyHistogram idle;  // a shard that completed nothing
  LatencyHistogram merged = recorded;
  merged.Merge(idle);
  EXPECT_EQ(merged.count(), recorded.count());
  EXPECT_EQ(merged.max_ns(), recorded.max_ns());
  EXPECT_EQ(merged.Percentile(99), recorded.Percentile(99));

  // Empty absorbing non-empty (merge order must not matter).
  LatencyHistogram reversed;
  reversed.Merge(recorded);
  EXPECT_EQ(reversed.count(), recorded.count());
  EXPECT_EQ(reversed.max_ns(), recorded.max_ns());
  for (const double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_EQ(reversed.Percentile(p), recorded.Percentile(p)) << "p" << p;
  }

  // Two idle shards merge to an empty report, not garbage percentiles.
  LatencyHistogram both_idle;
  both_idle.Merge(idle);
  EXPECT_EQ(both_idle.count(), 0);
  EXPECT_EQ(both_idle.Percentile(50), 0);
}

// Regression: a sharded server must report every shard in
// per_shard_completed — including shards that completed zero requests —
// and its merged latency percentiles must ignore the idle shards' empty
// histograms. Locality routing concentrates load, so idle shards are the
// common case, not a corner.
TEST(ServerStatsTest, ZeroCompletionShardsReportCleanly) {
  graph::Graph g = ServingGraph();
  ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 4;
  Server server(options);
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();

  SampleRequest request;
  request.algorithm = "GraphSAGE";
  request.dataset = "rmat";
  request.seeds = Seeds({1, 2, 3, 4, 5, 6, 7, 8});
  request.seed = 42;
  request.fanouts = {4, 3};
  SampleResponse response = server.Submit(std::move(request)).get();
  EXPECT_EQ(response.status, Status::kOk);
  server.Stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);
  // Every shard is present, idle ones at zero.
  ASSERT_EQ(stats.per_shard_completed.size(), 4u);
  int64_t total = 0;
  for (const auto& [shard, completed] : stats.per_shard_completed) {
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    total += completed;
  }
  EXPECT_EQ(total, 1);
  // The merged percentile report reflects the one completion; the three
  // idle shards' empty histograms must not zero out max or skew p99.
  EXPECT_GT(stats.latency_p50_ns, 0);
  EXPECT_GT(stats.latency_max_ns, 0);
  EXPECT_LE(stats.latency_p99_ns, stats.latency_max_ns);
}

// Regression: the last occupied bucket must interpolate toward the observed
// maximum, not its 2^(i+1) edge. Extrapolating to the power-of-two edge and
// then clamping flattened every quantile that landed past the maximum's
// position onto max_ns itself — a 10/90 split of 513ns and 520ns samples
// (all in the [512, 1024) bucket) read p50 == p99 == 520.
TEST(LatencyHistogramTest, TopBucketInterpolatesTowardObservedMax) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) {
    h.Record(513);
  }
  for (int i = 0; i < 90; ++i) {
    h.Record(520);
  }
  const int64_t p50 = h.Percentile(50);
  const int64_t p99 = h.Percentile(99);
  EXPECT_GE(p50, 512);
  EXPECT_LT(p50, 520);  // previously clamped: p50 == p99 == 520
  EXPECT_LT(p50, p99);  // quantiles spread across [512, 520] again
  EXPECT_LE(p99, 520);

  // Only the top bucket's upper edge is replaced by the max; lower buckets
  // keep their power-of-two edges.
  LatencyHistogram two;
  two.Record(600);
  two.Record(5000);
  EXPECT_EQ(two.Percentile(100), 5000);
  EXPECT_GE(two.Percentile(75), 4096);
  EXPECT_LT(two.Percentile(75), 5000);
}

TEST(LatencyHistogramTest, SingleSampleAllPercentiles) {
  LatencyHistogram h;
  h.Record(700);
  // Every quantile of a single observation is that observation (capped at
  // max_ns); interpolation must not push past what was recorded.
  EXPECT_LE(h.Percentile(50), 700);
  EXPECT_EQ(h.Percentile(100), 700);
  EXPECT_GE(h.Percentile(50), 512);
}

TEST(ServerStatsTest, CoalescingRatio) {
  ServerStats s;
  EXPECT_EQ(s.CoalescingRatio(), 0.0);
  s.executions = 4;
  s.requests_executed = 10;
  EXPECT_DOUBLE_EQ(s.CoalescingRatio(), 2.5);
}

TEST(RequestTest, StatusNames) {
  EXPECT_STREQ(StatusName(Status::kOk), "OK");
  EXPECT_STREQ(StatusName(Status::kRejected), "REJECTED");
  EXPECT_STREQ(StatusName(Status::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusName(Status::kFailed), "FAILED");
  EXPECT_STREQ(StatusName(Status::kDegraded), "DEGRADED");
}

}  // namespace
}  // namespace gs::serving
