// Tests for graph I/O: edge-list parsing and binary snapshot round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "fault/status.h"
#include "graph/io.h"
#include "tests/testing.h"

namespace gs::graph {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents = "") {
    char name[] = "/tmp/gs_io_test_XXXXXX";
    const int fd = mkstemp(name);
    GS_CHECK(fd >= 0);
    close(fd);
    path_ = name;
    if (!contents.empty()) {
      std::ofstream out(path_);
      out << contents;
    }
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(EdgeList, ParsesCommentsAndWeights) {
  TempFile file("# snap-style header\n0 1 0.5\n2 1 0.25\n\n1 0 0.75\n");
  EdgeListOptions options;
  options.weighted = true;
  Graph g = LoadEdgeList(file.path(), "t", options);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  const auto set = gs::testing::EdgeSet(g.adj());
  EXPECT_FLOAT_EQ(set.at({0, 1}), 0.5f);
  EXPECT_FLOAT_EQ(set.at({1, 0}), 0.75f);
  EXPECT_EQ(g.train_ids().size(), 3);
}

TEST(EdgeList, UndirectedAddsReverse) {
  TempFile file("0 1\n1 2\n");
  EdgeListOptions options;
  options.undirected = true;
  Graph g = LoadEdgeList(file.path(), "t", options);
  const auto set = gs::testing::EdgeSet(g.adj());
  EXPECT_EQ(set.count({1, 0}), 1u);
  EXPECT_EQ(set.count({2, 1}), 1u);
}

TEST(EdgeList, ExplicitNodeCount) {
  TempFile file("0 1\n");
  EdgeListOptions options;
  options.num_nodes = 10;
  Graph g = LoadEdgeList(file.path(), "t", options);
  EXPECT_EQ(g.num_nodes(), 10);
}

TEST(EdgeList, MalformedLinesThrow) {
  TempFile missing_col("0\n");
  EXPECT_THROW(LoadEdgeList(missing_col.path(), "t", {}), Error);
  TempFile missing_weight("0 1\n");
  EdgeListOptions weighted;
  weighted.weighted = true;
  EXPECT_THROW(LoadEdgeList(missing_weight.path(), "t", weighted), Error);
  EXPECT_THROW(LoadEdgeList("/nonexistent/file", "t", {}), Error);
}

TEST(EdgeList, NodeIdBeyondInt32Throws) {
  // Regression: ids above INT32_MAX used to wrap under static_cast<int32_t>
  // and silently alias an unrelated node. The loader must refuse the file
  // with a typed client error instead.
  TempFile file("0 1\n2 3000000000\n");
  try {
    LoadEdgeList(file.path(), "t", {});
    FAIL() << "expected InvalidRequestError";
  } catch (const fault::InvalidRequestError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3000000000"), std::string::npos);
    EXPECT_NE(what.find(":2"), std::string::npos);  // failing line is named
    EXPECT_EQ(fault::Classify(e), fault::ErrorCode::kInvalidRequest);
  }
}

TEST(Binary, RoundTripsStructureAndMetadata) {
  graph::PlantedPartitionParams params;
  params.num_nodes = 200;
  params.num_communities = 3;
  params.weighted = true;
  params.seed = 12;
  Graph original = MakePlantedPartitionGraph(params);

  TempFile file;
  SaveBinary(original, file.path());
  Graph loaded = LoadBinary(file.path());

  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(gs::testing::EdgeSet(loaded.adj()), gs::testing::EdgeSet(original.adj()));
  EXPECT_EQ(loaded.num_classes(), 3);
  ASSERT_EQ(loaded.labels().size(), original.labels().size());
  for (int64_t i = 0; i < loaded.labels().size(); ++i) {
    EXPECT_EQ(loaded.labels()[i], original.labels()[i]);
  }
  ASSERT_EQ(loaded.features().numel(), original.features().numel());
  for (int64_t i = 0; i < loaded.features().numel(); ++i) {
    EXPECT_FLOAT_EQ(loaded.features().at(i), original.features().at(i));
  }
}

TEST(Binary, UvaLoadPlacesArraysOnHost) {
  Graph original = gs::testing::SmallRmat(100, 500, 3, true);
  TempFile file;
  SaveBinary(original, file.path());
  Graph loaded = LoadBinary(file.path(), /*uva=*/true);
  EXPECT_TRUE(loaded.uva());
  EXPECT_EQ(loaded.adj().Csc().indices.space(), device::MemorySpace::kHost);
  EXPECT_EQ(gs::testing::EdgeSet(loaded.adj()), gs::testing::EdgeSet(original.adj()));
}

TEST(Binary, RejectsForeignFiles) {
  TempFile file("definitely not a snapshot");
  EXPECT_THROW(LoadBinary(file.path()), Error);
}

}  // namespace
}  // namespace gs::graph
