// Tests for graph/: edge-list construction, generators, dataset registry.

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "graph/datasets.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "sparse/kernels.h"
#include "tests/testing.h"

namespace gs::graph {
namespace {

TEST(Graph, FromEdgesDeduplicatesAndDropsSelfLoops) {
  std::vector<std::pair<int32_t, int32_t>> edges = {{0, 1}, {0, 1}, {2, 2}, {1, 0}};
  Graph g = Graph::FromEdges("t", 3, edges);
  EXPECT_EQ(g.num_edges(), 2);
  const auto set = gs::testing::EdgeSet(g.adj());
  EXPECT_EQ(set.count({0, 1}), 1u);
  EXPECT_EQ(set.count({1, 0}), 1u);
  EXPECT_EQ(set.count({2, 2}), 0u);
}

TEST(Graph, CscColumnsSorted) {
  Graph g = gs::testing::SmallRmat();
  const sparse::Compressed& csc = g.adj().Csc();
  for (int64_t c = 0; c < g.num_nodes(); ++c) {
    for (int64_t e = csc.indptr[c] + 1; e < csc.indptr[c + 1]; ++e) {
      EXPECT_LT(csc.indices[e - 1], csc.indices[e]);
    }
  }
}

TEST(Graph, WeightsFollowFirstOccurrence) {
  std::vector<std::pair<int32_t, int32_t>> edges = {{0, 1}, {2, 1}};
  std::vector<float> weights = {0.25f, 0.75f};
  Graph g = Graph::FromEdges("t", 3, edges, &weights);
  const auto set = gs::testing::EdgeSet(g.adj());
  EXPECT_FLOAT_EQ(set.at({0, 1}), 0.25f);
  EXPECT_FLOAT_EQ(set.at({2, 1}), 0.75f);
}

TEST(Graph, OutOfRangeEdgeThrows) {
  std::vector<std::pair<int32_t, int32_t>> edges = {{0, 5}};
  EXPECT_THROW(Graph::FromEdges("t", 3, edges), Error);
}

// Regression: duplicate-edge weight resolution is FIRST-occurrence-wins by
// input order, deterministically. The dedup sort used to order equal
// (src, dst) keys arbitrarily (std::sort is not stable), so with many
// duplicates the surviving weight depended on the sort implementation; the
// comparator now tie-breaks on the original input index.
TEST(Graph, DuplicateWeightFirstOccurrenceWinsDeterministically) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  std::vector<float> weights;
  // Enough equal keys that an unstable sort would scramble them, with the
  // winning (first) occurrence buried among later conflicting weights.
  for (int i = 0; i < 64; ++i) {
    edges.push_back({3, 1});
    weights.push_back(static_cast<float>(i));  // first occurrence carries 0.0f
    edges.push_back({static_cast<int32_t>(i % 5), 5});
    weights.push_back(static_cast<float>(100 + i));  // firsts: i = 0..4
  }
  Graph g = Graph::FromEdges("t", 6, edges, &weights);
  const auto set = gs::testing::EdgeSet(g.adj());
  EXPECT_FLOAT_EQ(set.at({3, 1}), 0.0f);
  for (int32_t s = 0; s < 5; ++s) {
    EXPECT_FLOAT_EQ(set.at({s, 5}), static_cast<float>(100 + s));
  }
  // And the artifact is reproducible build-to-build.
  Graph h = Graph::FromEdges("t", 6, edges, &weights);
  EXPECT_EQ(gs::testing::EdgeSet(h.adj()), set);
}

TEST(RMat, DeterministicForSeed) {
  RMatParams p;
  p.num_nodes = 128;
  p.num_edges = 1000;
  p.seed = 4;
  Graph a = MakeRMatGraph(p);
  Graph b = MakeRMatGraph(p);
  EXPECT_EQ(gs::testing::EdgeSet(a.adj()), gs::testing::EdgeSet(b.adj()));
}

TEST(RMat, SkewedDegreeDistribution) {
  RMatParams p;
  p.num_nodes = 1024;
  p.num_edges = 10000;
  p.seed = 5;
  Graph g = MakeRMatGraph(p);
  sparse::ValueArray deg = sparse::SumAxis(g.adj(), 1);
  float max_deg = 0;
  double total = 0;
  for (int64_t i = 0; i < deg.size(); ++i) {
    max_deg = std::max(max_deg, deg[i]);
    total += deg[i];
  }
  const double mean = total / static_cast<double>(deg.size());
  EXPECT_GT(max_deg, 8 * mean) << "R-MAT should produce a heavy-tailed degree distribution";
}

TEST(RMat, UndirectedAddsReverseEdges) {
  RMatParams p;
  p.num_nodes = 128;
  p.num_edges = 500;
  p.undirected = true;
  p.seed = 6;
  Graph g = MakeRMatGraph(p);
  const auto set = gs::testing::EdgeSet(g.adj());
  for (const auto& [edge, w] : set) {
    EXPECT_EQ(set.count({edge.second, edge.first}), 1u);
    (void)w;
  }
}

TEST(RMat, FeaturesAndFrontiers) {
  RMatParams p;
  p.num_nodes = 128;
  p.num_edges = 500;
  p.feature_dim = 16;
  p.frontier_fraction = 0.25;
  p.seed = 7;
  Graph g = MakeRMatGraph(p);
  EXPECT_EQ(g.features().rows(), 128);
  EXPECT_EQ(g.features().cols(), 16);
  EXPECT_EQ(g.train_ids().size(), 32);
  std::set<int32_t> unique;
  for (int64_t i = 0; i < g.train_ids().size(); ++i) {
    unique.insert(g.train_ids()[i]);
  }
  EXPECT_EQ(unique.size(), 32u);
}

TEST(PlantedPartition, LabelsLearnableStructure) {
  PlantedPartitionParams p;
  p.num_nodes = 600;
  p.num_communities = 4;
  p.seed = 8;
  Graph g = MakePlantedPartitionGraph(p);
  EXPECT_EQ(g.num_classes(), 4);
  ASSERT_EQ(g.labels().size(), 600);
  // Most edges are intra-community by construction.
  int64_t intra = 0;
  int64_t total = 0;
  for (const auto& [edge, w] : gs::testing::EdgeSet(g.adj())) {
    intra += g.labels()[edge.first] == g.labels()[edge.second] ? 1 : 0;
    ++total;
    (void)w;
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(total), 0.6);
}

TEST(Datasets, RegistryProperties) {
  const DatasetOptions tiny{.scale = 0.02, .weighted = true};
  Graph lj = MakeDataset("LJ", tiny);
  Graph pd = MakeDataset("PD", tiny);
  Graph pp = MakeDataset("PP", tiny);
  Graph fs = MakeDataset("FS", tiny);

  EXPECT_FALSE(lj.uva());
  EXPECT_FALSE(pd.uva());
  EXPECT_TRUE(pp.uva());  // "exceeds device memory" -> host + UVA
  EXPECT_TRUE(fs.uva());

  // PD has the highest average degree (the paper's explanation for its
  // smaller speedups).
  const double pd_deg = static_cast<double>(pd.num_edges()) / pd.num_nodes();
  const double lj_deg = static_cast<double>(lj.num_edges()) / lj.num_nodes();
  EXPECT_GT(pd_deg, lj_deg);

  // FS samples 1% of nodes as frontiers.
  EXPECT_LT(fs.train_ids().size(), fs.num_nodes() / 50);

  EXPECT_THROW(MakeDataset("XX", tiny), Error);
  EXPECT_EQ(BenchmarkDatasetNames().size(), 4u);
}

TEST(Datasets, UvaGraphStoredInHostMemory) {
  Graph pp = MakeDataset("PP", {.scale = 0.02, .weighted = false});
  EXPECT_EQ(pp.adj().Csc().indices.space(), device::MemorySpace::kHost);
  EXPECT_NE(pp.uva_cache(), nullptr);
}

}  // namespace
}  // namespace gs::graph
