// Tests for gs::feature (src/feature/): HotSetCache admission policies and
// byte accounting, and the subsystem's core guarantee — Gather() is
// bit-identical to the eager per-node feature lookup no matter which cache,
// admission policy, shard, or serving path sits in front of it. The
// all-algorithms, sharded (2/4 shards), and coalesced-serving identity
// checks here are the ctest face of the oracle's feature-gather
// differential (oracle::OracleOptions::check_feature_gather).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "core/engine.h"
#include "device/device.h"
#include "feature/hot_set_cache.h"
#include "feature/pipeline.h"
#include "feature/store.h"
#include "graph/graph.h"
#include "serving/request.h"
#include "serving/server.h"
#include "shard/shard.h"
#include "tensor/tensor.h"
#include "tests/testing.h"

namespace gs::feature {
namespace {

using tensor::IdArray;

graph::Graph FeatureGraph() { return testing::SmallRmat(300, 3000, 11); }

IdArray Seeds(std::vector<int32_t> ids) { return IdArray::FromVector(ids); }

// The nodes whose features a sampled batch needs: the last id-typed output
// (the result frontier) when the program produces one, else the seeds — the
// serving tier's policy.
IdArray FeatureFrontier(const std::vector<core::Value>& outputs, const IdArray& seeds) {
  for (auto it = outputs.rbegin(); it != outputs.rend(); ++it) {
    if (it->kind == core::ValueKind::kIds && it->ids.defined() && !it->ids.empty()) {
      return it->ids;
    }
  }
  return seeds;
}

// Sampled id streams may carry super-batch labels (id + b * num_nodes) and
// walk dead-end markers (negative); fold both back to graph ids, exactly
// like the oracle's feature-gather check.
IdArray FoldIds(const IdArray& ids, int64_t num_nodes) {
  std::vector<int32_t> out;
  for (int64_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= 0) {
      out.push_back(static_cast<int32_t>(ids[i] % num_nodes));
    }
  }
  return IdArray::FromVector(out);
}

// Bitwise row comparison against the eager per-node lookup into the raw
// feature tensor.
void ExpectRowsMatchEager(const tensor::Tensor& features, const IdArray& ids,
                          const tensor::Tensor& gathered, const std::string& context) {
  const int64_t dim = features.cols();
  ASSERT_EQ(gathered.rows(), ids.size()) << context;
  ASSERT_EQ(gathered.cols(), dim) << context;
  for (int64_t i = 0; i < ids.size(); ++i) {
    const float* expect = features.data() + static_cast<int64_t>(ids[i]) * dim;
    const float* got = gathered.data() + i * dim;
    ASSERT_EQ(std::memcmp(got, expect, sizeof(float) * static_cast<size_t>(dim)), 0)
        << context << ": row " << i << " (node " << ids[i] << ") diverged";
  }
}

// ------------------------------------------------------ HotSetCache

TEST(HotSetCacheTest, AdmissionNamesRoundTrip) {
  for (Admission a : {Admission::kStaticDegree, Admission::kLru, Admission::kFrequencyEma}) {
    EXPECT_EQ(AdmissionFromName(AdmissionName(a)), a);
  }
  EXPECT_THROW(AdmissionFromName("clock"), gs::Error);
}

TEST(HotSetCacheTest, AccessChargesMissesAndFreesHits) {
  HotSetCache cache(HotSetCacheOptions{.capacity = 4, .admission = Admission::kLru});
  EXPECT_EQ(cache.Access(1, 100), 100);  // cold: full transfer
  EXPECT_EQ(cache.Access(1, 100), 0);    // resident: free
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  cache.Reset();
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.Access(1, 100), 100) << "Reset must drop residency";
}

TEST(HotSetCacheTest, LruEvictsLeastRecentlyUsed) {
  HotSetCache cache(HotSetCacheOptions{.capacity = 2, .admission = Admission::kLru});
  cache.Access(1, 8);
  cache.Access(2, 8);
  cache.Access(1, 8);        // 1 is now MRU
  cache.Access(3, 8);        // evicts 2
  EXPECT_EQ(cache.Access(1, 8), 0);
  EXPECT_EQ(cache.Access(2, 8), 8);
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(HotSetCacheTest, CompatCtorIsStaticDegreeCostModelOnly) {
  HotSetCache cache(64);  // the old device::UvaCache shape
  EXPECT_EQ(cache.admission(), Admission::kStaticDegree);
  EXPECT_EQ(cache.entry_bytes(), 0);
  EXPECT_EQ(cache.num_slots(), 64);
  EXPECT_EQ(cache.stats().backing_bytes, 0);
  EXPECT_EQ(cache.Access(7, 32), 32);
  EXPECT_EQ(cache.Access(7, 32), 0);
}

// Frequency-EMA admission must hold hub keys resident through a one-touch
// scan that would flush an LRU of the same capacity.
TEST(HotSetCacheTest, FrequencyEmaKeepsHubsThroughScans) {
  HotSetCacheOptions options{.capacity = 8, .admission = Admission::kFrequencyEma};
  HotSetCache ema(options);
  options.admission = Admission::kLru;
  HotSetCache lru(options);
  auto run = [](HotSetCache& cache) {
    for (int round = 0; round < 20; ++round) {
      for (uint64_t hub = 0; hub < 4; ++hub) {
        cache.Access(hub, 16);
      }
      for (uint64_t scan = 0; scan < 16; ++scan) {
        cache.Access(1000 + static_cast<uint64_t>(round) * 16 + scan, 16);
      }
    }
    int64_t hub_hits = 0;
    for (uint64_t hub = 0; hub < 4; ++hub) {
      hub_hits += cache.Access(hub, 16) == 0 ? 1 : 0;
    }
    return hub_hits;
  };
  EXPECT_EQ(run(ema), 4) << "EMA admission lost a hub to one-touch scan keys";
  EXPECT_EQ(run(lru), 0) << "LRU unexpectedly survived the scan (test is vacuous)";
}

// Mutated-row invalidation (gs::dyn): under every admission policy, a
// resident key that is invalidated must re-fetch on its next access —
// returning the CURRENT byte cost, not the admitted one — while untouched
// keys stay resident and invalidating an absent key is a harmless no-op.
TEST(HotSetCacheTest, InvalidateForcesRefetchUnderEveryAdmission) {
  for (Admission admission :
       {Admission::kStaticDegree, Admission::kLru, Admission::kFrequencyEma}) {
    const std::string label = AdmissionName(admission);
    HotSetCache cache(HotSetCacheOptions{.capacity = 8, .admission = admission});
    // Admit two keys; both must be resident (capacity is ample).
    EXPECT_EQ(cache.Access(3, 64), 64) << label;
    EXPECT_EQ(cache.Access(4, 64), 64) << label;
    ASSERT_EQ(cache.Access(3, 64), 0) << label << ": key 3 must be resident";
    ASSERT_EQ(cache.Access(4, 64), 0) << label << ": key 4 must be resident";

    // Mutate key 3's row: invalidate, then re-gather. The new access is a
    // miss and charges the row's NEW byte size (the mutated row may have a
    // different width under a feature-dim change).
    cache.Invalidate(3);
    EXPECT_EQ(cache.Access(3, 96), 96)
        << label << ": invalidated key must re-fetch current bytes";
    EXPECT_EQ(cache.Access(3, 96), 0) << label << ": re-admitted after the re-fetch";
    // The untouched key was not collateral damage.
    EXPECT_EQ(cache.Access(4, 64), 0) << label << ": untouched key must stay resident";

    // Invalidating a key that is not resident is harmless (counted as a
    // call, drops nothing) — mutation batches routinely touch uncached
    // nodes.
    cache.Invalidate(9999);
    EXPECT_EQ(cache.Access(3, 96), 0) << label;
    EXPECT_EQ(cache.Access(4, 64), 0) << label;
    EXPECT_EQ(cache.stats().invalidations, 2) << label;
  }
}

// Byte-accounted caches own a real device backing store, mirror it into the
// allocator's reserved bytes (plan-cache style), give pages back under
// pressure, and release everything on destruction.
TEST(HotSetCacheTest, BackingStoreReservedBytesLifecycle) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  const int64_t baseline = dev.allocator().stats().bytes_reserved;
  {
    HotSetCache cache(HotSetCacheOptions{
        .capacity = 1024, .admission = Admission::kFrequencyEma, .entry_bytes = 128});
    const HotSetCacheStats stats = cache.stats();
    ASSERT_GT(stats.backing_bytes, 0);
    EXPECT_EQ(dev.allocator().stats().bytes_reserved - baseline, stats.backing_bytes);

    // A pressure round drops backing pages (floor: one page) and returns the
    // real byte count it released.
    const int64_t released = cache.ReleaseMemory(int64_t{1} << 30);
    const HotSetCacheStats after = cache.stats();
    EXPECT_GT(released, 0);
    EXPECT_GT(after.backing_bytes, 0) << "one backing page must survive";
    EXPECT_EQ(stats.backing_bytes - after.backing_bytes, released);
    EXPECT_LT(after.capacity, stats.capacity);
    EXPECT_EQ(after.pressure_releases, 1);
    EXPECT_EQ(dev.allocator().stats().bytes_reserved - baseline, after.backing_bytes);
  }
  EXPECT_EQ(dev.allocator().stats().bytes_reserved, baseline);
}

// -------------------------------------------- gather bit-identity oracle

// The subsystem's core guarantee, exhaustively: for every one of the 15
// algorithms, gathering the sampled frontier's features through a hot-set
// cache — under each admission policy, cold and warm — is bit-identical to
// the eager per-node lookup.
class AllAlgorithmsFeature : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithmsFeature, GatherMatchesEagerLookup) {
  const std::string name = GetParam();
  graph::Graph g = FeatureGraph();
  ASSERT_TRUE(g.features().defined());
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(name, g);
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors),
                                core::SamplerOptions{});
  if (name == "HetGNN") {
    sampler.BindGraph("rel0", &g.adj());
    sampler.BindGraph("rel1", &g.adj());
  }
  const IdArray seeds = Seeds({2, 19, 57, 111, 222, 280});
  sampler.Warmup(seeds);

  const FeatureStore store(g.features());
  for (Admission admission :
       {Admission::kStaticDegree, Admission::kLru, Admission::kFrequencyEma}) {
    HotSetCache cache(HotSetCacheOptions{.capacity = g.num_nodes() / 8,
                                         .admission = admission,
                                         .entry_bytes = store.row_bytes()});
    for (int pass = 0; pass < 2; ++pass) {  // cold, then warm (hit path)
      const std::vector<core::Value> out = sampler.SampleSeeded(seeds, 42);
      const IdArray ids = FoldIds(FeatureFrontier(out, seeds), g.num_nodes());
      ASSERT_FALSE(ids.empty());
      GatherStats stats;
      const tensor::Tensor gathered = store.Gather(ids, &cache, &stats);
      ExpectRowsMatchEager(g.features(), ids, gathered,
                           name + "/" + AdmissionName(admission) + "/pass" +
                               std::to_string(pass));
      EXPECT_EQ(stats.rows, ids.size());
      EXPECT_EQ(stats.hits + stats.misses, stats.rows);
      EXPECT_EQ(stats.gathered_bytes, ids.size() * store.row_bytes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Features, AllAlgorithmsFeature,
                         ::testing::ValuesIn(algorithms::AllAlgorithmNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Sharded gathers: each shard owns its own cache on its own device, but the
// gathered rows must match the eager lookup — and therefore each other —
// for 2- and 4-way groups.
TEST(ShardedFeatureGather, PerShardGatherMatchesEagerLookup) {
  const graph::Graph g = FeatureGraph();
  const IdArray frontier = Seeds({5, 17, 42, 101, 250});
  for (const int shards : {2, 4}) {
    algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
    shard::ShardGroupOptions options;
    options.num_shards = shards;
    options.serve_features = true;
    const shard::ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);
    ASSERT_NE(group.feature_store(), nullptr);
    for (int s = 0; s < shards; ++s) {
      ASSERT_NE(group.feature_cache(s), nullptr);
      const std::vector<core::Value> out = group.Sample(s, frontier, 77);
      const IdArray ids = FoldIds(FeatureFrontier(out, frontier), g.num_nodes());
      ASSERT_FALSE(ids.empty());
      for (int pass = 0; pass < 2; ++pass) {
        GatherStats stats;
        const tensor::Tensor gathered = group.GatherFeatures(s, ids, &stats);
        ExpectRowsMatchEager(g.features(), ids, gathered,
                             "x" + std::to_string(shards) + " shard " + std::to_string(s) +
                                 " pass " + std::to_string(pass));
        EXPECT_EQ(stats.rows, ids.size());
      }
      // The warm pass went through this shard's own cache.
      EXPECT_GT(group.feature_cache(s)->hits(), 0);
    }
  }
}

// ------------------------------------------------- serving (coalesced)

// Responses from the coalesced serving path carry features for exactly the
// result frontier the response reports, bit-identical to the eager lookup —
// coalescing batches requests into one segmented super-batch, so this is
// the path where a per-segment mixup would show.
TEST(ServingFeatureGather, CoalescedResponsesCarryExactFeatures) {
  const graph::Graph g = FeatureGraph();
  serving::ServerOptions options;
  options.num_workers = 1;  // one worker => concurrent submissions coalesce
  options.enable_coalescing = true;
  options.coalesce_max = 8;
  options.serve_features = true;
  serving::Server server(options);
  server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "small", g));
  server.Start();

  constexpr int kRequests = 6;
  std::vector<std::future<serving::SampleResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    serving::SampleRequest request;
    request.algorithm = "GraphSAGE";
    request.dataset = "small";
    request.seeds = Seeds({static_cast<int32_t>(i * 7), static_cast<int32_t>(i * 11 + 3),
                           static_cast<int32_t>(i * 13 + 5), static_cast<int32_t>(i + 40)});
    request.seed = static_cast<uint64_t>(1000 + i);
    request.fanouts = {4, 4};
    request.tenant = "tenant" + std::to_string(i % 2);
    futures.push_back(server.Submit(std::move(request)));
  }
  for (int i = 0; i < kRequests; ++i) {
    const serving::SampleResponse response = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(response.status, serving::Status::kOk) << response.error;
    ASSERT_TRUE(response.features.defined()) << "request " << i;
    ASSERT_TRUE(response.feature_ids.defined()) << "request " << i;
    ExpectRowsMatchEager(g.features(), response.feature_ids, response.features,
                         "coalesced request " + std::to_string(i));
    EXPECT_GE(response.stages.feature_ns, 0);
  }

  const serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.feature_requests, kRequests);
  EXPECT_GT(stats.feature_rows, 0);
  EXPECT_EQ(stats.feature_cache_hits + stats.feature_cache_misses, stats.feature_rows);
  EXPECT_GT(stats.feature_gather_bytes, 0);
  EXPECT_GE(stats.FeatureHitRate(), 0.0);
  EXPECT_LE(stats.FeatureHitRate(), 1.0);
  server.Stop();
}

// ------------------------------------------------- overlap pipeline

// The overlapped (depth 2) pipeline must produce byte-identical gathers and
// identical cache counters to the inline (depth 0) reference — only the
// simulated timeline may differ.
TEST(OverlapPipeline, OverlappedGatherMatchesInline) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  const graph::Graph g = FeatureGraph();
  const FeatureStore store(g.features());

  constexpr int64_t kBatches = 12;
  std::vector<IdArray> batches;
  for (int64_t b = 0; b < kBatches; ++b) {
    std::vector<int32_t> ids;
    for (int64_t i = 0; i < 32; ++i) {
      ids.push_back(static_cast<int32_t>((b * 13 + i * 7) % g.num_nodes()));
    }
    batches.push_back(IdArray::FromVector(ids));
  }
  auto sample_fn = [&](int64_t b) { return batches[static_cast<size_t>(b)]; };

  auto run = [&](int depth) {
    HotSetCache cache(HotSetCacheOptions{.capacity = 64,
                                         .admission = Admission::kFrequencyEma,
                                         .entry_bytes = store.row_bytes()});
    std::vector<std::vector<float>> rows;
    auto consume_fn = [&](int64_t, const tensor::Tensor& t) {
      rows.emplace_back(t.data(), t.data() + t.rows() * t.cols());
    };
    const OverlapReport report =
        RunSampleGatherPipeline(kBatches, sample_fn, store, &cache, consume_fn, {.depth = depth});
    return std::make_pair(std::move(rows), report);
  };

  auto [inline_rows, inline_report] = run(0);
  auto [overlap_rows, overlap_report] = run(2);
  ASSERT_EQ(inline_rows.size(), static_cast<size_t>(kBatches));
  ASSERT_EQ(overlap_rows.size(), static_cast<size_t>(kBatches));
  for (int64_t b = 0; b < kBatches; ++b) {
    const auto& a = inline_rows[static_cast<size_t>(b)];
    const auto& o = overlap_rows[static_cast<size_t>(b)];
    ASSERT_EQ(a.size(), o.size()) << "batch " << b;
    EXPECT_EQ(std::memcmp(a.data(), o.data(), a.size() * sizeof(float)), 0)
        << "batch " << b << " gathered different bytes under overlap";
  }
  EXPECT_EQ(inline_report.gather.rows, overlap_report.gather.rows);
  EXPECT_EQ(inline_report.gather.hits, overlap_report.gather.hits);
  EXPECT_EQ(inline_report.gather.misses, overlap_report.gather.misses);
  EXPECT_GE(overlap_report.metrics.OverlapSpeedup(), 1.0)
      << "overlapping sample and gather must never lengthen the epoch";
}

}  // namespace
}  // namespace gs::feature
