// Tests for the super-batch (segmented) kernels: labeled id spaces keep
// mini-batches independent, and splitting recovers per-batch results.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sparse/batch.h"
#include "sparse/kernels.h"
#include "tests/testing.h"

namespace gs::sparse {
namespace {

using gs::testing::EdgeSet;
using tensor::IdArray;

TEST(SegmentedSliceColumns, MatchesPerBatchSlices) {
  graph::Graph g = gs::testing::SmallRmat();
  const int64_t n = g.num_nodes();
  std::vector<int32_t> batch0 = {1, 2, 3};
  std::vector<int32_t> batch1 = {2, 5};

  std::vector<int32_t> labeled;
  for (int32_t v : batch0) {
    labeled.push_back(v);
  }
  for (int32_t v : batch1) {
    labeled.push_back(static_cast<int32_t>(n + v));
  }
  Matrix seg = SegmentedSliceColumns(g.adj(), IdArray::FromVector(labeled), 2);
  EXPECT_EQ(seg.num_rows(), 2 * n);
  EXPECT_EQ(seg.num_cols(), 5);

  // Split back and compare with plain slices (labels mod n).
  Matrix part0 = SliceColumnRange(seg, 0, 3);
  Matrix ref0 = SliceColumns(g.adj(), IdArray::FromVector(batch0));
  auto strip = [&](const Matrix& m) {
    std::map<std::pair<int32_t, int32_t>, float> out;
    for (const auto& [edge, w] : EdgeSet(m)) {
      out[{static_cast<int32_t>(edge.first % n), static_cast<int32_t>(edge.second % n)}] = w;
    }
    return out;
  };
  EXPECT_EQ(strip(part0), EdgeSet(ref0));

  Matrix part1 = SliceColumnRange(seg, 3, 5);
  Matrix ref1 = SliceColumns(g.adj(), IdArray::FromVector(batch1));
  EXPECT_EQ(strip(part1), EdgeSet(ref1));

  // Segment 1's rows are all labeled into its own id space.
  for (const auto& [edge, w] : EdgeSet(part1)) {
    EXPECT_GE(edge.first, n);
    (void)w;
  }
}

TEST(SegmentedSliceColumns, RejectsNonBaseMatrix) {
  graph::Graph g = gs::testing::SmallRmat();
  Matrix sub = SliceColumns(g.adj(), IdArray::FromVector({1, 2}));
  EXPECT_THROW(SegmentedSliceColumns(sub, IdArray::FromVector({1}), 1), Error);
}

TEST(SegmentedFusedSliceSample, FanoutPerLabeledColumn) {
  graph::Graph g = gs::testing::SmallRmat();
  const int64_t n = g.num_nodes();
  IdArray labeled = IdArray::FromVector(
      {1, 2, static_cast<int32_t>(n + 1), static_cast<int32_t>(n + 9)});
  Rng rng(157);
  Matrix sample = SegmentedFusedSliceSample(g.adj(), labeled, 2, 3, rng);
  EXPECT_EQ(sample.num_cols(), 4);
  const Compressed& csc = sample.Csc();
  const Compressed& base = g.adj().Csc();
  for (int64_t c = 0; c < 4; ++c) {
    const int32_t node = labeled[c] % static_cast<int32_t>(n);
    const int64_t deg = base.indptr[node + 1] - base.indptr[node];
    EXPECT_EQ(csc.indptr[c + 1] - csc.indptr[c], std::min<int64_t>(deg, 3));
    // Edges stay in the column's segment id space.
    const int64_t segment = labeled[c] / n;
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      EXPECT_EQ(csc.indices[e] / n, segment);
    }
  }
}

TEST(SegmentedCollectiveSample, SamplesWithinEachSegment) {
  graph::Graph g = gs::testing::SmallRmat();
  const int64_t n = g.num_nodes();
  IdArray labeled = IdArray::FromVector({0, 1, 2, static_cast<int32_t>(n + 0),
                                         static_cast<int32_t>(n + 3)});
  Matrix seg = SegmentedSliceColumns(g.adj(), labeled, 2);
  ValueArray probs = SumAxis(seg, 0);
  Rng rng(163);
  Matrix sample = SegmentedCollectiveSample(seg, 4, probs, n, rng);
  EXPECT_TRUE(sample.rows_compact());
  // At most 4 rows per segment, each within its own id space.
  int64_t per_segment[2] = {0, 0};
  for (int64_t i = 0; i < sample.row_ids().size(); ++i) {
    const int64_t s = sample.row_ids()[i] / n;
    ASSERT_LT(s, 2);
    ++per_segment[s];
  }
  EXPECT_LE(per_segment[0], 4);
  EXPECT_LE(per_segment[1], 4);
  EXPECT_GT(per_segment[0], 0);
  EXPECT_GT(per_segment[1], 0);
}

TEST(SliceColumnRange, PreservesMetadata) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({4, 5, 6, 7});
  Matrix sub = SliceColumns(g.adj(), cols);
  Matrix range = SliceColumnRange(sub, 1, 3);
  EXPECT_EQ(range.num_cols(), 2);
  ASSERT_TRUE(range.has_col_ids());
  EXPECT_EQ(range.col_ids()[0], 5);
  EXPECT_EQ(range.col_ids()[1], 6);
  EXPECT_THROW(SliceColumnRange(sub, 3, 1), Error);
  EXPECT_THROW(SliceColumnRange(sub, 0, 9), Error);
}

TEST(MapIdsModulo, WrapsAndKeepsNegatives) {
  IdArray ids = IdArray::FromVector({5, 105, -1, 205});
  IdArray out = MapIdsModulo(ids, 100);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(out[2], -1);
  EXPECT_EQ(out[3], 5);
}

}  // namespace
}  // namespace gs::sparse
