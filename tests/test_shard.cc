// Tests for gs::shard (src/shard/): the sharded-vs-single bit-identity
// oracle (the subsystem's core guarantee), frontier-exchange accounting
// against the partition's byte model, concurrent multi-shard sampling (the
// TSan target in tools/check.sh), and sharded serving end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "core/engine.h"
#include "core/executor.h"
#include "device/device.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "serving/request.h"
#include "serving/server.h"
#include "shard/shard.h"
#include "tests/testing.h"

namespace gs::shard {
namespace {

using core::BitIdentical;
using core::Value;
using tensor::IdArray;

graph::Graph ShardGraph() { return testing::SmallRmat(300, 3000, 9); }

IdArray Seeds(std::vector<int32_t> ids) { return IdArray::FromVector(ids); }

void ExpectBitIdentical(const std::vector<Value>& a, const std::vector<Value>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a[i], b[i])) << context << " output " << i << " diverged";
  }
}

// Single-device reference: same program, same options, same seed.
std::vector<Value> ReferenceSample(const std::string& algorithm, const graph::Graph& g,
                                   const IdArray& frontier, uint64_t seed) {
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algorithm, g);
  auto plan = std::make_shared<core::CompiledPlan>(std::move(ap.program), core::SamplerOptions{},
                                                   algorithm);
  core::SamplerSession session(std::move(plan), g, std::move(ap.tensors));
  session.Warmup(Seeds({0, 1, 2, 3}));
  return session.SampleSeeded(frontier, seed);
}

// ------------------------------------------------- bit-identity oracle

// The subsystem's core guarantee: sharding changes where time is charged,
// never what is sampled. Every shard of a 2- and 4-way group must return
// bit-identical outputs to a single-device session for the same (frontier,
// seed) — across a walk algorithm (Node2Vec), a neighbor sampler
// (GraphSAGE), and a layer-wise sampler (LADIES).
TEST(ShardOracle, ShardedSamplingIsBitIdenticalToSingleDevice) {
  const graph::Graph g = ShardGraph();
  const IdArray frontier = Seeds({5, 17, 42, 101, 250});
  for (const std::string algorithm : {"Node2Vec", "GraphSAGE", "LADIES"}) {
    const std::vector<Value> reference = ReferenceSample(algorithm, g, frontier, 77);
    for (const int shards : {2, 4}) {
      algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algorithm, g);
      ShardGroupOptions options;
      options.num_shards = shards;
      const ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);
      for (int s = 0; s < shards; ++s) {
        ExpectBitIdentical(group.Sample(s, frontier, 77), reference,
                           algorithm + " x" + std::to_string(shards) + " shard " +
                               std::to_string(s));
      }
      ExpectBitIdentical(group.SampleRouted(frontier, 77), reference,
                         algorithm + " routed x" + std::to_string(shards));
    }
  }
}

TEST(ShardOracle, VertexCutPartitionPreservesBitIdentity) {
  const graph::Graph g = ShardGraph();
  const IdArray frontier = Seeds({1, 2, 3, 4});
  const std::vector<Value> reference = ReferenceSample("GraphSAGE", g, frontier, 5);
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  ShardGroupOptions options;
  options.num_shards = 3;
  options.partition = graph::PartitionKind::kVertexCut;
  const ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);
  for (int s = 0; s < 3; ++s) {
    ExpectBitIdentical(group.Sample(s, frontier, 5), reference, "vertex-cut shard");
  }
}

// --------------------------------------------------- exchange accounting

TEST(ShardGroupTest, FrontierExchangeChargesRemoteAdjacency) {
  const graph::Graph g = ShardGraph();
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  ShardGroupOptions options;
  options.num_shards = 2;
  const ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);
  const graph::Partition& partition = group.partition();

  // An all-local frontier: hop 0 must be free, deeper hops generally are not.
  const std::vector<int32_t>& local = partition.LocalNodes(0);
  const IdArray frontier = Seeds({local[0], local[1], local[2], local[3]});
  ASSERT_EQ(group.Route(frontier), 0);

  const int64_t interconnect_before = group.counters(0).interconnect_bytes;
  std::vector<HopRecord> hops;
  group.Sample(0, frontier, 123, &hops);
  ASSERT_FALSE(hops.empty());
  EXPECT_EQ(hops[0].remote_nodes, 0) << "all-local seeds charged an exchange";
  EXPECT_EQ(hops[0].bytes, 0);
  EXPECT_EQ(hops[0].exchange_ns, 0);

  int64_t total_bytes = 0;
  for (const HopRecord& hop : hops) {
    EXPECT_LE(hop.remote_nodes, hop.frontier_nodes);
    EXPECT_EQ(hop.bytes > 0, hop.remote_nodes > 0);
    EXPECT_EQ(hop.exchange_ns > 0, hop.remote_nodes > 0);
    total_bytes += hop.bytes;
  }
  EXPECT_GT(total_bytes, 0) << "2-hop sampling never left shard 0";
  EXPECT_LE(total_bytes, 2 * partition.RemoteBytesBound(0));

  // The charge lands on the shard's own stream counters and aggregates.
  EXPECT_EQ(group.counters(0).interconnect_bytes - interconnect_before, total_bytes);
  const ExchangeStats stats = group.exchange_stats(0);
  EXPECT_EQ(stats.samples, 1);
  EXPECT_EQ(stats.bytes, total_bytes);
  EXPECT_EQ(group.TotalExchange().bytes, total_bytes);
  EXPECT_EQ(group.exchange_stats(1).samples, 0);
}

TEST(ShardGroupTest, SingleShardGroupHasNoExchange) {
  const graph::Graph g = ShardGraph();
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  ShardGroupOptions options;
  options.num_shards = 1;
  const ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);
  group.Sample(0, Seeds({1, 2, 3, 4}), 9);
  const ExchangeStats stats = group.TotalExchange();
  EXPECT_EQ(stats.remote_nodes, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(group.counters(0).interconnect_bytes, 0);
}

// Each shard advances its own virtual timeline — the property the capacity
// bench divides by. Sampling on shard 0 must not move shard 1's clock.
TEST(ShardGroupTest, ShardsAdvanceIndependentTimelines) {
  const graph::Graph g = ShardGraph();
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  ShardGroupOptions options;
  options.num_shards = 2;
  const ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);
  const int64_t s0_before = group.counters(0).virtual_ns;
  const int64_t s1_before = group.counters(1).virtual_ns;
  group.Sample(0, Seeds({1, 2, 3, 4}), 1);
  EXPECT_GT(group.counters(0).virtual_ns, s0_before);
  EXPECT_EQ(group.counters(1).virtual_ns, s1_before);
}

// ------------------------------------------------------- concurrency

// TSan target: four threads hammer their own shards concurrently; outputs
// must stay bit-identical to the single-device reference and the per-shard
// aggregates must account for every sample.
TEST(ShardGroupTest, ConcurrentShardsSampleIndependently) {
  const graph::Graph g = ShardGraph();
  const IdArray frontier = Seeds({3, 33, 133, 233});
  const std::vector<Value> reference = ReferenceSample("GraphSAGE", g, frontier, 21);
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  ShardGroupOptions options;
  options.num_shards = 4;
  const ShardGroup group(g, std::move(ap.program), std::move(ap.tensors), options);

  constexpr int kSamplesPerShard = 8;
  std::vector<std::future<bool>> workers;
  for (int s = 0; s < 4; ++s) {
    workers.push_back(std::async(std::launch::async, [&, s] {
      bool identical = true;
      for (int i = 0; i < kSamplesPerShard; ++i) {
        const std::vector<Value> out = group.Sample(s, frontier, 21);
        for (size_t k = 0; k < out.size(); ++k) {
          identical = identical && BitIdentical(out[k], reference[k]);
        }
      }
      return identical;
    }));
  }
  for (auto& worker : workers) {
    EXPECT_TRUE(worker.get());
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(group.exchange_stats(s).samples, kSamplesPerShard);
  }
  EXPECT_EQ(group.TotalExchange().samples, 4 * kSamplesPerShard);
}

// ---------------------------------------------------- sharded serving

TEST(ShardServing, ShardedServerCompletesAndReportsExchange) {
  const graph::Graph g = ShardGraph();
  serving::ServerOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  serving::Server server(options);
  server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "small", g));
  server.Start();

  // One request per shard region: routing should land them on their home
  // shards and both should complete.
  const graph::Partition partition = graph::Partitioner::EdgeCut(g, 2);
  std::vector<std::future<serving::SampleResponse>> futures;
  for (int s = 0; s < 2; ++s) {
    const std::vector<int32_t>& local = partition.LocalNodes(s);
    serving::SampleRequest request;
    request.algorithm = "GraphSAGE";
    request.dataset = "small";
    request.seeds = Seeds({local[0], local[1], local[2], local[3]});
    request.seed = 7;
    request.fanouts = {4, 4};
    request.tenant = "tenant" + std::to_string(s);
    futures.push_back(server.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    const serving::SampleResponse response = future.get();
    EXPECT_EQ(response.status, serving::Status::kOk) << response.error;
    EXPECT_FALSE(response.outputs.empty());
  }

  const serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.per_shard_completed.size(), 2u);
  EXPECT_EQ(stats.per_shard_completed.at(0), 1);
  EXPECT_EQ(stats.per_shard_completed.at(1), 1);
  EXPECT_GT(stats.exchange_bytes, 0);
  EXPECT_GT(stats.exchange_hops, 0);
  EXPECT_GT(stats.latency_p95_ns, 0);  // merged across per-shard histograms
  server.Stop();
}

TEST(ShardServing, ShardedResponsesMatchUnshardedBitForBit) {
  const graph::Graph g = ShardGraph();
  const IdArray seeds = Seeds({10, 20, 30, 40});

  auto serve_once = [&](int num_shards) {
    serving::ServerOptions options;
    options.num_workers = 1;
    options.num_shards = num_shards;
    auto server = std::make_unique<serving::Server>(options);
    server->RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "small", g));
    server->Start();
    serving::SampleRequest request;
    request.algorithm = "GraphSAGE";
    request.dataset = "small";
    request.seeds = seeds;
    request.seed = 99;
    request.fanouts = {4, 4};
    serving::SampleResponse response = server->Submit(std::move(request)).get();
    EXPECT_EQ(response.status, serving::Status::kOk) << response.error;
    // Keep the server (and its shard devices, which own the response's
    // memory) alive until the caller is done comparing.
    return std::make_pair(std::move(server), std::move(response));
  };

  auto [unsharded_server, unsharded] = serve_once(1);
  auto [sharded_server, sharded] = serve_once(4);
  ExpectBitIdentical(sharded.outputs, unsharded.outputs, "sharded serving");
  unsharded_server->Stop();
  sharded_server->Stop();
}

}  // namespace
}  // namespace gs::shard
