// Unit tests for common/: error macros, RNG, sampling primitives.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/sampling.h"
#include "tests/testing.h"

namespace gs {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    GS_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Error, ComparisonMacros) {
  EXPECT_THROW(GS_CHECK_EQ(1, 2), Error);
  EXPECT_THROW(GS_CHECK_LT(3, 2), Error);
  EXPECT_THROW(GS_CHECK_GE(1, 2), Error);
  EXPECT_NO_THROW(GS_CHECK_LE(2, 2));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIndependentAndStable) {
  Rng base(7);
  Rng f1 = base.Fork(1);
  Rng f1_again = base.Fork(1);
  Rng f2 = base.Fork(2);
  EXPECT_EQ(f1.NextU64(), f1_again.NextU64());
  EXPECT_NE(f1.NextU64(), f2.NextU64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
  EXPECT_THROW(rng.UniformInt(0), Error);
}

TEST(Rng, UniformIntUnbiased) {
  Rng rng(11);
  const int64_t trials = 70000;
  std::vector<int64_t> counts(10, 0);
  for (int64_t i = 0; i < trials; ++i) {
    ++counts[rng.UniformInt(10)];
  }
  const double stat = testing::ChiSquare(counts, std::vector<double>(10, 0.1), trials);
  EXPECT_LT(stat, 27.9);  // chi2(9 dof) at p=0.001
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

// --- SampleUniformWithoutReplacement ---

class UniformWorParam : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(UniformWorParam, DistinctAndInRange) {
  const auto [n, k] = GetParam();
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int32_t> out;
    SampleUniformWithoutReplacement(n, k, rng, out);
    EXPECT_EQ(static_cast<int64_t>(out.size()), std::min(n, k));
    std::set<int32_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size());
    for (int32_t v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UniformWorParam,
                         ::testing::Values(std::pair<int64_t, int64_t>{10, 3},
                                           std::pair<int64_t, int64_t>{10, 10},
                                           std::pair<int64_t, int64_t>{5, 9},
                                           std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{100, 1},
                                           std::pair<int64_t, int64_t>{64, 63},
                                           std::pair<int64_t, int64_t>{0, 4}));

TEST(UniformWor, UnbiasedInclusion) {
  Rng rng(19);
  const int64_t n = 12;
  const int64_t k = 4;
  const int64_t trials = 30000;
  std::vector<int64_t> counts(n, 0);
  for (int64_t t = 0; t < trials; ++t) {
    std::vector<int32_t> out;
    SampleUniformWithoutReplacement(n, k, rng, out);
    for (int32_t v : out) {
      ++counts[v];
    }
  }
  // Each element included with probability k/n.
  for (int64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / trials, static_cast<double>(k) / n, 0.02);
  }
}

// --- SampleWeightedWithoutReplacement ---

TEST(WeightedWor, ZeroWeightNeverSelected) {
  Rng rng(23);
  std::vector<float> w = {1.0f, 0.0f, 2.0f, 0.0f, 3.0f};
  for (int t = 0; t < 200; ++t) {
    std::vector<int32_t> out;
    SampleWeightedWithoutReplacement(w, 3, rng, out);
    EXPECT_EQ(out.size(), 3u);
    for (int32_t v : out) {
      EXPECT_NE(v, 1);
      EXPECT_NE(v, 3);
    }
  }
}

TEST(WeightedWor, FewerPositiveThanK) {
  Rng rng(29);
  std::vector<float> w = {0.0f, 5.0f, 0.0f};
  std::vector<int32_t> out;
  SampleWeightedWithoutReplacement(w, 3, rng, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
}

TEST(WeightedWor, NegativeWeightRejected) {
  Rng rng(31);
  std::vector<float> w = {1.0f, -0.5f};
  std::vector<int32_t> out;
  EXPECT_THROW(SampleWeightedWithoutReplacement(w, 1, rng, out), Error);
}

TEST(WeightedWor, SingleDrawFollowsWeights) {
  Rng rng(37);
  // k=1 without replacement is exactly proportional sampling.
  std::vector<float> w = {1.0f, 2.0f, 3.0f, 4.0f};
  const int64_t trials = 40000;
  std::vector<int64_t> counts(4, 0);
  for (int64_t t = 0; t < trials; ++t) {
    std::vector<int32_t> out;
    SampleWeightedWithoutReplacement(w, 1, rng, out);
    ++counts[out[0]];
  }
  const double stat = testing::ChiSquare(counts, {0.1, 0.2, 0.3, 0.4}, trials);
  EXPECT_LT(stat, 16.3);  // chi2(3 dof) at p=0.001
}

TEST(WeightedWor, HeavierWeightsIncludedMoreOften) {
  Rng rng(41);
  std::vector<float> w = {1.0f, 1.0f, 1.0f, 10.0f};
  int64_t heavy = 0;
  int64_t light = 0;
  for (int t = 0; t < 5000; ++t) {
    std::vector<int32_t> out;
    SampleWeightedWithoutReplacement(w, 2, rng, out);
    for (int32_t v : out) {
      (v == 3 ? heavy : light) += 1;
    }
  }
  EXPECT_GT(heavy, light / 3 * 2);  // index 3 dominates inclusion
}

// --- SampleWeightedOne / AliasTable ---

TEST(WeightedOne, ZeroTotalReturnsMinusOne) {
  Rng rng(43);
  std::vector<float> w = {0.0f, 0.0f};
  EXPECT_EQ(SampleWeightedOne(w, rng), -1);
}

TEST(WeightedOne, FallthroughLandsOnLastPositiveWeight) {
  // Regression: the residual r = u * total can survive the whole subtraction
  // scan when sequential rounding leaves it marginally positive. The old code
  // then fell off the loop and returned the final index even when that entry
  // has weight exactly zero — an impossible outcome. Drive the deterministic
  // core with a residual just past the total to pin the corner.
  std::vector<float> w = {0.3f, 0.7f, 0.0f};
  const double total = static_cast<double>(w[0]) + static_cast<double>(w[1]);
  EXPECT_EQ(PickWeightedResidual(w, std::nextafter(total, 2.0)), 1);
  // Residual exhausted exactly at a zero-weight head entry must skip to the
  // first positive index, never select the zero.
  std::vector<float> z = {0.0f, 0.5f, 0.5f};
  EXPECT_EQ(PickWeightedResidual(z, 0.0), 1);
  // All-zero input has no valid pick.
  std::vector<float> none = {0.0f, 0.0f};
  EXPECT_EQ(PickWeightedResidual(none, 0.5), -1);
  // Ordinary residuals still walk the inverse CDF.
  EXPECT_EQ(PickWeightedResidual(w, 0.2), 0);
  EXPECT_EQ(PickWeightedResidual(w, 0.9), 1);
}

TEST(AliasTable, EmptyAndZero) {
  Rng rng(47);
  AliasTable empty;
  EXPECT_EQ(empty.Sample(rng), -1);
  std::vector<float> zeros = {0.0f, 0.0f};
  AliasTable zero_table{std::span<const float>(zeros)};
  EXPECT_EQ(zero_table.Sample(rng), -1);
}

TEST(AliasTable, MatchesWeights) {
  Rng rng(53);
  std::vector<float> w = {0.5f, 1.5f, 3.0f, 5.0f};
  AliasTable table{std::span<const float>(w)};
  const int64_t trials = 50000;
  std::vector<int64_t> counts(4, 0);
  for (int64_t t = 0; t < trials; ++t) {
    ++counts[table.Sample(rng)];
  }
  const double stat = testing::ChiSquare(counts, {0.05, 0.15, 0.30, 0.50}, trials);
  EXPECT_LT(stat, 16.3);
}

}  // namespace
}  // namespace gs
