// Tests for gs::ha (src/ha/): replica placement invariants, the health
// state-machine transition goldens, coverage helpers, the failover
// bit-identity oracle (kill each shard in turn with r=2 — outputs must
// match single-device sampling), recovery re-admission after a transient
// device loss, degraded-mode serving (r=1 — typed partial responses with
// coverage fractions, never failures), and a concurrent-failover TSan
// target (tools/check.sh ha tier).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "core/engine.h"
#include "core/executor.h"
#include "fault/fault.h"
#include "fault/status.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "ha/health.h"
#include "serving/request.h"
#include "serving/server.h"
#include "shard/shard.h"
#include "tests/testing.h"

namespace gs::ha {
namespace {

using core::BitIdentical;
using core::Value;
using tensor::IdArray;

graph::Graph HaGraph() { return testing::SmallRmat(300, 3000, 9); }

IdArray Seeds(std::vector<int32_t> ids) { return IdArray::FromVector(ids); }

void ExpectBitIdentical(const std::vector<Value>& a, const std::vector<Value>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a[i], b[i])) << context << " output " << i << " diverged";
  }
}

// Single-device reference: same program, same options, same seed.
std::vector<Value> ReferenceSample(const std::string& algorithm, const graph::Graph& g,
                                   const IdArray& frontier, uint64_t seed) {
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algorithm, g);
  auto plan = std::make_shared<core::CompiledPlan>(std::move(ap.program), core::SamplerOptions{},
                                                   algorithm);
  core::SamplerSession session(std::move(plan), g, std::move(ap.tensors));
  session.Warmup(Seeds({0, 1, 2, 3}));
  return session.SampleSeeded(frontier, seed);
}

shard::ShardGroup MakeGroup(const graph::Graph& g, int num_shards, int num_replicas) {
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  shard::ShardGroupOptions options;
  options.num_shards = num_shards;
  options.num_replicas = num_replicas;
  return shard::ShardGroup(g, std::move(ap.program), std::move(ap.tensors), options);
}

// ---------------------------------------------------- replica placement

// Chained declustering is a pure function of (shard, replica, num_shards):
// replica k of shard s lives on device (s + k) % N, so one dead device
// takes out one replica of each of r shards, never all replicas of one.
TEST(ReplicaPlacement, ChainedDeclusteringIsDeterministic) {
  const graph::Graph g = HaGraph();
  const graph::Partition p =
      graph::Partitioner::Build(g, graph::PartitionKind::kEdgeCut, 4, 2);
  EXPECT_EQ(p.num_replicas(), 2);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(p.ReplicaDevice(s, 0), s) << "primary must live on the home device";
    EXPECT_EQ(p.ReplicaDevice(s, 1), (s + 1) % 4);
    EXPECT_GT(p.SegmentBytes(s), 0);
  }
  for (int d = 0; d < 4; ++d) {
    int hosted = 0;
    for (int s = 0; s < 4; ++s) {
      const bool hosts = p.Hosts(d, s);
      EXPECT_EQ(hosts, (d - s + 4) % 4 < 2) << "device " << d << " shard " << s;
      hosted += hosts ? 1 : 0;
    }
    EXPECT_EQ(hosted, 2) << "every device hosts exactly r segments";
  }
}

TEST(ReplicaPlacement, SingleReplicaHostsOnlyItself) {
  const graph::Graph g = HaGraph();
  const graph::Partition p =
      graph::Partitioner::Build(g, graph::PartitionKind::kEdgeCut, 3, 1);
  for (int d = 0; d < 3; ++d) {
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(p.Hosts(d, s), d == s);
    }
  }
  EXPECT_THROW(graph::Partitioner::Build(g, graph::PartitionKind::kEdgeCut, 3, 4), Error);
  EXPECT_THROW(graph::Partitioner::Build(g, graph::PartitionKind::kEdgeCut, 3, 0), Error);
}

// ------------------------------------------------ health state machine

// The gray-signal ladder: healthy -> suspect after suspect_threshold
// signals, suspect -> dead after dead_threshold more, with consecutive
// successes re-admitting a suspect. The transition log is the golden: the
// monitor is deterministic in the signal sequence.
TEST(HealthMonitorTest, GraySignalLadderTransitionGoldens) {
  HealthOptions options;
  options.suspect_threshold = 2;
  options.dead_threshold = 2;
  options.recover_successes = 2;
  HealthMonitor monitor(2, options);

  monitor.ReportExchangeTimeout(0);  // gray 1/2: still healthy
  EXPECT_EQ(monitor.state(0), ShardHealth::kHealthy);
  monitor.ReportSlowShard(0);  // gray 2/2: suspect
  EXPECT_EQ(monitor.state(0), ShardHealth::kSuspect);
  EXPECT_TRUE(monitor.Alive(0)) << "suspect shards still take work";

  monitor.ReportSuccess(0);  // 1/2 toward re-admission
  EXPECT_EQ(monitor.state(0), ShardHealth::kSuspect);
  monitor.ReportSuccess(0);  // 2/2: healthy again
  EXPECT_EQ(monitor.state(0), ShardHealth::kHealthy);

  monitor.ReportTransient(0);
  monitor.ReportTransient(0);  // suspect again
  monitor.ReportStuckKernels(0, 3);  // gray 1/2 while suspect
  monitor.ReportExchangeTimeout(0);  // gray 2/2: dead
  EXPECT_EQ(monitor.state(0), ShardHealth::kDead);
  EXPECT_FALSE(monitor.Alive(0));

  const std::vector<HealthTransition> log = monitor.transitions();
  ASSERT_EQ(log.size(), 4u);
  const struct {
    ShardHealth from;
    ShardHealth to;
    const char* cause;
  } kGolden[] = {
      {ShardHealth::kHealthy, ShardHealth::kSuspect, "slow-shard"},
      {ShardHealth::kSuspect, ShardHealth::kHealthy, "recovered"},
      {ShardHealth::kHealthy, ShardHealth::kSuspect, "transient"},
      {ShardHealth::kSuspect, ShardHealth::kDead, "exchange-timeout"},
  };
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].seq, static_cast<int64_t>(i));
    EXPECT_EQ(log[i].shard, 0);
    EXPECT_EQ(log[i].from, kGolden[i].from) << "transition " << i;
    EXPECT_EQ(log[i].to, kGolden[i].to) << "transition " << i;
    EXPECT_STREQ(log[i].cause, kGolden[i].cause) << "transition " << i;
  }

  // The untouched shard never moved.
  EXPECT_EQ(monitor.state(1), ShardHealth::kHealthy);
  EXPECT_TRUE(monitor.Alive(1));
  const HealthCounters c = monitor.counters(0);
  EXPECT_EQ(c.exchange_timeouts, 2);
  EXPECT_EQ(c.slow_signals, 1);
  EXPECT_EQ(c.transients, 2);
  EXPECT_EQ(c.stuck_kernels, 3);
  EXPECT_EQ(c.successes, 2);
}

// Dead shards admit exactly one probe per backoff window, counted in
// placement attempts (not wall-clock) so replays are deterministic; each
// failed probe doubles the window up to the ceiling.
TEST(HealthMonitorTest, DeviceLostProbesWithCounterSpaceBackoff) {
  HealthOptions options;
  options.probe_backoff = 2;
  options.max_probe_backoff = 8;
  options.recover_successes = 2;
  HealthMonitor monitor(1, options);

  monitor.ReportDeviceLost(0);  // any state -> dead
  EXPECT_EQ(monitor.state(0), ShardHealth::kDead);
  EXPECT_FALSE(monitor.Alive(0));

  // Window 1 (backoff 2): attempt 1 denied, attempt 2 admits the probe.
  EXPECT_FALSE(monitor.AdmitWork(0));
  EXPECT_TRUE(monitor.AdmitWork(0));
  monitor.ReportProbeFailure(0);  // window doubles to 4: next probe at attempt 6
  EXPECT_FALSE(monitor.AdmitWork(0));
  EXPECT_FALSE(monitor.AdmitWork(0));
  EXPECT_FALSE(monitor.AdmitWork(0));
  EXPECT_TRUE(monitor.AdmitWork(0));
  EXPECT_EQ(monitor.counters(0).probes_admitted, 2);
  EXPECT_EQ(monitor.counters(0).probes_failed, 1);

  // The probe made it through: dead -> recovering, then successes re-admit.
  monitor.ReportSuccess(0);
  EXPECT_EQ(monitor.state(0), ShardHealth::kRecovering);
  EXPECT_TRUE(monitor.Alive(0));
  EXPECT_TRUE(monitor.AdmitWork(0));  // recovering shards admit freely
  monitor.ReportSuccess(0);
  EXPECT_EQ(monitor.state(0), ShardHealth::kHealthy);

  const std::vector<HealthTransition> log = monitor.transitions();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_STREQ(log[0].cause, "device-lost");
  EXPECT_EQ(log[0].to, ShardHealth::kDead);
  EXPECT_STREQ(log[1].cause, "probe-success");
  EXPECT_EQ(log[1].to, ShardHealth::kRecovering);
  EXPECT_STREQ(log[2].cause, "recovered");
  EXPECT_EQ(log[2].to, ShardHealth::kHealthy);
}

// A gray signal while recovering falls back to suspect rather than
// restarting the dead-shard probe ladder.
TEST(HealthMonitorTest, RecoveringFallsBackToSuspectOnGraySignal) {
  HealthOptions options;
  options.recover_successes = 2;
  HealthMonitor monitor(1, options);
  monitor.ReportDeviceLost(0);
  monitor.ReportSuccess(0);
  ASSERT_EQ(monitor.state(0), ShardHealth::kRecovering);
  monitor.ReportExchangeTimeout(0);
  EXPECT_EQ(monitor.state(0), ShardHealth::kSuspect);
}

// ------------------------------------------------------------ coverage

TEST(CoverageTest, FractionCountsLiveHomeShards) {
  const graph::Graph g = HaGraph();
  const graph::Partition p =
      graph::Partitioner::Build(g, graph::PartitionKind::kEdgeCut, 2, 1);
  HealthMonitor monitor(2);
  const int32_t n = static_cast<int32_t>(g.num_nodes());
  const int32_t a0 = p.LocalNodes(0)[0];
  const int32_t a1 = p.LocalNodes(0)[1];
  const int32_t b0 = p.LocalNodes(1)[0];
  // Mixed frontier: three shard-0 seeds (one a folded super-batch label),
  // one shard-1 seed, one walk dead-end marker.
  const std::vector<int32_t> ids = {a0, a1, b0, -1, static_cast<int32_t>(a0 + n)};

  EXPECT_DOUBLE_EQ(CoverageFraction(p, monitor, ids.data(), ids.size()), 1.0);
  EXPECT_EQ(CoveredIds(p, monitor, ids.data(), ids.size()),
            (std::vector<int32_t>{a0, a1, b0, static_cast<int32_t>(a0 + n)}));

  monitor.ReportDeviceLost(1);
  EXPECT_DOUBLE_EQ(CoverageFraction(p, monitor, ids.data(), ids.size()), 0.75);
  EXPECT_EQ(CoveredIds(p, monitor, ids.data(), ids.size()),
            (std::vector<int32_t>{a0, a1, static_cast<int32_t>(a0 + n)}));

  // Nothing to lose: empty or all-dead-end frontiers are fully covered.
  EXPECT_DOUBLE_EQ(CoverageFraction(p, monitor, ids.data(), 0), 1.0);
  const std::vector<int32_t> dead_ends = {-1, -1};
  EXPECT_DOUBLE_EQ(CoverageFraction(p, monitor, dead_ends.data(), dead_ends.size()), 1.0);
}

// With r=2 a shard stays covered while ANY of its replica devices lives.
TEST(CoverageTest, ReplicasKeepShardsCovered) {
  const graph::Graph g = HaGraph();
  const graph::Partition p =
      graph::Partitioner::Build(g, graph::PartitionKind::kEdgeCut, 2, 2);
  HealthMonitor monitor(2);
  const std::vector<int32_t> ids = {p.LocalNodes(1)[0], p.LocalNodes(1)[1]};

  // Shard 1's replica chain is devices {1, 0}: losing device 1 alone
  // leaves the replica on device 0 serving it.
  monitor.ReportDeviceLost(1);
  EXPECT_DOUBLE_EQ(CoverageFraction(p, monitor, ids.data(), ids.size()), 1.0);
  monitor.ReportDeviceLost(0);
  EXPECT_DOUBLE_EQ(CoverageFraction(p, monitor, ids.data(), ids.size()), 0.0);
  EXPECT_TRUE(CoveredIds(p, monitor, ids.data(), ids.size()).empty());
}

// ------------------------------------------- failover bit-identity oracle

// The HA core guarantee: killing any one shard's device with r=2 never
// changes what is sampled. Every replica binds the full graph and
// SampleSeeded is pure, so a failed-over sample is bit-identical to the
// single-device reference — kill each shard in turn and check all of them.
TEST(HaOracle, FailoverIsBitIdenticalKillingEachShardInTurn) {
  const graph::Graph g = HaGraph();
  const IdArray frontier = Seeds({5, 17, 42, 101, 250});
  const std::vector<Value> reference = ReferenceSample("GraphSAGE", g, frontier, 77);
  constexpr int kShards = 3;
  for (int victim = 0; victim < kShards; ++victim) {
    const shard::ShardGroup group = MakeGroup(g, kShards, /*num_replicas=*/2);
    fault::FaultScope scope(fault::FaultPlan::Parse(
        "shard" + std::to_string(victim) + ":shard.lost:after=0",
        1234 + static_cast<uint64_t>(victim)));
    for (int s = 0; s < kShards; ++s) {
      ExpectBitIdentical(group.Sample(s, frontier, 77), reference,
                         "victim " + std::to_string(victim) + " shard " + std::to_string(s));
    }
    // The kill was observed and absorbed: the victim is dead, its sample
    // was served by the next replica in the chain, and nothing failed.
    EXPECT_EQ(group.monitor().state(victim), ShardHealth::kDead);
    EXPECT_GE(group.monitor().counters(victim).device_lost, 1);
    EXPECT_GE(group.exchange_stats(victim).failovers, 1)
        << "victim " << victim << "'s sample should have failed over";
  }
}

// With r=1 there is nowhere to fail over: a permanently dead shard raises
// the typed unavailability error (serving converts it into a degraded
// partial response), while other shards keep sampling bit-identically.
TEST(HaOracle, SingleReplicaKillRaisesShardUnavailable) {
  const graph::Graph g = HaGraph();
  const IdArray frontier = Seeds({5, 17, 42, 101});
  const std::vector<Value> reference = ReferenceSample("GraphSAGE", g, frontier, 11);
  const shard::ShardGroup group = MakeGroup(g, 2, /*num_replicas=*/1);
  fault::FaultScope scope(fault::FaultPlan::Parse("shard0:shard.lost:after=0", 3));
  EXPECT_THROW(group.Sample(0, frontier, 11), fault::ShardUnavailableError);
  ExpectBitIdentical(group.Sample(1, frontier, 11), reference, "surviving shard");
  EXPECT_EQ(group.monitor().state(0), ShardHealth::kDead);
}

// A device lost exactly once (occ=0 fires on the first placement probe
// only) is re-admitted by the backoff ladder: the next admitted probe
// succeeds, revives the device, and the shard walks dead -> recovering ->
// healthy — with every sample along the way still bit-identical.
TEST(HaOracle, RecoveryReadmitsShardAfterTransientLoss) {
  const graph::Graph g = HaGraph();
  const IdArray frontier = Seeds({3, 33, 133, 233});
  const std::vector<Value> reference = ReferenceSample("GraphSAGE", g, frontier, 21);
  const shard::ShardGroup group = MakeGroup(g, 2, /*num_replicas=*/2);
  fault::FaultScope scope(fault::FaultPlan::Parse("shard0:shard.lost:occ=0", 7));

  // Sample 1: the kill fires, work fails over to the replica (device 1).
  // Sample 2: probe denied by backoff, replica serves again. Sample 3: the
  // admitted probe succeeds (the plan's single occurrence is spent) and
  // revives the device. Sample 4: recovering shard serves on its primary
  // and graduates to healthy.
  constexpr int kSamples = 6;
  for (int i = 0; i < kSamples; ++i) {
    ExpectBitIdentical(group.Sample(0, frontier, 21), reference,
                       "recovery sample " + std::to_string(i));
  }
  EXPECT_EQ(group.monitor().state(0), ShardHealth::kHealthy);
  EXPECT_FALSE(group.device(0).lost()) << "the successful probe should revive the device";
  EXPECT_EQ(group.exchange_stats(0).samples, kSamples);
  EXPECT_EQ(group.exchange_stats(0).failovers, 2)
      << "exactly the kill sample and the backoff-denied sample fail over";
  EXPECT_EQ(group.monitor().counters(0).device_lost, 1);
  EXPECT_EQ(group.monitor().counters(0).probes_admitted, 1);

  const std::vector<HealthTransition> log = group.monitor().transitions();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_STREQ(log[0].cause, "device-lost");
  EXPECT_STREQ(log[1].cause, "probe-success");
  EXPECT_STREQ(log[2].cause, "recovered");
}

// ------------------------------------------------------- concurrency

// TSan target (tools/check.sh ha tier): four threads hammer their own
// shards while one shard's device is permanently dead. Failover decisions,
// health signals, and stats accounting race here; outputs must stay
// bit-identical throughout.
TEST(HaConcurrency, ConcurrentFailoverStaysBitIdentical) {
  const graph::Graph g = HaGraph();
  const IdArray frontier = Seeds({3, 33, 133, 233});
  const std::vector<Value> reference = ReferenceSample("GraphSAGE", g, frontier, 21);
  const shard::ShardGroup group = MakeGroup(g, 4, /*num_replicas=*/2);
  fault::FaultScope scope(fault::FaultPlan::Parse("shard2:shard.lost:after=0", 99));

  constexpr int kSamplesPerShard = 6;
  std::vector<std::future<bool>> workers;
  for (int s = 0; s < 4; ++s) {
    workers.push_back(std::async(std::launch::async, [&, s] {
      bool identical = true;
      for (int i = 0; i < kSamplesPerShard; ++i) {
        const std::vector<Value> out = group.Sample(s, frontier, 21);
        identical = identical && out.size() == reference.size();
        for (size_t k = 0; k < out.size() && identical; ++k) {
          identical = identical && BitIdentical(out[k], reference[k]);
        }
      }
      return identical;
    }));
  }
  for (auto& worker : workers) {
    EXPECT_TRUE(worker.get());
  }
  // The permanent kill means every shard-2 sample landed on its replica.
  EXPECT_EQ(group.monitor().state(2), ShardHealth::kDead);
  EXPECT_EQ(group.exchange_stats(2).failovers, kSamplesPerShard);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(group.exchange_stats(s).samples, kSamplesPerShard);
  }
}

// ---------------------------------------------------- degraded serving

serving::SampleRequest MakeRequest(const IdArray& seeds, uint64_t seed) {
  serving::SampleRequest request;
  request.algorithm = "GraphSAGE";
  request.dataset = "small";
  request.seeds = seeds;
  request.seed = seed;
  request.fanouts = {4, 4};
  return request;
}

// r=1: killing the home shard of a request leaves nowhere to fail over,
// so the server answers a typed partial — Status::kDegraded with the
// coverage fraction of seeds whose home shard still lives — never an
// error, never a crash.
TEST(HaServing, DegradedPartialResponsesCarryCoverageFractions) {
  const graph::Graph g = HaGraph();
  serving::ServerOptions options;
  options.num_workers = 1;
  options.num_shards = 2;
  options.num_replicas = 1;
  serving::Server server(options);
  server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "small", g));
  server.Start();

  const graph::Partition partition = graph::Partitioner::EdgeCut(g, 2);
  const std::vector<int32_t>& mine = partition.LocalNodes(1);
  const std::vector<int32_t>& other = partition.LocalNodes(0);
  fault::FaultScope scope(fault::FaultPlan::Parse("shard1:shard.lost:after=0", 5));

  // All four seeds home on the dead shard: an honest empty partial.
  serving::SampleResponse empty =
      server.Submit(MakeRequest(Seeds({mine[0], mine[1], mine[2], mine[3]}), 7)).get();
  EXPECT_EQ(empty.status, serving::Status::kDegraded) << empty.error;
  EXPECT_TRUE(empty.degraded);
  EXPECT_DOUBLE_EQ(empty.coverage, 0.0);
  EXPECT_TRUE(empty.outputs.empty());

  // Three dead-shard seeds plus one live one: the request still routes to
  // the dead plurality shard, and the partial covers exactly the live seed.
  serving::SampleResponse partial =
      server.Submit(MakeRequest(Seeds({mine[0], mine[1], mine[2], other[0]}), 7)).get();
  EXPECT_EQ(partial.status, serving::Status::kDegraded) << partial.error;
  EXPECT_DOUBLE_EQ(partial.coverage, 0.25);
  EXPECT_FALSE(partial.outputs.empty());

  const serving::ServerStats stats = server.stats();
  EXPECT_EQ(stats.partial, 2);
  EXPECT_EQ(stats.failed, 0);
  ASSERT_NE(server.health_monitor(), nullptr);
  EXPECT_FALSE(server.health_monitor()->Alive(1));
  server.Stop();
}

// r=2: the same kill is invisible to clients — the replica serves the dead
// shard's requests bit-identically to an unfaulted server, with zero
// failures and the failover counted.
TEST(HaServing, ReplicatedServerFailsOverBitIdentically) {
  const graph::Graph g = HaGraph();
  const graph::Partition partition = graph::Partitioner::EdgeCut(g, 2);
  const std::vector<int32_t>& mine = partition.LocalNodes(1);
  const IdArray seeds = Seeds({mine[0], mine[1], mine[2], mine[3]});

  auto serve_once = [&](bool kill) {
    serving::ServerOptions options;
    options.num_workers = 1;
    options.num_shards = 2;
    options.num_replicas = 2;
    auto server = std::make_unique<serving::Server>(options);
    server->RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "small", g));
    server->Start();
    std::unique_ptr<fault::FaultScope> scope;
    if (kill) {
      scope = std::make_unique<fault::FaultScope>(
          fault::FaultPlan::Parse("shard1:shard.lost:after=0", 5));
    }
    serving::SampleResponse response = server->Submit(MakeRequest(seeds, 99)).get();
    EXPECT_EQ(response.status, serving::Status::kOk) << response.error;
    EXPECT_DOUBLE_EQ(response.coverage, 1.0);
    // Keep the server (and its shard devices, which own the response's
    // memory) alive until the caller is done comparing.
    return std::make_pair(std::move(server), std::move(response));
  };

  auto [clean_server, clean] = serve_once(false);
  auto [killed_server, killed] = serve_once(true);
  ExpectBitIdentical(killed.outputs, clean.outputs, "failed-over serving");

  const serving::ServerStats stats = killed_server->stats();
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.partial, 0);
  EXPECT_GE(stats.failovers, 1);
  clean_server->Stop();
  killed_server->Stop();
}

}  // namespace
}  // namespace gs::ha
