// Tests for the optimization passes: each rewrite produces the expected IR
// shape, and optimized programs sample identically to unoptimized ones.

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "core/passes.h"
#include "core/trace.h"
#include "tests/testing.h"

namespace gs::core {
namespace {

int CountKind(const Program& p, OpKind kind) {
  int count = 0;
  for (const Node& n : p.nodes()) {
    count += n.kind == kind ? 1 : 0;
  }
  return count;
}

Program TraceLadiesLayer() {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub = a.Cols(f);
  TVal row_probs = sub.Pow(2.0f).Sum(0);
  MVal sample = sub.CollectiveSample(8, row_probs);
  TVal selected = sample.Pow(2.0f).Sum(0);
  MVal w1 = sample.Div(selected, 0);
  MVal w2 = w1.Div(w1.Sum(1), 1);
  b.Output(w2);
  b.Output(sample.Row());
  return std::move(b).Build();
}

TEST(HoistOverExtract, MovesInvariantOpsAboveSlice) {
  Program p = TraceLadiesLayer();
  ASSERT_GT(HoistOverExtract(p), 0);
  p.Verify();
  // The squared weights are now computed on the full graph (invariant) and
  // sliced afterwards.
  bool found = false;
  for (const Node& n : p.nodes()) {
    if (n.kind == OpKind::kEltwiseScalar && n.invariant) {
      EXPECT_EQ(p.node(n.inputs[0]).kind, OpKind::kGraphInput);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HoistOverExtract, ChainsHoistCompletely) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal scaled = (a.Cols(f).Pow(2.0f)) * 3.0f;  // two hoistable stages
  b.Output(scaled.Sum(0));
  Program p = std::move(b).Build();
  EXPECT_EQ(HoistOverExtract(p), 2);
  p.Verify();
}

TEST(HoistOverExtract, SkipsBatchDependentOperands) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub = a.Cols(f);
  // The broadcast operand depends on the batch -> not hoistable.
  TVal batch_dep = sub.Sum(0);
  MVal scaled = sub.Mul(batch_dep, 0);
  b.Output(scaled);
  Program p = std::move(b).Build();
  EXPECT_EQ(HoistOverExtract(p), 0);
}

TEST(MarkInvariant, SamplingNeverInvariant) {
  Program p = TraceLadiesLayer();
  MarkInvariant(p);
  for (const Node& n : p.nodes()) {
    if (n.kind == OpKind::kCollectiveSample || n.kind == OpKind::kFrontierInput) {
      EXPECT_FALSE(n.invariant);
    }
    if (n.kind == OpKind::kGraphInput) {
      EXPECT_TRUE(n.invariant);
    }
  }
}

TEST(FuseExtractSelect, FusesSingleConsumerOnly) {
  // GraphSAGE: slice feeds only the sample -> fused.
  Builder b1;
  MVal a1 = b1.Graph();
  IVal f1 = b1.Frontier();
  MVal s1 = a1.Cols(f1).IndividualSample(4);
  b1.Output(s1);
  Program p1 = std::move(b1).Build();
  EXPECT_EQ(FuseExtractSelect(p1), 1);
  EXPECT_EQ(CountKind(p1, OpKind::kFusedSliceSample), 1);
  EXPECT_EQ(CountKind(p1, OpKind::kSliceCols), 0);

  // Slice with a second consumer -> not fused.
  Builder b2;
  MVal a2 = b2.Graph();
  IVal f2 = b2.Frontier();
  MVal sub = a2.Cols(f2);
  b2.Output(sub.IndividualSample(4));
  b2.Output(sub.Sum(0));
  Program p2 = std::move(b2).Build();
  EXPECT_EQ(FuseExtractSelect(p2), 0);
}

TEST(FuseEdgeMapReduce, AbsorbsMapIntoReduce) {
  Program p = TraceLadiesLayer();
  const int fused = FuseEdgeMapReduce(p);
  EXPECT_GE(fused, 2);  // both Pow+Sum pairs at least
  p.Verify();
  EXPECT_GT(CountKind(p, OpKind::kFusedEdgeMapReduce), 0);
}

TEST(FuseEdgeMaps, CollapsesChains) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub = a.Cols(f);
  MVal chained = (sub.Pow(2.0f) * 3.0f).Div(sub.Sum(1), 1);
  b.Output(chained);
  Program p = std::move(b).Build();
  EXPECT_GE(FuseEdgeMaps(p), 2);
  p.Verify();
  // One fused node with 3 stages replaces the chain.
  bool found = false;
  for (const Node& n : p.nodes()) {
    if (n.kind == OpKind::kFusedEdgeMap) {
      EXPECT_EQ(n.attrs.stages.size(), 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RewriteSddmm, MatchesMulOfTransposedMatmul) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub = a.Cols(f);
  TVal u = b.Input("u");
  TVal v = b.Input("v");
  MVal att = sub.MulDense(u.MM(v.T()));
  b.Output(att);
  Program p = std::move(b).Build();
  EXPECT_EQ(RewriteSddmm(p), 1);
  p.Verify();
  EXPECT_EQ(CountKind(p, OpKind::kSddmm), 1);
  EXPECT_EQ(CountKind(p, OpKind::kDenseEltwise), 0);
  EXPECT_EQ(CountKind(p, OpKind::kMatMul), 0);  // dead after rewrite
}

TEST(Cse, MergesIdenticalPureOps) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub1 = a.Cols(f);
  MVal sub2 = a.Cols(f);  // duplicate
  b.Output(sub1.Sum(0));
  b.Output(sub2.Sum(1));
  Program p = std::move(b).Build();
  EXPECT_EQ(EliminateCommonSubexpressions(p), 1);
  EXPECT_EQ(CountKind(p, OpKind::kSliceCols), 1);
  p.Verify();
}

TEST(Cse, NeverMergesSamplingOps) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub = a.Cols(f);
  MVal s1 = sub.IndividualSample(3);
  MVal s2 = sub.IndividualSample(3);  // same shape, different randomness
  b.Output(s1);
  b.Output(s2);
  Program p = std::move(b).Build();
  EliminateCommonSubexpressions(p);
  EXPECT_EQ(CountKind(p, OpKind::kIndividualSample), 2);
}

TEST(Dce, CountsRemoved) {
  Builder b;
  MVal a = b.Graph();
  IVal f = b.Frontier();
  MVal sub = a.Cols(f);
  (void)sub.Pow(2.0f);
  (void)sub.Sum(0);
  b.Output(sub);
  Program p = std::move(b).Build();
  EXPECT_EQ(DeadCodeElimination(p), 2);
}

// --- End-to-end equivalence: for the same seed, every optimization
// configuration must produce the identical sampled subgraphs (the passes
// preserve both semantics and randomness consumption order). ---

struct OptConfig {
  bool fusion;
  bool preprocess;
  bool layout;
};

class OptEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(OptEquivalence, AllConfigurationsSampleIdentically) {
  const std::string algo = GetParam();
  graph::Graph g = gs::testing::SmallRmat(200, 2000, 21, true);
  std::vector<int32_t> fr = {1, 2, 3, 4, 5, 6, 7, 8};
  const tensor::IdArray frontier = tensor::IdArray::FromVector(fr);

  const std::vector<OptConfig> configs = {
      {false, false, false}, {true, false, false}, {false, true, false},
      {true, true, false},   {true, true, true},
  };

  std::vector<std::vector<std::map<std::pair<int32_t, int32_t>, float>>> results;
  for (const OptConfig& c : configs) {
    algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algo, g);
    SamplerOptions opts;
    opts.enable_fusion = c.fusion;
    opts.enable_preprocessing = c.preprocess;
    opts.enable_layout_selection = c.layout;
    opts.seed = 0xABCD;
    CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
    std::vector<Value> out = sampler.Sample(frontier);
    std::vector<std::map<std::pair<int32_t, int32_t>, float>> edge_sets;
    for (const Value& v : out) {
      if (v.kind == ValueKind::kMatrix) {
        edge_sets.push_back(gs::testing::EdgeSet(v.matrix));
      }
    }
    results.push_back(std::move(edge_sets));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size());
    for (size_t m = 0; m < results[0].size(); ++m) {
      // Compare structure exactly; values within float tolerance.
      ASSERT_EQ(results[i][m].size(), results[0][m].size()) << "config " << i;
      auto it0 = results[0][m].begin();
      auto iti = results[i][m].begin();
      for (; it0 != results[0][m].end(); ++it0, ++iti) {
        EXPECT_EQ(it0->first, iti->first) << "config " << i;
        EXPECT_NEAR(it0->second, iti->second, 1e-3f) << "config " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, OptEquivalence,
                         ::testing::Values("GraphSAGE", "LADIES", "FastGCN", "ShaDow",
                                           "SEAL", "AS-GCN", "PASS", "GCN-BS", "Thanos",
                                           "VR-GCN", "GraphSAINT", "PinSAGE", "DeepWalk",
                                           "Node2Vec"));

TEST(OptEquivalenceIds, WalkTracesIdenticalAcrossConfigs) {
  // Walk programs return only id arrays; verify those too (the matrix-based
  // parameterized test above only compares matrix outputs).
  graph::Graph g = gs::testing::SmallRmat(200, 2000, 29, false);
  std::vector<int32_t> fr = {3, 4, 5, 6};
  const tensor::IdArray frontier = tensor::IdArray::FromVector(fr);
  std::vector<std::vector<std::vector<int32_t>>> results;
  for (bool optimized : {false, true}) {
    algorithms::AlgorithmProgram ap = algorithms::DeepWalk(g, {.walk_length = 12});
    SamplerOptions opts;
    opts.enable_fusion = optimized;
    opts.enable_preprocessing = optimized;
    opts.enable_layout_selection = optimized;
    opts.seed = 0x77;
    CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
    std::vector<Value> out = sampler.Sample(frontier);
    std::vector<std::vector<int32_t>> traces;
    for (const Value& v : out) {
      traces.push_back(v.ids.ToVector());
    }
    results.push_back(std::move(traces));
  }
  EXPECT_EQ(results[0], results[1]);
}

}  // namespace
}  // namespace gs::core
