// Oracle tier: differential plan verification across the full algorithm x
// dataset x device-profile matrix, statistical-test machinery units, and
// distribution tests for the sampling primitives.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "common/sampling.h"
#include "core/executor.h"
#include "device/device.h"
#include "graph/datasets.h"
#include "oracle/oracle.h"
#include "oracle/stats.h"
#include "sparse/kernels.h"
#include "tests/testing.h"

namespace gs::oracle {
namespace {

// ------------------------------------------------------------ stats units

TEST(Stats, ChiSquarePValueKnownPoints) {
  // Classic table entries: chi2(1) upper tail at 3.841 is 5%.
  EXPECT_NEAR(ChiSquarePValue(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquarePValue(9.488, 4), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquarePValue(0.0, 3), 1.0, 1e-12);
  EXPECT_LT(ChiSquarePValue(100.0, 3), 1e-12);
  // dof <= 0 degenerates to "no test".
  EXPECT_EQ(ChiSquarePValue(5.0, 0), 1.0);
}

TEST(Stats, RegularizedGammaQBounds) {
  EXPECT_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  // Q(1, x) = e^-x exactly.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaQ(1.0, x), std::exp(-x), 1e-10);
  }
}

TEST(Stats, GoodnessOfFitAcceptsMatchingCounts) {
  // Counts exactly proportional to the probabilities: statistic 0.
  std::vector<int64_t> observed = {100, 200, 300, 400};
  std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  const TestResult r = ChiSquareGoodnessOfFit(observed, probs);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(Stats, GoodnessOfFitRejectsSkew) {
  std::vector<int64_t> observed = {400, 100, 300, 200};
  std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  const TestResult r = ChiSquareGoodnessOfFit(observed, probs);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Stats, GoodnessOfFitPoolsSparseTail) {
  // 60 categories with tiny expected counts must be pooled, not fed to the
  // chi-square approximation raw.
  std::vector<int64_t> observed(60, 1);
  std::vector<double> probs(60, 1.0 / 60.0);
  const TestResult r = ChiSquareGoodnessOfFit(observed, probs, 5.0);
  EXPECT_GT(r.dof, 0);
  EXPECT_LT(r.dof, 59);  // pooling reduced the cell count
  EXPECT_GT(r.p_value, 0.5);
}

TEST(Stats, HomogeneityAcceptsSameDistribution) {
  Rng rng(11);
  std::vector<int64_t> a(20, 0);
  std::vector<int64_t> b(20, 0);
  for (int t = 0; t < 20000; ++t) {
    a[rng.UniformInt(20)] += 1;
    b[rng.UniformInt(20)] += 1;
  }
  const TestResult r = ChiSquareHomogeneity(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Stats, HomogeneityRejectsDifferentDistributions) {
  Rng rng(13);
  std::vector<int64_t> a(20, 0);
  std::vector<int64_t> b(20, 0);
  for (int t = 0; t < 20000; ++t) {
    a[rng.UniformInt(20)] += 1;
    b[rng.UniformInt(10)] += 1;  // b concentrated on half the categories
  }
  const TestResult r = ChiSquareHomogeneity(a, b);
  EXPECT_LT(r.p_value, 1e-9);
}

TEST(Stats, KolmogorovSmirnovSeparatesShiftedSamples) {
  Rng rng(17);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int t = 0; t < 4000; ++t) {
    a.push_back(rng.Uniform());
    b.push_back(rng.Uniform());
    c.push_back(rng.Uniform() + 0.2);
  }
  EXPECT_GT(KolmogorovSmirnov(a, b).p_value, 0.01);
  EXPECT_LT(KolmogorovSmirnov(a, c).p_value, 1e-9);
}

// ----------------------------------------------- sampling primitives (dist)

TEST(Primitives, OracleSuiteIsClean) {
  for (const CheckResult& check : VerifySamplingPrimitives(0x5EED01)) {
    EXPECT_TRUE(check.ok) << check.ToString();
  }
}

TEST(Primitives, AliasTableMatchesAnalyticInclusion) {
  // Satellite: alias-table distribution vs the analytic probabilities, with
  // a real p-value instead of a fixed statistic threshold.
  const std::vector<float> weights = {0.5f, 1.5f, 3.0f, 5.0f, 0.1f};
  AliasTable table{std::span<const float>(weights)};
  Rng rng(101);
  std::vector<int64_t> counts(weights.size(), 0);
  constexpr int64_t kTrials = 50000;
  for (int64_t t = 0; t < kTrials; ++t) {
    counts[static_cast<size_t>(table.Sample(rng))] += 1;
  }
  double total = 0.0;
  for (float w : weights) {
    total += w;
  }
  std::vector<double> probs;
  for (float w : weights) {
    probs.push_back(w / total);
  }
  const TestResult r = ChiSquareGoodnessOfFit(counts, probs);
  EXPECT_GT(r.p_value, 0.01) << "stat=" << r.statistic << " dof=" << r.dof;
}

TEST(Primitives, WeightedWithoutReplacementMatchesEnumeratedPairs) {
  // Satellite: Efraimidis-Spirakis selection frequencies vs exactly
  // enumerated sequential-sampling pair probabilities (they define the same
  // distribution).
  const std::vector<float> weights = {1.0f, 2.0f, 3.0f, 4.0f};
  double total = 10.0;
  std::vector<double> probs;
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (size_t a = 0; a < weights.size(); ++a) {
    for (size_t b = a + 1; b < weights.size(); ++b) {
      const double wa = weights[a];
      const double wb = weights[b];
      probs.push_back(wa / total * wb / (total - wa) + wb / total * wa / (total - wb));
      pairs.emplace_back(static_cast<int32_t>(a), static_cast<int32_t>(b));
    }
  }
  Rng rng(103);
  std::vector<int64_t> counts(pairs.size(), 0);
  std::vector<int32_t> picks;
  constexpr int64_t kTrials = 30000;
  for (int64_t t = 0; t < kTrials; ++t) {
    picks.clear();
    SampleWeightedWithoutReplacement(weights, 2, rng, picks);
    ASSERT_EQ(picks.size(), 2u);
    const std::pair<int32_t, int32_t> key = {std::min(picks[0], picks[1]),
                                             std::max(picks[0], picks[1])};
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i] == key) {
        counts[i] += 1;
        break;
      }
    }
  }
  const TestResult r = ChiSquareGoodnessOfFit(counts, probs);
  EXPECT_GT(r.p_value, 0.01) << "stat=" << r.statistic << " dof=" << r.dof;
}

// ------------------------------------------------------- differential oracle

core::SamplerOptions FullyOptimized() {
  core::SamplerOptions opts;
  opts.enable_fusion = true;
  opts.enable_preprocessing = true;
  opts.enable_layout_selection = true;
  opts.super_batch = 2;
  opts.seed = 0xD1FF;
  return opts;
}

struct MatrixCase {
  std::string dataset;
  bool eager_twin;  // the expensive check runs on one dataset per algorithm
};

void RunMatrix(const device::DeviceProfile& profile) {
  device::Device device(profile);
  device::DeviceGuard guard(device);
  const std::vector<MatrixCase> cases = {{"LJ", true}, {"PD", false}, {"FS", false}};
  for (const MatrixCase& c : cases) {
    graph::Graph g = graph::MakeDataset(c.dataset, {.scale = 0.004});
    for (const std::string& algo : algorithms::AllAlgorithmNames()) {
      OracleOptions oracle_opts;
      oracle_opts.check_eager_twin = c.eager_twin;
      const OracleReport report = VerifyConfig(algo, g, FullyOptimized(), oracle_opts);
      EXPECT_TRUE(report.ok())
          << c.dataset << " on " << profile.name << ": " << report.ToString();
    }
  }
}

TEST(Oracle, FullMatrixV100) { RunMatrix(device::V100Sim()); }

TEST(Oracle, FullMatrixT4) { RunMatrix(device::T4Sim()); }

TEST(Oracle, EveryPassPrefixIsCorrect) {
  // The fuzzer's bisection hook: truncating the pipeline after any pass
  // must still yield a semantically equivalent plan, so the minimizer can
  // attribute a divergence to the first pass whose prefix fails.
  graph::Graph g = gs::testing::SmallRmat(200, 2000, 31, true);
  algorithms::AlgorithmProgram probe = algorithms::MakeAlgorithm("LADIES", g);
  core::CompiledPlan full(std::move(probe.program), FullyOptimized());
  const int total = static_cast<int>(full.report().passes.size());
  ASSERT_GT(total, 3);
  for (int limit = 0; limit <= total; ++limit) {
    core::SamplerOptions opts = FullyOptimized();
    opts.pass_limit = limit;
    OracleOptions oracle_opts;
    oracle_opts.check_eager_twin = false;
    const OracleReport report = VerifyConfig("LADIES", g, opts, oracle_opts);
    EXPECT_TRUE(report.ok()) << "pass_limit=" << limit << ": " << report.ToString();
  }
}

TEST(Oracle, PassLimitTruncatesPipeline) {
  graph::Graph g = gs::testing::SmallRmat(150, 1200, 37, true);
  algorithms::AlgorithmProgram a = algorithms::MakeAlgorithm("GraphSAGE", g);
  core::SamplerOptions opts = FullyOptimized();
  opts.pass_limit = 2;
  core::CompiledPlan plan(std::move(a.program), opts);
  EXPECT_EQ(plan.report().passes.size(), 2u);
}

TEST(Oracle, RowCompactionDoesNotChangeNodeSets) {
  // Compacting a sample's input is a layout decision, so the node set the
  // sample reports downstream (RowIds = rows that still carry edges) must
  // not change. Regression: sampled results used to inherit the input's
  // rows_compact flag, and RowIds then returned every inherited row —
  // including rows the sampler had emptied.
  device::Device device(device::T4Sim());
  device::DeviceGuard guard(device);
  graph::Graph g = gs::testing::SmallRmat(123, 676, 314901, false);

  std::vector<int32_t> frontier;
  for (int32_t v = 0; v < 13; ++v) {
    frontier.push_back(v * 9 % 123);
  }
  const tensor::IdArray cols = tensor::IdArray::FromVector(frontier);

  const sparse::Matrix plain = sparse::SliceColumns(g.adj(), cols);
  const sparse::Matrix compacted = sparse::CompactRows(plain);

  Rng rng_a(798216);
  Rng rng_b(798216);
  const sparse::Matrix sampled_plain = sparse::IndividualSample(plain, 2, {}, rng_a);
  const sparse::Matrix sampled_compacted = sparse::IndividualSample(compacted, 2, {}, rng_b);
  EXPECT_FALSE(sampled_compacted.rows_compact())
      << "sampling can empty rows; the compact claim must not survive it";

  const std::vector<int32_t> ids_plain = sparse::RowIds(sampled_plain).ToVector();
  const std::vector<int32_t> ids_compacted = sparse::RowIds(sampled_compacted).ToVector();
  EXPECT_EQ(ids_plain, ids_compacted);
}

TEST(Oracle, CompactingCollectiveInputIsRejected) {
  // Row compaction ahead of a collective sample is a semantic change, not a
  // layout choice: a dropped row with positive probability can no longer be
  // drawn. The layout pass never proposes it; the executor must reject it
  // outright so a hand-edited plan cannot sample a different distribution.
  device::Device device(device::T4Sim());
  device::DeviceGuard guard(device);
  graph::Graph g = gs::testing::SmallRmat(123, 676, 314901, false);
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("FastGCN", g);

  for (core::Node& n : ap.program.nodes()) {
    if (n.kind == core::OpKind::kCollectiveSample) {
      ap.program.node(n.inputs[0]).compact_rows = true;
      break;
    }
  }
  EXPECT_THROW(core::Executor(ap.program, core::ExecOptions{.layout = core::LayoutMode::kPlanned}),
               Error);
}

TEST(Oracle, LayoutCalibrationIsDeterministic) {
  // Calibration ranks candidates on the deterministic model clock, so two
  // compiles of the same program must annotate identically — otherwise the
  // plan is a function of host timing noise and a differential failure
  // cannot be replayed. (This test was flaky before calibration moved off
  // the measured-CPU virtual clock.)
  device::Device device(device::T4Sim());
  device::DeviceGuard guard(device);
  graph::Graph g = gs::testing::SmallRmat(123, 676, 314901, false);

  core::SamplerOptions opts = FullyOptimized();
  opts.super_batch = 1;
  std::vector<tensor::IdArray> batches;
  for (int b = 0; b < 2; ++b) {
    std::vector<int32_t> ids;
    for (int32_t i = 0; i < 8; ++i) {
      ids.push_back((b * 8 + i) * 7 % 123);
    }
    batches.push_back(tensor::IdArray::FromVector(ids));
  }
  core::Bindings bindings;
  bindings.graph = &g.adj();

  auto annotated = [&]() {
    algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GCN-BS", g);
    core::CompiledPlan plan(std::move(ap.program), opts);
    core::Bindings bound = bindings;
    for (auto& [name, t] : ap.tensors) {
      bound.tensors[name] = t;
    }
    Rng rng(opts.seed);
    plan.Calibrate(bound, batches, {}, rng);
    return plan.program().ToString();
  };
  EXPECT_EQ(annotated(), annotated());
}

TEST(Oracle, ReferenceOptionsDisableEverything) {
  core::SamplerOptions opts = FullyOptimized();
  opts.pass_limit = 3;
  const core::SamplerOptions ref = ReferenceOptions(opts);
  EXPECT_FALSE(ref.enable_fusion);
  EXPECT_FALSE(ref.enable_preprocessing);
  EXPECT_FALSE(ref.enable_layout_selection);
  EXPECT_FALSE(ref.greedy_when_layout_disabled);
  EXPECT_EQ(ref.super_batch, 1);
  EXPECT_EQ(ref.pass_limit, -1);
  EXPECT_EQ(ref.seed, opts.seed);  // mirrored RNG streams
}

}  // namespace
}  // namespace gs::oracle
