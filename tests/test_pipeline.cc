// Tests for the pipelined sampling service (src/pipeline/): bounded queue
// semantics, the executor's ordering/metrics/abort behaviour, the analytic
// virtual-time overlap model, and the end-to-end guarantee that a pipelined
// training run is bit-identical to the synchronous one.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "core/engine.h"
#include "device/device.h"
#include "device/stream.h"
#include "gnn/minibatch.h"
#include "gnn/trainer.h"
#include "graph/generator.h"
#include "pipeline/executor.h"
#include "pipeline/queue.h"
#include "tests/testing.h"

namespace gs::pipeline {
namespace {

// Profile where RecordKernel(v, {}) advances the virtual clock by exactly v:
// no launch overhead, no byte penalties, unit compute scale.
device::DeviceProfile ExactProfile() {
  device::DeviceProfile p;
  p.name = "exact";
  p.launch_overhead_ns = 0;
  p.compute_scale = 1.0;
  p.dense_compute_scale = 1.0;
  p.hbm_penalty_ns_per_byte = 0.0;
  p.pcie_ns_per_byte = 0.0;
  return p;
}

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueue, FifoAndStats) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  for (int i = 0; i < 3; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  q.Close();
  EXPECT_FALSE(q.Pop().has_value());  // closed + drained
  const QueueStats s = q.stats();
  EXPECT_EQ(s.capacity, 4);
  EXPECT_EQ(s.pushes, 3);
  EXPECT_EQ(s.pops, 3);
}

TEST(BoundedQueue, PushAfterCloseFails) {
  BoundedQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.Push(1));
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  ASSERT_TRUE(q.Push(8));
  q.Close();
  EXPECT_EQ(q.Pop().value(), 7);  // close lets buffered items drain
  EXPECT_EQ(q.Pop().value(), 8);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueue, CancelDropsPendingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  q.Cancel();
  EXPECT_FALSE(q.Pop().has_value());  // cancelled: pending items dropped
  EXPECT_FALSE(q.Push(2));
}

TEST(BoundedQueue, PushBlocksAtCapacityUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(1));  // must block until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 0);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  const QueueStats s = q.stats();
  EXPECT_GE(s.push_blocked, 1);
  // Occupancy histogram is bounded by the capacity.
  EXPECT_LE(s.occupancy_hist.size(), 2u);
}

TEST(BoundedQueue, BlockedProducerDroppedByCloseIsAccounted) {
  // Regression: a producer blocked on a full queue whose item is dropped when
  // Close() arrives used to vanish from the stats — neither a push nor a
  // rejection — so pipeline metrics silently lost batches.
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(q.Push(1)); });
  // Wait until the producer is provably parked in Push.
  while (q.stats().push_blocked == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
  EXPECT_FALSE(q.TryPush(2));  // closed-queue refusal is also an attempt
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushes, 1);
  EXPECT_EQ(s.push_rejected, 2);
  EXPECT_EQ(s.push_attempts, s.pushes + s.push_rejected);
}

TEST(BoundedQueue, AttemptInvariantHoldsAcrossPaths) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));       // plain push
  ASSERT_TRUE(q.TryPush(2));    // non-blocking push
  EXPECT_FALSE(q.TryPush(3));   // full: rejected
  q.Close();
  EXPECT_FALSE(q.Push(4));      // closed: rejected
  const QueueStats s = q.stats();
  EXPECT_EQ(s.push_attempts, 4);
  EXPECT_EQ(s.pushes, 2);
  EXPECT_EQ(s.push_rejected, 2);
  EXPECT_EQ(s.push_attempts, s.pushes + s.push_rejected);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(3);
  constexpr int kPerProducer = 200;
  std::vector<std::thread> workers;
  for (int p = 0; p < 2; ++p) {
    workers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  workers[0].join();
  workers[1].join();
  q.Close();
  workers[2].join();
  workers[3].join();
  EXPECT_EQ(popped.load(), 2 * kPerProducer);
  EXPECT_EQ(sum.load(), (2 * kPerProducer - 1) * (2 * kPerProducer) / 2);
}

// --------------------------------------------------------------- Executor

TEST(Executor, InlineDepthZeroRunsStagesInOrder) {
  std::vector<std::string> trace;
  std::vector<Stage> stages;
  stages.push_back({"a", [&](int64_t i) { trace.push_back("a" + std::to_string(i)); }});
  stages.push_back({"b", [&](int64_t i) { trace.push_back("b" + std::to_string(i)); }});
  Executor exec(std::move(stages), Options{0});
  exec.Run(3);
  const std::vector<std::string> want = {"a0", "b0", "a1", "b1", "a2", "b2"};
  EXPECT_EQ(trace, want);
  EXPECT_EQ(exec.metrics().items, 3);
  EXPECT_EQ(exec.metrics().runs, 1);
  EXPECT_EQ(exec.metrics().stages[0].items, 3);
  EXPECT_EQ(exec.metrics().stages[1].items, 3);
}

TEST(Executor, PipelinedKeepsPerStageOrderAndItemStageOrder) {
  device::Device dev(ExactProfile());
  device::DeviceGuard guard(dev);
  constexpr int64_t kItems = 16;
  // seen[i] counts completed stages of item i; a stage may only see the
  // item after every earlier stage finished it.
  std::vector<std::atomic<int>> seen(kItems);
  std::vector<std::vector<int64_t>> order(3);
  std::vector<Stage> stages;
  for (int s = 0; s < 3; ++s) {
    stages.push_back({"s" + std::to_string(s), [&, s](int64_t i) {
                        EXPECT_EQ(seen[i].load(), s) << "stage " << s << " item " << i;
                        order[s].push_back(i);
                        seen[i].fetch_add(1);
                      }});
  }
  Executor exec(std::move(stages), Options{2});
  exec.Run(kItems);
  std::vector<int64_t> want(kItems);
  std::iota(want.begin(), want.end(), 0);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(order[s], want) << "stage " << s << " processed items out of order";
  }
  EXPECT_EQ(exec.metrics().items, kItems);
}

TEST(Executor, OverlapMakespanMatchesAnalyticModel) {
  device::Device dev(ExactProfile());
  device::DeviceGuard guard(dev);
  constexpr int64_t kItems = 8;
  constexpr int64_t kFast = 10'000;  // producer cost per item
  constexpr int64_t kSlow = 30'000;  // consumer cost per item
  std::vector<Stage> stages;
  stages.push_back({"produce", [&](int64_t) {
                      device::Current().stream().RecordKernel(kFast, {});
                    }});
  stages.push_back({"consume", [&](int64_t) {
                      device::Current().stream().RecordKernel(kSlow, {});
                    }});
  Executor exec(std::move(stages), Options{2});

  device::Stream& parent = dev.stream();
  const device::StreamCounters before = parent.counters();
  exec.Run(kItems);
  const device::StreamCounters after = parent.counters();

  // With the consumer slower than the producer and depth >= 1, the pipeline
  // is consumer-bound: makespan = first item's produce cost + n consume
  // costs, exactly.
  const int64_t expected = kFast + kItems * kSlow;
  EXPECT_EQ(exec.metrics().epoch_virtual_ns, expected);
  EXPECT_EQ(exec.metrics().serial_virtual_ns, kItems * (kFast + kSlow));
  // The caller's stream advanced by the makespan, not the serial sum...
  EXPECT_EQ(after.virtual_ns - before.virtual_ns, expected);
  // ...while resource totals fold in everything both stages did.
  EXPECT_EQ(after.kernels_launched - before.kernels_launched, 2 * kItems);
  // The consumer starved only while waiting for the first item; the
  // producer absorbed the rate mismatch as backpressure.
  EXPECT_EQ(exec.metrics().stages[1].starved_ns, kFast);
  EXPECT_GT(exec.metrics().stages[0].backpressure_ns, 0);
  EXPECT_EQ(exec.metrics().stages[1].backpressure_ns, 0);
  EXPECT_GT(exec.metrics().OverlapSpeedup(), 1.0);
}

TEST(Executor, BackpressureAtDepthOneBoundsQueueOccupancy) {
  device::Device dev(ExactProfile());
  device::DeviceGuard guard(dev);
  std::vector<Stage> stages;
  stages.push_back({"produce", [&](int64_t) {
                      device::Current().stream().RecordKernel(1'000, {});
                    }});
  stages.push_back({"consume", [&](int64_t) {
                      device::Current().stream().RecordKernel(50'000, {});
                    }});
  Executor exec(std::move(stages), Options{1});
  exec.Run(12);
  const StageMetrics& producer = exec.metrics().stages[0];
  // A fast producer against a slow consumer at depth 1 must report
  // backpressure stall time on its virtual timeline.
  EXPECT_GT(producer.backpressure_ns, 0);
  // The prefetch queue held at most `depth` items: the occupancy histogram
  // has no bucket beyond index 1.
  const QueueStats& q = producer.out_queue;
  EXPECT_EQ(q.capacity, 1);
  ASSERT_LE(q.occupancy_hist.size(), 2u);
  int64_t recorded = 0;
  for (int64_t c : q.occupancy_hist) {
    recorded += c;
  }
  EXPECT_EQ(recorded, q.pushes + q.pops);
}

TEST(Executor, StageExceptionDrainsAndRethrowsWithContext) {
  std::atomic<int64_t> produced{0};
  std::atomic<bool> threw{false};
  std::vector<Stage> stages;
  stages.push_back({"sample", [&](int64_t) { produced.fetch_add(1); }});
  stages.push_back({"train", [&](int64_t i) {
                      if (i == 3 && !threw.exchange(true)) {
                        throw Error("boom");
                      }
                    }});
  Executor exec(std::move(stages), Options{2});
  try {
    exec.Run(100);
    FAIL() << "expected the stage failure to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("train"), std::string::npos)
        << "error should name the failing stage: " << e.what();
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // Upstream was cancelled: the producer stopped far short of the epoch.
  EXPECT_LT(produced.load(), 100);
  // The executor recovered: the next run completes normally.
  exec.Run(5);
  EXPECT_EQ(exec.metrics().stages[1].items, 3 + 5);
}

TEST(Executor, InlineExceptionAlsoNamesStage) {
  std::vector<Stage> stages;
  stages.push_back({"only", [&](int64_t) { throw Error("inline-boom"); }});
  Executor exec(std::move(stages), Options{0});
  try {
    exec.Run(1);
    FAIL() << "expected rethrow";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("only"), std::string::npos);
  }
}

TEST(Executor, ZeroItemsAndEmptyPayloadsFlowThroughAllStages) {
  device::Device dev(ExactProfile());
  device::DeviceGuard guard(dev);
  // Items 0, 3, 6, ... carry empty payloads; every stage must still visit
  // them (empty-frontier mini-batches flow through the real pipeline the
  // same way).
  std::vector<std::vector<int32_t>> slots(8);
  std::atomic<int64_t> trained{0};
  std::vector<Stage> stages;
  stages.push_back({"sample", [&](int64_t i) {
                      slots[i % slots.size()].assign(i % 3 == 0 ? 0 : 4, static_cast<int32_t>(i));
                    }});
  stages.push_back({"feature", [&](int64_t i) {
                      for (int32_t& v : slots[i % slots.size()]) {
                        v += 1;
                      }
                    }});
  stages.push_back({"train", [&](int64_t i) {
                      trained.fetch_add(1 + static_cast<int64_t>(slots[i % slots.size()].size()));
                    }});
  Executor exec(std::move(stages), Options{2});
  exec.Run(0);  // empty epoch: no deadlock, no items
  EXPECT_EQ(exec.metrics().items, 0);
  exec.Run(9);
  EXPECT_EQ(exec.metrics().items, 9);
  EXPECT_EQ(trained.load(), 9 + 6 * 4);
}

// ------------------------------------------------- device-layer concurrency

TEST(Stream, ConcurrentRecordKernelKeepsExactTotals) {
  device::Stream stream(ExactProfile());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stream] {
      for (int i = 0; i < kPerThread; ++i) {
        stream.RecordKernel(7, {.hbm_bytes = 3, .pcie_bytes = 2});
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const device::StreamCounters c = stream.counters();
  EXPECT_EQ(c.kernels_launched, kThreads * kPerThread);
  EXPECT_EQ(c.virtual_ns, int64_t{7} * kThreads * kPerThread);
  EXPECT_EQ(c.hbm_bytes, int64_t{3} * kThreads * kPerThread);
  EXPECT_EQ(c.pcie_bytes, int64_t{2} * kThreads * kPerThread);
}

// ------------------------------------------------------------- end-to-end

graph::Graph TrainingGraph() {
  graph::PlantedPartitionParams p;
  p.num_nodes = 600;
  p.num_communities = 4;
  p.intra_degree = 12.0;
  p.inter_degree = 2.0;
  p.feature_dim = 16;
  p.weighted = true;
  p.seed = 23;
  return graph::MakePlantedPartitionGraph(p);
}

// Per-batch digest of which nodes a sampler produced, for comparing sampled
// node sets across pipeline depths.
using BatchLog = std::vector<std::vector<int32_t>>;

gnn::SampleFn LoggingSampler(core::CompiledSampler& sampler, BatchLog& log) {
  return [&sampler, &log](const tensor::IdArray& seeds, Rng&) {
    gnn::MiniBatch batch = gnn::FromSamplerOutputs(sampler.Sample(seeds), seeds);
    std::vector<int32_t> nodes;
    for (const tensor::IdArray& list : gnn::NodeLists(batch)) {
      nodes.insert(nodes.end(), list.data(), list.data() + list.size());
    }
    log.push_back(std::move(nodes));
    return batch;
  };
}

struct AlgoCase {
  const char* kind;
  gnn::ModelKind model;
};

gnn::TrainOutcome TrainOnce(const graph::Graph& g, const AlgoCase& algo, int depth,
                            BatchLog& log) {
  algorithms::AlgorithmProgram ap;
  if (std::string(algo.kind) == "sage") {
    ap = algorithms::GraphSage(g, {.fanouts = {8, 6}, .include_seeds = true});
  } else if (std::string(algo.kind) == "ladies") {
    ap = algorithms::Ladies(g, {.num_layers = 2, .layer_width = 192});
  } else {
    ap = algorithms::FastGcn(g, {.num_layers = 2, .layer_width = 192});
  }
  // Layout calibration measures timing, which pipelining changes; keep every
  // timing-dependent knob off so both runs compile identical plans.
  core::SamplerOptions opts;
  opts.enable_layout_selection = false;
  opts.super_batch = 1;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);

  gnn::TrainerConfig config;
  config.model = algo.model;
  config.epochs = 3;
  config.batch_size = 96;
  config.learning_rate = 0.3f;
  config.hidden = 16;
  config.pipeline_depth = depth;
  return gnn::Train(g, LoggingSampler(sampler, log), config);
}

TEST(PipelinedTraining, BitIdenticalToSynchronousAcrossAlgorithms) {
  graph::Graph g = TrainingGraph();
  const AlgoCase cases[] = {{"sage", gnn::ModelKind::kSage},
                            {"ladies", gnn::ModelKind::kGcn},
                            {"fastgcn", gnn::ModelKind::kGcn}};
  for (const AlgoCase& algo : cases) {
    BatchLog sync_log, piped_log;
    const gnn::TrainOutcome sync = TrainOnce(g, algo, /*depth=*/0, sync_log);
    const gnn::TrainOutcome piped = TrainOnce(g, algo, /*depth=*/2, piped_log);

    ASSERT_FALSE(sync.step_loss.empty());
    ASSERT_EQ(sync.step_loss.size(), piped.step_loss.size()) << algo.kind;
    for (size_t i = 0; i < sync.step_loss.size(); ++i) {
      EXPECT_EQ(sync.step_loss[i], piped.step_loss[i])
          << algo.kind << " loss diverged at step " << i;
    }
    EXPECT_EQ(sync.epoch_accuracy, piped.epoch_accuracy) << algo.kind;
    ASSERT_EQ(sync_log.size(), piped_log.size()) << algo.kind;
    for (size_t b = 0; b < sync_log.size(); ++b) {
      EXPECT_EQ(sync_log[b], piped_log[b])
          << algo.kind << " sampled different nodes in batch " << b;
    }
    // The pipelined run overlapped sampling with training: its simulated
    // epoch makespan must undercut the serial sum of its own stage busy
    // times. (Compared within one run — kernel costs come from measured CPU
    // time, so cross-run comparisons would be wall-clock-noise sensitive.)
    EXPECT_GT(piped.pipeline.OverlapSpeedup(), 1.0) << algo.kind;
    EXPECT_LT(piped.total_ms, piped.pipeline.SerialMs()) << algo.kind;
  }
}

TEST(PipelinedTraining, DepthOneMatchesDepthFour) {
  graph::Graph g = TrainingGraph();
  const AlgoCase algo{"sage", gnn::ModelKind::kSage};
  BatchLog log1, log4;
  const gnn::TrainOutcome d1 = TrainOnce(g, algo, /*depth=*/1, log1);
  const gnn::TrainOutcome d4 = TrainOnce(g, algo, /*depth=*/4, log4);
  EXPECT_EQ(d1.step_loss, d4.step_loss);
  EXPECT_EQ(d1.epoch_accuracy, d4.epoch_accuracy);
}

// -------------------------------------------------------- BatchProducer

TEST(BatchProducer, MatchesSampleEpoch) {
  graph::Graph g = testing::SmallRmat(400, 4000, 5);
  auto make_sampler = [&] {
    algorithms::AlgorithmProgram ap =
        algorithms::GraphSage(g, {.fanouts = {6, 4}, .include_seeds = true});
    core::SamplerOptions opts;
    opts.enable_layout_selection = false;
    opts.super_batch = 2;  // exercise super-batch grouping through Next()
    return core::CompiledSampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  };

  // Digest every output value per batch from the reference path...
  std::vector<std::vector<int64_t>> want;
  {
    core::CompiledSampler sampler = make_sampler();
    sampler.SampleEpoch(g.train_ids(), 64, [&](int64_t index, std::vector<core::Value>& out) {
      EXPECT_EQ(index, static_cast<int64_t>(want.size()));
      std::vector<int64_t> digest;
      for (const core::Value& v : out) {
        digest.push_back(v.kind == core::ValueKind::kMatrix ? v.matrix.nnz() : v.ids.size());
      }
      want.push_back(std::move(digest));
    });
  }
  ASSERT_FALSE(want.empty());

  // ...and compare with the pull API on a fresh, identically-seeded sampler.
  core::CompiledSampler sampler = make_sampler();
  core::BatchProducer producer(sampler, g.train_ids(), 64);
  EXPECT_EQ(producer.num_batches(), static_cast<int64_t>(want.size()));
  core::EpochBatch batch;
  int64_t count = 0;
  while (producer.Next(&batch)) {
    ASSERT_LT(count, static_cast<int64_t>(want.size()));
    EXPECT_EQ(batch.index, count);
    std::vector<int64_t> digest;
    for (const core::Value& v : batch.outputs) {
      digest.push_back(v.kind == core::ValueKind::kMatrix ? v.matrix.nnz() : v.ids.size());
    }
    EXPECT_EQ(digest, want[static_cast<size_t>(count)]) << "batch " << count;
    ++count;
  }
  EXPECT_EQ(count, static_cast<int64_t>(want.size()));
}

}  // namespace
}  // namespace gs::pipeline
