// Tests for the plan layer (core/pass_manager.h, core/plan.h): per-pass
// instrumentation, Verify() at every pass boundary, the serialized-plan
// golden round-trip across all Table-2 algorithms (loaded plans must sample
// bit-identically and skip passes + calibration), digest integrity, the
// post-Warmup rebinding contract, the PassConfigDigest completeness
// regression, and plan-cache / live-server warm restarts.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "core/engine.h"
#include "core/pass_manager.h"
#include "core/plan.h"
#include "device/device.h"
#include "graph/graph.h"
#include "serving/plan_cache.h"
#include "serving/request.h"
#include "serving/server.h"
#include "tests/testing.h"

namespace gs {
namespace {

using core::BitIdentical;
using core::CompiledPlan;
using core::SamplerOptions;
using core::SamplerSession;
using core::Value;
using tensor::IdArray;

graph::Graph PlanGraph() { return testing::SmallRmat(400, 4000, 23); }

IdArray Seeds(std::vector<int32_t> ids) { return IdArray::FromVector(ids); }

// Fresh per-test scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "gs_plan_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Builds (plan, session) for a Table-2 algorithm, handling HetGNN's extra
// relation graphs, and warms the session up.
std::shared_ptr<SamplerSession> MakeSession(std::shared_ptr<CompiledPlan> plan,
                                            const graph::Graph& g,
                                            std::map<std::string, tensor::Tensor> tensors = {}) {
  auto session = std::make_shared<SamplerSession>(std::move(plan), g, std::move(tensors));
  if (session->plan().label() == "HetGNN") {
    session->BindGraph("rel0", &g.adj());
    session->BindGraph("rel1", &g.adj());
  }
  session->Warmup(Seeds({0, 1, 2, 3}));
  return session;
}

std::shared_ptr<CompiledPlan> CompileAlgorithm(const std::string& name, const graph::Graph& g,
                                               SamplerOptions options,
                                               std::map<std::string, tensor::Tensor>* tensors) {
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(name, g);
  if (ap.updates_model) {
    options.super_batch = 1;
  }
  *tensors = std::move(ap.tensors);
  return std::make_shared<CompiledPlan>(std::move(ap.program), options, name);
}

void ExpectBitIdentical(const std::vector<Value>& a, const std::vector<Value>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a[i], b[i])) << context << " output " << i << " diverged";
  }
}

// ------------------------------------------------------- pass manager

TEST(PassManager, RecordsPerPassStatsInPipelineOrder) {
  graph::Graph g = PlanGraph();
  SamplerOptions options;
  core::PassManager pipeline = core::StandardPassPipeline(options);
  // The unconditional tail (cse, dce, mark-invariant) is always registered.
  const std::vector<std::string> names = pipeline.names();
  ASSERT_GE(names.size(), 3u);
  std::set<std::string> name_set(names.begin(), names.end());
  EXPECT_TRUE(name_set.count("cse"));
  EXPECT_TRUE(name_set.count("dce"));
  EXPECT_TRUE(name_set.count("mark-invariant"));
  EXPECT_TRUE(name_set.count("fuse-extract-select"));

  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", g);
  const size_t before = ap.program.size();
  core::PassManagerOptions run_options;
  run_options.verify = true;
  std::vector<core::PassStats> stats;
  pipeline.Run(ap.program, run_options, &stats);
  ASSERT_EQ(stats.size(), names.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].name, names[i]);
    EXPECT_TRUE(stats[i].verified) << names[i];
    EXPECT_GE(stats[i].wall_ns, 0) << names[i];
    EXPECT_GE(stats[i].nodes_before, stats[i].nodes_after) << names[i] << " grew the program";
  }
  EXPECT_EQ(stats.front().nodes_before, static_cast<int64_t>(before));
  ap.program.Verify();
}

// Verify() must hold after every individual pass on every algorithm — the
// invariant that makes the pipeline safely re-orderable and debuggable.
TEST(PassManager, EveryPassPreservesVerifyOnAllAlgorithms) {
  graph::Graph g = PlanGraph();
  for (const std::string& name : algorithms::AllAlgorithmNames()) {
    algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(name, g);
    core::PassManager pipeline = core::StandardPassPipeline({});
    core::PassManagerOptions run_options;
    run_options.verify = true;
    std::vector<core::PassStats> stats;
    pipeline.Run(ap.program, run_options, &stats);
    for (const core::PassStats& s : stats) {
      EXPECT_TRUE(s.verified) << name << " pass " << s.name;
    }
  }
}

TEST(CompiledPlan, ReportFoldsPassStats) {
  graph::Graph g = PlanGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = CompileAlgorithm("GraphSAGE", g, {}, &tensors);
  const core::OptimizationReport report = plan->report();
  ASSERT_FALSE(report.passes.empty());
  int64_t total_rewrites = 0;
  for (const core::PassStats& s : report.passes) {
    total_rewrites += s.rewrites;
  }
  // The fused GraphSAGE program must have seen at least one rewrite, and the
  // roll-up counters must be consistent with the per-pass records.
  EXPECT_GT(total_rewrites, 0);
  EXPECT_GE(total_rewrites, report.extract_select_fusions + report.cse_merged);
  EXPECT_NE(report.ToString().find("passes:"), std::string::npos);
}

// ---------------------------------------------------- golden round-trip

// The tentpole guarantee: for every algorithm, a serialized plan reloads
// into a session whose samples are bit-identical to the original, without
// re-running passes or calibration.
TEST(PlanRoundTrip, AllAlgorithmsBitIdenticalAfterReload) {
  graph::Graph g = PlanGraph();
  const std::vector<std::pair<IdArray, uint64_t>> probes = {
      {Seeds({0, 1, 2, 3, 4, 5, 6, 7}), 7}, {Seeds({11, 23, 42}), 31337}};
  for (const std::string& name : algorithms::AllAlgorithmNames()) {
    SCOPED_TRACE(name);
    std::map<std::string, tensor::Tensor> tensors;
    auto plan = CompileAlgorithm(name, g, {}, &tensors);
    auto original = MakeSession(plan, g, tensors);
    ASSERT_TRUE(plan->calibrated());
    ASSERT_TRUE(plan->frozen());

    const std::string text = plan->Serialize();
    std::shared_ptr<CompiledPlan> loaded = CompiledPlan::Deserialize(text);
    EXPECT_TRUE(loaded->restored());
    EXPECT_TRUE(loaded->calibrated());
    EXPECT_TRUE(loaded->frozen()) << "calibrated plans must arrive frozen";
    EXPECT_EQ(loaded->Digest(), plan->Digest());
    EXPECT_EQ(loaded->label(), name);
    // Reserialization is stable: the artifact's semantic payload is
    // canonical, so serialize(load(x)) has the digest of x.
    std::shared_ptr<CompiledPlan> twice = CompiledPlan::Deserialize(loaded->Serialize());
    EXPECT_EQ(twice->Digest(), plan->Digest());

    auto reloaded = MakeSession(loaded, g, tensors);
    for (const auto& [frontier, seed] : probes) {
      ExpectBitIdentical(original->SampleSeeded(frontier, seed),
                         reloaded->SampleSeeded(frontier, seed), name);
    }
  }
}

TEST(PlanRoundTrip, LoadedPlanPreservesOptionsAndTuning) {
  graph::Graph g = PlanGraph();
  std::map<std::string, tensor::Tensor> tensors;
  SamplerOptions options;
  options.super_batch = 0;  // auto-tune
  options.seed = 0xFEED;
  options.calibration_batches = 2;
  auto plan = CompileAlgorithm("GraphSAGE", g, options, &tensors);
  {
    SamplerSession session(plan, g, tensors);
    // BatchProducer triggers auto-tuning and writes the result through to
    // the (not yet frozen) plan.
    core::BatchProducer producer(session, g.train_ids(), 16);
    core::EpochBatch batch;
    ASSERT_TRUE(producer.Next(&batch));
  }
  ASSERT_GT(plan->tuned_super_batch(), 0);

  std::shared_ptr<CompiledPlan> loaded = CompiledPlan::Deserialize(plan->Serialize());
  EXPECT_EQ(loaded->tuned_super_batch(), plan->tuned_super_batch());
  EXPECT_EQ(loaded->options().seed, options.seed);
  EXPECT_EQ(loaded->options().super_batch, 0);
  EXPECT_EQ(loaded->options().calibration_batches, 2);
  EXPECT_EQ(loaded->program().size(), plan->program().size());
}

TEST(PlanRoundTrip, TamperedArtifactIsRejected) {
  graph::Graph g = PlanGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = CompileAlgorithm("FastGCN", g, {}, &tensors);
  MakeSession(plan, g, tensors);
  std::string text = plan->Serialize();

  // Flip a semantic byte (the options line) without updating the digest.
  const size_t pos = text.find("fusion=1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = '0';
  EXPECT_THROW({ (void)CompiledPlan::Deserialize(text); }, Error);

  EXPECT_THROW({ (void)CompiledPlan::Deserialize("gsplan 999\n"); }, Error);
  EXPECT_THROW({ (void)CompiledPlan::Deserialize(""); }, Error);
}

TEST(PlanRoundTrip, FileHelpersRoundTrip) {
  graph::Graph g = PlanGraph();
  const std::string dir = ScratchDir("file");
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = CompileAlgorithm("LADIES", g, {}, &tensors);
  MakeSession(plan, g, tensors);

  const std::string path = dir + "/ladies.plan";
  core::SavePlanFile(*plan, path);
  std::shared_ptr<CompiledPlan> loaded = core::LoadPlanFile(path);
  EXPECT_EQ(loaded->Digest(), plan->Digest());
  EXPECT_THROW({ (void)core::LoadPlanFile(dir + "/missing.plan"); }, Error);
}

// ------------------------------------------------- session binding contract

TEST(SamplerSession, RebindingAfterWarmupIsAnError) {
  graph::Graph g = PlanGraph();
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("FastGCN", g);
  auto plan = std::make_shared<CompiledPlan>(std::move(ap.program), SamplerOptions{}, "FastGCN");
  SamplerSession session(plan, g, ap.tensors);

  // Rebinding before Warmup is allowed (that is how HetGNN attaches its
  // relation graphs)...
  session.BindGraph("unused_rel", &g.adj());
  session.Warmup(Seeds({0, 1, 2, 3}));
  // ...but after Warmup the session is in the concurrent serving phase and
  // any rebind is a hard error, not a silent race.
  tensor::Tensor replacement = tensor::Tensor::Zeros({g.num_nodes()});
  EXPECT_THROW(session.BindTensor("probs", replacement), Error);
  EXPECT_THROW(session.BindGraph("rel0", &g.adj()), Error);
}

TEST(SamplerSession, SharedPlanServesMultipleSessions) {
  graph::Graph g = PlanGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = CompileAlgorithm("GraphSAGE", g, {}, &tensors);
  auto a = MakeSession(plan, g, tensors);
  auto b = MakeSession(plan, g, tensors);  // second session, same frozen plan
  ExpectBitIdentical(a->SampleSeeded(Seeds({5, 6, 7}), 99),
                     b->SampleSeeded(Seeds({5, 6, 7}), 99), "shared plan");
}

// --------------------------------------------- PassConfigDigest regression

// Every SamplerOptions field that can change the compiled artifact must
// change the digest (a stale-cache bug otherwise); the instrumentation-only
// flags must not (they would needlessly split the cache).
TEST(PassConfigDigest, CoversEveryArtifactAffectingField) {
  const SamplerOptions base;
  const std::string d0 = serving::PassConfigDigest(base);

  std::vector<std::pair<std::string, SamplerOptions>> variants;
  auto add = [&](const std::string& field, auto mutate) {
    SamplerOptions o = base;
    mutate(o);
    variants.emplace_back(field, o);
  };
  add("enable_fusion", [](SamplerOptions& o) { o.enable_fusion = false; });
  add("fuse_extract_select", [](SamplerOptions& o) { o.fuse_extract_select = false; });
  add("fuse_edge_maps", [](SamplerOptions& o) { o.fuse_edge_maps = false; });
  add("rewrite_sddmm", [](SamplerOptions& o) { o.rewrite_sddmm = false; });
  add("enable_preprocessing", [](SamplerOptions& o) { o.enable_preprocessing = false; });
  add("enable_layout_selection", [](SamplerOptions& o) { o.enable_layout_selection = false; });
  add("greedy_when_layout_disabled",
      [](SamplerOptions& o) { o.greedy_when_layout_disabled = false; });
  add("super_batch", [](SamplerOptions& o) { o.super_batch = 4; });
  add("memory_budget_bytes", [](SamplerOptions& o) { o.memory_budget_bytes /= 2; });
  add("calibration_batches", [](SamplerOptions& o) { o.calibration_batches = 3; });
  add("seed", [](SamplerOptions& o) { o.seed = 1; });

  std::set<std::string> digests = {d0};
  for (const auto& [field, options] : variants) {
    const std::string d = serving::PassConfigDigest(options);
    EXPECT_NE(d, d0) << "flipping " << field << " must change the pass-config digest";
    EXPECT_TRUE(digests.insert(d).second) << field << " collided with another variant";
  }

  // Instrumentation-only knobs cannot affect the artifact.
  SamplerOptions instrumented = base;
  instrumented.verify_passes = true;
  instrumented.dump_ir_after_passes = true;
  EXPECT_EQ(serving::PassConfigDigest(instrumented), d0);
}

// ------------------------------------------------ plan cache persistence

TEST(PlanCachePersistence, SaveAllLoadFromRoundTrip) {
  graph::Graph g = PlanGraph();
  const std::string dir = ScratchDir("cache");
  const SamplerOptions options;  // endpoint-equivalent config
  const std::string cfg = serving::PassConfigDigest(options);

  auto build = [&](const std::string& algorithm) {
    std::map<std::string, tensor::Tensor> tensors;
    SamplerOptions o = options;
    o.super_batch = 1;
    auto plan = CompileAlgorithm(algorithm, g, o, &tensors);
    return MakeSession(plan, g, tensors);
  };

  uint64_t fastgcn_digest = 0;
  {
    serving::PlanCache cache(int64_t{64} * 1024 * 1024, nullptr);
    auto s1 = cache.GetOrBuild({"FastGCN", "rmat", "dev", cfg, {32, 32}},
                               [&] { return build("FastGCN"); });
    cache.GetOrBuild({"LADIES", "rmat", "dev", cfg, {64}}, [&] { return build("LADIES"); });
    fastgcn_digest = s1->plan().Digest();
    EXPECT_EQ(cache.SaveAll(dir), 2);
    EXPECT_EQ(cache.stats().plans_saved, 2);
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/index.txt"));

  serving::PlanCache warm(int64_t{64} * 1024 * 1024, nullptr);
  int64_t activations = 0;
  const int64_t loaded = warm.LoadFrom(
      dir, [&](const serving::PlanKey& key, std::shared_ptr<CompiledPlan> plan)
               -> std::shared_ptr<SamplerSession> {
        ++activations;
        EXPECT_TRUE(plan->restored());
        EXPECT_EQ(key.pass_config, cfg);
        std::map<std::string, tensor::Tensor> tensors;
        algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(key.algorithm, g);
        return MakeSession(std::move(plan), g, ap.tensors);
      });
  EXPECT_EQ(loaded, 2);
  EXPECT_EQ(activations, 2);
  const serving::PlanCacheStats stats = warm.stats();
  EXPECT_EQ(stats.plans_loaded, 2);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.misses, 0) << "warm-start loads must not count as misses";
  EXPECT_EQ(stats.hits, 0);

  // The warm cache serves both keys without invoking the factory, and the
  // restored FastGCN plan is the very artifact that was saved.
  bool hit = false;
  auto s = warm.GetOrBuild({"FastGCN", "rmat", "dev", cfg, {32, 32}},
                           [&]() -> std::shared_ptr<SamplerSession> {
                             ADD_FAILURE() << "factory must not run on a warm start";
                             return nullptr;
                           },
                           &hit);
  EXPECT_TRUE(hit);
  EXPECT_TRUE(s->plan().restored());
  EXPECT_EQ(s->plan().Digest(), fastgcn_digest);
}

TEST(PlanCachePersistence, CorruptArtifactsAreSkippedNotFatal) {
  graph::Graph g = PlanGraph();
  const std::string dir = ScratchDir("corrupt");
  const std::string cfg = serving::PassConfigDigest({});
  {
    serving::PlanCache cache(int64_t{64} * 1024 * 1024, nullptr);
    std::map<std::string, tensor::Tensor> tensors;
    SamplerOptions o;
    o.super_batch = 1;
    auto plan = CompileAlgorithm("GraphSAGE", g, o, &tensors);
    cache.GetOrBuild({"GraphSAGE", "rmat", "dev", cfg, {}},
                     [&] { return MakeSession(plan, g, tensors); });
    ASSERT_EQ(cache.SaveAll(dir), 1);
  }
  // Truncate the artifact; the index still points at it.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".plan") {
      std::ofstream(entry.path(), std::ios::trunc) << "gsplan 1\n";
    }
  }
  serving::PlanCache warm(int64_t{64} * 1024 * 1024, nullptr);
  const int64_t loaded = warm.LoadFrom(
      dir, [&](const serving::PlanKey&, std::shared_ptr<CompiledPlan>) {
        return std::shared_ptr<SamplerSession>(nullptr);
      });
  EXPECT_EQ(loaded, 0);
  EXPECT_EQ(warm.stats().entries, 0);

  // A directory with no index is a clean cold start.
  serving::PlanCache cold(int64_t{64} * 1024 * 1024, nullptr);
  EXPECT_EQ(cold.LoadFrom(ScratchDir("empty"),
                          [](const serving::PlanKey&, std::shared_ptr<CompiledPlan>) {
                            return std::shared_ptr<SamplerSession>(nullptr);
                          }),
            0);
}

// ---------------------------------------------- live-server warm restart

// The acceptance test: a restarted server pointed at a persisted plan
// directory answers its first request from the warm cache — zero plan-cache
// misses, outputs bit-identical to the cold server's.
TEST(ServerWarmRestart, FirstRequestSkipsCompileAndMatchesBitIdentically) {
  graph::Graph g = PlanGraph();
  const std::string dir = ScratchDir("server");

  serving::SampleRequest req;
  req.algorithm = "GraphSAGE";
  req.dataset = "rmat";
  req.seeds = Seeds({3, 1, 4, 1, 5});
  req.seed = 2718;

  std::vector<Value> cold_outputs;
  {
    serving::ServerOptions options;
    options.num_workers = 1;
    options.plan_dir = dir;
    serving::Server server(options);
    server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
    server.Start();
    serving::SampleResponse r = server.Submit(req).get();
    ASSERT_EQ(r.status, serving::Status::kOk) << r.error;
    EXPECT_FALSE(r.stages.plan_cache_hit);
    cold_outputs = std::move(r.outputs);
    server.Stop();  // persists resident plans into plan_dir
    EXPECT_GE(server.stats().plans_saved, 1);
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/index.txt"));

  serving::ServerOptions options;
  options.num_workers = 1;
  options.plan_dir = dir;
  serving::Server restarted(options);
  restarted.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
  restarted.Start();  // warm-starts from plan_dir
  serving::SampleResponse warm = restarted.Submit(req).get();
  ASSERT_EQ(warm.status, serving::Status::kOk) << warm.error;
  EXPECT_TRUE(warm.stages.plan_cache_hit)
      << "first request after a warm restart must hit the persisted plan";
  EXPECT_EQ(warm.stages.compile_ns, 0);
  ExpectBitIdentical(cold_outputs, warm.outputs, "warm restart");

  const serving::ServerStats stats = restarted.stats();
  EXPECT_EQ(stats.plan_cache_misses, 0);
  EXPECT_GE(stats.plan_cache_hits, 1);
  EXPECT_GE(stats.plans_loaded, 1);
  restarted.Stop();
}

// Stale artifacts (different pass config) must not be activated: the
// restarted server recompiles rather than serving a mismatched plan.
TEST(ServerWarmRestart, StalePassConfigIsIgnored) {
  graph::Graph g = PlanGraph();
  const std::string dir = ScratchDir("stale");
  {
    serving::ServerOptions options;
    options.num_workers = 1;
    options.plan_dir = dir;
    serving::Server server(options);
    server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
    server.Start();
    serving::SampleRequest req;
    req.algorithm = "GraphSAGE";
    req.dataset = "rmat";
    req.seeds = Seeds({1, 2});
    ASSERT_EQ(server.Submit(req).get().status, serving::Status::kOk);
    server.Stop();
  }

  core::SamplerOptions changed;
  changed.enable_fusion = false;  // different pass config digest
  serving::ServerOptions options;
  options.num_workers = 1;
  options.plan_dir = dir;
  serving::Server restarted(options);
  restarted.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g, changed));
  restarted.Start();
  EXPECT_EQ(restarted.stats().plans_loaded, 0);
  serving::SampleRequest req;
  req.algorithm = "GraphSAGE";
  req.dataset = "rmat";
  req.seeds = Seeds({1, 2});
  serving::SampleResponse r = restarted.Submit(req).get();
  ASSERT_EQ(r.status, serving::Status::kOk) << r.error;
  EXPECT_FALSE(r.stages.plan_cache_hit);
  restarted.Stop();
}

// Regression: one corrupted artifact (or malformed index line) in plan_dir
// must cost exactly that plan, never the warm start. The digest-mismatch
// GS_CHECK inside Deserialize used to unwind out of Server::Start's
// warm-start block, abandoning every remaining valid artifact; a malformed
// index line threw before any artifact was even opened.
TEST(ServerWarmRestart, CorruptedArtifactIsSkippedNotFatal) {
  graph::Graph g = PlanGraph();
  const std::string dir = ScratchDir("skipcorrupt");
  {
    serving::ServerOptions options;
    options.num_workers = 1;
    options.plan_dir = dir;
    serving::Server server(options);
    server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
    server.RegisterEndpoint(serving::MakeEndpoint("ShaDow", "rmat", g));
    server.Start();
    for (const std::string algorithm : {"GraphSAGE", "ShaDow"}) {
      serving::SampleRequest req;
      req.algorithm = algorithm;
      req.dataset = "rmat";
      req.seeds = Seeds({1, 2, 3});
      ASSERT_EQ(server.Submit(req).get().status, serving::Status::kOk);
    }
    server.Stop();
    ASSERT_GE(server.stats().plans_saved, 2);
  }

  // Corrupt one artifact so its body no longer matches the stored digest:
  // flip a hex digit in the "digest <hex>" header. The file still parses,
  // so the failure is specifically Deserialize's digest check.
  bool corrupted = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".plan" || corrupted) {
      continue;
    }
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const size_t pos = text.find("digest ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 7] = text[pos + 7] == '0' ? '1' : '0';
    std::ofstream(entry.path(), std::ios::trunc) << text;
    corrupted = true;
  }
  ASSERT_TRUE(corrupted);
  // And damage the index itself: a line with no separator and a line with an
  // empty canonical key, both of which used to abort the whole load.
  std::ofstream(dir + "/index.txt", std::ios::app) << "nospacetoken\ndeadbeef \n";

  serving::ServerOptions options;
  options.num_workers = 1;
  options.plan_dir = dir;
  serving::Server restarted(options);
  restarted.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
  restarted.RegisterEndpoint(serving::MakeEndpoint("ShaDow", "rmat", g));
  restarted.Start();  // must not throw
  // Exactly the intact artifact warm-started; the corrupted one was skipped.
  EXPECT_EQ(restarted.stats().plans_loaded, 1);
  // Both endpoints still serve: one from the warm plan, one recompiled.
  for (const std::string algorithm : {"GraphSAGE", "ShaDow"}) {
    serving::SampleRequest req;
    req.algorithm = algorithm;
    req.dataset = "rmat";
    req.seeds = Seeds({1, 2, 3});
    serving::SampleResponse r = restarted.Submit(req).get();
    EXPECT_EQ(r.status, serving::Status::kOk) << algorithm << ": " << r.error;
  }
  restarted.Stop();
}

}  // namespace
}  // namespace gs
