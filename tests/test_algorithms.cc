// Algorithm-level semantic tests: each of the 15 Table-2 programs produces
// samples with the statistical / structural properties its paper defines.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "sparse/kernels.h"
#include "tests/testing.h"

namespace gs::algorithms {
namespace {

using core::CompiledSampler;
using core::SamplerOptions;
using core::Value;
using core::ValueKind;
using tensor::IdArray;

IdArray Iota(int n) {
  std::vector<int32_t> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(i);
  }
  return IdArray::FromVector(v);
}

TEST(GraphSageAlgo, FanoutsPerLayer) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = GraphSage(g, {.fanouts = {4, 2}});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(16));
  ASSERT_EQ(out.size(), 3u);
  const sparse::Compressed& l1 = out[0].matrix.Csc();
  for (int64_t c = 0; c < out[0].matrix.num_cols(); ++c) {
    EXPECT_LE(l1.indptr[c + 1] - l1.indptr[c], 4);
  }
  const sparse::Compressed& l2 = out[1].matrix.Csc();
  for (int64_t c = 0; c < out[1].matrix.num_cols(); ++c) {
    EXPECT_LE(l2.indptr[c + 1] - l2.indptr[c], 2);
  }
  // Layer-2 columns are exactly layer-1's sampled rows.
  IdArray rows = sparse::RowIds(out[0].matrix);
  IdArray cols2 = sparse::ColIds(out[1].matrix);
  ASSERT_EQ(rows.size(), cols2.size());
  for (int64_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], cols2[i]);
  }
}

TEST(GraphSageAlgo, IncludeSeedsKeepsSeedsInFrontier) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = GraphSage(g, {.fanouts = {3}, .include_seeds = true});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(8));
  const IdArray& next = out.back().ids;
  std::set<int32_t> next_set(next.data(), next.data() + next.size());
  for (int32_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(next_set.count(s)) << "seed " << s << " missing";
  }
}

TEST(VrGcnAlgo, TinyFanouts) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = VrGcn(g);
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(8));
  const sparse::Compressed& l1 = out[0].matrix.Csc();
  for (int64_t c = 0; c < out[0].matrix.num_cols(); ++c) {
    EXPECT_LE(l1.indptr[c + 1] - l1.indptr[c], 2);
  }
}

TEST(DeepWalkAlgo, TracesFollowEdges) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = DeepWalk(g, {.walk_length = 6});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(10));
  ASSERT_EQ(out.size(), 6u);
  const auto edges = gs::testing::EdgeSet(g.adj());
  for (int64_t i = 0; i < 10; ++i) {
    int32_t prev = static_cast<int32_t>(i);
    for (const Value& step : out) {
      const int32_t cur = step.ids[i];
      if (prev >= 0 && cur >= 0) {
        EXPECT_NE(edges.find({cur, prev}), edges.end());
      }
      prev = cur;
    }
  }
}

TEST(Node2VecAlgo, LowPReturnsOften) {
  // p << 1 makes walks bounce back: consecutive steps revisit the
  // step-before-last far more often than with p >> 1.
  graph::Graph g = gs::testing::SmallRmat(200, 4000, 91, false);
  auto count_returns = [&](float p) {
    AlgorithmProgram ap = Node2Vec(g, {.walk_length = 20, .p = p, .q = 1.0f});
    SamplerOptions opts;
    opts.seed = 5;
    CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
    std::vector<Value> out = sampler.Sample(Iota(64));
    int64_t returns = 0;
    for (int64_t i = 0; i < 64; ++i) {
      int32_t prev2 = static_cast<int32_t>(i);
      int32_t prev1 = out[0].ids[i];
      for (size_t s = 1; s < out.size(); ++s) {
        const int32_t cur = out[s].ids[i];
        returns += (cur >= 0 && cur == prev2) ? 1 : 0;
        prev2 = prev1;
        prev1 = cur;
      }
    }
    return returns;
  };
  EXPECT_GT(count_returns(0.05f), 2 * count_returns(20.0f));
}

TEST(LadiesAlgo, WeightsNormalizedPerFrontier) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = Ladies(g, {.num_layers = 1, .layer_width = 32});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(16));
  const sparse::Matrix& w2 = out[0].matrix;
  sparse::ValueArray col_sums = sparse::SumAxis(w2, 1);
  for (int64_t c = 0; c < w2.num_cols(); ++c) {
    if (col_sums[c] > 0.0f) {
      EXPECT_NEAR(col_sums[c], 1.0f, 1e-3) << "column " << c;
    }
  }
  EXPECT_LE(w2.num_rows(), 32);
}

TEST(FastGcnAlgo, PrefersHighDegreeNodes) {
  graph::Graph g = gs::testing::SmallRmat(400, 8000, 17, true);
  sparse::ValueArray degree = sparse::SumAxis(g.adj(), 0);
  AlgorithmProgram ap = FastGcn(g, {.num_layers = 1, .layer_width = 40});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  // Average weighted degree of selected nodes must exceed the global mean.
  double selected_sum = 0;
  int64_t selected_n = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Value> out = sampler.Sample(Iota(16));
    IdArray rows = sparse::RowIds(out[0].matrix);
    for (int64_t i = 0; i < rows.size(); ++i) {
      selected_sum += degree[rows[i]];
      ++selected_n;
    }
  }
  double global_sum = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    global_sum += degree[v];
  }
  EXPECT_GT(selected_sum / selected_n, 1.5 * global_sum / g.num_nodes());
}

TEST(SealAlgo, InducedSubgraphOverSampledNodes) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = Seal(g, {.depth = 2, .fanout = 4});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(6));
  const sparse::Matrix& induced = out[0].matrix;
  const IdArray& nodes = out[1].ids;
  std::set<int32_t> node_set(nodes.data(), nodes.data() + nodes.size());
  const auto full = gs::testing::EdgeSet(g.adj());
  // Every induced edge connects sampled nodes and exists in the graph.
  for (const auto& [edge, w] : gs::testing::EdgeSet(induced)) {
    EXPECT_TRUE(node_set.count(edge.first));
    EXPECT_TRUE(node_set.count(edge.second));
    EXPECT_NE(full.find(edge), full.end());
    (void)w;
  }
}

TEST(ShadowAlgo, InducedSubgraphComplete) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = Shadow(g, {.depth = 2, .fanout = 3});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(4));
  const IdArray& nodes = out[1].ids;
  std::set<int32_t> node_set(nodes.data(), nodes.data() + nodes.size());
  // Completeness: EVERY graph edge between sampled nodes is present.
  const auto induced = gs::testing::EdgeSet(out[0].matrix);
  for (const auto& [edge, w] : gs::testing::EdgeSet(g.adj())) {
    if (node_set.count(edge.first) != 0 && node_set.count(edge.second) != 0) {
      EXPECT_NE(induced.find(edge), induced.end());
    }
    (void)w;
  }
}

TEST(SaintAlgo, VisitedNodesIncludeRoots) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = GraphSaint(g, {.walk_length = 3});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(5));
  const IdArray& nodes = out[1].ids;
  std::set<int32_t> node_set(nodes.data(), nodes.data() + nodes.size());
  for (int32_t r = 0; r < 5; ++r) {
    EXPECT_TRUE(node_set.count(r));
  }
}

TEST(PinSageAlgo, TopKBoundsAndCounts) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = PinSage(g, {.num_walks = 6, .walk_length = 2, .k = 5});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(8));
  const sparse::Matrix& neighbors = out[0].matrix;
  const sparse::Compressed& csc = neighbors.Csc();
  for (int64_t c = 0; c < neighbors.num_cols(); ++c) {
    EXPECT_LE(csc.indptr[c + 1] - csc.indptr[c], 5);
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      EXPECT_GE(csc.values[e], 1.0f);  // visit counts
      EXPECT_NE(csc.indices[e], static_cast<int32_t>(c));  // root excluded
    }
  }
}

TEST(HetGnnAlgo, RequiresBothRelations) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = HetGnn(g, {});
  SamplerOptions opts;
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), opts);
  sampler.BindGraph("rel0", &g.adj());
  EXPECT_THROW(sampler.Sample(Iota(4)), Error);  // rel1 missing
  sampler.BindGraph("rel1", &g.adj());
  std::vector<Value> out = sampler.Sample(Iota(4));
  EXPECT_EQ(out[0].matrix.num_cols(), 4);
}

TEST(PassAlgo, AttentionBiasesAreValidProbs) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = Pass(g, {.fanouts = {3}, .hidden = 8});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(8));
  const sparse::Compressed& csc = out[0].matrix.Csc();
  for (int64_t c = 0; c < out[0].matrix.num_cols(); ++c) {
    EXPECT_LE(csc.indptr[c + 1] - csc.indptr[c], 3);
  }
}

TEST(BanditAlgos, UpdateShiftsSamplingMass) {
  graph::Graph g = gs::testing::SmallRmat(150, 3000, 23, false);
  AlgorithmProgram ap = GcnBs(g, {.fanouts = {2}});
  tensor::Tensor weights = ap.tensors.at("bandit_w");
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});

  // Reward every sampled edge repeatedly; re-sampling must then concentrate
  // on previously rewarded edges.
  std::vector<Value> first = sampler.Sample(Iota(32));
  for (int round = 0; round < 6; ++round) {
    const int64_t updated =
        UpdateBanditWeights(g, first[0].matrix, weights, /*multiplicative=*/false, 50.0f);
    EXPECT_GT(updated, 0);
  }
  sampler.BindTensor("bandit_w", weights);
  const auto rewarded = gs::testing::EdgeSet(first[0].matrix);
  int64_t hits = 0;
  int64_t total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> again = sampler.Sample(Iota(32));
    for (const auto& [edge, w] : gs::testing::EdgeSet(again[0].matrix)) {
      hits += rewarded.count(edge) != 0 ? 1 : 0;
      ++total;
      (void)w;
    }
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.8);
}

TEST(AsgcnAlgo, LayerWidthBound) {
  graph::Graph g = gs::testing::SmallRmat();
  AlgorithmProgram ap = Asgcn(g, {.num_layers = 2, .layer_width = 24});
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), {});
  std::vector<Value> out = sampler.Sample(Iota(16));
  EXPECT_LE(out[0].matrix.num_rows(), 24);
  EXPECT_LE(out[1].matrix.num_rows(), 24);
}

TEST(Registry, AllFifteenBuild) {
  graph::Graph g = gs::testing::SmallRmat();
  EXPECT_EQ(AllAlgorithmNames().size(), 15u);
  for (const std::string& name : AllAlgorithmNames()) {
    AlgorithmProgram ap = MakeAlgorithm(name, g);
    EXPECT_EQ(ap.name, name);
    ap.program.Verify();
  }
  EXPECT_THROW(MakeAlgorithm("NotAnAlgorithm", g), Error);
}

TEST(Registry, ModelDrivenFlags) {
  graph::Graph g = gs::testing::SmallRmat();
  EXPECT_TRUE(MakeAlgorithm("PASS", g).updates_model);
  EXPECT_TRUE(MakeAlgorithm("AS-GCN", g).updates_model);
  EXPECT_TRUE(MakeAlgorithm("GCN-BS", g).updates_model);
  EXPECT_TRUE(MakeAlgorithm("Thanos", g).updates_model);
  EXPECT_FALSE(MakeAlgorithm("GraphSAGE", g).updates_model);
  EXPECT_FALSE(MakeAlgorithm("LADIES", g).updates_model);
}

}  // namespace
}  // namespace gs::algorithms
