// Chaos soak: a live multi-worker server under a seeded fault schedule.
//
// The acceptance criteria of the gs::fault work, end to end: with faults
// injected at every site (kernel launches, allocations, a stuck kernel, UVA
// transfers), the serving recovery ladder must keep the service alive —
// every submitted request gets exactly one terminal response, no worker
// dies, successful responses are bit-identical to a fault-free run, and
// allocator accounting shows no drift once the server is gone.
//
// Labeled "chaos" (excluded from `ctest -L fast`); under GS_SANITIZE=thread
// this is the fault-path TSan workout (tools/check.sh chaos).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/rng.h"
#include "core/engine.h"
#include "device/device.h"
#include "fault/fault.h"
#include "fault/status.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "serving/request.h"
#include "serving/server.h"
#include "serving/stats.h"
#include "tests/testing.h"

namespace gs::fault {
namespace {

struct Workload {
  serving::SampleRequest request;
  std::vector<core::Value> expected;  // fault-free reference outputs
};

void ExpectValuesEqual(const std::vector<core::Value>& got,
                       const std::vector<core::Value>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].kind, want[i].kind);
    switch (got[i].kind) {
      case core::ValueKind::kIds:
        EXPECT_EQ(got[i].ids.ToVector(), want[i].ids.ToVector());
        break;
      case core::ValueKind::kMatrix:
        // Canonical digest: the sorted global edge set, independent of the
        // matrix's storage layout (faults perturb timing, which may change
        // which format got materialized — never the edges).
        EXPECT_EQ(testing::EdgeSet(got[i].matrix), testing::EdgeSet(want[i].matrix));
        break;
      case core::ValueKind::kTensor:
        ASSERT_EQ(got[i].tensor.shape(), want[i].tensor.shape());
        EXPECT_EQ(got[i].tensor.array().ToVector(), want[i].tensor.array().ToVector());
        break;
    }
  }
}

TEST(FaultSoak, ServerSurvivesSeededFaultScheduleBitIdentically) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);

  graph::Graph g = testing::SmallRmat(400, 4000, 29);
  // A second, host-resident graph so transfer.error probes fire too.
  graph::RMatParams uva_params;
  uva_params.name = "uva";
  uva_params.num_nodes = 400;
  uva_params.num_edges = 4000;
  uva_params.seed = 31;
  uva_params.uva = true;
  graph::Graph uva_graph = graph::MakeRMatGraph(uva_params);

  // Layout selection picks formats from timing measurements, which fault
  // injection perturbs; pin it off so the compiled plan (and therefore the
  // bit-exact outputs) cannot depend on the fault schedule.
  core::SamplerOptions plan_options;
  plan_options.enable_layout_selection = false;

  const std::vector<int64_t> fanouts = {4, 3};

  // Fault-free reference results, computed against plans compiled exactly
  // like the server compiles them (BuildPlan forces super_batch = 1).
  auto build_reference = [&](const graph::Graph& graph) {
    algorithms::AlgorithmProgram ap =
        algorithms::GraphSage(graph, algorithms::SageParams{.fanouts = fanouts});
    core::SamplerOptions options = plan_options;
    options.super_batch = 1;
    auto plan = std::make_shared<core::CompiledSampler>(std::move(ap.program), graph,
                                                        std::move(ap.tensors), options);
    plan->Warmup(tensor::IdArray::FromVector({0, 1, 2, 3}));
    return plan;
  };
  auto reference_plan = build_reference(g);
  auto reference_uva_plan = build_reference(uva_graph);

  constexpr int kRequests = 160;
  Rng workload_rng(0xC0FFEE);
  std::vector<Workload> workload;
  for (int i = 0; i < kRequests; ++i) {
    const bool use_uva = i % 4 == 3;
    serving::SampleRequest request;
    request.algorithm = "GraphSAGE";
    request.dataset = use_uva ? "uva" : "rmat";
    std::vector<int32_t> ids;
    for (int k = 0; k < 8; ++k) {
      ids.push_back(static_cast<int32_t>(workload_rng.NextU64() % 400));
    }
    request.seeds = tensor::IdArray::FromVector(ids);
    request.seed = workload_rng.NextU64();
    request.fanouts = fanouts;
    request.tenant = "tenant-" + std::to_string(i % 3);
    Workload item;
    item.expected = (use_uva ? reference_uva_plan : reference_plan)
                        ->SampleSeeded(request.seeds, request.seed);
    item.request = std::move(request);
    workload.push_back(std::move(item));
  }

  serving::ServerOptions options;
  options.num_workers = 3;
  options.queue_capacity = 256;          // no admission-pressure rejections
  options.shed_occupancy = 2.0;          // no occupancy-based fanout shedding
  options.deadline_admission = false;
  options.max_transient_retries = 6;

  // Fault-free warm-up pass of the full workload through a throwaway server
  // so every piece of one-time lazy state the soak can reach (graph format
  // caches, warmup allocations, per-seed compaction paths) is materialized
  // before the accounting baseline is taken — the soak then must not drift it.
  {
    serving::Server warm(options);
    warm.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g, plan_options));
    warm.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "uva", uva_graph, plan_options));
    warm.Start();
    std::vector<std::future<serving::SampleResponse>> warm_futures;
    for (const Workload& item : workload) {
      warm_futures.push_back(warm.Submit(item.request));
    }
    // Digesting the warm outputs also materializes the lazy format caches
    // inside the workload's expected matrices, which the post-soak
    // comparison would otherwise grow after the baseline.
    for (size_t i = 0; i < warm_futures.size(); ++i) {
      serving::SampleResponse response = warm_futures[i].get();
      ASSERT_EQ(response.status, serving::Status::kOk);
      ExpectValuesEqual(response.outputs, workload[i].expected);
    }
    warm.Stop();
  }
  const int64_t reserved_before = dev.allocator().stats().bytes_reserved;
  const int64_t in_use_before = dev.allocator().stats().bytes_in_use;

  std::vector<serving::SampleResponse> responses;
  {
    // The seeded fault schedule. Per-kernel transient probability is kept
    // low because one execution probes hundreds of kernels; the occurrence
    // entry guarantees at least one watchdog trip.
    FaultScope scope(FaultPlan::Parse(
        "kernel.transient:p=0.002;alloc.oom:p=0.005;kernel.stuck:occ=2000;"
        "transfer.error:p=0.0005",
        2024));

    serving::Server server(options);
    server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g, plan_options));
    server.RegisterEndpoint(
        serving::MakeEndpoint("GraphSAGE", "uva", uva_graph, plan_options));
    server.Start();

    std::vector<std::future<serving::SampleResponse>> futures;
    for (const Workload& item : workload) {
      futures.push_back(server.Submit(item.request));
    }
    for (std::future<serving::SampleResponse>& future : futures) {
      responses.push_back(future.get());  // no deadlock: every future must fulfil
    }

    EXPECT_TRUE(server.running()) << "no worker death under faults";
    server.Stop();

    const serving::ServerStats stats = server.stats();
    EXPECT_EQ(stats.received, kRequests);
    EXPECT_EQ(stats.completed + stats.failed, kRequests);
    EXPECT_EQ(stats.worker_exceptions, 0)
        << "recovery must happen inside the ladder, not at the worker boundary";
    EXPECT_GT(stats.transient_retries, 0) << "the schedule must actually inject";

    // Faults were injected at the kernel site (probabilistic sites on this
    // schedule fire with overwhelming probability across ~10^4 probes).
    EXPECT_GT(scope.injector().counters(Site::kKernelTransient).injected, 0);
    EXPECT_GT(scope.injector().counters(Site::kAllocOom).probes, 0);
  }

  // Classify and digest outside the scope: comparing outputs runs format
  // conversions and host copies on this thread, which must not be probed.
  int64_t ok = 0, failed = 0, degraded = 0, identical = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const serving::SampleResponse& response = responses[i];
    switch (response.status) {
      case serving::Status::kOk:
        ++ok;
        if (response.degraded) {
          ++degraded;  // shed retry changed the plan; outputs legitimately differ
        } else {
          ExpectValuesEqual(response.outputs, workload[i].expected);
          ++identical;
        }
        break;
      case serving::Status::kFailed:
        ++failed;
        EXPECT_NE(response.code, ErrorCode::kOk);
        EXPECT_FALSE(response.error.empty());
        break;
      default:
        FAIL() << "unexpected status " << serving::StatusName(response.status);
    }
  }

  // Most requests must survive the schedule, and the success path must be
  // bit-identical to the fault-free reference.
  EXPECT_EQ(ok + failed, kRequests);
  EXPECT_GT(identical, kRequests / 2);
  EXPECT_EQ(identical + degraded, ok);

  // No allocator accounting drift once the server (and its plan cache) is
  // destroyed and the responses' device outputs are released: reserved
  // attribution fully returned, no leaked live bytes.
  responses.clear();
  EXPECT_EQ(dev.allocator().stats().bytes_reserved, reserved_before);
  EXPECT_EQ(dev.allocator().stats().bytes_in_use, in_use_before);

  // Determinism of the schedule itself: replaying the decision function for
  // the same plan yields the same injected/clean sequence.
  FaultPlan plan = FaultPlan::Parse("kernel.transient:p=0.002", 2024);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int64_t n = 0; n < 5000; ++n) {
    ASSERT_EQ(a.Decide(Site::kKernelTransient, n), b.Decide(Site::kKernelTransient, n));
  }
}

}  // namespace
}  // namespace gs::fault
