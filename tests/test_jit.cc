// JIT tier (gs::jit): region extraction and ranking, emitted-source
// structure, kernel-cache compile/load/memoize/corruption recovery, the
// all-algorithm JIT-vs-interpreter bit-identity oracle (single-device,
// sharded serving, and mutated-epoch snapshots), artifact warm restarts,
// and the jit.compile fault-demotion ladder (a demotion is never a failed
// request).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "core/executor.h"
#include "core/ir.h"
#include "core/plan.h"
#include "fault/fault.h"
#include "graph/graph.h"
#include "graph/store.h"
#include "jit/emitter.h"
#include "jit/jit.h"
#include "jit/kernel_cache.h"
#include "jit/region.h"
#include "serving/request.h"
#include "serving/server.h"
#include "tests/testing.h"

namespace gs {
namespace {

using core::CompiledPlan;
using core::SamplerOptions;
using core::SamplerSession;
using core::Value;
using jit::CodeEmitter;
using jit::JitEngine;
using jit::JitEngineOptions;
using jit::KernelCache;
using jit::KernelCacheOptions;
using jit::Region;
using jit::RegionExtractor;
using tensor::IdArray;

graph::Graph JitGraph() { return testing::SmallRmat(300, 3000, 41); }

IdArray Seeds(std::vector<int32_t> ids) { return IdArray::FromVector(ids); }

std::string ScratchDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "gs_jit_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

JitEngineOptions EngineOptions(const std::string& dir) {
  JitEngineOptions options;
  options.artifact_dir = dir;
  return options;
}

KernelCacheOptions CacheOptions(const std::string& dir) {
  KernelCacheOptions options;
  options.artifact_dir = dir;
  return options;
}

SamplerOptions Optimized(uint64_t seed = 0xD1FF) {
  SamplerOptions opts;
  opts.enable_fusion = true;
  opts.enable_preprocessing = true;
  opts.enable_layout_selection = true;
  opts.seed = seed;
  return opts;
}

std::shared_ptr<CompiledPlan> Compile(const std::string& name, const graph::Graph& g,
                                      SamplerOptions options,
                                      std::map<std::string, tensor::Tensor>* tensors) {
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(name, g);
  if (ap.updates_model) {
    options.super_batch = 1;
  }
  *tensors = std::move(ap.tensors);
  return std::make_shared<CompiledPlan>(std::move(ap.program), options, name);
}

// Builds a warmed session over `plan`, optionally with a JIT table attached
// (the serving order: Warmup — which calibrates the plan and finalizes its
// digest — then the table).
std::shared_ptr<SamplerSession> MakeSession(
    std::shared_ptr<CompiledPlan> plan, const graph::Graph& g,
    std::map<std::string, tensor::Tensor> tensors,
    std::shared_ptr<const core::FusedKernelTable> table = nullptr) {
  auto session = std::make_shared<SamplerSession>(std::move(plan), g, std::move(tensors));
  if (session->plan().label() == "HetGNN") {
    session->BindGraph("rel0", &g.adj());
    session->BindGraph("rel1", &g.adj());
  }
  session->Warmup(Seeds({0, 1, 2, 3}));
  session->SetJitTable(std::move(table));
  return session;
}

void ExpectBitIdentical(const std::vector<Value>& a, const std::vector<Value>& b,
                        const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(core::BitIdentical(a[i], b[i])) << context << " output " << i << " diverged";
  }
}

// ------------------------------------------------------- region extraction

TEST(RegionExtraction, RanksFollowTopoOrderAndFeedersAreRecorded) {
  graph::Graph g = JitGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = Compile("GraphSAGE", g, Optimized(), &tensors);
  const std::vector<Region> regions = RegionExtractor::Extract(plan->program());
  ASSERT_FALSE(regions.empty()) << "fusion on: GraphSAGE must contain fused regions";
  for (size_t i = 0; i < regions.size(); ++i) {
    const Region& r = regions[i];
    EXPECT_EQ(r.rank, static_cast<int>(i)) << "ranks are dense and ordered";
    if (i > 0) {
      EXPECT_GT(r.node_id, regions[i - 1].node_id) << "topo order";
    }
    EXPECT_TRUE(r.kind == core::OpKind::kFusedSliceSample ||
                r.kind == core::OpKind::kFusedEdgeMap ||
                r.kind == core::OpKind::kFusedEdgeMapReduce);
    if (r.kind == core::OpKind::kFusedSliceSample) {
      EXPECT_GT(r.k, 0);
    }
    EXPECT_FALSE(r.Signature().empty());
    EXPECT_NE(r.Signature().find("r" + std::to_string(r.rank)), std::string::npos);
  }

  // Fusion off: no fused nodes, no regions, and TableFor returns nullptr.
  SamplerOptions unfused = Optimized();
  unfused.enable_fusion = false;
  std::map<std::string, tensor::Tensor> t2;
  auto plain = Compile("GraphSAGE", g, unfused, &t2);
  EXPECT_TRUE(RegionExtractor::Extract(plain->program()).empty());
  JitEngine engine(EngineOptions(ScratchDir("noregions")));
  EXPECT_EQ(engine.TableFor(*plain), nullptr);
}

TEST(RegionExtraction, RanksAreStableAcrossRecompilation) {
  // The rank is half of the artifact key, so re-deriving the same plan in
  // another process must produce identical (rank, signature) lists.
  graph::Graph g = JitGraph();
  std::map<std::string, tensor::Tensor> t1;
  std::map<std::string, tensor::Tensor> t2;
  auto a = Compile("LADIES", g, Optimized(), &t1);
  auto b = Compile("LADIES", g, Optimized(), &t2);
  ASSERT_EQ(a->Digest(), b->Digest());
  const std::vector<Region> ra = RegionExtractor::Extract(a->program());
  const std::vector<Region> rb = RegionExtractor::Extract(b->program());
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].Signature(), rb[i].Signature());
  }
}

// ---------------------------------------------------------------- emitter

TEST(Emitter, EmitsKeyedSelfContainedSource) {
  graph::Graph g = JitGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = Compile("GraphSAGE", g, Optimized(), &tensors);
  const std::vector<Region> regions = RegionExtractor::Extract(plan->program());
  ASSERT_FALSE(regions.empty());
  for (const Region& r : regions) {
    if (!CodeEmitter::CanEmit(r)) {
      continue;
    }
    const std::string key = plan->DigestHex() + "-r" + std::to_string(r.rank);
    const std::string source = CodeEmitter::Emit(r, key);
    EXPECT_NE(source.find("gs_jit_key"), std::string::npos);
    EXPECT_NE(source.find("gs_jit_run"), std::string::npos);
    EXPECT_NE(source.find(key), std::string::npos) << "key embedded verbatim";
    // Self-contained: no repo headers on the include path.
    EXPECT_EQ(source.find("#include \""), std::string::npos);
  }
}

TEST(Emitter, DeclinesUnsupportedFanouts) {
  Region r;
  r.kind = core::OpKind::kFusedSliceSample;
  r.k = 0;  // the interpreter rejects it too (GS_CHECK_GT)
  EXPECT_FALSE(CodeEmitter::CanEmit(r));
  r.k = 1 << 20;  // beyond the stack-scratch cap: demote, don't emit
  EXPECT_FALSE(CodeEmitter::CanEmit(r));
  r.k = 8;
  EXPECT_TRUE(CodeEmitter::CanEmit(r));
}

// ------------------------------------------------------------ kernel cache

TEST(KernelCacheTest, CompilesMemoizesAndReloadsPersistedArtifacts) {
  graph::Graph g = JitGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = Compile("GraphSAGE", g, Optimized(), &tensors);
  const std::vector<Region> regions = RegionExtractor::Extract(plan->program());
  ASSERT_FALSE(regions.empty());
  const Region& r = regions.front();
  ASSERT_TRUE(CodeEmitter::CanEmit(r));
  const std::string key = plan->DigestHex() + "-r" + std::to_string(r.rank);
  const std::string source = CodeEmitter::Emit(r, key);
  const std::string dir = ScratchDir("cache");

  KernelCache cache(CacheOptions(dir));
  std::string error;
  bool from_artifact = true;
  void* entry = cache.LoadOrCompile(key, source, &error, &from_artifact);
  ASSERT_NE(entry, nullptr) << error;
  EXPECT_FALSE(from_artifact);
  EXPECT_EQ(cache.counters().compiles, 1);
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + key + ".so"));

  // Memoized: the second resolution does not touch the toolchain.
  EXPECT_EQ(cache.LoadOrCompile(key, source, &error), entry);
  EXPECT_EQ(cache.counters().compiles, 1);

  // A fresh cache over the same directory dlopens the persisted .so.
  KernelCache warm(CacheOptions(dir));
  from_artifact = false;
  ASSERT_NE(warm.LoadOrCompile(key, source, &error, &from_artifact), nullptr) << error;
  EXPECT_TRUE(from_artifact);
  EXPECT_EQ(warm.counters().compiles, 0);
  EXPECT_EQ(warm.counters().artifact_hits, 1);

  // A corrupted artifact fails dlopen verification, is discarded, and is
  // rebuilt from source once. The corrupt file must use a key this process
  // has never dlopened: glibc caches handles per path, so corruption of an
  // already-loaded artifact is unobservable in-process (and harmless — the
  // verified mapping stays live). On disk, corruption is only ever seen at
  // first load, which is what this models.
  const std::string corrupt_key = "corrupt-r" + std::to_string(r.rank);
  const std::string corrupt_source = CodeEmitter::Emit(r, corrupt_key);
  std::ofstream(dir + "/" + corrupt_key + ".so") << "not an object";
  KernelCache recover(CacheOptions(dir));
  from_artifact = true;
  ASSERT_NE(recover.LoadOrCompile(corrupt_key, corrupt_source, &error, &from_artifact),
            nullptr)
      << error;
  EXPECT_FALSE(from_artifact);
  EXPECT_EQ(recover.counters().compiles, 1);
}

TEST(KernelCacheTest, BadSourceResolvesToInterpretNotThrow) {
  KernelCache cache(CacheOptions(ScratchDir("badsrc")));
  std::string error;
  EXPECT_EQ(cache.LoadOrCompile("bad-r0", "this is not C++;", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(cache.counters().failures, 1);
  // The failure is memoized: no second compiler invocation.
  EXPECT_EQ(cache.LoadOrCompile("bad-r0", "this is not C++;", &error), nullptr);
  EXPECT_EQ(cache.counters().failures, 1);
}

// ------------------------------------------------- bit-identity (oracle)

// The acceptance oracle: for every Table-2 algorithm, sampling with the JIT
// jump table attached is bit-identical to pure interpretation — same seeds,
// same draws, same floats.
TEST(JitOracle, AllAlgorithmsBitIdenticalToInterpreter) {
  graph::Graph g = JitGraph();
  JitEngine engine(EngineOptions(ScratchDir("oracle")));
  jit::ResetGlobalJitStats();
  int jitted_algorithms = 0;
  for (const std::string& algo : algorithms::AllAlgorithmNames()) {
    std::map<std::string, tensor::Tensor> tensors;
    auto plan = Compile(algo, g, Optimized(), &tensors);
    std::shared_ptr<const core::FusedKernelTable> table = engine.TableFor(*plan);
    auto interp = MakeSession(plan, g, tensors, nullptr);
    auto jitted = MakeSession(plan, g, tensors, table);
    if (table != nullptr) {
      ++jitted_algorithms;
    }
    const IdArray frontier = Seeds({5, 17, 2, 42, 8, 13, 99, 1});
    for (const uint64_t seed : {uint64_t{1}, uint64_t{0xBEEF}, uint64_t{777}}) {
      ExpectBitIdentical(interp->SampleSeeded(frontier, seed),
                         jitted->SampleSeeded(frontier, seed), algo);
    }
  }
  EXPECT_GT(jitted_algorithms, 0) << "at least the fused samplers must have tables";
  const jit::JitStats stats = jit::GlobalJitStats();
  EXPECT_GT(stats.regions, 0);
  EXPECT_GT(stats.compiled, 0);
  EXPECT_GT(stats.hits, 0) << "native kernels must actually serve fused ops";
}

// Sharded serving: a 4-shard server with --jit answers bit-identically to
// the same server without it, and no request fails.
TEST(JitOracle, ShardedServingBitIdentical) {
  graph::Graph g = JitGraph();
  // The server's shard devices own the response memory, so each server must
  // stay alive until the comparison is done (same idiom as test_shard.cc).
  auto serve_once = [&](bool jit, int num_shards) {
    serving::ServerOptions options;
    options.num_workers = 2;
    options.num_shards = num_shards;
    options.jit = jit;
    auto server = std::make_unique<serving::Server>(options);
    server->RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
    server->RegisterEndpoint(serving::MakeEndpoint("LADIES", "rmat", g));
    std::vector<std::vector<Value>> outputs;
    server->Start();
    for (const std::string algo : {"GraphSAGE", "LADIES"}) {
      serving::SampleRequest req;
      req.algorithm = algo;
      req.dataset = "rmat";
      req.seeds = Seeds({1, 2, 3, 4, 5, 6, 7, 8});
      req.seed = 4242;
      req.fanouts = {4, 3};
      serving::SampleResponse r = server->Submit(std::move(req)).get();
      EXPECT_EQ(r.status, serving::Status::kOk) << algo << ": " << r.error;
      outputs.push_back(std::move(r.outputs));
    }
    EXPECT_EQ(server->stats().failed, 0);
    return std::make_pair(std::move(server), std::move(outputs));
  };
  jit::ResetGlobalJitStats();
  for (const int num_shards : {1, 4}) {
    auto [interp_server, interp] = serve_once(false, num_shards);
    auto [jit_server, jitted] = serve_once(true, num_shards);
    ASSERT_EQ(interp.size(), jitted.size());
    for (size_t i = 0; i < interp.size(); ++i) {
      ExpectBitIdentical(interp[i], jitted[i], "shards=" + std::to_string(num_shards) +
                                                   " request " + std::to_string(i));
    }
    interp_server->Stop();
    jit_server->Stop();
  }
  EXPECT_GT(jit::GlobalJitStats().hits, 0);
}

// Dynamic graphs: after online mutations, sessions over the mutated
// snapshot sample identically with and without the JIT.
TEST(JitOracle, MutatedEpochSnapshotBitIdentical) {
  graph::GraphStore store(JitGraph());
  graph::MutationBatch batch;
  for (int32_t i = 0; i < 40; ++i) {
    batch.add_edges.push_back({i * 3 % 300, (i * 7 + 1) % 300, 0.5f + 0.01f * i});
  }
  batch.remove_edges.push_back({1, 0});
  const std::shared_ptr<const graph::Snapshot> snap = store.Apply(batch);
  ASSERT_GT(snap->epoch(), 0u);

  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm("GraphSAGE", snap->graph());
  auto plan = std::make_shared<CompiledPlan>(std::move(ap.program), Optimized(), "GraphSAGE");
  JitEngine engine(EngineOptions(ScratchDir("dynepoch")));
  std::shared_ptr<const core::FusedKernelTable> table = engine.TableFor(*plan);
  ASSERT_NE(table, nullptr);

  SamplerSession interp(plan, snap, ap.tensors);
  SamplerSession jitted(plan, snap, ap.tensors);
  jitted.SetJitTable(table);
  interp.Warmup(Seeds({0, 1, 2, 3}));
  jitted.Warmup(Seeds({0, 1, 2, 3}));
  const IdArray frontier = Seeds({2, 290, 7, 150, 33});
  for (const uint64_t seed : {uint64_t{3}, uint64_t{0xD00D}}) {
    ExpectBitIdentical(interp.SampleSeeded(frontier, seed),
                       jitted.SampleSeeded(frontier, seed), "mutated epoch");
  }
}

// ------------------------------------------------------- demotion ladder

// A forced jit.compile fault demotes every region to the interpreter; the
// engine still returns a (fully declining) table, sampling still works, and
// a serving request never fails because of it.
TEST(JitFault, CompileFaultDemotesWithZeroFailedRequests) {
  graph::Graph g = JitGraph();
  fault::FaultPlan fault_plan;
  fault_plan.site(fault::Site::kJitCompile).after = 0;  // every probe fires
  fault::FaultScope scope(fault_plan);
  jit::ResetGlobalJitStats();

  // Engine level: all regions demote, none compile.
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = Compile("GraphSAGE", g, Optimized(), &tensors);
  JitEngine engine(EngineOptions(ScratchDir("faulted")));
  std::shared_ptr<const core::FusedKernelTable> table = engine.TableFor(*plan);
  jit::JitStats stats = jit::GlobalJitStats();
  EXPECT_GT(stats.regions, 0);
  EXPECT_EQ(stats.compiled, 0);
  EXPECT_EQ(stats.demotions, stats.regions);

  // Session level: the demoted table declines and the interpreter serves.
  auto interp = MakeSession(plan, g, tensors, nullptr);
  auto demoted = MakeSession(plan, g, tensors, table);
  const IdArray frontier = Seeds({4, 9, 16, 25});
  ExpectBitIdentical(interp->SampleSeeded(frontier, 11),
                     demoted->SampleSeeded(frontier, 11), "demoted table");

  // Serving level: --jit under a permanent compile fault serves everything.
  serving::ServerOptions options;
  options.num_workers = 2;
  options.jit = true;
  serving::Server server(options);
  server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
  server.Start();
  for (int i = 0; i < 8; ++i) {
    serving::SampleRequest req;
    req.algorithm = "GraphSAGE";
    req.dataset = "rmat";
    req.seeds = Seeds({1 + i, 2 + i, 3 + i});
    req.seed = 100 + i;
    EXPECT_EQ(server.Submit(std::move(req)).get().status, serving::Status::kOk);
  }
  server.Stop();
  const serving::ServerStats sstats = server.stats();
  EXPECT_EQ(sstats.failed, 0);
  EXPECT_EQ(sstats.completed, 8);
  EXPECT_GT(sstats.jit_demotions, 0);
  EXPECT_EQ(sstats.jit_compiled, 0);
}

// -------------------------------------------------------- warm restarts

TEST(JitEngineTest, WarmRestartReloadsArtifactsWithoutRecompiling) {
  graph::Graph g = JitGraph();
  const std::string dir = ScratchDir("restart");
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = Compile("GraphSAGE", g, Optimized(), &tensors);
  // Calibrate first: warmup mutates the plan's calibration state, which is
  // part of Digest() — artifact keys are only stable once that has happened
  // (serving attaches post-warmup for the same reason).
  auto interp = MakeSession(plan, g, tensors, nullptr);

  JitEngine cold(EngineOptions(dir));
  ASSERT_NE(cold.TableFor(*plan), nullptr);
  EXPECT_GT(cold.cache_counters().compiles, 0);
  EXPECT_EQ(cold.cache_counters().artifact_hits, 0);

  // Restart: a new engine (new process, same plan_dir) loads the persisted
  // .so files and never invokes the compiler.
  jit::ResetGlobalJitStats();
  JitEngine warm(EngineOptions(dir));
  std::shared_ptr<const core::FusedKernelTable> table = warm.TableFor(*plan);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(warm.cache_counters().compiles, 0);
  EXPECT_GT(warm.cache_counters().artifact_hits, 0);
  EXPECT_GT(jit::GlobalJitStats().artifact_hits, 0);

  // The reloaded kernels still match the interpreter.
  auto jitted = MakeSession(plan, g, tensors, table);
  const IdArray frontier = Seeds({3, 33, 133});
  ExpectBitIdentical(interp->SampleSeeded(frontier, 5),
                     jitted->SampleSeeded(frontier, 5), "warm restart");

  // TableFor memoizes per plan digest: same table object back.
  EXPECT_EQ(warm.TableFor(*plan).get(), table.get());
}

TEST(JitEngineTest, DisableEnvKillsTheJit) {
  graph::Graph g = JitGraph();
  std::map<std::string, tensor::Tensor> tensors;
  auto plan = Compile("GraphSAGE", g, Optimized(), &tensors);
  ::setenv("GS_JIT_DISABLE", "1", 1);
  JitEngine engine(EngineOptions(ScratchDir("disabled")));
  EXPECT_EQ(engine.TableFor(*plan), nullptr);
  ::unsetenv("GS_JIT_DISABLE");
}

// Serving: a warm-restarted --jit server reports artifact hits and answers
// bit-identically to its cold run.
TEST(JitServing, WarmRestartServesFromPersistedKernels) {
  graph::Graph g = JitGraph();
  const std::string dir = ScratchDir("servewarm");
  serving::SampleRequest req;
  req.algorithm = "GraphSAGE";
  req.dataset = "rmat";
  req.seeds = Seeds({3, 1, 4, 1, 5});
  req.seed = 2718;

  std::vector<Value> cold_outputs;
  {
    jit::ResetGlobalJitStats();
    serving::ServerOptions options;
    options.num_workers = 1;
    options.plan_dir = dir;
    options.jit = true;
    serving::Server server(options);
    server.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
    server.Start();
    serving::SampleResponse r = server.Submit(req).get();
    ASSERT_EQ(r.status, serving::Status::kOk) << r.error;
    cold_outputs = std::move(r.outputs);
    server.Stop();
    const serving::ServerStats stats = server.stats();
    EXPECT_GT(stats.jit_regions, 0);
    EXPECT_GT(stats.jit_compiled, 0);
    EXPECT_NE(stats.ToString().find("jit=["), std::string::npos);
  }

  jit::ResetGlobalJitStats();
  serving::ServerOptions options;
  options.num_workers = 1;
  options.plan_dir = dir;
  options.jit = true;
  serving::Server restarted(options);
  restarted.RegisterEndpoint(serving::MakeEndpoint("GraphSAGE", "rmat", g));
  restarted.Start();
  serving::SampleResponse warm = restarted.Submit(req).get();
  ASSERT_EQ(warm.status, serving::Status::kOk) << warm.error;
  ExpectBitIdentical(cold_outputs, warm.outputs, "jit warm restart");
  restarted.Stop();
  const serving::ServerStats stats = restarted.stats();
  EXPECT_GT(stats.jit_artifact_hits, 0) << "persisted kernels must be reused";
}

}  // namespace
}  // namespace gs
