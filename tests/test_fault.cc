// Tests for gs::fault (src/fault/) and the recovery paths it exercises:
// plan parsing, deterministic injection sequences, the allocator's OOM
// recovery ladder (cache flush -> pressure handlers -> typed failure), the
// stream watchdog + executor batch cancellation, UVA transfer faults, the
// plan cache's pressure handler, BatchProducer checkpoint/resume, trainer
// interrupt/resume bit-identity, and the GS_CHECK unwind-suppression fix.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/engine.h"
#include "device/allocator.h"
#include "device/device.h"
#include "device/stream.h"
#include "feature/hot_set_cache.h"
#include "fault/fault.h"
#include "fault/status.h"
#include "gnn/minibatch.h"
#include "gnn/trainer.h"
#include "graph/graph.h"
#include "serving/plan_cache.h"
#include "tests/testing.h"

namespace gs::fault {
namespace {

using device::CachingAllocator;
using device::DeviceProfile;
using device::KernelScope;
using device::Stream;

// ------------------------------------------------------------ plan parsing

TEST(FaultPlan, ParsesSpecAndRoundTrips) {
  FaultPlan plan =
      FaultPlan::Parse("alloc.oom:p=0.25;kernel.stuck:occ=3,17:mag=64;kernel.transient:p=0.5", 42);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.site(Site::kAllocOom).probability, 0.25);
  EXPECT_EQ(plan.site(Site::kKernelStuck).occurrences, (std::vector<int64_t>{3, 17}));
  EXPECT_DOUBLE_EQ(plan.site(Site::kKernelStuck).magnitude, 64.0);
  EXPECT_DOUBLE_EQ(plan.site(Site::kKernelTransient).probability, 0.5);
  EXPECT_TRUE(plan.site(Site::kTransferError).empty());
  EXPECT_FALSE(plan.empty());

  // ToString() re-parses to the same plan.
  FaultPlan again = FaultPlan::Parse(plan.ToString(), plan.seed);
  for (int s = 0; s < kNumSites; ++s) {
    const Site site = static_cast<Site>(s);
    EXPECT_DOUBLE_EQ(again.site(site).probability, plan.site(site).probability);
    EXPECT_EQ(again.site(site).occurrences, plan.site(site).occurrences);
  }
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW(FaultPlan::Parse("bogus.site:p=0.1", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("alloc.oom", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("alloc.oom:p=1.5", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("alloc.oom:p=nope", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("alloc.oom:occ=-3", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("alloc.oom:frobnicate=1", 0), Error);
}

TEST(FaultPlan, ShardQualifiedClausesRoundTrip) {
  FaultPlan plan = FaultPlan::Parse(
      "exchange.timeout:p=0.1;shard2:shard.lost:after=5;shard0:exchange.timeout:p=0;"
      "shard1:shard.slow:p=0.5:mag=4", 7);
  // Unqualified clause is the default for shards without an override.
  EXPECT_DOUBLE_EQ(plan.Effective(Site::kExchangeTimeout, 3).probability, 0.1);
  // shard0's p=0 override exempts it from the unqualified clause.
  EXPECT_TRUE(plan.Effective(Site::kExchangeTimeout, 0).empty());
  EXPECT_EQ(plan.Effective(Site::kShardLost, 2).after, 5);
  EXPECT_TRUE(plan.Effective(Site::kShardLost, 1).empty());
  EXPECT_DOUBLE_EQ(plan.Effective(Site::kShardSlow, 1).magnitude, 4.0);
  // Shard-less probes never see shard overrides.
  EXPECT_TRUE(plan.Effective(Site::kShardLost, -1).empty());

  // ToString() re-parses to the same plan, including the p=0 exemption.
  FaultPlan again = FaultPlan::Parse(plan.ToString(), plan.seed);
  EXPECT_EQ(again.ToString(), plan.ToString());
  EXPECT_TRUE(again.Effective(Site::kExchangeTimeout, 0).empty());
  EXPECT_EQ(again.Effective(Site::kShardLost, 2).after, 5);
}

TEST(FaultPlan, MalformedShardQualifiersThrow) {
  EXPECT_THROW(FaultPlan::Parse("shard99:shard.lost:p=1", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("shard1:bogus.site:p=1", 0), Error);
  EXPECT_THROW(FaultPlan::Parse("shard1:shard.lost", 0), Error);
  // "shardX" with a non-numeric suffix is not a qualifier, so it parses as a
  // (bogus) site name and fails there.
  EXPECT_THROW(FaultPlan::Parse("shardx:shard.lost:p=1", 0), Error);
}

TEST(FaultInjector, ShardStreamsAreIndependentAndShardlessStreamIsStable) {
  FaultPlan plan = FaultPlan::Parse("exchange.timeout:p=0.2", 77);
  FaultInjector injector(plan);
  // The shard-less stream must match a plain pre-sharding injector draw for
  // draw: Decide(site, n) == Decide(site, -1, n).
  for (int64_t n = 0; n < 256; ++n) {
    EXPECT_EQ(injector.Decide(Site::kExchangeTimeout, n),
              injector.Decide(Site::kExchangeTimeout, -1, n));
  }
  // Different shards draw from different (salted) streams.
  int differs = 0;
  for (int64_t n = 0; n < 512; ++n) {
    differs +=
        injector.Decide(Site::kExchangeTimeout, 0, n) != injector.Decide(Site::kExchangeTimeout, 1, n)
            ? 1
            : 0;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, PerShardCountersAggregateAcrossSlots) {
  FaultPlan plan = FaultPlan::Parse("shard.lost:after=0", 3);
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.ShouldFault(Site::kShardLost, 0));
  EXPECT_TRUE(injector.ShouldFault(Site::kShardLost, 1));
  EXPECT_TRUE(injector.ShouldFault(Site::kShardLost));  // shard-less slot
  EXPECT_EQ(injector.counters(Site::kShardLost, 0).probes, 1);
  EXPECT_EQ(injector.counters(Site::kShardLost, 1).probes, 1);
  EXPECT_EQ(injector.counters(Site::kShardLost, -1).probes, 1);
  // The aggregate view sums every slot (back-compat for chaos stats).
  EXPECT_EQ(injector.counters(Site::kShardLost).probes, 3);
  EXPECT_EQ(injector.counters(Site::kShardLost).injected, 3);
}

TEST(ShardScopeTest, NestsAndRestores) {
  EXPECT_EQ(CurrentShard(), -1);
  {
    ShardScope outer(2);
    EXPECT_EQ(CurrentShard(), 2);
    {
      ShardScope inner(0);
      EXPECT_EQ(CurrentShard(), 0);
    }
    EXPECT_EQ(CurrentShard(), 2);
  }
  EXPECT_EQ(CurrentShard(), -1);
}

// --------------------------------------------------------- injector draws

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  FaultPlan plan = FaultPlan::Parse("kernel.transient:p=0.1;alloc.oom:p=0.01", 1234);
  FaultInjector a(plan);
  FaultInjector b(plan);
  int fired = 0;
  for (int64_t n = 0; n < 2000; ++n) {
    ASSERT_EQ(a.Decide(Site::kKernelTransient, n), b.Decide(Site::kKernelTransient, n));
    ASSERT_EQ(a.Decide(Site::kAllocOom, n), b.Decide(Site::kAllocOom, n));
    fired += a.Decide(Site::kKernelTransient, n) ? 1 : 0;
  }
  // p=0.1 over 2000 draws: the empirical rate should be in the right
  // ballpark (binomial, sigma ~ 13).
  EXPECT_GT(fired, 120);
  EXPECT_LT(fired, 300);

  // A different seed produces a different sequence.
  plan.seed = 99;
  FaultInjector c(plan);
  int differs = 0;
  for (int64_t n = 0; n < 2000; ++n) {
    differs += a.Decide(Site::kKernelTransient, n) != c.Decide(Site::kKernelTransient, n) ? 1 : 0;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, OccurrenceListFiresExactly) {
  FaultPlan plan = FaultPlan::Parse("alloc.oom:occ=2,5", 7);
  FaultInjector injector(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(injector.ShouldFault(Site::kAllocOom));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true, false, false}));
  EXPECT_EQ(injector.counters(Site::kAllocOom).probes, 8);
  EXPECT_EQ(injector.counters(Site::kAllocOom).injected, 2);
  // Untouched sites never advanced.
  EXPECT_EQ(injector.counters(Site::kKernelTransient).probes, 0);
}

TEST(FaultScope, InstallsAndRestoresNested) {
  EXPECT_EQ(ActiveInjector(), nullptr);
  {
    FaultScope outer(FaultPlan::Parse("alloc.oom:p=0.5", 1));
    EXPECT_EQ(ActiveInjector(), &outer.injector());
    {
      FaultScope inner(FaultPlan::Parse("kernel.transient:p=0.5", 2));
      EXPECT_EQ(ActiveInjector(), &inner.injector());
    }
    EXPECT_EQ(ActiveInjector(), &outer.injector());
  }
  EXPECT_EQ(ActiveInjector(), nullptr);
}

// ----------------------------------------------------------- error taxonomy

TEST(Status, ClassifyMapsTypedErrors) {
  EXPECT_EQ(Classify(TransientError("t")), ErrorCode::kTransient);
  EXPECT_EQ(Classify(ResourceExhaustedError("re")), ErrorCode::kResourceExhausted);
  EXPECT_EQ(Classify(InvalidRequestError("inv")), ErrorCode::kInvalidRequest);
  EXPECT_EQ(Classify(Error("plain")), ErrorCode::kInternal);
  EXPECT_EQ(Classify(std::runtime_error("other")), ErrorCode::kInternal);
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kTransient), "transient");
  // Cross-shard exchange timeouts are transient (they route through the
  // serving retry ladder); a shard with no live replica is kUnavailable.
  EXPECT_EQ(Classify(ExchangeTimeoutError("et")), ErrorCode::kTransient);
  EXPECT_EQ(Classify(ShardUnavailableError("su")), ErrorCode::kUnavailable);
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnavailable), "unavailable");
}

// ------------------------------------------------- allocator OOM ladder

TEST(AllocatorLadder, InjectedOomFlushesCacheAndRecovers) {
  CachingAllocator alloc(int64_t{1} << 20);
  // Populate the free-list cache so the flush rung has something to do.
  void* warm = alloc.Allocate(4096);
  alloc.Free(warm);
  ASSERT_GT(alloc.stats().bytes_cached, 0);

  FaultScope scope(FaultPlan::Parse("alloc.oom:occ=0", 5));
  void* p = alloc.Allocate(4096);  // first attempt injected to fail
  ASSERT_NE(p, nullptr);
  const device::AllocatorStats stats = alloc.stats();
  EXPECT_EQ(stats.oom_cache_flushes, 1);
  EXPECT_EQ(stats.oom_recoveries, 1);
  EXPECT_EQ(stats.oom_failures, 0);
  EXPECT_EQ(stats.bytes_cached, 0);  // flush emptied the pool
  alloc.Free(p);
  EXPECT_EQ(alloc.stats().bytes_in_use, 0);
}

TEST(AllocatorLadder, PressureHandlerFreesAndAllocationRecovers) {
  CachingAllocator alloc(1 << 16);
  // A "long-lived cache" holding most of the capacity, released on demand
  // by its pressure handler.
  std::atomic<void*> hoard{alloc.Allocate(48 * 1024)};
  const int64_t id = alloc.RegisterPressureHandler([&](int64_t) -> int64_t {
    void* p = hoard.exchange(nullptr);
    if (p == nullptr) {
      return 0;
    }
    alloc.Free(p);
    return 48 * 1024;
  });

  void* big = alloc.Allocate(32 * 1024);  // only fits after the hoard frees
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(hoard.load(), nullptr);
  const device::AllocatorStats stats = alloc.stats();
  EXPECT_GE(stats.oom_pressure_rounds, 1);
  EXPECT_EQ(stats.oom_recoveries, 1);
  alloc.Free(big);
  alloc.UnregisterPressureHandler(id);
  EXPECT_EQ(alloc.stats().bytes_in_use, 0);
}

TEST(AllocatorLadder, ExhaustionThrowsTypedErrorAfterLadder) {
  CachingAllocator alloc(1 << 16);
  try {
    alloc.Allocate(1 << 20);
    FAIL() << "allocation over capacity must throw";
  } catch (const ResourceExhaustedError& e) {
    EXPECT_EQ(Classify(e), ErrorCode::kResourceExhausted);
  }
  const device::AllocatorStats stats = alloc.stats();
  EXPECT_EQ(stats.oom_failures, 1);
  EXPECT_EQ(stats.oom_recoveries, 0);
  EXPECT_EQ(stats.bytes_in_use, 0);  // failed allocation charged nothing
}

// Concurrent AdjustReserved traffic (plan cache attribution) must not race
// with OOM-ladder pressure rounds that also adjust reserved bytes. Run under
// TSan via tools/check.sh chaos.
TEST(AllocatorLadder, AdjustReservedConcurrentWithPressureRounds) {
  CachingAllocator alloc(1 << 20);
  std::atomic<int64_t> stash_bytes{0};
  const int64_t id = alloc.RegisterPressureHandler([&](int64_t) -> int64_t {
    // Mimic the plan cache: release attribution under pressure.
    const int64_t credit = stash_bytes.exchange(0);
    if (credit > 0) {
      alloc.AdjustReserved(-credit);
    }
    return 0;
  });

  FaultScope scope(FaultPlan::Parse("alloc.oom:p=0.2", 77));
  std::atomic<bool> stop{false};
  std::thread reserver([&] {
    while (!stop.load()) {
      alloc.AdjustReserved(512);
      stash_bytes.fetch_add(512);
      // Occasionally take the attribution back ourselves if the handler
      // has not consumed it.
      const int64_t credit = stash_bytes.exchange(0);
      if (credit > 0) {
        alloc.AdjustReserved(-credit);
      }
    }
  });
  std::thread allocator_thread([&] {
    for (int i = 0; i < 3000; ++i) {
      void* p = alloc.Allocate(1024);
      alloc.Free(p);
    }
    stop.store(true);
  });
  allocator_thread.join();
  reserver.join();
  const int64_t credit = stash_bytes.exchange(0);
  if (credit > 0) {
    alloc.AdjustReserved(-credit);
  }
  alloc.UnregisterPressureHandler(id);

  const device::AllocatorStats stats = alloc.stats();
  EXPECT_EQ(stats.bytes_in_use, 0);
  EXPECT_EQ(stats.bytes_reserved, 0);  // every charge matched a release
}

// ------------------------------------------------- kernel fault injection

TEST(KernelFault, TransientThrowsFromLaunchSite) {
  Stream stream(device::V100Sim());
  FaultScope scope(FaultPlan::Parse("kernel.transient:occ=0", 3));
  try {
    KernelScope k(stream);
    FAIL() << "first launch must throw the injected fault";
  } catch (const TransientError& e) {
    EXPECT_EQ(Classify(e), ErrorCode::kTransient);
  }
  // The next launch proceeds normally.
  KernelScope k(stream);
  k.Finish({.parallel_items = 8, .hbm_bytes = 64});
  EXPECT_EQ(stream.counters().kernels_launched, 1);
}

TEST(KernelFault, StuckInflationTripsWatchdog) {
  Stream stream(device::V100Sim());
  ASSERT_GT(stream.profile().watchdog_multiple, 0.0);
  {
    FaultScope scope(FaultPlan::Parse("kernel.stuck:occ=0", 3));
    KernelScope k(stream);
    k.Finish({.parallel_items = 1000, .hbm_bytes = 4096});
  }
  EXPECT_EQ(stream.counters().stuck_kernels, 1);
  EXPECT_EQ(stream.TakeStuckKernels(), 1);
  EXPECT_EQ(stream.TakeStuckKernels(), 0);  // drained

  // Clean kernels never trip it.
  KernelScope k(stream);
  k.Finish({.parallel_items = 1000, .hbm_bytes = 4096});
  EXPECT_EQ(stream.counters().stuck_kernels, 1);
  EXPECT_EQ(stream.TakeStuckKernels(), 0);
}

TEST(KernelFault, ExecutorCancelsBatchOnStuckKernel) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = testing::SmallRmat(200, 2000, 13);
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {4, 3}});
  core::SamplerOptions options;
  options.super_batch = 1;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), options);
  tensor::IdArray seeds = tensor::IdArray::FromVector({1, 2, 3, 4});
  (void)sampler.Sample(seeds);  // calibrate fault-free

  FaultScope scope(FaultPlan::Parse("kernel.stuck:occ=0", 11));
  try {
    (void)sampler.Sample(seeds);
    FAIL() << "stuck kernel must cancel the batch";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos) << e.what();
  }
  // The stuck flag was drained with the failed batch; the next one is clean.
  std::vector<core::Value> ok = sampler.Sample(seeds);
  EXPECT_FALSE(ok.empty());
}

// ----------------------------------------------------- UVA transfer faults

TEST(TransferFault, UvaAccessThrowsAndRecovers) {
  feature::HotSetCache cache(128);
  FaultScope scope(FaultPlan::Parse("transfer.error:occ=1", 9));
  EXPECT_EQ(cache.Access(5, 100), 100);  // probe 0: clean miss
  EXPECT_THROW(cache.Access(5, 100), TransientError);
  EXPECT_EQ(cache.Access(5, 100), 0);  // probe 2: clean hit
}

TEST(TransferFault, ShrinkHalvesLiveSlotsDownToFloor) {
  feature::HotSetCache cache(512);
  EXPECT_EQ(cache.num_slots(), 512);
  cache.Shrink();
  EXPECT_EQ(cache.num_slots(), 256);
  for (int i = 0; i < 10; ++i) {
    cache.Shrink();
  }
  EXPECT_EQ(cache.num_slots(), 64);  // floor
  // Still functional after shrinking.
  EXPECT_EQ(cache.Access(3, 10), 10);
  EXPECT_EQ(cache.Access(3, 10), 0);
}

// ------------------------------------------ plan cache pressure handler

std::shared_ptr<core::SamplerSession> BuildResidentPlan(const graph::Graph& g,
                                                        int64_t layer_width) {
  algorithms::AlgorithmProgram ap =
      algorithms::FastGcn(g, {.num_layers = 2, .layer_width = layer_width});
  core::SamplerOptions options;
  options.super_batch = 1;
  // Layout selection is timing-measured; pin it off so the compiled plan
  // (and its resident footprint) is identical run to run.
  options.enable_layout_selection = false;
  auto plan = std::make_shared<core::CompiledPlan>(std::move(ap.program), options);
  auto session = std::make_shared<core::SamplerSession>(std::move(plan), g,
                                                        std::move(ap.tensors));
  session->Warmup(tensor::IdArray::FromVector({0, 1, 2, 3}));
  return session;
}

TEST(PlanCachePressure, OomLadderEvictsResidentPlans) {
  DeviceProfile profile = device::V100Sim();
  profile.memory_capacity_bytes = int64_t{32} * 1024 * 1024;
  device::Device dev(profile);
  device::DeviceGuard guard(dev);

  graph::Graph g = testing::SmallRmat(2000, 20000, 17);
  serving::PlanCache cache(int64_t{16} * 1024 * 1024, &dev.allocator());
  serving::PlanKey key{"FastGCN", "rmat", "sim", "w32", {}};
  cache.GetOrBuild(key, [&] { return BuildResidentPlan(g, 32); });
  const int64_t resident = cache.stats().resident_bytes;
  ASSERT_GT(resident, 1024) << "FastGCN plans must pin precomputed tensors";
  EXPECT_EQ(dev.allocator().stats().bytes_reserved, resident);

  // The allocator rounds large requests to power-of-two classes, so drive
  // bytes_in_use just past the halfway mark with exactly-sized 512 B ballast
  // chunks: a 16 MiB request then fails the capacity check by less than the
  // plan's resident footprint, and only the pressure rung can satisfy it.
  const int64_t half = profile.memory_capacity_bytes / 2;
  std::vector<device::Array<char>> ballast;
  while (dev.allocator().stats().bytes_in_use + 512 <= half + resident / 2) {
    ballast.push_back(device::Array<char>::Empty(512));
  }
  ASSERT_GT(dev.allocator().stats().bytes_in_use, half) << "16 MiB must not fit up front";
  device::Array<char> big = device::Array<char>::Empty(half);
  (void)big;

  const serving::PlanCacheStats stats = cache.stats();
  EXPECT_GE(stats.pressure_releases, 1);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.resident_bytes, 0);
  EXPECT_EQ(dev.allocator().stats().bytes_reserved, 0);
  EXPECT_GE(dev.allocator().stats().oom_recoveries, 1);
}

// One pressure round walks every registered cache in registration order —
// plan cache first, feature cache second here — and the outcome is
// deterministic: the plan cache drops its resident plans, the feature cache
// drops backing pages down to its one-page floor, every released byte
// disappears from the allocator's reserved attribution, and a re-run of the
// identical scenario releases exactly the same byte counts.
TEST(CrossCachePressure, OomLadderWalksPlanAndFeatureCachesDeterministically) {
  auto scenario = []() -> std::pair<int64_t, int64_t> {
    DeviceProfile profile = device::V100Sim();
    profile.memory_capacity_bytes = int64_t{32} * 1024 * 1024;
    device::Device dev(profile);
    device::DeviceGuard guard(dev);
    graph::Graph g = gs::testing::SmallRmat(2000, 20000, 17);

    serving::PlanCache plans(int64_t{16} * 1024 * 1024, &dev.allocator());
    plans.GetOrBuild(serving::PlanKey{"FastGCN", "rmat", "sim", "w32", {}},
                     [&] { return BuildResidentPlan(g, 32); });
    const int64_t plan_resident = plans.stats().resident_bytes;
    EXPECT_GT(plan_resident, 1024);

    feature::HotSetCache features(feature::HotSetCacheOptions{
        .capacity = 8192,
        .admission = feature::Admission::kFrequencyEma,
        .entry_bytes = 256,
        .register_pressure_handler = true});
    const int64_t feature_backing = features.stats().backing_bytes;
    EXPECT_GT(feature_backing, 0);
    EXPECT_EQ(dev.allocator().stats().bytes_reserved, plan_resident + feature_backing);

    // Same sizing trick as OomLadderEvictsResidentPlans: exactly-sized
    // ballast past the halfway mark, so a 16 MiB request fails the capacity
    // check by less than what the registered caches can give back.
    const int64_t half = profile.memory_capacity_bytes / 2;
    std::vector<device::Array<char>> ballast;
    while (dev.allocator().stats().bytes_in_use + 512 <= half + plan_resident / 2) {
      ballast.push_back(device::Array<char>::Empty(512));
    }
    device::Array<char> big = device::Array<char>::Empty(half);
    (void)big;

    // Both handlers ran in the single pressure round; the plan cache
    // emptied, the feature cache kept exactly its one-page floor.
    const serving::PlanCacheStats plan_stats = plans.stats();
    EXPECT_EQ(plan_stats.pressure_releases, 1);
    EXPECT_EQ(plan_stats.entries, 0);
    EXPECT_EQ(plan_stats.resident_bytes, 0);
    const feature::HotSetCacheStats feature_stats = features.stats();
    EXPECT_EQ(feature_stats.pressure_releases, 1);
    EXPECT_GT(feature_stats.backing_bytes, 0);
    EXPECT_LT(feature_stats.backing_bytes, feature_backing);
    EXPECT_LT(feature_stats.capacity, 8192);
    EXPECT_EQ(dev.allocator().stats().bytes_reserved, feature_stats.backing_bytes);
    EXPECT_GE(dev.allocator().stats().oom_recoveries, 1);
    return {plan_resident, feature_backing - feature_stats.backing_bytes};
  };

  const std::pair<int64_t, int64_t> first = scenario();
  const std::pair<int64_t, int64_t> second = scenario();
  EXPECT_GT(first.second, 0);
  EXPECT_EQ(first, second) << "pressure releases must be byte-for-byte reproducible";
}

TEST(PlanCacheBudget, EvictsLruUnderByteBudget) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = testing::SmallRmat(400, 4000, 17);

  // Budget sized to hold exactly one FastGCN plan: inserting a second must
  // evict the least-recently-used one and release its attribution.
  auto probe = BuildResidentPlan(g, 32);
  const int64_t one_plan = probe->ResidentBytes();
  ASSERT_GT(one_plan, 0);
  probe.reset();

  serving::PlanCache cache(one_plan + one_plan / 2, &dev.allocator());
  const int64_t reserved_before = dev.allocator().stats().bytes_reserved;
  serving::PlanKey a{"FastGCN", "rmat", "sim", "w32", {}};
  serving::PlanKey b{"FastGCN", "rmat", "sim", "w48", {}};
  cache.GetOrBuild(a, [&] { return BuildResidentPlan(g, 32); });
  cache.GetOrBuild(b, [&] { return BuildResidentPlan(g, 48); });

  const serving::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(stats.resident_bytes, one_plan + one_plan / 2);
  EXPECT_EQ(dev.allocator().stats().bytes_reserved, reserved_before + stats.resident_bytes);

  // The survivor is the most recently used plan (b).
  bool hit = false;
  cache.GetOrBuild(b, [&]() -> std::shared_ptr<core::SamplerSession> {
    ADD_FAILURE() << "b must still be resident";
    return BuildResidentPlan(g, 48);
  }, &hit);
  EXPECT_TRUE(hit);
}

// ------------------------------------- BatchProducer checkpoint / resume

std::vector<std::vector<core::Value>> DrainProducer(core::BatchProducer& producer) {
  std::vector<std::vector<core::Value>> out;
  core::EpochBatch batch;
  while (producer.Next(&batch)) {
    out.push_back(std::move(batch.outputs));
  }
  return out;
}

void ExpectValuesEqual(const std::vector<core::Value>& a, const std::vector<core::Value>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind);
    switch (a[i].kind) {
      case core::ValueKind::kIds:
        EXPECT_EQ(a[i].ids.ToVector(), b[i].ids.ToVector());
        break;
      case core::ValueKind::kMatrix:
        EXPECT_EQ(testing::EdgeSet(a[i].matrix), testing::EdgeSet(b[i].matrix));
        break;
      case core::ValueKind::kTensor:
        ASSERT_EQ(a[i].tensor.shape(), b[i].tensor.shape());
        EXPECT_EQ(a[i].tensor.array().ToVector(), b[i].tensor.array().ToVector());
        break;
    }
  }
}

TEST(BatchProducerCheckpoint, ResumeYieldsBitIdenticalRemainder) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = testing::SmallRmat(300, 3000, 21);
  algorithms::AlgorithmProgram ap = algorithms::GraphSage(g, {.fanouts = {4, 3}});
  core::SamplerOptions options;
  options.seed = 7;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors),
                                options);

  // Reference: one uninterrupted epoch. The Save() taken before any Next()
  // pins this epoch's RNG-stream base — the shared sampler's batch counter
  // advances across epochs, so later producers replay the reference epoch by
  // resuming from this checkpoint rather than starting fresh.
  core::BatchProducer::Checkpoint epoch_start;
  std::vector<std::vector<core::Value>> reference;
  {
    core::BatchProducer producer(sampler, g.train_ids(), 32);
    epoch_start = producer.Save();
    reference = DrainProducer(producer);
  }
  ASSERT_GE(reference.size(), 4u);

  // Interrupted epoch: deliver `cut` batches, checkpoint, resume in a fresh
  // producer, drain the rest. Concatenation must be bit-identical.
  for (int64_t cut : {int64_t{1}, int64_t{3}}) {
    core::BatchProducer first(sampler, g.train_ids(), 32);
    first.Resume(epoch_start);  // replay the reference epoch's stream
    std::vector<std::vector<core::Value>> head;
    core::EpochBatch batch;
    for (int64_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(first.Next(&batch));
      head.push_back(std::move(batch.outputs));
    }
    const core::BatchProducer::Checkpoint cp = first.Save();
    EXPECT_EQ(cp.delivered, cut);
    EXPECT_EQ(cp.counter_base, epoch_start.counter_base);

    core::BatchProducer resumed(sampler, g.train_ids(), 32);
    resumed.Resume(cp);
    std::vector<std::vector<core::Value>> tail = DrainProducer(resumed);

    ASSERT_EQ(head.size() + tail.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      const std::vector<core::Value>& got = i < head.size() ? head[i] : tail[i - head.size()];
      ExpectValuesEqual(got, reference[i]);
    }
  }
}

// ----------------------------------------- trainer interrupt + resume

TEST(TrainerCheckpoint, KilledEpochResumesBitIdentical) {
  device::Device dev(device::V100Sim());
  device::DeviceGuard guard(dev);
  graph::Graph g = testing::SmallRmat(300, 3000, 23);
  // Attach features/labels so the trainer can run.
  {
    Rng frng(5);
    g.SetFeatures(tensor::Tensor::Randn({g.num_nodes(), 16}, frng));
    std::vector<int32_t> labels(static_cast<size_t>(g.num_nodes()));
    Rng lrng(6);
    for (auto& l : labels) {
      l = static_cast<int32_t>(lrng.NextU64() % 4);
    }
    g.SetLabels(device::Array<int32_t>::FromVector(labels), 4);
  }

  // include_seeds: SageModel needs the seed in every layer-1 node list.
  algorithms::AlgorithmProgram ap =
      algorithms::GraphSage(g, {.fanouts = {4, 3}, .include_seeds = true});
  core::SamplerOptions options;
  options.super_batch = 1;
  core::CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), options);
  sampler.Warmup(tensor::IdArray::FromVector({0, 1, 2, 3}));

  // Stateless sampling function: results depend only on (seeds, rng).
  std::atomic<int64_t> sample_calls{0};
  std::atomic<int64_t> kill_at{-1};  // sample index that throws once
  gnn::SampleFn sample = [&](const tensor::IdArray& seeds, Rng& rng) {
    const int64_t call = sample_calls.fetch_add(1);
    int64_t expected = call;  // fires once, when this call is the kill index
    if (kill_at.compare_exchange_strong(expected, -1)) {
      throw TransientError("injected mid-epoch sampling fault");
    }
    return gnn::FromSamplerOutputs(sampler.SampleSeeded(seeds, rng.NextU64()), seeds);
  };

  gnn::TrainerConfig config;
  config.model = gnn::ModelKind::kSage;
  config.epochs = 3;
  config.batch_size = 64;
  config.seed = 31;

  // Reference: uninterrupted run.
  gnn::TrainOutcome reference = Train(g, sample, config);
  ASSERT_FALSE(reference.interrupted);
  ASSERT_FALSE(reference.step_loss.empty());

  // Faulted run: kill a mid-run sample call, then resume. The kill index is
  // derived from the reference run's observed call count so it always lands
  // inside the run regardless of how the train set partitions into batches.
  const int64_t total_calls = sample_calls.load();
  ASSERT_GE(total_calls, 2);
  sample_calls.store(0);
  kill_at.store(total_calls / 2);
  gnn::TrainerCheckpoint checkpoint;
  config.checkpoint = &checkpoint;
  gnn::TrainOutcome interrupted = Train(g, sample, config);
  ASSERT_TRUE(interrupted.interrupted);
  ASSERT_TRUE(checkpoint.valid);
  EXPECT_LT(checkpoint.step * checkpoint.epoch, static_cast<int64_t>(reference.step_loss.size()));

  gnn::TrainOutcome resumed = Train(g, sample, config);
  ASSERT_FALSE(resumed.interrupted);
  EXPECT_FALSE(checkpoint.valid);  // consumed

  ASSERT_EQ(resumed.step_loss.size(), reference.step_loss.size());
  for (size_t i = 0; i < reference.step_loss.size(); ++i) {
    EXPECT_EQ(resumed.step_loss[i], reference.step_loss[i]) << "step " << i;
  }
  ASSERT_EQ(resumed.epoch_accuracy.size(), reference.epoch_accuracy.size());
  for (size_t i = 0; i < reference.epoch_accuracy.size(); ++i) {
    EXPECT_EQ(resumed.epoch_accuracy[i], reference.epoch_accuracy[i]) << "epoch " << i;
  }
  EXPECT_EQ(resumed.final_accuracy, reference.final_accuracy);
}

// --------------------------------------- GS_CHECK during stack unwinding

struct CheckingGuard {
  ~CheckingGuard() noexcept(false) { GS_CHECK(false) << "guard dtor check"; }
};

TEST(CheckUnwind, FailureDuringUnwindIsSuppressedNotFatal) {
  // A GS_CHECK failure inside a destructor running as part of exception
  // unwinding must not throw a second exception (std::terminate); the
  // original exception propagates.
  try {
    CheckingGuard guard;
    throw std::runtime_error("primary failure");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "primary failure");
  } catch (...) {
    FAIL() << "the primary exception must survive the dtor's failed check";
  }
}

TEST(CheckUnwind, FailureOutsideUnwindStillThrows) {
  EXPECT_THROW({ CheckingGuard guard; }, Error);
}

}  // namespace
}  // namespace gs::fault
