// Serving soak test: sustained open-loop load against a live server with
// multiple tenants, mixed fanouts, and deadlines. Excluded from the fast
// label (`ctest -L fast`); run it directly or via the full suite. Built with
// GS_SANITIZE=thread this is the serving subsystem's TSan workout.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "graph/datasets.h"
#include "graph/graph.h"
#include "serving/loadgen.h"
#include "serving/server.h"

namespace gs::serving {
namespace {

TEST(ServingSoak, SustainedMixedLoadStaysConsistent) {
  graph::Graph g = graph::MakeDataset("PD", {.scale = 0.02});

  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.coalesce_max = 8;
  Server server(options);
  server.RegisterEndpoint(MakeEndpoint("GraphSAGE", "PD", g));
  server.Start();

  LoadGenOptions load;
  load.algorithm = "GraphSAGE";
  load.dataset = "PD";
  load.num_requests = 400;
  load.offered_rps = 2000.0;
  load.batch_size = 32;
  load.num_tenants = 4;
  load.fanouts = {10, 5};
  load.deadline = std::chrono::milliseconds(250);
  const LoadGenReport report = RunOpenLoop(server, g, load);
  server.Stop();

  // Every request got exactly one terminal response.
  EXPECT_EQ(report.ok + report.rejected + report.deadline_exceeded + report.failed,
            report.submitted);
  EXPECT_GT(report.ok, 0);
  EXPECT_EQ(report.failed, 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.received, load.num_requests);
  EXPECT_EQ(stats.completed, report.ok);
  EXPECT_EQ(stats.rejected, report.rejected);
  EXPECT_EQ(stats.deadline_exceeded, report.deadline_exceeded);
  EXPECT_EQ(stats.requests_executed, stats.completed + stats.failed);
  // Plan compiles once per distinct key (base + shed variant at most).
  EXPECT_LE(stats.plan_cache_misses, 2);
  EXPECT_GT(stats.plan_cache_hits, 0);
  // Under 2000 rps against 4 workers, coalescing must have merged something.
  EXPECT_GE(stats.CoalescingRatio(), 1.0);
  // Fairness visibility: all tenants completed work.
  EXPECT_EQ(stats.per_tenant_completed.size(), 4u);
}

}  // namespace
}  // namespace gs::serving
