// Tests for the deterministic sparse kernels: slicing, reductions,
// broadcasts, elementwise, SpMM/SDDMM, finalize ops — each validated against
// brute-force references and across all three input formats.

#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "sparse/batch.h"
#include "sparse/kernels.h"
#include "tests/testing.h"

namespace gs::sparse {
namespace {

using gs::testing::EdgeSet;
using tensor::IdArray;

// Rebuilds m with only the requested format materialized.
Matrix OnlyFormat(const Matrix& m, Format f) {
  switch (f) {
    case Format::kCsc:
      return Matrix::FromCsc(m.num_rows(), m.num_cols(), m.Csc());
    case Format::kCsr:
      return Matrix::FromCsr(m.num_rows(), m.num_cols(), m.Csr());
    case Format::kCoo:
      return Matrix::FromCoo(m.num_rows(), m.num_cols(), m.GetCoo());
  }
  return m;
}

class PerFormat : public ::testing::TestWithParam<Format> {};

TEST_P(PerFormat, SliceColumnsMatchesReference) {
  graph::Graph g = gs::testing::SmallRmat();
  Matrix m = OnlyFormat(g.adj(), GetParam());
  IdArray cols = IdArray::FromVector({3, 17, 42, 3 + 64});
  Matrix sub = SliceColumns(m, cols);
  EXPECT_EQ(sub.num_rows(), m.num_rows());
  EXPECT_EQ(sub.num_cols(), 4);

  // Reference: filter the full edge set by destination.
  std::map<std::pair<int32_t, int32_t>, float> expected;
  for (const auto& [edge, w] : EdgeSet(g.adj())) {
    for (int64_t i = 0; i < cols.size(); ++i) {
      if (edge.second == cols[i]) {
        expected[edge] = w;
      }
    }
  }
  EXPECT_EQ(EdgeSet(sub), expected);
}

TEST_P(PerFormat, SumAxisMatchesBruteForce) {
  graph::Graph g = gs::testing::SmallRmat();
  Matrix m = OnlyFormat(g.adj(), GetParam());
  ValueArray by_row = SumAxis(m, 0);
  ValueArray by_col = SumAxis(m, 1);
  std::vector<double> ref_row(static_cast<size_t>(m.num_rows()), 0.0);
  std::vector<double> ref_col(static_cast<size_t>(m.num_cols()), 0.0);
  for (const auto& [edge, w] : EdgeSet(g.adj())) {
    ref_row[static_cast<size_t>(edge.first)] += w;
    ref_col[static_cast<size_t>(edge.second)] += w;
  }
  for (int64_t i = 0; i < m.num_rows(); ++i) {
    EXPECT_NEAR(by_row[i], ref_row[static_cast<size_t>(i)], 1e-3);
  }
  for (int64_t i = 0; i < m.num_cols(); ++i) {
    EXPECT_NEAR(by_col[i], ref_col[static_cast<size_t>(i)], 1e-3);
  }
}

TEST_P(PerFormat, CollectiveSampleFiltersSelectedRows) {
  graph::Graph g = gs::testing::SmallRmat();
  Matrix m = OnlyFormat(g.adj(), GetParam());
  ValueArray probs = SumAxis(m, 0);
  Rng rng(71);
  Matrix sample = CollectiveSample(m, 40, probs, rng);
  EXPECT_EQ(sample.num_rows(), 40);
  EXPECT_TRUE(sample.rows_compact());
  // Every edge of a selected row to any column must be preserved.
  const auto full = EdgeSet(g.adj());
  const auto sampled = EdgeSet(sample);
  std::set<int32_t> selected;
  for (int64_t i = 0; i < sample.row_ids().size(); ++i) {
    selected.insert(sample.row_ids()[i]);
  }
  EXPECT_EQ(selected.size(), 40u);
  int64_t expected_edges = 0;
  for (const auto& [edge, w] : full) {
    if (selected.count(edge.first) != 0) {
      ++expected_edges;
      auto it = sampled.find(edge);
      ASSERT_NE(it, sampled.end());
      EXPECT_FLOAT_EQ(it->second, w);
    }
  }
  EXPECT_EQ(static_cast<int64_t>(sampled.size()), expected_edges);
}

INSTANTIATE_TEST_SUITE_P(Formats, PerFormat,
                         ::testing::Values(Format::kCsc, Format::kCoo, Format::kCsr));

TEST(SliceRows, MatchesReference) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray rows = IdArray::FromVector({5, 9, 100});
  Matrix sub = SliceRows(g.adj(), rows);
  EXPECT_EQ(sub.num_rows(), 3);
  EXPECT_TRUE(sub.rows_compact());
  std::map<std::pair<int32_t, int32_t>, float> expected;
  for (const auto& [edge, w] : EdgeSet(g.adj())) {
    for (int64_t i = 0; i < rows.size(); ++i) {
      if (edge.first == rows[i]) {
        expected[edge] = w;
      }
    }
  }
  EXPECT_EQ(EdgeSet(sub), expected);
}

TEST(SliceColumns, UnknownColumnThrows) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({static_cast<int32_t>(g.num_nodes())});
  EXPECT_THROW(SliceColumns(g.adj(), cols), Error);
}

TEST(SliceColumns, OnSubMatrixResolvesGlobalIds) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({10, 20, 30});
  Matrix sub = SliceColumns(g.adj(), cols);
  IdArray narrower = IdArray::FromVector({20});
  Matrix sub2 = SliceColumns(sub, narrower);
  EXPECT_EQ(sub2.num_cols(), 1);
  for (const auto& [edge, w] : EdgeSet(sub2)) {
    EXPECT_EQ(edge.second, 20);
    (void)w;
  }
}

TEST(Broadcast, RowAndColAxes) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  ValueArray row_vec = ValueArray::Empty(m.num_rows());
  for (int64_t i = 0; i < m.num_rows(); ++i) {
    row_vec[i] = static_cast<float>(i + 1);
  }
  Matrix by_row = Broadcast(m, BinaryOp::kMul, row_vec, 0);
  for (const auto& [edge, w] : EdgeSet(by_row)) {
    const float base = EdgeSet(m).at(edge);
    EXPECT_FLOAT_EQ(w, base * static_cast<float>(edge.first + 1));
  }
  ValueArray col_vec = ValueArray::Full(m.num_cols(), 2.0f);
  Matrix by_col = Broadcast(m, BinaryOp::kAdd, col_vec, 1);
  for (const auto& [edge, w] : EdgeSet(by_col)) {
    EXPECT_FLOAT_EQ(w, EdgeSet(m).at(edge) + 2.0f);
  }
}

TEST(Broadcast, GlobalRowOperandThroughRowIds) {
  graph::Graph g = gs::testing::SmallRmat();
  // A compacted slice: rows no longer span the graph.
  IdArray cols = IdArray::FromVector({1, 2, 3, 4, 5});
  Matrix sub = CompactRows(SliceColumns(g.adj(), cols));
  ASSERT_LT(sub.num_rows(), g.num_nodes());
  ValueArray global = ValueArray::Empty(g.num_nodes());
  for (int64_t i = 0; i < global.size(); ++i) {
    global[i] = static_cast<float>(i);
  }
  Matrix scaled = Broadcast(sub, BinaryOp::kMul, global, 0);
  for (const auto& [edge, w] : EdgeSet(scaled)) {
    EXPECT_FLOAT_EQ(w, EdgeSet(sub).at(edge) * static_cast<float>(edge.first));
  }
}

TEST(Broadcast, WrongLengthThrows) {
  graph::Graph g = gs::testing::SmallRmat();
  ValueArray bad = ValueArray::Full(13, 1.0f);
  EXPECT_THROW(Broadcast(g.adj(), BinaryOp::kMul, bad, 0), Error);
}

TEST(EltwiseScalar, PowSquaresWeights) {
  graph::Graph g = gs::testing::ToyGraph();
  Matrix sq = EltwiseScalar(g.adj(), BinaryOp::kPow, 2.0f);
  for (const auto& [edge, w] : EdgeSet(sq)) {
    const float base = EdgeSet(g.adj()).at(edge);
    EXPECT_NEAR(w, base * base, 1e-5);
  }
}

TEST(EltwiseBinary, RequiresSharedPattern) {
  graph::Graph g = gs::testing::ToyGraph();
  Matrix sq = EltwiseScalar(g.adj(), BinaryOp::kPow, 2.0f);
  Matrix prod = EltwiseBinary(g.adj(), BinaryOp::kMul, sq);
  for (const auto& [edge, w] : EdgeSet(prod)) {
    const float base = EdgeSet(g.adj()).at(edge);
    EXPECT_NEAR(w, base * base * base, 1e-5);
  }
  graph::Graph other = gs::testing::SmallRmat();
  EXPECT_THROW(EltwiseBinary(g.adj(), BinaryOp::kMul, other.adj()), Error);
}

TEST(SpMM, MatchesDenseReference) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Rng rng(77);
  tensor::Tensor d = tensor::Tensor::Randn({m.num_cols(), 3}, rng);
  tensor::Tensor out = SpMM(m, d);
  ASSERT_EQ(out.rows(), m.num_rows());
  std::vector<float> ref(static_cast<size_t>(m.num_rows() * 3), 0.0f);
  for (const auto& [edge, w] : EdgeSet(m)) {
    for (int64_t j = 0; j < 3; ++j) {
      ref[static_cast<size_t>(edge.first * 3 + j)] += w * d.at(edge.second, j);
    }
  }
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.at(i), ref[static_cast<size_t>(i)], 1e-4);
  }
}

TEST(Sddmm, MatchesDotReference) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  Rng rng(79);
  tensor::Tensor u = tensor::Tensor::Randn({m.num_rows(), 4}, rng);
  tensor::Tensor v = tensor::Tensor::Randn({m.num_cols(), 4}, rng);
  Matrix out = Sddmm(m, u, v, /*mul_existing=*/true);
  for (const auto& [edge, w] : EdgeSet(out)) {
    float dot = 0.0f;
    for (int64_t j = 0; j < 4; ++j) {
      dot += u.at(edge.first, j) * v.at(edge.second, j);
    }
    EXPECT_NEAR(w, EdgeSet(m).at(edge) * dot, 1e-4);
  }
  Matrix plain = Sddmm(m, u, v, /*mul_existing=*/false);
  for (const auto& [edge, w] : EdgeSet(plain)) {
    float dot = 0.0f;
    for (int64_t j = 0; j < 4; ++j) {
      dot += u.at(edge.first, j) * v.at(edge.second, j);
    }
    EXPECT_NEAR(w, dot, 1e-4);
  }
}

TEST(DenseEltwise, MatchesPointwise) {
  graph::Graph g = gs::testing::ToyGraph();
  const Matrix& m = g.adj();
  tensor::Tensor d = tensor::Tensor::Full({m.num_rows(), m.num_cols()}, 3.0f);
  Matrix out = DenseEltwise(m, BinaryOp::kMul, d);
  for (const auto& [edge, w] : EdgeSet(out)) {
    EXPECT_NEAR(w, EdgeSet(m).at(edge) * 3.0f, 1e-5);
  }
}

TEST(RowIds, UniqueNonEmptyRows) {
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({0, 1});
  Matrix sub = SliceColumns(g.adj(), cols);
  IdArray rows = RowIds(sub);
  // in-neighbors of {a=0, b=1} = {1,2,4} u {2,3,5} = {1,2,3,4,5}
  ASSERT_EQ(rows.size(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i], static_cast<int32_t>(i + 1));
  }
}

TEST(ColIds, ReturnsGlobals) {
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({4, 0});
  Matrix sub = SliceColumns(g.adj(), cols);
  IdArray out = ColIds(sub);
  ASSERT_EQ(out.size(), 2);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 0);
}

TEST(CompactRows, DropsEmptyRowsKeepsEdges) {
  graph::Graph g = gs::testing::SmallRmat();
  IdArray cols = IdArray::FromVector({7, 8});
  Matrix sub = SliceColumns(g.adj(), cols);
  Matrix compact = CompactRows(sub);
  EXPECT_TRUE(compact.rows_compact());
  EXPECT_LT(compact.num_rows(), sub.num_rows());
  EXPECT_EQ(EdgeSet(compact), EdgeSet(sub));  // global ids identical
}

TEST(CompactRowsInWindow, MatchesCompactRowsOnBlockSlice) {
  // Build a 2-segment block-diagonal-style matrix: segment b's rows live in
  // [b*N, (b+1)*N). Windowed compaction must agree with CompactRows exactly
  // (same kept rows, same global ids, same edges) on each segment slice.
  graph::Graph g = gs::testing::SmallRmat();
  const int64_t n = g.num_nodes();
  IdArray cols = IdArray::FromVector({3, 9, 11});
  Matrix sub = SliceColumns(g.adj(), cols);
  const Compressed& csc = sub.Csc();

  Compressed super;
  const int64_t t = sub.num_cols(), nnz = sub.nnz();
  super.indptr = OffsetArray::Empty(2 * t + 1);
  super.indices = IdArray::Empty(2 * nnz);
  super.values = ValueArray::Empty(2 * nnz);
  std::vector<int32_t> col_ids(static_cast<size_t>(2 * t));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t c = 0; c < t; ++c) {
      col_ids[static_cast<size_t>(b * t + c)] = static_cast<int32_t>(b * n + cols[c]);
    }
    for (int64_t c = 0; c <= t; ++c) {
      super.indptr[b * t + c] = b * nnz + csc.indptr[c];
    }
    for (int64_t e = 0; e < nnz; ++e) {
      super.indices[b * nnz + e] = static_cast<int32_t>(b * n + csc.indices[e]);
      super.values[b * nnz + e] = csc.values.defined() ? csc.values[e] : 1.0f;
    }
  }
  Matrix labeled = Matrix::FromCsc(2 * n, 2 * t, std::move(super));
  labeled.SetColIds(IdArray::FromVector(col_ids));
  labeled.SetRowsCompact(false);

  for (int64_t b = 0; b < 2; ++b) {
    Matrix part = SliceColumnRange(labeled, b * t, (b + 1) * t);
    Matrix generic = CompactRows(part);
    Matrix windowed = CompactRowsInWindow(part, b * n, (b + 1) * n);
    EXPECT_TRUE(windowed.rows_compact());
    ASSERT_EQ(windowed.num_rows(), generic.num_rows());
    ASSERT_EQ(windowed.row_ids().size(), generic.row_ids().size());
    for (int64_t i = 0; i < windowed.row_ids().size(); ++i) {
      EXPECT_EQ(windowed.row_ids()[i], generic.row_ids()[i]);
    }
    EXPECT_EQ(EdgeSet(windowed), EdgeSet(generic));
  }
}

TEST(CompactRowsInWindow, RejectsBadWindow) {
  graph::Graph g = gs::testing::ToyGraph();
  IdArray cols = IdArray::FromVector({0, 1});
  Matrix sub = SliceColumns(g.adj(), cols);
  EXPECT_THROW(CompactRowsInWindow(sub, -1, sub.num_rows()), gs::Error);
  EXPECT_THROW(CompactRowsInWindow(sub, 0, sub.num_rows() + 1), gs::Error);
}

TEST(Unique, SortedUnionDropsNegatives) {
  IdArray a = IdArray::FromVector({5, 3, -1, 3});
  IdArray b = IdArray::FromVector({7, 5, -1});
  std::vector<IdArray> arrays = {a, b};
  IdArray u = Unique(arrays);
  ASSERT_EQ(u.size(), 3);
  EXPECT_EQ(u[0], 3);
  EXPECT_EQ(u[1], 5);
  EXPECT_EQ(u[2], 7);
}

TEST(GatherValues, GathersAndValidates) {
  ValueArray vec = ValueArray::FromVector({10.0f, 20.0f, 30.0f});
  IdArray ids = IdArray::FromVector({2, 0});
  ValueArray out = GatherValues(vec, ids);
  EXPECT_FLOAT_EQ(out[0], 30.0f);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
  IdArray bad = IdArray::FromVector({3});
  EXPECT_THROW(GatherValues(vec, bad), Error);
}

}  // namespace
}  // namespace gs::sparse
