// Shared test fixtures and reference implementations.

#ifndef GSAMPLER_TESTS_TESTING_H_
#define GSAMPLER_TESTS_TESTING_H_

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "graph/generator.h"
#include "graph/graph.h"
#include "sparse/matrix.h"

namespace gs::testing {

// A small fixed weighted graph (7 nodes, mirrors the paper's Figure 1
// layout loosely): edges are (src, dst, weight); column v of the adjacency
// matrix holds the in-edges of v.
inline graph::Graph ToyGraph() {
  std::vector<std::pair<int32_t, int32_t>> edges = {
      {1, 0}, {2, 0}, {4, 0},          // in-neighbors of a=0: b,c,e
      {2, 1}, {3, 1}, {5, 1},          // in-neighbors of b=1: c,d,f
      {5, 4}, {6, 4},                  // in-neighbors of e=4: f,g
      {0, 2}, {1, 3}, {4, 5}, {0, 6},  // some edges to make rows non-empty
  };
  std::vector<float> weights = {0.5f, 0.8f, 0.3f, 0.2f, 0.6f, 0.7f,
                                0.3f, 0.9f, 0.4f, 0.5f, 0.6f, 0.7f};
  return graph::Graph::FromEdges("toy", 7, edges, &weights);
}

// Deterministic small R-MAT graph for property tests.
inline graph::Graph SmallRmat(int64_t nodes = 300, int64_t edges = 3000, uint64_t seed = 9,
                              bool weighted = true) {
  graph::RMatParams p;
  p.name = "small";
  p.num_nodes = nodes;
  p.num_edges = edges;
  p.weighted = weighted;
  p.seed = seed;
  return graph::MakeRMatGraph(p);
}

// Edge set of a matrix in original-graph ids: (row_global, col_global) ->
// value (1.0 when unweighted).
inline std::map<std::pair<int32_t, int32_t>, float> EdgeSet(const sparse::Matrix& m) {
  std::map<std::pair<int32_t, int32_t>, float> out;
  const sparse::Coo& coo = m.GetCoo();
  for (int64_t e = 0; e < m.nnz(); ++e) {
    const int32_t r = m.GlobalRowId(coo.row[e]);
    const int32_t c = m.GlobalColId(coo.col[e]);
    out[{r, c}] = coo.values.defined() ? coo.values[e] : 1.0f;
  }
  return out;
}

// Chi-square upper-tail test helper: returns the statistic for observed
// counts vs expected probabilities over `trials` draws.
inline double ChiSquare(const std::vector<int64_t>& observed,
                        const std::vector<double>& probs, int64_t trials) {
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(trials);
    if (expected > 0) {
      const double d = static_cast<double>(observed[i]) - expected;
      stat += d * d / expected;
    }
  }
  return stat;
}

}  // namespace gs::testing

#endif  // GSAMPLER_TESTS_TESTING_H_
