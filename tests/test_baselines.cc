// Tests for the baseline-system simulators: availability matrix matches the
// paper's N/A and timeout cells, and every supported cell actually samples.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "graph/datasets.h"
#include "common/error.h"
#include "device/device.h"
#include "tests/testing.h"

namespace gs::baselines {
namespace {

using tensor::IdArray;

IdArray Frontier() { return IdArray::FromVector({1, 2, 3, 4, 5, 6, 7, 8}); }

TEST(Availability, MatchesPaperMatrix) {
  graph::Graph resident = gs::testing::SmallRmat();
  graph::RMatParams uva_params;
  uva_params.num_nodes = 200;
  uva_params.num_edges = 1500;
  uva_params.uva = true;
  graph::Graph uva = graph::MakeRMatGraph(uva_params);

  // DGL-GPU: everything except Node2Vec.
  auto dgl_gpu = MakeBaseline("DGL-GPU", resident);
  EXPECT_EQ(dgl_gpu->Check("GraphSAGE"), Availability::kSupported);
  EXPECT_EQ(dgl_gpu->Check("LADIES"), Availability::kSupported);
  EXPECT_EQ(dgl_gpu->Check("Node2Vec"), Availability::kNotImplemented);
  EXPECT_EQ(dgl_gpu->Check("FastGCN"), Availability::kNotImplemented);

  // DGL-CPU: complex algorithms time out on UVA-resident (large) graphs.
  auto dgl_cpu_small = MakeBaseline("DGL-CPU", resident);
  EXPECT_EQ(dgl_cpu_small->Check("LADIES"), Availability::kSupported);
  auto dgl_cpu_large = MakeBaseline("DGL-CPU", uva);
  EXPECT_EQ(dgl_cpu_large->Check("LADIES"), Availability::kTimeout);
  EXPECT_EQ(dgl_cpu_large->Check("PASS"), Availability::kTimeout);
  EXPECT_EQ(dgl_cpu_large->Check("ShaDow"), Availability::kSupported);

  // PyG-GPU: DeepWalk only, no UVA.
  auto pyg_gpu = MakeBaseline("PyG-GPU", resident);
  EXPECT_EQ(pyg_gpu->Check("DeepWalk"), Availability::kSupported);
  EXPECT_EQ(pyg_gpu->Check("GraphSAGE"), Availability::kNotImplemented);
  auto pyg_gpu_uva = MakeBaseline("PyG-GPU", uva);
  EXPECT_EQ(pyg_gpu_uva->Check("DeepWalk"), Availability::kNotImplemented);

  // PyG-CPU: simple algorithms + ShaDow.
  auto pyg_cpu = MakeBaseline("PyG-CPU", resident);
  EXPECT_EQ(pyg_cpu->Check("ShaDow"), Availability::kSupported);
  EXPECT_EQ(pyg_cpu->Check("LADIES"), Availability::kNotImplemented);

  // SkyWalker: walks + GraphSAGE, UVA fine.
  auto skywalker = MakeBaseline("SkyWalker", uva);
  EXPECT_EQ(skywalker->Check("Node2Vec"), Availability::kSupported);
  EXPECT_EQ(skywalker->Check("PASS"), Availability::kNotImplemented);

  // GunRock: GraphSAGE only, no UVA.
  auto gunrock = MakeBaseline("GunRock", resident);
  EXPECT_EQ(gunrock->Check("GraphSAGE"), Availability::kSupported);
  EXPECT_EQ(gunrock->Check("DeepWalk"), Availability::kNotImplemented);
  auto gunrock_uva = MakeBaseline("GunRock", uva);
  EXPECT_EQ(gunrock_uva->Check("GraphSAGE"), Availability::kNotImplemented);

  EXPECT_THROW(MakeBaseline("Nonexistent", resident), Error);
}

TEST(Availability, CuGraphCannotLoadPP) {
  graph::Graph pp = graph::MakeDataset("PP", {.scale = 0.02});
  auto cugraph = MakeBaseline("cuGraph", pp);
  EXPECT_EQ(cugraph->Check("GraphSAGE"), Availability::kTimeout);
  graph::Graph lj = graph::MakeDataset("LJ", {.scale = 0.02});
  auto cugraph_lj = MakeBaseline("cuGraph", lj);
  EXPECT_EQ(cugraph_lj->Check("GraphSAGE"), Availability::kSupported);
}

struct Cell {
  const char* system;
  const char* algorithm;
};

class SupportedCells : public ::testing::TestWithParam<Cell> {};

TEST_P(SupportedCells, SamplesValidStructure) {
  const Cell cell = GetParam();
  graph::Graph g = gs::testing::SmallRmat(250, 2500, 44, true);
  auto baseline = MakeBaseline(cell.system, g);
  ASSERT_EQ(baseline->Check(cell.algorithm), Availability::kSupported);
  Rng rng(7);
  BaselineResult result = baseline->SampleBatch(cell.algorithm, Frontier(), rng);
  EXPECT_TRUE(!result.layers.empty() || !result.traces.empty());
  for (const sparse::Matrix& m : result.layers) {
    for (const auto& [edge, w] : gs::testing::EdgeSet(m)) {
      EXPECT_LT(edge.first, g.num_nodes());
      EXPECT_LT(edge.second, g.num_nodes());
      (void)w;
    }
  }
  for (const tensor::IdArray& t : result.traces) {
    for (int64_t i = 0; i < t.size(); ++i) {
      EXPECT_LT(t[i], g.num_nodes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SupportedCells,
    ::testing::Values(Cell{"DGL-GPU", "DeepWalk"}, Cell{"DGL-GPU", "GraphSAGE"},
                      Cell{"DGL-GPU", "LADIES"}, Cell{"DGL-GPU", "AS-GCN"},
                      Cell{"DGL-GPU", "PASS"}, Cell{"DGL-GPU", "ShaDow"},
                      Cell{"DGL-CPU", "Node2Vec"}, Cell{"DGL-CPU", "LADIES"},
                      Cell{"PyG-GPU", "DeepWalk"}, Cell{"PyG-CPU", "GraphSAGE"},
                      Cell{"PyG-CPU", "ShaDow"}, Cell{"SkyWalker", "DeepWalk"},
                      Cell{"SkyWalker", "Node2Vec"}, Cell{"SkyWalker", "GraphSAGE"},
                      Cell{"GunRock", "GraphSAGE"}, Cell{"cuGraph", "DeepWalk"},
                      Cell{"cuGraph", "GraphSAGE"}));

TEST(Profiles, CpuSystemsGetCpuProfiles) {
  const device::DeviceProfile gpu = device::V100Sim();
  EXPECT_EQ(ProfileFor("DGL-GPU", gpu).name, "V100Sim");
  EXPECT_EQ(ProfileFor("DGL-CPU", gpu).name, "DGL-CPU");
  EXPECT_GT(ProfileFor("PyG-CPU", gpu).compute_scale,
            ProfileFor("DGL-CPU", gpu).compute_scale);
}

TEST(Baselines, SageFanoutBoundsHold) {
  graph::Graph g = gs::testing::SmallRmat();
  auto dgl = MakeBaseline("DGL-GPU", g);
  Rng rng(11);
  BaselineResult r = dgl->SampleBatch("GraphSAGE", Frontier(), rng);
  ASSERT_EQ(r.layers.size(), 2u);  // default fanouts {25, 10}
  const sparse::Compressed& csc = r.layers[0].Csc();
  for (int64_t c = 0; c < r.layers[0].num_cols(); ++c) {
    EXPECT_LE(csc.indptr[c + 1] - csc.indptr[c], 25);
  }
}

TEST(Baselines, UnsupportedSampleThrows) {
  graph::Graph g = gs::testing::SmallRmat();
  auto gunrock = MakeBaseline("GunRock", g);
  Rng rng(13);
  EXPECT_THROW(gunrock->SampleBatch("LADIES", Frontier(), rng), Error);
}

TEST(Baselines, AllSystemsListed) {
  EXPECT_EQ(AllBaselineSystems().size(), 7u);
}

}  // namespace
}  // namespace gs::baselines
