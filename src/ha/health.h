// High-availability layer: per-shard health tracking for failover.
//
// Multi-device sampling (gs::shard) and sharded serving place every unit of
// work on a device hosting the target shard's segment. The HealthMonitor is
// the shared brain of that placement: signal sinks fed by the fault sites
// (shard.lost, exchange.timeout, shard.slow), the stream watchdog, and
// ordinary successes drive a per-shard state machine
//
//           transient signals              >= dead_threshold signals
//   healthy ----------------> suspect -----------------------------> dead
//      ^                         |  recover_successes successes        |
//      |                         v                                     | probe
//      |                      healthy                                  | succeeds
//      |   recover_successes successes                                 v
//      +----------------------------------------------------------- recovering
//
// device-lost jumps any state straight to dead. Dead shards are probed with
// counter-space exponential backoff (AdmitWork admits one probe attempt per
// backoff window; the window doubles on each failed probe up to
// max_probe_backoff) — backoff counts *placement attempts*, not wall-clock,
// so replays are deterministic. A successful probe moves the shard to
// recovering; recover_successes consecutive successes re-admit it as
// healthy.
//
// Determinism: every transition is a pure function of the signal sequence.
// The monitor holds one mutex for its state; given the same ordered signal
// stream it reproduces the same transition log bit-for-bit, which is what
// tests/test_ha.cc goldens pin down.

#ifndef GSAMPLER_HA_HEALTH_H_
#define GSAMPLER_HA_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "graph/partition.h"

namespace gs::ha {

enum class ShardHealth {
  kHealthy = 0,
  kSuspect,
  kDead,
  kRecovering,
};

const char* HealthName(ShardHealth state);

struct HealthOptions {
  // Gray signals (exchange timeout, slow shard, transient, stuck kernels)
  // before a healthy shard becomes suspect.
  int suspect_threshold = 1;
  // Gray signals accumulated while suspect before the shard is declared
  // dead.
  int dead_threshold = 3;
  // Initial probe backoff for dead shards, in placement attempts; doubles
  // on every failed probe.
  int64_t probe_backoff = 2;
  // Backoff ceiling, in placement attempts.
  int64_t max_probe_backoff = 64;
  // Consecutive successes a suspect or recovering shard needs to be
  // re-admitted as healthy.
  int recover_successes = 2;
};

// One edge of the state machine, recorded in order for golden tests and
// postmortems.
struct HealthTransition {
  int64_t seq = 0;
  int shard = 0;
  ShardHealth from = ShardHealth::kHealthy;
  ShardHealth to = ShardHealth::kHealthy;
  const char* cause = "";
};

struct HealthCounters {
  int64_t device_lost = 0;
  int64_t exchange_timeouts = 0;
  int64_t slow_signals = 0;
  int64_t transients = 0;
  int64_t stuck_kernels = 0;
  int64_t successes = 0;
  int64_t probes_admitted = 0;
  int64_t probes_failed = 0;
};

// Thread-safe per-shard health state machine. One instance is shared by all
// workers of a ShardGroup / sharded Server.
class HealthMonitor {
 public:
  explicit HealthMonitor(int num_shards, HealthOptions options = {});

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  int num_shards() const { return num_shards_; }
  const HealthOptions& options() const { return options_; }

  // --- Signal sinks ---------------------------------------------------
  // The device dropped off the interconnect: any state -> dead.
  void ReportDeviceLost(int shard);
  // Gray-failure signals: healthy -> suspect; suspect accumulates toward
  // dead; recovering falls back to suspect.
  void ReportExchangeTimeout(int shard);
  void ReportSlowShard(int shard);
  void ReportTransient(int shard);
  void ReportStuckKernels(int shard, int64_t count);
  // A unit of work completed on the shard: suspect/recovering count toward
  // re-admission; dead (a successful probe) -> recovering.
  void ReportSuccess(int shard);
  // A probe admitted by AdmitWork failed; doubles the backoff window.
  void ReportProbeFailure(int shard);

  // --- Placement ------------------------------------------------------
  // Whether the shard may take work right now. Healthy, suspect, and
  // recovering shards always admit; a dead shard admits exactly one probe
  // attempt per backoff window (counting calls, not time — deterministic).
  bool AdmitWork(int shard);

  // State != dead. Read-only (no probe accounting) — used for coverage.
  bool Alive(int shard) const;

  ShardHealth state(int shard) const;
  HealthCounters counters(int shard) const;
  // Full transition log, in the order the edges fired.
  std::vector<HealthTransition> transitions() const;

  std::string DebugString() const;

 private:
  struct ShardState {
    ShardHealth state = ShardHealth::kHealthy;
    int gray_signals = 0;       // accumulated while healthy/suspect
    int consecutive_ok = 0;     // toward re-admission
    int64_t probe_attempts = 0; // placement attempts since declared dead
    int64_t next_probe_at = 0;  // attempt count that admits the next probe
    int64_t backoff = 0;        // current window, in attempts
    HealthCounters counters;
  };

  // All private helpers run under mu_.
  void Transition(ShardState& s, int shard, ShardHealth to, const char* cause);
  void GraySignal(int shard, const char* cause);
  ShardState& Check(int shard);
  const ShardState& Check(int shard) const;

  const int num_shards_;
  const HealthOptions options_;
  mutable std::mutex mu_;
  std::vector<ShardState> shards_;
  std::vector<HealthTransition> log_;
  int64_t seq_ = 0;
};

// Fraction of `count` frontier seeds whose home shard still has at least
// one live replica under `monitor`. Ids fold modulo the graph's node count
// (super-batch labels); negative ids (walk dead-ends) are skipped. An
// all-skipped or empty frontier has coverage 1.0 (there is nothing to
// lose).
double CoverageFraction(const graph::Partition& partition, const HealthMonitor& monitor,
                        const int32_t* ids, int64_t count);

// The subset of `ids` whose home shard is still covered, in input order
// (negative ids dropped). Degraded serving samples exactly these.
std::vector<int32_t> CoveredIds(const graph::Partition& partition,
                                const HealthMonitor& monitor, const int32_t* ids,
                                int64_t count);

}  // namespace gs::ha

#endif  // GSAMPLER_HA_HEALTH_H_
