#include "ha/health.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace gs::ha {

const char* HealthName(ShardHealth state) {
  switch (state) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kSuspect:
      return "suspect";
    case ShardHealth::kDead:
      return "dead";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(int num_shards, HealthOptions options)
    : num_shards_(num_shards), options_(options) {
  GS_CHECK_GE(num_shards, 1) << "health monitor needs at least one shard";
  GS_CHECK_GE(options_.suspect_threshold, 1);
  GS_CHECK_GE(options_.dead_threshold, 1);
  GS_CHECK_GE(options_.probe_backoff, 1);
  GS_CHECK_GE(options_.max_probe_backoff, options_.probe_backoff);
  GS_CHECK_GE(options_.recover_successes, 1);
  shards_.resize(static_cast<size_t>(num_shards));
}

HealthMonitor::ShardState& HealthMonitor::Check(int shard) {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  return shards_[static_cast<size_t>(shard)];
}

const HealthMonitor::ShardState& HealthMonitor::Check(int shard) const {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  return shards_[static_cast<size_t>(shard)];
}

void HealthMonitor::Transition(ShardState& s, int shard, ShardHealth to,
                               const char* cause) {
  if (s.state == to) {
    return;
  }
  log_.push_back({seq_++, shard, s.state, to, cause});
  s.state = to;
  if (to == ShardHealth::kDead) {
    s.gray_signals = 0;
    s.consecutive_ok = 0;
    s.probe_attempts = 0;
    s.backoff = options_.probe_backoff;
    s.next_probe_at = s.backoff;
  } else if (to == ShardHealth::kHealthy) {
    s.gray_signals = 0;
    s.consecutive_ok = 0;
  } else if (to == ShardHealth::kSuspect) {
    s.consecutive_ok = 0;
  } else if (to == ShardHealth::kRecovering) {
    s.gray_signals = 0;
    s.consecutive_ok = 0;
  }
}

void HealthMonitor::ReportDeviceLost(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = Check(shard);
  ++s.counters.device_lost;
  if (s.state == ShardHealth::kDead) {
    // The probe found the device still gone: widen the window.
    ++s.counters.probes_failed;
    s.backoff = std::min(s.backoff * 2, options_.max_probe_backoff);
    s.next_probe_at = s.probe_attempts + s.backoff;
    return;
  }
  Transition(s, shard, ShardHealth::kDead, "device-lost");
}

void HealthMonitor::GraySignal(int shard, const char* cause) {
  // Caller holds mu_ via the public sinks below.
  ShardState& s = Check(shard);
  s.consecutive_ok = 0;
  switch (s.state) {
    case ShardHealth::kHealthy:
      if (++s.gray_signals >= options_.suspect_threshold) {
        s.gray_signals = 0;
        Transition(s, shard, ShardHealth::kSuspect, cause);
      }
      break;
    case ShardHealth::kSuspect:
      if (++s.gray_signals >= options_.dead_threshold) {
        Transition(s, shard, ShardHealth::kDead, cause);
      }
      break;
    case ShardHealth::kRecovering:
      Transition(s, shard, ShardHealth::kSuspect, cause);
      break;
    case ShardHealth::kDead:
      ++s.counters.probes_failed;
      s.backoff = std::min(s.backoff * 2, options_.max_probe_backoff);
      s.next_probe_at = s.probe_attempts + s.backoff;
      break;
  }
}

void HealthMonitor::ReportExchangeTimeout(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ++Check(shard).counters.exchange_timeouts;
  GraySignal(shard, "exchange-timeout");
}

void HealthMonitor::ReportSlowShard(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ++Check(shard).counters.slow_signals;
  GraySignal(shard, "slow-shard");
}

void HealthMonitor::ReportTransient(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ++Check(shard).counters.transients;
  GraySignal(shard, "transient");
}

void HealthMonitor::ReportStuckKernels(int shard, int64_t count) {
  if (count <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Check(shard).counters.stuck_kernels += count;
  GraySignal(shard, "stuck-kernel");
}

void HealthMonitor::ReportSuccess(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = Check(shard);
  ++s.counters.successes;
  switch (s.state) {
    case ShardHealth::kHealthy:
      break;
    case ShardHealth::kSuspect:
    case ShardHealth::kRecovering:
      if (++s.consecutive_ok >= options_.recover_successes) {
        Transition(s, shard, ShardHealth::kHealthy, "recovered");
      }
      break;
    case ShardHealth::kDead:
      // A probe made it through: the device answered, start re-admission.
      Transition(s, shard, ShardHealth::kRecovering, "probe-success");
      s.consecutive_ok = 1;
      if (options_.recover_successes <= 1) {
        Transition(s, shard, ShardHealth::kHealthy, "recovered");
      }
      break;
  }
}

void HealthMonitor::ReportProbeFailure(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = Check(shard);
  ++s.counters.probes_failed;
  if (s.state != ShardHealth::kDead) {
    return;
  }
  s.backoff = std::min(s.backoff * 2, options_.max_probe_backoff);
  s.next_probe_at = s.probe_attempts + s.backoff;
}

bool HealthMonitor::AdmitWork(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = Check(shard);
  if (s.state != ShardHealth::kDead) {
    return true;
  }
  ++s.probe_attempts;
  if (s.probe_attempts >= s.next_probe_at) {
    // Push the next window out now so concurrent callers don't all probe;
    // a success or failure report re-times it.
    s.next_probe_at = s.probe_attempts + s.backoff;
    ++s.counters.probes_admitted;
    return true;
  }
  return false;
}

bool HealthMonitor::Alive(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Check(shard).state != ShardHealth::kDead;
}

ShardHealth HealthMonitor::state(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Check(shard).state;
}

HealthCounters HealthMonitor::counters(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Check(shard).counters;
}

std::vector<HealthTransition> HealthMonitor::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

std::string HealthMonitor::DebugString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "HealthMonitor(";
  for (int i = 0; i < num_shards_; ++i) {
    const ShardState& s = shards_[static_cast<size_t>(i)];
    out << (i == 0 ? "" : ", ") << "s" << i << "=" << HealthName(s.state);
  }
  out << ", transitions=" << log_.size() << ")";
  return out.str();
}

namespace {

// Shared walk for the coverage helpers: calls fn(id) for each live-covered
// seed. Returns {covered, considered}.
template <typename Fn>
std::pair<int64_t, int64_t> WalkCovered(const graph::Partition& partition,
                                        const HealthMonitor& monitor, const int32_t* ids,
                                        int64_t count, Fn&& fn) {
  const int64_t n = partition.graph().num_nodes();
  const int num_shards = partition.num_shards();
  // Alive() takes the monitor lock per call; memoize per shard.
  std::vector<int8_t> covered_shard(static_cast<size_t>(num_shards), -1);
  int64_t covered = 0;
  int64_t considered = 0;
  for (int64_t i = 0; i < count; ++i) {
    if (ids[i] < 0) {
      continue;  // walk dead-end marker
    }
    ++considered;
    // Super-batch frontiers label node v of segment b as b*N + v.
    const int32_t node = static_cast<int32_t>(ids[i] % n);
    const int home = partition.OwnerOf(node);
    int8_t& memo = covered_shard[static_cast<size_t>(home)];
    if (memo < 0) {
      bool alive = false;
      for (int r = 0; r < partition.num_replicas() && !alive; ++r) {
        alive = monitor.Alive(partition.ReplicaDevice(home, r));
      }
      memo = alive ? 1 : 0;
    }
    if (memo == 1) {
      ++covered;
      fn(ids[i]);
    }
  }
  return {covered, considered};
}

}  // namespace

double CoverageFraction(const graph::Partition& partition, const HealthMonitor& monitor,
                        const int32_t* ids, int64_t count) {
  auto [covered, considered] =
      WalkCovered(partition, monitor, ids, count, [](int32_t) {});
  return considered == 0 ? 1.0
                         : static_cast<double>(covered) / static_cast<double>(considered);
}

std::vector<int32_t> CoveredIds(const graph::Partition& partition,
                                const HealthMonitor& monitor, const int32_t* ids,
                                int64_t count) {
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(count));
  WalkCovered(partition, monitor, ids, count, [&out](int32_t id) { out.push_back(id); });
  return out;
}

}  // namespace gs::ha
