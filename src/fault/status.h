// Error taxonomy for recoverable failures.
//
// The library's baseline failure mode is a bare gs::Error thrown by
// GS_CHECK, which callers can only treat as fatal. Recovery — retrying a
// transient kernel fault, shedding work under memory pressure, rejecting a
// malformed request without killing a serving worker — needs to know *what
// kind* of failure unwound, so the boundary layers (serving workers, the
// trainer's epoch loop) classify exceptions into a small StatusOr-style
// code set:
//
//   kTransient          retry is expected to succeed (injected kernel
//                       fault, watchdog-cancelled batch, UVA transfer
//                       error, cross-shard exchange timeout)
//   kResourceExhausted  device memory exhausted even after the allocator's
//                       recovery ladder ran; degrade (shed fanouts) or shed
//                       load
//   kUnavailable        a shard and all of its replicas are dead; retrying
//                       the same placement cannot help — serve a degraded
//                       partial response instead
//   kInvalidRequest     the input can never succeed; reject, never retry
//   kInternal           everything else (plain gs::Error, std::exception);
//                       fail the unit of work, keep the worker alive
//
// Throw sites that know their category throw the typed subclasses below;
// Classify() maps any exception back to a code at catch sites.

#ifndef GSAMPLER_FAULT_STATUS_H_
#define GSAMPLER_FAULT_STATUS_H_

#include <exception>
#include <string>

#include "common/error.h"

namespace gs::fault {

enum class ErrorCode {
  kOk = 0,
  kTransient,
  kResourceExhausted,
  kInvalidRequest,
  kInternal,
  kUnavailable,
};

const char* ErrorCodeName(ErrorCode code);

// All three derive from gs::Error so existing catch (const gs::Error&)
// sites keep working unchanged.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

class ResourceExhaustedError : public Error {
 public:
  explicit ResourceExhaustedError(const std::string& what) : Error(what) {}
};

class InvalidRequestError : public Error {
 public:
  explicit InvalidRequestError(const std::string& what) : Error(what) {}
};

// A cross-shard frontier exchange timed out (exchange.timeout fault site
// past the hedge budget). Derives TransientError so Classify routes it
// through the serving retry ladder — the next attempt re-resolves placement
// and may land on a healthy replica.
class ExchangeTimeoutError : public TransientError {
 public:
  explicit ExchangeTimeoutError(const std::string& what) : TransientError(what) {}
};

// A shard and every replica hosting it are dead. Not transient: retrying
// the same request cannot succeed until a replica recovers, so serving
// answers with a Degraded partial response instead of burning retries.
class ShardUnavailableError : public Error {
 public:
  explicit ShardUnavailableError(const std::string& what) : Error(what) {}
};

// Maps an in-flight exception to its code. Unrecognized exception types
// (including plain gs::Error) classify as kInternal.
ErrorCode Classify(const std::exception& e);

}  // namespace gs::fault

#endif  // GSAMPLER_FAULT_STATUS_H_
