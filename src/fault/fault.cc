#include "fault/fault.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/error.h"

namespace gs::fault {
namespace {

std::atomic<FaultInjector*> g_active{nullptr};

// SplitMix64 finalizer: full-avalanche mix of (seed, site, probe number)
// into a uniform 64-bit draw. This is the entire source of randomness, so
// the decision for a given triple never depends on thread interleaving.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double UniformDraw(uint64_t seed, Site site, int64_t n) {
  uint64_t h = Mix(seed ^ Mix(static_cast<uint64_t>(site) + 1));
  h = Mix(h ^ static_cast<uint64_t>(n));
  // Top 53 bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int64_t ParseInt(const std::string& text, const std::string& clause) {
  GS_CHECK(!text.empty()) << "fault plan: empty integer in clause '" << clause << "'";
  size_t pos = 0;
  int64_t value = 0;
  try {
    value = std::stoll(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GS_CHECK(pos == text.size() && value >= 0)
      << "fault plan: bad occurrence index '" << text << "' in clause '" << clause << "'";
  return value;
}

double ParseProb(const std::string& text, const std::string& clause) {
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GS_CHECK(pos == text.size() && value >= 0.0 && value <= 1.0)
      << "fault plan: probability must be in [0,1], got '" << text << "' in clause '"
      << clause << "'";
  return value;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, sep)) {
    parts.push_back(part);
  }
  return parts;
}

}  // namespace

const char* SiteName(Site site) {
  switch (site) {
    case Site::kAllocOom:
      return "alloc.oom";
    case Site::kKernelTransient:
      return "kernel.transient";
    case Site::kKernelStuck:
      return "kernel.stuck";
    case Site::kTransferError:
      return "transfer.error";
  }
  return "unknown";
}

bool ParseSite(const std::string& name, Site* site) {
  for (int i = 0; i < kNumSites; ++i) {
    if (name == SiteName(static_cast<Site>(i))) {
      *site = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

bool FaultPlan::empty() const {
  return std::all_of(sites.begin(), sites.end(),
                     [](const SiteSchedule& s) { return s.empty(); });
}

FaultPlan FaultPlan::Parse(const std::string& spec, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (const std::string& clause : Split(spec, ';')) {
    if (clause.empty()) {
      continue;
    }
    std::vector<std::string> fields = Split(clause, ':');
    Site site;
    GS_CHECK(ParseSite(fields[0], &site))
        << "fault plan: unknown site '" << fields[0]
        << "' (expected alloc.oom, kernel.transient, kernel.stuck, or transfer.error)";
    SiteSchedule& schedule = plan.site(site);
    GS_CHECK(fields.size() > 1) << "fault plan: site '" << fields[0]
                                << "' has no schedule (use p=, occ=, or mag=)";
    for (size_t i = 1; i < fields.size(); ++i) {
      const std::string& field = fields[i];
      const size_t eq = field.find('=');
      GS_CHECK(eq != std::string::npos)
          << "fault plan: expected key=value, got '" << field << "'";
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "p") {
        schedule.probability = ParseProb(value, clause);
      } else if (key == "occ") {
        for (const std::string& occ : Split(value, ',')) {
          schedule.occurrences.push_back(ParseInt(occ, clause));
        }
        std::sort(schedule.occurrences.begin(), schedule.occurrences.end());
      } else if (key == "mag") {
        size_t pos = 0;
        double magnitude = 0.0;
        try {
          magnitude = std::stod(value, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        GS_CHECK(pos == value.size() && magnitude > 0.0)
            << "fault plan: magnitude must be > 0, got '" << value << "'";
        schedule.magnitude = magnitude;
      } else {
        GS_CHECK(false) << "fault plan: unknown key '" << key
                        << "' (expected p, occ, or mag)";
      }
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (int i = 0; i < kNumSites; ++i) {
    const SiteSchedule& s = sites[static_cast<size_t>(i)];
    if (s.empty()) {
      continue;
    }
    if (!first) {
      out << ";";
    }
    first = false;
    out << SiteName(static_cast<Site>(i));
    if (s.probability > 0.0) {
      out << ":p=" << s.probability;
    }
    if (!s.occurrences.empty()) {
      out << ":occ=";
      for (size_t k = 0; k < s.occurrences.size(); ++k) {
        out << (k == 0 ? "" : ",") << s.occurrences[k];
      }
    }
    if (s.magnitude > 0.0) {
      out << ":mag=" << s.magnitude;
    }
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::Decide(Site site, int64_t n) const {
  const SiteSchedule& schedule = plan_.site(site);
  if (std::binary_search(schedule.occurrences.begin(), schedule.occurrences.end(), n)) {
    return true;
  }
  if (schedule.probability <= 0.0) {
    return false;
  }
  return UniformDraw(plan_.seed, site, n) < schedule.probability;
}

bool FaultInjector::ShouldFault(Site site) {
  const size_t idx = static_cast<size_t>(site);
  if (plan_.sites[idx].empty()) {
    return false;  // keep inactive sites free of counter traffic
  }
  const int64_t n = probes_[idx].fetch_add(1, std::memory_order_relaxed);
  if (!Decide(site, n)) {
    return false;
  }
  injected_[idx].fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::Magnitude(Site site, double default_magnitude) const {
  const double m = plan_.site(site).magnitude;
  return m > 0.0 ? m : default_magnitude;
}

SiteCounters FaultInjector::counters(Site site) const {
  const size_t idx = static_cast<size_t>(site);
  SiteCounters c;
  c.probes = probes_[idx].load(std::memory_order_relaxed);
  c.injected = injected_[idx].load(std::memory_order_relaxed);
  return c;
}

FaultInjector* ActiveInjector() { return g_active.load(std::memory_order_acquire); }

FaultScope::FaultScope(FaultPlan plan) : injector_(std::move(plan)) {
  previous_ = g_active.exchange(&injector_, std::memory_order_acq_rel);
}

FaultScope::~FaultScope() { g_active.store(previous_, std::memory_order_release); }

double StuckMultiplier() {
  FaultInjector* injector = ActiveInjector();
  if (injector == nullptr || !injector->ShouldFault(Site::kKernelStuck)) {
    return 1.0;
  }
  return injector->Magnitude(Site::kKernelStuck, kDefaultStuckMagnitude);
}

}  // namespace gs::fault
