#include "fault/fault.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/error.h"

namespace gs::fault {
namespace {

std::atomic<FaultInjector*> g_active{nullptr};

thread_local int t_current_shard = -1;

// SplitMix64 finalizer: full-avalanche mix of (seed, site, shard, probe
// number) into a uniform 64-bit draw. This is the entire source of
// randomness, so the decision for a given tuple never depends on thread
// interleaving.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double UniformDraw(uint64_t seed, Site site, int64_t n) {
  uint64_t h = Mix(seed ^ Mix(static_cast<uint64_t>(site) + 1));
  h = Mix(h ^ static_cast<uint64_t>(n));
  // Top 53 bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int64_t ParseInt(const std::string& text, const std::string& clause) {
  GS_CHECK(!text.empty()) << "fault plan: empty integer in clause '" << clause << "'";
  size_t pos = 0;
  int64_t value = 0;
  try {
    value = std::stoll(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GS_CHECK(pos == text.size() && value >= 0)
      << "fault plan: bad occurrence index '" << text << "' in clause '" << clause << "'";
  return value;
}

double ParseProb(const std::string& text, const std::string& clause) {
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GS_CHECK(pos == text.size() && value >= 0.0 && value <= 1.0)
      << "fault plan: probability must be in [0,1], got '" << text << "' in clause '"
      << clause << "'";
  return value;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, sep)) {
    parts.push_back(part);
  }
  return parts;
}

// "shardN" -> N; -1 when the token is not a shard qualifier.
int ParseShardQualifier(const std::string& token) {
  constexpr const char kPrefix[] = "shard";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (token.size() <= kPrefixLen || token.compare(0, kPrefixLen, kPrefix) != 0) {
    return -1;
  }
  int shard = 0;
  for (size_t i = kPrefixLen; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') {
      return -1;
    }
    shard = shard * 10 + (c - '0');
    if (shard > kMaxShards) {
      return -1;
    }
  }
  return shard;
}

void AppendSchedule(std::ostringstream& out, const SiteSchedule& s) {
  bool wrote_key = false;
  if (s.probability > 0.0) {
    out << ":p=" << s.probability;
    wrote_key = true;
  }
  if (!s.occurrences.empty()) {
    out << ":occ=";
    for (size_t k = 0; k < s.occurrences.size(); ++k) {
      out << (k == 0 ? "" : ",") << s.occurrences[k];
    }
    wrote_key = true;
  }
  if (s.after >= 0) {
    out << ":after=" << s.after;
    wrote_key = true;
  }
  if (s.magnitude > 0.0) {
    out << ":mag=" << s.magnitude;
    wrote_key = true;
  }
  if (!wrote_key) {
    // An all-zero shard override still means "exempt this shard"; emit an
    // explicit p=0 so the spec round-trips.
    out << ":p=0";
  }
}

bool FiresAt(const SiteSchedule& schedule, uint64_t seed, Site site, uint64_t salt,
             int64_t n) {
  if (std::binary_search(schedule.occurrences.begin(), schedule.occurrences.end(), n)) {
    return true;
  }
  if (schedule.after >= 0 && n >= schedule.after) {
    return true;
  }
  if (schedule.probability <= 0.0) {
    return false;
  }
  return UniformDraw(seed ^ salt, site, n) < schedule.probability;
}

}  // namespace

const char* SiteName(Site site) {
  switch (site) {
    case Site::kAllocOom:
      return "alloc.oom";
    case Site::kKernelTransient:
      return "kernel.transient";
    case Site::kKernelStuck:
      return "kernel.stuck";
    case Site::kTransferError:
      return "transfer.error";
    case Site::kShardLost:
      return "shard.lost";
    case Site::kExchangeTimeout:
      return "exchange.timeout";
    case Site::kShardSlow:
      return "shard.slow";
    case Site::kJitCompile:
      return "jit.compile";
  }
  return "unknown";
}

bool ParseSite(const std::string& name, Site* site) {
  for (int i = 0; i < kNumSites; ++i) {
    if (name == SiteName(static_cast<Site>(i))) {
      *site = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

SiteSchedule& FaultPlan::shard_site(Site s, int shard) {
  GS_CHECK(shard >= 0 && shard < kMaxShards)
      << "fault plan: shard qualifier out of range: " << shard;
  return shard_sites[static_cast<size_t>(s)][shard];
}

const SiteSchedule& FaultPlan::Effective(Site s, int shard) const {
  const auto& overrides = shard_sites[static_cast<size_t>(s)];
  if (shard >= 0) {
    auto it = overrides.find(shard);
    if (it != overrides.end()) {
      return it->second;
    }
  }
  return sites[static_cast<size_t>(s)];
}

bool FaultPlan::empty() const {
  const bool base_empty = std::all_of(sites.begin(), sites.end(),
                                      [](const SiteSchedule& s) { return s.empty(); });
  if (!base_empty) {
    return false;
  }
  for (const auto& overrides : shard_sites) {
    for (const auto& [shard, schedule] : overrides) {
      (void)shard;
      if (!schedule.empty()) {
        return false;
      }
    }
  }
  return true;
}

FaultPlan FaultPlan::Parse(const std::string& spec, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (const std::string& clause : Split(spec, ';')) {
    if (clause.empty()) {
      continue;
    }
    std::vector<std::string> fields = Split(clause, ':');
    size_t site_field = 0;
    int shard = ParseShardQualifier(fields[0]);
    if (shard >= 0) {
      GS_CHECK(shard < kMaxShards)
          << "fault plan: shard qualifier out of range in clause '" << clause
          << "' (max " << kMaxShards - 1 << ")";
      GS_CHECK(fields.size() > 1)
          << "fault plan: shard qualifier '" << fields[0] << "' has no site";
      site_field = 1;
    }
    Site site;
    GS_CHECK(ParseSite(fields[site_field], &site))
        << "fault plan: unknown site '" << fields[site_field]
        << "' (expected alloc.oom, kernel.transient, kernel.stuck, transfer.error, "
           "shard.lost, exchange.timeout, shard.slow, or jit.compile)";
    SiteSchedule& schedule = shard >= 0 ? plan.shard_site(site, shard) : plan.site(site);
    GS_CHECK(fields.size() > site_field + 1)
        << "fault plan: site '" << fields[site_field]
        << "' has no schedule (use p=, occ=, after=, or mag=)";
    for (size_t i = site_field + 1; i < fields.size(); ++i) {
      const std::string& field = fields[i];
      const size_t eq = field.find('=');
      GS_CHECK(eq != std::string::npos)
          << "fault plan: expected key=value, got '" << field << "'";
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "p") {
        schedule.probability = ParseProb(value, clause);
      } else if (key == "occ") {
        for (const std::string& occ : Split(value, ',')) {
          schedule.occurrences.push_back(ParseInt(occ, clause));
        }
        std::sort(schedule.occurrences.begin(), schedule.occurrences.end());
      } else if (key == "after") {
        schedule.after = ParseInt(value, clause);
      } else if (key == "mag") {
        size_t pos = 0;
        double magnitude = 0.0;
        try {
          magnitude = std::stod(value, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        GS_CHECK(pos == value.size() && magnitude > 0.0)
            << "fault plan: magnitude must be > 0, got '" << value << "'";
        schedule.magnitude = magnitude;
      } else {
        GS_CHECK(false) << "fault plan: unknown key '" << key
                        << "' (expected p, occ, after, or mag)";
      }
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (int i = 0; i < kNumSites; ++i) {
    const SiteSchedule& s = sites[static_cast<size_t>(i)];
    if (s.empty()) {
      continue;
    }
    if (!first) {
      out << ";";
    }
    first = false;
    out << SiteName(static_cast<Site>(i));
    AppendSchedule(out, s);
  }
  // Shard-qualified clauses follow the unqualified ones; std::map keeps the
  // shard order deterministic.
  for (int i = 0; i < kNumSites; ++i) {
    for (const auto& [shard, s] : shard_sites[static_cast<size_t>(i)]) {
      if (!first) {
        out << ";";
      }
      first = false;
      out << "shard" << shard << ":" << SiteName(static_cast<Site>(i));
      AppendSchedule(out, s);
    }
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

size_t FaultInjector::Slot(int shard) {
  if (shard < 0 || shard >= kMaxShards) {
    return 0;
  }
  return static_cast<size_t>(shard) + 1;
}

bool FaultInjector::Decide(Site site, int shard, int64_t n) const {
  const SiteSchedule& schedule = plan_.Effective(site, shard);
  // Shard contexts draw from shard-salted streams so two shards probing the
  // same site see independent sequences; shard-less probes keep the
  // pre-sharding stream exactly.
  const uint64_t salt = shard >= 0 ? Mix(0xC0FFEEull + static_cast<uint64_t>(shard)) : 0;
  return FiresAt(schedule, plan_.seed, site, salt, n);
}

bool FaultInjector::ShouldFault(Site site, int shard) {
  const size_t idx = static_cast<size_t>(site);
  if (plan_.Effective(site, shard).empty()) {
    return false;  // keep inactive sites free of counter traffic
  }
  const size_t slot = Slot(shard);
  const int64_t n = probes_[idx][slot].fetch_add(1, std::memory_order_relaxed);
  if (!Decide(site, shard, n)) {
    return false;
  }
  injected_[idx][slot].fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::Magnitude(Site site, int shard, double default_magnitude) const {
  const double m = plan_.Effective(site, shard).magnitude;
  return m > 0.0 ? m : default_magnitude;
}

SiteCounters FaultInjector::counters(Site site) const {
  const size_t idx = static_cast<size_t>(site);
  SiteCounters c;
  for (size_t slot = 0; slot <= static_cast<size_t>(kMaxShards); ++slot) {
    c.probes += probes_[idx][slot].load(std::memory_order_relaxed);
    c.injected += injected_[idx][slot].load(std::memory_order_relaxed);
  }
  return c;
}

SiteCounters FaultInjector::counters(Site site, int shard) const {
  const size_t idx = static_cast<size_t>(site);
  const size_t slot = Slot(shard);
  SiteCounters c;
  c.probes = probes_[idx][slot].load(std::memory_order_relaxed);
  c.injected = injected_[idx][slot].load(std::memory_order_relaxed);
  return c;
}

FaultInjector* ActiveInjector() { return g_active.load(std::memory_order_acquire); }

FaultScope::FaultScope(FaultPlan plan) : injector_(std::move(plan)) {
  previous_ = g_active.exchange(&injector_, std::memory_order_acq_rel);
}

FaultScope::~FaultScope() { g_active.store(previous_, std::memory_order_release); }

ShardScope::ShardScope(int shard) : previous_(t_current_shard) {
  GS_CHECK(shard >= 0 && shard < kMaxShards)
      << "fault: ShardScope shard out of range: " << shard;
  t_current_shard = shard;
}

ShardScope::~ShardScope() { t_current_shard = previous_; }

int CurrentShard() { return t_current_shard; }

double StuckMultiplier() {
  FaultInjector* injector = ActiveInjector();
  const int shard = CurrentShard();
  if (injector == nullptr || !injector->ShouldFault(Site::kKernelStuck, shard)) {
    return 1.0;
  }
  return injector->Magnitude(Site::kKernelStuck, shard, kDefaultStuckMagnitude);
}

double SlowShardMultiplier() {
  FaultInjector* injector = ActiveInjector();
  const int shard = CurrentShard();
  if (injector == nullptr || !injector->ShouldFault(Site::kShardSlow, shard)) {
    return 1.0;
  }
  return injector->Magnitude(Site::kShardSlow, shard, kDefaultSlowMagnitude);
}

}  // namespace gs::fault
