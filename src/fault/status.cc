#include "fault/status.h"

namespace gs::fault {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kTransient:
      return "transient";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kInvalidRequest:
      return "invalid_request";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

ErrorCode Classify(const std::exception& e) {
  // ExchangeTimeoutError derives TransientError, so this branch routes
  // exchange timeouts into the retry ladder too.
  if (dynamic_cast<const TransientError*>(&e) != nullptr) {
    return ErrorCode::kTransient;
  }
  if (dynamic_cast<const ShardUnavailableError*>(&e) != nullptr) {
    return ErrorCode::kUnavailable;
  }
  if (dynamic_cast<const ResourceExhaustedError*>(&e) != nullptr) {
    return ErrorCode::kResourceExhausted;
  }
  if (dynamic_cast<const InvalidRequestError*>(&e) != nullptr) {
    return ErrorCode::kInvalidRequest;
  }
  return ErrorCode::kInternal;
}

}  // namespace gs::fault
