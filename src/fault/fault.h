// Seeded, deterministic fault injection.
//
// Real CUDA stacks cannot test their failure paths deterministically: an
// actual OOM or a stuck kernel depends on the machine's state. The
// simulated device can. A FaultPlan names injection *sites* — fixed probe
// points compiled into the device layer — and gives each a schedule:
//
//   alloc.oom         CachingAllocator::Allocate fails as if cudaMalloc
//                     returned cudaErrorMemoryAllocation (the recovery
//                     ladder then runs before the failure surfaces)
//   kernel.transient  a kernel launch throws fault::TransientError
//   kernel.stuck      a kernel's charged virtual time is inflated by
//                     `magnitude`×, tripping the stream watchdog
//   transfer.error    a UVA gather throws fault::TransientError
//   shard.lost        a shard device drops off the interconnect; the HA
//                     layer (gs::ha) marks it dead and fails work over
//   exchange.timeout  a cross-shard frontier exchange times out; hedged
//                     re-issues absorb it until the hedge budget is spent,
//                     then fault::ExchangeTimeoutError (Transient) unwinds
//   shard.slow        a shard's exchange runs `magnitude`× slow without
//                     failing — the gray-failure signal that drives the
//                     health monitor's suspect state
//   jit.compile       a JIT region compilation fails as if the toolchain
//                     were unavailable; the region demotes to the
//                     interpreter (gs::jit's fallback ladder) and requests
//                     must keep succeeding
//
// Shard targeting: a clause may carry a `shardN:` qualifier
// (`shard3:kernel.transient:p=0.5`) restricting it to probes made while
// shard N is the thread's executing shard (fault::ShardScope, installed by
// gs::shard / sharded serving workers). A shard-qualified clause *overrides*
// the unqualified clause for that shard, so `shard2:kernel.transient:p=0`
// exempts shard 2 from a chaos run that targets everyone else. Probes on
// different shards number independently and draw from shard-salted streams,
// so per-shard fault sequences are deterministic regardless of how threads
// interleave across shards.
//
// Determinism: whether probe number n of a site fires is a pure function
// of (plan seed, site, shard, n) — an occurrence/after match or a seeded
// hash compared against the site probability. Probes are numbered by a
// per-(site, shard) atomic counter, so a single-threaded run replays the
// exact same fault sequence for the same seed; multi-threaded runs see the
// same *decision sequence* per site (thread interleaving only changes which
// thread draws which probe number).
//
// Installation is process-global via the RAII FaultScope, mirroring
// device::Device::SetCurrent: sites compile to a single relaxed atomic
// load when no scope is active, so the hooks cost nothing in production.
// Installing/removing a scope must not race with probing threads.

#ifndef GSAMPLER_FAULT_FAULT_H_
#define GSAMPLER_FAULT_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gs::fault {

enum class Site : int {
  kAllocOom = 0,
  kKernelTransient,
  kKernelStuck,
  kTransferError,
  kShardLost,
  kExchangeTimeout,
  kShardSlow,
  kJitCompile,
};
inline constexpr int kNumSites = 8;

// Upper bound on shard ids a ShardScope may install; bounds the injector's
// per-shard counter arrays.
inline constexpr int kMaxShards = 16;

const char* SiteName(Site site);
bool ParseSite(const std::string& name, Site* site);

// Default virtual-time inflation for kernel.stuck when the plan does not
// set a magnitude. Chosen to clear any profile's watchdog multiple by a
// wide margin.
inline constexpr double kDefaultStuckMagnitude = 1024.0;

// Default exchange-time inflation for shard.slow: slow enough to matter in
// the cost model, far below the watchdog's stuck threshold.
inline constexpr double kDefaultSlowMagnitude = 8.0;

// Per-site schedule. A probe fires if its number appears in `occurrences`
// (sorted, 0-based), is at or past `after` (when set), or if the seeded
// hash draw falls below `probability`.
struct SiteSchedule {
  double probability = 0.0;
  std::vector<int64_t> occurrences;
  // Every probe numbered >= after fires; -1 disables. `after=0` makes a
  // site fire permanently — how a chaos plan kills a shard for good.
  int64_t after = -1;
  // Site-specific intensity; kernel.stuck and shard.slow use it (time
  // multiplier). 0 means the site default.
  double magnitude = 0.0;

  bool empty() const {
    return probability <= 0.0 && occurrences.empty() && after < 0;
  }
};

// A full plan: seed + one schedule per site, plus optional shard-qualified
// overrides.
//
// Text form (for --fault-plan): semicolon-separated site clauses, each
// `[shardN:]site:key=value[:key=value...]` with keys `p` (probability),
// `occ` (comma-separated occurrence indices), `after` (every probe from
// this number on), and `mag` (magnitude), e.g.
//
//   "alloc.oom:p=0.001;kernel.stuck:occ=3,17:mag=64;shard1:shard.lost:after=0"
struct FaultPlan {
  uint64_t seed = 0;
  std::array<SiteSchedule, kNumSites> sites;
  // Shard-qualified overrides: presence of an entry (even an all-zero one)
  // replaces the unqualified schedule for that (site, shard).
  std::array<std::map<int, SiteSchedule>, kNumSites> shard_sites;

  SiteSchedule& site(Site s) { return sites[static_cast<size_t>(s)]; }
  const SiteSchedule& site(Site s) const { return sites[static_cast<size_t>(s)]; }
  // Creates (or returns) the shard-qualified override for (site, shard).
  SiteSchedule& shard_site(Site s, int shard);
  // The schedule a probe on `shard` consults: the shard override when one
  // exists, the unqualified schedule otherwise (shard < 0 = no context).
  const SiteSchedule& Effective(Site s, int shard) const;
  bool empty() const;

  // Throws gs::Error on malformed specs.
  static FaultPlan Parse(const std::string& spec, uint64_t seed);
  std::string ToString() const;
};

struct SiteCounters {
  int64_t probes = 0;
  int64_t injected = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Draws the next probe number for `site` on `shard` (-1 = no shard
  // context) and returns whether it fires. Thread-safe; the decision for
  // probe n is deterministic given the seed.
  bool ShouldFault(Site site, int shard = -1);

  // Pure decision function for probe `n` of (site, shard) — no counter side
  // effects; exposed so tests can assert sequence reproducibility directly.
  bool Decide(Site site, int64_t n) const { return Decide(site, -1, n); }
  bool Decide(Site site, int shard, int64_t n) const;

  // Magnitude for `site` (under `shard`'s override when present), falling
  // back to `default_magnitude` when the plan leaves it unset.
  double Magnitude(Site site, double default_magnitude) const {
    return Magnitude(site, -1, default_magnitude);
  }
  double Magnitude(Site site, int shard, double default_magnitude) const;

  // Aggregate counters over every shard context (plus shard-less probes).
  SiteCounters counters(Site site) const;
  // Counters for one shard context; shard = -1 selects shard-less probes.
  SiteCounters counters(Site site, int shard) const;
  const FaultPlan& plan() const { return plan_; }

 private:
  // Slot 0 holds shard-less probes; slot s+1 holds shard s.
  static size_t Slot(int shard);

  FaultPlan plan_;
  std::array<std::array<std::atomic<int64_t>, kMaxShards + 1>, kNumSites> probes_{};
  std::array<std::array<std::atomic<int64_t>, kMaxShards + 1>, kNumSites> injected_{};
};

// Currently installed injector, or nullptr. Owned by the active FaultScope.
FaultInjector* ActiveInjector();

// Installs `plan` for the scope's lifetime. Scopes nest (the previous
// injector is restored on destruction). Construction and destruction must
// not race with probes on other threads.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* previous_;
};

// Thread-local executing-shard context. gs::shard and sharded serving
// workers install one around each placement so shard-qualified clauses and
// the shard-level sites know which shard is probing. Scopes nest.
class ShardScope {
 public:
  explicit ShardScope(int shard);
  ~ShardScope();

  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  int previous_;
};

// The thread's executing shard, or -1 when no ShardScope is active.
int CurrentShard();

// Probe helpers for the device-layer hooks: one relaxed load and out when
// no injector is installed. The thread's ShardScope (if any) selects the
// shard-qualified schedule and counter stream.
inline bool Injected(Site site) {
  FaultInjector* injector = ActiveInjector();
  return injector != nullptr && injector->ShouldFault(site, CurrentShard());
}

// Probes kernel.stuck; returns the time-inflation multiplier (> 1) when it
// fires, 1.0 otherwise.
double StuckMultiplier();

// Probes shard.slow; returns the exchange-time inflation multiplier (> 1)
// when it fires, 1.0 otherwise.
double SlowShardMultiplier();

}  // namespace gs::fault

#endif  // GSAMPLER_FAULT_FAULT_H_
