// Seeded, deterministic fault injection.
//
// Real CUDA stacks cannot test their failure paths deterministically: an
// actual OOM or a stuck kernel depends on the machine's state. The
// simulated device can. A FaultPlan names injection *sites* — fixed probe
// points compiled into the device layer — and gives each a schedule:
//
//   alloc.oom         CachingAllocator::Allocate fails as if cudaMalloc
//                     returned cudaErrorMemoryAllocation (the recovery
//                     ladder then runs before the failure surfaces)
//   kernel.transient  a kernel launch throws fault::TransientError
//   kernel.stuck      a kernel's charged virtual time is inflated by
//                     `magnitude`×, tripping the stream watchdog
//   transfer.error    a UVA gather throws fault::TransientError
//
// Determinism: whether probe number n of a site fires is a pure function
// of (plan seed, site, n) — an occurrence list match or a seeded hash
// compared against the site probability. Probes are numbered by a per-site
// atomic counter, so a single-threaded run replays the exact same fault
// sequence for the same seed; multi-threaded runs see the same *decision
// sequence* per site (thread interleaving only changes which thread draws
// which probe number).
//
// Installation is process-global via the RAII FaultScope, mirroring
// device::Device::SetCurrent: sites compile to a single relaxed atomic
// load when no scope is active, so the hooks cost nothing in production.
// Installing/removing a scope must not race with probing threads.

#ifndef GSAMPLER_FAULT_FAULT_H_
#define GSAMPLER_FAULT_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gs::fault {

enum class Site : int {
  kAllocOom = 0,
  kKernelTransient,
  kKernelStuck,
  kTransferError,
};
inline constexpr int kNumSites = 4;

const char* SiteName(Site site);
bool ParseSite(const std::string& name, Site* site);

// Default virtual-time inflation for kernel.stuck when the plan does not
// set a magnitude. Chosen to clear any profile's watchdog multiple by a
// wide margin.
inline constexpr double kDefaultStuckMagnitude = 1024.0;

// Per-site schedule. A probe fires if its number appears in `occurrences`
// (sorted, 0-based) or if the seeded hash draw falls below `probability`.
struct SiteSchedule {
  double probability = 0.0;
  std::vector<int64_t> occurrences;
  // Site-specific intensity; only kernel.stuck uses it (time multiplier).
  // 0 means the site default.
  double magnitude = 0.0;

  bool empty() const { return probability <= 0.0 && occurrences.empty(); }
};

// A full plan: seed + one schedule per site.
//
// Text form (for --fault-plan): semicolon-separated site clauses, each
// `site:key=value[:key=value...]` with keys `p` (probability), `occ`
// (comma-separated occurrence indices), and `mag` (magnitude), e.g.
//
//   "alloc.oom:p=0.001;kernel.stuck:occ=3,17:mag=64;kernel.transient:p=0.01"
struct FaultPlan {
  uint64_t seed = 0;
  std::array<SiteSchedule, kNumSites> sites;

  SiteSchedule& site(Site s) { return sites[static_cast<size_t>(s)]; }
  const SiteSchedule& site(Site s) const { return sites[static_cast<size_t>(s)]; }
  bool empty() const;

  // Throws gs::Error on malformed specs.
  static FaultPlan Parse(const std::string& spec, uint64_t seed);
  std::string ToString() const;
};

struct SiteCounters {
  int64_t probes = 0;
  int64_t injected = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Draws the next probe number for `site` and returns whether it fires.
  // Thread-safe; the decision for probe n is deterministic given the seed.
  bool ShouldFault(Site site);

  // Pure decision function for probe `n` (no counter side effects) —
  // exposed so tests can assert sequence reproducibility directly.
  bool Decide(Site site, int64_t n) const;

  // Magnitude for `site`, falling back to `default_magnitude` when the
  // plan leaves it unset.
  double Magnitude(Site site, double default_magnitude) const;

  SiteCounters counters(Site site) const;
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::array<std::atomic<int64_t>, kNumSites> probes_{};
  std::array<std::atomic<int64_t>, kNumSites> injected_{};
};

// Currently installed injector, or nullptr. Owned by the active FaultScope.
FaultInjector* ActiveInjector();

// Installs `plan` for the scope's lifetime. Scopes nest (the previous
// injector is restored on destruction). Construction and destruction must
// not race with probes on other threads.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* previous_;
};

// Probe helpers for the device-layer hooks: one relaxed load and out when
// no injector is installed.
inline bool Injected(Site site) {
  FaultInjector* injector = ActiveInjector();
  return injector != nullptr && injector->ShouldFault(site);
}

// Probes kernel.stuck; returns the time-inflation multiplier (> 1) when it
// fires, 1.0 otherwise.
double StuckMultiplier();

}  // namespace gs::fault

#endif  // GSAMPLER_FAULT_FAULT_H_
