// The 15 graph sampling algorithms of the paper's Table 2, each expressed
// once against the matrix-centric tracing API (core/trace.h) and compiled by
// the gSampler engine. Factories return the traced Program plus the tensor
// bindings it needs (features, model weights, bandit state, ...).
//
// Simplifications relative to the original papers are documented on each
// factory and in DESIGN.md; the sampling *structure* (node-wise vs
// layer-wise, bias source, finalize behaviour) follows Table 2.

#ifndef GSAMPLER_ALGORITHMS_ALGORITHMS_H_
#define GSAMPLER_ALGORITHMS_ALGORITHMS_H_

#include <map>
#include <string>
#include <vector>

#include "core/ir.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace gs::algorithms {

struct AlgorithmProgram {
  std::string name;
  core::Program program;
  // Named tensor bindings consumed by the program.
  std::map<std::string, tensor::Tensor> tensors;
  // Model-driven algorithms update tensors between batches; the engine
  // excludes them from super-batch sampling (Section 4.4).
  bool updates_model = false;
};

// --- Node-wise, uniform ---

// DeepWalk: vanilla random walk; outputs the node ids of every step.
struct DeepWalkParams {
  int walk_length = 80;
};
AlgorithmProgram DeepWalk(const graph::Graph& g, const DeepWalkParams& params = {});

// GraphSAINT (random-walk sampler): walks from the roots, then induces the
// subgraph over all visited nodes.
struct SaintParams {
  int walk_length = 4;
};
AlgorithmProgram GraphSaint(const graph::Graph& g, const SaintParams& params = {});

// PinSAGE: walks with restarts; each root keeps its k most-visited nodes as
// neighbors, weighted by visit count.
struct PinSageParams {
  int num_walks = 10;
  int walk_length = 3;
  float restart_prob = 0.5f;
  int64_t k = 10;
};
AlgorithmProgram PinSage(const graph::Graph& g, const PinSageParams& params = {});

// HetGNN: restart walks alternating over two edge-type relation matrices (a
// metapath), then top-k frequent neighbors. Relations are bound as named
// graphs "rel0"/"rel1"; for homogeneous benchmarks both default to g.adj().
struct HetGnnParams {
  int num_walks = 10;
  int walk_length = 4;
  float restart_prob = 0.5f;
  int64_t k = 10;
};
AlgorithmProgram HetGnn(const graph::Graph& g, const HetGnnParams& params = {});

// GraphSAGE: per-layer uniform node-wise sampling of `fanouts[l]` neighbors.
struct SageParams {
  std::vector<int64_t> fanouts = {25, 10};
  // Training batches need layer-l representations for the layer-(l-1)
  // targets too; when set, each layer's frontier is the union of the
  // previous frontier and the sampled neighbors (DGL's "block" semantics).
  bool include_seeds = false;
};
AlgorithmProgram GraphSage(const graph::Graph& g, const SageParams& params = {});

// VR-GCN: GraphSAGE-style sampling with tiny fanouts (the variance reduction
// via historical activations is a training-side technique; its sampler is a
// fanout-2 neighbor sampler).
AlgorithmProgram VrGcn(const graph::Graph& g);

// --- Node-wise, static bias ---

// SEAL: neighbor sampling biased by PageRank scores (computed in-IR by power
// iteration and hoisted to compile time), then induced subgraph over all
// sampled nodes. (The original uses per-pair PPR; we use global PageRank as
// the static bias, which exercises the same pre-processing path.)
struct SealParams {
  int depth = 2;
  int64_t fanout = 10;
  int pagerank_iters = 10;
};
AlgorithmProgram Seal(const graph::Graph& g, const SealParams& params = {});

// ShaDow-GNN: per-frontier bounded-depth neighbor expansion, then induced
// subgraph over all sampled nodes (uniform bias variant).
struct ShadowParams {
  int depth = 2;
  int64_t fanout = 10;
};
AlgorithmProgram Shadow(const graph::Graph& g, const ShadowParams& params = {});

// --- Node-wise, dynamic bias ---

// Node2Vec: second-order walk with return parameter p and in-out parameter q.
struct Node2VecParams {
  int walk_length = 80;
  float p = 2.0f;
  float q = 0.5f;
};
AlgorithmProgram Node2Vec(const graph::Graph& g, const Node2VecParams& params = {});

// GCN-BS: bandit sampler — per-edge weights ("bandit_w", aligned with the
// base graph's CSC order) drive biased node-wise sampling and are updated
// with rewards between batches (UpdateBanditWeights).
struct BanditParams {
  std::vector<int64_t> fanouts = {10, 10};
};
AlgorithmProgram GcnBs(const graph::Graph& g, const BanditParams& params = {});

// Thanos: bandit sampler variant (different reward; same sampling program
// shape as GCN-BS).
AlgorithmProgram Thanos(const graph::Graph& g, const BanditParams& params = {});

// PASS: attention-driven node-wise sampling with trainable projections W1,
// W2 and attention mixer W3 (Figure 3c of the paper).
struct PassParams {
  std::vector<int64_t> fanouts = {10, 10};
  int hidden = 16;
};
AlgorithmProgram Pass(const graph::Graph& g, const PassParams& params = {});

// --- Layer-wise ---

// FastGCN: layer-wise importance sampling with static degree-based node
// probabilities (pre-computed) and 1/(K q_u) weight rescaling.
struct LayerWiseParams {
  int num_layers = 2;
  int64_t layer_width = 512;
};
AlgorithmProgram FastGcn(const graph::Graph& g, const LayerWiseParams& params = {});

// LADIES: layer-dependent importance sampling; bias = sum of squared edge
// weights to the frontiers, with post-sampling weight normalization
// (Figure 3b of the paper).
AlgorithmProgram Ladies(const graph::Graph& g, const LayerWiseParams& params = {});

// AS-GCN: adaptive layer-wise sampling; node bias comes from a trainable
// linear sampler over node features ("as_w"), with variance-reduction weight
// adjustment.
AlgorithmProgram Asgcn(const graph::Graph& g, const LayerWiseParams& params = {});

// --- Bandit state updates (GCN-BS / Thanos) ---

// Applies one reward update to `bandit_w` (base-CSC-aligned) for every edge
// present in `sample`: GCN-BS uses a UCB-style additive reward, Thanos an
// EXP3-style multiplicative one. Returns the number of edges updated.
int64_t UpdateBanditWeights(const graph::Graph& g, const sparse::Matrix& sample,
                            tensor::Tensor& bandit_w, bool multiplicative, float reward);

// --- Registry ---

// Builds an algorithm by Table-2 name ("DeepWalk", "GraphSAINT", "PinSAGE",
// "HetGNN", "GraphSAGE", "VR-GCN", "SEAL", "ShaDow", "Node2Vec", "GCN-BS",
// "Thanos", "PASS", "FastGCN", "AS-GCN", "LADIES") with default parameters.
AlgorithmProgram MakeAlgorithm(const std::string& name, const graph::Graph& g);
std::vector<std::string> AllAlgorithmNames();

}  // namespace gs::algorithms

#endif  // GSAMPLER_ALGORITHMS_ALGORITHMS_H_
