#include "algorithms/algorithms.h"

#include <algorithm>

#include "common/error.h"
#include "core/trace.h"

namespace gs::algorithms {

using core::Builder;
using core::IVal;
using core::MVal;
using core::TVal;

namespace {

// Deterministic parameter initialization shared by the model-driven
// algorithms (PASS, AS-GCN); seeded per tensor name so programs are
// reproducible.
tensor::Tensor InitWeight(int64_t rows, int64_t cols, uint64_t seed, float std = 0.1f) {
  Rng rng(seed);
  return tensor::Tensor::Randn({rows, cols}, rng, std);
}

}  // namespace

AlgorithmProgram DeepWalk(const graph::Graph& g, const DeepWalkParams& params) {
  (void)g;
  GS_CHECK_GT(params.walk_length, 0);
  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  for (int step = 0; step < params.walk_length; ++step) {
    cur = b.WalkStep(a, cur);
    b.Output(cur);
  }
  return {"DeepWalk", std::move(b).Build(), {}, false};
}

AlgorithmProgram Node2Vec(const graph::Graph& g, const Node2VecParams& params) {
  (void)g;
  GS_CHECK_GT(params.walk_length, 0);
  Builder b;
  MVal a = b.Graph();
  IVal root = b.Frontier();
  // First hop is uniform (no previous node yet).
  IVal prev = root;
  IVal cur = b.WalkStep(a, root);
  b.Output(cur);
  for (int step = 1; step < params.walk_length; ++step) {
    IVal next = b.Node2VecStep(a, cur, prev, params.p, params.q);
    b.Output(next);
    prev = cur;
    cur = next;
  }
  return {"Node2Vec", std::move(b).Build(), {}, false};
}

AlgorithmProgram GraphSage(const graph::Graph& g, const SageParams& params) {
  (void)g;
  GS_CHECK(!params.fanouts.empty());
  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  for (int64_t fanout : params.fanouts) {
    MVal sub = a.Cols(cur);                       // extract
    MVal sample = sub.IndividualSample(fanout);   // select (uniform)
    b.Output(sample);                             // finalize
    if (params.include_seeds) {
      std::vector<IVal> merged = {cur, sample.Row()};
      cur = b.Unique(merged);
    } else {
      cur = sample.Row();
    }
  }
  b.Output(cur);
  return {"GraphSAGE", std::move(b).Build(), {}, false};
}

AlgorithmProgram VrGcn(const graph::Graph& g) {
  AlgorithmProgram p = GraphSage(g, SageParams{.fanouts = {2, 2}});
  p.name = "VR-GCN";
  return p;
}

AlgorithmProgram GraphSaint(const graph::Graph& g, const SaintParams& params) {
  (void)g;
  Builder b;
  MVal a = b.Graph();
  IVal root = b.Frontier();
  std::vector<IVal> visited = {root};
  IVal cur = root;
  for (int step = 0; step < params.walk_length; ++step) {
    cur = b.WalkStep(a, cur);
    visited.push_back(cur);
  }
  IVal nodes = b.Unique(visited);
  MVal induced = a.Cols(nodes).Rows(nodes);  // A[nodes, nodes]
  b.Output(induced);
  b.Output(nodes);
  return {"GraphSAINT", std::move(b).Build(), {}, false};
}

AlgorithmProgram PinSage(const graph::Graph& g, const PinSageParams& params) {
  (void)g;
  Builder b;
  MVal a = b.Graph();
  IVal root = b.Frontier();
  std::vector<IVal> steps;
  for (int walk = 0; walk < params.num_walks; ++walk) {
    IVal cur = root;
    for (int step = 0; step < params.walk_length; ++step) {
      cur = b.WalkStepRestart(a, cur, root, params.restart_prob);
      steps.push_back(cur);
    }
  }
  MVal neighbors = b.TopKVisited(root, steps, params.k);
  b.Output(neighbors);
  b.Output(neighbors.Row());
  return {"PinSAGE", std::move(b).Build(), {}, false};
}

AlgorithmProgram HetGnn(const graph::Graph& g, const HetGnnParams& params) {
  (void)g;
  Builder b;
  MVal rel0 = b.GraphNamed("rel0");
  MVal rel1 = b.GraphNamed("rel1");
  IVal root = b.Frontier();
  std::vector<IVal> steps;
  for (int walk = 0; walk < params.num_walks; ++walk) {
    IVal cur = root;
    for (int step = 0; step < params.walk_length; ++step) {
      // Metapath: alternate relation matrices (e.g. user->item, item->user).
      cur = b.WalkStepRestart(step % 2 == 0 ? rel0 : rel1, cur, root, params.restart_prob);
      steps.push_back(cur);
    }
  }
  MVal neighbors = b.TopKVisited(root, steps, params.k);
  b.Output(neighbors);
  b.Output(neighbors.Row());
  return {"HetGNN", std::move(b).Build(), {}, false};
}

AlgorithmProgram Seal(const graph::Graph& g, const SealParams& params) {
  Builder b;
  MVal a = b.Graph();
  IVal frontier = b.Frontier();

  // PageRank by power iteration — every node here is batch-invariant, so the
  // pre-processing pass evaluates the whole chain once at compile time.
  TVal pr = b.Input("pr_init");
  MVal a_norm = a.Div(a.Sum(1) + 1e-9f, 1);  // column-normalized weights
  for (int it = 0; it < params.pagerank_iters; ++it) {
    pr = a_norm.MM(pr) * 0.85f + (0.15f / static_cast<float>(g.num_nodes()));
  }

  IVal cur = frontier;
  std::vector<IVal> collected = {frontier};
  for (int layer = 0; layer < params.depth; ++layer) {
    MVal sub = a.Cols(cur);
    MVal probs = sub.Mul(pr, 0);  // PageRank-biased edge probabilities
    MVal sample = sub.IndividualSample(params.fanout, probs);
    cur = sample.Row();
    collected.push_back(cur);
  }
  IVal nodes = b.Unique(collected);
  MVal induced = a.Cols(nodes).Rows(nodes);
  b.Output(induced);
  b.Output(nodes);

  tensor::Tensor init = tensor::Tensor::Full({g.num_nodes(), 1},
                                             1.0f / static_cast<float>(g.num_nodes()));
  return {"SEAL", std::move(b).Build(), {{"pr_init", std::move(init)}}, false};
}

AlgorithmProgram Shadow(const graph::Graph& g, const ShadowParams& params) {
  (void)g;
  Builder b;
  MVal a = b.Graph();
  IVal frontier = b.Frontier();
  IVal cur = frontier;
  std::vector<IVal> collected = {frontier};
  for (int layer = 0; layer < params.depth; ++layer) {
    MVal sample = a.Cols(cur).IndividualSample(params.fanout);
    cur = sample.Row();
    collected.push_back(cur);
  }
  IVal nodes = b.Unique(collected);
  MVal induced = a.Cols(nodes).Rows(nodes);
  b.Output(induced);
  b.Output(nodes);
  return {"ShaDow", std::move(b).Build(), {}, false};
}

AlgorithmProgram GcnBs(const graph::Graph& g, const BanditParams& params) {
  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  // Bandit weights ride on the base graph's edges (batch-invariant between
  // updates; re-binding bandit_w refreshes the pre-computation).
  MVal weighted = a.WithEdgeValues(b.Input("bandit_w"));
  for (int64_t fanout : params.fanouts) {
    MVal sub = weighted.Cols(cur);
    MVal sample = sub.IndividualSample(fanout, sub);  // bias = own weights
    b.Output(sample);
    cur = sample.Row();
  }
  b.Output(cur);
  tensor::Tensor w = tensor::Tensor::Full({g.num_edges()}, 1.0f);
  return {"GCN-BS", std::move(b).Build(), {{"bandit_w", std::move(w)}}, true};
}

AlgorithmProgram Thanos(const graph::Graph& g, const BanditParams& params) {
  AlgorithmProgram p = GcnBs(g, params);
  p.name = "Thanos";
  return p;
}

AlgorithmProgram Pass(const graph::Graph& g, const PassParams& params) {
  GS_CHECK(g.features().defined()) << "PASS needs node features";
  const int64_t d = g.features().cols();
  const int64_t h = params.hidden;

  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  TVal features = b.Input("features");
  TVal w1 = b.Input("W1");
  TVal w2 = b.Input("W2");
  TVal w3 = b.Input("W3");
  // U projections cover all rows and are batch-invariant (pre-computed).
  TVal u1 = features.MM(w1);
  TVal u2 = features.MM(w2);

  for (int64_t fanout : params.fanouts) {
    MVal sub = a.Cols(cur);
    TVal c = features.Gather(cur);  // frontier features (Figure 3c, line 4)
    // Attention heads: sub_A * ((B @ Wi) @ (C @ Wi)^T) — rewritten to SDDMM
    // and fused by the engine.
    MVal a1 = sub.MulDense(u1.MM(c.MM(w1).T()));
    MVal a2 = sub.MulDense(u2.MM(c.MM(w2).T()));
    MVal a3 = sub.Div(sub.Sum(1), 1);  // degree-normalized third head
    std::vector<TVal> heads = {a1.EdgeValues(), a2.EdgeValues(), a3.EdgeValues()};
    TVal att = b.Stack(heads);                 // (E, 3)
    TVal mixed = att.MM(w3.Softmax().T()).Relu();  // (E, 1) attention scores
    MVal probs = sub.WithEdgeValues(mixed);
    MVal sample = sub.IndividualSample(fanout, probs);
    b.Output(sample);
    cur = sample.Row();
  }
  b.Output(cur);

  std::map<std::string, tensor::Tensor> tensors;
  tensors["features"] = g.features();
  tensors["W1"] = InitWeight(d, h, 0xF001);
  tensors["W2"] = InitWeight(d, h, 0xF002);
  tensors["W3"] = InitWeight(1, 3, 0xF003, 0.5f);
  return {"PASS", std::move(b).Build(), std::move(tensors), true};
}

AlgorithmProgram FastGcn(const graph::Graph& g, const LayerWiseParams& params) {
  (void)g;
  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  // Static importance q_u ∝ out-degree (sum of edge weights per row);
  // batch-invariant, pre-computed once.
  TVal q = a.Sum(0);
  for (int layer = 0; layer < params.num_layers; ++layer) {
    MVal sub = a.Cols(cur);
    MVal sample = sub.CollectiveSample(params.layer_width, q);
    // Importance-sampling rescale: divide edges by the selected node's q
    // (global row vector: sample's row_ids translate the indexing), then
    // normalize per frontier.
    MVal w1 = sample.Div(q, 0);
    MVal w2 = w1.Div(w1.Sum(1), 1);
    b.Output(w2);
    cur = sample.Row();
  }
  b.Output(cur);
  return {"FastGCN", std::move(b).Build(), {}, false};
}

AlgorithmProgram Ladies(const graph::Graph& g, const LayerWiseParams& params) {
  (void)g;
  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  for (int layer = 0; layer < params.num_layers; ++layer) {
    MVal sub = a.Cols(cur);
    // Bias of candidate u: sum of squared edge weights to the frontiers.
    // (A ** 2) is hoisted above the extract and pre-computed on the full
    // graph by the pre-processing pass.
    TVal row_probs = sub.Pow(2.0f).Sum(0);
    MVal sample = sub.CollectiveSample(params.layer_width, row_probs);
    // Post-sampling adjustment: divide by the selected nodes' bias (their
    // own squared-weight sums) and normalize per frontier column.
    TVal selected_probs = sample.Pow(2.0f).Sum(0);
    MVal w1 = sample.Div(selected_probs, 0);
    MVal w2 = w1.Div(w1.Sum(1), 1);
    b.Output(w2);
    cur = sample.Row();
  }
  b.Output(cur);
  return {"LADIES", std::move(b).Build(), {}, false};
}

AlgorithmProgram Asgcn(const graph::Graph& g, const LayerWiseParams& params) {
  GS_CHECK(g.features().defined()) << "AS-GCN needs node features";
  Builder b;
  MVal a = b.Graph();
  IVal cur = b.Frontier();
  TVal features = b.Input("features");
  TVal w = b.Input("as_w");
  // Trainable linear sampler g(x_u) = relu(x_u . w) + eps; invariant until
  // the trainer re-binds as_w.
  TVal h = features.MM(w).Relu() + 1e-6f;
  for (int layer = 0; layer < params.num_layers; ++layer) {
    MVal sub = a.Cols(cur);
    // Node importance: (sum of incident frontier edges) * g(x_u).
    TVal row_probs = sub.Mul(h, 0).Sum(0);
    MVal sample = sub.CollectiveSample(params.layer_width, row_probs);
    TVal selected = sample.Mul(h, 0).Sum(0);
    MVal w1 = sample.Div(selected, 0);
    MVal w2 = w1.Div(w1.Sum(1), 1);
    b.Output(w2);
    cur = sample.Row();
  }
  b.Output(cur);

  std::map<std::string, tensor::Tensor> tensors;
  tensors["features"] = g.features();
  tensors["as_w"] = InitWeight(g.features().cols(), 1, 0xA5C0);
  return {"AS-GCN", std::move(b).Build(), std::move(tensors), true};
}

int64_t UpdateBanditWeights(const graph::Graph& g, const sparse::Matrix& sample,
                            tensor::Tensor& bandit_w, bool multiplicative, float reward) {
  GS_CHECK_EQ(bandit_w.numel(), g.num_edges());
  const sparse::Compressed& base = g.adj().Csc();
  const sparse::Compressed& csc = sample.Csc();
  int64_t updated = 0;
  for (int64_t c = 0; c < sample.num_cols(); ++c) {
    const int32_t col = sample.GlobalColId(static_cast<int32_t>(c));
    const int64_t begin = base.indptr[col];
    const int64_t end = base.indptr[col + 1];
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const int32_t row = sample.GlobalRowId(csc.indices[e]);
      // Locate the base edge (row -> col); per-column indices are sorted.
      const int32_t* lo = std::lower_bound(base.indices.data() + begin,
                                           base.indices.data() + end, row);
      if (lo != base.indices.data() + end && *lo == row) {
        const int64_t slot = lo - base.indices.data();
        float& w = bandit_w.at(slot);
        w = multiplicative ? w * std::max(0.1f, 1.0f + reward)  // EXP3-style
                           : w + reward;                        // UCB-style
        w = std::max(w, 1e-3f);
        ++updated;
      }
    }
  }
  return updated;
}

AlgorithmProgram MakeAlgorithm(const std::string& name, const graph::Graph& g) {
  if (name == "DeepWalk") {
    return DeepWalk(g);
  }
  if (name == "GraphSAINT") {
    return GraphSaint(g);
  }
  if (name == "PinSAGE") {
    return PinSage(g);
  }
  if (name == "HetGNN") {
    return HetGnn(g);
  }
  if (name == "GraphSAGE") {
    return GraphSage(g);
  }
  if (name == "VR-GCN") {
    return VrGcn(g);
  }
  if (name == "SEAL") {
    return Seal(g);
  }
  if (name == "ShaDow") {
    return Shadow(g);
  }
  if (name == "Node2Vec") {
    return Node2Vec(g);
  }
  if (name == "GCN-BS") {
    return GcnBs(g);
  }
  if (name == "Thanos") {
    return Thanos(g);
  }
  if (name == "PASS") {
    return Pass(g);
  }
  if (name == "FastGCN") {
    return FastGcn(g);
  }
  if (name == "AS-GCN") {
    return Asgcn(g);
  }
  if (name == "LADIES") {
    return Ladies(g);
  }
  GS_CHECK(false) << "unknown algorithm: " << name;
  return {};
}

std::vector<std::string> AllAlgorithmNames() {
  return {"DeepWalk", "GraphSAINT", "PinSAGE", "HetGNN", "GraphSAGE",
          "VR-GCN",   "SEAL",       "ShaDow",  "Node2Vec", "GCN-BS",
          "Thanos",   "PASS",       "FastGCN", "AS-GCN",  "LADIES"};
}

}  // namespace gs::algorithms
