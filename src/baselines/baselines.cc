#include "baselines/baselines.h"

#include <algorithm>

#include "algorithms/algorithms.h"  // shared default hyper-parameters
#include "common/sampling.h"
#include "baselines/eager.h"
#include "common/error.h"
#include "device/device.h"
#include "device/stream.h"
#include "sparse/kernels.h"

namespace gs::baselines {
namespace {

using sparse::Matrix;
using sparse::ValueArray;
using tensor::IdArray;

bool IsSimpleAlgorithm(const std::string& algo) {
  return algo == "DeepWalk" || algo == "Node2Vec" || algo == "GraphSAGE";
}

bool IsEvaluatedAlgorithm(const std::string& algo) {
  return IsSimpleAlgorithm(algo) || algo == "LADIES" || algo == "AS-GCN" || algo == "PASS" ||
         algo == "ShaDow";
}

// Sink preventing the optimizer from eliding modeled work.
volatile int64_t benchmark_sink = 0;

// Small utility kernels modeling baseline-specific bookkeeping.
IdArray CloneIdsKernel(const IdArray& ids) {
  device::KernelScope kernel(device::Current().stream());
  IdArray copy = ids.Clone();
  kernel.Finish({.parallel_items = ids.size(), .hbm_bytes = 2 * ids.bytes()});
  return copy;
}

// Full-graph renumbering pass: cuGraph's bulk API re-maps vertex ids over
// the whole edge list on every call, which is what makes it slow for
// mini-batch sampling (Section 5.2). Modeled as a scan of the full edge
// array plus a COO-sized scratch write.
void FullGraphRenumberKernel(const graph::Graph& g) {
  device::KernelScope kernel(device::Current().stream());
  const sparse::Compressed& csc = g.adj().Csc();
  IdArray scratch = IdArray::Empty(g.num_edges());
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    scratch[e] = csc.indices[e];
  }
  kernel.Finish({.parallel_items = g.num_edges(),
                 .hbm_bytes = 2 * g.num_edges() * int64_t{4} + g.num_nodes() * int64_t{4}});
}

// SkyWalker's per-step alias-table construction over the current walkers'
// neighborhoods. Building a Walker table requires evaluating the sampling
// bias of every candidate edge (for second-order walks that is an adjacency
// membership test per candidate, like Node2VecStep's) and then the
// small/large bucket partition — a real pass with real per-edge work.
void AliasBuildKernel(const graph::Graph& g, const IdArray& cur, const IdArray* prev) {
  device::KernelScope kernel(device::Current().stream());
  const sparse::Compressed& csc = g.adj().Csc();
  int64_t touched = 0;
  int64_t checksum = 0;
  std::vector<float> scratch;
  for (int64_t i = 0; i < cur.size(); ++i) {
    if (cur[i] < 0) {
      continue;
    }
    const int64_t begin = csc.indptr[cur[i]];
    const int64_t end = csc.indptr[cur[i] + 1];
    scratch.clear();
    for (int64_t e = begin; e < end; ++e) {
      float bias = 1.0f;
      if (prev != nullptr && (*prev)[i] >= 0) {
        // Second-order bias: adjacency membership test per candidate.
        const int32_t anchor = (*prev)[i];
        bias = std::binary_search(csc.indices.data() + csc.indptr[anchor],
                                  csc.indices.data() + csc.indptr[anchor + 1],
                                  csc.indices[e])
                   ? 1.0f
                   : 0.5f;
      }
      scratch.push_back(bias);
      checksum += csc.indices[e];
    }
    // Bucket partition (the Walker construction itself).
    AliasTable table{std::span<const float>(scratch)};
    checksum += table.size();
    touched += end - begin;
  }
  benchmark_sink = checksum;
  kernel.Finish({.parallel_items = cur.size(), .hbm_bytes = touched * int64_t{20}});
}

// ------------------------------------------------------------ DGL / PyG

class DglSim final : public Baseline {
 public:
  DglSim(const graph::Graph& g, bool cpu)
      : graph_(&g), system_(cpu ? "DGL-CPU" : "DGL-GPU"), cpu_(cpu) {}

  const std::string& system() const override { return system_; }

  Availability Check(const std::string& algo) const override {
    if (!IsEvaluatedAlgorithm(algo)) {
      return Availability::kNotImplemented;
    }
    if (!cpu_ && algo == "Node2Vec") {
      // "DGL has no GPU implementation for Node2Vec" (Section 5.2).
      return Availability::kNotImplemented;
    }
    if (cpu_ && graph_->uva() && (algo == "LADIES" || algo == "AS-GCN" || algo == "PASS")) {
      // DGL-CPU exceeds 10 hours on the large graphs for these (Section 5.2).
      return Availability::kTimeout;
    }
    return Availability::kSupported;
  }

  BaselineResult SampleBatch(const std::string& algo, const IdArray& frontier,
                             Rng& rng) override {
    const eager::Style style;  // greedy formats + message materialization
    if (algo == "DeepWalk") {
      return eager::DeepWalk(*graph_, frontier, algorithms::DeepWalkParams{}.walk_length, rng,
                             style);
    }
    if (algo == "Node2Vec") {
      const algorithms::Node2VecParams p;
      return eager::Node2Vec(*graph_, frontier, p.walk_length, p.p, p.q, rng, style);
    }
    if (algo == "GraphSAGE") {
      return eager::GraphSage(*graph_, frontier, algorithms::SageParams{}.fanouts, rng, style);
    }
    if (algo == "LADIES") {
      const algorithms::LayerWiseParams p;
      return eager::Ladies(*graph_, frontier, p.num_layers, p.layer_width, rng, style);
    }
    if (algo == "AS-GCN") {
      const algorithms::LayerWiseParams p;
      return eager::Asgcn(*graph_, frontier, p.num_layers, p.layer_width, model_, rng, style);
    }
    if (algo == "PASS") {
      const algorithms::PassParams p;
      return eager::Pass(*graph_, frontier, p.fanouts, p.hidden, model_, rng, style);
    }
    if (algo == "ShaDow") {
      const algorithms::ShadowParams p;
      return eager::Shadow(*graph_, frontier, p.depth, p.fanout, rng, style);
    }
    GS_CHECK(false) << system_ << " does not implement " << algo;
    return {};
  }

 private:
  const graph::Graph* graph_;
  std::string system_;
  bool cpu_;
  eager::EagerModel model_;
};

class PygSim final : public Baseline {
 public:
  PygSim(const graph::Graph& g, bool cpu)
      : graph_(&g), system_(cpu ? "PyG-CPU" : "PyG-GPU"), cpu_(cpu) {}

  const std::string& system() const override { return system_; }

  Availability Check(const std::string& algo) const override {
    if (!cpu_) {
      // "PyG can only run DeepWalk on GPU and does not support UVA".
      if (algo != "DeepWalk" || graph_->uva()) {
        return Availability::kNotImplemented;
      }
      return Availability::kSupported;
    }
    if (IsSimpleAlgorithm(algo) || algo == "ShaDow") {
      return Availability::kSupported;
    }
    return Availability::kNotImplemented;
  }

  BaselineResult SampleBatch(const std::string& algo, const IdArray& frontier,
                             Rng& rng) override {
    const eager::Style style;
    if (algo == "DeepWalk") {
      return eager::DeepWalk(*graph_, frontier, algorithms::DeepWalkParams{}.walk_length, rng,
                             style);
    }
    if (algo == "Node2Vec") {
      const algorithms::Node2VecParams p;
      return eager::Node2Vec(*graph_, frontier, p.walk_length, p.p, p.q, rng, style);
    }
    if (algo == "GraphSAGE") {
      return eager::GraphSage(*graph_, frontier, algorithms::SageParams{}.fanouts, rng, style);
    }
    if (algo == "ShaDow") {
      const algorithms::ShadowParams p;
      return eager::Shadow(*graph_, frontier, p.depth, p.fanout, rng, style);
    }
    GS_CHECK(false) << system_ << " does not implement " << algo;
    return {};
  }

 private:
  const graph::Graph* graph_;
  std::string system_;
  bool cpu_;
};

// ------------------------------------------------------------- SkyWalker

class SkyWalkerSim final : public Baseline {
 public:
  explicit SkyWalkerSim(const graph::Graph& g) : graph_(&g) {}

  const std::string& system() const override { return system_; }

  Availability Check(const std::string& algo) const override {
    // Vertex-centric walker: biased/unbiased walks and uniform node-wise
    // sampling; no layer-wise or tensor-compute algorithms (Table 3).
    return IsSimpleAlgorithm(algo) ? Availability::kSupported
                                   : Availability::kNotImplemented;
  }

  BaselineResult SampleBatch(const std::string& algo, const IdArray& frontier,
                             Rng& rng) override {
    BaselineResult result;
    if (algo == "GraphSAGE") {
      // Uniform fanout sampling: SkyWalker samples neighbor slots directly
      // (no alias table needed when the bias is uniform); its overhead is
      // the per-layer walker-queue scheduling pass.
      IdArray cur = frontier;
      for (int64_t fanout : algorithms::SageParams{}.fanouts) {
        cur = CloneIdsKernel(cur);  // walker-queue scheduling pass
        Matrix sample = sparse::FusedSliceSample(graph_->adj(), cur, fanout, rng);
        cur = sparse::RowIds(sample);
        result.layers.push_back(std::move(sample));
      }
      result.traces.push_back(cur);
      return result;
    }
    if (algo == "DeepWalk") {
      IdArray cur = frontier;
      for (int step = 0; step < algorithms::DeepWalkParams{}.walk_length; ++step) {
        cur = CloneIdsKernel(cur);  // queue compaction between steps
        cur = sparse::UniformWalkStep(graph_->adj(), cur, rng);
        result.traces.push_back(cur);
      }
      return result;
    }
    if (algo == "Node2Vec") {
      const algorithms::Node2VecParams p;
      IdArray prev = frontier;
      IdArray cur = sparse::UniformWalkStep(graph_->adj(), frontier, rng);
      result.traces.push_back(cur);
      for (int step = 1; step < p.walk_length; ++step) {
        AliasBuildKernel(*graph_, cur, &prev);  // per-step alias tables
        IdArray next = sparse::Node2VecStep(graph_->adj(), cur, prev, p.p, p.q, rng);
        result.traces.push_back(next);
        prev = cur;
        cur = next;
      }
      return result;
    }
    GS_CHECK(false) << system_ << " does not implement " << algo;
    return {};
  }

 private:
  const graph::Graph* graph_;
  std::string system_ = "SkyWalker";
};

// --------------------------------------------------------------- GunRock

class GunRockSim final : public Baseline {
 public:
  explicit GunRockSim(const graph::Graph& g) : graph_(&g) {}

  const std::string& system() const override { return system_; }

  Availability Check(const std::string& algo) const override {
    // "GunRock only implements GraphSAGE and ... cannot use UVA".
    if (algo != "GraphSAGE" || graph_->uva()) {
      return Availability::kNotImplemented;
    }
    return Availability::kSupported;
  }

  BaselineResult SampleBatch(const std::string& algo, const IdArray& frontier,
                             Rng& rng) override {
    GS_CHECK(algo == "GraphSAGE");
    BaselineResult result;
    IdArray cur = frontier;
    for (int64_t fanout : algorithms::SageParams{}.fanouts) {
      // Advance: materialize the whole frontier neighborhood, then filter.
      Matrix sub = sparse::SliceColumns(graph_->adj(), cur);
      Matrix sample = sparse::IndividualSample(sub, fanout, ValueArray{}, rng);
      cur = sparse::RowIds(sample);
      cur = CloneIdsKernel(cur);  // frontier compaction pass
      result.layers.push_back(std::move(sample));
    }
    result.traces.push_back(cur);
    return result;
  }

 private:
  const graph::Graph* graph_;
  std::string system_ = "GunRock";
};

// --------------------------------------------------------------- cuGraph

class CuGraphSim final : public Baseline {
 public:
  explicit CuGraphSim(const graph::Graph& g) : graph_(&g) {}

  const std::string& system() const override { return system_; }

  Availability Check(const std::string& algo) const override {
    if (!IsSimpleAlgorithm(algo)) {
      return Availability::kNotImplemented;
    }
    if (graph_->name() == "PP") {
      // "cuGraph cannot finish loading the PP graph in 10 hours".
      return Availability::kTimeout;
    }
    return Availability::kSupported;
  }

  BaselineResult SampleBatch(const std::string& algo, const IdArray& frontier,
                             Rng& rng) override {
    BaselineResult result;
    if (algo == "GraphSAGE") {
      IdArray cur = frontier;
      for (int64_t fanout : algorithms::SageParams{}.fanouts) {
        FullGraphRenumberKernel(*graph_);  // bulk-call overhead
        Matrix sample = sparse::FusedSliceSample(graph_->adj(), cur, fanout, rng);
        cur = sparse::RowIds(sample);
        result.layers.push_back(std::move(sample));
      }
      result.traces.push_back(cur);
      return result;
    }
    const bool node2vec = algo == "Node2Vec";
    const int walk_length = node2vec ? algorithms::Node2VecParams{}.walk_length
                                     : algorithms::DeepWalkParams{}.walk_length;
    // One bulk random-walk call per batch: a single renumbering pass, then
    // the walk steps.
    FullGraphRenumberKernel(*graph_);
    IdArray prev = frontier;
    IdArray cur = sparse::UniformWalkStep(graph_->adj(), frontier, rng);
    result.traces.push_back(cur);
    for (int step = 1; step < walk_length; ++step) {
      IdArray next =
          node2vec ? sparse::Node2VecStep(graph_->adj(), cur, prev,
                                          algorithms::Node2VecParams{}.p,
                                          algorithms::Node2VecParams{}.q, rng)
                   : sparse::UniformWalkStep(graph_->adj(), cur, rng);
      result.traces.push_back(next);
      prev = cur;
      cur = next;
    }
    return result;
  }

 private:
  const graph::Graph* graph_;
  std::string system_ = "cuGraph";
};

}  // namespace

std::vector<std::string> AllBaselineSystems() {
  return {"DGL-GPU", "DGL-CPU", "PyG-GPU", "PyG-CPU", "SkyWalker", "GunRock", "cuGraph"};
}

std::unique_ptr<Baseline> MakeBaseline(const std::string& system, const graph::Graph& g) {
  if (system == "DGL-GPU") {
    return std::make_unique<DglSim>(g, /*cpu=*/false);
  }
  if (system == "DGL-CPU") {
    return std::make_unique<DglSim>(g, /*cpu=*/true);
  }
  if (system == "PyG-GPU") {
    return std::make_unique<PygSim>(g, /*cpu=*/false);
  }
  if (system == "PyG-CPU") {
    return std::make_unique<PygSim>(g, /*cpu=*/true);
  }
  if (system == "SkyWalker") {
    return std::make_unique<SkyWalkerSim>(g);
  }
  if (system == "GunRock") {
    return std::make_unique<GunRockSim>(g);
  }
  if (system == "cuGraph") {
    return std::make_unique<CuGraphSim>(g);
  }
  GS_CHECK(false) << "unknown baseline system: " << system;
  return nullptr;
}

device::DeviceProfile ProfileFor(const std::string& system,
                                 const device::DeviceProfile& gpu_profile) {
  // Calibration constants for the CPU baselines (see DESIGN.md): DGL-CPU's
  // OpenMP kernels run ~40x slower than the reference device; PyG-CPU's
  // Python-driven sampling ~150x (consistent with Table 8's 13082s vs 322s
  // end-to-end gap and Section 5.2's 702x sampling gap).
  if (system == "DGL-CPU") {
    return device::CpuSim("DGL-CPU", 40.0);
  }
  if (system == "PyG-CPU") {
    return device::CpuSim("PyG-CPU", 150.0);
  }
  return gpu_profile;
}

Rng MirroredBatchRng(uint64_t seed, uint64_t batch_index) {
  // Must match SamplerSession: rng_ = Rng(seed), batch j samples from
  // rng_.Fork(j) (Fork is const, so earlier batches do not perturb it).
  return Rng(seed).Fork(batch_index);
}

struct EagerTwinState {
  eager::EagerModel model;
};

std::shared_ptr<EagerTwinState> MakeEagerTwinState() {
  return std::make_shared<EagerTwinState>();
}

bool HasEagerTwin(const std::string& algorithm) {
  return algorithm == "DeepWalk" || algorithm == "Node2Vec" || algorithm == "GraphSAGE" ||
         algorithm == "LADIES" || algorithm == "FastGCN" || algorithm == "AS-GCN" ||
         algorithm == "PASS" || algorithm == "ShaDow";
}

BaselineResult SampleEagerTwin(const std::string& algorithm, const graph::Graph& g,
                               const tensor::IdArray& frontier, EagerTwinState& state,
                               Rng& rng) {
  const eager::Style style;
  if (algorithm == "DeepWalk") {
    return eager::DeepWalk(g, frontier, algorithms::DeepWalkParams{}.walk_length, rng, style);
  }
  if (algorithm == "Node2Vec") {
    const algorithms::Node2VecParams p;
    return eager::Node2Vec(g, frontier, p.walk_length, p.p, p.q, rng, style);
  }
  if (algorithm == "GraphSAGE") {
    return eager::GraphSage(g, frontier, algorithms::SageParams{}.fanouts, rng, style);
  }
  if (algorithm == "LADIES") {
    const algorithms::LayerWiseParams p;
    return eager::Ladies(g, frontier, p.num_layers, p.layer_width, rng, style);
  }
  if (algorithm == "FastGCN") {
    const algorithms::LayerWiseParams p;
    return eager::FastGcn(g, frontier, p.num_layers, p.layer_width, rng, style);
  }
  if (algorithm == "AS-GCN") {
    const algorithms::LayerWiseParams p;
    return eager::Asgcn(g, frontier, p.num_layers, p.layer_width, state.model, rng, style);
  }
  if (algorithm == "PASS") {
    const algorithms::PassParams p;
    return eager::Pass(g, frontier, p.fanouts, p.hidden, state.model, rng, style);
  }
  if (algorithm == "ShaDow") {
    const algorithms::ShadowParams p;
    return eager::Shadow(g, frontier, p.depth, p.fanout, rng, style);
  }
  GS_CHECK(false) << "no eager twin for " << algorithm;
  return {};
}

}  // namespace gs::baselines
