#include "baselines/eager.h"

#include <algorithm>

#include "common/error.h"
#include "device/device.h"
#include "device/stream.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"

namespace gs::baselines::eager {
namespace {

using sparse::Format;
using sparse::Matrix;
using sparse::ValueArray;
using tensor::IdArray;
using tensor::Tensor;

// Greedy layout policy: materialize the operator's favorite input format
// before running it (the conversion kernels charge their own cost).
void Ensure(const Matrix& m, Format format, const Style& style) {
  if (!style.greedy_formats) {
    return;
  }
  switch (format) {
    case Format::kCsc:
      m.Csc();
      break;
    case Format::kCsr:
      m.Csr();
      break;
    case Format::kCoo:
      m.GetCoo();
      break;
  }
}

// update_all's copy_e stage: writes every edge value to a fresh message
// buffer before the reduction reads it back.
Tensor MaterializeMessages(const Matrix& m, const Style& style) {
  ValueArray values = m.ValuesFor(Format::kCsc);
  if (!style.message_materialization) {
    return Tensor::FromArray({m.nnz()}, std::move(values));
  }
  device::KernelScope kernel(device::Current().stream());
  ValueArray copy = values.Clone();
  kernel.Finish({.parallel_items = m.nnz(), .hbm_bytes = 2 * values.bytes()});
  return Tensor::FromArray({m.nnz()}, std::move(copy));
}

// Walk-trace write-back: DGL/PyG walkers store every step into the trace
// tensor (an extra pass gSampler's pipeline avoids).
IdArray MaterializeTrace(const IdArray& step, const Style& style) {
  if (!style.message_materialization) {
    return step;
  }
  device::KernelScope kernel(device::Current().stream());
  IdArray copy = step.Clone();
  kernel.Finish({.parallel_items = step.size(), .hbm_bytes = 2 * step.bytes()});
  return copy;
}

// Per-edge dot of endpoint projections. With message materialization this
// gathers both endpoints' vectors into (E, h) buffers first (DGL's unfused
// u_dot_v); otherwise it computes the dots in one pass.
Tensor EdgeDot(const Matrix& m, const Tensor& u, const Tensor& v, const Style& style) {
  const sparse::Compressed& csc = m.Csc();
  const int64_t h = u.cols();
  device::Stream& stream = device::Current().stream();

  Tensor eu;
  Tensor ev;
  if (style.message_materialization) {
    device::KernelScope gather(stream);
    eu = Tensor::Empty({m.nnz(), h});
    ev = Tensor::Empty({m.nnz(), h});
    for (int64_t c = 0; c < m.num_cols(); ++c) {
      for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
        std::copy_n(u.data() + static_cast<int64_t>(csc.indices[e]) * h, h,
                    eu.data() + e * h);
        std::copy_n(v.data() + c * h, h, ev.data() + e * h);
      }
    }
    gather.Finish({.parallel_items = m.nnz() * h,
                   .hbm_bytes = 4 * m.nnz() * h * static_cast<int64_t>(sizeof(float))});
  }

  device::KernelScope kernel(stream);
  Tensor out = Tensor::Empty({m.nnz()});
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const float* pu = style.message_materialization
                            ? eu.data() + e * h
                            : u.data() + static_cast<int64_t>(csc.indices[e]) * h;
      const float* pv = style.message_materialization ? ev.data() + e * h : v.data() + c * h;
      float dot = 0.0f;
      for (int64_t j = 0; j < h; ++j) {
        dot += pu[j] * pv[j];
      }
      out.at(e) = dot;
    }
  }
  kernel.Finish({.parallel_items = m.nnz() * h,
                 .hbm_bytes = (2 * h + 1) * m.nnz() * static_cast<int64_t>(sizeof(float))});
  return out;
}

// LADIES/AS-GCN/FastGCN-style post-sampling weight normalization, executed
// eagerly (three separate operator launches).
Matrix NormalizeSample(const Matrix& sample, const ValueArray& selected_bias,
                       const Style& style) {
  Matrix w1 = sparse::Broadcast(sample, BinaryOp::kDiv, selected_bias, 0);
  Ensure(w1, Format::kCsc, style);
  ValueArray col_sums = sparse::SumAxis(w1, 1);
  return sparse::Broadcast(w1, BinaryOp::kDiv, col_sums, 1);
}

tensor::Tensor InitWeight(int64_t rows, int64_t cols, uint64_t seed, float std = 0.1f) {
  Rng rng(seed);
  return Tensor::Randn({rows, cols}, rng, std);
}

}  // namespace

BaselineResult DeepWalk(const graph::Graph& g, const tensor::IdArray& frontier,
                        int walk_length, Rng& rng, const Style& style) {
  BaselineResult result;
  IdArray cur = frontier;
  for (int step = 0; step < walk_length; ++step) {
    cur = sparse::UniformWalkStep(g.adj(), cur, rng);
    result.traces.push_back(MaterializeTrace(cur, style));
  }
  return result;
}

BaselineResult Node2Vec(const graph::Graph& g, const tensor::IdArray& frontier,
                        int walk_length, float p, float q, Rng& rng, const Style& style) {
  BaselineResult result;
  IdArray prev = frontier;
  IdArray cur = sparse::UniformWalkStep(g.adj(), frontier, rng);
  result.traces.push_back(MaterializeTrace(cur, style));
  for (int step = 1; step < walk_length; ++step) {
    IdArray next = sparse::Node2VecStep(g.adj(), cur, prev, p, q, rng);
    result.traces.push_back(MaterializeTrace(next, style));
    prev = cur;
    cur = next;
  }
  return result;
}

BaselineResult GraphSage(const graph::Graph& g, const tensor::IdArray& frontier,
                         const std::vector<int64_t>& fanouts, Rng& rng, const Style& style,
                         bool include_seeds) {
  BaselineResult result;
  IdArray cur = frontier;
  for (int64_t fanout : fanouts) {
    // Unfused extract + select: the sliced subgraph is materialized.
    Matrix sub = sparse::SliceColumns(g.adj(), cur);
    Ensure(sub, Format::kCsc, style);
    Matrix sample = sparse::IndividualSample(sub, fanout, ValueArray{}, rng);
    if (include_seeds) {
      std::vector<IdArray> merged = {cur, sparse::RowIds(sample)};
      cur = sparse::Unique(merged);
    } else {
      cur = sparse::RowIds(sample);
    }
    result.layers.push_back(std::move(sample));
  }
  result.traces.push_back(cur);
  return result;
}

BaselineResult Ladies(const graph::Graph& g, const tensor::IdArray& frontier, int num_layers,
                      int64_t width, Rng& rng, const Style& style) {
  BaselineResult result;
  IdArray cur = frontier;
  for (int layer = 0; layer < num_layers; ++layer) {
    Matrix sub = sparse::SliceColumns(g.adj(), cur);
    // Eager bias computation: square the edge weights (materialized), send
    // them as messages, reduce onto the candidate rows.
    Matrix sq = sparse::EltwiseScalar(sub, BinaryOp::kPow, 2.0f);
    MaterializeMessages(sq, style);
    Ensure(sq, Format::kCsr, style);
    ValueArray row_probs = sparse::SumAxis(sq, 0);
    Ensure(sub, Format::kCsr, style);
    Matrix sample = sparse::CollectiveSample(sub, width, row_probs, rng);
    Matrix sample_sq = sparse::EltwiseScalar(sample, BinaryOp::kPow, 2.0f);
    Ensure(sample_sq, Format::kCsr, style);
    ValueArray selected = sparse::SumAxis(sample_sq, 0);
    Matrix weighted = NormalizeSample(sample, selected, style);
    cur = sparse::RowIds(sample);
    result.layers.push_back(std::move(weighted));
  }
  result.traces.push_back(cur);
  return result;
}

BaselineResult FastGcn(const graph::Graph& g, const tensor::IdArray& frontier, int num_layers,
                       int64_t width, Rng& rng, const Style& style) {
  BaselineResult result;
  // Static degree-based importance, recomputed per batch in eager mode.
  Ensure(g.adj(), Format::kCsr, style);
  ValueArray q = sparse::SumAxis(g.adj(), 0);
  IdArray cur = frontier;
  for (int layer = 0; layer < num_layers; ++layer) {
    Matrix sub = sparse::SliceColumns(g.adj(), cur);
    Ensure(sub, Format::kCsr, style);
    Matrix sample = sparse::CollectiveSample(sub, width, q, rng);
    ValueArray selected = sparse::GatherValues(q, sparse::RowIds(sample));
    Matrix weighted = NormalizeSample(sample, selected, style);
    cur = sparse::RowIds(sample);
    result.layers.push_back(std::move(weighted));
  }
  result.traces.push_back(cur);
  return result;
}

BaselineResult Asgcn(const graph::Graph& g, const tensor::IdArray& frontier, int num_layers,
                     int64_t width, EagerModel& model, Rng& rng, const Style& style) {
  GS_CHECK(g.features().defined());
  if (!model.as_w.defined()) {
    model.as_w = InitWeight(g.features().cols(), 1, 0xA5C0);
  }
  // Recomputed per batch: eager mode has no batch-invariant caching.
  Tensor h = tensor::BinaryScalar(BinaryOp::kAdd,
                                  tensor::Relu(tensor::MatMul(g.features(), model.as_w)),
                                  1e-6f);
  BaselineResult result;
  IdArray cur = frontier;
  for (int layer = 0; layer < num_layers; ++layer) {
    Matrix sub = sparse::SliceColumns(g.adj(), cur);
    Matrix scored = sparse::Broadcast(sub, BinaryOp::kMul, h.array(), 0);
    MaterializeMessages(scored, style);
    Ensure(scored, Format::kCsr, style);
    ValueArray row_probs = sparse::SumAxis(scored, 0);
    Ensure(sub, Format::kCsr, style);
    Matrix sample = sparse::CollectiveSample(sub, width, row_probs, rng);
    Matrix sample_scored = sparse::Broadcast(sample, BinaryOp::kMul, h.array(), 0);
    Ensure(sample_scored, Format::kCsr, style);
    ValueArray selected = sparse::SumAxis(sample_scored, 0);
    Matrix weighted = NormalizeSample(sample, selected, style);
    cur = sparse::RowIds(sample);
    result.layers.push_back(std::move(weighted));
  }
  result.traces.push_back(cur);
  return result;
}

BaselineResult Pass(const graph::Graph& g, const tensor::IdArray& frontier,
                    const std::vector<int64_t>& fanouts, int hidden, EagerModel& model,
                    Rng& rng, const Style& style) {
  GS_CHECK(g.features().defined());
  const int64_t d = g.features().cols();
  if (!model.pass_w1.defined()) {
    model.pass_w1 = InitWeight(d, hidden, 0xF001);
    model.pass_w2 = InitWeight(d, hidden, 0xF002);
    model.pass_w3 = InitWeight(1, 3, 0xF003, 0.5f);
  }

  BaselineResult result;
  IdArray cur = frontier;
  // PASS updates its model per batch, so the projections are recomputed
  // every time in all systems.
  Tensor u1 = tensor::MatMul(g.features(), model.pass_w1);
  Tensor u2 = tensor::MatMul(g.features(), model.pass_w2);
  Tensor w3 = tensor::Softmax(model.pass_w3);

  for (int64_t fanout : fanouts) {
    Matrix sub = sparse::SliceColumns(g.adj(), cur);
    Tensor c = tensor::GatherRows(g.features(), cur);
    Tensor c1 = tensor::MatMul(c, model.pass_w1);
    Tensor c2 = tensor::MatMul(c, model.pass_w2);
    Tensor a1 = EdgeDot(sub, u1, c1, style);
    Tensor a2 = EdgeDot(sub, u2, c2, style);
    Ensure(sub, Format::kCsc, style);
    ValueArray degree = sparse::SumAxis(sub, 1);
    Matrix a3m = sparse::Broadcast(sub, BinaryOp::kDiv, degree, 1);
    Tensor a3 = MaterializeMessages(a3m, style);
    std::vector<Tensor> heads = {a1, a2, a3};
    Tensor att = tensor::StackColumns(heads);
    Tensor mixed = tensor::Relu(tensor::MatMul(att, tensor::Transpose(w3)));
    Matrix sample = sparse::IndividualSample(sub, fanout, mixed.array(), rng);
    cur = sparse::RowIds(sample);
    result.layers.push_back(std::move(sample));
  }
  result.traces.push_back(cur);
  return result;
}

BaselineResult Shadow(const graph::Graph& g, const tensor::IdArray& frontier, int depth,
                      int64_t fanout, Rng& rng, const Style& style) {
  BaselineResult result;
  IdArray cur = frontier;
  std::vector<IdArray> collected = {frontier};
  for (int layer = 0; layer < depth; ++layer) {
    Matrix sub = sparse::SliceColumns(g.adj(), cur);
    Ensure(sub, Format::kCsc, style);
    Matrix sample = sparse::IndividualSample(sub, fanout, ValueArray{}, rng);
    cur = sparse::RowIds(sample);
    collected.push_back(cur);
  }
  IdArray nodes = sparse::Unique(collected);
  Matrix cols = sparse::SliceColumns(g.adj(), nodes);
  Ensure(cols, Format::kCsr, style);  // row slicing wants CSR: pay conversion
  Matrix induced = sparse::SliceRows(cols, nodes);
  result.layers.push_back(std::move(induced));
  result.traces.push_back(nodes);
  return result;
}

}  // namespace gs::baselines::eager
