// Eager (per-operator, no IR) implementations of the seven evaluated
// algorithms, shared by the DGL- and PyG-style baselines. The `Style` knobs
// model the system-level behaviours the paper attributes to those systems:
// greedy per-operator format conversion and message materialization
// (update_all's copy_e / u_mul_v stages write edge data to memory before
// reducing it).

#ifndef GSAMPLER_BASELINES_EAGER_H_
#define GSAMPLER_BASELINES_EAGER_H_

#include "baselines/baselines.h"

namespace gs::baselines::eager {

struct Style {
  // Convert each operator's input matrix to that operator's single best
  // format before running it (conversion cost charged), as DGL does.
  bool greedy_formats = true;
  // Materialize intermediate edge messages (copy_e / gathered endpoint
  // features) instead of fusing into the consumer.
  bool message_materialization = true;
};

struct EagerModel {
  // Lazily initialized model tensors for the model-driven algorithms.
  tensor::Tensor pass_w1, pass_w2, pass_w3;
  tensor::Tensor as_w;
};

BaselineResult DeepWalk(const graph::Graph& g, const tensor::IdArray& frontier,
                        int walk_length, Rng& rng, const Style& style);
BaselineResult Node2Vec(const graph::Graph& g, const tensor::IdArray& frontier,
                        int walk_length, float p, float q, Rng& rng, const Style& style);
BaselineResult GraphSage(const graph::Graph& g, const tensor::IdArray& frontier,
                         const std::vector<int64_t>& fanouts, Rng& rng, const Style& style,
                         bool include_seeds = false);
BaselineResult Ladies(const graph::Graph& g, const tensor::IdArray& frontier, int num_layers,
                      int64_t width, Rng& rng, const Style& style);
BaselineResult FastGcn(const graph::Graph& g, const tensor::IdArray& frontier, int num_layers,
                       int64_t width, Rng& rng, const Style& style);
BaselineResult Asgcn(const graph::Graph& g, const tensor::IdArray& frontier, int num_layers,
                     int64_t width, EagerModel& model, Rng& rng, const Style& style);
BaselineResult Pass(const graph::Graph& g, const tensor::IdArray& frontier,
                    const std::vector<int64_t>& fanouts, int hidden, EagerModel& model,
                    Rng& rng, const Style& style);
BaselineResult Shadow(const graph::Graph& g, const tensor::IdArray& frontier, int depth,
                      int64_t fanout, Rng& rng, const Style& style);

}  // namespace gs::baselines::eager

#endif  // GSAMPLER_BASELINES_EAGER_H_
