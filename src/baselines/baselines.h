// Baseline graph-sampling systems (Table 3 / Section 5.1 of the paper),
// re-implemented from their published designs on the same simulated-device
// substrate so the comparison isolates exactly what the paper isolates:
//
//  - DGL      (GPU/CPU): message-passing APIs, eager per-operator execution,
//              greedy per-operator format conversion, explicit message
//              materialization for compute steps; supports all 7 evaluated
//              algorithms (except Node2Vec on GPU) but times out on CPU for
//              the complex algorithms on the large graphs.
//  - PyG      (GPU/CPU): GPU support only for DeepWalk; CPU implementations
//              for the simple algorithms and ShaDow; no UVA.
//  - SkyWalker: vertex-centric GPU walker with alias sampling; walks and
//              GraphSAGE only; per-step walker-queue management kernels.
//  - GunRock  : frontier advance/filter model; GraphSAGE only; no UVA.
//  - cuGraph  : bulk-oriented library; pays full-graph renumbering per call,
//              which is what makes it slow for mini-batch sampling
//              (Section 5.2); cannot load the UVA-resident PP graph.
//
// Every baseline runs the *same algorithm logic* (validated against
// gSampler's samplers in the tests); they differ in the system-level
// behaviours above.

#ifndef GSAMPLER_BASELINES_BASELINES_H_
#define GSAMPLER_BASELINES_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "device/profile.h"
#include "graph/graph.h"
#include "sparse/matrix.h"
#include "tensor/tensor.h"

namespace gs::baselines {

// Why a (system, algorithm, graph) cell is empty in Figures 7/8.
enum class Availability {
  kSupported,
  kNotImplemented,  // "N/A" — the system lacks the algorithm (or UVA)
  kTimeout,         // "TO"  — the paper reports >10h; we don't run it
};

struct BaselineResult {
  std::vector<sparse::Matrix> layers;  // per-layer samples (empty for walks)
  std::vector<tensor::IdArray> traces;  // per-step walk traces
};

class Baseline {
 public:
  virtual ~Baseline() = default;

  virtual const std::string& system() const = 0;
  virtual Availability Check(const std::string& algorithm) const = 0;
  // Samples one mini-batch; Check() must have returned kSupported.
  virtual BaselineResult SampleBatch(const std::string& algorithm,
                                     const tensor::IdArray& frontier, Rng& rng) = 0;
};

// All baseline system names in paper order.
std::vector<std::string> AllBaselineSystems();

// Creates a baseline bound to `g`. Valid systems: "DGL-GPU", "DGL-CPU",
// "PyG-GPU", "PyG-CPU", "SkyWalker", "GunRock", "cuGraph".
std::unique_ptr<Baseline> MakeBaseline(const std::string& system, const graph::Graph& g);

// The device profile a system executes on ("GPU" systems -> the given GPU
// profile; CPU systems -> their calibrated CpuSim profile).
device::DeviceProfile ProfileFor(const std::string& system,
                                 const device::DeviceProfile& gpu_profile);

// --- RNG-mirroring entry points (gs::oracle) -------------------------------
//
// The differential oracle compares an eager baseline against the compiled
// engine under *mirrored* RNG streams: a SamplerSession seeded with S derives
// the stream for mini-batch j as Rng(S).Fork(j), so an eager twin driven by
// MirroredBatchRng(S, j) consumes randomness from the same independent
// stream the engine used for that batch.

Rng MirroredBatchRng(uint64_t seed, uint64_t batch_index);

// True when `algorithm` has an eager per-operator twin (the Table-3
// implementations in baselines/eager.h) usable for differential checks.
bool HasEagerTwin(const std::string& algorithm);

// Samples one batch of `algorithm` through its eager twin with the
// registry-default parameters (the same parameters MakeAlgorithm uses, so
// the compiled and eager sides draw from identical distributions). `model`
// carries the lazily seeded tensors of the model-driven algorithms; the
// seeds match algorithms.cc, keeping both sides' weights equal.
// Precondition: HasEagerTwin(algorithm).
struct EagerTwinState;  // opaque; holds the eager model tensors
std::shared_ptr<EagerTwinState> MakeEagerTwinState();
BaselineResult SampleEagerTwin(const std::string& algorithm, const graph::Graph& g,
                               const tensor::IdArray& frontier, EagerTwinState& state,
                               Rng& rng);

}  // namespace gs::baselines

#endif  // GSAMPLER_BASELINES_BASELINES_H_
