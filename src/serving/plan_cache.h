// Compiled-plan registry with LRU eviction under a byte budget.
//
// The cache holds warmed-up core::SamplerSession objects, each of which
// shares an immutable core::CompiledPlan: program traced, passes run,
// batch-invariant values pre-computed, layouts calibrated, and Warmup()
// executed so the session is safe for concurrent const sampling. Building
// one is the expensive part of serving a cold request (trace + pass
// pipeline + calibration executions), so entries are cached keyed by
// everything that affects the compiled artifact: algorithm, dataset, device
// profile, pass configuration, and effective fanouts.
//
// Because the plan half is serializable, the cache can persist its plans to
// a directory (SaveAll) and warm-start from one (LoadFrom): loaded plans
// skip the pass pipeline AND layout calibration — a restarted server only
// re-binds tensors and re-runs pre-computation.
//
// Memory: a session pins its pre-computed tensors/matrices in device memory
// (SamplerSession::ResidentBytes). The cache enforces its own byte budget
// with least-recently-used eviction and mirrors the pinned total into the
// CachingAllocator's reserved-bytes stat — attribution only; the bytes are
// already counted in bytes_in_use, so no capacity is double-charged.

#ifndef GSAMPLER_SERVING_PLAN_CACHE_H_
#define GSAMPLER_SERVING_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "device/allocator.h"

namespace gs::serving {

// Everything that distinguishes one compiled plan from another. Canonical()
// is the cache key and the request-compatibility test: two admitted
// requests may share one coalesced execution iff their keys are equal.
struct PlanKey {
  std::string algorithm;
  std::string dataset;
  std::string device;       // DeviceProfile name
  std::string pass_config;  // SamplerOptions digest (see PassConfigDigest)
  std::vector<int64_t> fanouts;  // effective (possibly shed) fanouts
  // Multi-shard serving: the shard whose device this session is warmed on.
  // 0 (single-device and shard 0) keeps the canonical form — and therefore
  // persisted plan digests — unchanged; coalescing across shards is ruled
  // out automatically because the shard is part of the key.
  int shard = 0;
  // Dynamic graphs (gs::dyn): the snapshot the request resolved at
  // admission. Only endpoints backed by a graph::GraphStore set `dynamic`,
  // which appends a `|g<epoch>:<digest>` canonical component — every epoch
  // is a distinct session key (coalescing never crosses epochs), while
  // static endpoints' canonical forms, and every previously persisted plan
  // artifact, are byte-for-byte unchanged.
  bool dynamic = false;
  uint64_t graph_epoch = 0;
  uint64_t graph_digest = 0;

  std::string Canonical() const;
  // The canonical form WITHOUT the graph-version component: the epoch-
  // independent compile identity (dyn::PlanTable's key). Equal to
  // Canonical() for static keys.
  std::string CompileKey() const;
  // Inverse of Canonical() (persisted plan-index lines). Throws gs::Error on
  // malformed input.
  static PlanKey Parse(const std::string& canonical);
};

// Compact digest of the pass configuration. Covers every SamplerOptions
// field that can change the compiled artifact (including the seed, the
// calibration batch count, the super-batch policy, and the auto-tune memory
// budget). The only fields excluded are verify_passes / dump_ir_after_passes,
// which by construction cannot affect the artifact (they add checks and
// logging only).
std::string PassConfigDigest(const core::SamplerOptions& options);

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t resident_bytes = 0;
  int64_t entries = 0;
  // Times the allocator's OOM ladder asked this cache to shrink.
  int64_t pressure_releases = 0;
  // Persisted-plan traffic (SaveAll / LoadFrom). Loads count as neither hits
  // nor misses: a warm-started server's first request is a hit.
  int64_t plans_saved = 0;
  int64_t plans_loaded = 0;
};

class PlanCache {
 public:
  // `allocator` (optional) receives AdjustReserved() calls mirroring the
  // cache's resident bytes.
  PlanCache(int64_t budget_bytes, device::CachingAllocator* allocator);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  using Factory = std::function<std::shared_ptr<core::SamplerSession>()>;

  // Returns the session for `key`, building it with `factory` on a miss.
  // Builds are serialized under one mutex: plan construction and warmup
  // materialize lazily cached structures on *shared* objects (the base
  // graph's format caches), which concurrent builds would race on. Lookups
  // of already-built plans only briefly take the table mutex.
  // `compile_ns` (optional) receives the build wall time (0 on a hit);
  // `hit` (optional) receives whether the plan was already resident.
  std::shared_ptr<core::SamplerSession> GetOrBuild(const PlanKey& key, const Factory& factory,
                                                   bool* hit = nullptr,
                                                   int64_t* compile_ns = nullptr);

  // Inserts (or replaces) a ready session for `key`. Used by the background
  // replanner (gs::dyn) to publish a freshly recompiled session so the next
  // request at that epoch hits instead of rebuilding; counts as neither hit
  // nor miss.
  void Insert(const PlanKey& key, std::shared_ptr<core::SamplerSession> session);

  // Persists every resident entry's CompiledPlan into `dir` (created if
  // missing): one `<digest>.plan` artifact per entry plus an `index.txt`
  // mapping digests back to canonical keys. Returns the number of plans
  // written. Safe to call while serving (entries are snapshotted).
  int64_t SaveAll(const std::string& dir);

  // Warm-starts from a directory written by SaveAll. For every index entry
  // whose key is not already resident, loads the plan artifact and calls
  // `activate` to turn it into a warmed-up session (re-binding tensors and
  // running Warmup); `activate` may return null to skip a plan this server
  // cannot serve (unknown endpoint, different device, stale pass config).
  // Unreadable or corrupt artifacts are skipped with a warning. Returns the
  // number of sessions activated.
  using Activator = std::function<std::shared_ptr<core::SamplerSession>(
      const PlanKey& key, std::shared_ptr<core::CompiledPlan> plan)>;
  int64_t LoadFrom(const std::string& dir, const Activator& activate);

  // Memory-pressure response (registered with the allocator's OOM ladder
  // when an allocator was supplied): evicts least-recently-used plans until
  // at least `bytes_needed` of resident bytes were released or the cache is
  // empty. Returns the released byte total. Also callable directly.
  int64_t ReleaseMemory(int64_t bytes_needed);

  PlanCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<core::SamplerSession> session;
    int64_t resident_bytes = 0;
    uint64_t last_used = 0;  // LRU tick
  };

  void InsertLocked(const std::string& canonical, Entry entry);
  void EvictOverBudgetLocked(const std::string& keep_key);
  // Evicts the LRU entry (skipping `keep_key` when non-empty); returns its
  // resident bytes, or -1 when nothing evictable remains.
  int64_t EvictOneLocked(const std::string& keep_key);

  const int64_t budget_bytes_;
  device::CachingAllocator* allocator_;
  int64_t pressure_handler_id_ = 0;  // 0 = not registered
  mutable std::mutex mutex_;        // guards table + stats
  std::mutex build_mutex_;          // serializes plan construction
  std::map<std::string, Entry> entries_;
  PlanCacheStats stats_;
  uint64_t tick_ = 0;
};

}  // namespace gs::serving

#endif  // GSAMPLER_SERVING_PLAN_CACHE_H_
