// Request/response types for the embedded sampling service (gs::serving).
//
// A SampleRequest names an endpoint (algorithm x dataset), carries the seed
// nodes to sample for, a per-request RNG seed, and scheduling metadata:
// tenant (fair queueing), priority, and a relative deadline. The response
// returns the materialized minibatch (one core::Value per program output)
// plus per-stage latency so callers can see where time went.

#ifndef GSAMPLER_SERVING_REQUEST_H_
#define GSAMPLER_SERVING_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.h"
#include "fault/status.h"
#include "tensor/tensor.h"

namespace gs::serving {

enum class Status {
  kOk,
  kRejected,          // admission refused: queue full or infeasible deadline
  kDeadlineExceeded,  // expired while queued; never executed
  kFailed,            // unknown endpoint or execution error
  kDegraded,          // partial result: some shards had no live replica
};

const char* StatusName(Status status);

struct SampleRequest {
  // Endpoint key; must match a registered endpoint.
  std::string algorithm;
  std::string dataset;
  // Seed nodes this request wants minibatches for.
  tensor::IdArray seeds;
  // RNG stream: results are a pure function of (seeds, seed) for a given
  // plan, independent of which other requests share the execution.
  uint64_t seed = 0;
  // Per-layer fanouts; empty = the endpoint's defaults. Part of the plan
  // key: requests with different fanouts compile (and cache) distinct plans.
  std::vector<int64_t> fanouts;
  // Fair-queueing bucket.
  std::string tenant = "default";
  // Larger = more urgent; breaks ties among equal deadlines.
  int priority = 0;
  // Relative completion deadline; zero = none. Admission rejects requests
  // whose deadline cannot plausibly be met, and queued requests past their
  // deadline complete as kDeadlineExceeded without executing.
  std::chrono::nanoseconds deadline{0};
};

// Wall-clock latency breakdown of one served request.
struct StageBreakdown {
  int64_t queue_wait_ns = 0;  // admission -> dequeued by a worker
  int64_t compile_ns = 0;     // plan build + warmup (0 on a plan-cache hit)
  int64_t execute_ns = 0;     // sampling execution (shared across the group)
  int64_t feature_ns = 0;     // feature gather through the hot-set cache
  int64_t scatter_ns = 0;     // splitting group results back per request
  int64_t total_ns = 0;       // submit -> response fulfilled (server-observed)
  bool plan_cache_hit = false;
};

struct SampleResponse {
  Status status = Status::kOk;
  uint64_t request_id = 0;
  // One Value per program output (kOk only).
  std::vector<core::Value> outputs;
  // How many requests shared this request's execution (1 = served alone).
  int group_size = 1;
  // Feature serving (ServerOptions::serve_features): the feature rows for
  // this request's result frontier, gathered through the per-tenant hot-set
  // cache. `features` row i is the feature vector of node `feature_ids[i]`;
  // bit-identical to an eager per-node lookup regardless of cache state.
  // Undefined when the server does not serve features (or the dataset has
  // none).
  tensor::Tensor features;
  tensor::IdArray feature_ids;
  // Fanout shedding was applied under overload, or (status kDegraded) the
  // response covers only part of the requested seeds.
  bool degraded = false;
  // Fraction of the request's (valid) seeds whose home shard still had a
  // live replica; 1.0 for full service. With status kDegraded the outputs
  // cover exactly the covered seeds, in request order.
  double coverage = 1.0;
  // Suggested back-off before resubmitting (kRejected only).
  std::chrono::nanoseconds retry_after{0};
  StageBreakdown stages;
  std::string error;  // kFailed only
  // Failure classification (kRejected/kFailed): what kind of error this
  // was after the server's recovery ladder (transient retries, fanout
  // shedding) gave up. kOk status always carries code kOk.
  fault::ErrorCode code = fault::ErrorCode::kOk;
};

}  // namespace gs::serving

#endif  // GSAMPLER_SERVING_REQUEST_H_
