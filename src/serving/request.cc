#include "serving/request.h"

namespace gs::serving {

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "OK";
    case Status::kRejected:
      return "REJECTED";
    case Status::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Status::kFailed:
      return "FAILED";
    case Status::kDegraded:
      return "DEGRADED";
  }
  return "UNKNOWN";
}

}  // namespace gs::serving
