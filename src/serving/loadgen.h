// Synthetic open-loop load generator for gs::serving::Server.
//
// Submits requests at Poisson arrival times (open loop: arrivals don't wait
// for completions, so overload actually overloads the server) across a
// configurable number of tenants, then waits for every response and reports
// client-observed outcomes and latency percentiles. Used by the CLI's
// --serve mode and bench/serving_throughput.

#ifndef GSAMPLER_SERVING_LOADGEN_H_
#define GSAMPLER_SERVING_LOADGEN_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "serving/server.h"

namespace gs::serving {

struct LoadGenOptions {
  std::string algorithm = "GraphSAGE";
  std::string dataset;
  int64_t num_requests = 200;
  // Offered load in requests/second (wall clock). Arrivals are Poisson.
  double offered_rps = 500.0;
  // Seed nodes per request, drawn from the graph's train ids (or uniform
  // node ids when the dataset has none).
  int64_t batch_size = 64;
  int num_tenants = 4;
  // Per-request fanouts; empty = endpoint defaults.
  std::vector<int64_t> fanouts;
  // Relative deadline attached to every request; zero = none.
  std::chrono::nanoseconds deadline{0};
  uint64_t seed = 0x5EED;
};

struct LoadGenReport {
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t deadline_exceeded = 0;
  int64_t failed = 0;
  int64_t degraded = 0;
  // kDegraded partial responses (some shards had no live replica). Counted
  // as answered, never as failed.
  int64_t partial = 0;
  // Requests whose response reports group_size > 1.
  int64_t coalesced = 0;
  // Client-observed (server total_ns) latency of OK responses.
  int64_t p50_ns = 0;
  int64_t p95_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;
  double wall_seconds = 0.0;
  double achieved_rps = 0.0;  // OK responses per wall second

  std::string ToString() const;
};

// Blocks until every submitted request has a response.
LoadGenReport RunOpenLoop(Server& server, const graph::Graph& graph,
                          const LoadGenOptions& options);

}  // namespace gs::serving

#endif  // GSAMPLER_SERVING_LOADGEN_H_
