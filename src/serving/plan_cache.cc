#include "serving/plan_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/timer.h"

namespace gs::serving {

std::string PlanKey::CompileKey() const {
  std::ostringstream out;
  out << algorithm << '|' << dataset << '|' << device << '|' << pass_config << '|';
  for (int64_t f : fanouts) {
    out << f << ',';
  }
  if (shard > 0) {
    out << '|' << 's' << shard;
  }
  return out.str();
}

std::string PlanKey::Canonical() const {
  std::string out = CompileKey();
  if (dynamic) {
    std::ostringstream g;
    g << "|g" << graph_epoch << ':' << std::hex << graph_digest;
    out += g.str();
  }
  return out;
}

PlanKey PlanKey::Parse(const std::string& canonical) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(canonical);
  while (std::getline(in, part, '|')) {
    parts.push_back(part);
  }
  // 4 parts: trailing '|' with no fanouts; optional suffixes after the
  // fanouts: "sN" (shard) then "g<epoch>:<digest>" (graph version).
  GS_CHECK(parts.size() >= 4 && parts.size() <= 7)
      << "malformed plan key: '" << canonical << "'";
  PlanKey key;
  key.algorithm = parts[0];
  key.dataset = parts[1];
  key.device = parts[2];
  key.pass_config = parts[3];
  for (size_t p = 5; p < parts.size(); ++p) {
    const std::string& suffix = parts[p];
    GS_CHECK(suffix.size() > 1) << "malformed plan key suffix: '" << canonical << "'";
    if (suffix[0] == 's') {
      char* end = nullptr;
      key.shard = static_cast<int>(std::strtol(suffix.c_str() + 1, &end, 10));
      GS_CHECK(end != nullptr && *end == '\0' && key.shard > 0)
          << "malformed plan key shard: '" << canonical << "'";
    } else if (suffix[0] == 'g') {
      const size_t colon = suffix.find(':');
      GS_CHECK(colon != std::string::npos && colon > 1 && colon + 1 < suffix.size())
          << "malformed plan key graph version: '" << canonical << "'";
      char* end = nullptr;
      key.graph_epoch = std::strtoull(suffix.c_str() + 1, &end, 10);
      GS_CHECK(end != nullptr && *end == ':')
          << "malformed plan key graph version: '" << canonical << "'";
      key.graph_digest = std::strtoull(suffix.c_str() + colon + 1, &end, 16);
      GS_CHECK(end != nullptr && *end == '\0')
          << "malformed plan key graph version: '" << canonical << "'";
      key.dynamic = true;
    } else {
      GS_CHECK(false) << "malformed plan key suffix: '" << canonical << "'";
    }
  }
  if (parts.size() >= 5 && !parts[4].empty()) {
    std::istringstream fin(parts[4]);
    while (std::getline(fin, part, ',')) {
      GS_CHECK(!part.empty()) << "malformed plan key fanouts: '" << canonical << "'";
      char* end = nullptr;
      key.fanouts.push_back(std::strtoll(part.c_str(), &end, 10));
      GS_CHECK(end != nullptr && *end == '\0') << "malformed plan key fanouts: '" << canonical
                                               << "'";
    }
  }
  return key;
}

std::string PassConfigDigest(const core::SamplerOptions& options) {
  // Exhaustive over artifact-affecting fields; verify_passes and
  // dump_ir_after_passes are deliberately excluded (instrumentation only —
  // they add checks/logging but cannot change the compiled plan).
  std::ostringstream out;
  out << "fus" << options.enable_fusion << options.fuse_extract_select << options.fuse_edge_maps
      << options.rewrite_sddmm << "pre" << options.enable_preprocessing << "lay"
      << options.enable_layout_selection << options.greedy_when_layout_disabled << "sb"
      << options.super_batch << "mem" << options.memory_budget_bytes << "cal"
      << options.calibration_batches << "seed" << options.seed;
  return out.str();
}

PlanCache::PlanCache(int64_t budget_bytes, device::CachingAllocator* allocator)
    : budget_bytes_(budget_bytes), allocator_(allocator) {
  GS_CHECK_GT(budget_bytes, 0);
  if (allocator_ != nullptr) {
    // Join the allocator's OOM ladder: under memory pressure the cache gives
    // back plan-resident bytes before an allocation is allowed to fail.
    pressure_handler_id_ = allocator_->RegisterPressureHandler(
        [this](int64_t bytes_needed) { return ReleaseMemory(bytes_needed); });
  }
}

PlanCache::~PlanCache() {
  // Unregister BEFORE taking mutex_: Unregister blocks until any in-flight
  // handler invocation (which takes mutex_ via ReleaseMemory) returns.
  // Locking mutex_ first would deadlock against that invocation.
  if (allocator_ != nullptr && pressure_handler_id_ != 0) {
    allocator_->UnregisterPressureHandler(pressure_handler_id_);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (allocator_ != nullptr && stats_.resident_bytes > 0) {
    allocator_->AdjustReserved(-stats_.resident_bytes);
  }
}

std::shared_ptr<core::SamplerSession> PlanCache::GetOrBuild(const PlanKey& key,
                                                            const Factory& factory, bool* hit,
                                                            int64_t* compile_ns) {
  const std::string canonical = key.Canonical();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      if (hit != nullptr) {
        *hit = true;
      }
      if (compile_ns != nullptr) {
        *compile_ns = 0;
      }
      return it->second.session;
    }
  }

  // Build outside the table mutex (lookups stay fast) but under the build
  // mutex (construction touches shared lazily-cached graph structures).
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  {
    // Another thread may have built this plan while we waited.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      if (hit != nullptr) {
        *hit = true;
      }
      if (compile_ns != nullptr) {
        *compile_ns = 0;
      }
      return it->second.session;
    }
  }

  Timer timer;
  std::shared_ptr<core::SamplerSession> session = factory();
  GS_CHECK(session != nullptr) << "plan factory returned null for " << canonical;
  GS_CHECK(session->warmed_up()) << "plan factory must Warmup() the session: " << canonical;
  const int64_t elapsed = timer.ElapsedNanos();

  Entry entry;
  entry.session = session;
  entry.resident_bytes = session->ResidentBytes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    InsertLocked(canonical, std::move(entry));
  }
  GS_LOG(Debug) << "plan cache: built " << canonical << " in " << elapsed / 1000000 << " ms";
  if (hit != nullptr) {
    *hit = false;
  }
  if (compile_ns != nullptr) {
    *compile_ns = elapsed;
  }
  return session;
}

void PlanCache::Insert(const PlanKey& key, std::shared_ptr<core::SamplerSession> session) {
  GS_CHECK(session != nullptr);
  GS_CHECK(session->warmed_up()) << "Insert requires a warmed-up session";
  Entry entry;
  entry.resident_bytes = session->ResidentBytes();
  entry.session = std::move(session);
  const std::string canonical = key.Canonical();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(canonical);
  if (it != entries_.end()) {
    // Replace: retire the old entry's accounting first.
    stats_.resident_bytes -= it->second.resident_bytes;
    stats_.entries -= 1;
    if (allocator_ != nullptr) {
      allocator_->AdjustReserved(-it->second.resident_bytes);
    }
    entries_.erase(it);
  }
  InsertLocked(canonical, std::move(entry));
}

void PlanCache::InsertLocked(const std::string& canonical, Entry entry) {
  entry.last_used = ++tick_;
  stats_.resident_bytes += entry.resident_bytes;
  stats_.entries += 1;
  if (allocator_ != nullptr) {
    allocator_->AdjustReserved(entry.resident_bytes);
  }
  entries_.emplace(canonical, std::move(entry));
  EvictOverBudgetLocked(canonical);
}

int64_t PlanCache::SaveAll(const std::string& dir) {
  // Snapshot under the lock, serialize outside it: Serialize() walks the
  // (frozen, immutable) plan only, so concurrent serving is unaffected.
  std::vector<std::pair<std::string, std::shared_ptr<core::CompiledPlan>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(entries_.size());
    for (const auto& [canonical, entry] : entries_) {
      snapshot.emplace_back(canonical, entry.session->plan_ptr());
    }
  }
  std::filesystem::create_directories(dir);
  std::ostringstream index;
  int64_t saved = 0;
  for (const auto& [canonical, plan] : snapshot) {
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(plan->Digest()));
    core::SavePlanFile(*plan, dir + "/" + digest + ".plan");
    index << digest << ' ' << canonical << '\n';
    ++saved;
  }
  std::ofstream index_file(dir + "/index.txt", std::ios::trunc);
  GS_CHECK(index_file.good()) << "cannot write plan index: " << dir << "/index.txt";
  index_file << index.str();
  index_file.flush();
  GS_CHECK(index_file.good()) << "failed writing plan index: " << dir << "/index.txt";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.plans_saved += saved;
  }
  GS_LOG(Info) << "plan cache: saved " << saved << " plan(s) to " << dir;
  return saved;
}

int64_t PlanCache::LoadFrom(const std::string& dir, const Activator& activate) {
  GS_CHECK(activate != nullptr);
  std::ifstream index(dir + "/index.txt");
  if (!index.good()) {
    GS_LOG(Info) << "plan cache: no plan index at " << dir << " (cold start)";
    return 0;
  }
  int64_t loaded = 0;
  std::string line;
  // Activation executes sampling (Warmup) on shared graph structures —
  // serialize it like any other build.
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  while (std::getline(index, line)) {
    if (line.empty()) {
      continue;
    }
    // Per-artifact fault isolation: one corrupted index line or plan file
    // must cost exactly that plan, never the whole warm start — a thrown
    // Error here would unwind out of Server::Start's warm-start block and
    // abandon every remaining (valid) artifact.
    const size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      GS_LOG(Warning) << "plan cache: skipping malformed index line: '" << line << "'";
      continue;
    }
    const std::string digest = line.substr(0, space);
    const std::string canonical = line.substr(space + 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (entries_.find(canonical) != entries_.end()) {
        continue;  // already resident
      }
    }
    try {
      const PlanKey key = PlanKey::Parse(canonical);
      std::shared_ptr<core::CompiledPlan> plan =
          core::LoadPlanFile(dir + "/" + digest + ".plan");
      std::shared_ptr<core::SamplerSession> session = activate(key, std::move(plan));
      if (session == nullptr) {
        continue;  // activator declined (unknown endpoint / wrong device)
      }
      GS_CHECK(session->warmed_up()) << "activator must Warmup() the session: " << canonical;
      Entry entry;
      entry.resident_bytes = session->ResidentBytes();
      entry.session = std::move(session);
      std::lock_guard<std::mutex> lock(mutex_);
      InsertLocked(canonical, std::move(entry));
      ++stats_.plans_loaded;
      ++loaded;
    } catch (const std::exception& e) {
      // Covers gs::Error (digest mismatch from Deserialize, malformed
      // canonical keys, I/O failures) and any std failure underneath them.
      GS_LOG(Warning) << "plan cache: skipping persisted plan " << canonical << ": " << e.what();
    }
  }
  if (loaded > 0) {
    GS_LOG(Info) << "plan cache: warm-started " << loaded << " plan(s) from " << dir;
  }
  return loaded;
}

void PlanCache::EvictOverBudgetLocked(const std::string& keep_key) {
  while (stats_.resident_bytes > budget_bytes_ && entries_.size() > 1) {
    if (EvictOneLocked(keep_key) < 0) {
      break;
    }
  }
}

int64_t PlanCache::EvictOneLocked(const std::string& keep_key) {
  auto victim = entries_.end();
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!keep_key.empty() && it->first == keep_key) {
      continue;  // never evict the plan the caller is about to use
    }
    if (it->second.last_used < oldest) {
      oldest = it->second.last_used;
      victim = it;
    }
  }
  if (victim == entries_.end()) {
    return -1;
  }
  GS_LOG(Debug) << "plan cache: evicting " << victim->first << " ("
                << victim->second.resident_bytes << " bytes)";
  const int64_t released = victim->second.resident_bytes;
  stats_.resident_bytes -= released;
  stats_.entries -= 1;
  ++stats_.evictions;
  if (allocator_ != nullptr) {
    allocator_->AdjustReserved(-released);
  }
  // In-flight executions holding the shared_ptr keep the session alive; the
  // memory returns to the allocator pool when the last user drops it.
  entries_.erase(victim);
  return released;
}

int64_t PlanCache::ReleaseMemory(int64_t bytes_needed) {
  // Dropped shared_ptrs (and their freed tensors) must not run under mutex_
  // out of caution? They may: session destruction calls allocator Free, and
  // the global lock order is handlers_mutex_ -> plan-cache mutex_ ->
  // allocator mutex_, so holding mutex_ across the erase is safe. Still,
  // collect the victims' sessions and release them after unlocking so the
  // (potentially expensive) teardown does not serialize cache lookups.
  std::vector<std::shared_ptr<core::SamplerSession>> dropped;
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pressure_releases;
    while (released < bytes_needed && !entries_.empty()) {
      // Peek the victim so its session can be kept alive past the erase.
      auto victim = entries_.end();
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.last_used < oldest) {
          oldest = it->second.last_used;
          victim = it;
        }
      }
      if (victim == entries_.end()) {
        break;
      }
      dropped.push_back(victim->second.session);
      const int64_t freed = EvictOneLocked("");
      if (freed < 0) {
        break;
      }
      released += freed;
    }
  }
  dropped.clear();
  if (released > 0) {
    GS_LOG(Info) << "plan cache: released " << released << " bytes under memory pressure ("
                 << bytes_needed << " needed)";
  }
  return released;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gs::serving
