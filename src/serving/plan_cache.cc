#include "serving/plan_cache.h"

#include <limits>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/timer.h"

namespace gs::serving {

std::string PlanKey::Canonical() const {
  std::ostringstream out;
  out << algorithm << '|' << dataset << '|' << device << '|' << pass_config << '|';
  for (int64_t f : fanouts) {
    out << f << ',';
  }
  return out.str();
}

std::string PassConfigDigest(const core::SamplerOptions& options) {
  std::ostringstream out;
  out << "fus" << options.enable_fusion << options.fuse_extract_select << options.fuse_edge_maps
      << options.rewrite_sddmm << "pre" << options.enable_preprocessing << "lay"
      << options.enable_layout_selection << options.greedy_when_layout_disabled << "cal"
      << options.calibration_batches << "seed" << options.seed;
  return out.str();
}

PlanCache::PlanCache(int64_t budget_bytes, device::CachingAllocator* allocator)
    : budget_bytes_(budget_bytes), allocator_(allocator) {
  GS_CHECK_GT(budget_bytes, 0);
  if (allocator_ != nullptr) {
    // Join the allocator's OOM ladder: under memory pressure the cache gives
    // back plan-resident bytes before an allocation is allowed to fail.
    pressure_handler_id_ = allocator_->RegisterPressureHandler(
        [this](int64_t bytes_needed) { return ReleaseMemory(bytes_needed); });
  }
}

PlanCache::~PlanCache() {
  // Unregister BEFORE taking mutex_: Unregister blocks until any in-flight
  // handler invocation (which takes mutex_ via ReleaseMemory) returns.
  // Locking mutex_ first would deadlock against that invocation.
  if (allocator_ != nullptr && pressure_handler_id_ != 0) {
    allocator_->UnregisterPressureHandler(pressure_handler_id_);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (allocator_ != nullptr && stats_.resident_bytes > 0) {
    allocator_->AdjustReserved(-stats_.resident_bytes);
  }
}

std::shared_ptr<core::CompiledSampler> PlanCache::GetOrBuild(const PlanKey& key,
                                                             const Factory& factory, bool* hit,
                                                             int64_t* compile_ns) {
  const std::string canonical = key.Canonical();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      if (hit != nullptr) {
        *hit = true;
      }
      if (compile_ns != nullptr) {
        *compile_ns = 0;
      }
      return it->second.plan;
    }
  }

  // Build outside the table mutex (lookups stay fast) but under the build
  // mutex (construction touches shared lazily-cached graph structures).
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  {
    // Another thread may have built this plan while we waited.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      if (hit != nullptr) {
        *hit = true;
      }
      if (compile_ns != nullptr) {
        *compile_ns = 0;
      }
      return it->second.plan;
    }
  }

  Timer timer;
  std::shared_ptr<core::CompiledSampler> plan = factory();
  GS_CHECK(plan != nullptr) << "plan factory returned null for " << canonical;
  GS_CHECK(plan->warmed_up()) << "plan factory must Warmup() the plan: " << canonical;
  const int64_t elapsed = timer.ElapsedNanos();

  Entry entry;
  entry.plan = plan;
  entry.resident_bytes = plan->ResidentBytes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry.last_used = ++tick_;
    stats_.resident_bytes += entry.resident_bytes;
    stats_.entries += 1;
    ++stats_.misses;
    if (allocator_ != nullptr) {
      allocator_->AdjustReserved(entry.resident_bytes);
    }
    entries_.emplace(canonical, std::move(entry));
    EvictOverBudgetLocked(canonical);
  }
  GS_LOG(Debug) << "plan cache: built " << canonical << " in " << elapsed / 1000000 << " ms";
  if (hit != nullptr) {
    *hit = false;
  }
  if (compile_ns != nullptr) {
    *compile_ns = elapsed;
  }
  return plan;
}

void PlanCache::EvictOverBudgetLocked(const std::string& keep_key) {
  while (stats_.resident_bytes > budget_bytes_ && entries_.size() > 1) {
    if (EvictOneLocked(keep_key) < 0) {
      break;
    }
  }
}

int64_t PlanCache::EvictOneLocked(const std::string& keep_key) {
  auto victim = entries_.end();
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!keep_key.empty() && it->first == keep_key) {
      continue;  // never evict the plan the caller is about to use
    }
    if (it->second.last_used < oldest) {
      oldest = it->second.last_used;
      victim = it;
    }
  }
  if (victim == entries_.end()) {
    return -1;
  }
  GS_LOG(Debug) << "plan cache: evicting " << victim->first << " ("
                << victim->second.resident_bytes << " bytes)";
  const int64_t released = victim->second.resident_bytes;
  stats_.resident_bytes -= released;
  stats_.entries -= 1;
  ++stats_.evictions;
  if (allocator_ != nullptr) {
    allocator_->AdjustReserved(-released);
  }
  // In-flight executions holding the shared_ptr keep the plan alive; the
  // memory returns to the allocator pool when the last user drops it.
  entries_.erase(victim);
  return released;
}

int64_t PlanCache::ReleaseMemory(int64_t bytes_needed) {
  // Dropped shared_ptrs (and their freed tensors) must not run under mutex_
  // out of caution? They may: plan destruction calls allocator Free, and the
  // global lock order is handlers_mutex_ -> plan-cache mutex_ -> allocator
  // mutex_, so holding mutex_ across the erase is safe. Still, collect the
  // victims' plans and release them after unlocking so the (potentially
  // expensive) teardown does not serialize cache lookups.
  std::vector<std::shared_ptr<core::CompiledSampler>> dropped;
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pressure_releases;
    while (released < bytes_needed && !entries_.empty()) {
      // Peek the victim so its plan can be kept alive past the erase.
      auto victim = entries_.end();
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.last_used < oldest) {
          oldest = it->second.last_used;
          victim = it;
        }
      }
      if (victim == entries_.end()) {
        break;
      }
      dropped.push_back(victim->second.plan);
      const int64_t freed = EvictOneLocked("");
      if (freed < 0) {
        break;
      }
      released += freed;
    }
  }
  dropped.clear();
  if (released > 0) {
    GS_LOG(Info) << "plan cache: released " << released << " bytes under memory pressure ("
                 << bytes_needed << " needed)";
  }
  return released;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gs::serving
