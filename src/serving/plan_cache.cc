#include "serving/plan_cache.h"

#include <limits>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/timer.h"

namespace gs::serving {

std::string PlanKey::Canonical() const {
  std::ostringstream out;
  out << algorithm << '|' << dataset << '|' << device << '|' << pass_config << '|';
  for (int64_t f : fanouts) {
    out << f << ',';
  }
  return out.str();
}

std::string PassConfigDigest(const core::SamplerOptions& options) {
  std::ostringstream out;
  out << "fus" << options.enable_fusion << options.fuse_extract_select << options.fuse_edge_maps
      << options.rewrite_sddmm << "pre" << options.enable_preprocessing << "lay"
      << options.enable_layout_selection << options.greedy_when_layout_disabled << "cal"
      << options.calibration_batches << "seed" << options.seed;
  return out.str();
}

PlanCache::PlanCache(int64_t budget_bytes, device::CachingAllocator* allocator)
    : budget_bytes_(budget_bytes), allocator_(allocator) {
  GS_CHECK_GT(budget_bytes, 0);
}

PlanCache::~PlanCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (allocator_ != nullptr && stats_.resident_bytes > 0) {
    allocator_->AdjustReserved(-stats_.resident_bytes);
  }
}

std::shared_ptr<core::CompiledSampler> PlanCache::GetOrBuild(const PlanKey& key,
                                                             const Factory& factory, bool* hit,
                                                             int64_t* compile_ns) {
  const std::string canonical = key.Canonical();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      if (hit != nullptr) {
        *hit = true;
      }
      if (compile_ns != nullptr) {
        *compile_ns = 0;
      }
      return it->second.plan;
    }
  }

  // Build outside the table mutex (lookups stay fast) but under the build
  // mutex (construction touches shared lazily-cached graph structures).
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  {
    // Another thread may have built this plan while we waited.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(canonical);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++stats_.hits;
      if (hit != nullptr) {
        *hit = true;
      }
      if (compile_ns != nullptr) {
        *compile_ns = 0;
      }
      return it->second.plan;
    }
  }

  Timer timer;
  std::shared_ptr<core::CompiledSampler> plan = factory();
  GS_CHECK(plan != nullptr) << "plan factory returned null for " << canonical;
  GS_CHECK(plan->warmed_up()) << "plan factory must Warmup() the plan: " << canonical;
  const int64_t elapsed = timer.ElapsedNanos();

  Entry entry;
  entry.plan = plan;
  entry.resident_bytes = plan->ResidentBytes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry.last_used = ++tick_;
    stats_.resident_bytes += entry.resident_bytes;
    stats_.entries += 1;
    ++stats_.misses;
    if (allocator_ != nullptr) {
      allocator_->AdjustReserved(entry.resident_bytes);
    }
    entries_.emplace(canonical, std::move(entry));
    EvictOverBudgetLocked(canonical);
  }
  GS_LOG(Debug) << "plan cache: built " << canonical << " in " << elapsed / 1000000 << " ms";
  if (hit != nullptr) {
    *hit = false;
  }
  if (compile_ns != nullptr) {
    *compile_ns = elapsed;
  }
  return plan;
}

void PlanCache::EvictOverBudgetLocked(const std::string& keep_key) {
  while (stats_.resident_bytes > budget_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) {
        continue;  // never evict the plan the caller is about to use
      }
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      break;
    }
    GS_LOG(Debug) << "plan cache: evicting " << victim->first << " ("
                  << victim->second.resident_bytes << " bytes)";
    stats_.resident_bytes -= victim->second.resident_bytes;
    stats_.entries -= 1;
    ++stats_.evictions;
    if (allocator_ != nullptr) {
      allocator_->AdjustReserved(-victim->second.resident_bytes);
    }
    // In-flight executions holding the shared_ptr keep the plan alive; the
    // memory returns to the allocator pool when the last user drops it.
    entries_.erase(victim);
  }
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gs::serving
