// gs::serving::Server — embedded multi-tenant sampling service.
//
// Concurrent SampleRequests flow through four stages:
//
//   1. Admission (Submit, caller thread): unknown endpoints fail fast;
//      requests whose deadline cannot plausibly be met (EMA service-time
//      estimate x queue depth) are rejected; a full admission queue rejects
//      with a retry-after hint; past the shed threshold requests are
//      admitted with halved fanouts (graceful degradation) — so overload
//      degrades fidelity before it degrades availability.
//   2. Queueing: admitted requests wait in per-tenant queues. Workers pick
//      the least-served tenant first (fair queueing), then the earliest
//      deadline within it (EDF; priority breaks ties). Requests that expire
//      while queued complete as kDeadlineExceeded without executing.
//   3. Execution: the worker resolves the request's compiled plan through
//      the PlanCache (LRU under a byte budget), gathers up to coalesce_max
//      queued requests with the same plan key, and runs them as ONE
//      segmented super-batch (serving/coalescer.h). Per-segment RNG streams
//      make each member's results bit-identical to being served alone.
//   4. Scatter: group outputs are split per request and promises fulfilled,
//      with a per-stage wall-latency breakdown in every response.
//
// Built on pipeline::WorkerPool (one device stream per worker) and
// pipeline::BoundedQueue (admission tokens with TryPush rejection). The
// token queue is a capacity limiter and wakeup channel: every registered
// request pushes one token, workers block popping tokens, and the scheduler
// tolerates token/request imbalance from coalescing (a popped token that
// finds no queued request is a no-op).
//
// Sharded mode (ServerOptions::num_shards > 1, gs::shard): Start()
// partitions every registered dataset and creates one simulated device per
// shard. Submit routes each request to its seed frontier's home shard
// (locality-aware routing — the shard owning the plurality of the seeds'
// adjacency); the shard becomes part of the plan key, so every shard warms
// its own session on its own device and coalescing never crosses shards. A
// FrontierExchange observer prices each hop's remote adjacency as a
// coalesced all-to-all at the profile's interconnect rate, surfacing as
// exchange_* counters and per-shard completions/latency in ServerStats.

#ifndef GSAMPLER_SERVING_SERVER_H_
#define GSAMPLER_SERVING_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "core/engine.h"
#include "device/device.h"
#include "dyn/plan_table.h"
#include "dyn/replanner.h"
#include "feature/hot_set_cache.h"
#include "feature/store.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/store.h"
#include "ha/health.h"
#include "pipeline/queue.h"
#include "pipeline/worker_pool.h"
#include "serving/plan_cache.h"
#include "serving/request.h"
#include "serving/stats.h"

namespace gs::jit {
class JitEngine;
}  // namespace gs::jit

namespace gs::serving {

// A servable (algorithm, dataset) pair. The factory builds the traced
// program for a given effective fanout vector (empty = algorithm defaults);
// the sampler options are part of the plan key.
struct Endpoint {
  std::string algorithm;
  std::string dataset;
  const graph::Graph* graph = nullptr;
  std::function<algorithms::AlgorithmProgram(const std::vector<int64_t>& fanouts)> factory;
  core::SamplerOptions options;
  // Fallback fanouts used when a request does not specify any and overload
  // shedding needs something to halve.
  std::vector<int64_t> default_fanouts;
  // Dynamic graphs (gs::dyn): a mutable versioned store instead of a static
  // graph. When set, `graph`/`factory` are ignored: every request resolves
  // the store's latest snapshot at admission (and pins it to completion),
  // the plan key carries the snapshot's epoch + digest, and programs are
  // traced by `dynamic_factory` against the pinned snapshot's graph. The
  // store must outlive the server.
  graph::GraphStore* store = nullptr;
  std::function<algorithms::AlgorithmProgram(const graph::Graph& graph,
                                             const std::vector<int64_t>& fanouts)>
      dynamic_factory;
};

// Convenience endpoint over the Table-2 registry. Fanout vectors are honored
// for the fanout-parameterized algorithms (GraphSAGE, GCN-BS, Thanos,
// FastGCN, LADIES); others compile with their defaults.
Endpoint MakeEndpoint(const std::string& algorithm, const std::string& dataset,
                      const graph::Graph& graph, core::SamplerOptions options = {});

// The dynamic twin of MakeEndpoint: serves `store`'s evolving graph. Same
// algorithm registry, but programs are traced per epoch against the pinned
// snapshot and compiled plans are reused across epochs while their validity
// predicate holds (see dyn::PlanTable).
Endpoint MakeDynamicEndpoint(const std::string& algorithm, const std::string& dataset,
                             graph::GraphStore& store, core::SamplerOptions options = {});

struct ServerOptions {
  int num_workers = 2;
  // Admission queue capacity; TryPush failure = reject with retry-after.
  int queue_capacity = 64;
  // Maximum requests merged into one segmented execution.
  int coalesce_max = 8;
  bool enable_coalescing = true;
  int64_t plan_cache_budget_bytes = int64_t{256} * 1024 * 1024;
  // Queue-occupancy fraction beyond which admitted requests get shed
  // (halved) fanouts.
  double shed_occupancy = 0.75;
  // Reject requests whose deadline is below the service-time estimate.
  bool deadline_admission = true;
  // Suggested client back-off on rejection.
  std::chrono::nanoseconds retry_after{2'000'000};
  // Recovery ladder (gs::fault taxonomy). Transient execution failures are
  // retried up to this many times with exponential backoff starting at
  // retry_backoff; resource exhaustion (device OOM that survived the
  // allocator's own ladder) is retried once with halved fanouts, marking
  // the responses degraded.
  int max_transient_retries = 3;
  std::chrono::nanoseconds retry_backoff{50'000};
  bool shed_on_resource_exhausted = true;
  // Persistent plan directory. When non-empty, Start() warm-starts the plan
  // cache from artifacts saved there (skipping passes and calibration for
  // every matching endpoint) and Stop() persists the resident plans back —
  // so a restarted server answers its first request from a warm cache.
  std::string plan_dir;
  // Shard every dataset across this many simulated devices (1 = unsharded,
  // today's behavior). Requests route to their seed frontier's home shard
  // and execute on that shard's device with cross-shard adjacency charged
  // at the profile's interconnect_ns_per_byte.
  int num_shards = 1;
  graph::PartitionKind partition_kind = graph::PartitionKind::kEdgeCut;
  // High availability (gs::ha): replicas per shard (1 = no failover). With
  // r > 1 every shard's segment is mirrored onto r devices (chained
  // declustering) and execution walks the replica chain past dead devices;
  // when no replica of a request's home shard survives, the response
  // degrades to a typed partial (Status::kDegraded with a per-request
  // coverage fraction) instead of failing.
  int num_replicas = 1;
  ha::HealthOptions health;
  // Hedged cross-shard exchange re-issues allowed per execution.
  int max_hedged_exchanges = 2;
  // Feature serving (gs::feature). When set, every kOk response for a
  // dataset with features also carries the gathered feature rows for its
  // result frontier (SampleResponse::features / feature_ids), gathered
  // through a per-tenant hot-set cache partition on the executing shard's
  // device.
  bool serve_features = false;
  // Device bytes each shard budgets for feature caching, divided evenly
  // into `feature_cache_partitions` per-tenant shares (multi-tenant
  // isolation: one tenant's scan cannot evict another's hot set). Each
  // partition is byte-accounted through the shard allocator's
  // reserved-bytes and joins its OOM ladder.
  int64_t feature_cache_budget_bytes = int64_t{64} * 1024 * 1024;
  int feature_cache_partitions = 4;
  feature::Admission feature_admission = feature::Admission::kFrequencyEma;
  // Dynamic graphs (gs::dyn): recompile drift-invalidated plans on the
  // background replanner thread while the stale (still-correct) plan keeps
  // serving. When false, a drifted judgment compiles inline on the serving
  // path instead — the contrast bench/mutation_throughput measures.
  bool background_recompile = true;
  // JIT-compile fused IR regions (gs::jit): every session built or
  // warm-started by this server gets its plan's compiled-kernel jump table
  // attached before warmup. Kernel artifacts persist in plan_dir (when set)
  // next to the plans they specialize, so a warm restart re-attaches native
  // kernels without recompiling. Region compile/load/verify failures demote
  // to the interpreter (jit_demotions in ServerStats) — never a failed
  // request. Results are bit-identical either way.
  bool jit = false;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registration must complete before Start().
  void RegisterEndpoint(Endpoint endpoint);

  void Start();
  // Drains queued admitted requests, then joins the workers. Idempotent.
  void Stop();
  bool running() const { return running_; }

  // Thread-safe; returns a future fulfilled by a worker (or immediately on
  // rejection/failure). Never blocks on execution.
  std::future<SampleResponse> Submit(SampleRequest request);

  // Persists every resident plan to `dir` (see PlanCache::SaveAll). Requires
  // Start(). Returns the number of plans written.
  int64_t SavePlans(const std::string& dir);

  ServerStats stats() const;

  // Per-shard health state (sharded mode only; null when num_shards == 1).
  // Exposed for tests and for operators polling failover state.
  const ha::HealthMonitor* health_monitor() const { return monitor_.get(); }

  // Dynamic graphs: the epoch-independent compile table and a test hook
  // that blocks until every queued background recompile has run.
  dyn::PlanTableStats plan_table_stats() const { return plan_table_.stats(); }
  dyn::ReplannerStats replanner_stats() const;
  void DrainRecompiles();

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    uint64_t id = 0;
    SampleRequest request;
    std::promise<SampleResponse> promise;
    PlanKey key;
    std::string canonical;  // key.Canonical(), cached
    int home_shard = 0;     // locality routing target (0 when unsharded)
    bool degraded = false;
    bool has_deadline = false;
    // Dynamic endpoints: the snapshot resolved at admission, pinned until
    // the response is fulfilled (mutations applied meanwhile never move a
    // request off its epoch).
    std::shared_ptr<const graph::Snapshot> snapshot;
    Clock::time_point deadline_abs{};
    Clock::time_point submitted{};
    Clock::time_point dequeued{};
  };

  const Endpoint* FindEndpoint(const std::string& algorithm, const std::string& dataset) const;
  void WorkerLoop(int worker);
  // Handles one admission token: picks a group and serves it. Returns false
  // when the token found no queued request (tolerated imbalance).
  bool ServeOne();
  // Completes `p` as expired. Caller must not hold sched_mutex_.
  void CompleteExpired(std::unique_ptr<Pending> p);
  void ExecuteAndScatter(std::vector<std::unique_ptr<Pending>> group);
  // Degraded-mode path: the group's home shard has no live replica. Serves
  // each member's *covered* seeds (those whose home shard still has a live
  // replica) on the lowest-numbered live device and answers with
  // Status::kDegraded plus the coverage fraction — never a request error.
  void ServeDegraded(std::vector<std::unique_ptr<Pending>> group, const Endpoint& endpoint,
                     const graph::Partition& partition);
  // Compiles + warms up a fresh session for `key` (plan-cache miss path).
  // For dynamic endpoints (`snapshot` non-null) the compile table is
  // consulted first: a still-valid frozen plan gets a cheap session rebuild
  // (no passes, no calibration); a drifted one serves stale and schedules a
  // background recompile.
  std::shared_ptr<core::SamplerSession> BuildPlan(
      const Endpoint& endpoint, const PlanKey& key,
      const std::shared_ptr<const graph::Snapshot>& snapshot);
  // Full compile (trace + passes + calibration + warmup) of a dynamic
  // endpoint's session against one pinned snapshot.
  std::shared_ptr<core::SamplerSession> CompileDynamicSession(
      const Endpoint& endpoint, const PlanKey& key,
      const std::shared_ptr<const graph::Snapshot>& snapshot);
  // Replanner job body: full compile of `compile_key` against `snapshot`,
  // publishing into the plan table and the session cache so the next
  // request at that epoch hits. Runs on the replanner thread.
  void CompileForSnapshot(const std::string& compile_key,
                          const std::shared_ptr<const graph::Snapshot>& snapshot,
                          bool background);
  // Mutation listener (runs on the ingest thread, never a serving worker):
  // incremental re-partition, feature-store refresh + cache invalidation,
  // and epoch accounting.
  void OnMutation(const std::string& dataset,
                  const std::shared_ptr<const graph::Snapshot>& snapshot,
                  const graph::MutationBatch& batch);
  // The dataset's current partition (swapped by OnMutation); null when
  // unsharded or unknown. Callers hold the returned shared_ptr across use.
  std::shared_ptr<const graph::Partition> PartitionFor(const std::string& dataset) const;
  // PlanCache::LoadFrom activator: re-binds tensors and warms up a session
  // over a persisted plan; null when this server cannot serve the key.
  std::shared_ptr<core::SamplerSession> ActivatePlan(const PlanKey& key,
                                                     std::shared_ptr<core::CompiledPlan> plan);
  // The feature-cache partition for (shard, tenant, dataset), created
  // lazily on the worker thread (with the shard's device active, so the
  // cache's backing pages land on — and are byte-accounted against — that
  // shard's allocator). `row_bytes` sizes the entries.
  feature::HotSetCache* TenantFeatureCache(int shard, const std::string& tenant,
                                           const std::string& dataset, int64_t row_bytes);
  // Installs the plan's JIT jump table on a freshly built session (no-op
  // when options_.jit is off). Must run before the session's Warmup so even
  // the warmup batch exercises the compiled kernels.
  void AttachJit(const std::shared_ptr<core::SamplerSession>& session);

  ServerOptions options_;
  std::map<std::string, Endpoint> endpoints_;  // "algorithm|dataset" -> endpoint
  // Sharded mode: dataset name -> partition, plus one device per shard.
  // Immutable snapshots swapped under partition_mutex_ by OnMutation;
  // readers copy the shared_ptr (PartitionFor) and use it lock-free.
  mutable std::mutex partition_mutex_;
  std::map<std::string, std::shared_ptr<const graph::Partition>> partitions_;
  std::vector<std::unique_ptr<device::Device>> shard_devices_;
  std::unique_ptr<ha::HealthMonitor> monitor_;
  // Feature serving: one store per dataset with features, plus per-
  // (shard, tenant, dataset) cache partitions. Declared after
  // shard_devices_ so the caches (whose backing pages live on those
  // devices) are destroyed first. Stores are swapped (under feature_mutex_)
  // when a mutation epoch copies the feature tensor on write.
  std::map<std::string, std::shared_ptr<const feature::FeatureStore>> feature_stores_;
  mutable std::mutex feature_mutex_;
  std::map<std::string, std::unique_ptr<feature::HotSetCache>> feature_caches_;
  // Dynamic graphs: the epoch-independent compile table, the background
  // recompilation worker, and the store listeners to unregister at Stop().
  dyn::PlanTable plan_table_;
  std::unique_ptr<dyn::Replanner> replanner_;
  std::vector<std::pair<graph::GraphStore*, int64_t>> store_listeners_;
  // JIT region compiler (ServerOptions::jit); artifacts live in plan_dir.
  // Declared before plan_cache_ so cached sessions (which hold jump tables)
  // are destroyed first.
  std::unique_ptr<jit::JitEngine> jit_;
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<pipeline::BoundedQueue<uint64_t>> tokens_;
  std::unique_ptr<pipeline::WorkerPool> pool_;
  std::atomic<bool> running_{false};

  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> queued_{0};           // admitted, not yet dequeued
  std::atomic<int64_t> ema_service_ns_{0};   // per-request EMA (wall)

  mutable std::mutex sched_mutex_;  // tenant queues + served counts
  std::map<std::string, std::deque<std::unique_ptr<Pending>>> tenant_queues_;
  std::map<std::string, int64_t> tenant_served_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  // One histogram per shard (a single entry when unsharded); stats() merges
  // them into the server-level percentiles.
  std::vector<LatencyHistogram> shard_latency_;
};

}  // namespace gs::serving

#endif  // GSAMPLER_SERVING_SERVER_H_
