// Serving observability: latency percentiles and server-wide counters.

#ifndef GSAMPLER_SERVING_STATS_H_
#define GSAMPLER_SERVING_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace gs::serving {

// Log-scale latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)) nanoseconds. Percentile() interpolates linearly within the
// bucket holding the requested quantile (capped at the observed maximum) —
// O(1) memory with bounded error, instead of the up-to-2x overstatement a
// bucket-upper-bound readout gives for p50/p95.
class LatencyHistogram {
 public:
  void Record(int64_t ns);
  // p in [0, 100]. Returns 0 when empty.
  int64_t Percentile(double p) const;
  // Folds `other` into this histogram (buckets and count add, max takes the
  // larger). Sharded serving keeps one histogram per shard and merges them
  // into the server-level p50/p95/p99 report; merging is exact because the
  // buckets are aligned log-scale ranges.
  void Merge(const LatencyHistogram& other);
  int64_t count() const { return count_; }
  int64_t max_ns() const { return max_ns_; }

 private:
  std::array<int64_t, 64> buckets_{};
  int64_t count_ = 0;
  int64_t max_ns_ = 0;
};

struct ServerStats {
  // Request lifecycle counters.
  int64_t received = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;           // admission refusals (queue full / deadline)
  int64_t deadline_exceeded = 0;  // expired in queue, never executed
  int64_t failed = 0;
  int64_t completed = 0;
  int64_t degraded = 0;  // served with shed fanouts
  int64_t partial = 0;   // kDegraded responses (some shards uncovered)

  // Execution counters.
  int64_t executions = 0;          // super-batch executions launched
  int64_t requests_executed = 0;   // sum of group sizes
  int64_t coalesced_executions = 0;  // executions with group size > 1

  // Plan cache.
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_evictions = 0;
  int64_t plan_resident_bytes = 0;
  int64_t plans_saved = 0;   // plan artifacts persisted to the plan dir
  int64_t plans_loaded = 0;  // sessions warm-started from persisted plans

  // JIT kernel compilation (gs::jit, ServerOptions::jit). Mirrors the
  // process-wide jit::GlobalJitStats() counters: fused regions seen, how
  // many run native code (and of those, how many reloaded a persisted
  // artifact instead of compiling), fused-op executions served natively,
  // and regions demoted to the interpreter by the fallback ladder.
  int64_t jit_regions = 0;
  int64_t jit_compiled = 0;
  int64_t jit_artifact_hits = 0;
  int64_t jit_hits = 0;
  int64_t jit_demotions = 0;

  // Feature serving (gs::feature): responses that carried gathered feature
  // rows, and the hot-set cache's aggregate behavior across every tenant
  // partition on every shard.
  int64_t feature_requests = 0;      // completed responses carrying features
  int64_t feature_rows = 0;          // feature rows gathered
  int64_t feature_cache_hits = 0;    // rows served from device-side caches
  int64_t feature_cache_misses = 0;  // rows fetched over host DRAM + PCIe
  int64_t feature_gather_bytes = 0;  // total feature bytes produced
  int64_t feature_miss_bytes = 0;    // bytes that crossed the bus
  int64_t feature_gather_ns = 0;     // wall time spent gathering features

  // Fault recovery (gs::fault taxonomy).
  int64_t transient_retries = 0;    // execution retries after transient faults
  int64_t shed_retries = 0;         // retries with shed fanouts after resource exhaustion
  int64_t worker_exceptions = 0;    // exceptions stopped at the worker boundary
  int64_t failed_transient = 0;     // terminal failures by code
  int64_t failed_resource_exhausted = 0;
  int64_t failed_invalid = 0;
  int64_t failed_internal = 0;

  // High availability (gs::ha).
  int64_t failovers = 0;         // executions served by a non-primary replica
  int64_t hedged_exchanges = 0;  // hedged cross-shard exchange re-issues

  // Dynamic graphs (gs::dyn): online-mutation traffic and what each epoch
  // cost the plan layer. `plan_reuses` + `stale_plans_served` are the
  // cheap-path sessions (no passes, no calibration); `recompiles_inline`
  // are full compiles on the serving path (cold starts, or drifted plans
  // with background recompilation disabled); `recompiles_background` ran on
  // the replanner thread, never blocking a request.
  int64_t graph_epochs = 0;            // mutation epochs observed (all stores)
  int64_t plan_reuses = 0;             // sessions rebuilt over a still-valid frozen plan
  int64_t stale_plans_served = 0;      // drifted plans that kept serving while recompiling
  int64_t recompiles_inline = 0;       // full compiles on the serving path
  int64_t recompiles_background = 0;   // replanner compiles (off the serving path)
  int64_t feature_invalidations = 0;   // cache rows invalidated by feature updates
  int64_t partition_segments_rebuilt = 0;  // incremental re-partition: segments re-sliced
  int64_t partition_segments_reused = 0;   // ... vs reused by reference

  // End-to-end wall latency of completed requests (submit -> response).
  int64_t latency_p50_ns = 0;
  int64_t latency_p95_ns = 0;
  int64_t latency_p99_ns = 0;
  int64_t latency_max_ns = 0;

  // Multi-shard serving (gs::shard): cross-shard frontier-exchange traffic
  // accumulated over all executions, and per-shard completion counts
  // (locality-routing visibility).
  int64_t exchange_hops = 0;          // frontier hops that pulled remote adjacency
  int64_t exchange_remote_nodes = 0;  // frontier nodes whose adjacency was remote
  int64_t exchange_bytes = 0;         // adjacency bytes moved over the interconnect
  std::map<int, int64_t> per_shard_completed;

  // Completed requests per tenant (fair-queueing visibility).
  std::map<std::string, int64_t> per_tenant_completed;
  // Failed requests per tenant (who is hitting errors, fed by the serving
  // recovery ladder's terminal failures and request-boundary rejections).
  std::map<std::string, int64_t> per_tenant_failed;

  // Fraction of gathered feature rows served from the device-side cache.
  double FeatureHitRate() const {
    return feature_rows > 0
               ? static_cast<double>(feature_cache_hits) / static_cast<double>(feature_rows)
               : 0.0;
  }

  // Mean requests per execution; 1.0 = no coalescing happened.
  double CoalescingRatio() const {
    return executions > 0
               ? static_cast<double>(requests_executed) / static_cast<double>(executions)
               : 0.0;
  }

  std::string ToString() const;
};

}  // namespace gs::serving

#endif  // GSAMPLER_SERVING_STATS_H_
