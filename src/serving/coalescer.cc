#include "serving/coalescer.h"

#include "common/error.h"
#include "common/timer.h"

namespace gs::serving {

GroupResult ExecuteGroup(const core::SamplerSession& session,
                         const std::vector<tensor::IdArray>& frontiers,
                         const std::vector<uint64_t>& seeds) {
  GS_CHECK_EQ(frontiers.size(), seeds.size());
  GS_CHECK(!frontiers.empty());
  GroupResult result;
  result.outputs.resize(frontiers.size());
  Timer timer;
  if (session.Coalescable()) {
    session.SampleGrouped(frontiers, seeds,
                          [&result](int64_t b, std::vector<core::Value>& outputs) {
                            result.outputs[static_cast<size_t>(b)] = std::move(outputs);
                          });
  } else {
    GS_CHECK_EQ(frontiers.size(), size_t{1})
        << "non-coalescable plans must be served one request at a time";
    result.outputs[0] = session.SampleSeeded(frontiers[0], seeds[0]);
  }
  result.execute_ns = timer.ElapsedNanos();
  return result;
}

}  // namespace gs::serving
