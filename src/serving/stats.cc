#include "serving/stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace gs::serving {

void LatencyHistogram::Record(int64_t ns) {
  const uint64_t v = ns > 0 ? static_cast<uint64_t>(ns) : 1;
  const int bucket = 63 - std::countl_zero(v);  // floor(log2(v))
  buckets_[static_cast<size_t>(std::min(bucket, 63))] += 1;
  count_ += 1;
  max_ns_ = std::max(max_ns_, ns);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    // A dead or just-recovered shard merges as a no-op. Folding its
    // (all-zero) state in unconditionally is almost right, but max_ns_
    // would still take the larger of the two maxima even when the other
    // histogram never recorded — a stale max from before a Reset-style
    // swap would then skew the capped percentiles.
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

int64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_);
  // The last occupied bucket interpolates toward the observed maximum, not
  // its 2^(i+1) edge: the samples in that bucket cannot exceed max_ns_, and
  // extrapolating past it (then clamping) flattens every quantile that
  // lands beyond the maximum's position onto max_ns_ itself — e.g. a
  // handful of 513ns samples under a 520ns majority would read p50 = p99 =
  // 520 instead of interpolating across [512, 520].
  size_t top = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      top = i;
    }
  }
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const int64_t lower = int64_t{1} << i;
    const int64_t upper =
        i >= top ? std::max(max_ns_, lower) : int64_t{1} << (i + 1);
    // p = 0 resolves to the lower edge of the first occupied bucket instead
    // of charging a full bucket's width to the minimum.
    if (rank <= static_cast<double>(seen)) {
      return std::min(lower, max_ns_);
    }
    seen += buckets_[i];
    if (static_cast<double>(seen) >= rank) {
      // Interpolate within the bucket: returning the bucket's upper bound
      // would overstate mid-distribution quantiles by up to 2x.
      const double frac = (rank - static_cast<double>(seen - buckets_[i])) /
                          static_cast<double>(buckets_[i]);
      const int64_t value = lower + static_cast<int64_t>(
                                        frac * static_cast<double>(upper - lower));
      return std::min(value, max_ns_);
    }
  }
  return max_ns_;
}

std::string ServerStats::ToString() const {
  std::ostringstream out;
  out << "received=" << received << " admitted=" << admitted << " completed=" << completed
      << " rejected=" << rejected << " deadline_exceeded=" << deadline_exceeded
      << " failed=" << failed << " degraded=" << degraded << " executions=" << executions
      << " coalesced=" << coalesced_executions << " coalescing_ratio=" << CoalescingRatio()
      << " plan_hits=" << plan_cache_hits << " plan_misses=" << plan_cache_misses
      << " plan_evictions=" << plan_cache_evictions
      << " plan_resident_bytes=" << plan_resident_bytes << " plans_saved=" << plans_saved
      << " plans_loaded=" << plans_loaded
      << " transient_retries=" << transient_retries << " shed_retries=" << shed_retries
      << " worker_exceptions=" << worker_exceptions
      << " failed_by_code=[t=" << failed_transient << " re=" << failed_resource_exhausted
      << " inv=" << failed_invalid << " int=" << failed_internal << "]"
      << " partial=" << partial << " failovers=" << failovers
      << " hedged_exchanges=" << hedged_exchanges
      << " p50_us=" << latency_p50_ns / 1000 << " p95_us=" << latency_p95_ns / 1000
      << " p99_us=" << latency_p99_ns / 1000;
  if (jit_regions > 0) {
    out << " jit=[regions=" << jit_regions << " compiled=" << jit_compiled
        << " artifact_hits=" << jit_artifact_hits << " hits=" << jit_hits
        << " demotions=" << jit_demotions << "]";
  }
  if (feature_requests > 0) {
    out << " features=[requests=" << feature_requests << " rows=" << feature_rows
        << " hit_rate=" << FeatureHitRate() << " gather_mb="
        << static_cast<double>(feature_gather_bytes) / 1e6 << " miss_mb="
        << static_cast<double>(feature_miss_bytes) / 1e6 << " gather_us="
        << feature_gather_ns / 1000 << "]";
  }
  if (!per_shard_completed.empty()) {
    out << " exchange=[hops=" << exchange_hops << " remote_nodes=" << exchange_remote_nodes
        << " bytes=" << exchange_bytes << "] shards=[";
    for (const auto& [shard, completed] : per_shard_completed) {
      out << "s" << shard << "=" << completed << " ";
    }
    out << "]";
  }
  if (graph_epochs > 0) {
    out << " dyn=[epochs=" << graph_epochs << " plan_reuses=" << plan_reuses
        << " stale_served=" << stale_plans_served << " recompiles_inline=" << recompiles_inline
        << " recompiles_bg=" << recompiles_background
        << " feature_invalidations=" << feature_invalidations
        << " partition_rebuilt=" << partition_segments_rebuilt
        << " partition_reused=" << partition_segments_reused << "]";
  }
  return out.str();
}

}  // namespace gs::serving
