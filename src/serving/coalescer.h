// Request coalescing: executes a group of compatible requests as ONE
// segmented super-batch (Section 4.4's machinery, repurposed for serving).
//
// The group's frontiers are labeled into disjoint id spaces (request b's
// node v becomes b*N + v), the plan runs its segmented kernel sequence once
// over the block-diagonal super-batch, and the outputs are split back per
// request. Because every random draw attributed to segment b comes from
// request b's own RNG stream (SamplerSession::SampleGrouped), each
// request's results are bit-identical to being served alone — coalescing
// changes latency and throughput, never results.

#ifndef GSAMPLER_SERVING_COALESCER_H_
#define GSAMPLER_SERVING_COALESCER_H_

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "tensor/tensor.h"

namespace gs::serving {

struct GroupResult {
  // outputs[i] belongs to the i-th group member.
  std::vector<std::vector<core::Value>> outputs;
  int64_t execute_ns = 0;  // wall time of the shared execution
};

// Runs `frontiers` through `session` as one coalesced execution when the
// plan supports it (session.Coalescable()); otherwise the group must have
// exactly one member, served through the uncoalesced seeded path.
// Thread-safe after session.Warmup().
GroupResult ExecuteGroup(const core::SamplerSession& session,
                         const std::vector<tensor::IdArray>& frontiers,
                         const std::vector<uint64_t>& seeds);

inline GroupResult ExecuteGroup(const core::CompiledSampler& plan,
                                const std::vector<tensor::IdArray>& frontiers,
                                const std::vector<uint64_t>& seeds) {
  return ExecuteGroup(plan.session(), frontiers, seeds);
}

}  // namespace gs::serving

#endif  // GSAMPLER_SERVING_COALESCER_H_
