#include "serving/server.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.h"
#include "fault/fault.h"
#include "fault/status.h"
#include "common/logging.h"
#include "common/timer.h"
#include "device/device.h"
#include "jit/jit.h"
#include "serving/coalescer.h"
#include "shard/shard.h"

namespace gs::serving {
namespace {

std::string EndpointKey(const std::string& algorithm, const std::string& dataset) {
  return algorithm + "|" + dataset;
}

int64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
}

// A small representative frontier for plan warmup: real train ids when the
// dataset has them (warmup then touches the same UVA/feature paths serving
// will), otherwise the first node ids.
tensor::IdArray WarmupFrontier(const graph::Graph& graph) {
  const tensor::IdArray& train = graph.train_ids();
  const int64_t pool = train.size() > 0 ? train.size() : std::max<int64_t>(graph.num_nodes(), 1);
  const int64_t n = std::min<int64_t>(32, pool);
  std::vector<int32_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] =
        train.size() > 0 ? train[i] : static_cast<int32_t>(i % std::max<int64_t>(graph.num_nodes(), 1));
  }
  return tensor::IdArray::FromVector(ids);
}

// The frontier a response's features are gathered for: the last ids output
// of the program (the sampled frontier the caller will train on), falling
// back to the request's seeds for programs that emit no id output.
const tensor::IdArray& FeatureFrontier(const std::vector<core::Value>& outputs,
                                       const tensor::IdArray& seeds) {
  for (auto it = outputs.rbegin(); it != outputs.rend(); ++it) {
    if (it->kind == core::ValueKind::kIds && it->ids.defined() && !it->ids.empty()) {
      return it->ids;
    }
  }
  return seeds;
}

std::vector<int64_t> ShedFanouts(const std::vector<int64_t>& fanouts) {
  std::vector<int64_t> shed(fanouts.size());
  for (size_t i = 0; i < fanouts.size(); ++i) {
    shed[i] = std::max<int64_t>(1, fanouts[i] / 2);
  }
  return shed;
}

// Registry-backed program construction shared by the static and dynamic
// endpoint factories. Fanout vectors are honored for the fanout-
// parameterized algorithms; others compile with their defaults.
algorithms::AlgorithmProgram BuildProgram(const std::string& algorithm, const graph::Graph& g,
                                          const std::vector<int64_t>& fanouts) {
  if (!fanouts.empty()) {
    if (algorithm == "GraphSAGE") {
      return algorithms::GraphSage(g, algorithms::SageParams{.fanouts = fanouts});
    }
    if (algorithm == "GCN-BS") {
      return algorithms::GcnBs(g, algorithms::BanditParams{.fanouts = fanouts});
    }
    if (algorithm == "Thanos") {
      return algorithms::Thanos(g, algorithms::BanditParams{.fanouts = fanouts});
    }
    if (algorithm == "PASS") {
      algorithms::PassParams params;
      params.fanouts = fanouts;
      return algorithms::Pass(g, params);
    }
    if (algorithm == "FastGCN" || algorithm == "LADIES" || algorithm == "AS-GCN") {
      algorithms::LayerWiseParams params;
      params.num_layers = static_cast<int>(fanouts.size());
      params.layer_width = fanouts.front();
      if (algorithm == "FastGCN") {
        return algorithms::FastGcn(g, params);
      }
      if (algorithm == "LADIES") {
        return algorithms::Ladies(g, params);
      }
      return algorithms::Asgcn(g, params);
    }
  }
  return algorithms::MakeAlgorithm(algorithm, g);
}

std::vector<int64_t> RegistryDefaultFanouts(const std::string& algorithm) {
  if (algorithm == "GraphSAGE") {
    return algorithms::SageParams{}.fanouts;
  }
  if (algorithm == "GCN-BS" || algorithm == "Thanos") {
    return algorithms::BanditParams{}.fanouts;
  }
  if (algorithm == "PASS") {
    return algorithms::PassParams{}.fanouts;
  }
  if (algorithm == "FastGCN" || algorithm == "LADIES" || algorithm == "AS-GCN") {
    const algorithms::LayerWiseParams defaults;
    return std::vector<int64_t>(static_cast<size_t>(defaults.num_layers), defaults.layer_width);
  }
  return {};
}

}  // namespace

Endpoint MakeEndpoint(const std::string& algorithm, const std::string& dataset,
                      const graph::Graph& graph, core::SamplerOptions options) {
  Endpoint ep;
  ep.algorithm = algorithm;
  ep.dataset = dataset;
  ep.graph = &graph;
  ep.options = options;
  ep.default_fanouts = RegistryDefaultFanouts(algorithm);
  const graph::Graph* g = &graph;
  ep.factory = [algorithm, g](const std::vector<int64_t>& fanouts) {
    return BuildProgram(algorithm, *g, fanouts);
  };
  return ep;
}

Endpoint MakeDynamicEndpoint(const std::string& algorithm, const std::string& dataset,
                             graph::GraphStore& store, core::SamplerOptions options) {
  Endpoint ep;
  ep.algorithm = algorithm;
  ep.dataset = dataset;
  ep.store = &store;
  ep.options = options;
  ep.default_fanouts = RegistryDefaultFanouts(algorithm);
  ep.dynamic_factory = [algorithm](const graph::Graph& g, const std::vector<int64_t>& fanouts) {
    return BuildProgram(algorithm, g, fanouts);
  };
  return ep;
}

Server::Server(ServerOptions options) : options_(options) {
  GS_CHECK_GT(options_.num_workers, 0);
  GS_CHECK_GT(options_.queue_capacity, 0);
  GS_CHECK_GT(options_.coalesce_max, 0);
  GS_CHECK_GE(options_.num_shards, 1);
  GS_CHECK_LE(options_.num_shards, fault::kMaxShards)
      << "serving supports at most " << fault::kMaxShards << " shards";
  GS_CHECK_GE(options_.num_replicas, 1);
  GS_CHECK_LE(options_.num_replicas, options_.num_shards)
      << "more replicas than shard devices";
  shard_latency_.resize(static_cast<size_t>(std::max(1, options_.num_shards)));
}

Server::~Server() { Stop(); }

void Server::RegisterEndpoint(Endpoint endpoint) {
  GS_CHECK(!running_) << "endpoints must be registered before Start()";
  if (endpoint.store != nullptr) {
    GS_CHECK(endpoint.dynamic_factory != nullptr)
        << "dynamic endpoints need a dynamic_factory (see MakeDynamicEndpoint)";
  } else {
    GS_CHECK(endpoint.graph != nullptr);
    GS_CHECK(endpoint.factory != nullptr);
  }
  const std::string key = EndpointKey(endpoint.algorithm, endpoint.dataset);
  endpoints_[key] = std::move(endpoint);
}

const Endpoint* Server::FindEndpoint(const std::string& algorithm,
                                     const std::string& dataset) const {
  auto it = endpoints_.find(EndpointKey(algorithm, dataset));
  return it != endpoints_.end() ? &it->second : nullptr;
}

void Server::Start() {
  GS_CHECK(!running_) << "server already running";
  GS_CHECK(!endpoints_.empty()) << "no endpoints registered";
  tokens_ = std::make_unique<pipeline::BoundedQueue<uint64_t>>(options_.queue_capacity);
  plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache_budget_bytes,
                                            &device::Current().allocator());
  if (options_.num_shards > 1) {
    // Partition every registered dataset once and give each shard its own
    // simulated device: per-shard sessions allocate there and locality
    // routing (Submit) resolves against these partitions. num_replicas > 1
    // additionally mirrors each shard's segment (chained declustering) so
    // execution can fail over past dead devices. Dynamic endpoints
    // partition the store's current snapshot; later epochs re-partition
    // incrementally through the mutation listener (OnMutation).
    for (const auto& [key, endpoint] : endpoints_) {
      if (partitions_.find(endpoint.dataset) == partitions_.end()) {
        const graph::Graph& graph =
            endpoint.store != nullptr ? endpoint.store->Current()->graph() : *endpoint.graph;
        std::lock_guard<std::mutex> lock(partition_mutex_);
        partitions_[endpoint.dataset] =
            std::make_shared<const graph::Partition>(graph::Partitioner::Build(
                graph, options_.partition_kind, options_.num_shards, options_.num_replicas));
      }
    }
    shard_devices_.reserve(static_cast<size_t>(options_.num_shards));
    for (int s = 0; s < options_.num_shards; ++s) {
      shard_devices_.push_back(std::make_unique<device::Device>(device::Current().profile()));
    }
    monitor_ = std::make_unique<ha::HealthMonitor>(options_.num_shards, options_.health);
    // Pre-register every shard in the per-shard completion map so a shard
    // that dies before completing anything still shows up (as zero) in
    // stats() instead of silently vanishing from the report.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (int s = 0; s < options_.num_shards; ++s) {
      stats_.per_shard_completed[s] += 0;
    }
  }
  if (options_.serve_features) {
    // One store per dataset that actually has features; endpoints over
    // feature-less datasets keep serving bare frontiers.
    for (const auto& [key, endpoint] : endpoints_) {
      const graph::Graph& graph =
          endpoint.store != nullptr ? endpoint.store->Current()->graph() : *endpoint.graph;
      if (graph.features().defined() &&
          feature_stores_.find(endpoint.dataset) == feature_stores_.end()) {
        std::lock_guard<std::mutex> lock(feature_mutex_);
        feature_stores_[endpoint.dataset] =
            std::make_shared<const feature::FeatureStore>(graph.features());
      }
    }
  }
  // Dynamic endpoints: subscribe to each distinct store's mutation stream
  // (incremental re-partition, feature refresh/invalidation, epoch
  // accounting) and start the background replanner. Listeners run on the
  // ingest thread — materialization, re-partitioning, and invalidation
  // never touch the serving path.
  bool any_dynamic = false;
  for (const auto& [key, endpoint] : endpoints_) {
    if (endpoint.store == nullptr) {
      continue;
    }
    any_dynamic = true;
    bool subscribed = false;
    for (const auto& [store, id] : store_listeners_) {
      if (store == endpoint.store) {
        subscribed = true;
        break;
      }
    }
    if (subscribed) {
      continue;
    }
    const std::string dataset = endpoint.dataset;
    const int64_t id = endpoint.store->AddListener(
        [this, dataset](const std::shared_ptr<const graph::Snapshot>& snapshot,
                        const graph::MutationBatch& batch) {
          OnMutation(dataset, snapshot, batch);
        });
    store_listeners_.emplace_back(endpoint.store, id);
  }
  if (any_dynamic && options_.background_recompile) {
    replanner_ = std::make_unique<dyn::Replanner>(
        [this](const std::string& key, std::shared_ptr<const graph::Snapshot> snapshot) {
          CompileForSnapshot(key, snapshot, /*background=*/true);
        });
    replanner_->Start();
  }
  pool_ = std::make_unique<pipeline::WorkerPool>(device::Current().profile(),
                                                 options_.num_workers);
  if (options_.jit) {
    // Created before the plan warm start so warm-started sessions re-attach
    // persisted kernel artifacts (which live next to the plans in plan_dir).
    jit::JitEngineOptions jit_options;
    jit_options.artifact_dir = options_.plan_dir;
    jit_ = std::make_unique<jit::JitEngine>(jit_options);
  }
  if (!options_.plan_dir.empty()) {
    // Warm start: activate persisted plans before workers begin serving, so
    // the first request of every restored endpoint is a cache hit with no
    // pass pipeline and no layout calibration.
    try {
      plan_cache_->LoadFrom(options_.plan_dir,
                            [this](const PlanKey& key, std::shared_ptr<core::CompiledPlan> plan) {
                              return ActivatePlan(key, std::move(plan));
                            });
    } catch (const Error& e) {
      GS_LOG(Warning) << "serving: plan warm-start failed, continuing cold: " << e.what();
    }
  }
  running_ = true;
  pool_->Start([this](int worker) { WorkerLoop(worker); });
  GS_LOG(Info) << "serving: started " << options_.num_workers << " workers, queue capacity "
               << options_.queue_capacity << ", coalesce_max " << options_.coalesce_max;
}

void Server::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Quiesce the dynamic-graph machinery first: unsubscribe from mutation
  // streams (no callback may outlive the server) and stop the replanner
  // after at most its in-flight compile.
  for (const auto& [store, id] : store_listeners_) {
    store->RemoveListener(id);
  }
  store_listeners_.clear();
  if (replanner_ != nullptr) {
    replanner_->Stop();
  }
  // Close() lets workers drain every queued admission token (each matching
  // an already-admitted request) before their Pop() returns nullopt.
  tokens_->Close();
  pool_->Join();
  if (!options_.plan_dir.empty() && plan_cache_ != nullptr) {
    // Best effort: a failed save must not turn shutdown into a crash.
    try {
      plan_cache_->SaveAll(options_.plan_dir);
    } catch (const Error& e) {
      GS_LOG(Warning) << "serving: failed to persist plans to " << options_.plan_dir << ": "
                      << e.what();
    }
  }
  // The token invariant (tokens remaining >= requests remaining) means the
  // queues are empty here; fail anything left over defensively.
  std::vector<std::unique_ptr<Pending>> leftovers;
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    for (auto& [tenant, queue] : tenant_queues_) {
      for (auto& pending : queue) {
        leftovers.push_back(std::move(pending));
      }
      queue.clear();
    }
  }
  for (auto& pending : leftovers) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    SampleResponse response;
    response.status = Status::kFailed;
    response.code = fault::ErrorCode::kInternal;
    response.request_id = pending->id;
    response.error = "server stopped";
    const std::string tenant = pending->request.tenant;
    pending->promise.set_value(std::move(response));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failed;
    ++stats_.failed_internal;
    ++stats_.per_tenant_failed[tenant];
  }
  GS_LOG(Info) << "serving: stopped";
}

std::future<SampleResponse> Server::Submit(SampleRequest request) {
  auto pending = std::make_unique<Pending>();
  pending->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending->submitted = Clock::now();
  pending->request = std::move(request);
  std::future<SampleResponse> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.received;
  }

  const SampleRequest& req = pending->request;
  auto finish = [&](Status status, fault::ErrorCode code, const std::string& error,
                    bool with_retry) {
    SampleResponse response;
    response.status = status;
    response.code = code;
    response.request_id = pending->id;
    response.error = error;
    if (with_retry) {
      response.retry_after = options_.retry_after;
    }
    pending->promise.set_value(std::move(response));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (status == Status::kRejected) {
      ++stats_.rejected;
    } else {
      ++stats_.failed;
      ++stats_.per_tenant_failed[req.tenant];
      if (code == fault::ErrorCode::kInvalidRequest) {
        ++stats_.failed_invalid;
      } else {
        ++stats_.failed_internal;
      }
    }
  };

  if (!running_) {
    finish(Status::kFailed, fault::ErrorCode::kInternal, "server not running", false);
    return future;
  }
  const Endpoint* endpoint = FindEndpoint(req.algorithm, req.dataset);
  if (endpoint == nullptr) {
    finish(Status::kFailed, fault::ErrorCode::kInvalidRequest,
           "unknown endpoint: " + EndpointKey(req.algorithm, req.dataset), false);
    return future;
  }
  if (!req.seeds.defined() || req.seeds.empty()) {
    finish(Status::kFailed, fault::ErrorCode::kInvalidRequest, "empty seed set", false);
    return future;
  }
  for (const int64_t fanout : req.fanouts) {
    if (fanout <= 0) {
      finish(Status::kFailed, fault::ErrorCode::kInvalidRequest,
             "fanouts must be positive, got " + std::to_string(fanout), false);
      return future;
    }
  }

  // Graceful degradation: past the shed threshold, admit with halved
  // fanouts instead of rejecting outright.
  std::vector<int64_t> fanouts = req.fanouts.empty() ? endpoint->default_fanouts : req.fanouts;
  const int64_t backlog = queued_.load(std::memory_order_relaxed);
  const int64_t shed_threshold =
      static_cast<int64_t>(options_.shed_occupancy * options_.queue_capacity);
  if (!fanouts.empty() && backlog >= shed_threshold) {
    fanouts = ShedFanouts(fanouts);
    pending->degraded = true;
  }

  pending->has_deadline = req.deadline.count() > 0;
  pending->deadline_abs = pending->submitted + req.deadline;

  // Deadline-aware admission: estimate completion as (queue depth / workers
  // + 1) service times and reject when that already exceeds the deadline.
  // With no service history yet, admit.
  if (pending->has_deadline && options_.deadline_admission) {
    const int64_t ema = ema_service_ns_.load(std::memory_order_relaxed);
    if (ema > 0) {
      const int64_t waves = backlog / std::max(1, options_.num_workers) + 1;
      if (ema * waves > req.deadline.count()) {
        finish(Status::kRejected, fault::ErrorCode::kResourceExhausted,
               "deadline infeasible under current load", true);
        return future;
      }
    }
  }

  pending->key.algorithm = req.algorithm;
  pending->key.dataset = req.dataset;
  pending->key.device = device::Current().profile().name;
  pending->key.pass_config = PassConfigDigest(endpoint->options);
  pending->key.fanouts = std::move(fanouts);
  if (endpoint->store != nullptr) {
    // Dynamic endpoint: resolve the latest snapshot at admission and pin it
    // for the request's lifetime. The epoch + digest join the plan key, so
    // sessions and coalescing groups never mix epochs.
    pending->snapshot = endpoint->store->Current();
    pending->key.dynamic = true;
    pending->key.graph_epoch = pending->snapshot->epoch();
    pending->key.graph_digest = pending->snapshot->digest();
  }
  if (options_.num_shards > 1) {
    // Locality-aware routing: execute on the shard owning the plurality of
    // the seeds. The shard is part of the plan key, so each shard warms its
    // own session and coalescing stays shard-local.
    const std::shared_ptr<const graph::Partition> partition = PartitionFor(req.dataset);
    if (partition != nullptr) {
      pending->home_shard = partition->HomeShard(req.seeds.data(), req.seeds.size());
      pending->key.shard = pending->home_shard;
    }
  }
  pending->canonical = pending->key.Canonical();

  // Register under the scheduler mutex so a worker that pops this request's
  // token is guaranteed to find it already queued; a TryPush refusal (queue
  // full, or closed by Stop) is the overload signal.
  const std::string tenant = req.tenant;
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    if (tokens_->TryPush(pending->id)) {
      queued_.fetch_add(1, std::memory_order_relaxed);
      tenant_queues_[tenant].push_back(std::move(pending));
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.admitted;
      return future;
    }
  }
  finish(Status::kRejected, fault::ErrorCode::kResourceExhausted, "admission queue full", true);
  return future;
}

void Server::WorkerLoop(int worker) {
  // Nothing a request does may kill a worker: ExecuteAndScatter already
  // classifies and absorbs execution failures per request, so anything that
  // reaches this boundary is a server-side bug — log it, count it, and keep
  // serving. (A dead worker would strand queued admission tokens and turn
  // every later request into a "server stopped" failure at Stop().)
  while (tokens_->Pop().has_value()) {
    try {
      ServeOne();
    } catch (const std::exception& e) {
      GS_LOG(Warning) << "serving: worker " << worker
                      << " caught exception at the loop boundary: " << e.what();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.worker_exceptions;
    } catch (...) {
      GS_LOG(Warning) << "serving: worker " << worker
                      << " caught non-standard exception at the loop boundary";
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.worker_exceptions;
    }
  }
}

// Strict scheduling order within a tenant: earliest deadline first (requests
// with deadlines ahead of those without), then priority, then arrival.
static bool ScheduleBefore(const SampleRequest& a_req, bool a_has_deadline,
                           std::chrono::steady_clock::time_point a_deadline, uint64_t a_id,
                           const SampleRequest& b_req, bool b_has_deadline,
                           std::chrono::steady_clock::time_point b_deadline, uint64_t b_id) {
  if (a_has_deadline != b_has_deadline) {
    return a_has_deadline;
  }
  if (a_has_deadline && a_deadline != b_deadline) {
    return a_deadline < b_deadline;
  }
  if (a_req.priority != b_req.priority) {
    return a_req.priority > b_req.priority;
  }
  return a_id < b_id;
}

bool Server::ServeOne() {
  std::vector<std::unique_ptr<Pending>> expired;
  std::vector<std::unique_ptr<Pending>> group;
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    const Clock::time_point now = Clock::now();

    // Requests that expired while queued complete without executing.
    for (auto& [tenant, queue] : tenant_queues_) {
      for (auto it = queue.begin(); it != queue.end();) {
        if ((*it)->has_deadline && (*it)->deadline_abs <= now) {
          queued_.fetch_sub(1, std::memory_order_relaxed);
          expired.push_back(std::move(*it));
          it = queue.erase(it);
        } else {
          ++it;
        }
      }
    }

    // Fair queueing across tenants: serve the least-served tenant first.
    std::map<std::string, std::deque<std::unique_ptr<Pending>>>::iterator best_tenant =
        tenant_queues_.end();
    for (auto it = tenant_queues_.begin(); it != tenant_queues_.end(); ++it) {
      if (it->second.empty()) {
        continue;
      }
      if (best_tenant == tenant_queues_.end() ||
          tenant_served_[it->first] < tenant_served_[best_tenant->first]) {
        best_tenant = it;
      }
    }
    if (best_tenant != tenant_queues_.end()) {
      auto& queue = best_tenant->second;
      auto leader = queue.begin();
      for (auto it = std::next(queue.begin()); it != queue.end(); ++it) {
        if (ScheduleBefore((*it)->request, (*it)->has_deadline, (*it)->deadline_abs, (*it)->id,
                           (*leader)->request, (*leader)->has_deadline, (*leader)->deadline_abs,
                           (*leader)->id)) {
          leader = it;
        }
      }
      queued_.fetch_sub(1, std::memory_order_relaxed);
      tenant_served_[best_tenant->first] += 1;
      group.push_back(std::move(*leader));
      queue.erase(leader);

      // Coalesce: gather queued requests (any tenant, arrival order) whose
      // plan key matches the leader's, consuming one admission token per
      // extra so tokens keep pace with queued requests. A TryPop miss just
      // leaves a surplus token that some worker later pops as a no-op.
      if (options_.enable_coalescing) {
        const std::string& canonical = group.front()->canonical;
        for (auto& [tenant, queue2] : tenant_queues_) {
          if (static_cast<int>(group.size()) >= options_.coalesce_max) {
            break;
          }
          for (auto it = queue2.begin();
               it != queue2.end() && static_cast<int>(group.size()) < options_.coalesce_max;) {
            if ((*it)->canonical == canonical) {
              tokens_->TryPop();
              queued_.fetch_sub(1, std::memory_order_relaxed);
              tenant_served_[tenant] += 1;
              group.push_back(std::move(*it));
              it = queue2.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
    }
  }

  for (auto& pending : expired) {
    CompleteExpired(std::move(pending));
  }
  if (group.empty()) {
    return false;  // spurious token (its request was coalesced or expired)
  }
  ExecuteAndScatter(std::move(group));
  return true;
}

void Server::CompleteExpired(std::unique_ptr<Pending> pending) {
  SampleResponse response;
  response.status = Status::kDeadlineExceeded;
  response.request_id = pending->id;
  response.degraded = pending->degraded;
  response.stages.queue_wait_ns = ElapsedNs(pending->submitted, Clock::now());
  response.stages.total_ns = response.stages.queue_wait_ns;
  response.error = "deadline expired while queued";
  pending->promise.set_value(std::move(response));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.deadline_exceeded;
}

std::shared_ptr<core::SamplerSession> Server::CompileDynamicSession(
    const Endpoint& endpoint, const PlanKey& key,
    const std::shared_ptr<const graph::Snapshot>& snapshot) {
  core::SamplerOptions options = endpoint.options;
  options.super_batch = 1;
  algorithms::AlgorithmProgram algorithm =
      endpoint.dynamic_factory(snapshot->graph(), key.fanouts);
  auto plan = std::make_shared<core::CompiledPlan>(std::move(algorithm.program), options,
                                                   endpoint.algorithm);
  auto session = std::make_shared<core::SamplerSession>(std::move(plan), snapshot,
                                                        std::move(algorithm.tensors));
  session->Warmup(WarmupFrontier(snapshot->graph()));
  AttachJit(session);
  return session;
}

std::shared_ptr<core::SamplerSession> Server::BuildPlan(
    const Endpoint& endpoint, const PlanKey& key,
    const std::shared_ptr<const graph::Snapshot>& snapshot) {
  if (endpoint.store == nullptr || snapshot == nullptr) {
    algorithms::AlgorithmProgram algorithm = endpoint.factory(key.fanouts);
    core::SamplerOptions options = endpoint.options;
    // The server groups requests itself; epoch-style super-batching inside
    // the plan would fight the coalescer.
    options.super_batch = 1;
    auto plan = std::make_shared<core::CompiledPlan>(std::move(algorithm.program), options,
                                                     endpoint.algorithm);
    auto session = std::make_shared<core::SamplerSession>(std::move(plan), *endpoint.graph,
                                                          std::move(algorithm.tensors));
    session->Warmup(WarmupFrontier(*endpoint.graph));
    AttachJit(session);
    return session;
  }

  // Dynamic endpoint: consult the epoch-independent compile table before
  // paying for passes + calibration.
  const std::string compile_key = key.CompileKey();
  dyn::PlanTable::Entry entry;
  std::string why;
  const dyn::PlanJudgment judgment = plan_table_.Judge(compile_key, *snapshot, &entry, &why);
  if (judgment == dyn::PlanJudgment::kMiss ||
      (judgment == dyn::PlanJudgment::kDrifted && replanner_ == nullptr)) {
    // Cold start, or drift with background recompilation disabled: the full
    // compile runs here on the serving path.
    std::shared_ptr<core::SamplerSession> session = CompileDynamicSession(endpoint, key, snapshot);
    plan_table_.Publish(compile_key, session->plan_ptr(), *snapshot);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.recompiles_inline;
    return session;
  }

  // Cheap path: rebuild a session over the resident frozen plan — the
  // re-trace only recovers the named tensor bindings; no passes and no
  // calibration run. A drifted plan still serves correct results (layout
  // decisions affect cost, never values) while the replanner recompiles off
  // the serving path.
  algorithms::AlgorithmProgram algorithm =
      endpoint.dynamic_factory(snapshot->graph(), key.fanouts);
  auto session = std::make_shared<core::SamplerSession>(entry.plan, snapshot,
                                                        std::move(algorithm.tensors));
  session->Warmup(WarmupFrontier(snapshot->graph()));
  AttachJit(session);
  if (judgment == dyn::PlanJudgment::kDrifted) {
    GS_LOG(Info) << "serving: plan " << compile_key << " drifted past validity (" << why
                 << "); serving stale, recompiling in the background";
    replanner_->Enqueue(compile_key, snapshot);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.stale_plans_served;
  } else {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.plan_reuses;
  }
  return session;
}

void Server::CompileForSnapshot(const std::string& compile_key,
                                const std::shared_ptr<const graph::Snapshot>& snapshot,
                                bool background) {
  PlanKey key = PlanKey::Parse(compile_key);
  const Endpoint* endpoint = FindEndpoint(key.algorithm, key.dataset);
  if (endpoint == nullptr || endpoint->store == nullptr) {
    return;  // endpoint vanished (shutdown race); nothing to publish
  }
  std::optional<device::ThreadDeviceGuard> shard_guard;
  if (options_.num_shards > 1 && key.shard < static_cast<int>(shard_devices_.size())) {
    shard_guard.emplace(*shard_devices_[static_cast<size_t>(key.shard)]);
  }
  std::shared_ptr<core::SamplerSession> session = CompileDynamicSession(*endpoint, key, snapshot);
  plan_table_.Publish(compile_key, session->plan_ptr(), *snapshot);
  // Publish the warmed session at its epoch so the next request there hits
  // the cache instead of rebuilding.
  key.dynamic = true;
  key.graph_epoch = snapshot->epoch();
  key.graph_digest = snapshot->digest();
  plan_cache_->Insert(key, std::move(session));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (background) {
    ++stats_.recompiles_background;
  } else {
    ++stats_.recompiles_inline;
  }
}

void Server::OnMutation(const std::string& dataset,
                        const std::shared_ptr<const graph::Snapshot>& snapshot,
                        const graph::MutationBatch& batch) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.graph_epochs;
  }
  // Incremental re-partition with pinned ownership: only shards owning a
  // touched column get their CSC segment re-sliced; routing (and every
  // global<->local map) stays stable, so in-flight requests keep resolving
  // the same home shards.
  if (options_.num_shards > 1) {
    const std::shared_ptr<const graph::Partition> base = PartitionFor(dataset);
    if (base != nullptr) {
      auto next = std::make_shared<const graph::Partition>(
          graph::Partitioner::Rebuild(*base, snapshot->graph(), batch.TouchedColumns()));
      {
        std::lock_guard<std::mutex> lock(partition_mutex_);
        partitions_[dataset] = next;
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.partition_segments_rebuilt += next->segments_rebuilt();
      stats_.partition_segments_reused += next->segments_reused();
    }
  }
  // Feature tier: swap the store to the epoch's (copied-on-write) tensor
  // and invalidate exactly the mutated rows in every cache partition of
  // this dataset — un-touched rows are identical across epochs, so their
  // cached copies stay valid.
  if (!batch.update_features.empty()) {
    int64_t invalidated = 0;
    {
      std::lock_guard<std::mutex> lock(feature_mutex_);
      auto it = feature_stores_.find(dataset);
      if (it != feature_stores_.end()) {
        it->second = std::make_shared<const feature::FeatureStore>(snapshot->graph().features());
        const std::string suffix = "|" + dataset;
        for (auto& [cache_key, cache] : feature_caches_) {
          if (cache_key.size() >= suffix.size() &&
              cache_key.compare(cache_key.size() - suffix.size(), suffix.size(), suffix) == 0) {
            for (const graph::FeatureUpdate& update : batch.update_features) {
              cache->Invalidate(static_cast<uint64_t>(update.node));
              ++invalidated;
            }
          }
        }
      }
    }
    if (invalidated > 0) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.feature_invalidations += invalidated;
    }
  }
}

std::shared_ptr<const graph::Partition> Server::PartitionFor(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(partition_mutex_);
  auto it = partitions_.find(dataset);
  return it != partitions_.end() ? it->second : nullptr;
}

void Server::DrainRecompiles() {
  if (replanner_ != nullptr) {
    replanner_->Drain();
  }
}

dyn::ReplannerStats Server::replanner_stats() const {
  return replanner_ != nullptr ? replanner_->stats() : dyn::ReplannerStats{};
}

std::shared_ptr<core::SamplerSession> Server::ActivatePlan(
    const PlanKey& key, std::shared_ptr<core::CompiledPlan> plan) {
  const Endpoint* endpoint = FindEndpoint(key.algorithm, key.dataset);
  if (endpoint == nullptr) {
    return nullptr;  // this server no longer serves the endpoint
  }
  if (key.device != device::Current().profile().name) {
    return nullptr;  // calibrated for a different device profile
  }
  if (key.pass_config != PassConfigDigest(endpoint->options)) {
    return nullptr;  // stale artifact: pass configuration changed
  }
  if (key.shard >= std::max(1, options_.num_shards)) {
    return nullptr;  // persisted by a server with more shards
  }
  if (key.dynamic != (endpoint->store != nullptr)) {
    return nullptr;  // endpoint changed between static and dynamic
  }
  std::optional<device::ThreadDeviceGuard> shard_guard;
  if (options_.num_shards > 1) {
    shard_guard.emplace(*shard_devices_[static_cast<size_t>(key.shard)]);
  }
  if (key.dynamic) {
    // A persisted dynamic plan is only servable when the store's current
    // epoch has the exact digest it was calibrated against; anything else
    // must recompile through the plan table's validity machinery.
    const std::shared_ptr<const graph::Snapshot> snapshot = endpoint->store->Current();
    if (key.graph_digest != snapshot->digest()) {
      return nullptr;
    }
    algorithms::AlgorithmProgram algorithm =
        endpoint->dynamic_factory(snapshot->graph(), key.fanouts);
    std::shared_ptr<core::CompiledPlan> shared = std::move(plan);
    auto session = std::make_shared<core::SamplerSession>(shared, snapshot,
                                                          std::move(algorithm.tensors));
    session->Warmup(WarmupFrontier(snapshot->graph()));
    AttachJit(session);
    plan_table_.Publish(key.CompileKey(), std::move(shared), *snapshot);
    return session;
  }
  // The factory re-traces only to recover the named tensor bindings; the
  // persisted plan (program + annotations + calibration) is used as-is, so
  // no passes and no calibration run here.
  algorithms::AlgorithmProgram algorithm = endpoint->factory(key.fanouts);
  auto session = std::make_shared<core::SamplerSession>(std::move(plan), *endpoint->graph,
                                                        std::move(algorithm.tensors));
  session->Warmup(WarmupFrontier(*endpoint->graph));
  AttachJit(session);
  return session;
}

// Called after Warmup: warmup calibrates the plan, and the calibration state
// is part of CompiledPlan::Digest() — attaching earlier would key artifacts
// under a digest the persisted (calibrated) plan no longer has, defeating
// warm-restart reuse.
void Server::AttachJit(const std::shared_ptr<core::SamplerSession>& session) {
  if (jit_ == nullptr || session == nullptr) {
    return;
  }
  // TableFor never throws: unresolvable regions demote to the interpreter,
  // and a plan with no fused regions yields no table at all.
  session->SetJitTable(jit_->TableFor(session->plan()));
}

feature::HotSetCache* Server::TenantFeatureCache(int shard, const std::string& tenant,
                                                 const std::string& dataset,
                                                 int64_t row_bytes) {
  const std::string key = std::to_string(shard) + "|" + tenant + "|" + dataset;
  std::lock_guard<std::mutex> lock(feature_mutex_);
  auto it = feature_caches_.find(key);
  if (it != feature_caches_.end()) {
    return it->second.get();
  }
  // Per-tenant partitioning: each tenant gets an equal slice of the shard's
  // feature-cache byte budget, sized in whole feature rows. The partition
  // allocates real backing pages from the current (shard) device and joins
  // its allocator's OOM ladder.
  const int64_t share = options_.feature_cache_budget_bytes /
                        std::max(1, options_.feature_cache_partitions);
  const int64_t capacity = std::max<int64_t>(64, share / std::max<int64_t>(row_bytes, 1));
  auto cache = std::make_unique<feature::HotSetCache>(feature::HotSetCacheOptions{
      .capacity = capacity,
      .admission = options_.feature_admission,
      .entry_bytes = row_bytes,
      .register_pressure_handler = true,
  });
  feature::HotSetCache* raw = cache.get();
  feature_caches_[key] = std::move(cache);
  return raw;
}

int64_t Server::SavePlans(const std::string& dir) {
  GS_CHECK(plan_cache_ != nullptr) << "SavePlans requires Start()";
  return plan_cache_->SaveAll(dir);
}

// GCC 12's -Wmaybe-uninitialized loses track of std::optional's engaged flag
// for the shard_guard below and claims ThreadDeviceGuard::previous_ may be
// read uninitialized in the destructor; the guard is only ever destroyed
// engaged (reset()/emplace() pair inside the retry loop).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void Server::ExecuteAndScatter(std::vector<std::unique_ptr<Pending>> group) {
  const Clock::time_point dequeued = Clock::now();
  for (auto& pending : group) {
    pending->dequeued = dequeued;
  }
  Pending& leader = *group.front();

  std::ostringstream tag;
  tag << "req=" << leader.id;
  if (group.size() > 1) {
    tag << "+" << group.size() - 1;
  }
  ScopedLogTag log_tag(tag.str());

  const Endpoint* endpoint = FindEndpoint(leader.request.algorithm, leader.request.dataset);
  GS_CHECK(endpoint != nullptr);

  // Sharded mode: each execution attempt re-resolves the executing device —
  // the home shard's replica chain is walked in placement order, skipping
  // devices the health monitor holds dead (a dead device still gets one
  // probe per backoff window). The chosen device is pinned for the
  // resolve+execute span and cross-shard adjacency pulls are metered with a
  // FrontierExchange observer. The group is shard-homogeneous because the
  // shard is part of the plan key; executing on a replica changes only
  // which timeline is charged, never the outputs (sessions bind the full
  // graph).
  const int shard = leader.home_shard;
  // Pin the partition for the whole execution: a mutation epoch may swap in
  // an incrementally rebuilt partition mid-flight, and routing decisions
  // must stay consistent within one group.
  std::shared_ptr<const graph::Partition> pinned_partition;
  const graph::Partition* partition = nullptr;
  std::optional<device::ThreadDeviceGuard> shard_guard;
  std::optional<fault::ShardScope> fault_scope;
  if (options_.num_shards > 1) {
    pinned_partition = PartitionFor(endpoint->dataset);
    partition = pinned_partition.get();
  }
  int64_t exchange_hops = 0;
  int64_t exchange_remote_nodes = 0;
  int64_t exchange_bytes = 0;
  int64_t hedged = 0;
  int exec_shard = shard;     // device that actually executed (== shard unsharded)
  bool unavailable = false;   // no live replica of the home shard

  // Recovery ladder around plan resolution + execution. Transient failures
  // (injected kernel faults, watchdog-cancelled batches, UVA transfer
  // errors) are retried with exponential backoff — results are a pure
  // function of (seeds, seed), so a retry returns bit-identical outputs.
  // Resource exhaustion that survived the allocator's own ladder gets one
  // retry with shed (halved) fanouts, reusing the overload-degradation
  // path. Invalid requests and internal errors fail immediately.
  bool cache_hit = false;
  int64_t compile_ns = 0;
  GroupResult result;
  bool coalesced = false;
  int64_t executions = 0;
  std::string error;
  fault::ErrorCode code = fault::ErrorCode::kOk;
  PlanKey key = leader.key;
  int transient_left = std::max(0, options_.max_transient_retries);
  bool shed_retry_used = false;
  std::chrono::nanoseconds backoff = options_.retry_backoff;

  while (true) {
    error.clear();
    code = fault::ErrorCode::kOk;
    result = GroupResult{};
    coalesced = false;
    exchange_hops = 0;
    exchange_remote_nodes = 0;
    exchange_bytes = 0;
    hedged = 0;
    // Placement: walk the home shard's replica chain. A shard.lost
    // injection at placement marks the device dead and moves on; when no
    // replica admits work the group degrades instead of failing. Guards
    // outlive the loop so the feature/scatter phase below still runs on the
    // executing device.
    if (options_.num_shards > 1) {
      fault_scope.reset();
      shard_guard.reset();
      exec_shard = -1;
      const int replicas = partition != nullptr ? partition->num_replicas() : 1;
      for (int r = 0; r < replicas; ++r) {
        const int candidate =
            partition != nullptr ? partition->ReplicaDevice(shard, r) : shard;
        if (!monitor_->AdmitWork(candidate)) {
          continue;
        }
        fault::ShardScope probe_scope(candidate);
        if (fault::Injected(fault::Site::kShardLost)) {
          shard_devices_[static_cast<size_t>(candidate)]->MarkLost();
          monitor_->ReportDeviceLost(candidate);
          continue;
        }
        exec_shard = candidate;
        break;
      }
      if (exec_shard < 0) {
        unavailable = true;
        code = fault::ErrorCode::kUnavailable;
        error = "no live replica for shard " + std::to_string(shard);
        break;
      }
      shard_guard.emplace(*shard_devices_[static_cast<size_t>(exec_shard)]);
      fault_scope.emplace(exec_shard);
    }
    try {
      bool hit = false;
      int64_t build_ns = 0;
      std::shared_ptr<core::SamplerSession> plan = plan_cache_->GetOrBuild(
          key, [&] { return BuildPlan(*endpoint, key, leader.snapshot); }, &hit, &build_ns);
      cache_hit = hit;
      compile_ns += build_ns;
      auto run_group = [&](const std::vector<tensor::IdArray>& frontiers,
                           const std::vector<uint64_t>& seeds) {
        if (partition == nullptr) {
          return ExecuteGroup(*plan, frontiers, seeds);
        }
        shard::FrontierExchange exchange(*partition, exec_shard, monitor_.get(),
                                         options_.max_hedged_exchanges);
        core::HopObserverGuard observer(exchange);
        GroupResult group_result = ExecuteGroup(*plan, frontiers, seeds);
        for (const shard::HopRecord& h : exchange.hops()) {
          if (h.remote_nodes > 0) {
            ++exchange_hops;
          }
          exchange_remote_nodes += h.remote_nodes;
          exchange_bytes += h.bytes;
        }
        hedged += exchange.hedges();
        return group_result;
      };
      if (plan->Coalescable()) {
        std::vector<tensor::IdArray> frontiers;
        std::vector<uint64_t> seeds;
        frontiers.reserve(group.size());
        seeds.reserve(group.size());
        for (auto& pending : group) {
          frontiers.push_back(pending->request.seeds);
          seeds.push_back(pending->request.seed);
        }
        result = run_group(frontiers, seeds);
        coalesced = group.size() > 1;
        executions = 1;
        break;
      }
      // Walk-style plans can't share a segmented execution; serve the
      // gathered requests back to back on this worker instead.
      result.outputs.resize(group.size());
      Timer timer;
      for (size_t i = 0; i < group.size(); ++i) {
        GroupResult solo = run_group({group[i]->request.seeds}, {group[i]->request.seed});
        result.outputs[i] = std::move(solo.outputs[0]);
      }
      result.execute_ns = timer.ElapsedNanos();
      executions = static_cast<int64_t>(group.size());
      break;
    } catch (const std::exception& e) {
      error = e.what();
      code = fault::Classify(e);
      if (monitor_ != nullptr && exec_shard >= 0 &&
          code == fault::ErrorCode::kTransient) {
        // Injected kernel faults, watchdog cancellations, and exchange
        // timeouts past the hedge budget feed the shard's suspect state;
        // the retry below re-resolves placement, so a shard the signals
        // kill gets skipped on the next attempt.
        monitor_->ReportTransient(exec_shard);
      }
    }
    if (code == fault::ErrorCode::kTransient && transient_left > 0) {
      --transient_left;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.transient_retries;
      }
      GS_LOG(Debug) << "serving: transient failure, retrying after " << backoff.count() / 1000
                    << " us: " << error;
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
      continue;
    }
    if (code == fault::ErrorCode::kResourceExhausted && options_.shed_on_resource_exhausted &&
        !shed_retry_used && !key.fanouts.empty()) {
      shed_retry_used = true;
      key.fanouts = ShedFanouts(key.fanouts);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.shed_retries;
      }
      GS_LOG(Warning) << "serving: resource exhausted, retrying with shed fanouts: " << error;
      continue;
    }
    break;  // terminal failure
  }
  if (unavailable) {
    // No live replica of the home shard: answer partially from the devices
    // still standing rather than failing the whole group.
    GS_CHECK(partition != nullptr);
    ServeDegraded(std::move(group), *endpoint, *partition);
    return;
  }
  if (monitor_ != nullptr && error.empty()) {
    monitor_->ReportSuccess(exec_shard);
    device::Device& exec_device = *shard_devices_[static_cast<size_t>(exec_shard)];
    if (exec_device.lost()) {
      exec_device.Revive();  // a backoff probe made it through
    }
  }
  if (shed_retry_used && error.empty()) {
    // Shed-fanout results are degraded regardless of admission-time state.
    for (auto& pending : group) {
      pending->degraded = true;
    }
  }
  GS_LOG(Debug) << "serving: executed group of " << group.size() << " ("
                << (cache_hit ? "plan hit" : "plan miss") << ", " << result.execute_ns / 1000
                << " us)" << (error.empty() ? "" : " FAILED");

  // Scatter results back per request.
  Timer scatter_timer;
  std::vector<SampleResponse> responses(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    Pending& pending = *group[i];
    SampleResponse& response = responses[i];
    response.request_id = pending.id;
    response.degraded = pending.degraded;
    response.group_size = coalesced ? static_cast<int>(group.size()) : 1;
    response.stages.queue_wait_ns = ElapsedNs(pending.submitted, pending.dequeued);
    response.stages.compile_ns = compile_ns;
    response.stages.plan_cache_hit = cache_hit;
    response.stages.execute_ns = result.execute_ns;
    if (error.empty()) {
      response.status = Status::kOk;
      response.outputs = std::move(result.outputs[i]);
    } else {
      response.status = Status::kFailed;
      response.error = error;
      response.code = code;
    }
  }
  const int64_t scatter_ns = scatter_timer.ElapsedNanos();

  // Feature tier: attach the gathered feature rows to every successful
  // response, each through its tenant's cache partition on this shard (the
  // shard device guard is still active, so backing pages and gather kernels
  // land on the executing shard). Coalesced members gather from their own
  // scattered outputs, so the rows are identical to being served alone.
  feature::GatherStats group_gather;
  int64_t feature_responses = 0;
  int64_t feature_wall_ns = 0;
  if (options_.serve_features && error.empty()) {
    // Pin the store: a feature mutation swaps feature_stores_[dataset] under
    // feature_mutex_, and this group must gather from one consistent tensor.
    std::shared_ptr<const feature::FeatureStore> pinned_store;
    {
      std::lock_guard<std::mutex> lock(feature_mutex_);
      auto store_it = feature_stores_.find(endpoint->dataset);
      if (store_it != feature_stores_.end()) {
        pinned_store = store_it->second;
      }
    }
    if (pinned_store != nullptr) {
      const feature::FeatureStore& store = *pinned_store;
      for (size_t i = 0; i < group.size(); ++i) {
        SampleResponse& response = responses[i];
        if (response.status != Status::kOk) {
          continue;
        }
        feature::HotSetCache* cache = TenantFeatureCache(
            exec_shard, group[i]->request.tenant, endpoint->dataset, store.row_bytes());
        Timer feature_timer;
        try {
          const tensor::IdArray& ids =
              FeatureFrontier(response.outputs, group[i]->request.seeds);
          response.features = store.Gather(ids, cache, &group_gather);
          response.feature_ids = ids;
          response.stages.feature_ns = feature_timer.ElapsedNanos();
          feature_wall_ns += response.stages.feature_ns;
          ++feature_responses;
        } catch (const std::exception& e) {
          // A failed gather (injected transfer fault) fails the response —
          // a frontier without the features the caller asked for is not a
          // success — but never the worker.
          response.status = Status::kFailed;
          response.outputs.clear();
          response.features = {};
          response.feature_ids = {};
          response.error = std::string("feature gather failed: ") + e.what();
          response.code = fault::Classify(e);
        }
      }
    }
  }

  // Service-time EMA feeding deadline admission (amortized per request).
  if (error.empty()) {
    const int64_t per_request =
        (compile_ns + result.execute_ns) / static_cast<int64_t>(group.size());
    const int64_t previous = ema_service_ns_.load(std::memory_order_relaxed);
    const int64_t next = previous == 0 ? per_request : (7 * previous + per_request) / 8;
    ema_service_ns_.store(next, std::memory_order_relaxed);
  }

  std::vector<int64_t> totals(group.size());
  const Clock::time_point done = Clock::now();
  for (size_t i = 0; i < group.size(); ++i) {
    responses[i].stages.scatter_ns = scatter_ns;
    totals[i] = ElapsedNs(group[i]->submitted, done);
    responses[i].stages.total_ns = totals[i];
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.executions += executions;
    stats_.requests_executed += static_cast<int64_t>(group.size());
    if (coalesced) {
      ++stats_.coalesced_executions;
    }
    if (error.empty() && options_.num_shards > 1) {
      stats_.exchange_hops += exchange_hops;
      stats_.exchange_remote_nodes += exchange_remote_nodes;
      stats_.exchange_bytes += exchange_bytes;
      stats_.hedged_exchanges += hedged;
      if (exec_shard != shard) {
        // Served by a non-primary replica: count one failover per execution,
        // not per coalesced member.
        ++stats_.failovers;
      }
    }
    if (feature_responses > 0) {
      stats_.feature_requests += feature_responses;
      stats_.feature_rows += group_gather.rows;
      stats_.feature_cache_hits += group_gather.hits;
      stats_.feature_cache_misses += group_gather.misses;
      stats_.feature_gather_bytes += group_gather.gathered_bytes;
      stats_.feature_miss_bytes += group_gather.miss_bytes;
      stats_.feature_gather_ns += feature_wall_ns;
    }
    for (size_t i = 0; i < group.size(); ++i) {
      if (responses[i].status == Status::kOk) {
        ++stats_.completed;
        ++stats_.per_tenant_completed[group[i]->request.tenant];
        if (options_.num_shards > 1) {
          // Attribute to the device that did the work, so failover shows up
          // in the per-shard breakdown instead of crediting the dead shard.
          ++stats_.per_shard_completed[exec_shard];
        }
        if (responses[i].degraded) {
          ++stats_.degraded;
        }
        shard_latency_[static_cast<size_t>(exec_shard)].Record(totals[i]);
      } else {
        ++stats_.failed;
        ++stats_.per_tenant_failed[group[i]->request.tenant];
        switch (responses[i].code) {
          case fault::ErrorCode::kTransient:
            ++stats_.failed_transient;
            break;
          case fault::ErrorCode::kResourceExhausted:
            ++stats_.failed_resource_exhausted;
            break;
          case fault::ErrorCode::kInvalidRequest:
            ++stats_.failed_invalid;
            break;
          default:
            ++stats_.failed_internal;
            break;
        }
      }
    }
  }
  for (size_t i = 0; i < group.size(); ++i) {
    group[i]->promise.set_value(std::move(responses[i]));
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void Server::ServeDegraded(std::vector<std::unique_ptr<Pending>> group, const Endpoint& endpoint,
                           const graph::Partition& partition) {
  // Fallback placement: the lowest-numbered live device. Every worker
  // resolves the same device for the same monitor state, so a replayed
  // fault schedule reproduces the same degraded outputs bit-for-bit.
  int exec = -1;
  for (int s = 0; s < options_.num_shards; ++s) {
    if (monitor_->Alive(s)) {
      exec = s;
      break;
    }
  }

  // Resolve the plan once for the group (shard-homogeneous key). Failures
  // here must still fulfill every promise below — no future may hang.
  std::shared_ptr<core::SamplerSession> plan;
  std::string plan_error;
  int64_t compile_ns = 0;
  bool cache_hit = false;
  if (exec >= 0) {
    device::ThreadDeviceGuard guard(*shard_devices_[static_cast<size_t>(exec)]);
    try {
      bool hit = false;
      const PlanKey& key = group.front()->key;
      plan = plan_cache_->GetOrBuild(
          key, [&] { return BuildPlan(endpoint, key, group.front()->snapshot); }, &hit,
          &compile_ns);
      cache_hit = hit;
    } catch (const std::exception& e) {
      plan_error = std::string("degraded plan resolution failed: ") + e.what();
    }
  }

  std::vector<SampleResponse> responses(group.size());
  std::vector<char> ran(group.size(), 0);
  int64_t executed = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    Pending& pending = *group[i];
    SampleResponse& response = responses[i];
    response.request_id = pending.id;
    response.group_size = 1;
    response.degraded = true;
    response.status = Status::kDegraded;
    response.stages.queue_wait_ns = ElapsedNs(pending.submitted, pending.dequeued);
    response.stages.compile_ns = compile_ns;
    response.stages.plan_cache_hit = cache_hit;
    const tensor::IdArray& seeds = pending.request.seeds;
    response.coverage =
        ha::CoverageFraction(partition, *monitor_, seeds.data(), seeds.size());
    const std::vector<int32_t> covered =
        ha::CoveredIds(partition, *monitor_, seeds.data(), seeds.size());
    if (covered.empty()) {
      // Nothing coverable: an honest empty partial (coverage says why),
      // never a request error. Feature gather is skipped in degraded mode.
      continue;
    }
    if (plan == nullptr) {
      response.status = Status::kFailed;
      response.error = exec < 0 ? "no live device for degraded serving" : plan_error;
      response.code = fault::ErrorCode::kUnavailable;
      continue;
    }
    // Serve the covered subset solo on the fallback device; coalescing is
    // pointless here because each member's covered frontier differs.
    device::ThreadDeviceGuard guard(*shard_devices_[static_cast<size_t>(exec)]);
    fault::ShardScope scope(exec);
    int transient_left = std::max(0, options_.max_transient_retries);
    while (true) {
      try {
        shard::FrontierExchange exchange(partition, exec, monitor_.get(),
                                         options_.max_hedged_exchanges);
        core::HopObserverGuard observer(exchange);
        GroupResult solo =
            ExecuteGroup(*plan, {tensor::IdArray::FromVector(covered)}, {pending.request.seed});
        response.outputs = std::move(solo.outputs[0]);
        response.stages.execute_ns = solo.execute_ns;
        ran[i] = 1;
        ++executed;
        break;
      } catch (const std::exception& e) {
        const fault::ErrorCode code = fault::Classify(e);
        if (code == fault::ErrorCode::kTransient && transient_left-- > 0) {
          continue;
        }
        response.status = Status::kFailed;
        response.error = e.what();
        response.code = code;
        break;
      }
    }
  }

  const Clock::time_point done = Clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.executions += executed;
    stats_.requests_executed += executed;
    for (size_t i = 0; i < group.size(); ++i) {
      const int64_t total = ElapsedNs(group[i]->submitted, done);
      responses[i].stages.total_ns = total;
      if (responses[i].status == Status::kDegraded) {
        ++stats_.completed;
        ++stats_.partial;
        ++stats_.per_tenant_completed[group[i]->request.tenant];
        if (ran[i]) {
          ++stats_.per_shard_completed[exec];
          shard_latency_[static_cast<size_t>(exec)].Record(total);
        }
      } else {
        ++stats_.failed;
        ++stats_.per_tenant_failed[group[i]->request.tenant];
        switch (responses[i].code) {
          case fault::ErrorCode::kTransient:
            ++stats_.failed_transient;
            break;
          case fault::ErrorCode::kResourceExhausted:
            ++stats_.failed_resource_exhausted;
            break;
          case fault::ErrorCode::kInvalidRequest:
            ++stats_.failed_invalid;
            break;
          default:
            ++stats_.failed_internal;
            break;
        }
      }
    }
  }
  for (size_t i = 0; i < group.size(); ++i) {
    group[i]->promise.set_value(std::move(responses[i]));
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServerStats snapshot = stats_;
  if (plan_cache_ != nullptr) {
    const PlanCacheStats cache = plan_cache_->stats();
    snapshot.plan_cache_hits = cache.hits;
    snapshot.plan_cache_misses = cache.misses;
    snapshot.plan_cache_evictions = cache.evictions;
    snapshot.plan_resident_bytes = cache.resident_bytes;
    snapshot.plans_saved = cache.plans_saved;
    snapshot.plans_loaded = cache.plans_loaded;
  }
  if (jit_ != nullptr) {
    const jit::JitStats jit_stats = jit::GlobalJitStats();
    snapshot.jit_regions = jit_stats.regions;
    snapshot.jit_compiled = jit_stats.compiled;
    snapshot.jit_artifact_hits = jit_stats.artifact_hits;
    snapshot.jit_hits = jit_stats.hits;
    snapshot.jit_demotions = jit_stats.demotions;
  }
  // Per-shard histograms merge exactly (aligned log-scale buckets) into the
  // server-level percentile report; unsharded servers have a single shard.
  LatencyHistogram merged;
  for (const LatencyHistogram& shard_histogram : shard_latency_) {
    merged.Merge(shard_histogram);
  }
  snapshot.latency_p50_ns = merged.Percentile(50);
  snapshot.latency_p95_ns = merged.Percentile(95);
  snapshot.latency_p99_ns = merged.Percentile(99);
  snapshot.latency_max_ns = merged.max_ns();
  return snapshot;
}

}  // namespace gs::serving
