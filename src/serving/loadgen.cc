#include "serving/loadgen.h"

#include <algorithm>
#include <future>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "serving/stats.h"

namespace gs::serving {

std::string LoadGenReport::ToString() const {
  std::ostringstream out;
  out << "loadgen: " << submitted << " submitted | " << ok << " ok, " << rejected
      << " rejected, " << deadline_exceeded << " expired, " << failed << " failed | "
      << degraded << " degraded, " << partial << " partial, " << coalesced
      << " coalesced | p50 " << p50_ns / 1000
      << " us, p95 " << p95_ns / 1000 << " us, p99 " << p99_ns / 1000 << " us | "
      << achieved_rps << " req/s over " << wall_seconds << " s";
  return out.str();
}

LoadGenReport RunOpenLoop(Server& server, const graph::Graph& graph,
                          const LoadGenOptions& options) {
  GS_CHECK_GT(options.num_requests, 0);
  GS_CHECK_GT(options.offered_rps, 0.0);
  GS_CHECK_GT(options.batch_size, 0);
  GS_CHECK_GT(options.num_tenants, 0);

  std::mt19937_64 rng(options.seed);
  std::exponential_distribution<double> inter_arrival(options.offered_rps);

  const tensor::IdArray& train = graph.train_ids();
  const int64_t pool = train.size() > 0 ? train.size() : graph.num_nodes();
  GS_CHECK_GT(pool, 0);
  std::uniform_int_distribution<int64_t> pick(0, pool - 1);
  auto make_seeds = [&]() {
    std::vector<int32_t> ids(static_cast<size_t>(options.batch_size));
    for (auto& id : ids) {
      const int64_t i = pick(rng);
      id = train.size() > 0 ? train[i] : static_cast<int32_t>(i);
    }
    return tensor::IdArray::FromVector(ids);
  };

  std::vector<std::future<SampleResponse>> futures;
  futures.reserve(static_cast<size_t>(options.num_requests));
  Timer wall;
  auto next_arrival = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < options.num_requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += std::chrono::nanoseconds(
        static_cast<int64_t>(inter_arrival(rng) * 1e9));

    SampleRequest request;
    request.algorithm = options.algorithm;
    request.dataset = options.dataset;
    request.seeds = make_seeds();
    request.seed = options.seed + static_cast<uint64_t>(i);
    request.fanouts = options.fanouts;
    request.tenant = "tenant-" + std::to_string(i % options.num_tenants);
    request.deadline = options.deadline;
    futures.push_back(server.Submit(std::move(request)));
  }

  LoadGenReport report;
  report.submitted = options.num_requests;
  LatencyHistogram latency;
  for (auto& future : futures) {
    SampleResponse response = future.get();
    switch (response.status) {
      case Status::kOk:
        ++report.ok;
        latency.Record(response.stages.total_ns);
        break;
      case Status::kRejected:
        ++report.rejected;
        break;
      case Status::kDeadlineExceeded:
        ++report.deadline_exceeded;
        break;
      case Status::kFailed:
        ++report.failed;
        break;
      case Status::kDegraded:
        // A typed partial answer, not a failure: count it (and its latency)
        // toward goodput so failover benches see coverage, not errors.
        ++report.partial;
        latency.Record(response.stages.total_ns);
        break;
    }
    if (response.degraded) {
      ++report.degraded;
    }
    if (response.group_size > 1) {
      ++report.coalesced;
    }
  }
  report.wall_seconds = static_cast<double>(wall.ElapsedNanos()) / 1e9;
  report.p50_ns = latency.Percentile(50);
  report.p95_ns = latency.Percentile(95);
  report.p99_ns = latency.Percentile(99);
  report.max_ns = latency.max_ns();
  report.achieved_rps =
      report.wall_seconds > 0 ? static_cast<double>(report.ok) / report.wall_seconds : 0.0;
  return report;
}

}  // namespace gs::serving
