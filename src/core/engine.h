// The gSampler engine (Figure 4), split into its two halves:
//
//  - CompiledPlan (core/plan.h): the immutable compilation artifact — the
//    optimized Program, pass instrumentation, layout-calibration decisions,
//    and the tuned super-batch size. Frozen plans are thread-safe by
//    construction and serializable to disk.
//  - SamplerSession (this header): the lightweight mutable execution state
//    bound to one plan — the RNG, the batch counter, tensor/graph bindings
//    and the per-session pre-computed invariant values. Many sessions can
//    share one frozen plan.
//
// CompiledSampler remains as a thin facade that owns one plan plus one
// session, keeping the original single-object API source-compatible.

#ifndef GSAMPLER_CORE_ENGINE_H_
#define GSAMPLER_CORE_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/ir.h"
#include "core/plan.h"
#include "graph/graph.h"
#include "graph/store.h"

namespace gs::core {

class BatchProducer;

// Per-session execution state over a (shared) CompiledPlan. Construction is
// cheap: no passes run and no calibration happens here — only binding setup
// and (when preprocessing is on) evaluation of batch-invariant values.
class SamplerSession {
 public:
  SamplerSession(std::shared_ptr<CompiledPlan> plan, const graph::Graph& graph,
                 std::map<std::string, tensor::Tensor> tensors = {});

  // Snapshot-pinning constructor (gs::dyn): the session holds the snapshot's
  // shared_ptr for its whole lifetime, so the epoch's adjacency and features
  // stay alive and immutable under the session even while the owning
  // GraphStore advances to later epochs. Results are bit-identical to a
  // session over snapshot->graph() directly.
  SamplerSession(std::shared_ptr<CompiledPlan> plan,
                 std::shared_ptr<const graph::Snapshot> snapshot,
                 std::map<std::string, tensor::Tensor> tensors = {});

  SamplerSession(const SamplerSession&) = delete;
  SamplerSession& operator=(const SamplerSession&) = delete;

  // Runs one mini-batch; returns one Value per program output. The first
  // call triggers layout calibration when the plan is not yet calibrated.
  std::vector<Value> Sample(const tensor::IdArray& frontier);

  // Runs a full epoch: partitions `frontiers` into mini-batches of
  // `batch_size` and samples them, using super-batches when enabled. The
  // callback (optional) receives every mini-batch result.
  using BatchCallback = std::function<void(int64_t batch_index, std::vector<Value>& outputs)>;
  void SampleEpoch(const tensor::IdArray& frontiers, int64_t batch_size,
                   const BatchCallback& callback = nullptr);

  // Re-binds a named tensor (model-driven algorithms update weights between
  // batches; doing so keeps the compiled program). Hard error after Warmup:
  // the concurrent serving path relies on bindings never changing under it —
  // create a new SamplerSession over the shared plan instead.
  void BindTensor(const std::string& name, tensor::Tensor value);

  // Binds a named relation matrix (heterogeneous programs). The matrix must
  // outlive the session. Hard error after Warmup (see BindTensor).
  void BindGraph(const std::string& name, const sparse::Matrix* matrix);

  // --- Serving hooks (gs::serving) -----------------------------------------
  //
  // The serving path runs one session from many threads at once, so it needs
  // entry points that (a) touch no mutable session state and (b) make
  // results a pure function of (frontier, seed) — independent of request
  // arrival order and of which other requests share the execution.

  // True when requests against this plan can be merged into one segmented
  // super-batch with bit-identical per-request results (per-segment RNG
  // streams). Pure walk programs are super-batch *eligible* but their steps
  // interleave draws across the whole frontier, so they serve uncoalesced.
  bool Coalescable() const { return plan_->Coalescable(); }

  // One-time preparation for concurrent serving: runs calibration and
  // pre-computation, freezes the plan, then executes once so every lazily
  // cached structure (format conversions on the base graph and precomputed
  // matrices) is materialized. After Warmup, SampleSeeded / SampleGrouped
  // are const and safe to call concurrently from multiple threads.
  void Warmup(const tensor::IdArray& frontier);

  // Thread-safe seeded sampling: the RNG stream derives from `seed` instead
  // of the internal batch counter. For coalescable plans this runs through
  // the one-segment super-batch path, so the result is bit-identical to the
  // same request served inside any coalesced group. Requires Warmup.
  std::vector<Value> SampleSeeded(const tensor::IdArray& frontier, uint64_t seed) const;

  // Thread-safe coalesced sampling: runs `group` as one segmented
  // super-batch where segment b draws exclusively from a stream derived
  // from seeds[b]. The callback receives (b, outputs) for every member, and
  // each member's outputs are bit-identical to
  // SampleSeeded(group[b], seeds[b]). Requires Warmup and Coalescable.
  void SampleGrouped(const std::vector<tensor::IdArray>& group,
                     const std::vector<uint64_t>& seeds, const BatchCallback& callback) const;

  // Analytic device-memory footprint of the session's resident state (the
  // pre-computed batch-invariant values); used by the serving plan cache to
  // enforce its byte budget.
  int64_t ResidentBytes() const;

  bool warmed_up() const { return warmed_up_; }

  // Installs the plan's compiled-kernel jump table (src/jit) on every
  // executor this session runs — including the per-call segmented executors
  // the coalesced serving path builds. nullptr restores pure interpretation.
  // Not thread-safe against concurrent sampling: install before Warmup (the
  // serving path) or between batches (tools/tests).
  void SetJitTable(std::shared_ptr<const FusedKernelTable> table);
  const std::shared_ptr<const FusedKernelTable>& jit_table() const { return jit_table_; }

  const CompiledPlan& plan() const { return *plan_; }
  std::shared_ptr<CompiledPlan> plan_ptr() const { return plan_; }
  const Program& program() const { return plan_->program(); }
  const SamplerOptions& options() const { return plan_->options(); }

  // Plan-level pass/layout counters plus this session's pre-computed count.
  OptimizationReport report() const;
  // Effective super-batch size after auto-tuning (0 until tuned).
  int effective_super_batch() const { return tuned_super_batch_; }
  std::string DebugString() const;

 private:
  void Precompute();
  void EnsureCalibrated(const tensor::IdArray& frontier);
  // Runs `group` mini-batches as one labeled super-batch and appends the
  // per-batch split results via the callback.
  void RunSuperBatch(const std::vector<tensor::IdArray>& group, int64_t first_index,
                     const BatchCallback& callback);
  // Shared labeled-super-batch body: labels frontiers, runs a segmented
  // executor (per-segment rngs when `segment_rngs` is non-empty, the shared
  // `rng` otherwise), and splits outputs per mini-batch. Const so the
  // serving path can run it concurrently after Warmup.
  void ExecuteLabeled(const std::vector<tensor::IdArray>& group, int64_t first_index,
                      Rng& rng, std::span<Rng> segment_rngs,
                      const BatchCallback& callback) const;
  int AutoTuneSuperBatch(const std::vector<tensor::IdArray>& batches);

  friend class BatchProducer;

  std::shared_ptr<CompiledPlan> plan_;  // stable address: executor_ points in
  // Pinned graph epoch (null for sessions over a caller-owned static graph).
  // Declared before graph_ so graph_ may point into *snapshot_.
  std::shared_ptr<const graph::Snapshot> snapshot_;
  const graph::Graph* graph_;
  Bindings bindings_;
  Rng rng_;
  uint64_t batch_counter_ = 0;
  Executor executor_;
  std::map<int, Value> precomputed_;
  bool needs_precompute_ = false;  // deferred until all bindings are present
  bool warmed_up_ = false;
  int tuned_super_batch_ = 0;
  std::shared_ptr<const FusedKernelTable> jit_table_;
};

// Thin facade preserving the pre-split API: compiles a plan and opens one
// session over it in a single object. New code that shares or serializes
// plans should use CompiledPlan + SamplerSession directly.
class CompiledSampler {
 public:
  CompiledSampler(Program program, const graph::Graph& graph,
                  std::map<std::string, tensor::Tensor> tensors, SamplerOptions options)
      : plan_(std::make_shared<CompiledPlan>(std::move(program), options)),
        session_(std::make_shared<SamplerSession>(plan_, graph, std::move(tensors))) {}

  // Opens a session over an existing (possibly deserialized) plan.
  CompiledSampler(std::shared_ptr<CompiledPlan> plan, const graph::Graph& graph,
                  std::map<std::string, tensor::Tensor> tensors = {})
      : plan_(std::move(plan)),
        session_(std::make_shared<SamplerSession>(plan_, graph, std::move(tensors))) {}

  using BatchCallback = SamplerSession::BatchCallback;

  std::vector<Value> Sample(const tensor::IdArray& frontier) {
    return session_->Sample(frontier);
  }
  void SampleEpoch(const tensor::IdArray& frontiers, int64_t batch_size,
                   const BatchCallback& callback = nullptr) {
    session_->SampleEpoch(frontiers, batch_size, callback);
  }
  void BindTensor(const std::string& name, tensor::Tensor value) {
    session_->BindTensor(name, std::move(value));
  }
  void BindGraph(const std::string& name, const sparse::Matrix* matrix) {
    session_->BindGraph(name, matrix);
  }
  bool Coalescable() const { return session_->Coalescable(); }
  void Warmup(const tensor::IdArray& frontier) { session_->Warmup(frontier); }
  std::vector<Value> SampleSeeded(const tensor::IdArray& frontier, uint64_t seed) const {
    return session_->SampleSeeded(frontier, seed);
  }
  void SampleGrouped(const std::vector<tensor::IdArray>& group,
                     const std::vector<uint64_t>& seeds, const BatchCallback& callback) const {
    session_->SampleGrouped(group, seeds, callback);
  }
  int64_t ResidentBytes() const { return session_->ResidentBytes(); }
  bool warmed_up() const { return session_->warmed_up(); }
  const Program& program() const { return session_->program(); }
  OptimizationReport report() const { return session_->report(); }
  int effective_super_batch() const { return session_->effective_super_batch(); }
  std::string DebugString() const { return session_->DebugString(); }

  const CompiledPlan& plan() const { return *plan_; }
  std::shared_ptr<CompiledPlan> plan_ptr() const { return plan_; }
  SamplerSession& session() { return *session_; }
  const SamplerSession& session() const { return *session_; }
  std::shared_ptr<SamplerSession> session_ptr() const { return session_; }

 private:
  std::shared_ptr<CompiledPlan> plan_;
  std::shared_ptr<SamplerSession> session_;
};

// One sampled mini-batch as produced by BatchProducer.
struct EpochBatch {
  int64_t index = 0;
  tensor::IdArray seeds;
  std::vector<Value> outputs;
};

// Pull-style batch producer over one epoch: splits `frontiers` into
// mini-batches, triggers calibration / super-batch auto-tuning exactly like
// SampleEpoch, and yields sampled batches one at a time via Next(). This is
// the producer end the pipeline executor's sample stage drives — the caller
// controls pacing, so bounded prefetch queues can apply backpressure between
// sampling and training. Super-batch groups are sampled as a unit and the
// per-batch splits buffered internally, so batch identity (and the RNG
// stream consumed per batch) is identical to SampleEpoch.
class BatchProducer {
 public:
  // Epoch-position checkpoint. Captures how many batches were delivered and
  // the session's RNG-stream position (batch counter) at epoch start —
  // because every mini-batch j draws exclusively from the stream forked at
  // counter_base + j, this is all the RNG state resume needs: a producer
  // resumed from a checkpoint yields batches bit-identical to the ones an
  // uninterrupted epoch would have delivered from that point on (for
  // programs using per-segment streams, i.e. all non-walk programs; walk
  // programs additionally need an unchanged super-batch grouping).
  struct Checkpoint {
    int64_t delivered = 0;      // batches handed out via Next()
    uint64_t counter_base = 0;  // session batch counter at epoch start
    int64_t num_batches = 0;    // epoch size, for validation
  };

  BatchProducer(SamplerSession& session, const tensor::IdArray& frontiers, int64_t batch_size);
  BatchProducer(CompiledSampler& sampler, const tensor::IdArray& frontiers, int64_t batch_size)
      : BatchProducer(sampler.session(), frontiers, batch_size) {}

  // Total mini-batches this epoch.
  int64_t num_batches() const { return static_cast<int64_t>(batches_.size()); }

  // Samples (or pops a buffered) next batch into `out`; false when the epoch
  // is exhausted.
  bool Next(EpochBatch* out);

  // Snapshot of the current epoch position (callable at any point, e.g.
  // from the recovery path after an injected fault killed the epoch).
  Checkpoint Save() const;

  // Rewinds a *fresh* producer (no Next() calls yet) over the same epoch to
  // `checkpoint`: re-pins the session's batch counter and re-samples the
  // partially-delivered super-batch group so the next Next() returns batch
  // `checkpoint.delivered`, bit-identical to the uninterrupted run.
  void Resume(const Checkpoint& checkpoint);

 private:
  SamplerSession& session_;
  std::vector<tensor::IdArray> batches_;
  int group_size_ = 1;
  size_t next_ = 0;  // next batch index not yet sampled
  uint64_t counter_base_ = 0;
  std::deque<EpochBatch> ready_;
};

}  // namespace gs::core

#endif  // GSAMPLER_CORE_ENGINE_H_
