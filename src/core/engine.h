// CompiledSampler: the gSampler engine (Figure 4).
//
// Takes a traced Program plus the input graph and named tensors, runs the
// optimization pass pipeline, pre-computes batch-invariant values,
// calibrates data layouts on the first mini-batches, and executes sampling
// per mini-batch — optionally as super-batches (Section 4.4) with automatic
// size selection under a memory budget.

#ifndef GSAMPLER_CORE_ENGINE_H_
#define GSAMPLER_CORE_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/ir.h"
#include "graph/graph.h"

namespace gs::core {

struct SamplerOptions {
  // Section 4.2: SDDMM rewrite + Extract-Select / Edge-Map / Edge-MapReduce
  // fusion + CSE + DCE. The per-rule flags below allow ablating individual
  // rules; they only apply while enable_fusion is set.
  bool enable_fusion = true;
  bool fuse_extract_select = true;
  bool fuse_edge_maps = true;
  bool rewrite_sddmm = true;
  // Section 4.2: hoist + compile-time evaluation of batch-invariant nodes.
  bool enable_preprocessing = true;
  // Section 4.3: measured format/compaction selection (kPlanned mode). When
  // off, execution uses the greedy DGL-like per-operator format policy —
  // unless greedy_when_layout_disabled is cleared, which yields the plain
  // "use whatever format the kernel produced" behaviour (Figure 10's 'P').
  bool enable_layout_selection = true;
  bool greedy_when_layout_disabled = true;
  // Section 4.4: number of mini-batches sampled per kernel sequence. 1
  // disables; 0 requests a grid search bounded by memory_budget_bytes.
  // Ignored (forced to 1) for programs containing walk operators or
  // per-batch model updates (e.g. PASS).
  int super_batch = 1;
  int64_t memory_budget_bytes = int64_t{2} * 1024 * 1024 * 1024;
  // Layout calibration batches taken from the first Sample calls.
  int calibration_batches = 1;
  uint64_t seed = 0x5EED;
};

// Summary of what the pass pipeline did to a program (for logging,
// debugging, and the optimization-walkthrough example).
struct OptimizationReport {
  int sddmm_rewrites = 0;
  int hoisted_ops = 0;
  int extract_select_fusions = 0;
  int edge_map_fusions = 0;
  int edge_map_reduce_fusions = 0;
  int cse_merged = 0;
  int precomputed_values = 0;
  int annotated_layouts = 0;   // structure nodes with a chosen format
  int compacted_extracts = 0;  // structure nodes with row compaction
  std::string ToString() const;
};

class BatchProducer;

class CompiledSampler {
 public:
  CompiledSampler(Program program, const graph::Graph& graph,
                  std::map<std::string, tensor::Tensor> tensors, SamplerOptions options);

  // Runs one mini-batch; returns one Value per program output.
  std::vector<Value> Sample(const tensor::IdArray& frontier);

  // Runs a full epoch: partitions `frontiers` into mini-batches of
  // `batch_size` and samples them, using super-batches when enabled. The
  // callback (optional) receives every mini-batch result.
  using BatchCallback = std::function<void(int64_t batch_index, std::vector<Value>& outputs)>;
  void SampleEpoch(const tensor::IdArray& frontiers, int64_t batch_size,
                   const BatchCallback& callback = nullptr);

  // Re-binds a named tensor (model-driven algorithms update weights between
  // batches; doing so keeps the compiled program).
  void BindTensor(const std::string& name, tensor::Tensor value);

  // Binds a named relation matrix (heterogeneous programs). The matrix must
  // outlive the sampler.
  void BindGraph(const std::string& name, const sparse::Matrix* matrix);

  // --- Serving hooks (gs::serving) -----------------------------------------
  //
  // The serving path runs one compiled plan from many threads at once, so it
  // needs entry points that (a) touch no mutable sampler state and (b) make
  // results a pure function of (frontier, seed) — independent of request
  // arrival order and of which other requests share the execution.

  // True when requests against this plan can be merged into one segmented
  // super-batch with bit-identical per-request results (per-segment RNG
  // streams). Pure walk programs are super-batch *eligible* but their steps
  // interleave draws across the whole frontier, so they serve uncoalesced.
  bool Coalescable() const;

  // One-time preparation for concurrent serving: runs calibration and
  // pre-computation, then executes once so every lazily cached structure
  // (format conversions on the base graph and precomputed matrices) is
  // materialized. After Warmup, SampleSeeded / SampleGrouped are const and
  // safe to call concurrently from multiple threads.
  void Warmup(const tensor::IdArray& frontier);

  // Thread-safe seeded sampling: the RNG stream derives from `seed` instead
  // of the internal batch counter. For coalescable plans this runs through
  // the one-segment super-batch path, so the result is bit-identical to the
  // same request served inside any coalesced group. Requires Warmup.
  std::vector<Value> SampleSeeded(const tensor::IdArray& frontier, uint64_t seed) const;

  // Thread-safe coalesced sampling: runs `group` as one segmented
  // super-batch where segment b draws exclusively from a stream derived
  // from seeds[b]. The callback receives (b, outputs) for every member, and
  // each member's outputs are bit-identical to
  // SampleSeeded(group[b], seeds[b]). Requires Warmup and Coalescable.
  void SampleGrouped(const std::vector<tensor::IdArray>& group,
                     const std::vector<uint64_t>& seeds,
                     const BatchCallback& callback) const;

  // Analytic device-memory footprint of the plan's resident state (the
  // pre-computed batch-invariant values); used by the serving plan cache to
  // enforce its byte budget.
  int64_t ResidentBytes() const;

  bool warmed_up() const { return warmed_up_; }

  const Program& program() const { return program_; }
  // What the pass pipeline did (layout fields are populated after the first
  // Sample call triggers calibration).
  OptimizationReport report() const;
  // Effective super-batch size after auto-tuning (0 until tuned).
  int effective_super_batch() const { return tuned_super_batch_; }
  std::string DebugString() const;

 private:
  void Precompute();
  void EnsureCalibrated(const tensor::IdArray& frontier);
  bool SuperBatchEligible() const;
  // Runs `group` mini-batches as one labeled super-batch and appends the
  // per-batch split results via the callback.
  void RunSuperBatch(const std::vector<tensor::IdArray>& group, int64_t first_index,
                     const BatchCallback& callback);
  // Shared labeled-super-batch body: labels frontiers, runs a segmented
  // executor (per-segment rngs when `segment_rngs` is non-empty, the shared
  // `rng` otherwise), and splits outputs per mini-batch. Const so the
  // serving path can run it concurrently after Warmup.
  void ExecuteLabeled(const std::vector<tensor::IdArray>& group, int64_t first_index,
                      Rng& rng, std::span<Rng> segment_rngs,
                      const BatchCallback& callback) const;
  int AutoTuneSuperBatch(const std::vector<tensor::IdArray>& batches);

  friend class BatchProducer;

  Program program_;
  OptimizationReport report_;
  const graph::Graph* graph_;
  Bindings bindings_;
  SamplerOptions options_;
  Rng rng_;
  uint64_t batch_counter_ = 0;
  Executor executor_;
  std::map<int, Value> precomputed_;
  bool needs_precompute_ = false;  // deferred until all bindings are present
  bool calibrated_ = false;
  bool warmed_up_ = false;
  int tuned_super_batch_ = 0;
};

// One sampled mini-batch as produced by BatchProducer.
struct EpochBatch {
  int64_t index = 0;
  tensor::IdArray seeds;
  std::vector<Value> outputs;
};

// Pull-style batch producer over one epoch: splits `frontiers` into
// mini-batches, triggers calibration / super-batch auto-tuning exactly like
// SampleEpoch, and yields sampled batches one at a time via Next(). This is
// the producer end the pipeline executor's sample stage drives — the caller
// controls pacing, so bounded prefetch queues can apply backpressure between
// sampling and training. Super-batch groups are sampled as a unit and the
// per-batch splits buffered internally, so batch identity (and the RNG
// stream consumed per batch) is identical to SampleEpoch.
class BatchProducer {
 public:
  // Epoch-position checkpoint. Captures how many batches were delivered and
  // the sampler's RNG-stream position (batch counter) at epoch start —
  // because every mini-batch j draws exclusively from the stream forked at
  // counter_base + j, this is all the RNG state resume needs: a producer
  // resumed from a checkpoint yields batches bit-identical to the ones an
  // uninterrupted epoch would have delivered from that point on (for
  // programs using per-segment streams, i.e. all non-walk programs; walk
  // programs additionally need an unchanged super-batch grouping).
  struct Checkpoint {
    int64_t delivered = 0;      // batches handed out via Next()
    uint64_t counter_base = 0;  // sampler batch counter at epoch start
    int64_t num_batches = 0;    // epoch size, for validation
  };

  BatchProducer(CompiledSampler& sampler, const tensor::IdArray& frontiers, int64_t batch_size);

  // Total mini-batches this epoch.
  int64_t num_batches() const { return static_cast<int64_t>(batches_.size()); }

  // Samples (or pops a buffered) next batch into `out`; false when the epoch
  // is exhausted.
  bool Next(EpochBatch* out);

  // Snapshot of the current epoch position (callable at any point, e.g.
  // from the recovery path after an injected fault killed the epoch).
  Checkpoint Save() const;

  // Rewinds a *fresh* producer (no Next() calls yet) over the same epoch to
  // `checkpoint`: re-pins the sampler's batch counter and re-samples the
  // partially-delivered super-batch group so the next Next() returns batch
  // `checkpoint.delivered`, bit-identical to the uninterrupted run.
  void Resume(const Checkpoint& checkpoint);

 private:
  CompiledSampler& sampler_;
  std::vector<tensor::IdArray> batches_;
  int group_size_ = 1;
  size_t next_ = 0;  // next batch index not yet sampled
  uint64_t counter_base_ = 0;
  std::deque<EpochBatch> ready_;
};

}  // namespace gs::core

#endif  // GSAMPLER_CORE_ENGINE_H_
