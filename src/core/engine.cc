#include "core/engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "device/device.h"
#include "sparse/batch.h"

namespace gs::core {
namespace {

// Splits labeled ids into per-segment arrays of original node ids.
std::vector<tensor::IdArray> SplitLabeledIds(const tensor::IdArray& labeled, int64_t n,
                                             int64_t num_segments) {
  std::vector<std::vector<int32_t>> per_segment(static_cast<size_t>(num_segments));
  for (int64_t i = 0; i < labeled.size(); ++i) {
    const int32_t id = labeled[i];
    if (id < 0) {
      continue;
    }
    per_segment[static_cast<size_t>(id / n)].push_back(static_cast<int32_t>(id % n));
  }
  std::vector<tensor::IdArray> out;
  out.reserve(per_segment.size());
  for (auto& ids : per_segment) {
    out.push_back(tensor::IdArray::FromVector(ids));
  }
  return out;
}

}  // namespace

SamplerSession::SamplerSession(std::shared_ptr<CompiledPlan> plan, const graph::Graph& graph,
                               std::map<std::string, tensor::Tensor> tensors)
    : plan_(std::move(plan)),
      graph_(&graph),
      rng_(plan_->options().seed),
      executor_(plan_->program(), ExecOptions{.layout = plan_->layout_mode()}),
      tuned_super_batch_(plan_->tuned_super_batch()) {
  GS_CHECK(plan_ != nullptr);
  bindings_.graph = &graph.adj();
  bindings_.tensors = std::move(tensors);
  Precompute();
}

SamplerSession::SamplerSession(std::shared_ptr<CompiledPlan> plan,
                               std::shared_ptr<const graph::Snapshot> snapshot,
                               std::map<std::string, tensor::Tensor> tensors)
    : plan_(std::move(plan)),
      snapshot_(std::move(snapshot)),
      graph_(&snapshot_->graph()),
      rng_(plan_->options().seed),
      executor_(plan_->program(), ExecOptions{.layout = plan_->layout_mode()}),
      tuned_super_batch_(plan_->tuned_super_batch()) {
  GS_CHECK(plan_ != nullptr);
  GS_CHECK(snapshot_ != nullptr);
  bindings_.graph = &graph_->adj();
  bindings_.tensors = std::move(tensors);
  Precompute();
}

void SamplerSession::Precompute() {
  if (!plan_->options().enable_preprocessing) {
    return;
  }
  try {
    precomputed_ = executor_.RunInvariant(bindings_);
  } catch (const Error& e) {
    // A named graph or tensor binding is still missing; retry on first use.
    GS_LOG(Debug) << "pre-computation deferred: " << e.what();
    precomputed_.clear();
    needs_precompute_ = true;
    return;
  }
  needs_precompute_ = false;
  // Inputs are trivially invariant; caching them buys nothing.
  for (const Node& n : plan_->program().nodes()) {
    if (n.kind == OpKind::kGraphInput || n.kind == OpKind::kTensorInput ||
        n.kind == OpKind::kFrontierInput) {
      precomputed_.erase(n.id);
    }
  }
  for (const auto& [id, value] : precomputed_) {
    executor_.SetPrecomputed(id, value);
  }
}

void SamplerSession::BindTensor(const std::string& name, tensor::Tensor value) {
  GS_CHECK(!warmed_up_) << "cannot re-bind tensor '" << name
                        << "' after Warmup(): the concurrent serving contract relies on "
                           "immutable bindings — open a new SamplerSession over the plan";
  bindings_.tensors[name] = std::move(value);
  // Invariant values may depend on the re-bound tensor; refresh them.
  if (plan_->options().enable_preprocessing && !precomputed_.empty()) {
    executor_.ClearPrecomputed();
    Precompute();
  }
}

void SamplerSession::BindGraph(const std::string& name, const sparse::Matrix* matrix) {
  GS_CHECK(!warmed_up_) << "cannot re-bind graph '" << name
                        << "' after Warmup(): the concurrent serving contract relies on "
                           "immutable bindings — open a new SamplerSession over the plan";
  GS_CHECK(matrix != nullptr);
  bindings_.named_graphs[name] = matrix;
  if (plan_->options().enable_preprocessing) {
    executor_.ClearPrecomputed();
    Precompute();
  }
}

void SamplerSession::SetJitTable(std::shared_ptr<const FusedKernelTable> table) {
  jit_table_ = std::move(table);
  executor_.SetFusedKernels(jit_table_);
}

void SamplerSession::EnsureCalibrated(const tensor::IdArray& frontier) {
  if (needs_precompute_) {
    Precompute();
    GS_CHECK(!needs_precompute_) << "pre-computation failed; missing bindings?";
  }
  if (plan_->calibrated()) {
    return;
  }
  std::vector<tensor::IdArray> calib(
      static_cast<size_t>(std::max(1, plan_->options().calibration_batches)), frontier);
  plan_->Calibrate(bindings_, calib, precomputed_, rng_);
}

std::vector<Value> SamplerSession::Sample(const tensor::IdArray& frontier) {
  EnsureCalibrated(frontier);
  Bindings b = bindings_;
  b.frontier = frontier;
  Rng rng = rng_.Fork(batch_counter_++);
  return executor_.Run(b, rng);
}

void SamplerSession::RunSuperBatch(const std::vector<tensor::IdArray>& group,
                                   int64_t first_index, const BatchCallback& callback) {
  const int64_t segments = static_cast<int64_t>(group.size());

  if (plan_->PureWalk()) {
    // Walk super-batch: concatenate the walkers, run once, split the traces
    // positionally.
    std::vector<int32_t> merged;
    std::vector<int64_t> offsets = {0};
    for (const tensor::IdArray& batch : group) {
      merged.insert(merged.end(), batch.data(), batch.data() + batch.size());
      offsets.push_back(static_cast<int64_t>(merged.size()));
    }
    Bindings bind = bindings_;
    bind.frontier = tensor::IdArray::FromVector(merged);
    Rng rng = rng_.Fork(batch_counter_);
    batch_counter_ += static_cast<uint64_t>(segments);
    std::vector<Value> outputs = executor_.Run(bind, rng);
    if (callback == nullptr) {
      return;
    }
    for (int64_t b = 0; b < segments; ++b) {
      std::vector<Value> batch_outputs;
      for (const Value& v : outputs) {
        GS_INTERNAL(v.kind == ValueKind::kIds);
        const int64_t len = offsets[b + 1] - offsets[b];
        tensor::IdArray part = tensor::IdArray::Empty(len);
        std::copy_n(v.ids.data() + offsets[b], len, part.data());
        batch_outputs.push_back(Value::OfIds(std::move(part)));
      }
      callback(first_index + b, batch_outputs);
    }
    return;
  }

  // Per-segment RNG streams forked at the same indices solo Sample() would
  // use, so a batch's result is independent of the super-batch grouping —
  // including the final partial group of an epoch.
  std::vector<Rng> segment_rngs;
  segment_rngs.reserve(static_cast<size_t>(segments));
  for (int64_t b = 0; b < segments; ++b) {
    segment_rngs.push_back(rng_.Fork(batch_counter_ + static_cast<uint64_t>(b)));
  }
  Rng rng = rng_.Fork(batch_counter_);
  batch_counter_ += static_cast<uint64_t>(segments);
  ExecuteLabeled(group, first_index, rng, segment_rngs, callback);
}

void SamplerSession::ExecuteLabeled(const std::vector<tensor::IdArray>& group,
                                    int64_t first_index, Rng& rng, std::span<Rng> segment_rngs,
                                    const BatchCallback& callback) const {
  const int64_t n = graph_->num_nodes();
  const int64_t segments = static_cast<int64_t>(group.size());

  // Label each mini-batch's frontiers into its own id space: b * N + v.
  std::vector<int32_t> labeled;
  for (int64_t b = 0; b < segments; ++b) {
    for (int64_t i = 0; i < group[static_cast<size_t>(b)].size(); ++i) {
      labeled.push_back(static_cast<int32_t>(b * n + group[static_cast<size_t>(b)][i]));
    }
  }

  Bindings bind = bindings_;
  bind.frontier = tensor::IdArray::FromVector(labeled);
  ExecOptions opts = executor_.options();
  opts.super_batch = true;
  opts.num_segments = segments;
  opts.graph_num_nodes = n;
  Executor seg_executor(plan_->program(), opts);
  seg_executor.SetFusedKernels(jit_table_);
  for (const auto& [id, value] : precomputed_) {
    seg_executor.SetPrecomputed(id, value);
  }
  std::vector<Value> outputs = seg_executor.Run(bind, rng, segment_rngs);

  if (callback == nullptr) {
    return;
  }

  // Pre-split every output once — id parts and per-segment column ranges
  // are computed in a single pass over each output, so the whole scatter is
  // linear in the super-batch instead of per-member.
  struct OutputSplit {
    std::vector<tensor::IdArray> id_parts;                // kIds
    std::vector<std::pair<int64_t, int64_t>> col_ranges;  // kMatrix
  };
  std::vector<OutputSplit> splits(outputs.size());
  for (size_t o = 0; o < outputs.size(); ++o) {
    Value& v = outputs[o];
    switch (v.kind) {
      case ValueKind::kIds:
        splits[o].id_parts = SplitLabeledIds(v.ids, n, segments);
        break;
      case ValueKind::kMatrix: {
        // Column segments are contiguous (labeled ids ascend per segment);
        // one sweep over the labeled col ids yields every batch's range.
        const sparse::IdArray& col_ids = v.matrix.col_ids();
        auto& ranges = splits[o].col_ranges;
        ranges.assign(static_cast<size_t>(segments), {0, 0});
        int64_t cursor = 0;
        for (int64_t b = 0; b < segments; ++b) {
          const int64_t begin = cursor;
          while (cursor < col_ids.size() && col_ids[cursor] / n == b) {
            ++cursor;
          }
          ranges[static_cast<size_t>(b)] = {begin, cursor};
        }
        break;
      }
      case ValueKind::kTensor:
        GS_CHECK(false) << "super-batch programs cannot return raw tensors";
    }
  }

  for (int64_t b = 0; b < segments; ++b) {
    std::vector<Value> batch_outputs;
    batch_outputs.reserve(outputs.size());
    for (size_t o = 0; o < outputs.size(); ++o) {
      Value& v = outputs[o];
      switch (v.kind) {
        case ValueKind::kIds:
          batch_outputs.push_back(Value::OfIds(splits[o].id_parts[static_cast<size_t>(b)]));
          break;
        case ValueKind::kMatrix: {
          const auto [begin, end] = splits[o].col_ranges[static_cast<size_t>(b)];
          sparse::Matrix part = sparse::SliceColumnRange(v.matrix, begin, end);
          // When rows still span the full labeled space, member b's rows
          // live in [b*N, (b+1)*N); windowed compaction keeps the scatter
          // independent of how many segments share that row dimension.
          // Layer-wise programs compact rows mid-program, leaving a small
          // row space where the generic kernel is already cheap.
          if (!v.matrix.rows_compact() && v.matrix.num_rows() == segments * n) {
            part = sparse::CompactRowsInWindow(part, b * n, (b + 1) * n);
          } else {
            part = sparse::CompactRows(part);
          }
          part.SetRowIds(sparse::MapIdsModulo(part.row_ids(), n));
          part.SetColIds(sparse::MapIdsModulo(part.col_ids(), n));
          batch_outputs.push_back(Value::OfMatrix(std::move(part)));
          break;
        }
        case ValueKind::kTensor:
          GS_CHECK(false) << "unreachable";
      }
    }
    callback(first_index + b, batch_outputs);
  }
}

void SamplerSession::Warmup(const tensor::IdArray& frontier) {
  EnsureCalibrated(frontier);
  // A warmed-up session may serve concurrently; the shared plan must never
  // change underneath it.
  plan_->Freeze();
  warmed_up_ = true;
  // One throwaway execution materializes every lazily cached structure the
  // concurrent path would otherwise race to build: format conversions on
  // the (shared) base graph and on the pre-computed invariant matrices.
  if (Coalescable()) {
    SampleGrouped({frontier}, {uint64_t{0}}, nullptr);
  } else {
    (void)SampleSeeded(frontier, uint64_t{0});
  }
}

std::vector<Value> SamplerSession::SampleSeeded(const tensor::IdArray& frontier,
                                                uint64_t seed) const {
  GS_CHECK(warmed_up_) << "Warmup() must run before concurrent sampling";
  if (!Coalescable()) {
    Bindings b = bindings_;
    b.frontier = frontier;
    Rng rng = rng_.Fork(seed);
    return executor_.Run(b, rng);
  }
  // Always go through the one-segment super-batch path so a request's
  // results do not depend on whether it was coalesced with others.
  std::vector<Value> result;
  SampleGrouped({frontier}, {seed},
                [&result](int64_t, std::vector<Value>& outputs) { result = std::move(outputs); });
  return result;
}

void SamplerSession::SampleGrouped(const std::vector<tensor::IdArray>& group,
                                   const std::vector<uint64_t>& seeds,
                                   const BatchCallback& callback) const {
  GS_CHECK(Coalescable()) << "program cannot run with per-segment rng streams";
  GS_CHECK_EQ(group.size(), seeds.size()) << "one seed per group member";
  GS_CHECK(!group.empty());
  GS_CHECK(plan_->calibrated() && !needs_precompute_)
      << "Warmup() must run before SampleGrouped";
  std::vector<Rng> segment_rngs;
  segment_rngs.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    segment_rngs.push_back(rng_.Fork(seed));
  }
  // All random draws route through the segment rngs (walk ops are excluded
  // by Coalescable); the shared rng is never consumed.
  Rng unused(uint64_t{0});
  ExecuteLabeled(group, 0, unused, segment_rngs, callback);
}

int64_t SamplerSession::ResidentBytes() const {
  auto matrix_bytes = [](const sparse::Matrix& m) {
    int64_t total = 0;
    if (!m.defined()) {
      return total;
    }
    if (m.HasFormat(sparse::Format::kCsc)) {
      const sparse::Compressed& c = m.Csc();
      total += c.indptr.bytes() + c.indices.bytes() + (c.values.defined() ? c.values.bytes() : 0);
    }
    if (m.HasFormat(sparse::Format::kCsr)) {
      const sparse::Compressed& c = m.Csr();
      total += c.indptr.bytes() + c.indices.bytes() + (c.values.defined() ? c.values.bytes() : 0);
    }
    if (m.HasFormat(sparse::Format::kCoo)) {
      const sparse::Coo& c = m.GetCoo();
      total += c.row.bytes() + c.col.bytes() + (c.values.defined() ? c.values.bytes() : 0);
    }
    if (m.has_row_ids()) {
      total += m.row_ids().bytes();
    }
    if (m.has_col_ids()) {
      total += m.col_ids().bytes();
    }
    return total;
  };
  int64_t total = 0;
  for (const auto& [id, value] : precomputed_) {
    switch (value.kind) {
      case ValueKind::kMatrix:
        total += matrix_bytes(value.matrix);
        break;
      case ValueKind::kTensor:
        total += value.tensor.defined() ? value.tensor.array().bytes() : 0;
        break;
      case ValueKind::kIds:
        total += value.ids.defined() ? value.ids.bytes() : 0;
        break;
    }
  }
  return total;
}

int SamplerSession::AutoTuneSuperBatch(const std::vector<tensor::IdArray>& batches) {
  // Grid search (Section 4.4): grow the super-batch geometrically while the
  // peak memory of a trial group stays within the budget AND per-batch
  // throughput keeps improving.
  device::CachingAllocator& allocator = device::Current().allocator();
  device::Stream& stream = device::Current().stream();
  int best = 1;
  double best_per_batch = -1.0;
  for (int b = 1; b <= static_cast<int>(batches.size()) && b <= 64; b *= 2) {
    // Two trial groups (disjoint where enough batches exist); score by the
    // worse reading so one lucky trial cannot lock in a bad size.
    double per_batch = 0.0;
    int64_t peak = 0;
    bool failed = false;
    for (int trial = 0; trial < 2 && !failed; ++trial) {
      const size_t begin = std::min(static_cast<size_t>(trial) * static_cast<size_t>(b),
                                    batches.size() - static_cast<size_t>(b));
      std::vector<tensor::IdArray> group(batches.begin() + static_cast<ptrdiff_t>(begin),
                                         batches.begin() + static_cast<ptrdiff_t>(begin + b));
      allocator.ResetPeak();
      const int64_t mem_before = allocator.stats().bytes_in_use;
      const int64_t t_before = stream.counters().virtual_ns;
      try {
        RunSuperBatch(group, 0, nullptr);
      } catch (const Error& e) {
        GS_LOG(Warning) << "super-batch " << b << " failed: " << e.what();
        failed = true;
        break;
      }
      peak = std::max(peak, allocator.stats().peak_bytes_in_use - mem_before);
      per_batch = std::max(per_batch,
                           static_cast<double>(stream.counters().virtual_ns - t_before) /
                               static_cast<double>(b));
    }
    if (failed || peak > plan_->options().memory_budget_bytes) {
      break;
    }
    // Require a clear win to grow: a marginal reading must not lock in a
    // larger super-batch.
    if (best_per_batch < 0 || per_batch < best_per_batch * 0.95) {
      best_per_batch = per_batch;
      best = b;
    }
  }
  GS_LOG(Info) << "auto-tuned super-batch size: " << best;
  return best;
}

void SamplerSession::SampleEpoch(const tensor::IdArray& frontiers, int64_t batch_size,
                                 const BatchCallback& callback) {
  BatchProducer producer(*this, frontiers, batch_size);
  EpochBatch batch;
  while (producer.Next(&batch)) {
    if (callback != nullptr) {
      callback(batch.index, batch.outputs);
    }
  }
}

OptimizationReport SamplerSession::report() const {
  OptimizationReport r = plan_->report();
  r.precomputed_values = static_cast<int>(precomputed_.size());
  return r;
}

std::string SamplerSession::DebugString() const {
  std::ostringstream out;
  out << "SamplerSession(precomputed=" << precomputed_.size() << ", warmed_up=" << warmed_up_
      << ", tuned_super_batch=" << tuned_super_batch_ << ")\n"
      << plan_->DebugString();
  return out.str();
}

BatchProducer::BatchProducer(SamplerSession& session, const tensor::IdArray& frontiers,
                             int64_t batch_size)
    : session_(session) {
  GS_CHECK_GT(batch_size, 0);
  for (int64_t begin = 0; begin < frontiers.size(); begin += batch_size) {
    const int64_t end = std::min(frontiers.size(), begin + batch_size);
    tensor::IdArray batch = tensor::IdArray::Empty(end - begin);
    std::copy_n(frontiers.data() + begin, end - begin, batch.data());
    batches_.push_back(std::move(batch));
  }
  if (batches_.empty()) {
    return;
  }
  session_.EnsureCalibrated(batches_.front());

  const CompiledPlan& plan = session_.plan();
  group_size_ = plan.options().super_batch;
  if (!plan.SuperBatchEligible()) {
    group_size_ = 1;
  } else if (group_size_ == 0) {
    if (session_.tuned_super_batch_ == 0) {
      session_.tuned_super_batch_ = session_.AutoTuneSuperBatch(batches_);
      // Persist the tuning decision into the artifact so a saved plan skips
      // the grid search on reload (skipped once the plan is frozen).
      if (!plan.frozen()) {
        session_.plan_->set_tuned_super_batch(session_.tuned_super_batch_);
      }
    }
    group_size_ = session_.tuned_super_batch_;
  }
  group_size_ = std::max(group_size_, 1);
  // Calibration and auto-tuning may consume batch-counter indices; every
  // epoch batch j forks the session RNG at counter_base_ + j from here on
  // (grouping-independent — see RunSuperBatch), which is what Save/Resume
  // rely on.
  counter_base_ = session_.batch_counter_;
}

BatchProducer::Checkpoint BatchProducer::Save() const {
  Checkpoint cp;
  cp.delivered = static_cast<int64_t>(next_) - static_cast<int64_t>(ready_.size());
  cp.counter_base = counter_base_;
  cp.num_batches = num_batches();
  return cp;
}

void BatchProducer::Resume(const Checkpoint& checkpoint) {
  GS_CHECK(next_ == 0 && ready_.empty())
      << "Resume requires a fresh producer (no batches consumed yet)";
  GS_CHECK_EQ(checkpoint.num_batches, num_batches())
      << "checkpoint is for a different epoch partitioning";
  GS_CHECK_GE(checkpoint.delivered, 0);
  GS_CHECK_LE(checkpoint.delivered, num_batches());
  // Rewind to the enclosing super-batch boundary, pin the session's RNG
  // stream position to the checkpointed epoch base, then re-sample and
  // discard the batches the interrupted run already delivered from that
  // group. Re-pinning makes resume independent of how far this producer's
  // own calibration/auto-tuning advanced the counter.
  const int64_t boundary =
      checkpoint.delivered - checkpoint.delivered % static_cast<int64_t>(group_size_);
  counter_base_ = checkpoint.counter_base;
  next_ = static_cast<size_t>(boundary);
  session_.batch_counter_ = checkpoint.counter_base + static_cast<uint64_t>(boundary);
  EpochBatch discard;
  for (int64_t j = boundary; j < checkpoint.delivered; ++j) {
    GS_INTERNAL(Next(&discard));
  }
}

bool BatchProducer::Next(EpochBatch* out) {
  GS_CHECK(out != nullptr);
  if (ready_.empty()) {
    if (next_ >= batches_.size()) {
      return false;
    }
    if (group_size_ == 1) {
      EpochBatch batch;
      batch.index = static_cast<int64_t>(next_);
      batch.seeds = batches_[next_];
      batch.outputs = session_.Sample(batches_[next_]);
      ready_.push_back(std::move(batch));
      ++next_;
    } else {
      const size_t end = std::min(batches_.size(), next_ + static_cast<size_t>(group_size_));
      std::vector<tensor::IdArray> group(batches_.begin() + static_cast<ptrdiff_t>(next_),
                                         batches_.begin() + static_cast<ptrdiff_t>(end));
      session_.RunSuperBatch(group, static_cast<int64_t>(next_),
                             [&](int64_t index, std::vector<Value>& outputs) {
                               EpochBatch batch;
                               batch.index = index;
                               batch.seeds = batches_[static_cast<size_t>(index)];
                               batch.outputs = std::move(outputs);
                               ready_.push_back(std::move(batch));
                             });
      next_ = end;
    }
  }
  GS_INTERNAL(!ready_.empty());
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace gs::core
