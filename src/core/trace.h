// Tracing front-end: the user-facing matrix-centric API (Table 4).
//
// Sampling programs are written once against symbolic handles (MVal =
// matrix, TVal = dense tensor, IVal = id array); every operation records an
// IR node. This is the role torch.fx plays in the paper: the same Pythonic
// surface, captured as a data-flow graph for whole-program optimization.
//
// Example (GraphSAGE one layer, Figure 3a):
//
//   Builder b;
//   MVal a = b.Graph();
//   IVal frontiers = b.Frontier();
//   MVal sub_a = a.Cols(frontiers);                  // A[:, frontiers]
//   MVal sample_a = sub_a.IndividualSample(k);
//   IVal next = sample_a.Row();
//   b.Output(sample_a); b.Output(next);
//   Program p = std::move(b).Build();

#ifndef GSAMPLER_CORE_TRACE_H_
#define GSAMPLER_CORE_TRACE_H_

#include <span>
#include <string>
#include <vector>

#include "core/ir.h"

namespace gs::core {

class Builder;

namespace internal {

class ValBase {
 public:
  ValBase() = default;
  ValBase(Builder* builder, int id) : builder_(builder), id_(id) {}

  int id() const { return id_; }
  Builder* builder() const { return builder_; }
  bool defined() const { return builder_ != nullptr; }

 protected:
  Builder* builder_ = nullptr;
  int id_ = -1;
};

}  // namespace internal

class TVal;
class IVal;

// Symbolic sparse matrix (a graph / subgraph).
class MVal : public internal::ValBase {
 public:
  using ValBase::ValBase;

  // ---- Extract ----
  MVal Cols(const IVal& ids) const;  // A[:, ids]
  MVal Rows(const IVal& ids) const;  // A[ids, :]

  // ---- Compute ----
  TVal Sum(int axis) const;
  MVal Broadcast(BinaryOp op, const TVal& vec, int axis) const;
  MVal Div(const TVal& vec, int axis) const { return Broadcast(BinaryOp::kDiv, vec, axis); }
  MVal Mul(const TVal& vec, int axis) const { return Broadcast(BinaryOp::kMul, vec, axis); }
  MVal Pow(float exponent) const;
  MVal operator*(float scalar) const;
  MVal operator*(const MVal& other) const;  // same-pattern elementwise
  MVal MulDense(const TVal& dense) const;   // sub_A * D, D dense (rows x cols)
  TVal MM(const TVal& dense) const;         // A @ D (SpMM)
  TVal EdgeValues() const;                  // edge values as a (nnz,) tensor
  MVal WithEdgeValues(const TVal& values) const;

  // ---- Select ----
  MVal IndividualSample(int64_t k) const;                     // uniform
  MVal IndividualSample(int64_t k, const MVal& probs) const;  // biased
  MVal CollectiveSample(int64_t k, const TVal& row_probs) const;

  // ---- Finalize ----
  IVal Row() const;
  IVal Col() const;
  MVal Compact() const;
};

// Symbolic dense tensor.
class TVal : public internal::ValBase {
 public:
  using ValBase::ValBase;

  TVal MM(const TVal& other) const;  // dense matmul
  TVal T() const;
  TVal Relu() const;
  TVal Softmax() const;
  TVal Sum(int axis) const;
  TVal Gather(const IVal& ids) const;  // rows/elements by index
  TVal Pow(float exponent) const;

  TVal operator+(const TVal& o) const;
  TVal operator-(const TVal& o) const;
  TVal operator*(const TVal& o) const;
  TVal operator/(const TVal& o) const;
  TVal operator+(float s) const;
  TVal operator*(float s) const;
  TVal operator/(float s) const;
};

// Symbolic id array.
class IVal : public internal::ValBase {
 public:
  using ValBase::ValBase;
};

class Builder {
 public:
  Builder() = default;

  // Declares the base graph input (call once).
  MVal Graph();
  // Declares an additional named relation matrix (heterogeneous programs);
  // bound via Bindings::named_graphs.
  MVal GraphNamed(const std::string& name);
  // Declares the per-batch frontier input (call once).
  IVal Frontier();
  // Declares a named dense tensor input bound at execution time.
  TVal Input(const std::string& name);

  // Marks a value as a program output; returns its position.
  int Output(const MVal& v);
  int Output(const TVal& v);
  int Output(const IVal& v);

  // Free-standing ops.
  TVal Stack(std::span<const TVal> columns);
  IVal Unique(std::span<const IVal> ids);
  IVal WalkStep(const MVal& graph, const IVal& cur);
  // Walk step with restart-to-root probability (PinSAGE/HetGNN).
  IVal WalkStepRestart(const MVal& graph, const IVal& cur, const IVal& root,
                       float restart_prob);
  IVal Node2VecStep(const MVal& graph, const IVal& cur, const IVal& prev, float p, float q);
  // Per-root top-k visit counts from walk traces; returns a matrix whose
  // values are the counts (PinSAGE importance pooling).
  MVal TopKVisited(const IVal& roots, std::span<const IVal> steps, int64_t k);

  // Finishes tracing; the Builder must not be used afterwards.
  Program Build() &&;

  // Internal: records a node (used by the value handles).
  int Emit(OpKind kind, std::vector<int> inputs, Attrs attrs = {});

 private:
  Program program_;
  std::vector<int> outputs_;
  bool has_graph_ = false;
  bool has_frontier_ = false;
};

}  // namespace gs::core

#endif  // GSAMPLER_CORE_TRACE_H_
