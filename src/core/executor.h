// IR interpreter: runs a Program per mini-batch against the sparse/tensor
// kernels on the simulated device.
//
// The executor supports three layout modes (Section 4.3 / Figure 10):
//  - kAsIs:    kernels use whatever format their inputs already have (the
//              "plain" configuration);
//  - kGreedy:  before each operator, inputs are converted to that operator's
//              single best format, ignoring conversion cost — the DGL-like
//              strategy the paper compares against;
//  - kPlanned: structure-producing nodes carry format/compaction
//              annotations chosen by the data-layout-selection pass.
//
// Super-batch execution (Section 4.4) swaps extract/select operators for
// their segmented counterparts; mini-batch b's node v travels through the
// program as the labeled id `b * N + v`, which keeps batches independent.

#ifndef GSAMPLER_CORE_EXECUTOR_H_
#define GSAMPLER_CORE_EXECUTOR_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ir.h"
#include "sparse/kernels.h"
#include "tensor/tensor.h"

namespace gs::core {

// A runtime value (tagged by the producing node's ValueKind).
struct Value {
  ValueKind kind = ValueKind::kTensor;
  sparse::Matrix matrix;
  tensor::Tensor tensor;
  tensor::IdArray ids;

  static Value OfMatrix(sparse::Matrix m);
  static Value OfTensor(tensor::Tensor t);
  static Value OfIds(tensor::IdArray i);
};

// Exact (bit-level) equality of two runtime values: same kind, and the ids /
// matrix structure+values / tensor payloads compare equal element by
// element. Used by the plan round-trip checks ("a reloaded plan samples
// bit-identically") in tests, tools/check.sh, and the serving warm-start
// test.
bool BitIdentical(const Value& a, const Value& b);

// Per-program inputs.
struct Bindings {
  const sparse::Matrix* graph = nullptr;  // base adjacency (required)
  tensor::IdArray frontier;               // per-batch frontiers
  std::map<std::string, tensor::Tensor> tensors;
  // Additional relation matrices for heterogeneous programs (Section 4.5:
  // each edge type is its own sparse matrix); keyed by GraphNamed() name.
  std::map<std::string, const sparse::Matrix*> named_graphs;
};

enum class LayoutMode {
  kAsIs,
  kGreedy,
  kPlanned,
};

// Observer of frontier hops. The executor calls OnHop once per hop operator
// (column slice, fused slice-sample, walk step) whose matrix operand spans
// the full base graph, passing that matrix and the frontier ids being
// gathered from it — exactly the points where a multi-device run would pull
// remote adjacency. shard::FrontierExchange implements this to charge the
// interconnect all-to-all; the observer is a pure cost-model tap and must
// not influence execution (sampled output is identical with or without
// one). Installed per thread so concurrent shard workers observe only their
// own executions.
class HopObserver {
 public:
  virtual ~HopObserver() = default;
  virtual void OnHop(const sparse::Matrix& graph, const tensor::IdArray& frontier) = 0;
};

// Replaces the calling thread's hop observer (nullptr clears it); returns
// the previous observer.
HopObserver* SetThreadHopObserver(HopObserver* observer);

// Scoped per-thread hop observer installation.
class HopObserverGuard {
 public:
  explicit HopObserverGuard(HopObserver& observer)
      : previous_(SetThreadHopObserver(&observer)) {}
  ~HopObserverGuard() { SetThreadHopObserver(previous_); }

  HopObserverGuard(const HopObserverGuard&) = delete;
  HopObserverGuard& operator=(const HopObserverGuard&) = delete;

 private:
  HopObserver* previous_;
};

struct ExecOptions {
  LayoutMode layout = LayoutMode::kAsIs;
  // Super-batch mode: the frontier carries labeled ids (b * N + v) spanning
  // `num_segments` mini-batches over a graph of `graph_num_nodes` nodes.
  bool super_batch = false;
  int64_t num_segments = 1;
  int64_t graph_num_nodes = 0;
};

// Per-plan jump table of natively compiled fused kernels (src/jit). The
// executor consults it before interpreting a fused operator; each entry is
// keyed by the node id whose stage pipeline / fanout was baked into the
// compiled code. Every method returns false to mean "no compiled kernel for
// this node — interpret", which is also the contract for any demoted
// region: a missing entry is always a fallback, never a failure. A table
// must be bit-identical to the interpreter (the oracle and fuzz_passes
// --jit enforce this); implementations charge the same simulated kernel
// costs as the interpreted kernels so plans and benchmarks stay comparable.
class FusedKernelTable {
 public:
  virtual ~FusedKernelTable() = default;

  // kFusedEdgeMap: fills `out` with m's structure carrying the mapped
  // values (CSC-aligned), exactly like sparse::FusedEdgeMap.
  virtual bool EdgeMap(int node_id, const sparse::Matrix& m,
                       std::span<const tensor::Tensor> operands,
                       sparse::Matrix* out) const = 0;

  // kFusedEdgeMapReduce: fills `out` with the reduced vector (the axis was
  // baked in at compile time), exactly like sparse::FusedEdgeMapReduce.
  virtual bool EdgeMapReduce(int node_id, const sparse::Matrix& m,
                             std::span<const tensor::Tensor> operands,
                             sparse::ValueArray* out) const = 0;

  // kFusedSliceSample (non-segmented only): consumes draws from `rng` in
  // exactly the interpreter's order, so the sampled neighborhood is
  // bit-identical to sparse::FusedSliceSample with the same stream.
  virtual bool SliceSample(int node_id, const sparse::Matrix& m,
                           const tensor::IdArray& cols, Rng& rng,
                           sparse::Matrix* out) const = 0;
};

class Executor {
 public:
  Executor(const Program& program, ExecOptions options);

  // Injects a compile-time value for a batch-invariant node (the
  // pre-processing optimization); the node is skipped during Run.
  void SetPrecomputed(int node_id, Value value);
  void ClearPrecomputed() { precomputed_.clear(); }

  // Executes the program and returns one Value per program output.
  //
  // `segment_rngs` (super-batch mode only) gives every segment its own RNG
  // stream: all random draws attributed to mini-batch b come exclusively
  // from segment_rngs[b], making segment b's output bit-identical to a
  // one-segment run seeded with the same stream. This is what lets the
  // serving coalescer merge concurrent requests without changing any
  // tenant's results. Empty span = legacy behavior (one shared rng,
  // statistically equivalent only). Programs with walk operators cannot be
  // run with per-segment rngs (walk steps interleave draws across the whole
  // frontier).
  std::vector<Value> Run(const Bindings& bindings, Rng& rng,
                         std::span<Rng> segment_rngs = {}) const;

  // Executes only the batch-invariant prefix (nodes marked invariant) and
  // returns their values; used by the engine to populate SetPrecomputed.
  std::map<int, Value> RunInvariant(const Bindings& bindings) const;

  const ExecOptions& options() const { return options_; }
  void set_options(const ExecOptions& options) { options_ = options; }

  // Installs the plan's compiled-kernel jump table (nullptr = interpret
  // everything). Must not race with Run(): set it before the executor is
  // shared across threads, like SetPrecomputed.
  void SetFusedKernels(std::shared_ptr<const FusedKernelTable> table) {
    fused_kernels_ = std::move(table);
  }
  const std::shared_ptr<const FusedKernelTable>& fused_kernels() const {
    return fused_kernels_;
  }

 private:
  Value Evaluate(const Node& node, std::vector<Value>& values, const Bindings& bindings,
                 Rng& rng, std::span<Rng> segment_rngs) const;

  const Program* program_;
  ExecOptions options_;
  std::map<int, Value> precomputed_;
  std::vector<int> last_use_;  // node id -> index of its last consumer
  std::shared_ptr<const FusedKernelTable> fused_kernels_;
};

}  // namespace gs::core

#endif  // GSAMPLER_CORE_EXECUTOR_H_
