#include "core/trace.h"

#include "common/error.h"

namespace gs::core {
namespace {

Builder* SameBuilder(const internal::ValBase& a, const internal::ValBase& b) {
  GS_CHECK(a.defined() && b.defined()) << "use of an undefined traced value";
  GS_CHECK(a.builder() == b.builder()) << "values belong to different Builders";
  return a.builder();
}

}  // namespace

// ---------------------------------------------------------------- MVal

MVal MVal::Cols(const IVal& ids) const {
  Builder* b = SameBuilder(*this, ids);
  return {b, b->Emit(OpKind::kSliceCols, {id(), ids.id()})};
}

MVal MVal::Rows(const IVal& ids) const {
  Builder* b = SameBuilder(*this, ids);
  return {b, b->Emit(OpKind::kSliceRows, {id(), ids.id()})};
}

TVal MVal::Sum(int axis) const {
  Attrs a;
  a.axis = axis;
  return {builder(), builder()->Emit(OpKind::kSumAxis, {id()}, a)};
}

MVal MVal::Broadcast(BinaryOp op, const TVal& vec, int axis) const {
  Builder* b = SameBuilder(*this, vec);
  Attrs a;
  a.bop = op;
  a.axis = axis;
  return {b, b->Emit(OpKind::kBroadcast, {id(), vec.id()}, a)};
}

MVal MVal::Pow(float exponent) const {
  Attrs a;
  a.bop = BinaryOp::kPow;
  a.scalar = exponent;
  return {builder(), builder()->Emit(OpKind::kEltwiseScalar, {id()}, a)};
}

MVal MVal::operator*(float scalar) const {
  Attrs a;
  a.bop = BinaryOp::kMul;
  a.scalar = scalar;
  return {builder(), builder()->Emit(OpKind::kEltwiseScalar, {id()}, a)};
}

MVal MVal::operator*(const MVal& other) const {
  Builder* b = SameBuilder(*this, other);
  Attrs a;
  a.bop = BinaryOp::kMul;
  return {b, b->Emit(OpKind::kEltwiseBinary, {id(), other.id()}, a)};
}

MVal MVal::MulDense(const TVal& dense) const {
  Builder* b = SameBuilder(*this, dense);
  Attrs a;
  a.bop = BinaryOp::kMul;
  return {b, b->Emit(OpKind::kDenseEltwise, {id(), dense.id()}, a)};
}

TVal MVal::MM(const TVal& dense) const {
  Builder* b = SameBuilder(*this, dense);
  return {b, b->Emit(OpKind::kSpMM, {id(), dense.id()})};
}

TVal MVal::EdgeValues() const {
  return {builder(), builder()->Emit(OpKind::kEdgeValues, {id()})};
}

MVal MVal::WithEdgeValues(const TVal& values) const {
  Builder* b = SameBuilder(*this, values);
  return {b, b->Emit(OpKind::kWithValues, {id(), values.id()})};
}

MVal MVal::IndividualSample(int64_t k) const {
  Attrs a;
  a.k = k;
  return {builder(), builder()->Emit(OpKind::kIndividualSample, {id()}, a)};
}

MVal MVal::IndividualSample(int64_t k, const MVal& probs) const {
  Builder* b = SameBuilder(*this, probs);
  Attrs a;
  a.k = k;
  return {b, b->Emit(OpKind::kIndividualSampleP, {id(), probs.id()}, a)};
}

MVal MVal::CollectiveSample(int64_t k, const TVal& row_probs) const {
  Builder* b = SameBuilder(*this, row_probs);
  Attrs a;
  a.k = k;
  return {b, b->Emit(OpKind::kCollectiveSample, {id(), row_probs.id()}, a)};
}

IVal MVal::Row() const { return {builder(), builder()->Emit(OpKind::kRowIds, {id()})}; }

IVal MVal::Col() const { return {builder(), builder()->Emit(OpKind::kColIds, {id()})}; }

MVal MVal::Compact() const {
  return {builder(), builder()->Emit(OpKind::kCompactRows, {id()})};
}

// ---------------------------------------------------------------- TVal

TVal TVal::MM(const TVal& other) const {
  Builder* b = SameBuilder(*this, other);
  return {b, b->Emit(OpKind::kMatMul, {id(), other.id()})};
}

TVal TVal::T() const { return {builder(), builder()->Emit(OpKind::kTranspose, {id()})}; }

TVal TVal::Relu() const { return {builder(), builder()->Emit(OpKind::kRelu, {id()})}; }

TVal TVal::Softmax() const { return {builder(), builder()->Emit(OpKind::kSoftmax, {id()})}; }

TVal TVal::Sum(int axis) const {
  Attrs a;
  a.axis = axis;
  return {builder(), builder()->Emit(OpKind::kTensorSum, {id()}, a)};
}

TVal TVal::Gather(const IVal& ids) const {
  Builder* b = SameBuilder(*this, ids);
  return {b, b->Emit(OpKind::kGatherRows, {id(), ids.id()})};
}

TVal TVal::Pow(float exponent) const {
  Attrs a;
  a.bop = BinaryOp::kPow;
  a.scalar = exponent;
  return {builder(), builder()->Emit(OpKind::kTensorBinaryScalar, {id()}, a)};
}

namespace {

TVal TensorBinary(const TVal& a, BinaryOp op, const TVal& b) {
  Builder* builder = SameBuilder(a, b);
  Attrs attrs;
  attrs.bop = op;
  return {builder, builder->Emit(OpKind::kTensorBinary, {a.id(), b.id()}, attrs)};
}

TVal TensorScalar(const TVal& a, BinaryOp op, float s) {
  Attrs attrs;
  attrs.bop = op;
  attrs.scalar = s;
  return {a.builder(), a.builder()->Emit(OpKind::kTensorBinaryScalar, {a.id()}, attrs)};
}

}  // namespace

TVal TVal::operator+(const TVal& o) const { return TensorBinary(*this, BinaryOp::kAdd, o); }
TVal TVal::operator-(const TVal& o) const { return TensorBinary(*this, BinaryOp::kSub, o); }
TVal TVal::operator*(const TVal& o) const { return TensorBinary(*this, BinaryOp::kMul, o); }
TVal TVal::operator/(const TVal& o) const { return TensorBinary(*this, BinaryOp::kDiv, o); }
TVal TVal::operator+(float s) const { return TensorScalar(*this, BinaryOp::kAdd, s); }
TVal TVal::operator*(float s) const { return TensorScalar(*this, BinaryOp::kMul, s); }
TVal TVal::operator/(float s) const { return TensorScalar(*this, BinaryOp::kDiv, s); }

// ---------------------------------------------------------------- Builder

MVal Builder::Graph() {
  GS_CHECK(!has_graph_) << "Graph() may be declared once per program";
  has_graph_ = true;
  return {this, Emit(OpKind::kGraphInput, {})};
}

IVal Builder::Frontier() {
  GS_CHECK(!has_frontier_) << "Frontier() may be declared once per program";
  has_frontier_ = true;
  return {this, Emit(OpKind::kFrontierInput, {})};
}

TVal Builder::Input(const std::string& name) {
  GS_CHECK(!name.empty()) << "tensor inputs need a name";
  Attrs a;
  a.name = name;
  return {this, Emit(OpKind::kTensorInput, {}, a)};
}

int Builder::Output(const MVal& v) {
  outputs_.push_back(v.id());
  return static_cast<int>(outputs_.size()) - 1;
}

int Builder::Output(const TVal& v) {
  outputs_.push_back(v.id());
  return static_cast<int>(outputs_.size()) - 1;
}

int Builder::Output(const IVal& v) {
  outputs_.push_back(v.id());
  return static_cast<int>(outputs_.size()) - 1;
}

TVal Builder::Stack(std::span<const TVal> columns) {
  GS_CHECK(!columns.empty());
  std::vector<int> inputs;
  for (const TVal& t : columns) {
    inputs.push_back(t.id());
  }
  return {this, Emit(OpKind::kStackColumns, std::move(inputs))};
}

IVal Builder::Unique(std::span<const IVal> ids) {
  GS_CHECK(!ids.empty());
  std::vector<int> inputs;
  for (const IVal& v : ids) {
    inputs.push_back(v.id());
  }
  return {this, Emit(OpKind::kUnique, std::move(inputs))};
}

MVal Builder::GraphNamed(const std::string& name) {
  GS_CHECK(!name.empty()) << "named graphs need a name";
  Attrs a;
  a.name = name;
  return {this, Emit(OpKind::kGraphInput, {}, a)};
}

IVal Builder::WalkStep(const MVal& graph, const IVal& cur) {
  return {this, Emit(OpKind::kWalkStep, {graph.id(), cur.id()})};
}

IVal Builder::WalkStepRestart(const MVal& graph, const IVal& cur, const IVal& root,
                              float restart_prob) {
  Attrs a;
  a.p = restart_prob;
  return {this, Emit(OpKind::kWalkRestartStep, {graph.id(), cur.id(), root.id()}, a)};
}

MVal Builder::TopKVisited(const IVal& roots, std::span<const IVal> steps, int64_t k) {
  GS_CHECK(!steps.empty());
  std::vector<int> inputs = {roots.id()};
  for (const IVal& s : steps) {
    inputs.push_back(s.id());
  }
  Attrs a;
  a.k = k;
  return {this, Emit(OpKind::kTopKVisited, std::move(inputs), a)};
}

IVal Builder::Node2VecStep(const MVal& graph, const IVal& cur, const IVal& prev, float p,
                           float q) {
  Attrs a;
  a.p = p;
  a.q = q;
  return {this, Emit(OpKind::kNode2VecStep, {graph.id(), cur.id(), prev.id()}, a)};
}

Program Builder::Build() && {
  program_.SetOutputs(std::move(outputs_));
  program_.Verify();
  return std::move(program_);
}

int Builder::Emit(OpKind kind, std::vector<int> inputs, Attrs attrs) {
  return program_.Add(kind, std::move(inputs), std::move(attrs));
}

}  // namespace gs::core
