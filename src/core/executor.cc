#include "core/executor.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "device/device.h"
#include "fault/status.h"
#include "sparse/batch.h"
#include "sparse/fused.h"
#include "tensor/ops.h"

namespace gs::core {
namespace {

// Rebuilds a matrix carrying only `format` (structure arrays are shared, so
// this is cheap); used to enforce layout annotations.
sparse::Matrix KeepOnlyFormat(const sparse::Matrix& m, sparse::Format format) {
  sparse::Matrix out;
  switch (format) {
    case sparse::Format::kCsc: {
      sparse::Compressed csc = m.Csc();
      out = sparse::Matrix::FromCsc(m.num_rows(), m.num_cols(), std::move(csc));
      break;
    }
    case sparse::Format::kCsr: {
      sparse::Compressed csr = m.Csr();
      out = sparse::Matrix::FromCsr(m.num_rows(), m.num_cols(), std::move(csr));
      break;
    }
    case sparse::Format::kCoo: {
      sparse::Coo coo = m.GetCoo();
      out = sparse::Matrix::FromCoo(m.num_rows(), m.num_cols(), std::move(coo));
      break;
    }
  }
  out.SetRowIds(m.row_ids());
  out.SetColIds(m.col_ids());
  out.SetRowsCompact(m.rows_compact());
  out.SetUvaCache(m.uva_cache());
  return out;
}

// The single best input format per operator, used by the greedy (DGL-like)
// layout mode.
sparse::Format GreedyPreferredFormat(const Node& node) {
  switch (node.kind) {
    case OpKind::kSliceCols:
    case OpKind::kIndividualSample:
    case OpKind::kIndividualSampleP:
    case OpKind::kFusedSliceSample:
    case OpKind::kWalkStep:
    case OpKind::kNode2VecStep:
      return sparse::Format::kCsc;
    case OpKind::kSliceRows:
    case OpKind::kCollectiveSample:
    case OpKind::kSpMM:
      return sparse::Format::kCsr;
    case OpKind::kSumAxis:
      return node.attrs.axis == 0 ? sparse::Format::kCsr : sparse::Format::kCsc;
    case OpKind::kRowIds:
      return sparse::Format::kCoo;
    default:
      return sparse::Format::kCsc;
  }
}

void EnsureFormat(const sparse::Matrix& m, sparse::Format format) {
  switch (format) {
    case sparse::Format::kCsc:
      m.Csc();
      break;
    case sparse::Format::kCsr:
      m.Csr();
      break;
    case sparse::Format::kCoo:
      m.GetCoo();
      break;
  }
}

thread_local HopObserver* t_hop_observer = nullptr;

// Notifies the observer when `n` is a frontier hop against the base graph:
// a slice/sample/walk whose matrix operand has no column id map (only the
// full adjacency — and matrices sharing its column space — qualifies;
// already-sliced subgraphs are local by construction).
void NotifyHop(HopObserver* observer, const Node& n, const std::vector<Value>& values) {
  switch (n.kind) {
    case OpKind::kSliceCols:
    case OpKind::kFusedSliceSample:
    case OpKind::kWalkStep:
    case OpKind::kWalkRestartStep:
    case OpKind::kNode2VecStep:
      break;
    default:
      return;
  }
  const Value& m = values[static_cast<size_t>(n.inputs[0])];
  const Value& ids = values[static_cast<size_t>(n.inputs[1])];
  if (m.kind != ValueKind::kMatrix || !m.matrix.defined() || m.matrix.has_col_ids() ||
      ids.kind != ValueKind::kIds || !ids.ids.defined()) {
    return;
  }
  observer->OnHop(m.matrix, ids.ids);
}

}  // namespace

HopObserver* SetThreadHopObserver(HopObserver* observer) {
  HopObserver* previous = t_hop_observer;
  t_hop_observer = observer;
  return previous;
}

Value Value::OfMatrix(sparse::Matrix m) {
  Value v;
  v.kind = ValueKind::kMatrix;
  v.matrix = std::move(m);
  return v;
}

Value Value::OfTensor(tensor::Tensor t) {
  Value v;
  v.kind = ValueKind::kTensor;
  v.tensor = std::move(t);
  return v;
}

Value Value::OfIds(tensor::IdArray i) {
  Value v;
  v.kind = ValueKind::kIds;
  v.ids = std::move(i);
  return v;
}

namespace {

template <typename T>
bool SameArray(const device::Array<T>& a, const device::Array<T>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  if (a.size() == 0) {
    return true;
  }
  return std::memcmp(a.data(), b.data(), static_cast<size_t>(a.bytes())) == 0;
}

bool SameCompressed(const sparse::Compressed& a, const sparse::Compressed& b) {
  return SameArray(a.indptr, b.indptr) && SameArray(a.indices, b.indices) &&
         a.values.defined() == b.values.defined() &&
         (!a.values.defined() || SameArray(a.values, b.values));
}

}  // namespace

bool BitIdentical(const Value& a, const Value& b) {
  if (a.kind != b.kind) {
    return false;
  }
  switch (a.kind) {
    case ValueKind::kIds:
      return SameArray(a.ids, b.ids);
    case ValueKind::kTensor: {
      if (a.tensor.defined() != b.tensor.defined()) {
        return false;
      }
      if (!a.tensor.defined()) {
        return true;
      }
      return a.tensor.shape() == b.tensor.shape() && SameArray(a.tensor.array(), b.tensor.array());
    }
    case ValueKind::kMatrix: {
      const sparse::Matrix& m = a.matrix;
      const sparse::Matrix& n = b.matrix;
      if (m.defined() != n.defined()) {
        return false;
      }
      if (!m.defined()) {
        return true;
      }
      if (m.num_rows() != n.num_rows() || m.num_cols() != n.num_cols()) {
        return false;
      }
      // Compare through one canonical format so the answer does not depend
      // on which representations happen to be materialized.
      if (!SameCompressed(m.Csc(), n.Csc())) {
        return false;
      }
      if (m.has_row_ids() != n.has_row_ids() || m.has_col_ids() != n.has_col_ids()) {
        return false;
      }
      if (m.has_row_ids() && !SameArray(m.row_ids(), n.row_ids())) {
        return false;
      }
      if (m.has_col_ids() && !SameArray(m.col_ids(), n.col_ids())) {
        return false;
      }
      return true;
    }
  }
  return false;
}

Executor::Executor(const Program& program, ExecOptions options)
    : program_(&program), options_(options) {
  last_use_.assign(static_cast<size_t>(program.size()), -1);
  for (const Node& n : program.nodes()) {
    for (int in : n.inputs) {
      last_use_[static_cast<size_t>(in)] = std::max(last_use_[static_cast<size_t>(in)], n.id);
    }
  }
  for (int out : program.outputs()) {
    last_use_[static_cast<size_t>(out)] = program.size();  // never freed
  }
  // A compact_rows annotation on a node feeding a collective sample is not a
  // layout choice but a semantic change: compaction drops rows that carry no
  // edges, and a dropped row with positive probability can no longer be
  // drawn. The layout pass never proposes it; reject it here so a
  // hand-edited or corrupted plan cannot silently sample a different
  // distribution.
  if (options_.layout == LayoutMode::kPlanned) {
    for (const Node& n : program.nodes()) {
      if (n.kind == OpKind::kCollectiveSample && !n.inputs.empty()) {
        const Node& in = program.node(n.inputs[0]);
        GS_CHECK(!in.compact_rows)
            << "node " << in.id << " feeds collective sample " << n.id
            << " and must not be row-compacted (compaction changes which rows can be drawn)";
      }
    }
  }
}

void Executor::SetPrecomputed(int node_id, Value value) {
  precomputed_[node_id] = std::move(value);
}

std::vector<Value> Executor::Run(const Bindings& bindings, Rng& rng,
                                 std::span<Rng> segment_rngs) const {
  GS_CHECK(bindings.graph != nullptr) << "bindings must provide the base graph";
  if (!segment_rngs.empty()) {
    GS_CHECK(options_.super_batch) << "per-segment rngs require super-batch mode";
    GS_CHECK_GE(static_cast<int64_t>(segment_rngs.size()), options_.num_segments)
        << "need one rng per segment";
  }
  // Watchdog: drain flags left by kernels that ran outside any executor
  // (model math, feature gathers), then cancel this batch if any program
  // node's kernels blow past the profile's time estimate (see
  // device/stream.h). The caller (serving retry ladder, trainer
  // checkpoint) decides whether to retry.
  device::Stream& stream = device::Current().stream();
  stream.TakeStuckKernels();
  std::vector<Value> values(static_cast<size_t>(program_->size()));
  for (const Node& n : program_->nodes()) {
    auto pre = precomputed_.find(n.id);
    if (pre != precomputed_.end()) {
      values[static_cast<size_t>(n.id)] = pre->second;
    } else {
      values[static_cast<size_t>(n.id)] = Evaluate(n, values, bindings, rng, segment_rngs);
      if (t_hop_observer != nullptr) {
        // Fires before the free loop below so hop inputs are still alive.
        NotifyHop(t_hop_observer, n, values);
      }
    }
    if (stream.TakeStuckKernels() > 0) {
      throw fault::TransientError(
          "watchdog: kernel in node " + std::to_string(n.id) + " (" + OpKindName(n.kind) +
          ") exceeded " + std::to_string(stream.profile().watchdog_multiple) +
          "x its device-profile time estimate; batch cancelled");
    }
    // Free inputs whose last consumer just ran (keeps simulated device
    // memory accounting tight, like stream-ordered frees on GPU).
    for (int in : n.inputs) {
      if (last_use_[static_cast<size_t>(in)] == n.id) {
        values[static_cast<size_t>(in)] = Value{};
      }
    }
  }
  std::vector<Value> outputs;
  outputs.reserve(program_->outputs().size());
  for (int out : program_->outputs()) {
    outputs.push_back(values[static_cast<size_t>(out)]);
  }
  return outputs;
}

std::map<int, Value> Executor::RunInvariant(const Bindings& bindings) const {
  GS_CHECK(bindings.graph != nullptr);
  Rng rng(uint64_t{0});  // invariant nodes are deterministic; rng is never consumed
  std::vector<Value> values(static_cast<size_t>(program_->size()));
  std::map<int, Value> result;
  for (const Node& n : program_->nodes()) {
    if (!n.invariant) {
      continue;
    }
    values[static_cast<size_t>(n.id)] = Evaluate(n, values, bindings, rng, {});
    result[n.id] = values[static_cast<size_t>(n.id)];
  }
  return result;
}

Value Executor::Evaluate(const Node& node, std::vector<Value>& values,
                         const Bindings& bindings, Rng& rng,
                         std::span<Rng> segment_rngs) const {
  auto matrix_in = [&](int slot) -> const sparse::Matrix& {
    const Value& v = values[static_cast<size_t>(node.inputs[static_cast<size_t>(slot)])];
    GS_CHECK(v.kind == ValueKind::kMatrix && v.matrix.defined())
        << "node " << node.id << " expects a matrix input";
    return v.matrix;
  };
  auto tensor_in = [&](int slot) -> const tensor::Tensor& {
    const Value& v = values[static_cast<size_t>(node.inputs[static_cast<size_t>(slot)])];
    GS_CHECK(v.kind == ValueKind::kTensor && v.tensor.defined())
        << "node " << node.id << " expects a tensor input";
    return v.tensor;
  };
  auto ids_in = [&](int slot) -> const tensor::IdArray& {
    const Value& v = values[static_cast<size_t>(node.inputs[static_cast<size_t>(slot)])];
    GS_CHECK(v.kind == ValueKind::kIds && v.ids.defined())
        << "node " << node.id << " expects an ids input";
    return v.ids;
  };

  // Greedy layout: convert the primary matrix input to the op's favorite
  // format up front, conversion cost be damned (the DGL-like policy).
  if (options_.layout == LayoutMode::kGreedy && !node.inputs.empty()) {
    const Value& first = values[static_cast<size_t>(node.inputs[0])];
    if (first.kind == ValueKind::kMatrix && first.matrix.defined()) {
      EnsureFormat(first.matrix, GreedyPreferredFormat(node));
    }
  }

  // Finalizes a structure-op result according to layout annotations.
  auto finish_structure = [&](sparse::Matrix m) -> Value {
    if (options_.layout == LayoutMode::kPlanned) {
      if (node.compact_rows && !m.rows_compact()) {
        m = sparse::CompactRows(m);
      }
      if (node.has_format_choice) {
        EnsureFormat(m, node.chosen_format);
        m = KeepOnlyFormat(m, node.chosen_format);
      }
    }
    return Value::OfMatrix(std::move(m));
  };

  const bool seg = options_.super_batch;

  switch (node.kind) {
    case OpKind::kGraphInput: {
      if (node.attrs.name.empty()) {
        return Value::OfMatrix(*bindings.graph);
      }
      auto it = bindings.named_graphs.find(node.attrs.name);
      GS_CHECK(it != bindings.named_graphs.end() && it->second != nullptr)
          << "missing graph binding '" << node.attrs.name << "'";
      return Value::OfMatrix(*it->second);
    }
    case OpKind::kFrontierInput:
      GS_CHECK(bindings.frontier.defined()) << "bindings must provide frontiers";
      return Value::OfIds(bindings.frontier);
    case OpKind::kTensorInput: {
      auto it = bindings.tensors.find(node.attrs.name);
      GS_CHECK(it != bindings.tensors.end())
          << "missing tensor binding '" << node.attrs.name << "'";
      return Value::OfTensor(it->second);
    }

    case OpKind::kSliceCols:
      if (seg) {
        return finish_structure(sparse::SegmentedSliceColumns(matrix_in(0), ids_in(1),
                                                              options_.num_segments));
      }
      return finish_structure(sparse::SliceColumns(matrix_in(0), ids_in(1)));
    case OpKind::kSliceRows:
      return finish_structure(sparse::SliceRows(matrix_in(0), ids_in(1)));

    case OpKind::kSumAxis:
      return Value::OfTensor(tensor::Tensor::FromArray(
          {node.attrs.axis == 0 ? matrix_in(0).num_rows() : matrix_in(0).num_cols()},
          sparse::SumAxis(matrix_in(0), node.attrs.axis)));
    case OpKind::kBroadcast:
      return Value::OfMatrix(sparse::Broadcast(matrix_in(0), node.attrs.bop,
                                               tensor_in(1).array(), node.attrs.axis));
    case OpKind::kEltwiseScalar:
      return Value::OfMatrix(
          sparse::EltwiseScalar(matrix_in(0), node.attrs.bop, node.attrs.scalar));
    case OpKind::kEltwiseBinary:
      return Value::OfMatrix(sparse::EltwiseBinary(matrix_in(0), node.attrs.bop, matrix_in(1)));
    case OpKind::kDenseEltwise:
      return Value::OfMatrix(sparse::DenseEltwise(matrix_in(0), node.attrs.bop, tensor_in(1)));
    case OpKind::kSpMM:
      return Value::OfTensor(sparse::SpMM(matrix_in(0), tensor_in(1)));
    case OpKind::kSddmm:
      return Value::OfMatrix(
          sparse::Sddmm(matrix_in(0), tensor_in(1), tensor_in(2), node.attrs.flag));
    case OpKind::kEdgeValues:
      return Value::OfTensor(tensor::Tensor::FromArray(
          {matrix_in(0).nnz()}, matrix_in(0).ValuesFor(sparse::Format::kCsc)));
    case OpKind::kWithValues: {
      const tensor::Tensor& t = tensor_in(1);
      GS_CHECK_EQ(t.numel(), matrix_in(0).nnz()) << "WithValues size mismatch";
      return Value::OfMatrix(matrix_in(0).WithValues(sparse::Format::kCsc, t.array()));
    }

    case OpKind::kMatMul:
      return Value::OfTensor(tensor::MatMul(tensor_in(0), tensor_in(1)));
    case OpKind::kTranspose:
      return Value::OfTensor(tensor::Transpose(tensor_in(0)));
    case OpKind::kRelu:
      return Value::OfTensor(tensor::Relu(tensor_in(0)));
    case OpKind::kSoftmax:
      return Value::OfTensor(tensor::Softmax(tensor_in(0)));
    case OpKind::kTensorBinary:
      return Value::OfTensor(tensor::Binary(node.attrs.bop, tensor_in(0), tensor_in(1)));
    case OpKind::kTensorBinaryScalar:
      return Value::OfTensor(
          tensor::BinaryScalar(node.attrs.bop, tensor_in(0), node.attrs.scalar));
    case OpKind::kGatherRows: {
      const tensor::Tensor& t = tensor_in(0);
      tensor::IdArray index = ids_in(1);
      if (seg && options_.graph_num_nodes > 0 && t.rows() == options_.graph_num_nodes) {
        // Labeled id space -> original node ids for graph-sized tensors.
        index = sparse::MapIdsModulo(index, options_.graph_num_nodes);
      }
      return Value::OfTensor(tensor::GatherRows(t, index));
    }
    case OpKind::kStackColumns: {
      std::vector<tensor::Tensor> columns;
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        columns.push_back(tensor_in(static_cast<int>(i)));
      }
      return Value::OfTensor(tensor::StackColumns(columns));
    }
    case OpKind::kTensorSum:
      return Value::OfTensor(tensor::SumAxis(tensor_in(0), node.attrs.axis));

    case OpKind::kIndividualSample:
      if (seg && !segment_rngs.empty()) {
        return finish_structure(sparse::SegmentedIndividualSample(
            matrix_in(0), node.attrs.k, sparse::ValueArray{}, options_.graph_num_nodes,
            segment_rngs));
      }
      return finish_structure(
          sparse::IndividualSample(matrix_in(0), node.attrs.k, sparse::ValueArray{}, rng));
    case OpKind::kIndividualSampleP: {
      const sparse::Matrix& m = matrix_in(0);
      const sparse::Matrix& probs = matrix_in(1);
      GS_CHECK(m.SharesPatternWith(probs))
          << "individual_sample probs must share the matrix's sparsity pattern";
      if (seg && !segment_rngs.empty()) {
        return finish_structure(sparse::SegmentedIndividualSample(
            m, node.attrs.k, probs.ValuesFor(sparse::Format::kCsc), options_.graph_num_nodes,
            segment_rngs));
      }
      return finish_structure(
          sparse::IndividualSample(m, node.attrs.k, probs.ValuesFor(sparse::Format::kCsc), rng));
    }
    case OpKind::kCollectiveSample:
      if (seg) {
        if (!segment_rngs.empty()) {
          return finish_structure(sparse::SegmentedCollectiveSample(
              matrix_in(0), node.attrs.k, tensor_in(1).array(), options_.graph_num_nodes,
              segment_rngs));
        }
        return finish_structure(sparse::SegmentedCollectiveSample(
            matrix_in(0), node.attrs.k, tensor_in(1).array(), options_.graph_num_nodes, rng));
      }
      return finish_structure(
          sparse::CollectiveSample(matrix_in(0), node.attrs.k, tensor_in(1).array(), rng));

    case OpKind::kRowIds:
      return Value::OfIds(sparse::RowIds(matrix_in(0)));
    case OpKind::kColIds:
      return Value::OfIds(sparse::ColIds(matrix_in(0)));
    case OpKind::kCompactRows:
      return finish_structure(sparse::CompactRows(matrix_in(0)));
    case OpKind::kUnique: {
      std::vector<tensor::IdArray> arrays;
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        arrays.push_back(ids_in(static_cast<int>(i)));
      }
      return Value::OfIds(sparse::Unique(arrays));
    }

    case OpKind::kWalkStep:
      GS_CHECK(segment_rngs.empty()) << "walk ops cannot use per-segment rngs";
      return Value::OfIds(sparse::UniformWalkStep(matrix_in(0), ids_in(1), rng));
    case OpKind::kWalkRestartStep:
      GS_CHECK(segment_rngs.empty()) << "walk ops cannot use per-segment rngs";
      return Value::OfIds(sparse::UniformWalkStepRestart(matrix_in(0), ids_in(1), ids_in(2),
                                                         node.attrs.p, rng));
    case OpKind::kNode2VecStep:
      GS_CHECK(segment_rngs.empty()) << "walk ops cannot use per-segment rngs";
      return Value::OfIds(sparse::Node2VecStep(matrix_in(0), ids_in(1), ids_in(2),
                                               node.attrs.p, node.attrs.q, rng));
    case OpKind::kTopKVisited: {
      std::vector<tensor::IdArray> steps;
      for (size_t i = 1; i < node.inputs.size(); ++i) {
        steps.push_back(ids_in(static_cast<int>(i)));
      }
      return Value::OfMatrix(
          sparse::TopKVisited(steps, ids_in(0), node.attrs.k, bindings.graph->num_rows()));
    }

    case OpKind::kFusedSliceSample:
      if (seg) {
        // Segmented slice-sample interleaves per-segment rng streams; only
        // the interpreter implements that schedule, so super-batch mode
        // never consults the jump table here.
        if (!segment_rngs.empty()) {
          return finish_structure(sparse::SegmentedFusedSliceSample(
              matrix_in(0), ids_in(1), options_.num_segments, node.attrs.k, segment_rngs));
        }
        return finish_structure(sparse::SegmentedFusedSliceSample(
            matrix_in(0), ids_in(1), options_.num_segments, node.attrs.k, rng));
      }
      if (fused_kernels_ != nullptr) {
        sparse::Matrix jit_out;
        if (fused_kernels_->SliceSample(node.id, matrix_in(0), ids_in(1), rng, &jit_out)) {
          return finish_structure(std::move(jit_out));
        }
      }
      return finish_structure(
          sparse::FusedSliceSample(matrix_in(0), ids_in(1), node.attrs.k, rng));
    case OpKind::kFusedEdgeMap: {
      std::vector<tensor::Tensor> operands;
      for (size_t i = 1; i < node.inputs.size(); ++i) {
        operands.push_back(tensor_in(static_cast<int>(i)));
      }
      if (fused_kernels_ != nullptr) {
        sparse::Matrix jit_out;
        if (fused_kernels_->EdgeMap(node.id, matrix_in(0), operands, &jit_out)) {
          return Value::OfMatrix(std::move(jit_out));
        }
      }
      return Value::OfMatrix(sparse::FusedEdgeMap(matrix_in(0), node.attrs.stages, operands));
    }
    case OpKind::kFusedEdgeMapReduce: {
      std::vector<tensor::Tensor> operands;
      for (size_t i = 1; i < node.inputs.size(); ++i) {
        operands.push_back(tensor_in(static_cast<int>(i)));
      }
      const sparse::Matrix& m = matrix_in(0);
      if (fused_kernels_ != nullptr) {
        sparse::ValueArray jit_reduced;
        if (fused_kernels_->EdgeMapReduce(node.id, m, operands, &jit_reduced)) {
          return Value::OfTensor(tensor::Tensor::FromArray(
              {node.attrs.axis == 0 ? m.num_rows() : m.num_cols()}, std::move(jit_reduced)));
        }
      }
      sparse::ValueArray reduced =
          sparse::FusedEdgeMapReduce(m, node.attrs.stages, operands, node.attrs.axis);
      return Value::OfTensor(tensor::Tensor::FromArray(
          {node.attrs.axis == 0 ? m.num_rows() : m.num_cols()}, std::move(reduced)));
    }
    case OpKind::kConvertFormat: {
      const sparse::Matrix& m = matrix_in(0);
      EnsureFormat(m, node.attrs.format);
      return Value::OfMatrix(KeepOnlyFormat(m, node.attrs.format));
    }
  }
  GS_CHECK(false) << "unhandled op " << OpKindName(node.kind);
  return {};
}

}  // namespace gs::core
