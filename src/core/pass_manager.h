// PassManager: the optimization pipeline as registered, named, instrumented
// passes.
//
// The pass sequence used to be hardcoded in the CompiledSampler constructor;
// extracting it gives every pass a name, per-pass instrumentation (rewrite
// counts, node deltas, wall time, virtual device time), an enforced
// Program::Verify() at every pass boundary (always in debug builds, behind
// an option or the GS_VERIFY_PASSES environment variable in release), and
// an optional after-each-pass IR dump for debugging rewrites.

#ifndef GSAMPLER_CORE_PASS_MANAGER_H_
#define GSAMPLER_CORE_PASS_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ir.h"

namespace gs::core {

// What one pass did to the program.
struct PassStats {
  std::string name;
  int rewrites = 0;       // pass-reported count (rewrites, fusions, hoists, ...)
  int nodes_before = 0;
  int nodes_after = 0;
  int64_t wall_ns = 0;    // host wall time spent in the pass
  int64_t virtual_ns = 0; // simulated device time charged (layout calibration)
  bool verified = false;  // Program::Verify() ran after this pass

  std::string ToString() const;
};

struct PassManagerOptions {
  // Verify the program after every pass. Debug builds verify unconditionally;
  // release builds verify when this is set or GS_VERIFY_PASSES is in the
  // environment (see PassVerificationEnabled).
  bool verify = false;
  // Dump the IR after each pass through `dump_sink` (default: GS_LOG(Debug)).
  bool dump_ir = false;
  std::function<void(const PassStats&, const Program&)> dump_sink;
  // Run only the first `pass_limit` registered passes (-1 = all). This is the
  // bisection hook the differential fuzzer (tools/fuzz_passes) uses to find
  // the earliest pass prefix that reproduces a divergence.
  int pass_limit = -1;
};

// True when the named environment toggle is present. Lookups are cached per
// name, so the hooks that consult this on hot paths (pass-boundary
// verification, the JIT's per-region self-check in src/jit) cost one map
// probe after the first call.
bool EnvFlagEnabled(const char* name);

// True when pass-boundary verification should run: always in debug builds;
// in release builds when `flag` is set or GS_VERIFY_PASSES is set in the
// environment.
bool PassVerificationEnabled(bool flag);

class PassManager {
 public:
  // A pass rewrites the program in place and returns how many rewrites it
  // performed (0 for analysis-only passes such as invariant marking).
  using PassFn = std::function<int(Program&)>;

  void Register(std::string name, PassFn fn);

  size_t size() const { return passes_.size(); }
  std::vector<std::string> names() const;

  // Runs every registered pass in order; appends one PassStats per pass to
  // `stats` (when non-null). Throws gs::Error if a verification fails.
  void Run(Program& program, const PassManagerOptions& options,
           std::vector<PassStats>* stats) const;

  // Runs a single pass with the same instrumentation and verification as a
  // registered pipeline. Used for the calibration-time layout pass, which
  // needs runtime bindings a compile-time pipeline cannot carry.
  static PassStats RunOne(const std::string& name, Program& program,
                          const PassManagerOptions& options, const PassFn& fn);

 private:
  struct Entry {
    std::string name;
    PassFn fn;
  };
  std::vector<Entry> passes_;
};

}  // namespace gs::core

#endif  // GSAMPLER_CORE_PASS_MANAGER_H_
