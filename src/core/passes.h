// IR optimization passes (Section 4.2 - 4.4 of the paper).
//
// Pass pipeline (driven by core/engine.cc):
//   1. RewriteSddmm          — sub_A * (U @ V^T)  ->  SDDMM
//   2. HoistOverExtract      — move batch-invariant edge ops above A[:, f]
//   3. MarkInvariant         — flag nodes computable at compile time
//   4. FuseExtractSelect     — A[:, f].individual_sample(k) -> fused kernel
//   5. FuseEdgeMaps          — collapse edge-map chains (no intermediates)
//   6. FuseEdgeMapReduce     — absorb maps into reductions
//   7. EliminateCommonSubexpressions, DeadCodeElimination
//   8. SelectDataLayout      — measured, cost-aware format + compaction
//
// Super-batch (Section 4.4) is an execution-mode transform: the Executor
// swaps extract/select for their segmented counterparts and the engine
// labels/concatenates/splits mini-batches (see core/engine.h).

#ifndef GSAMPLER_CORE_PASSES_H_
#define GSAMPLER_CORE_PASSES_H_

#include <map>
#include <span>

#include "core/executor.h"
#include "core/ir.h"

namespace gs::core {

// --- Computation optimizations (Section 4.2) ---

// DenseEltwise(m, mul, MatMul(u, Transpose(v))) -> Sddmm(m, u, v). Returns
// number of rewrites.
int RewriteSddmm(Program& program);

// Moves batch-invariant edge-map operators above column extraction:
// op(A[:, f]) -> op(A)[:, f] when op's operands don't depend on the batch
// (the LADIES `M = A ** 2` pre-computation). Returns number of hoists.
int HoistOverExtract(Program& program);

// Marks nodes whose value doesn't depend on per-batch inputs or randomness;
// the engine evaluates them once at compile time.
void MarkInvariant(Program& program);

// Extract-Select fusion (Figure 5a). Returns number of fusions.
int FuseExtractSelect(Program& program);

// Edge-map chain fusion (Figure 5b): canonicalizes edge-map ops to
// kFusedEdgeMap and collapses chains. Returns number of fusions.
int FuseEdgeMaps(Program& program);

// Edge-MapReduce fusion (Figure 5c): SumAxis over a fused edge map becomes a
// single-pass kFusedEdgeMapReduce. Returns number of fusions.
int FuseEdgeMapReduce(Program& program);

// Classic cleanups. CSE never merges sampling/walk ops (they consume
// randomness). Both return the number of nodes eliminated.
int EliminateCommonSubexpressions(Program& program);
int DeadCodeElimination(Program& program);

// --- Data layout selection (Section 4.3) ---

// Chooses output formats (CSC/CSR/COO) and row-compaction for every
// structure-producing node by measuring candidate configurations on
// calibration batches (virtual device time), accounting for conversion and
// compaction overheads. Annotates the program in place; the executor's
// kPlanned mode enforces the choices. `precomputed` supplies compile-time
// values for invariant nodes during the trial runs.
void SelectDataLayout(Program& program, const Bindings& bindings,
                      std::span<const tensor::IdArray> calibration_batches,
                      const std::map<int, Value>& precomputed, Rng& rng);

}  // namespace gs::core

#endif  // GSAMPLER_CORE_PASSES_H_
