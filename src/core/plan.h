// CompiledPlan: the compilation half of the engine (Figure 4) as a
// first-class, serializable artifact.
//
// A plan owns the optimized Program together with everything the pass
// pipeline and calibration decided about it: invariant flags, chosen sparse
// formats and row-compaction bits, the layout-calibration state, and the
// tuned super-batch size. Plans are built by running the registered pass
// pipeline (core/pass_manager.h), optionally calibrated against live
// bindings, then frozen — a frozen plan is immutable and safe to share
// across threads and SamplerSessions (core/engine.h).
//
// Plans round-trip through a line-based text format with a content digest:
// Deserialize(Serialize(plan)) reproduces the plan bit-for-bit, so loading
// a saved plan skips both the pass pipeline and layout calibration. This is
// what the serving plan cache persists for warm restarts and what
// `gsampler_cli --save-plan/--load-plan` uses for ahead-of-time compilation.

#ifndef GSAMPLER_CORE_PLAN_H_
#define GSAMPLER_CORE_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/ir.h"
#include "core/pass_manager.h"
#include "graph/store.h"

namespace gs::core {

// Validity predicate for a calibrated plan under online graph mutations
// (gs::dyn). Layout calibration measures format/compaction costs against the
// live degree distribution, so its decisions stay near-optimal only while
// that distribution holds. Calibrate() binds the observed distribution here;
// as mutation epochs land, dyn::PlanTable re-checks the predicate and a plan
// that drifted past the bounds is recompiled in the background while the
// stale-but-valid artifact keeps serving. Unbound validity (layout selection
// disabled, or a legacy artifact without the trailer) is always valid.
struct PlanValidity {
  bool bound = false;
  // Degree distribution observed at calibration time.
  double mean_in_degree = 0.0;
  int64_t p99_in_degree = 0;
  // Top-K in-degree hub set at calibration time (sorted by id).
  std::vector<int32_t> hubs;
  // Bounds: maximum relative drift of mean/p99 in-degree, and minimum
  // fraction of calibration hubs that must still be hubs.
  double max_drift = 0.25;
  double min_hub_overlap = 0.5;

  // True while `now` is within bounds. On failure fills `why` (optional)
  // with the violated bound.
  bool CheckAgainst(const graph::DegreeStats& now, std::string* why = nullptr) const;
};

struct SamplerOptions {
  // Section 4.2: SDDMM rewrite + Extract-Select / Edge-Map / Edge-MapReduce
  // fusion + CSE + DCE. The per-rule flags below allow ablating individual
  // rules; they only apply while enable_fusion is set.
  bool enable_fusion = true;
  bool fuse_extract_select = true;
  bool fuse_edge_maps = true;
  bool rewrite_sddmm = true;
  // Section 4.2: hoist + compile-time evaluation of batch-invariant nodes.
  bool enable_preprocessing = true;
  // Section 4.3: measured format/compaction selection (kPlanned mode). When
  // off, execution uses the greedy DGL-like per-operator format policy —
  // unless greedy_when_layout_disabled is cleared, which yields the plain
  // "use whatever format the kernel produced" behaviour (Figure 10's 'P').
  bool enable_layout_selection = true;
  bool greedy_when_layout_disabled = true;
  // Section 4.4: number of mini-batches sampled per kernel sequence. 1
  // disables; 0 requests a grid search bounded by memory_budget_bytes.
  // Ignored (forced to 1) for programs that mix walk operators with matrix
  // operators or produce tensor outputs. Pure-walk programs group under a
  // shared RNG stream (statistically equivalent to solo batches); all other
  // eligible programs use per-segment streams and stay bit-identical.
  int super_batch = 1;
  int64_t memory_budget_bytes = int64_t{2} * 1024 * 1024 * 1024;
  // Layout calibration batches taken from the first Sample calls.
  int calibration_batches = 1;
  uint64_t seed = 0x5EED;
  // Instrumentation-only knobs. These cannot change the compiled artifact
  // (they only add checks and logging), so they are excluded from the plan
  // serialization and from serving's PassConfigDigest.
  bool verify_passes = false;        // Verify() at every pass boundary (release)
  bool dump_ir_after_passes = false; // log the IR after each pass
  // Debugging knob for the differential fuzzer's bisection: run only the
  // first N passes of the registered pipeline (-1 = all). The serialized
  // artifact stores the resulting program, so round-trips stay exact, but
  // plans truncated this way must never feed a serving plan cache (the knob
  // is excluded from PassConfigDigest like the instrumentation flags).
  int pass_limit = -1;
};

// Summary of what the pass pipeline did to a program (for logging,
// debugging, and the optimization-walkthrough example), including the
// per-pass instrumentation collected by the PassManager.
struct OptimizationReport {
  int sddmm_rewrites = 0;
  int hoisted_ops = 0;
  int extract_select_fusions = 0;
  int edge_map_fusions = 0;
  int edge_map_reduce_fusions = 0;
  int cse_merged = 0;
  int precomputed_values = 0;
  int annotated_layouts = 0;   // structure nodes with a chosen format
  int compacted_extracts = 0;  // structure nodes with row compaction
  // One entry per executed pass, in pipeline order (layout calibration
  // appends its own entry when it runs).
  std::vector<PassStats> passes;
  std::string ToString() const;
};

// The standard optimization pipeline for `options`, as registered named
// passes in canonical order (conditional passes are registered only when
// their option flags are set).
PassManager StandardPassPipeline(const SamplerOptions& options);

class CompiledPlan {
 public:
  // Runs the standard pass pipeline over `program`. `label` is a free-form
  // tag carried through serialization (the CLI stores the algorithm name).
  CompiledPlan(Program program, SamplerOptions options, std::string label = "");

  CompiledPlan(const CompiledPlan&) = delete;
  CompiledPlan& operator=(const CompiledPlan&) = delete;

  const Program& program() const { return program_; }
  const SamplerOptions& options() const { return options_; }
  const std::string& label() const { return label_; }

  // --- Lifecycle -----------------------------------------------------------
  //
  // built -> Calibrate() (idempotent; mutates layout annotations) ->
  // Freeze() -> immutable. Deserialized calibrated plans arrive frozen.

  bool calibrated() const { return calibrated_; }
  bool frozen() const { return frozen_; }
  // True when this plan was loaded from a serialized artifact rather than
  // compiled in this process (i.e. passes and calibration were skipped).
  bool restored() const { return restored_; }

  // Runs layout calibration (Section 4.3) against live bindings, annotating
  // the program in place. No-op when already calibrated; a hard error on a
  // frozen, uncalibrated plan. When layout selection is disabled by the
  // options this only marks the plan calibrated.
  void Calibrate(const Bindings& bindings, std::span<const tensor::IdArray> calibration_batches,
                 const std::map<int, Value>& precomputed, Rng& rng);

  int tuned_super_batch() const { return tuned_super_batch_; }
  void set_tuned_super_batch(int size);

  // The mutation-validity predicate bound by Calibrate() (unbound when
  // layout selection is off or the artifact predates validity). Carried
  // through serialization as an informational trailer line — excluded from
  // Digest() like the report, because two plans with identical layout
  // decisions are the same artifact regardless of what distribution they
  // were measured against.
  const PlanValidity& validity() const { return validity_; }

  // Makes the plan immutable. Sessions call this before entering the
  // concurrent serving path (Warmup), so a shared plan can never change
  // under a running execution.
  void Freeze() { frozen_ = true; }

  // --- Program-shape queries ----------------------------------------------

  // Super-batching applies to programs without per-batch tensor outputs;
  // walk ops are allowed only in pure walk programs (see PureWalk).
  bool SuperBatchEligible() const;
  // Pure walk programs (DeepWalk, Node2Vec): only inputs and walk steps.
  bool PureWalk() const;
  // True when requests against this plan can be merged into one segmented
  // super-batch with bit-identical per-request results.
  bool Coalescable() const;
  // Executor layout mode implied by the options.
  LayoutMode layout_mode() const;

  // Pass counters plus a scan of the current layout annotations
  // (annotated_layouts / compacted_extracts reflect calibration once it
  // ran). precomputed_values is per-session state and stays 0 here.
  OptimizationReport report() const;

  // --- Serialization -------------------------------------------------------

  // Text round-trip: Deserialize(Serialize()) is bit-identical (hexfloat
  // scalars, full annotation state, calibration + tuning decisions). The
  // artifact embeds Digest() for integrity; Deserialize throws gs::Error on
  // digest mismatch or malformed input.
  std::string Serialize() const;
  static std::shared_ptr<CompiledPlan> Deserialize(const std::string& text);

  // FNV-1a content digest over the semantic payload (label, options,
  // calibration/tuning state, program, outputs) — stable across processes
  // for equal plans; excludes the informational report/pass-timing lines.
  uint64_t Digest() const;
  // Digest() as the canonical 16-hex-digit artifact key — the filename stem
  // the serving plan cache persists under, and the prefix the JIT kernel
  // cache (src/jit) keys compiled regions by.
  std::string DigestHex() const;

  std::string DebugString() const;

 private:
  CompiledPlan() = default;  // Deserialize

  Program program_;
  SamplerOptions options_;
  std::string label_;
  OptimizationReport report_;
  bool calibrated_ = false;
  bool frozen_ = false;
  bool restored_ = false;
  int tuned_super_batch_ = 0;  // 0 = not tuned
  PlanValidity validity_;
};

// File helpers over Serialize/Deserialize. Throw gs::Error on I/O failure.
void SavePlanFile(const CompiledPlan& plan, const std::string& path);
std::shared_ptr<CompiledPlan> LoadPlanFile(const std::string& path);

}  // namespace gs::core

#endif  // GSAMPLER_CORE_PLAN_H_
