#include "core/ir.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace gs::core {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kGraphInput: return "graph_input";
    case OpKind::kFrontierInput: return "frontier_input";
    case OpKind::kTensorInput: return "tensor_input";
    case OpKind::kSliceCols: return "slice_cols";
    case OpKind::kSliceRows: return "slice_rows";
    case OpKind::kSumAxis: return "sum_axis";
    case OpKind::kBroadcast: return "broadcast";
    case OpKind::kEltwiseScalar: return "eltwise_scalar";
    case OpKind::kEltwiseBinary: return "eltwise_binary";
    case OpKind::kDenseEltwise: return "dense_eltwise";
    case OpKind::kSpMM: return "spmm";
    case OpKind::kSddmm: return "sddmm";
    case OpKind::kEdgeValues: return "edge_values";
    case OpKind::kWithValues: return "with_values";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kRelu: return "relu";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kTensorBinary: return "tensor_binary";
    case OpKind::kTensorBinaryScalar: return "tensor_binary_scalar";
    case OpKind::kGatherRows: return "gather_rows";
    case OpKind::kStackColumns: return "stack_columns";
    case OpKind::kTensorSum: return "tensor_sum";
    case OpKind::kIndividualSample: return "individual_sample";
    case OpKind::kIndividualSampleP: return "individual_sample_p";
    case OpKind::kCollectiveSample: return "collective_sample";
    case OpKind::kRowIds: return "row_ids";
    case OpKind::kColIds: return "col_ids";
    case OpKind::kCompactRows: return "compact_rows";
    case OpKind::kUnique: return "unique";
    case OpKind::kWalkStep: return "walk_step";
    case OpKind::kWalkRestartStep: return "walk_restart_step";
    case OpKind::kNode2VecStep: return "node2vec_step";
    case OpKind::kTopKVisited: return "topk_visited";
    case OpKind::kFusedSliceSample: return "fused_slice_sample";
    case OpKind::kFusedEdgeMap: return "fused_edge_map";
    case OpKind::kFusedEdgeMapReduce: return "fused_edge_map_reduce";
    case OpKind::kConvertFormat: return "convert_format";
  }
  return "?";
}

bool OpKindFromName(const std::string& name, OpKind* kind) {
  static const OpKind kAll[] = {
      OpKind::kGraphInput,        OpKind::kFrontierInput,
      OpKind::kTensorInput,       OpKind::kSliceCols,
      OpKind::kSliceRows,         OpKind::kSumAxis,
      OpKind::kBroadcast,         OpKind::kEltwiseScalar,
      OpKind::kEltwiseBinary,     OpKind::kDenseEltwise,
      OpKind::kSpMM,              OpKind::kSddmm,
      OpKind::kEdgeValues,        OpKind::kWithValues,
      OpKind::kMatMul,            OpKind::kTranspose,
      OpKind::kRelu,              OpKind::kSoftmax,
      OpKind::kTensorBinary,      OpKind::kTensorBinaryScalar,
      OpKind::kGatherRows,        OpKind::kStackColumns,
      OpKind::kTensorSum,         OpKind::kIndividualSample,
      OpKind::kIndividualSampleP, OpKind::kCollectiveSample,
      OpKind::kRowIds,            OpKind::kColIds,
      OpKind::kCompactRows,       OpKind::kUnique,
      OpKind::kWalkStep,          OpKind::kWalkRestartStep,
      OpKind::kNode2VecStep,      OpKind::kTopKVisited,
      OpKind::kFusedSliceSample,  OpKind::kFusedEdgeMap,
      OpKind::kFusedEdgeMapReduce, OpKind::kConvertFormat,
  };
  for (const OpKind candidate : kAll) {
    if (name == OpKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

ValueKind OutputKindOf(OpKind kind) {
  switch (kind) {
    case OpKind::kGraphInput:
    case OpKind::kSliceCols:
    case OpKind::kSliceRows:
    case OpKind::kBroadcast:
    case OpKind::kEltwiseScalar:
    case OpKind::kEltwiseBinary:
    case OpKind::kDenseEltwise:
    case OpKind::kSddmm:
    case OpKind::kWithValues:
    case OpKind::kIndividualSample:
    case OpKind::kIndividualSampleP:
    case OpKind::kCollectiveSample:
    case OpKind::kCompactRows:
    case OpKind::kFusedSliceSample:
    case OpKind::kFusedEdgeMap:
    case OpKind::kConvertFormat:
    case OpKind::kTopKVisited:
      return ValueKind::kMatrix;
    case OpKind::kFrontierInput:
    case OpKind::kRowIds:
    case OpKind::kColIds:
    case OpKind::kUnique:
    case OpKind::kWalkStep:
    case OpKind::kWalkRestartStep:
    case OpKind::kNode2VecStep:
      return ValueKind::kIds;
    case OpKind::kTensorInput:
    case OpKind::kSumAxis:
    case OpKind::kSpMM:
    case OpKind::kEdgeValues:
    case OpKind::kMatMul:
    case OpKind::kTranspose:
    case OpKind::kRelu:
    case OpKind::kSoftmax:
    case OpKind::kTensorBinary:
    case OpKind::kTensorBinaryScalar:
    case OpKind::kGatherRows:
    case OpKind::kStackColumns:
    case OpKind::kTensorSum:
    case OpKind::kFusedEdgeMapReduce:
      return ValueKind::kTensor;
  }
  return ValueKind::kTensor;
}

bool IsStructureOp(OpKind kind) {
  switch (kind) {
    case OpKind::kSliceCols:
    case OpKind::kSliceRows:
    case OpKind::kIndividualSample:
    case OpKind::kIndividualSampleP:
    case OpKind::kCollectiveSample:
    case OpKind::kFusedSliceSample:
    case OpKind::kCompactRows:
      return true;
    default:
      return false;
  }
}

namespace {

// Expected input kinds per op; kVariadic entries accept >= 1 inputs of the
// listed kind.
struct Signature {
  std::vector<ValueKind> inputs;
  bool variadic = false;  // trailing inputs repeat the last listed kind
};

Signature SignatureOf(OpKind kind) {
  using VK = ValueKind;
  switch (kind) {
    case OpKind::kGraphInput:
    case OpKind::kFrontierInput:
    case OpKind::kTensorInput:
      return {{}};
    case OpKind::kSliceCols:
    case OpKind::kSliceRows:
    case OpKind::kFusedSliceSample:
      return {{VK::kMatrix, VK::kIds}};
    case OpKind::kSumAxis:
    case OpKind::kEltwiseScalar:
    case OpKind::kEdgeValues:
    case OpKind::kRowIds:
    case OpKind::kColIds:
    case OpKind::kCompactRows:
    case OpKind::kIndividualSample:
    case OpKind::kConvertFormat:
      return {{VK::kMatrix}};
    case OpKind::kBroadcast:
    case OpKind::kDenseEltwise:
    case OpKind::kSpMM:
    case OpKind::kWithValues:
    case OpKind::kCollectiveSample:
      return {{VK::kMatrix, VK::kTensor}};
    case OpKind::kEltwiseBinary:
    case OpKind::kIndividualSampleP:
      return {{VK::kMatrix, VK::kMatrix}};
    case OpKind::kSddmm:
      return {{VK::kMatrix, VK::kTensor, VK::kTensor}};
    case OpKind::kMatMul:
    case OpKind::kTensorBinary:
      return {{VK::kTensor, VK::kTensor}};
    case OpKind::kTranspose:
    case OpKind::kRelu:
    case OpKind::kSoftmax:
    case OpKind::kTensorBinaryScalar:
    case OpKind::kTensorSum:
      return {{VK::kTensor}};
    case OpKind::kGatherRows:
      return {{VK::kTensor, VK::kIds}};
    case OpKind::kStackColumns:
      return {{VK::kTensor}, true};
    case OpKind::kUnique:
      return {{VK::kIds}, true};
    case OpKind::kWalkStep:
      return {{VK::kMatrix, VK::kIds}};
    case OpKind::kWalkRestartStep:
    case OpKind::kNode2VecStep:
      return {{VK::kMatrix, VK::kIds, VK::kIds}};
    case OpKind::kTopKVisited:
      return {{VK::kIds, VK::kIds}, true};
    case OpKind::kFusedEdgeMap:
    case OpKind::kFusedEdgeMapReduce:
      return {{VK::kMatrix, VK::kTensor}, true};
  }
  return {{}};
}

}  // namespace

int Program::Add(OpKind kind, std::vector<int> inputs, Attrs attrs) {
  Node n;
  n.id = static_cast<int>(nodes_.size());
  n.kind = kind;
  n.inputs = std::move(inputs);
  n.attrs = std::move(attrs);
  for (int in : n.inputs) {
    GS_CHECK(in >= 0 && in < n.id) << "node inputs must reference earlier nodes";
  }
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

std::vector<int> Program::UseCounts() const {
  std::vector<int> uses(nodes_.size(), 0);
  for (const Node& n : nodes_) {
    for (int in : n.inputs) {
      ++uses[static_cast<size_t>(in)];
    }
  }
  for (int out : outputs_) {
    ++uses[static_cast<size_t>(out)];
  }
  return uses;
}

void Program::Verify() const {
  for (const Node& n : nodes_) {
    const Signature sig = SignatureOf(n.kind);
    if (sig.variadic) {
      // kFusedEdgeMap* take a matrix plus zero or more tensors; the other
      // variadic ops take one-or-more of the listed kind.
      const bool leading_matrix =
          n.kind == OpKind::kFusedEdgeMap || n.kind == OpKind::kFusedEdgeMapReduce;
      const size_t min_inputs = leading_matrix ? 1 : 1;
      GS_CHECK_GE(n.inputs.size(), min_inputs)
          << "node " << n.id << " (" << OpKindName(n.kind) << ") needs inputs";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        const ValueKind expected =
            i < sig.inputs.size() ? sig.inputs[i] : sig.inputs.back();
        GS_CHECK(node(n.inputs[i]).output_kind() == expected)
            << "node " << n.id << " (" << OpKindName(n.kind) << ") input " << i
            << " has wrong kind";
      }
    } else {
      GS_CHECK_EQ(n.inputs.size(), sig.inputs.size())
          << "node " << n.id << " (" << OpKindName(n.kind) << ") arity";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        GS_CHECK(node(n.inputs[i]).output_kind() == sig.inputs[i])
            << "node " << n.id << " (" << OpKindName(n.kind) << ") input " << i
            << " has wrong kind";
      }
    }
    for (int in : n.inputs) {
      GS_CHECK_LT(in, n.id) << "topological order violated at node " << n.id;
    }
  }
  for (int out : outputs_) {
    GS_CHECK(out >= 0 && out < size()) << "output references unknown node " << out;
  }
}

std::string Program::ToString() const {
  std::ostringstream out;
  for (const Node& n : nodes_) {
    out << "%" << n.id << " = " << OpKindName(n.kind) << "(";
    for (size_t i = 0; i < n.inputs.size(); ++i) {
      out << (i > 0 ? ", " : "") << "%" << n.inputs[i];
    }
    out << ")";
    if (n.kind == OpKind::kTensorInput || !n.attrs.name.empty()) {
      out << " name=" << n.attrs.name;
    }
    if (n.attrs.k != 0) {
      out << " k=" << n.attrs.k;
    }
    switch (n.kind) {
      case OpKind::kSumAxis:
      case OpKind::kBroadcast:
      case OpKind::kTensorSum:
      case OpKind::kFusedEdgeMapReduce:
        out << " axis=" << n.attrs.axis;
        break;
      default:
        break;
    }
    switch (n.kind) {
      case OpKind::kBroadcast:
      case OpKind::kEltwiseScalar:
      case OpKind::kEltwiseBinary:
      case OpKind::kDenseEltwise:
      case OpKind::kTensorBinary:
      case OpKind::kTensorBinaryScalar:
        out << " op=" << BinaryOpName(n.attrs.bop);
        break;
      default:
        break;
    }
    if (!n.attrs.stages.empty()) {
      out << " stages=" << n.attrs.stages.size();
    }
    if (n.invariant) {
      out << " [invariant]";
    }
    if (n.has_format_choice) {
      out << " [fmt=" << sparse::FormatName(n.chosen_format)
          << (n.compact_rows ? ",compact" : "") << "]";
    }
    out << "\n";
  }
  out << "outputs:";
  for (int o : outputs_) {
    out << " %" << o;
  }
  out << "\n";
  return out.str();
}

int Program::RemoveDead() {
  std::vector<bool> live(nodes_.size(), false);
  std::vector<int> stack(outputs_.begin(), outputs_.end());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (live[static_cast<size_t>(id)]) {
      continue;
    }
    live[static_cast<size_t>(id)] = true;
    for (int in : nodes_[static_cast<size_t>(id)].inputs) {
      stack.push_back(in);
    }
  }
  // Inputs stay alive even when unused so bindings remain stable.
  for (Node& n : nodes_) {
    if (n.kind == OpKind::kGraphInput || n.kind == OpKind::kFrontierInput ||
        n.kind == OpKind::kTensorInput) {
      live[static_cast<size_t>(n.id)] = true;
    }
  }

  std::vector<int> remap(nodes_.size(), -1);
  std::vector<Node> kept;
  kept.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!live[i]) {
      continue;
    }
    remap[i] = static_cast<int>(kept.size());
    Node n = std::move(nodes_[i]);
    n.id = remap[i];
    for (int& in : n.inputs) {
      in = remap[static_cast<size_t>(in)];
      GS_INTERNAL(in >= 0);
    }
    kept.push_back(std::move(n));
  }
  const int removed = static_cast<int>(nodes_.size() - kept.size());
  nodes_ = std::move(kept);
  for (int& out : outputs_) {
    out = remap[static_cast<size_t>(out)];
    GS_INTERNAL(out >= 0);
  }
  return removed;
}

void Program::Normalize() {
  const size_t n = nodes_.size();
  std::vector<std::vector<int>> consumers(n);
  std::vector<int> pending(n, 0);
  for (const Node& node : nodes_) {
    pending[static_cast<size_t>(node.id)] = static_cast<int>(node.inputs.size());
    for (int in : node.inputs) {
      consumers[static_cast<size_t>(in)].push_back(node.id);
    }
  }
  // Kahn's algorithm with a min-heap on original id for stability.
  std::vector<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }
  auto heap_cmp = [](int a, int b) { return a > b; };
  std::make_heap(ready.begin(), ready.end(), heap_cmp);
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), heap_cmp);
    const int id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (int c : consumers[static_cast<size_t>(id)]) {
      if (--pending[static_cast<size_t>(c)] == 0) {
        ready.push_back(c);
        std::push_heap(ready.begin(), ready.end(), heap_cmp);
      }
    }
  }
  GS_CHECK_EQ(order.size(), n) << "cycle introduced by a rewrite";

  std::vector<int> remap(n, -1);
  for (size_t pos = 0; pos < n; ++pos) {
    remap[static_cast<size_t>(order[pos])] = static_cast<int>(pos);
  }
  std::vector<Node> sorted(n);
  for (size_t i = 0; i < n; ++i) {
    Node node = std::move(nodes_[i]);
    node.id = remap[i];
    for (int& in : node.inputs) {
      in = remap[static_cast<size_t>(in)];
    }
    sorted[static_cast<size_t>(node.id)] = std::move(node);
  }
  nodes_ = std::move(sorted);
  for (int& out : outputs_) {
    out = remap[static_cast<size_t>(out)];
  }
}

}  // namespace gs::core
