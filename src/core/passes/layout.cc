// Data-layout selection (Section 4.3): choose output sparse formats and
// row-compaction for structure-producing operators by measuring candidate
// configurations on calibration batches.
//
// The paper observes that only extract and select modify graph structure;
// compute/finalize adopt their upstream layout. The search space per
// structure node is {CSC, CSR, COO} x {compact, keep}, small enough to
// search directly: we run coordinate-descent sweeps (two passes over the
// nodes, each trying every option) with costs measured on the simulated
// device's deterministic model clock, which automatically accounts for
// conversion and compaction overheads — the cost-aware behaviour the paper
// contrasts with DGL's greedy per-operator choice.

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/passes.h"
#include "device/device.h"

namespace gs::core {
namespace {

struct Option {
  bool annotate = false;  // false = leave the kernel's natural output format
  sparse::Format format = sparse::Format::kCsc;
  bool compact = false;
};

std::vector<Option> OptionsFor(const Node& node) {
  (void)node;
  std::vector<Option> options;
  options.push_back({});  // natural output format
  for (sparse::Format f : {sparse::Format::kCsc, sparse::Format::kCoo, sparse::Format::kCsr}) {
    options.push_back({true, f, false});
  }
  return options;
}

void ApplyOption(Node& node, const Option& option) {
  node.has_format_choice = option.annotate;
  node.chosen_format = option.format;
  node.compact_rows = option.compact;
}

}  // namespace

void SelectDataLayout(Program& program, const Bindings& bindings,
                      std::span<const tensor::IdArray> calibration_batches,
                      const std::map<int, Value>& precomputed, Rng& rng) {
  std::vector<int> candidates;
  for (const Node& n : program.nodes()) {
    if (IsStructureOp(n.kind) && n.kind != OpKind::kCompactRows) {
      candidates.push_back(n.id);
    }
  }
  if (candidates.empty() || calibration_batches.empty()) {
    return;
  }

  Executor executor(program, ExecOptions{.layout = LayoutMode::kPlanned});
  for (const auto& [id, value] : precomputed) {
    executor.SetPrecomputed(id, value);
  }

  // Measures the current annotation assignment over the calibration
  // batches, with a fixed randomness stream so every configuration samples
  // identical subgraphs. Costs come from the stream's deterministic model
  // clock (model_ns), not the measured-CPU virtual clock: calibration must
  // pick the same layout on every compile of the same program, or the plan
  // itself becomes a function of host timing noise — which the differential
  // oracle (src/oracle/) would then flag as run-to-run divergence.
  auto measure = [&]() -> double {
    device::Stream& stream = device::Current().stream();
    const int64_t before = stream.counters().model_ns;
    try {
      for (size_t b = 0; b < calibration_batches.size(); ++b) {
        Rng trial = rng.Fork(0x1a07 + b);
        Bindings batch = bindings;
        batch.frontier = calibration_batches[b];
        executor.Run(batch, trial);
      }
    } catch (const Error& e) {
      // Invalid candidate (e.g. compacting one of two row-space-coupled
      // extracts): infinite cost, the sweep moves on.
      GS_LOG(Debug) << "layout candidate rejected: " << e.what();
      return std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(stream.counters().model_ns - before);
  };
  // An option must beat the incumbent by a margin to be adopted, so
  // near-ties resolve to the natural layout instead of churning.
  constexpr double kAdoptionMargin = 0.97;

  double best_total = measure();  // baseline: all-natural layouts

  // Stage 1: joint row-compaction of all extract nodes. Hoisting can split
  // one logical extract into several pattern-coupled slices (e.g. LADIES'
  // A[:, f] and (A**2)[:, f]); their row spaces must compact together, so
  // compaction is searched as a single joint switch.
  // Extracts feeding a collective sample stay uncompacted: the sample's
  // row-probability operand may live in the uncompacted row space (e.g.
  // FastGCN's precomputed per-node probabilities), and dropping
  // positive-probability rows would change which rows can be drawn — a
  // layout decision must never change sampled results. Whether calibration
  // batches happen to drop rows varies per batch, so adopting compaction
  // here would also make plans data-dependent.
  std::vector<int> collective_inputs;
  for (const Node& n : program.nodes()) {
    if (n.kind == OpKind::kCollectiveSample && !n.inputs.empty()) {
      collective_inputs.push_back(n.inputs[0]);
    }
  }
  std::vector<int> extracts;
  for (int id : candidates) {
    const OpKind kind = program.node(id).kind;
    const bool feeds_collective = std::find(collective_inputs.begin(), collective_inputs.end(),
                                            id) != collective_inputs.end();
    if ((kind == OpKind::kSliceCols || kind == OpKind::kSliceRows) && !feeds_collective) {
      extracts.push_back(id);
    }
  }
  if (!extracts.empty()) {
    for (int id : extracts) {
      program.node(id).compact_rows = true;
    }
    const double t = measure();
    if (t < best_total * kAdoptionMargin) {
      best_total = t;
    } else {
      for (int id : extracts) {
        program.node(id).compact_rows = false;
      }
    }
  }

  // Stage 2: per-node format sweeps (coordinate descent, two passes),
  // keeping whatever compaction decision stage 1 made.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int id : candidates) {
      Node& node = program.node(id);
      const Option original{node.has_format_choice, node.chosen_format, node.compact_rows};
      Option best = original;
      for (Option option : OptionsFor(node)) {
        option.compact = original.compact;  // compaction fixed by stage 1
        ApplyOption(node, option);
        const double t = measure();
        if (t < best_total * kAdoptionMargin) {
          best_total = t;
          best = option;
        }
      }
      ApplyOption(node, best);
    }
  }

  GS_LOG(Info) << "layout selection done (" << candidates.size() << " structure nodes)";
}

}  // namespace gs::core
