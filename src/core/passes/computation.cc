// Computation-optimization passes: SDDMM rewriting, pre-processing hoist,
// invariant marking, the three fusion rules, CSE, and DCE (Section 4.2).

#include <map>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "core/passes.h"

namespace gs::core {
namespace {

// Replaces every use of `from` (inputs and program outputs) with `to`.
void ReplaceAllUses(Program& p, int from, int to) {
  for (Node& n : p.nodes()) {
    if (n.id == to) {
      continue;  // never create a self-loop
    }
    for (int& in : n.inputs) {
      if (in == from) {
        in = to;
      }
    }
  }
  std::vector<int> outputs = p.outputs();
  for (int& out : outputs) {
    if (out == from) {
      out = to;
    }
  }
  p.SetOutputs(std::move(outputs));
}

bool IsRandomOp(OpKind kind) {
  switch (kind) {
    case OpKind::kIndividualSample:
    case OpKind::kIndividualSampleP:
    case OpKind::kCollectiveSample:
    case OpKind::kFusedSliceSample:
    case OpKind::kWalkStep:
    case OpKind::kWalkRestartStep:
    case OpKind::kNode2VecStep:
      return true;
    default:
      return false;
  }
}

// Edge-map operators: per-edge value updates on an unchanged structure.
bool IsEdgeMapOp(const Node& n) {
  switch (n.kind) {
    case OpKind::kEltwiseScalar:
    case OpKind::kBroadcast:
    case OpKind::kEltwiseBinary:
    case OpKind::kDenseEltwise:
    case OpKind::kFusedEdgeMap:
      return true;
    case OpKind::kSddmm:
      return n.attrs.flag;  // only the mul-existing form composes as a stage
    default:
      return false;
  }
}

// Decomposes an edge-map node into (stages, extra operand node ids). For
// kEltwiseBinary the second matrix's edge values are read through a
// kEdgeValues node created by the caller.
struct StageDecomposition {
  std::vector<sparse::EdgeMapStage> stages;
  std::vector<int> operands;  // node ids feeding stage.operand slots, in order
};

StageDecomposition DecomposeEdgeMap(Program& p, const Node& n) {
  StageDecomposition d;
  sparse::EdgeMapStage stage;
  stage.op = n.attrs.bop;
  switch (n.kind) {
    case OpKind::kEltwiseScalar:
      stage.kind = sparse::EdgeMapStage::OperandKind::kScalar;
      stage.scalar = n.attrs.scalar;
      d.stages.push_back(stage);
      break;
    case OpKind::kBroadcast:
      stage.kind = n.attrs.axis == 0 ? sparse::EdgeMapStage::OperandKind::kRowVector
                                     : sparse::EdgeMapStage::OperandKind::kColVector;
      stage.operand = 0;
      d.stages.push_back(stage);
      d.operands.push_back(n.inputs[1]);
      break;
    case OpKind::kDenseEltwise:
      stage.kind = sparse::EdgeMapStage::OperandKind::kDense;
      stage.operand = 0;
      d.stages.push_back(stage);
      d.operands.push_back(n.inputs[1]);
      break;
    case OpKind::kEltwiseBinary: {
      stage.kind = sparse::EdgeMapStage::OperandKind::kEdgeTensor;
      stage.operand = 0;
      d.stages.push_back(stage);
      d.operands.push_back(p.Add(OpKind::kEdgeValues, {n.inputs[1]}));
      break;
    }
    case OpKind::kSddmm: {
      GS_INTERNAL(n.attrs.flag);
      sparse::EdgeMapStage dot;
      dot.op = BinaryOp::kMul;
      dot.kind = sparse::EdgeMapStage::OperandKind::kDot;
      dot.operand = 0;
      dot.operand2 = 1;
      d.stages.push_back(dot);
      d.operands.push_back(n.inputs[1]);
      d.operands.push_back(n.inputs[2]);
      break;
    }
    case OpKind::kFusedEdgeMap: {
      d.stages = n.attrs.stages;
      d.operands.assign(n.inputs.begin() + 1, n.inputs.end());
      break;
    }
    default:
      GS_INTERNAL(false) << "not an edge-map op";
  }
  return d;
}

// Concatenates b's stages after a's, renumbering operand slots.
StageDecomposition ConcatStages(StageDecomposition a, StageDecomposition b) {
  const int offset = static_cast<int>(a.operands.size());
  for (sparse::EdgeMapStage& stage : b.stages) {
    if (stage.operand >= 0) {
      stage.operand += offset;
    }
    if (stage.operand2 >= 0) {
      stage.operand2 += offset;
    }
    a.stages.push_back(stage);
  }
  a.operands.insert(a.operands.end(), b.operands.begin(), b.operands.end());
  return a;
}

}  // namespace

int RewriteSddmm(Program& p) {
  int rewrites = 0;
  for (Node& n : p.nodes()) {
    if (n.kind != OpKind::kDenseEltwise || n.attrs.bop != BinaryOp::kMul) {
      continue;
    }
    const Node& dense = p.node(n.inputs[1]);
    if (dense.kind != OpKind::kMatMul) {
      continue;
    }
    const Node& rhs = p.node(dense.inputs[1]);
    if (rhs.kind != OpKind::kTranspose) {
      continue;
    }
    // m * (U @ V^T)  ->  sddmm(m, U, V, mul_existing)
    n.kind = OpKind::kSddmm;
    n.inputs = {n.inputs[0], dense.inputs[0], rhs.inputs[0]};
    n.attrs.flag = true;
    ++rewrites;
  }
  if (rewrites > 0) {
    p.Normalize();
    p.RemoveDead();
  }
  return rewrites;
}

void MarkInvariant(Program& p) {
  for (Node& n : p.nodes()) {
    if (n.kind == OpKind::kFrontierInput || IsRandomOp(n.kind)) {
      n.invariant = false;
      continue;
    }
    bool invariant = true;
    for (int in : n.inputs) {
      invariant = invariant && p.node(in).invariant;
    }
    n.invariant = invariant;
  }
}

int HoistOverExtract(Program& p) {
  int total = 0;
  for (bool changed = true; changed;) {
    changed = false;
    MarkInvariant(p);
    const int size = p.size();
    for (int id = 0; id < size; ++id) {
      // Re-read the node each iteration: Add() may reallocate the vector.
      const OpKind kind = p.node(id).kind;
      const bool scalar_op = kind == OpKind::kEltwiseScalar;
      const bool row_broadcast = kind == OpKind::kBroadcast && p.node(id).attrs.axis == 0;
      if (!scalar_op && !row_broadcast) {
        continue;
      }
      const int m_id = p.node(id).inputs[0];
      if (p.node(m_id).kind != OpKind::kSliceCols) {
        continue;
      }
      const int a_id = p.node(m_id).inputs[0];
      const int f_id = p.node(m_id).inputs[1];
      if (!p.node(a_id).invariant) {
        continue;
      }
      if (row_broadcast && !p.node(p.node(id).inputs[1]).invariant) {
        continue;
      }
      // op(A[:, f]) -> op(A)[:, f]; op(A) is batch-invariant and will be
      // pre-computed once (the LADIES `M = A ** 2` optimization).
      Attrs op_attrs = p.node(id).attrs;
      std::vector<int> op_inputs = {a_id};
      if (row_broadcast) {
        op_inputs.push_back(p.node(id).inputs[1]);
      }
      const int hoisted = p.Add(kind, std::move(op_inputs), std::move(op_attrs));
      const int new_slice = p.Add(OpKind::kSliceCols, {hoisted, f_id});
      ReplaceAllUses(p, id, new_slice);
      p.Normalize();
      p.RemoveDead();
      ++total;
      changed = true;
      break;  // restart: ids were remapped
    }
  }
  MarkInvariant(p);
  return total;
}

int FuseExtractSelect(Program& p) {
  int fusions = 0;
  const std::vector<int> uses = p.UseCounts();
  for (Node& n : p.nodes()) {
    if (n.kind != OpKind::kIndividualSample) {
      continue;
    }
    const Node& extract = p.node(n.inputs[0]);
    if (extract.kind != OpKind::kSliceCols || uses[static_cast<size_t>(extract.id)] != 1) {
      continue;
    }
    // A[:, f].individual_sample(k)  ->  fused_slice_sample(A, f, k): the
    // extracted subgraph is never materialized (Figure 5a).
    n.kind = OpKind::kFusedSliceSample;
    n.inputs = {extract.inputs[0], extract.inputs[1]};
    ++fusions;
  }
  if (fusions > 0) {
    p.RemoveDead();
  }
  return fusions;
}

int FuseEdgeMaps(Program& p) {
  int fusions = 0;
  // Process in topological order so chains collapse transitively: by the
  // time node n is visited, its producer has already been canonicalized.
  for (int id = 0; id < p.size(); ++id) {
    if (!IsEdgeMapOp(p.node(id))) {
      continue;
    }
    const int m_id = p.node(id).inputs[0];
    if (!IsEdgeMapOp(p.node(m_id))) {
      continue;
    }
    StageDecomposition producer = DecomposeEdgeMap(p, p.node(m_id));
    StageDecomposition consumer = DecomposeEdgeMap(p, p.node(id));
    StageDecomposition merged = ConcatStages(std::move(producer), std::move(consumer));
    Node& n = p.node(id);
    n.kind = OpKind::kFusedEdgeMap;
    n.inputs = {p.node(m_id).inputs[0]};
    n.inputs.insert(n.inputs.end(), merged.operands.begin(), merged.operands.end());
    n.attrs.stages = std::move(merged.stages);
    ++fusions;
  }
  if (fusions > 0) {
    p.Normalize();
    p.RemoveDead();
  }
  return fusions;
}

int FuseEdgeMapReduce(Program& p) {
  int fusions = 0;
  const std::vector<int> uses = p.UseCounts();
  for (int id = 0; id < p.size(); ++id) {
    if (p.node(id).kind != OpKind::kSumAxis) {
      continue;
    }
    const int m_id = p.node(id).inputs[0];
    if (!IsEdgeMapOp(p.node(m_id))) {
      continue;
    }
    (void)uses;  // fuse regardless of other consumers: recomputing stages is
                 // cheaper than materializing the mapped edge values
    StageDecomposition d = DecomposeEdgeMap(p, p.node(m_id));
    Node& n = p.node(id);
    n.kind = OpKind::kFusedEdgeMapReduce;
    n.inputs = {p.node(m_id).inputs[0]};
    n.inputs.insert(n.inputs.end(), d.operands.begin(), d.operands.end());
    n.attrs.stages = std::move(d.stages);
    ++fusions;
  }
  if (fusions > 0) {
    p.Normalize();
    p.RemoveDead();
  }
  return fusions;
}

int EliminateCommonSubexpressions(Program& p) {
  auto key_of = [](const Node& n) {
    std::ostringstream key;
    key << static_cast<int>(n.kind);
    for (int in : n.inputs) {
      key << "," << in;
    }
    key << ";" << n.attrs.k << ";" << n.attrs.axis << ";" << static_cast<int>(n.attrs.bop)
        << ";" << n.attrs.scalar << ";" << n.attrs.p << ";" << n.attrs.q << ";" << n.attrs.flag
        << ";" << static_cast<int>(n.attrs.format) << ";" << n.attrs.name;
    for (const sparse::EdgeMapStage& s : n.attrs.stages) {
      key << "|" << static_cast<int>(s.op) << "," << static_cast<int>(s.kind) << ","
          << s.scalar << "," << s.operand << "," << s.operand2;
    }
    return key.str();
  };

  int eliminated = 0;
  std::map<std::string, int> seen;
  for (Node& n : p.nodes()) {
    if (IsRandomOp(n.kind) || n.kind == OpKind::kFrontierInput) {
      continue;  // random draws and inputs are never merged
    }
    const std::string key = key_of(n);
    auto [it, inserted] = seen.emplace(key, n.id);
    if (!inserted) {
      ReplaceAllUses(p, n.id, it->second);
      ++eliminated;
    }
  }
  if (eliminated > 0) {
    p.RemoveDead();
  }
  return eliminated;
}

int DeadCodeElimination(Program& p) { return p.RemoveDead(); }

}  // namespace gs::core
